// Virtual admission/queue model semantics: the QueueModel must mirror
// serve::Cluster's gate (shed iff queued + executing >= depth on arrival)
// while resolving waiting and completion times deterministically.
#include "fleet/queue_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bees::fleet {
namespace {

TEST(QueueModel, ServesInFifoOrderOnOneServer) {
  QueueModel q(1, 10);
  const ServiceOutcome a = q.offer(0.0, 1.0);
  const ServiceOutcome b = q.offer(0.1, 1.0);
  const ServiceOutcome c = q.offer(2.5, 1.0);
  EXPECT_FALSE(a.shed);
  EXPECT_DOUBLE_EQ(a.start_s, 0.0);
  EXPECT_DOUBLE_EQ(a.completion_s, 1.0);
  // b waits for a; c arrives after both finished and starts immediately.
  EXPECT_DOUBLE_EQ(b.start_s, 1.0);
  EXPECT_DOUBLE_EQ(b.completion_s, 2.0);
  EXPECT_DOUBLE_EQ(c.start_s, 2.5);
  EXPECT_DOUBLE_EQ(c.completion_s, 3.5);
  EXPECT_EQ(q.offered(), 3u);
  EXPECT_EQ(q.shed(), 0u);
}

TEST(QueueModel, ParallelServersOverlap) {
  QueueModel q(2, 10);
  const ServiceOutcome a = q.offer(0.0, 2.0);
  const ServiceOutcome b = q.offer(0.0, 2.0);
  const ServiceOutcome c = q.offer(0.5, 2.0);
  EXPECT_DOUBLE_EQ(a.completion_s, 2.0);
  EXPECT_DOUBLE_EQ(b.completion_s, 2.0);  // second server, no wait
  EXPECT_DOUBLE_EQ(c.start_s, 2.0);       // queued behind the earlier free
  EXPECT_DOUBLE_EQ(c.completion_s, 4.0);
}

TEST(QueueModel, ShedsAtDepthAndRepliesImmediately) {
  QueueModel q(1, 2);
  EXPECT_FALSE(q.offer(0.0, 10.0).shed);  // executing
  EXPECT_FALSE(q.offer(0.0, 10.0).shed);  // queued: in_system = 2 = depth
  const ServiceOutcome shed = q.offer(0.0, 10.0);
  EXPECT_TRUE(shed.shed);
  EXPECT_DOUBLE_EQ(shed.completion_s, 0.0);  // gate answers without queueing
  EXPECT_EQ(q.shed(), 1u);
  // Once the backlog drains, admission resumes.
  EXPECT_FALSE(q.offer(25.0, 1.0).shed);
  EXPECT_EQ(q.offered(), 4u);
}

TEST(QueueModel, InSystemDropsCompletedRequests) {
  QueueModel q(1, 8);
  q.offer(0.0, 1.0);
  q.offer(0.0, 1.0);  // completes at 2
  EXPECT_EQ(q.in_system(0.5), 2u);
  EXPECT_EQ(q.in_system(1.5), 1u);
  EXPECT_EQ(q.in_system(2.5), 0u);
}

TEST(QueueModel, RejectsDegenerateShapes) {
  EXPECT_THROW(QueueModel(0, 4), std::invalid_argument);
  EXPECT_THROW(QueueModel(2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace bees::fleet
