// Damaged-network fleet scenarios: scripted backhaul partitions, relay
// outages, and primary kills must keep the epoch-barrier determinism
// contract — byte-identical reports across runs and worker counts — while
// the resilience section records the disaster, and the disaster must only
// reshape traffic it plausibly touches (kills alone change no reply).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fleet/simulator.hpp"

namespace bees::fleet {
namespace {

/// The busy fleet from the simulator suite plus a full disaster script:
/// replicated shards, a relay tier, a mid-run partition, a targeted relay
/// outage, and two primary kills.
FleetOptions disaster_options() {
  FleetOptions o;
  o.seed = 1234;
  o.devices = 12;
  o.duration_s = 20.0;
  o.epoch_s = 1.0;
  o.rate_hz = 0.15;
  o.batch = 3;
  o.set_images = 18;
  o.set_locations = 6;
  o.width = 64;
  o.height = 48;
  o.shards = 2;
  o.queue_depth = 8;
  o.service_base_s = 0.05;
  o.service_per_image_s = 0.02;
  o.loss = 0.05;
  o.workers = 1;
  o.replicas = 1;
  o.relays = 2;
  o.relay_chunk_size = 256;
  o.partitions.push_back({4, 9, -1});     // every backhaul down, epochs 4-8
  o.relay_outages.push_back({12, 14, 1});  // relay 1 dead, epochs 12-13
  o.primary_kills.push_back({6, 0});
  o.primary_kills.push_back({15, 1});
  return o;
}

TEST(FleetDisaster, ReportInvariantAcrossWorkerCounts) {
  // The tentpole acceptance criterion: partitions + outages + kills, same
  // seed, byte-identical JSON for 1 vs 8 phase-A workers.
  FleetOptions o = disaster_options();
  o.workers = 1;
  const std::string w1 = run_fleet(o).report.to_json();
  o.workers = 8;
  const std::string w8 = run_fleet(o).report.to_json();
  EXPECT_EQ(w1, w8);
}

TEST(FleetDisaster, SameSeedSameScheduleReproducesExactly) {
  const FleetOptions o = disaster_options();
  EXPECT_EQ(run_fleet(o).report.to_json(), run_fleet(o).report.to_json());
}

TEST(FleetDisaster, ResilienceSectionRecordsTheDisaster) {
  const FleetReport r = run_fleet(disaster_options()).report;
  EXPECT_EQ(r.resilience.failovers, 2u);
  EXPECT_EQ(r.resilience.live_standbys, 0u);  // 1 replica, both promoted
  EXPECT_GT(r.resilience.ship_records, 0u);
  EXPECT_GT(r.resilience.relay_requests, 0u);
  EXPECT_GT(r.resilience.relay_rejects, 0u);  // partitioned queries bounce
  EXPECT_EQ(r.resilience.relay_held, r.resilience.relay_drained);
  EXPECT_EQ(r.config.replicas, 1);
  EXPECT_EQ(r.config.relays, 2);
}

TEST(FleetDisaster, KillsAloneChangeNothingButResilience) {
  // Failover is invisible to traffic: with no relay damage, a run with
  // primary kills differs from an undamaged replicated run only in the
  // resilience section (sheds, latency, precision all identical).
  FleetOptions calm = disaster_options();
  calm.partitions.clear();
  calm.relay_outages.clear();
  calm.relays = 0;
  calm.relay_chunk_size = 4096;

  FleetOptions killed = calm;
  calm.primary_kills.clear();

  const FleetReport a = run_fleet(calm).report;
  const FleetReport b = run_fleet(killed).report;
  EXPECT_EQ(a.totals.to_json(calm.duration_s),
            b.totals.to_json(calm.duration_s));
  EXPECT_EQ(a.latency_all.to_json(), b.latency_all.to_json());
  EXPECT_EQ(a.precision.to_json(), b.precision.to_json());
  EXPECT_EQ(a.resilience.failovers, 0u);
  EXPECT_EQ(b.resilience.failovers, 2u);
}

TEST(FleetDisaster, DedupCollapsesRepeatedBackhaulTraffic) {
  // Co-located devices query near-duplicate scenes; the relay's CARE
  // ledger must save a measurable share of backhaul bytes.
  FleetOptions o = disaster_options();
  o.partitions.clear();
  o.relay_outages.clear();
  o.primary_kills.clear();
  o.replicas = 0;
  o.relays = 1;  // one relay sees the whole fleet: maximal overlap
  const FleetReport r = run_fleet(o).report;
  EXPECT_GT(r.resilience.relay_ingress_bytes, 0u);
  EXPECT_GT(r.resilience.relay_dedup_bytes_saved, 0u);
  EXPECT_LT(r.resilience.relay_backhaul_bytes,
            r.resilience.relay_ingress_bytes);
}

TEST(FleetDisaster, NonsenseScenariosAreRejected) {
  FleetOptions o = disaster_options();
  o.relays = 0;  // windows without a relay tier
  EXPECT_THROW(run_fleet(o), std::invalid_argument);

  o = disaster_options();
  o.replicas = 0;  // kills without a standby
  EXPECT_THROW(run_fleet(o), std::invalid_argument);

  o = disaster_options();
  o.primary_kills.push_back({3, 7});  // no such shard
  EXPECT_THROW(run_fleet(o), std::invalid_argument);

  o = disaster_options();
  o.partitions.push_back({5, 5, -1});  // empty window
  EXPECT_THROW(run_fleet(o), std::invalid_argument);

  o = disaster_options();
  o.relay_outages.push_back({1, 2, 9});  // no such relay
  EXPECT_THROW(run_fleet(o), std::invalid_argument);
}

}  // namespace
}  // namespace bees::fleet
