// Open-loop arrival process: piecewise-constant Poisson with a disaster
// spike, sampled by thinning — rate shape, determinism, and statistical
// sanity of the generated arrival stream.
#include "fleet/arrivals.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace bees::fleet {
namespace {

TEST(Arrivals, RateShapeFollowsSpikeWindow) {
  ArrivalProcess p;
  p.steady_rate_hz = 0.1;
  p.spike_start_s = 100.0;
  p.spike_duration_s = 50.0;
  p.spike_multiplier = 20.0;
  EXPECT_DOUBLE_EQ(p.rate_at(0.0), 0.1);
  EXPECT_DOUBLE_EQ(p.rate_at(99.9), 0.1);
  EXPECT_DOUBLE_EQ(p.rate_at(100.0), 2.0);
  EXPECT_DOUBLE_EQ(p.rate_at(149.9), 2.0);
  EXPECT_DOUBLE_EQ(p.rate_at(150.0), 0.1);
  EXPECT_DOUBLE_EQ(p.peak_rate(), 2.0);
}

TEST(Arrivals, NoSpikeWhenDisabled) {
  ArrivalProcess p;
  p.steady_rate_hz = 0.5;
  p.spike_start_s = -1.0;  // disabled
  p.spike_multiplier = 100.0;
  EXPECT_DOUBLE_EQ(p.rate_at(1000.0), 0.5);
  EXPECT_DOUBLE_EQ(p.peak_rate(), 0.5);
}

TEST(Arrivals, SampleStreamIsDeterministic) {
  ArrivalProcess p;
  p.steady_rate_hz = 0.2;
  p.spike_start_s = 10.0;
  p.spike_duration_s = 10.0;
  p.spike_multiplier = 5.0;
  util::Rng a(7), b(7);
  double ta = 0.0, tb = 0.0;
  for (int i = 0; i < 200; ++i) {
    ta = p.next_after(ta, a);
    tb = p.next_after(tb, b);
    ASSERT_DOUBLE_EQ(ta, tb);
    ASSERT_GT(ta, 0.0);
  }
}

TEST(Arrivals, ArrivalsAreStrictlyIncreasing) {
  ArrivalProcess p;
  p.steady_rate_hz = 1.0;
  util::Rng rng(3);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double next = p.next_after(t, rng);
    ASSERT_GT(next, t);
    t = next;
  }
}

TEST(Arrivals, SpikeMultipliesObservedCounts) {
  ArrivalProcess p;
  p.steady_rate_hz = 0.5;
  p.spike_start_s = 1000.0;
  p.spike_duration_s = 1000.0;
  p.spike_multiplier = 10.0;
  util::Rng rng(11);
  int before = 0, during = 0;
  double t = 0.0;
  while (true) {
    t = p.next_after(t, rng);
    if (t >= 2000.0) break;
    if (t < 1000.0) {
      ++before;
    } else {
      ++during;
    }
  }
  // Expected 500 vs 5000; a wide tolerance keeps this deterministic-seed
  // check robust while still catching a broken thinning sampler.
  EXPECT_NEAR(before, 500, 120);
  EXPECT_NEAR(during, 5000, 400);
  EXPECT_GT(during, 5 * before);
}

TEST(Arrivals, ZeroRateNeverFires) {
  ArrivalProcess p;
  p.steady_rate_hz = 0.0;
  util::Rng rng(1);
  EXPECT_TRUE(std::isinf(p.next_after(0.0, rng)));
}

}  // namespace
}  // namespace bees::fleet
