// Fleet simulator behavior: the determinism contract (byte-identical
// reports across runs and worker counts — the subsystem's acceptance
// criterion), overload shedding with client backoff, closed-loop chains,
// precision accounting against ground truth, and battery depletion.
#include "fleet/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace bees::fleet {
namespace {

/// Small but busy fleet: loss, a disaster spike, and a shallow queue so
/// the retry/shed paths all run.  Tiny images keep extraction cheap.
FleetOptions busy_options() {
  FleetOptions o;
  o.seed = 1234;
  o.devices = 12;
  o.duration_s = 20.0;
  o.epoch_s = 1.0;
  o.rate_hz = 0.1;
  o.spike_start_s = 5.0;
  o.spike_duration_s = 5.0;
  o.spike_multiplier = 15.0;
  o.batch = 3;
  o.set_images = 18;
  o.set_locations = 6;
  o.width = 64;
  o.height = 48;
  o.queue_depth = 2;
  o.service_base_s = 0.3;
  o.service_per_image_s = 0.1;
  o.loss = 0.05;
  o.workers = 1;
  return o;
}

TEST(FleetSimulator, SameSeedProducesIdenticalReports) {
  const FleetOptions o = busy_options();
  const std::string a = run_fleet(o).report.to_json();
  const std::string b = run_fleet(o).report.to_json();
  EXPECT_EQ(a, b);
}

TEST(FleetSimulator, ReportIsInvariantAcrossWorkerCounts) {
  // The acceptance criterion: same seed => byte-identical report for any
  // worker-thread count, including with shedding, loss, and retries live.
  FleetOptions o = busy_options();
  o.workers = 1;
  const std::string w1 = run_fleet(o).report.to_json();
  o.workers = 8;
  const std::string w8 = run_fleet(o).report.to_json();
  EXPECT_EQ(w1, w8);
}

TEST(FleetSimulator, BatchedReportInvariantAcrossWorkerCounts) {
  // Coalescing groups query runs by pure index arithmetic over the virtual
  // arrival order, so the determinism contract survives batch_window > 1.
  FleetOptions o = busy_options();
  o.batch_window = 3;
  o.workers = 1;
  const std::string w1 = run_fleet(o).report.to_json();
  o.workers = 8;
  const std::string w8 = run_fleet(o).report.to_json();
  EXPECT_EQ(w1, w8);
}

TEST(FleetSimulator, BatchWindowOnlyMovesBatchingStats) {
  // Coalescing is an amortization, never a semantic change: everything the
  // report measures about serving — totals, latency, precision, energy,
  // the SLO verdict — is identical for batch_window 1 and 4.  Only the
  // batching section (and its config echo) moves.
  FleetOptions o = busy_options();
  o.batch_window = 1;
  const FleetReport serial = run_fleet(o).report;
  o.batch_window = 4;
  const FleetReport batched = run_fleet(o).report;

  EXPECT_EQ(serial.totals.to_json(o.duration_s),
            batched.totals.to_json(o.duration_s));
  EXPECT_EQ(serial.latency_all.to_json(), batched.latency_all.to_json());
  EXPECT_EQ(serial.latency_query.to_json(),
            batched.latency_query.to_json());
  EXPECT_EQ(serial.precision.to_json(), batched.precision.to_json());
  EXPECT_EQ(serial.slo.to_json(), batched.slo.to_json());

  EXPECT_EQ(serial.config.batch_window, 1);
  EXPECT_EQ(batched.config.batch_window, 4);
  // Same queries, fewer fan-outs: coalescing strictly reduces batches.
  EXPECT_GT(serial.batching.batches, batched.batching.batches);
  EXPECT_GT(batched.batching.batch_size_p99, 1.0);
  EXPECT_DOUBLE_EQ(serial.batching.batch_size_p50, 1.0);
}

TEST(FleetSimulator, DifferentSeedsDiverge) {
  FleetOptions o = busy_options();
  const std::string a = run_fleet(o).report.to_json();
  o.seed = 4321;
  const std::string b = run_fleet(o).report.to_json();
  EXPECT_NE(a, b);
}

TEST(FleetSimulator, SpikeOverloadShedsAndClientsBackOff) {
  const FleetResult r = run_fleet(busy_options());
  const Totals& t = r.report.totals;
  EXPECT_GT(t.offered, 0u);
  EXPECT_GT(t.served, 0u);
  EXPECT_GT(t.shed, 0u);              // the spike overwhelms depth 2
  EXPECT_GT(t.shed_retries, 0u);      // shed replies are retried ...
  EXPECT_GT(t.backoff_s, 0.0);        // ... after a backoff wait
  EXPECT_GT(t.shed_bytes, 0.0);
  EXPECT_GT(t.shed_rate(), 0.0);
  EXPECT_LT(t.shed_rate(), 1.0);
  // Latency percentiles are populated and ordered.
  const LatencySummary& lat = r.report.latency_all;
  EXPECT_GT(lat.count, 0u);
  EXPECT_GT(lat.p50_s, 0.0);
  EXPECT_LE(lat.p50_s, lat.p90_s);
  EXPECT_LE(lat.p90_s, lat.p99_s);
  EXPECT_LE(lat.p99_s, lat.max_s);
}

TEST(FleetSimulator, SloVerdictGatesOnTargets) {
  FleetOptions o = busy_options();
  o.slo_max_shed_rate = 0.0;  // the spike guarantees sheds: must fail
  const FleetResult r = run_fleet(o);
  EXPECT_FALSE(r.report.slo.shed_ok);
  EXPECT_FALSE(r.report.slo.ok());

  o.slo_max_shed_rate = 1.0;  // tolerate anything: must pass
  o.slo_p99_s = 1e9;
  const FleetResult r2 = run_fleet(o);
  EXPECT_TRUE(r2.report.slo.ok());
}

TEST(FleetSimulator, ClosedLoopClientsRunChains) {
  FleetOptions o;
  o.seed = 7;
  o.devices = 8;
  o.duration_s = 30.0;
  o.closed_loop = true;
  o.think_s = 2.0;
  o.batch = 2;
  o.set_images = 12;
  o.set_locations = 4;
  o.width = 64;
  o.height = 48;
  const FleetResult r = run_fleet(o);
  const Totals& t = r.report.totals;
  EXPECT_GT(t.captures, 0u);
  EXPECT_GT(t.served, 0u);
  // A closed-loop client never holds more than one chain: offered load
  // self-limits instead of overwhelming the queue.
  EXPECT_EQ(t.shed, 0u);
  EXPECT_EQ(r.report.config.closed_loop, true);
}

TEST(FleetSimulator, PrecisionInputsTrackGroundTruth) {
  FleetOptions o;
  o.seed = 11;
  o.devices = 8;
  o.duration_s = 25.0;
  o.rate_hz = 0.15;
  o.batch = 3;
  o.set_images = 16;
  o.set_locations = 4;
  o.width = 64;
  o.height = 48;
  o.seed_fraction = 1.0;  // whole imageset pre-indexed: most are redundant
  const FleetResult r = run_fleet(o);
  const PrecisionInputs& p = r.report.precision;
  EXPECT_GT(p.redundant_images, 0u);
  EXPECT_EQ(p.redundant_correct + p.redundant_wrong, p.redundant_images);
  EXPECT_GT(p.precision(), 0.5);  // matches overwhelmingly truthful
  EXPECT_LE(p.precision(), 1.0);
  // With everything already indexed, few uploads should be needed.
  EXPECT_LT(r.report.totals.uploads, r.report.totals.queries);
}

TEST(FleetSimulator, NearEmptyBatteriesDeplete) {
  FleetOptions o;
  o.seed = 5;
  o.devices = 6;
  o.duration_s = 30.0;
  o.rate_hz = 0.2;
  o.batch = 2;
  o.set_images = 12;
  o.set_locations = 4;
  o.width = 64;
  o.height = 48;
  // ~21.5 J of charge vs ~24 J of baseline draw over the run: every
  // device dies mid-run and stops capturing.
  o.battery_fraction = 0.0005;
  const FleetResult r = run_fleet(o);
  EXPECT_EQ(r.report.totals.depleted_devices,
            static_cast<std::uint64_t>(o.devices));
  EXPECT_EQ(r.report.mean_battery_fraction, 0.0);
  EXPECT_GT(r.report.energy.idle_j, 0.0);
}

TEST(FleetSimulator, EnergyBucketsArePopulated) {
  const FleetResult r = run_fleet(busy_options());
  const energy::EnergyBreakdown& e = r.report.energy;
  EXPECT_GT(e.extraction_j, 0.0);   // ORB on every capture
  EXPECT_GT(e.feature_tx_j, 0.0);   // delivered batch queries
  EXPECT_GT(e.retransmit_tx_j, 0.0);  // 5% loss burns airtime
  EXPECT_GT(e.rx_j, 0.0);           // replies received
  EXPECT_GT(e.idle_j, 0.0);
  EXPECT_GT(e.total(), e.active_total());
}

TEST(FleetSimulator, ReportJsonCarriesEverySection) {
  const std::string json = run_fleet(busy_options()).report.to_json();
  for (const char* key :
       {"\"loadgen\"", "\"totals\"", "\"latency\"", "\"energy\"",
        "\"precision_inputs\"", "\"slo\"", "\"p50_s\"", "\"p90_s\"",
        "\"p99_s\"", "\"shed_rate\"", "\"throughput_rps\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(FleetSimulator, RejectsDegenerateOptions) {
  FleetOptions o;
  o.devices = 0;
  EXPECT_THROW(run_fleet(o), std::invalid_argument);
  o = FleetOptions{};
  o.duration_s = 0.0;
  EXPECT_THROW(run_fleet(o), std::invalid_argument);
  o = FleetOptions{};
  o.epoch_s = -1.0;
  EXPECT_THROW(run_fleet(o), std::invalid_argument);
  o = FleetOptions{};
  o.queue_depth = 0;
  EXPECT_THROW(run_fleet(o), std::invalid_argument);
  o = FleetOptions{};
  o.batch_window = 0;
  EXPECT_THROW(run_fleet(o), std::invalid_argument);
}

}  // namespace
}  // namespace bees::fleet
