// Client-observed admission shedding: the serving cluster's shed reply
// must decode as a *retryable* error on the client side, and a client
// that backs off and resends must succeed once the overload clears —
// closing the loop between transport retries (message loss) and the
// admission gate (server overload).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "features/orb.hpp"
#include "fleet/client.hpp"
#include "imaging/synth.hpp"
#include "net/channel.hpp"
#include "net/protocol.hpp"
#include "net/transport.hpp"
#include "serve/cluster.hpp"
#include "util/rng.hpp"

namespace bees::fleet {
namespace {

feat::BinaryFeatures make_binary(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

std::vector<std::uint8_t> make_query(std::uint64_t seed) {
  return net::encode_binary_query(make_binary(seed), idx::kDefaultTopK,
                                  9'000.0);
}

TEST(ShedClient, RealShedReplyClassifiesAsRetryable) {
  // queue_depth 0 makes the real gate shed deterministically: every
  // request produces the exact reply an overloaded cluster sends.
  serve::ClusterOptions options;
  options.shards = 1;
  options.threads = 1;
  options.queue_depth = 0;
  serve::Cluster cluster(options);

  const auto reply = cluster.handle(make_query(100));
  EXPECT_EQ(classify_reply(reply), ReplyStatus::kShed);
  EXPECT_TRUE(is_shed_reply(reply));
  EXPECT_EQ(cluster.shed_count(), 1u);
}

TEST(ShedClient, ServedAndMalformedRepliesClassifyApart) {
  serve::Cluster cluster;
  cluster.seed_binary(make_binary(100), {2.3, 48.86, true}, 11'000.0);
  EXPECT_EQ(classify_reply(cluster.handle(make_query(100))),
            ReplyStatus::kOk);
  // A non-shed encoded error is terminal for the client.
  EXPECT_EQ(classify_reply(net::encode_error("malformed request")),
            ReplyStatus::kError);
  // Undecodable bytes are terminal too, never retried.
  EXPECT_EQ(classify_reply({0x01, 0x02, 0x03}), ReplyStatus::kError);
}

TEST(ShedClient, SustainedOverloadShedsDecodeRetryableEverywhere) {
  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 12;

  serve::ClusterOptions options;
  options.shards = 2;
  options.threads = 1;
  options.queue_depth = 1;
  serve::Cluster cluster(options);
  for (int i = 0; i < 4; ++i) {
    cluster.seed_binary(make_binary(100 + static_cast<std::uint64_t>(i)),
                        {2.3, 48.86, true}, 11'000.0);
  }

  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::atomic<int> terminal{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kRequestsPerClient; ++q) {
        const auto reply = cluster.handle(
            make_query(100 + static_cast<std::uint64_t>((c + q) % 4)));
        switch (classify_reply(reply)) {
          case ReplyStatus::kOk: ok.fetch_add(1); break;
          case ReplyStatus::kShed: shed.fetch_add(1); break;
          case ReplyStatus::kError: terminal.fetch_add(1); break;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Under sustained overload every reply is either a served answer or the
  // retryable shed error — never a terminal one — and the client-observed
  // shed count matches the gate's own accounting exactly.
  EXPECT_EQ(terminal.load(), 0);
  EXPECT_EQ(ok.load() + shed.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(cluster.shed_count(), static_cast<std::size_t>(shed.load()));
  // The overload is transient: once the burst drains, the gate admits.
  EXPECT_EQ(classify_reply(cluster.handle(make_query(100))),
            ReplyStatus::kOk);
}

TEST(ShedClient, ShedThenServedSucceedsAfterBackoff) {
  constexpr int kSheds = 3;
  serve::Cluster cluster;
  cluster.seed_binary(make_binary(100), {2.3, 48.86, true}, 11'000.0);

  // Deterministic overload window: the first kSheds requests see exactly
  // the gate's shed reply, later ones reach the (recovered) cluster.
  int calls = 0;
  net::Transport::Handler handler =
      [&](const std::vector<std::uint8_t>& request) {
        if (calls++ < kSheds) {
          return net::encode_error(serve::kShedErrorMessage);
        }
        return cluster.handle(request);
      };

  net::Channel channel(net::ChannelParams::fixed(256'000.0));
  net::RetryPolicy policy;
  policy.max_attempts = 8;
  net::Transport transport(handler, channel, policy);
  util::Rng backoff_rng(42);

  const ShedRetryResult result = exchange_with_shed_retry(
      transport, channel, make_query(100), backoff_rng);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.shed_retries, kSheds);
  EXPECT_GT(result.shed_backoff_s, 0.0);
  ASSERT_TRUE(result.last.ok);
  const auto envelope = net::open_envelope(result.last.reply);
  EXPECT_EQ(envelope.type, net::MessageType::kQueryResponse);
}

TEST(ShedClient, PermanentOverloadExhaustsTheBudget) {
  net::Transport::Handler always_shed =
      [](const std::vector<std::uint8_t>&) {
        return net::encode_error(serve::kShedErrorMessage);
      };
  net::Channel channel(net::ChannelParams::fixed(256'000.0));
  net::RetryPolicy policy;
  policy.max_attempts = 4;
  net::Transport transport(always_shed, channel, policy);
  util::Rng backoff_rng(42);

  const ShedRetryResult result = exchange_with_shed_retry(
      transport, channel, make_query(100), backoff_rng);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.last.ok);  // delivery worked; the server kept shedding
  EXPECT_EQ(result.shed_retries, policy.max_attempts - 1);
  EXPECT_TRUE(is_shed_reply(result.last.reply));
}

}  // namespace
}  // namespace bees::fleet
