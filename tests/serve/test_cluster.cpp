// The cluster's contract: any shard count produces byte-identical replies
// and identical accounting to one serial cloud::Server fed the same
// operations in the same order.
#include "serve/cluster.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/rpc.hpp"
#include "cloud/server.hpp"
#include "features/global.hpp"
#include "features/orb.hpp"
#include "features/sift.hpp"
#include "imaging/synth.hpp"
#include "net/protocol.hpp"
#include "util/rng.hpp"

namespace bees::serve {
namespace {

feat::BinaryFeatures make_binary(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

feat::FloatFeatures make_float(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_sift(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

feat::ColorHistogram make_histogram(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::color_histogram(
      img::render_view(img::SceneSpec{seed, 18, 4}, 120, 90, pert, rng));
}

idx::GeoTag geo_of(int i) {
  // Three distinct places so routing exercises co-location, plus the
  // occasional untagged image.
  if (i % 5 == 4) return {};
  return {2.29 + 0.01 * (i % 3), 48.85 + 0.002 * (i % 3), true};
}

/// The mixed workload every equivalence test drives: seeds, then an
/// interleaving of uploads and queries covering all message types.
std::vector<std::vector<std::uint8_t>> workload_requests() {
  std::vector<std::vector<std::uint8_t>> requests;
  for (int i = 0; i < 6; ++i) {
    net::ImageUploadRequest up;
    up.features = make_binary(500 + static_cast<std::uint64_t>(i));
    up.image_bytes = 700'000.0 + 1'000.0 * i;
    up.geo = geo_of(i);
    up.thumbnail_bytes = 12'000.0 + 100.0 * i;
    requests.push_back(net::encode(up));

    net::BinaryQueryRequest q;
    q.features = make_binary(500 + static_cast<std::uint64_t>(i));
    q.feature_bytes = 9'000.0 + 10.0 * i;
    requests.push_back(net::encode(q));

    net::FloatUploadRequest fup;
    fup.features = make_float(800 + static_cast<std::uint64_t>(i));
    fup.image_bytes = 650'000.0;
    fup.geo = geo_of(i + 1);
    requests.push_back(net::encode(fup));

    net::FloatQueryRequest fq;
    fq.features = make_float(800 + static_cast<std::uint64_t>(i));
    fq.feature_bytes = 20'000.0;
    requests.push_back(net::encode(fq));

    net::GlobalUploadRequest gup;
    gup.histogram = make_histogram(900 + static_cast<std::uint64_t>(i));
    gup.image_bytes = 710'000.0;
    gup.geo = geo_of(i);
    requests.push_back(net::encode(gup));

    net::GlobalQueryRequest gq;
    gq.histogram = make_histogram(900 + static_cast<std::uint64_t>(i));
    gq.geo = geo_of(i);
    gq.feature_bytes = 256.0;
    requests.push_back(net::encode(gq));

    net::PlainUploadRequest pup;
    pup.image_bytes = 720'000.0;
    pup.geo = geo_of(i + 2);
    requests.push_back(net::encode(pup));
  }
  // One bulk CBRD round over fresh views of the uploaded scenes.
  net::BatchQueryRequest batch;
  for (int i = 0; i < 4; ++i) {
    batch.features.push_back(make_binary(500 + static_cast<std::uint64_t>(i)));
    batch.feature_bytes.push_back(8'500.0);
  }
  requests.push_back(net::encode(batch));
  return requests;
}

void seed_both(cloud::Server& server, Cluster& cluster) {
  for (int i = 0; i < 5; ++i) {
    const auto features = make_binary(100 + static_cast<std::uint64_t>(i));
    server.seed_binary(features, geo_of(i), 11'000.0);
    cluster.seed_binary(features, geo_of(i), 11'000.0);
  }
  for (int i = 0; i < 4; ++i) {
    const auto features = make_float(200 + static_cast<std::uint64_t>(i));
    server.seed_float(features, geo_of(i));
    cluster.seed_float(features, geo_of(i));
  }
  for (int i = 0; i < 3; ++i) {
    const auto histogram = make_histogram(300 + static_cast<std::uint64_t>(i));
    server.seed_global(histogram, geo_of(i));
    cluster.seed_global(histogram, geo_of(i));
  }
}

void expect_stats_equal(const cloud::ServerStats& a,
                        const cloud::ServerStats& b) {
  EXPECT_EQ(a.images_stored, b.images_stored);
  EXPECT_DOUBLE_EQ(a.image_bytes_received, b.image_bytes_received);
  EXPECT_DOUBLE_EQ(a.feature_bytes_received, b.feature_bytes_received);
  EXPECT_EQ(a.binary_queries, b.binary_queries);
  EXPECT_EQ(a.float_queries, b.float_queries);
  EXPECT_EQ(a.unique_locations, b.unique_locations);
}

class ClusterEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ClusterEquivalence, RepliesMatchSerialDispatchByteForByte) {
  cloud::Server server;
  ClusterOptions options;
  options.shards = GetParam();
  Cluster cluster(options);
  seed_both(server, cluster);

  int step = 0;
  for (const auto& request : workload_requests()) {
    const auto serial = cloud::dispatch(server, request);
    const auto sharded = cluster.handle(request);
    ASSERT_EQ(sharded, serial) << "shards=" << GetParam() << " step=" << step;
    ++step;
  }
  expect_stats_equal(cluster.stats(), server.stats());
}

TEST_P(ClusterEquivalence, DirectPlaneMatchesSerial) {
  cloud::Server server;
  ClusterOptions options;
  options.shards = GetParam();
  Cluster cluster(options);
  seed_both(server, cluster);

  for (int i = 0; i < 5; ++i) {
    const auto query = make_binary(100 + static_cast<std::uint64_t>(i));
    const idx::QueryResult a = server.query_binary(query, 9'000.0);
    const idx::QueryResult b = cluster.query_binary(query, 9'000.0);
    EXPECT_EQ(b.best_id, a.best_id);
    EXPECT_DOUBLE_EQ(b.max_similarity, a.max_similarity);
    EXPECT_EQ(b.candidates_checked, a.candidates_checked);
    EXPECT_EQ(b.ops, a.ops);
    ASSERT_EQ(b.hits.size(), a.hits.size());
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(b.hits[h].id, a.hits[h].id);
      EXPECT_DOUBLE_EQ(b.hits[h].similarity, a.hits[h].similarity);
    }
  }
  for (int i = 0; i < 4; ++i) {
    const auto query = make_float(200 + static_cast<std::uint64_t>(i));
    const idx::QueryResult a = server.query_float(query, 20'000.0);
    const idx::QueryResult b = cluster.query_float(query, 20'000.0);
    EXPECT_EQ(b.best_id, a.best_id);
    EXPECT_DOUBLE_EQ(b.max_similarity, a.max_similarity);
  }
  for (int i = 0; i < 3; ++i) {
    const auto histogram = make_histogram(300 + static_cast<std::uint64_t>(i));
    EXPECT_DOUBLE_EQ(cluster.query_global(histogram, geo_of(i)),
                     server.query_global(histogram, geo_of(i)));
  }
  expect_stats_equal(cluster.stats(), server.stats());
}

TEST_P(ClusterEquivalence, StoreIdsMatchSerialIdSequence) {
  cloud::Server server;
  ClusterOptions options;
  options.shards = GetParam();
  Cluster cluster(options);
  seed_both(server, cluster);

  for (int i = 0; i < 6; ++i) {
    const auto features = make_binary(600 + static_cast<std::uint64_t>(i));
    cloud::StoreInfo info{700'000.0, geo_of(i), 12'000.0};
    EXPECT_EQ(cluster.store_binary(features, info),
              server.store_binary(features, info));
  }
  for (int i = 0; i < 4; ++i) {
    const auto features = make_float(700 + static_cast<std::uint64_t>(i));
    cloud::StoreInfo info{650'000.0, geo_of(i), 0.0};
    EXPECT_EQ(cluster.store_float(features, info),
              server.store_float(features, info));
  }
}

TEST_P(ClusterEquivalence, ThumbnailFeedbackMatchesSerial) {
  cloud::Server server;
  ClusterOptions options;
  options.shards = GetParam();
  Cluster cluster(options);
  seed_both(server, cluster);

  for (idx::ImageId id = 0; id < 5; ++id) {
    EXPECT_DOUBLE_EQ(cluster.thumbnail_bytes_of(id),
                     server.thumbnail_bytes_of(id));
  }
}

TEST_P(ClusterEquivalence, ErrorRepliesMatchSerial) {
  cloud::Server server;
  ClusterOptions options;
  options.shards = GetParam();
  Cluster cluster(options);

  // Malformed envelope.
  const std::vector<std::uint8_t> garbage{0xFF, 0x01, 0x02};
  EXPECT_EQ(cluster.handle(garbage), cloud::dispatch(server, garbage));
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(cluster.handle(empty), cloud::dispatch(server, empty));

  // A response type is not a request.
  const auto response = net::encode(net::QueryResponse{});
  const auto serial = cloud::dispatch(server, response);
  EXPECT_EQ(cluster.handle(response), serial);
  const auto envelope = net::open_envelope(serial);
  ASSERT_EQ(envelope.type, net::MessageType::kError);
  EXPECT_EQ(net::decode_error(envelope.payload), "unexpected message type");
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ClusterEquivalence,
                         ::testing::Values(1, 2, 3, 5));

TEST_P(ClusterEquivalence, AnnPrunedQueriesMatchSerialExactly) {
  // The ANN shortlist path must preserve the cluster's core contract: the
  // per-image scores are pure (query, image) functions, so any shard count
  // reproduces the serial server's reply — hits, similarities, candidate
  // counts, and op counts all equal.
  idx::FeatureIndexParams binary_params;
  binary_params.ann.enabled = true;
  binary_params.ann.vocabulary.branching = 4;
  binary_params.ann.vocabulary.depth = 2;
  binary_params.ann.vocabulary_sample = 256;
  cloud::Server server(binary_params, {});
  ClusterOptions options;
  options.shards = GetParam();
  options.binary_params = binary_params;
  Cluster cluster(options);
  for (int i = 0; i < 10; ++i) {
    const auto features = make_binary(400 + static_cast<std::uint64_t>(i));
    server.seed_binary(features, geo_of(i), 11'000.0);
    cluster.seed_binary(features, geo_of(i), 11'000.0);
  }
  for (int i = 0; i < 10; ++i) {
    const auto query = make_binary(400 + static_cast<std::uint64_t>(i));
    const idx::QueryResult a = server.query_binary(query, 9'000.0);
    const idx::QueryResult b = cluster.query_binary(query, 9'000.0);
    EXPECT_EQ(b.best_id, a.best_id) << "shards=" << GetParam() << " q=" << i;
    EXPECT_DOUBLE_EQ(b.max_similarity, a.max_similarity);
    EXPECT_EQ(b.candidates_checked, a.candidates_checked);
    EXPECT_EQ(b.ops, a.ops);
    ASSERT_EQ(b.hits.size(), a.hits.size());
    for (std::size_t h = 0; h < a.hits.size(); ++h) {
      EXPECT_EQ(b.hits[h].id, a.hits[h].id);
      EXPECT_DOUBLE_EQ(b.hits[h].similarity, a.hits[h].similarity);
    }
    // The recall_target knob rides through the QueryOptions overload; a
    // tighter target must shrink (or keep) the rescore budget, and stay
    // shard-invariant too.
    idx::QueryOptions tight;
    tight.recall_target = 0.5;
    const idx::QueryResult c = cluster.query_binary(query, 0.0, tight);
    EXPECT_LE(c.candidates_checked, b.candidates_checked);
    EXPECT_EQ(c.best_id, a.best_id);
  }
}

TEST_P(ClusterEquivalence, BatchedBinaryQueriesMatchSerialQueries) {
  ClusterOptions options;
  options.shards = GetParam();
  Cluster serial_cluster(options);
  Cluster batched_cluster(options);
  for (int i = 0; i < 8; ++i) {
    const auto features = make_binary(100 + static_cast<std::uint64_t>(i));
    serial_cluster.seed_binary(features, geo_of(i), 11'000.0);
    batched_cluster.seed_binary(features, geo_of(i), 11'000.0);
  }

  std::vector<feat::BinaryFeatures> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(make_binary(100 + static_cast<std::uint64_t>(i % 4)));
  }
  std::vector<BinaryBatchItem> items;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    BinaryBatchItem item;
    item.features = &queries[q];
    item.feature_bytes = 9'000.0 + 10.0 * static_cast<double>(q);
    item.options.top_k = 1 + static_cast<int>(q % 3);
    items.push_back(item);
  }

  const std::vector<idx::QueryResult> batched =
      batched_cluster.query_binary_batch(items);
  ASSERT_EQ(batched.size(), items.size());
  for (std::size_t q = 0; q < items.size(); ++q) {
    const idx::QueryResult serial = serial_cluster.query_binary(
        *items[q].features, items[q].feature_bytes, items[q].options);
    EXPECT_EQ(batched[q].best_id, serial.best_id);
    EXPECT_DOUBLE_EQ(batched[q].max_similarity, serial.max_similarity);
    EXPECT_EQ(batched[q].candidates_checked, serial.candidates_checked);
    EXPECT_EQ(batched[q].ops, serial.ops);
    ASSERT_EQ(batched[q].hits.size(), serial.hits.size());
    for (std::size_t h = 0; h < serial.hits.size(); ++h) {
      EXPECT_EQ(batched[q].hits[h].id, serial.hits[h].id);
      EXPECT_DOUBLE_EQ(batched[q].hits[h].similarity,
                       serial.hits[h].similarity);
    }
  }
  expect_stats_equal(batched_cluster.stats(), serial_cluster.stats());
}

TEST_P(ClusterEquivalence, CoalescedRepliesMatchPerRequestHandling) {
  ClusterOptions options;
  options.shards = GetParam();
  Cluster serial_cluster(options);
  Cluster coalesced_cluster(options);
  {
    cloud::Server unused;  // seed_both wants a server; keep workloads equal
    seed_both(unused, serial_cluster);
  }
  {
    cloud::Server unused;
    seed_both(unused, coalesced_cluster);
  }

  // A read-only group — the shape the gate and the fleet batcher actually
  // coalesce (mutations break a run).  Binary and bulk-CBRD queries join
  // the shared fan-out; the float query, global query, and malformed
  // envelope take the per-request fallback.  Every reply must match
  // per-request handling byte for byte, in group order.
  std::vector<std::vector<std::uint8_t>> requests;
  for (int i = 0; i < 4; ++i) {
    net::BinaryQueryRequest q;
    q.features = make_binary(100 + static_cast<std::uint64_t>(i));
    q.feature_bytes = 9'000.0 + 10.0 * i;
    requests.push_back(net::encode(q));
  }
  net::BatchQueryRequest bulk;
  for (int i = 0; i < 3; ++i) {
    bulk.features.push_back(make_binary(100 + static_cast<std::uint64_t>(i)));
    bulk.feature_bytes.push_back(8'500.0);
  }
  requests.push_back(net::encode(bulk));
  net::FloatQueryRequest fq;
  fq.features = make_float(200);
  fq.feature_bytes = 20'000.0;
  requests.push_back(net::encode(fq));
  net::GlobalQueryRequest gq;
  gq.histogram = make_histogram(300);
  gq.geo = geo_of(0);
  gq.feature_bytes = 256.0;
  requests.push_back(net::encode(gq));
  requests.push_back({0x42, 0x00, 0x17});  // malformed envelope

  std::vector<std::vector<std::uint8_t>> expected;
  for (const auto& request : requests) {
    expected.push_back(serial_cluster.handle(request));
  }
  const auto replies = coalesced_cluster.handle_coalesced(requests);
  ASSERT_EQ(replies.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replies[i], expected[i]) << "request " << i;
  }
  expect_stats_equal(coalesced_cluster.stats(), serial_cluster.stats());
}

TEST(Cluster, MergedBinaryIndexPreservesGlobalIdOrder) {
  ClusterOptions options;
  options.shards = 3;
  Cluster cluster(options);
  cloud::Server server;
  seed_both(server, cluster);

  const idx::FeatureIndex merged = cluster.merged_binary_index();
  ASSERT_EQ(merged.image_count(), 5u);
  for (idx::ImageId id = 0; id < 5; ++id) {
    const auto& expected = make_binary(100 + static_cast<std::uint64_t>(id));
    ASSERT_EQ(merged.features_of(id).size(), expected.size());
    for (std::size_t d = 0; d < expected.size(); ++d) {
      EXPECT_EQ(merged.features_of(id).descriptors[d],
                expected.descriptors[d]);
    }
    EXPECT_EQ(merged.geo_of(id), geo_of(static_cast<int>(id)));
  }
}

TEST(Cluster, PreloadBinaryMatchesSeededServer) {
  // preload from a merged snapshot == seeding the same entries directly.
  ClusterOptions donor_options;
  donor_options.shards = 2;
  Cluster donor(donor_options);
  for (int i = 0; i < 5; ++i) {
    donor.seed_binary(make_binary(100 + static_cast<std::uint64_t>(i)),
                      geo_of(i), 11'000.0);
  }

  ClusterOptions options;
  options.shards = 4;
  Cluster cluster(options);
  cluster.preload_binary(donor.merged_binary_index());

  cloud::Server server;
  for (int i = 0; i < 5; ++i) {
    server.seed_binary(make_binary(100 + static_cast<std::uint64_t>(i)),
                       geo_of(i));
  }
  for (int i = 0; i < 5; ++i) {
    const auto query = make_binary(100 + static_cast<std::uint64_t>(i));
    const idx::QueryResult a = server.query_binary(query, 9'000.0);
    const idx::QueryResult b = cluster.query_binary(query, 9'000.0);
    EXPECT_EQ(b.best_id, a.best_id);
    EXPECT_DOUBLE_EQ(b.max_similarity, a.max_similarity);
  }
}

}  // namespace
}  // namespace bees::serve
