// Durability: a cluster rebuilt from its data directory must serve the
// same answers as one that never went down — whether it recovers from the
// WAL alone, a snapshot plus a WAL tail, or a WAL torn mid-record by a
// crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cloud/server.hpp"
#include "features/global.hpp"
#include "features/orb.hpp"
#include "features/sift.hpp"
#include "imaging/synth.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "serve/cluster.hpp"
#include "util/rng.hpp"

namespace bees::serve {
namespace {

feat::BinaryFeatures make_binary(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

feat::FloatFeatures make_float(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_sift(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

feat::ColorHistogram make_histogram(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::color_histogram(
      img::render_view(img::SceneSpec{seed, 18, 4}, 120, 90, pert, rng));
}

idx::GeoTag geo_of(int i) {
  return {2.29 + 0.01 * (i % 3), 48.85 + 0.002 * (i % 3), true};
}

/// Fresh scratch directory per test.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bees_recovery_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

/// The mutation script both the durable instance and the in-memory
/// reference replay; `count` lets the crash test cut it short.
void apply_ops(Cluster& cluster, int count) {
  for (int i = 0; i < count; ++i) {
    switch (i % 4) {
      case 0:
        cluster.store_binary(make_binary(50 + static_cast<std::uint64_t>(i)),
                             {700'000.0 + i, geo_of(i), 12'000.0 + i});
        break;
      case 1:
        cluster.store_float(make_float(80 + static_cast<std::uint64_t>(i)),
                            {650'000.0 + i, geo_of(i), 0.0});
        break;
      case 2:
        cluster.store_global(make_histogram(90 + static_cast<std::uint64_t>(i)),
                             {710'000.0 + i, geo_of(i), 0.0});
        break;
      default:
        cluster.store_plain({720'000.0 + i, geo_of(i + 1), 0.0});
        break;
    }
  }
}

void seed(Cluster& cluster) {
  for (int i = 0; i < 3; ++i) {
    cluster.seed_binary(make_binary(10 + static_cast<std::uint64_t>(i)),
                        geo_of(i), 11'000.0);
  }
  cluster.seed_float(make_float(20), geo_of(0));
  cluster.seed_global(make_histogram(30), geo_of(1));
}

void expect_store_stats_equal(const cloud::ServerStats& a,
                              const cloud::ServerStats& b) {
  EXPECT_EQ(a.images_stored, b.images_stored);
  EXPECT_DOUBLE_EQ(a.image_bytes_received, b.image_bytes_received);
  EXPECT_DOUBLE_EQ(a.feature_bytes_received, b.feature_bytes_received);
  EXPECT_EQ(a.unique_locations, b.unique_locations);
}

/// The recovered instance must answer every probe with the reference's
/// exact bytes.
void expect_serves_like(Cluster& recovered, Cluster& reference, int ops) {
  for (int i = 0; i < ops; ++i) {
    if (i % 4 == 0) {
      const auto request = net::encode_binary_query(
          make_binary(50 + static_cast<std::uint64_t>(i)), idx::kDefaultTopK,
          9'000.0);
      EXPECT_EQ(recovered.handle(request), reference.handle(request))
          << "binary probe " << i;
    } else if (i % 4 == 1) {
      const auto request = net::encode_float_query(
          make_float(80 + static_cast<std::uint64_t>(i)), idx::kDefaultTopK,
          20'000.0);
      EXPECT_EQ(recovered.handle(request), reference.handle(request))
          << "float probe " << i;
    }
  }
  net::GlobalQueryRequest gq;
  gq.histogram = make_histogram(92);
  gq.geo = geo_of(2);
  gq.feature_bytes = 256.0;
  const auto request = net::encode(gq);
  EXPECT_EQ(recovered.handle(request), reference.handle(request));
}

TEST_F(RecoveryTest, WalOnlyRecoveryRestoresServingState) {
  constexpr int kOps = 12;
  ClusterOptions durable;
  durable.shards = 2;
  durable.data_dir = dir_;
  {
    Cluster cluster(durable);
    seed(cluster);
    apply_ops(cluster, kOps);
  }  // no checkpoint: everything lives in the WALs

  Cluster recovered(durable);
  ClusterOptions in_memory;
  in_memory.shards = 2;
  Cluster reference(in_memory);
  seed(reference);
  apply_ops(reference, kOps);

  expect_store_stats_equal(recovered.stats(), reference.stats());
  expect_serves_like(recovered, reference, kOps);
  // Recovery restores store-side accounting; query counters restart at
  // zero by design (queries are not journaled) — after identical probes
  // above, the counters line up again.
  EXPECT_EQ(recovered.stats().binary_queries, reference.stats().binary_queries);
}

TEST_F(RecoveryTest, SnapshotPlusWalTailRecovers) {
  constexpr int kBeforeCheckpoint = 8;
  constexpr int kAfter = 5;
  ClusterOptions durable;
  durable.shards = 3;
  durable.data_dir = dir_;
  {
    Cluster cluster(durable);
    seed(cluster);
    apply_ops(cluster, kBeforeCheckpoint);
    cluster.checkpoint();  // snapshot + WAL truncation
    for (int i = kBeforeCheckpoint; i < kBeforeCheckpoint + kAfter; ++i) {
      cluster.store_binary(make_binary(50 + static_cast<std::uint64_t>(i)),
                           {700'000.0 + i, geo_of(i), 12'000.0 + i});
    }
  }

  Cluster recovered(durable);
  ClusterOptions in_memory;
  in_memory.shards = 3;
  Cluster reference(in_memory);
  seed(reference);
  apply_ops(reference, kBeforeCheckpoint);
  for (int i = kBeforeCheckpoint; i < kBeforeCheckpoint + kAfter; ++i) {
    reference.store_binary(make_binary(50 + static_cast<std::uint64_t>(i)),
                           {700'000.0 + i, geo_of(i), 12'000.0 + i});
  }

  expect_store_stats_equal(recovered.stats(), reference.stats());
  expect_serves_like(recovered, reference, kBeforeCheckpoint);
}

TEST_F(RecoveryTest, CheckpointWithKeptWalDoesNotDoubleApply) {
  // wal_reset_on_checkpoint=false leaves snapshot-covered records in the
  // WAL — the crash window between "snapshot published" and "WAL
  // truncated".  Replay must skip them by sequence number.
  constexpr int kOps = 9;
  ClusterOptions durable;
  durable.shards = 2;
  durable.data_dir = dir_;
  durable.wal_reset_on_checkpoint = false;
  {
    Cluster cluster(durable);
    seed(cluster);
    apply_ops(cluster, kOps);
    cluster.checkpoint();
  }

  Cluster recovered(durable);
  ClusterOptions in_memory;
  in_memory.shards = 2;
  Cluster reference(in_memory);
  seed(reference);
  apply_ops(reference, kOps);

  expect_store_stats_equal(recovered.stats(), reference.stats());
  expect_serves_like(recovered, reference, kOps);
}

TEST_F(RecoveryTest, AutomaticCheckpointsRecover) {
  constexpr int kOps = 10;
  ClusterOptions durable;
  durable.shards = 2;
  durable.data_dir = dir_;
  durable.checkpoint_every = 3;
  {
    Cluster cluster(durable);
    seed(cluster);
    apply_ops(cluster, kOps);
  }

  Cluster recovered(durable);
  ClusterOptions in_memory;
  in_memory.shards = 2;
  Cluster reference(in_memory);
  seed(reference);
  apply_ops(reference, kOps);

  expect_store_stats_equal(recovered.stats(), reference.stats());
  expect_serves_like(recovered, reference, kOps);
}

TEST_F(RecoveryTest, CrashMidWalRecordRecoversTheIntactPrefix) {
  // Single shard so the WAL order equals the op order: tearing the last
  // frame's bytes must recover exactly the first kOps-1 operations.
  constexpr int kOps = 6;
  ClusterOptions durable;
  durable.shards = 1;
  durable.data_dir = dir_;
  {
    Cluster cluster(durable);
    apply_ops(cluster, kOps);
  }
  const std::string wal = dir_ + "/shard-0/wal.log";
  ASSERT_TRUE(std::filesystem::exists(wal));
  const auto full_size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, full_size - 5);  // simulated crash

  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  Cluster recovered(durable);
  const auto counters = obs::MetricsRegistry::global().snapshot().counters;
  obs::set_enabled(false);
  ASSERT_TRUE(counters.count("serve.wal.dropped_records"));
  EXPECT_DOUBLE_EQ(counters.at("serve.wal.dropped_records"), 1.0);

  ClusterOptions in_memory;
  in_memory.shards = 1;
  Cluster reference(in_memory);
  apply_ops(reference, kOps - 1);

  expect_store_stats_equal(recovered.stats(), reference.stats());
  expect_serves_like(recovered, reference, kOps - 1);

  // Recovery truncated the torn tail, so the WAL accepts appends again:
  // a post-crash store must survive the *next* restart too.
  recovered.store_binary(make_binary(999), {701'000.0, geo_of(0), 13'000.0});
}

TEST_F(RecoveryTest, StoresAfterACrashSurviveTheNextRestart) {
  constexpr int kOps = 5;
  ClusterOptions durable;
  durable.shards = 1;
  durable.data_dir = dir_;
  {
    Cluster cluster(durable);
    apply_ops(cluster, kOps);
  }
  const std::string wal = dir_ + "/shard-0/wal.log";
  std::filesystem::resize_file(wal, std::filesystem::file_size(wal) - 3);

  {
    Cluster recovered(durable);
    recovered.store_binary(make_binary(999), {701'000.0, geo_of(0), 13'000.0});
  }

  Cluster again(durable);
  ClusterOptions in_memory;
  in_memory.shards = 1;
  Cluster reference(in_memory);
  apply_ops(reference, kOps - 1);
  reference.store_binary(make_binary(999), {701'000.0, geo_of(0), 13'000.0});

  expect_store_stats_equal(again.stats(), reference.stats());
  const auto request = net::encode_binary_query(make_binary(999),
                                                idx::kDefaultTopK, 9'000.0);
  EXPECT_EQ(again.handle(request), reference.handle(request));
}

TEST_F(RecoveryTest, FloatIndexSurvivesSnapshotRecovery) {
  ClusterOptions durable;
  durable.shards = 2;
  durable.data_dir = dir_;
  {
    Cluster cluster(durable);
    for (int i = 0; i < 4; ++i) {
      cluster.store_float(make_float(80 + static_cast<std::uint64_t>(i)),
                          {650'000.0 + i, geo_of(i), 0.0});
    }
    cluster.checkpoint();
  }

  Cluster recovered(durable);
  ClusterOptions in_memory;
  in_memory.shards = 2;
  Cluster reference(in_memory);
  for (int i = 0; i < 4; ++i) {
    reference.store_float(make_float(80 + static_cast<std::uint64_t>(i)),
                          {650'000.0 + i, geo_of(i), 0.0});
  }

  for (int i = 0; i < 4; ++i) {
    const auto request = net::encode_float_query(
        make_float(80 + static_cast<std::uint64_t>(i)), idx::kDefaultTopK,
        20'000.0);
    EXPECT_EQ(recovered.handle(request), reference.handle(request));
  }
}

}  // namespace
}  // namespace bees::serve
