// Store-backed durability: with a shared segment store attached, WAL
// record bodies and snapshots live as content-addressed chunks — recovery
// must still serve byte-identical answers across shard counts, checkpoint
// and compaction cycles, and torn segment tails, and chunked WAL frames
// must never decode without a store to resolve them.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cloud/server.hpp"
#include "features/global.hpp"
#include "features/orb.hpp"
#include "features/sift.hpp"
#include "imaging/synth.hpp"
#include "net/protocol.hpp"
#include "serve/cluster.hpp"
#include "serve/wal.hpp"
#include "util/rng.hpp"

namespace bees::serve {
namespace {

feat::BinaryFeatures make_binary(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

feat::FloatFeatures make_float(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_sift(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

feat::ColorHistogram make_histogram(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::color_histogram(
      img::render_view(img::SceneSpec{seed, 18, 4}, 120, 90, pert, rng));
}

idx::GeoTag geo_of(int i) {
  return {2.29 + 0.01 * (i % 3), 48.85 + 0.002 * (i % 3), true};
}

class StoreDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bees_store_durability_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Cluster options with the shared segment store rooted under the test
  /// scratch dir; chunk_size is small so every WAL body spans chunks.
  ClusterOptions durable(int shards) const {
    ClusterOptions options;
    options.shards = shards;
    options.data_dir = dir_;
    options.segment_store.dir = dir_ + "/segstore";
    options.segment_store.chunk_size = 1024;
    return options;
  }

  std::string dir_;
};

void apply_ops(Cluster& cluster, int count) {
  for (int i = 0; i < count; ++i) {
    switch (i % 4) {
      case 0:
        cluster.store_binary(make_binary(50 + static_cast<std::uint64_t>(i)),
                             {700'000.0 + i, geo_of(i), 12'000.0 + i});
        break;
      case 1:
        cluster.store_float(make_float(80 + static_cast<std::uint64_t>(i)),
                            {650'000.0 + i, geo_of(i), 0.0});
        break;
      case 2:
        cluster.store_global(make_histogram(90 + static_cast<std::uint64_t>(i)),
                             {710'000.0 + i, geo_of(i), 0.0});
        break;
      default:
        cluster.store_plain({720'000.0 + i, geo_of(i + 1), 0.0});
        break;
    }
  }
}

void expect_store_stats_equal(const cloud::ServerStats& a,
                              const cloud::ServerStats& b) {
  EXPECT_EQ(a.images_stored, b.images_stored);
  EXPECT_DOUBLE_EQ(a.image_bytes_received, b.image_bytes_received);
  EXPECT_DOUBLE_EQ(a.feature_bytes_received, b.feature_bytes_received);
  EXPECT_EQ(a.unique_locations, b.unique_locations);
}

void expect_serves_like(Cluster& recovered, Cluster& reference, int ops) {
  for (int i = 0; i < ops; ++i) {
    if (i % 4 == 0) {
      const auto request = net::encode_binary_query(
          make_binary(50 + static_cast<std::uint64_t>(i)), idx::kDefaultTopK,
          9'000.0);
      EXPECT_EQ(recovered.handle(request), reference.handle(request))
          << "binary probe " << i;
    } else if (i % 4 == 1) {
      const auto request = net::encode_float_query(
          make_float(80 + static_cast<std::uint64_t>(i)), idx::kDefaultTopK,
          20'000.0);
      EXPECT_EQ(recovered.handle(request), reference.handle(request))
          << "float probe " << i;
    }
  }
  net::GlobalQueryRequest gq;
  gq.histogram = make_histogram(92);
  gq.geo = geo_of(2);
  gq.feature_bytes = 256.0;
  const auto request = net::encode(gq);
  EXPECT_EQ(recovered.handle(request), reference.handle(request));
}

TEST_F(StoreDurabilityTest, WalChunkRecoveryMatchesReferenceAcrossShardCounts) {
  constexpr int kOps = 12;
  for (int shards = 1; shards <= 3; ++shards) {
    std::filesystem::remove_all(dir_);
    const ClusterOptions options = durable(shards);
    {
      Cluster cluster(options);
      apply_ops(cluster, kOps);
    }  // no checkpoint: every record body lives as chunks referenced by WALs

    Cluster recovered(options);
    ClusterOptions in_memory;
    in_memory.shards = shards;
    Cluster reference(in_memory);
    apply_ops(reference, kOps);

    expect_store_stats_equal(recovered.stats(), reference.stats());
    expect_serves_like(recovered, reference, kOps);
  }
}

TEST_F(StoreDurabilityTest, SnapshotManifestCheckpointRecovers) {
  constexpr int kBefore = 8;
  constexpr int kAfter = 5;
  const ClusterOptions options = durable(2);
  {
    Cluster cluster(options);
    apply_ops(cluster, kBefore);
    cluster.checkpoint();
    for (int i = kBefore; i < kBefore + kAfter; ++i) {
      cluster.store_binary(make_binary(50 + static_cast<std::uint64_t>(i)),
                           {700'000.0 + i, geo_of(i), 12'000.0 + i});
    }
  }
  // A store-backed checkpoint publishes snapshot.manifest and retires the
  // legacy inline snapshot.bin.
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/shard-0/snapshot.manifest"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/shard-0/snapshot.bin"));

  Cluster recovered(options);
  ClusterOptions in_memory;
  in_memory.shards = 2;
  Cluster reference(in_memory);
  apply_ops(reference, kBefore);
  for (int i = kBefore; i < kBefore + kAfter; ++i) {
    reference.store_binary(make_binary(50 + static_cast<std::uint64_t>(i)),
                           {700'000.0 + i, geo_of(i), 12'000.0 + i});
  }

  expect_store_stats_equal(recovered.stats(), reference.stats());
  expect_serves_like(recovered, reference, kBefore);
}

TEST_F(StoreDurabilityTest, CompactionCyclePreservesRecovery) {
  // Small segments + an aggressive dead ratio: the checkpoint-time
  // compaction trigger actually rewrites segments, and recovery must still
  // match the in-memory reference afterwards.
  constexpr int kOps = 10;
  ClusterOptions options = durable(2);
  options.segment_store.segment_target_bytes = 8 * 1024;
  options.segment_store.compact_dead_ratio = 0.0;
  {
    Cluster cluster(options);
    apply_ops(cluster, kOps);
    cluster.checkpoint();  // WAL chunks die, snapshot chunks are born
    apply_ops(cluster, 0);
    cluster.checkpoint();  // second cycle rewrites the now-dead segments
    ASSERT_NE(cluster.segment_store(), nullptr);
    EXPECT_GT(cluster.segment_store()->stats().compactions, 0u);
    // An identical snapshot re-chunks to the same keys: pure dedup.
    EXPECT_GT(cluster.segment_store()->stats().dedup_hits, 0u);
  }

  Cluster recovered(options);
  ClusterOptions in_memory;
  in_memory.shards = 2;
  Cluster reference(in_memory);
  apply_ops(reference, kOps);

  expect_store_stats_equal(recovered.stats(), reference.stats());
  expect_serves_like(recovered, reference, kOps);
}

TEST_F(StoreDurabilityTest, RecoveredClusterSurvivesCheckpointAndRestart) {
  // Recovery re-pins every chunk it still references; a checkpoint right
  // after recovery (which unpins WAL chunks and compacts) must not free
  // anything the next restart needs.
  constexpr int kOps = 9;
  ClusterOptions options = durable(2);
  options.segment_store.segment_target_bytes = 8 * 1024;
  options.segment_store.compact_dead_ratio = 0.0;
  {
    Cluster cluster(options);
    apply_ops(cluster, kOps);
  }
  {
    Cluster recovered(options);
    recovered.checkpoint();
    recovered.store_binary(make_binary(999), {701'000.0, geo_of(0), 13'000.0});
  }

  Cluster again(options);
  ClusterOptions in_memory;
  in_memory.shards = 2;
  Cluster reference(in_memory);
  apply_ops(reference, kOps);
  reference.store_binary(make_binary(999), {701'000.0, geo_of(0), 13'000.0});

  expect_store_stats_equal(again.stats(), reference.stats());
  expect_serves_like(again, reference, kOps);
}

TEST_F(StoreDurabilityTest, TornSegmentTailDropsOnlyTheLastRecord) {
  // Tear the tail of the newest segment file: the final WAL record's last
  // chunk is lost, so that record is unresolvable and must be dropped like
  // a torn WAL frame — everything before it recovers intact.
  constexpr int kOps = 6;  // last op is a store_float (has a chunked body)
  const ClusterOptions options = durable(1);
  {
    Cluster cluster(options);
    apply_ops(cluster, kOps);
  }
  std::filesystem::path newest;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_ + "/segstore")) {
    if (newest.empty() || entry.path() > newest) newest = entry.path();
  }
  ASSERT_FALSE(newest.empty());
  std::filesystem::resize_file(newest,
                               std::filesystem::file_size(newest) - 5);

  Cluster recovered(options);
  ClusterOptions in_memory;
  in_memory.shards = 1;
  Cluster reference(in_memory);
  apply_ops(reference, kOps - 1);

  expect_store_stats_equal(recovered.stats(), reference.stats());
  expect_serves_like(recovered, reference, kOps - 1);

  // The WAL accepts appends again and the next restart also succeeds.
  recovered.store_binary(make_binary(999), {701'000.0, geo_of(0), 13'000.0});
}

TEST_F(StoreDurabilityTest, ChunkedWalRecordNeedsAStoreToDecode) {
  store::SegmentStore chunk_store({});
  WalRecord record;
  record.seq = 7;
  record.op = WalOp::kStoreBinary;
  record.info = {700'000.0, geo_of(0), 12'000.0};
  record.payload = std::vector<std::uint8_t>(3000, 0x5C);
  const store::Manifest manifest = chunk_store.put_payload(record.payload);
  const auto frame = encode_wal_record_chunked(record, manifest);

  // With the store the frame round-trips and reports its chunk keys...
  std::vector<store::ChunkKey> keys;
  const WalRecord decoded = decode_wal_record(frame, &chunk_store, &keys);
  EXPECT_EQ(decoded.payload, record.payload);
  EXPECT_EQ(keys, manifest.chunks);
  // ...without one it must fail loudly, never silently yield an empty body.
  EXPECT_THROW(decode_wal_record(frame), util::DecodeError);
}

}  // namespace
}  // namespace bees::serve
