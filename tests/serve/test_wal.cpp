#include "serve/wal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/byte_io.hpp"
#include "util/hash.hpp"

namespace bees::serve {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

WalRecord make_record(std::uint64_t seq, WalOp op, std::uint32_t gid) {
  WalRecord record;
  record.seq = seq;
  record.op = op;
  record.global_id = gid;
  record.info.image_bytes = 2'000'000.0 + static_cast<double>(seq);
  record.info.geo = {2.31 + 0.01 * static_cast<double>(seq), 48.86, true};
  record.info.thumbnail_bytes = 12'000.0;
  record.payload = {static_cast<std::uint8_t>(seq), 0xAB, 0xCD,
                    static_cast<std::uint8_t>(gid)};
  return record;
}

std::vector<WalRecord> write_log(const std::string& path, int records) {
  std::remove(path.c_str());
  std::vector<WalRecord> written;
  WriteAheadLog wal(path);
  for (int i = 0; i < records; ++i) {
    written.push_back(make_record(static_cast<std::uint64_t>(i + 1),
                                  i % 2 == 0 ? WalOp::kStoreBinary
                                             : WalOp::kSeedFloat,
                                  static_cast<std::uint32_t>(i)));
    wal.append(written.back());
  }
  return written;
}

void expect_equal(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.global_id, b.global_id);
  EXPECT_DOUBLE_EQ(a.info.image_bytes, b.info.image_bytes);
  EXPECT_EQ(a.info.geo.valid, b.info.geo.valid);
  EXPECT_DOUBLE_EQ(a.info.geo.lon, b.info.geo.lon);
  EXPECT_DOUBLE_EQ(a.info.geo.lat, b.info.geo.lat);
  EXPECT_DOUBLE_EQ(a.info.thumbnail_bytes, b.info.thumbnail_bytes);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(WalRecord, RoundTripPreservesAllFields) {
  const WalRecord original = make_record(42, WalOp::kStoreFloat, 7);
  expect_equal(decode_wal_record(encode_wal_record(original)), original);
}

TEST(WalRecord, InvalidGeoRoundTrips) {
  WalRecord original = make_record(1, WalOp::kStorePlain, 0);
  original.info.geo = {};
  const WalRecord decoded = decode_wal_record(encode_wal_record(original));
  EXPECT_FALSE(decoded.info.geo.valid);
}

TEST(WalRecord, UnknownOpThrows) {
  auto bytes = encode_wal_record(make_record(1, WalOp::kStoreBinary, 0));
  bytes[8] = 0;  // op byte follows the fixed 8-byte seq
  EXPECT_THROW(decode_wal_record(bytes), util::DecodeError);
  bytes[8] = 200;
  EXPECT_THROW(decode_wal_record(bytes), util::DecodeError);
}

TEST(WalRecord, TrailingBytesThrow) {
  auto bytes = encode_wal_record(make_record(1, WalOp::kStoreBinary, 0));
  bytes.push_back(0);
  EXPECT_THROW(decode_wal_record(bytes), util::DecodeError);
}

TEST(WalReplay, ReplaysRecordsInWriteOrder) {
  const std::string path = temp_path("bees_wal_order.log");
  const auto written = write_log(path, 5);

  std::vector<WalRecord> replayed;
  const WalReplayResult result =
      replay_wal(path, 0, [&](const WalRecord& r) { replayed.push_back(r); });
  std::remove(path.c_str());

  EXPECT_EQ(result.applied, 5u);
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_EQ(result.dropped, 0u);
  ASSERT_EQ(replayed.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    expect_equal(replayed[i], written[i]);
  }
}

TEST(WalReplay, SkipsRecordsCoveredBySnapshot) {
  const std::string path = temp_path("bees_wal_skip.log");
  write_log(path, 5);

  std::vector<std::uint64_t> seqs;
  const WalReplayResult result = replay_wal(
      path, 3, [&](const WalRecord& r) { seqs.push_back(r.seq); });
  std::remove(path.c_str());

  EXPECT_EQ(result.applied, 2u);
  EXPECT_EQ(result.skipped, 3u);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{4, 5}));
}

TEST(WalReplay, MissingFileReplaysNothing) {
  const WalReplayResult result = replay_wal(
      temp_path("bees_wal_never_written.log"), 0,
      [](const WalRecord&) { FAIL() << "nothing should replay"; });
  EXPECT_EQ(result.applied, 0u);
  EXPECT_EQ(result.dropped, 0u);
}

TEST(WalReplay, TruncatedTailRecoversIntactPrefix) {
  const std::string path = temp_path("bees_wal_trunc.log");
  write_log(path, 4);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);  // tear the last frame

  std::size_t applied = 0;
  const WalReplayResult result =
      replay_wal(path, 0, [&](const WalRecord&) { ++applied; });
  std::remove(path.c_str());

  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(result.applied, 3u);
  EXPECT_EQ(result.dropped, 1u);
  EXPECT_GT(result.dropped_bytes, 0u);
  EXPECT_EQ(result.valid_bytes + result.dropped_bytes,
            static_cast<std::size_t>(full - 3));
}

TEST(WalReplay, BadCrcStopsAtLastIntactRecord) {
  const std::string path = temp_path("bees_wal_crc.log");
  write_log(path, 4);
  {
    // Flip a payload bit in the final frame; its CRC no longer matches.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    char last;
    f.seekg(-1, std::ios::end);
    f.get(last);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ 0x01));
  }

  std::size_t applied = 0;
  const WalReplayResult result =
      replay_wal(path, 0, [&](const WalRecord&) { ++applied; });
  std::remove(path.c_str());

  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(result.dropped, 1u);
}

TEST(WalReplay, GarbageTailStopsClean) {
  const std::string path = temp_path("bees_wal_garbage.log");
  write_log(path, 3);
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    const std::vector<std::uint8_t> junk{0xDE, 0xAD, 0xBE, 0xEF, 0x00,
                                         0x11, 0x22, 0x33, 0x44, 0x55};
    f.write(reinterpret_cast<const char*>(junk.data()),
            static_cast<std::streamsize>(junk.size()));
  }

  std::size_t applied = 0;
  const WalReplayResult result =
      replay_wal(path, 0, [&](const WalRecord&) { ++applied; });
  std::remove(path.c_str());

  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(result.dropped, 1u);
  EXPECT_EQ(result.dropped_bytes, 10u);
}

TEST(WalReplay, DroppedRecordsAreCounted) {
  const std::string path = temp_path("bees_wal_metric.log");
  write_log(path, 2);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 2);

  obs::set_enabled(true);
  obs::MetricsRegistry::global().reset();
  replay_wal(path, 0, [](const WalRecord&) {});
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  obs::set_enabled(false);
  std::remove(path.c_str());

  ASSERT_TRUE(snapshot.counters.count("serve.wal.dropped_records"));
  EXPECT_DOUBLE_EQ(snapshot.counters.at("serve.wal.dropped_records"), 1.0);
  ASSERT_TRUE(snapshot.counters.count("serve.wal.dropped_bytes"));
  EXPECT_GT(snapshot.counters.at("serve.wal.dropped_bytes"), 0.0);
}

TEST(WalReplay, ResetTruncatesTheLog) {
  const std::string path = temp_path("bees_wal_reset.log");
  std::remove(path.c_str());
  {
    WriteAheadLog wal(path);
    wal.append(make_record(1, WalOp::kStoreBinary, 0));
    wal.reset();
    wal.append(make_record(2, WalOp::kSeedGlobal, 0));
  }

  std::vector<std::uint64_t> seqs;
  replay_wal(path, 0, [&](const WalRecord& r) { seqs.push_back(r.seq); });
  std::remove(path.c_str());
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{2}));
}

TEST(WalCodec, HistogramRoundTrips) {
  feat::ColorHistogram h;
  for (std::size_t i = 0; i < h.bins.size(); ++i) {
    h.bins[i] = static_cast<float>(i) * 0.25f;
  }
  const feat::ColorHistogram back = decode_histogram(encode_histogram(h));
  EXPECT_EQ(back.bins, h.bins);
  auto bytes = encode_histogram(h);
  bytes.push_back(0);
  EXPECT_THROW(decode_histogram(bytes), util::DecodeError);
}

}  // namespace
}  // namespace bees::serve
