// Concurrency behaviour of the serving cluster: parallel clients get the
// same bytes the serial path produces, mixed read/write traffic keeps the
// accounting consistent, and the admission gate sheds with an encoded
// error instead of throwing.  Sizes are kept small: these tests also run
// under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cloud/rpc.hpp"
#include "cloud/server.hpp"
#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "serve/cluster.hpp"
#include "util/rng.hpp"

namespace bees::serve {
namespace {

feat::BinaryFeatures make_binary(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

idx::GeoTag geo_of(int i) {
  return {2.29 + 0.01 * (i % 3), 48.85 + 0.002 * (i % 3), true};
}

TEST(ClusterConcurrent, ParallelClientsGetSerialReplies) {
  constexpr int kSeeds = 6;
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 6;

  cloud::Server server;
  ClusterOptions options;
  options.shards = 4;
  options.threads = 4;
  Cluster cluster(options);
  for (int i = 0; i < kSeeds; ++i) {
    const auto features = make_binary(100 + static_cast<std::uint64_t>(i));
    server.seed_binary(features, geo_of(i), 11'000.0);
    cluster.seed_binary(features, geo_of(i), 11'000.0);
  }

  // Queries are read-only, so the serial replies computed up front stay the
  // expected answer no matter how client threads interleave.
  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::vector<std::uint8_t>> expected;
  for (int q = 0; q < kClients * kQueriesPerClient; ++q) {
    requests.push_back(net::encode_binary_query(
        make_binary(100 + static_cast<std::uint64_t>(q % kSeeds)),
        idx::kDefaultTopK, 9'000.0));
    expected.push_back(cloud::dispatch(server, requests.back()));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const int i = c * kQueriesPerClient + q;
        if (cluster.handle(requests[static_cast<std::size_t>(i)]) !=
            expected[static_cast<std::size_t>(i)]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cluster.stats().binary_queries,
            static_cast<std::size_t>(kClients * kQueriesPerClient));
}

TEST(ClusterConcurrent, GateCoalescingKeepsRepliesByteIdentical) {
  // batch_window > 1 turns the admission gate into a coalescing queue:
  // concurrent clients' queries drain in batches through the shared
  // rescore fan-out, and every reply must still be the bytes the serial
  // path produces — coalescing is an amortization, never a semantic
  // change.  Also checks the gate actually coalesced (serve.batch.size).
  constexpr int kSeeds = 6;
  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 8;

  cloud::Server server;
  ClusterOptions options;
  options.shards = 2;
  options.threads = 4;
  options.batch_window = 3;
  Cluster cluster(options);
  for (int i = 0; i < kSeeds; ++i) {
    const auto features = make_binary(100 + static_cast<std::uint64_t>(i));
    server.seed_binary(features, geo_of(i), 11'000.0);
    cluster.seed_binary(features, geo_of(i), 11'000.0);
  }

  std::vector<std::vector<std::uint8_t>> requests;
  std::vector<std::vector<std::uint8_t>> expected;
  for (int q = 0; q < kClients * kQueriesPerClient; ++q) {
    requests.push_back(net::encode_binary_query(
        make_binary(100 + static_cast<std::uint64_t>(q % kSeeds)),
        idx::kDefaultTopK, 9'000.0));
    expected.push_back(cloud::dispatch(server, requests.back()));
  }

  obs::MetricsRegistry::global().reset();
  obs::set_enabled(true);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const int i = c * kQueriesPerClient + q;
        if (cluster.handle(requests[static_cast<std::size_t>(i)]) !=
            expected[static_cast<std::size_t>(i)]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  obs::set_enabled(false);
  const auto snap = obs::MetricsRegistry::global().snapshot();
  obs::MetricsRegistry::global().reset();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cluster.stats().binary_queries,
            static_cast<std::size_t>(kClients * kQueriesPerClient));
  // Every request passed through a drained batch (sizes 1..batch_window).
  ASSERT_TRUE(snap.histograms.count("serve.batch.size"));
  const auto& sizes = snap.histograms.at("serve.batch.size");
  EXPECT_EQ(sizes.sum, 1.0 * kClients * kQueriesPerClient);
  EXPECT_LE(sizes.count, static_cast<std::uint64_t>(kClients *
                                                    kQueriesPerClient));
}

TEST(ClusterConcurrent, MixedTrafficKeepsAccountingConsistent) {
  constexpr int kSeeds = 4;
  constexpr int kWriters = 2;
  constexpr int kStoresPerWriter = 5;
  constexpr int kReaders = 2;
  constexpr int kQueriesPerReader = 8;

  ClusterOptions options;
  options.shards = 3;
  options.threads = 4;
  Cluster cluster(options);
  for (int i = 0; i < kSeeds; ++i) {
    cluster.seed_binary(make_binary(100 + static_cast<std::uint64_t>(i)),
                        geo_of(i), 11'000.0);
  }

  std::mutex ids_mutex;
  std::vector<idx::ImageId> stored_ids;
  std::atomic<int> bad_replies{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kStoresPerWriter; ++i) {
        const auto features = make_binary(
            1'000 + static_cast<std::uint64_t>(w * kStoresPerWriter + i));
        const idx::ImageId id = cluster.store_binary(
            features, {700'000.0, geo_of(i), 12'000.0});
        std::lock_guard<std::mutex> lock(ids_mutex);
        stored_ids.push_back(id);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (int q = 0; q < kQueriesPerReader; ++q) {
        const auto reply = cluster.handle(net::encode_binary_query(
            make_binary(100 + static_cast<std::uint64_t>((r + q) % kSeeds)),
            idx::kDefaultTopK, 9'000.0));
        try {
          const auto envelope = net::open_envelope(reply);
          if (envelope.type != net::MessageType::kQueryResponse) {
            bad_replies.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (...) {
          bad_replies.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(bad_replies.load(), 0);
  // Every store got a distinct, dense global id after the seeds.
  const std::set<idx::ImageId> unique(stored_ids.begin(), stored_ids.end());
  ASSERT_EQ(unique.size(), static_cast<std::size_t>(kWriters * kStoresPerWriter));
  EXPECT_EQ(*unique.begin(), static_cast<idx::ImageId>(kSeeds));
  EXPECT_EQ(*unique.rbegin(), static_cast<idx::ImageId>(
                                  kSeeds + kWriters * kStoresPerWriter - 1));

  const cloud::ServerStats stats = cluster.stats();
  EXPECT_EQ(stats.images_stored,
            static_cast<std::size_t>(kWriters * kStoresPerWriter));
  EXPECT_EQ(stats.binary_queries,
            static_cast<std::size_t>(kReaders * kQueriesPerReader));

  // Every stored image is findable with an exact-duplicate query.
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kStoresPerWriter; ++i) {
      const auto features = make_binary(
          1'000 + static_cast<std::uint64_t>(w * kStoresPerWriter + i));
      const idx::QueryResult r = cluster.query_binary(features, 9'000.0);
      EXPECT_DOUBLE_EQ(r.max_similarity, 1.0);
    }
  }
}

TEST(ClusterConcurrent, ZeroQueueDepthShedsEveryRequest) {
  ClusterOptions options;
  options.shards = 1;
  options.threads = 1;
  options.queue_depth = 0;
  Cluster cluster(options);
  cluster.seed_binary(make_binary(100), geo_of(0), 11'000.0);

  const auto request = net::encode_binary_query(make_binary(100),
                                                idx::kDefaultTopK, 9'000.0);
  for (int i = 0; i < 3; ++i) {
    const auto reply = cluster.handle(request);
    const auto envelope = net::open_envelope(reply);
    ASSERT_EQ(envelope.type, net::MessageType::kError);
    EXPECT_EQ(net::decode_error(envelope.payload),
              "server overloaded: request shed");
  }
  EXPECT_EQ(cluster.shed_count(), 3u);
  // Shed requests never reach the shards: no query was accounted.
  EXPECT_EQ(cluster.stats().binary_queries, 0u);
}

TEST(ClusterConcurrent, OverloadedClusterShedsCleanlyUnderPressure) {
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 8;

  ClusterOptions options;
  options.shards = 2;
  options.threads = 1;
  options.queue_depth = 1;
  Cluster cluster(options);
  for (int i = 0; i < 4; ++i) {
    cluster.seed_binary(make_binary(100 + static_cast<std::uint64_t>(i)),
                        geo_of(i), 11'000.0);
  }

  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kRequestsPerClient; ++q) {
        const auto reply = cluster.handle(net::encode_binary_query(
            make_binary(100 + static_cast<std::uint64_t>((c + q) % 4)),
            idx::kDefaultTopK, 9'000.0));
        const auto envelope = net::open_envelope(reply);
        if (envelope.type == net::MessageType::kQueryResponse) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (envelope.type == net::MessageType::kError &&
                   net::decode_error(envelope.payload) ==
                       "server overloaded: request shed") {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + shed.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(cluster.shed_count(), static_cast<std::size_t>(shed.load()));
  EXPECT_EQ(cluster.stats().binary_queries,
            static_cast<std::size_t>(ok.load()));
}

}  // namespace
}  // namespace bees::serve
