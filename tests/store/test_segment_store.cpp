// Segment store behavior: round-trips, dedup, reopen/rescan, pinning,
// compaction (including the disk ceiling), cache accounting, and the
// determinism contract (pooled compression produces byte-identical
// segments to serial puts).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/segment_store.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace bees::store {
namespace {

std::vector<std::uint8_t> random_payload(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

std::vector<std::uint8_t> compressible_payload(std::size_t n,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  std::size_t i = 0;
  while (i < n) {
    const auto run = 16 + static_cast<std::size_t>(rng.next_u64() % 48);
    const auto byte = static_cast<std::uint8_t>(rng.next_u64());
    for (std::size_t j = 0; j < run && i < n; ++j) out[i++] = byte;
  }
  return out;
}

class SegmentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bees_store_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(SegmentStoreTest, PutGetRoundTripMemoryMode) {
  SegmentStore store({});  // no dir: memory-backed
  const auto a = random_payload(1000, 1);
  const auto b = compressible_payload(1000, 2);
  const ChunkKey ka = store.put(a);
  const ChunkKey kb = store.put(b);
  EXPECT_NE(ka, kb);
  EXPECT_TRUE(store.contains(ka));
  EXPECT_EQ(store.get(ka), a);
  EXPECT_EQ(store.get(kb), b);
  EXPECT_THROW(store.get(ChunkKey{1, 2, 3}), util::DecodeError);
}

TEST_F(SegmentStoreTest, DedupSecondPutIsFree) {
  SegmentStore store({});
  const auto payload = random_payload(5000, 3);
  const ChunkKey k1 = store.put(payload);
  const auto disk_after_first = store.stats().disk_bytes;
  const ChunkKey k2 = store.put(payload);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(store.stats().disk_bytes, disk_after_first);
  EXPECT_EQ(store.stats().dedup_hits, 1u);
  EXPECT_EQ(store.stats().chunks, 1u);
}

TEST_F(SegmentStoreTest, PayloadRoundTripAcrossChunks) {
  SegmentStoreOptions options;
  options.chunk_size = 1024;
  SegmentStore store(options);
  const auto payload = random_payload(10'000, 4);
  const Manifest m = store.put_payload(payload);
  EXPECT_EQ(m.chunks.size(), 10u);
  EXPECT_EQ(store.get_payload(m), payload);
}

TEST_F(SegmentStoreTest, PutManifestPayloadReportsNewChunks) {
  SegmentStoreOptions options;
  options.chunk_size = 1024;
  SegmentStore store(options);
  auto payload = random_payload(4096, 5);
  const Manifest m = build_manifest(payload, 1024);
  EXPECT_EQ(store.put_manifest_payload(m, payload), 4u);
  EXPECT_EQ(store.put_manifest_payload(m, payload), 0u);  // all dedup now
}

TEST_F(SegmentStoreTest, ReopenRescansSegments) {
  SegmentStoreOptions options;
  options.dir = dir_;
  options.chunk_size = 2048;
  Manifest m;
  const auto payload = compressible_payload(9000, 6);
  {
    SegmentStore store(options);
    m = store.put_payload(payload);
    store.flush();
  }
  SegmentStore reopened(options);
  for (const ChunkKey& key : m.chunks) EXPECT_TRUE(reopened.contains(key));
  EXPECT_EQ(reopened.get_payload(m), payload);
  // Rebuilt directory starts unpinned: everything is reclaimable until the
  // owners re-pin.
  EXPECT_EQ(reopened.stats().live_bytes, 0u);
}

TEST_F(SegmentStoreTest, SegmentsRollAtTargetBytes) {
  SegmentStoreOptions options;
  options.dir = dir_;
  options.segment_target_bytes = 4096;
  SegmentStore store(options);
  for (int i = 0; i < 8; ++i) store.put(random_payload(2048, 100 + i));
  EXPECT_GT(store.stats().segments, 1u);
  store.flush();
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, store.stats().segments);
}

TEST_F(SegmentStoreTest, PinProtectsFromCompactionUnpinnedDropped) {
  SegmentStoreOptions options;
  options.dir = dir_;
  options.segment_target_bytes = 1;  // one chunk per segment, sealed fast
  SegmentStore store(options);
  const auto keep_bytes = random_payload(800, 7);
  const auto drop_bytes = random_payload(800, 8);
  const ChunkKey keep = store.put(keep_bytes);
  const ChunkKey drop = store.put(drop_bytes);
  store.put(random_payload(100, 9));  // seals drop's segment
  store.pin(keep);

  EXPECT_GT(store.compact(0.0), 0u);
  EXPECT_TRUE(store.contains(keep));
  EXPECT_EQ(store.get(keep), keep_bytes);
  EXPECT_FALSE(store.contains(drop));
  EXPECT_THROW(store.get(drop), util::DecodeError);
  EXPECT_THROW(store.pin(drop), util::DecodeError);
  store.unpin(drop);  // unpin of an absent key is ignored
}

TEST_F(SegmentStoreTest, PinnedChunksSurviveCompactionAndReopen) {
  SegmentStoreOptions options;
  options.dir = dir_;
  options.chunk_size = 512;
  options.segment_target_bytes = 1024;
  Manifest m;
  const auto payload = random_payload(4096, 10);
  {
    SegmentStore store(options);
    m = store.put_payload(payload);
    store.pin(m.chunks);
    for (int i = 0; i < 6; ++i) store.put(random_payload(700, 20 + i));
    store.compact(0.0);
    EXPECT_EQ(store.get_payload(m), payload);
    store.flush();
  }
  SegmentStore reopened(options);
  reopened.pin(m.chunks);
  EXPECT_EQ(reopened.get_payload(m), payload);
}

TEST_F(SegmentStoreTest, PutPayloadPinnedIsPinnedOnReturn) {
  SegmentStoreOptions options;
  options.dir = dir_;
  options.chunk_size = 512;
  options.segment_target_bytes = 1;  // one chunk per segment, sealed fast
  SegmentStore store(options);
  const auto payload = random_payload(2048, 70);
  const Manifest m = store.put_payload_pinned(payload);
  store.put(random_payload(100, 71));  // seals the payload's segments
  // Pins were taken atomically with the put: an aggressive compaction pass
  // (the race a concurrent owner's maybe_compact would run) reclaims
  // nothing of the payload.
  store.compact(0.0);
  EXPECT_EQ(store.get_payload(m), payload);
  // Releasing the pins makes the chunks reclaimable as usual.
  store.unpin(m.chunks);
  EXPECT_GT(store.compact(0.0), 0u);
  EXPECT_THROW(store.get_payload(m), util::DecodeError);
}

TEST_F(SegmentStoreTest, PutPayloadPinnedRestoresChunksReclaimedMidPut) {
  SegmentStoreOptions options;
  options.dir = dir_;
  options.chunk_size = 512;
  options.segment_target_bytes = 1;
  SegmentStore store(options);
  const auto payload = random_payload(2048, 72);
  // First put leaves the chunks unpinned; sealing + compacting reclaims
  // them all — the state a concurrent compaction would produce between
  // put_manifest_payload's presence check and its append pass.
  const Manifest first = store.put_payload(payload);
  store.put(random_payload(100, 73));
  store.compact(0.0);
  EXPECT_THROW(store.get_payload(first), util::DecodeError);
  // put_payload_pinned must land every chunk again and pin it.
  const Manifest m = store.put_payload_pinned(payload);
  EXPECT_EQ(m, first);
  store.put(random_payload(100, 74));
  store.compact(0.0);
  EXPECT_EQ(store.get_payload(m), payload);
}

TEST_F(SegmentStoreTest, CompactionFlushesMovedChunksBeforeDeletingVictim) {
  SegmentStoreOptions options;
  options.dir = dir_;
  options.segment_target_bytes = 4096;
  SegmentStore store(options);
  const auto keep_bytes = random_payload(900, 80);
  const ChunkKey keep = store.put(keep_bytes);
  store.put(random_payload(900, 81));   // dead filler, same segment
  store.put(random_payload(4096, 82));  // pushes the segment past target
  store.put(random_payload(100, 83));   // rolls over, sealing the victim
  store.pin(keep);
  EXPECT_GT(store.compact(0.5), 0u);  // moves `keep` into the open segment

  // Snapshot the directory as a crash right after compaction would leave
  // it — no flush() call, the writing store still open.  The moved chunk
  // must already be on disk: its only other copy was just deleted.
  const std::string crash_dir = dir_ + "_crash";
  std::filesystem::remove_all(crash_dir);
  std::filesystem::copy(dir_, crash_dir);
  SegmentStoreOptions reopen_options = options;
  reopen_options.dir = crash_dir;
  SegmentStore reopened(reopen_options);
  EXPECT_TRUE(reopened.contains(keep));
  EXPECT_EQ(reopened.get(keep), keep_bytes);
  std::filesystem::remove_all(crash_dir);
}

TEST_F(SegmentStoreTest, MaybeCompactEnforcesDiskCeiling) {
  SegmentStoreOptions options;
  options.dir = dir_;
  options.chunk_size = 1024;
  options.segment_target_bytes = 2048;
  options.disk_ceiling_bytes = 16 * 1024;
  SegmentStore store(options);
  // Mostly dead data (never pinned) far past the ceiling, plus one pinned
  // payload that must survive.
  const auto keep = random_payload(2000, 30);
  const Manifest m = store.put_payload(keep);
  store.pin(m.chunks);
  for (int i = 0; i < 64; ++i) store.put(random_payload(1000, 1000 + i));
  EXPECT_GT(store.disk_bytes(), options.disk_ceiling_bytes);

  EXPECT_GT(store.maybe_compact(), 0u);
  EXPECT_LE(store.disk_bytes(), options.disk_ceiling_bytes);
  EXPECT_EQ(store.get_payload(m), keep);
}

TEST_F(SegmentStoreTest, LruCacheCountsHitsAndMisses) {
  SegmentStoreOptions options;
  options.dir = dir_;
  options.cache_capacity_bytes = 2048;
  SegmentStore store(options);
  const auto a = random_payload(1024, 40);
  const auto b = random_payload(1024, 41);
  const auto c = random_payload(1024, 42);
  const ChunkKey ka = store.put(a);
  const ChunkKey kb = store.put(b);
  const ChunkKey kc = store.put(c);
  // The cache is read-through: first get misses and fills, second hits.
  store.get(kc);
  store.get(kc);
  const auto stats = store.stats();
  EXPECT_GT(stats.cache_hits, 0u);
  // Capacity holds two raw chunks: reading all three in rotation must miss.
  store.get(ka);
  store.get(kb);
  store.get(kc);
  EXPECT_GT(store.stats().cache_misses, stats.cache_misses);
  EXPECT_EQ(store.get(ka), a);
}

TEST_F(SegmentStoreTest, PooledCompressionMatchesSerialByteForByte) {
  SegmentStoreOptions serial_options;
  serial_options.dir = dir_ + "/serial";
  serial_options.chunk_size = 1024;
  util::ThreadPool pool(4);
  SegmentStoreOptions pooled_options;
  pooled_options.dir = dir_ + "/pooled";
  pooled_options.chunk_size = 1024;
  pooled_options.pool = &pool;
  {
    SegmentStore serial(serial_options);
    SegmentStore pooled(pooled_options);
    for (int i = 0; i < 5; ++i) {
      const auto payload = compressible_payload(7000 + 513 * i, 50 + i);
      const Manifest a = serial.put_payload(payload);
      const Manifest b = pooled.put_payload(payload);
      EXPECT_EQ(a, b);
    }
    serial.flush();
    pooled.flush();
  }
  auto read_file = [](const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  std::vector<std::filesystem::path> serial_files;
  for (const auto& entry :
       std::filesystem::directory_iterator(serial_options.dir)) {
    serial_files.push_back(entry.path());
  }
  ASSERT_FALSE(serial_files.empty());
  for (const auto& path : serial_files) {
    const auto twin =
        std::filesystem::path(pooled_options.dir) / path.filename();
    ASSERT_TRUE(std::filesystem::exists(twin)) << twin;
    EXPECT_EQ(read_file(path), read_file(twin)) << path.filename();
  }
}

TEST_F(SegmentStoreTest, StatsTrackRawAndStoredBytes) {
  SegmentStore store({});
  const auto payload = compressible_payload(8192, 60);
  const Manifest m = store.put_payload(payload);
  store.pin(m.chunks);
  const auto stats = store.stats();
  EXPECT_EQ(stats.raw_bytes, payload.size());
  EXPECT_GT(stats.live_bytes, 0u);
  EXPECT_EQ(stats.dead_bytes, 0u);
  // Compressible data stores smaller than raw.
  EXPECT_LT(stats.live_bytes, stats.raw_bytes);
}

}  // namespace
}  // namespace bees::store
