// The chunk-manifest upload plane, end to end through the schemes: chunked
// runs reach the same redundancy decisions and modelled image bytes as the
// legacy whole-image protocol, duplicate content dedups on the wire, an
// aborted batch resumes by sending only the chunks the server is missing,
// and a store-less server cleanly falls back to whole-image commits.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cloud/server.hpp"
#include "core/baselines.hpp"
#include "core/bees.hpp"
#include "core/photonet.hpp"
#include "core/simulation.hpp"
#include "store/segment_store.hpp"

namespace bees::core {
namespace {

class ChunkUploadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_ = new wl::Imageset(wl::make_disaster_like(12, 3, 200, 150, 67));
    store_ = new wl::ImageStore();
    pca_ = new feat::PcaModel(train_pca_model(*store_, *set_, 4));
  }
  static void TearDownTestSuite() {
    delete pca_;
    delete store_;
    delete set_;
    pca_ = nullptr;
    store_ = nullptr;
    set_ = nullptr;
  }

  static SchemeConfig legacy_config() {
    SchemeConfig cfg;
    cfg.image_byte_scale = 4.0;
    return cfg;
  }
  static SchemeConfig chunked_config(std::uint32_t chunk_size = 2048) {
    SchemeConfig cfg = legacy_config();
    cfg.chunking.enabled = true;
    cfg.chunking.chunk_size = chunk_size;
    return cfg;
  }
  static net::Channel channel(double loss = 0.0, std::uint64_t seed = 17) {
    net::ChannelParams p = net::ChannelParams::fixed(256000.0);
    p.loss_probability = loss;
    p.seed = seed;
    return net::Channel(p);
  }
  std::shared_ptr<const feat::PcaModel> pca() const {
    return {pca_, [](const feat::PcaModel*) {}};
  }

  static wl::Imageset* set_;
  static wl::ImageStore* store_;
  static feat::PcaModel* pca_;
};

wl::Imageset* ChunkUploadTest::set_ = nullptr;
wl::ImageStore* ChunkUploadTest::store_ = nullptr;
feat::PcaModel* ChunkUploadTest::pca_ = nullptr;

TEST_F(ChunkUploadTest, ChunkedRunsMatchLegacyDecisionsForEveryScheme) {
  // Chunking changes the transfer plane, not the protocol semantics: the
  // same images upload, the same redundancy eliminations fire, and the
  // modelled image bytes agree (chunk data is charged pro-rata).
  auto run = [&](UploadScheme& scheme, cloud::Server& server) {
    net::Channel ch = channel();
    energy::Battery bat;
    return scheme.upload_batch(set_->images, server, ch, bat);
  };
  auto for_each_scheme = [&](const SchemeConfig& cfg, auto&& fn) {
    DirectUploadScheme direct(*store_, cfg);
    SmartEyeScheme smarteye(*store_, cfg, pca());
    MrcScheme mrc(*store_, cfg);
    PhotoNetScheme photonet(*store_, cfg);
    BeesScheme bees(*store_, cfg);
    UploadScheme* schemes[] = {&direct, &smarteye, &mrc, &photonet, &bees};
    for (UploadScheme* s : schemes) fn(*s);
  };

  std::vector<BatchReport> legacy;
  for_each_scheme(legacy_config(), [&](UploadScheme& s) {
    cloud::Server server;
    legacy.push_back(run(s, server));
  });
  std::size_t i = 0;
  for_each_scheme(chunked_config(), [&](UploadScheme& s) {
    cloud::Server server;
    store::SegmentStore chunk_store({});
    server.attach_chunk_store(&chunk_store);
    const BatchReport chunked = run(s, server);
    const BatchReport& ref = legacy[i++];
    EXPECT_EQ(chunked.images_uploaded, ref.images_uploaded) << s.name();
    EXPECT_EQ(chunked.eliminated_cross_batch, ref.eliminated_cross_batch)
        << s.name();
    EXPECT_EQ(chunked.eliminated_in_batch, ref.eliminated_in_batch)
        << s.name();
    EXPECT_NEAR(chunked.image_bytes, ref.image_bytes,
                1e-6 * (1.0 + ref.image_bytes))
        << s.name();
    if (chunked.images_uploaded > 0) {
      EXPECT_GT(chunked.chunks_sent, 0) << s.name();
    }
    EXPECT_EQ(ref.chunks_sent, 0) << s.name();
  });
}

TEST_F(ChunkUploadTest, DuplicateBatchNeverRidesTheWireTwice) {
  cloud::Server server;
  store::SegmentStore chunk_store({});
  server.attach_chunk_store(&chunk_store);
  auto run = [&] {
    // A fresh scheme instance each time: the dedup below is the *server's*
    // manifest ack, not client-side memory.
    DirectUploadScheme direct(*store_, chunked_config());
    net::Channel ch = channel();
    energy::Battery bat;
    return direct.upload_batch(set_->images, server, ch, bat);
  };
  const BatchReport first = run();
  EXPECT_GT(first.chunks_sent, 0);
  EXPECT_EQ(first.chunks_deduped, 0);

  const BatchReport second = run();
  EXPECT_EQ(second.chunks_sent, 0);
  EXPECT_EQ(second.chunks_deduped, first.chunks_sent);
  // No chunk data moved, so no image bytes were charged the second time.
  EXPECT_DOUBLE_EQ(second.image_bytes, 0.0);
  EXPECT_LT(second.image_bytes, first.image_bytes);
}

TEST_F(ChunkUploadTest, ResumedBatchSendsOnlyMissingChunks) {
  SchemeConfig cfg = chunked_config();
  cfg.retry.max_attempts = 2;
  DirectUploadScheme direct(*store_, cfg);
  cloud::Server server;
  store::SegmentStore chunk_store({});
  server.attach_chunk_store(&chunk_store);
  energy::Battery bat;

  // Lossy enough that some exchange exhausts its two attempts mid-batch,
  // after other chunks already landed.
  net::Channel flaky = channel(0.3, 71);
  const BatchReport first = direct.upload_batch(set_->images, server, flaky,
                                                bat);
  ASSERT_TRUE(first.aborted);
  ASSERT_GT(first.chunks_sent, 0);  // partial progress survived server-side

  net::Channel healthy = channel(0.0);
  const BatchReport second =
      direct.upload_batch(set_->images, server, healthy, bat);
  EXPECT_FALSE(second.aborted);
  // Nothing rode the wire twice: the resumed attempt re-offered manifests
  // and the server's acks excluded every chunk that already landed.
  EXPECT_EQ(second.chunks_resent, 0);
  // Every unique chunk crossed exactly once across abort + resume — the
  // server store's directory is the ground truth.  A whole-image resend
  // would have re-sent the aborted image's first-attempt chunks on top.
  EXPECT_EQ(static_cast<std::uint64_t>(first.chunks_sent) +
                static_cast<std::uint64_t>(second.chunks_sent),
            chunk_store.stats().chunks);
  EXPECT_EQ(server.stats().images_stored, 12u);
}

TEST_F(ChunkUploadTest, StorelessServerTriggersWholeImageFallback) {
  // Chunking on, but the server has no store: the first manifest gets
  // kChunkStoreDisabledMessage, the client latches, and the batch still
  // completes via legacy whole-image commits.
  DirectUploadScheme chunked(*store_, chunked_config());
  cloud::Server server;  // no attach_chunk_store
  net::Channel ch = channel();
  energy::Battery bat;
  const BatchReport r = chunked.upload_batch(set_->images, server, ch, bat);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.images_uploaded, 12);
  EXPECT_EQ(r.chunks_sent, 0);
  EXPECT_EQ(r.chunks_deduped, 0);
  EXPECT_EQ(server.stats().images_stored, 12u);

  DirectUploadScheme legacy(*store_, legacy_config());
  cloud::Server legacy_server;
  net::Channel ch2 = channel();
  energy::Battery bat2;
  const BatchReport ref =
      legacy.upload_batch(set_->images, legacy_server, ch2, bat2);
  EXPECT_DOUBLE_EQ(r.image_bytes, ref.image_bytes);
}

TEST_F(ChunkUploadTest, DisabledChunkingIsExactlyTheLegacyPath) {
  // A server-side store alone must change nothing: with chunking disabled
  // the uploader is the legacy protocol, byte for byte.
  auto run = [&](bool with_store) {
    BeesScheme bees(*store_, legacy_config());
    cloud::Server server;
    store::SegmentStore chunk_store({});
    if (with_store) server.attach_chunk_store(&chunk_store);
    net::Channel ch = channel(0.2, 29);
    energy::Battery bat;
    return bees.upload_batch(set_->images, server, ch, bat);
  };
  const BatchReport plain = run(false);
  const BatchReport with_store = run(true);
  EXPECT_EQ(plain.images_uploaded, with_store.images_uploaded);
  EXPECT_DOUBLE_EQ(plain.image_bytes, with_store.image_bytes);
  EXPECT_DOUBLE_EQ(plain.feature_bytes, with_store.feature_bytes);
  EXPECT_DOUBLE_EQ(plain.energy.total(), with_store.energy.total());
  EXPECT_EQ(plain.retries, with_store.retries);
  EXPECT_EQ(plain.chunks_sent, 0);
  EXPECT_EQ(with_store.chunks_sent, 0);
}

TEST_F(ChunkUploadTest, ChunkCountersAreAppendedToTheExportRow) {
  DirectUploadScheme direct(*store_, chunked_config());
  cloud::Server server;
  store::SegmentStore chunk_store({});
  server.attach_chunk_store(&chunk_store);
  net::Channel ch = channel();
  energy::Battery bat;
  const BatchReport r = direct.upload_batch(set_->images, server, ch, bat);

  EXPECT_EQ(r.value_of("chunks_sent"), static_cast<double>(r.chunks_sent));
  EXPECT_EQ(r.value_of("chunks_deduped"),
            static_cast<double>(r.chunks_deduped));
  EXPECT_EQ(r.value_of("chunks_resent"), static_cast<double>(r.chunks_resent));
  // Append-only export contract: the new counters sit at the tail, after
  // the pre-existing energy columns.
  const auto values = r.named_values();
  ASSERT_GE(values.size(), 4u);
  EXPECT_STREQ(values[values.size() - 4].name, "energy_total_j");
  EXPECT_STREQ(values[values.size() - 3].name, "chunks_sent");
  EXPECT_STREQ(values[values.size() - 2].name, "chunks_deduped");
  EXPECT_STREQ(values[values.size() - 1].name, "chunks_resent");
}

}  // namespace
}  // namespace bees::core
