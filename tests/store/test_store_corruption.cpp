// Disk corruption must surface as util::DecodeError — never UB, a bad
// allocation, or silently wrong bytes.  Covers flipped chunk payloads
// (raw and compressed encodings), truncated segment tails, manifests
// referencing chunks the store does not hold, and mangled segment headers.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/segment_store.hpp"
#include "util/rng.hpp"

namespace bees::store {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> random_payload(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

class StoreCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("bees_corrupt_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<fs::path> segment_files() const {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() == ".bsg") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  void flip_byte(const fs::path& path, std::uint64_t offset) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  std::string dir_;
};

// Segment layout constants mirrored from segment_store.cpp: 8-byte file
// header ("BSEG" + version), 21-byte record header before each chunk body.
constexpr std::uint64_t kHeaderBytes = 8;
constexpr std::uint64_t kRecordHeaderBytes = 21;

TEST_F(StoreCorruptionTest, FlippedRawChunkFailsChecksumOnGet) {
  SegmentStoreOptions options;
  options.dir = dir_;
  ChunkKey key;
  {
    SegmentStore store(options);
    // Random bytes are incompressible, so the body is stored raw and a
    // single bit flip maps directly onto the chunk payload.
    key = store.put(random_payload(900, 1));
    store.flush();
  }
  const auto files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  flip_byte(files[0], kHeaderBytes + kRecordHeaderBytes + 17);

  SegmentStore reopened(options);
  // The scan only parses record headers, so the chunk is still indexed...
  EXPECT_TRUE(reopened.contains(key));
  // ...but reading it trips the CRC/content-hash check.
  EXPECT_THROW(reopened.get(key), util::DecodeError);
}

TEST_F(StoreCorruptionTest, FlippedCompressedChunkFailsOnGet) {
  SegmentStoreOptions options;
  options.dir = dir_;
  ChunkKey key;
  {
    SegmentStore store(options);
    key = store.put(std::vector<std::uint8_t>(4096, 0xAB));  // compresses
    store.flush();
  }
  const auto files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  // Flip inside the LZ stream header, which every compressed body starts
  // with regardless of how small the data packed.
  flip_byte(files[0], kHeaderBytes + kRecordHeaderBytes + 2);

  SegmentStore reopened(options);
  // Either the LZ stream fails to parse or the decompressed bytes fail the
  // checksum; both must be a DecodeError.
  EXPECT_THROW(reopened.get(key), util::DecodeError);
}

TEST_F(StoreCorruptionTest, TruncatedTailDropsOnlyTheTornRecord) {
  SegmentStoreOptions options;
  options.dir = dir_;
  const auto first_bytes = random_payload(600, 2);
  ChunkKey first;
  ChunkKey second;
  {
    SegmentStore store(options);
    first = store.put(first_bytes);
    second = store.put(random_payload(600, 3));
    store.flush();
  }
  const auto files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  const std::uint64_t first_end = kHeaderBytes + kRecordHeaderBytes + 600;
  fs::resize_file(files[0], first_end + kRecordHeaderBytes + 37);

  SegmentStore reopened(options);
  EXPECT_TRUE(reopened.contains(first));
  EXPECT_EQ(reopened.get(first), first_bytes);
  EXPECT_FALSE(reopened.contains(second));
  EXPECT_THROW(reopened.get(second), util::DecodeError);
  // The torn tail is cut back to the last intact record boundary.
  EXPECT_EQ(fs::file_size(files[0]), first_end);
}

TEST_F(StoreCorruptionTest, TailShorterThanRecordHeaderIsTruncated) {
  SegmentStoreOptions options;
  options.dir = dir_;
  ChunkKey key;
  {
    SegmentStore store(options);
    key = store.put(random_payload(500, 4));
    store.flush();
  }
  const auto files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  const std::uint64_t end = fs::file_size(files[0]);
  std::ofstream(files[0], std::ios::binary | std::ios::app).write("abc", 3);

  SegmentStore reopened(options);
  EXPECT_EQ(reopened.get(key), random_payload(500, 4));
  EXPECT_EQ(fs::file_size(files[0]), end);
}

TEST_F(StoreCorruptionTest, ManifestReferencingMissingChunkIsClean) {
  SegmentStore store({});
  const auto payload = random_payload(5000, 5);
  const Manifest held = store.put_payload(payload, 1024);

  // A manifest for bytes the store never saw: lookup, reassembly, and pin
  // all fail cleanly.
  const Manifest foreign = build_manifest(random_payload(5000, 6), 1024);
  for (const ChunkKey& key : foreign.chunks) {
    EXPECT_FALSE(store.contains(key));
  }
  EXPECT_THROW(store.get_payload(foreign), util::DecodeError);
  EXPECT_THROW(store.pin(foreign.chunks), util::DecodeError);

  // A held manifest with one tampered key also fails on reassembly.
  Manifest tampered = held;
  tampered.chunks[2].hash ^= 1;
  EXPECT_THROW(store.get_payload(tampered), util::DecodeError);
  EXPECT_EQ(store.get_payload(held), payload);
}

TEST_F(StoreCorruptionTest, PayloadHashMismatchIsCaughtOnReassembly) {
  SegmentStore store({});
  const auto payload = random_payload(3000, 7);
  Manifest m = store.put_payload(payload, 1024);
  // Chunks all resolve, but the whole-payload hash was tampered with.
  m.content_hash ^= 1;
  EXPECT_THROW(store.get_payload(m), util::DecodeError);
}

TEST_F(StoreCorruptionTest, BadSegmentMagicRejectedOnOpen) {
  SegmentStoreOptions options;
  options.dir = dir_;
  {
    SegmentStore store(options);
    store.put(random_payload(100, 8));
    store.flush();
  }
  const auto files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  flip_byte(files[0], 0);  // corrupt "BSEG"
  EXPECT_THROW(SegmentStore reopened(options), util::DecodeError);
}

TEST_F(StoreCorruptionTest, UnknownSegmentVersionRejectedOnOpen) {
  SegmentStoreOptions options;
  options.dir = dir_;
  {
    SegmentStore store(options);
    store.put(random_payload(100, 9));
    store.flush();
  }
  const auto files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  flip_byte(files[0], 4);  // version field
  EXPECT_THROW(SegmentStore reopened(options), util::DecodeError);
}

TEST_F(StoreCorruptionTest, StraySegmentLookalikeFileIsSkippedOnOpen) {
  SegmentStoreOptions options;
  options.dir = dir_;
  ChunkKey key;
  {
    SegmentStore store(options);
    key = store.put(random_payload(300, 11));
    store.flush();
  }
  // A 14-char name shaped like a segment but with a non-digit id must not
  // reach std::stoull (which would throw std::invalid_argument, an
  // exception no caller expects from the constructor).
  std::ofstream(fs::path(dir_) / "seg-00000a.bsg", std::ios::binary)
      << "not a segment";
  SegmentStore reopened(options);
  EXPECT_EQ(reopened.get(key), random_payload(300, 11));
}

TEST_F(StoreCorruptionTest, GarbageRecordHeaderTreatedAsTornTail) {
  SegmentStoreOptions options;
  options.dir = dir_;
  ChunkKey key;
  {
    SegmentStore store(options);
    key = store.put(random_payload(400, 10));
    store.flush();
  }
  const auto files = segment_files();
  ASSERT_EQ(files.size(), 1u);
  // Append a full record header whose stored-length field is absurd; the
  // scan must stop there instead of allocating gigabytes.
  std::vector<std::uint8_t> junk(kRecordHeaderBytes + 8, 0xFF);
  std::ofstream(files[0], std::ios::binary | std::ios::app)
      .write(reinterpret_cast<const char*>(junk.data()),
             static_cast<std::streamsize>(junk.size()));

  SegmentStore reopened(options);
  EXPECT_EQ(reopened.get(key), random_payload(400, 10));
}

}  // namespace
}  // namespace bees::store
