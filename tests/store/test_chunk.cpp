// Chunk manifests: deterministic construction, the frozen codec, and the
// decoder's structural validation (a corrupt manifest must become a
// DecodeError, never a bad allocation or a silent misparse).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "store/chunk.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace bees::store {
namespace {

std::vector<std::uint8_t> random_payload(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

TEST(ChunkManifest, SplitsPayloadWithShortLastChunk) {
  const auto payload = random_payload(10'000, 1);
  const Manifest m = build_manifest(payload, 4096);
  EXPECT_EQ(m.chunk_size, 4096u);
  EXPECT_EQ(m.total_bytes, 10'000u);
  EXPECT_EQ(m.content_hash, util::content_hash64(payload));
  ASSERT_EQ(m.chunks.size(), 3u);
  EXPECT_EQ(m.chunks[0].size, 4096u);
  EXPECT_EQ(m.chunks[1].size, 4096u);
  EXPECT_EQ(m.chunks[2].size, 10'000u - 2u * 4096u);
  for (std::size_t i = 0; i < m.chunks.size(); ++i) {
    const auto piece = chunk_bytes(payload, m, i);
    EXPECT_EQ(m.chunks[i].hash, util::content_hash64(piece)) << i;
    EXPECT_EQ(m.chunks[i].crc, util::crc32(piece)) << i;
  }
}

TEST(ChunkManifest, ExactMultipleAndEmptyPayload) {
  const auto payload = random_payload(8192, 2);
  const Manifest m = build_manifest(payload, 4096);
  ASSERT_EQ(m.chunks.size(), 2u);
  EXPECT_EQ(m.chunks[1].size, 4096u);

  const Manifest empty = build_manifest({}, 4096);
  EXPECT_EQ(empty.total_bytes, 0u);
  EXPECT_TRUE(empty.chunks.empty());
}

TEST(ChunkManifest, ZeroChunkSizeThrows) {
  const auto payload = random_payload(16, 3);
  EXPECT_THROW(build_manifest(payload, 0), std::invalid_argument);
}

TEST(ChunkManifest, Deterministic) {
  const auto payload = random_payload(20'000, 4);
  EXPECT_EQ(build_manifest(payload, 1024), build_manifest(payload, 1024));
  EXPECT_NE(build_manifest(payload, 1024), build_manifest(payload, 2048));
}

TEST(ChunkManifest, IdenticalChunksShareKeys) {
  // Two identical 4 KB halves: both chunks must carry the same key (the
  // basis of on-disk and on-wire dedup).
  auto payload = random_payload(4096, 5);
  payload.insert(payload.end(), payload.begin(), payload.begin() + 4096);
  const Manifest m = build_manifest(payload, 4096);
  ASSERT_EQ(m.chunks.size(), 2u);
  EXPECT_EQ(m.chunks[0], m.chunks[1]);
}

TEST(ChunkManifestCodec, RoundTrips) {
  const auto payload = random_payload(30'000, 6);
  const Manifest m = build_manifest(payload, 4096);
  EXPECT_EQ(decode_manifest(encode_manifest(m)), m);

  const Manifest empty = build_manifest({}, 512);
  EXPECT_EQ(decode_manifest(encode_manifest(empty)), empty);
}

TEST(ChunkManifestCodec, RejectsTrailingBytes) {
  const Manifest m = build_manifest(random_payload(100, 7), 64);
  auto bytes = encode_manifest(m);
  bytes.push_back(0);
  EXPECT_THROW(decode_manifest(bytes), util::DecodeError);
}

TEST(ChunkManifestCodec, RejectsInconsistentChunkCount) {
  const auto payload = random_payload(10'000, 8);
  Manifest m = build_manifest(payload, 4096);
  m.chunks.pop_back();  // count no longer matches ceil(total / chunk_size)
  EXPECT_THROW(decode_manifest(encode_manifest(m)), util::DecodeError);
}

TEST(ChunkManifestCodec, RejectsWrongChunkSizes) {
  const auto payload = random_payload(10'000, 9);
  Manifest m = build_manifest(payload, 4096);
  m.chunks[0].size = 4095;  // interior chunks must equal chunk_size
  EXPECT_THROW(decode_manifest(encode_manifest(m)), util::DecodeError);
}

TEST(ChunkManifestCodec, RejectsZeroChunkSizeHeader) {
  Manifest m;
  m.chunk_size = 0;
  m.total_bytes = 10;
  m.chunks.push_back({1, 2, 10});
  EXPECT_THROW(decode_manifest(encode_manifest(m)), util::DecodeError);
}

TEST(ChunkKeyHash, SpreadsAndAgrees) {
  ChunkKeyHasher hasher;
  const ChunkKey a{0x1234, 0x55, 100};
  const ChunkKey b{0x1234, 0x55, 100};
  const ChunkKey c{0x1235, 0x55, 100};
  EXPECT_EQ(hasher(a), hasher(b));
  EXPECT_NE(hasher(a), hasher(c));
}

}  // namespace
}  // namespace bees::store
