// Relay contract: CARE dedup charges a chunk's bytes once per relay,
// identical payloads collapse to manifest-only backhaul, store-and-forward
// preserves FIFO order across hold/drain, and tier routing is stable.
#include "relay/relay.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "store/chunk.hpp"

namespace bees::relay {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t base) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(base + (i % 7));
  }
  return out;
}

TEST(Relay, FirstForwardChargesChunksPlusManifest) {
  Relay relay(0, 64);
  const auto payload = pattern(300, 1);
  const std::uint64_t manifest_bytes =
      store::encode_manifest(store::build_manifest(payload, 64)).size();
  const std::uint64_t sent = relay.forward(payload);
  EXPECT_EQ(sent, manifest_bytes + payload.size());
  EXPECT_EQ(relay.stats().dedup_chunks_hit, 0u);
  EXPECT_EQ(relay.stats().ingress_bytes, payload.size());
  EXPECT_EQ(relay.stats().backhaul_bytes, sent);
}

TEST(Relay, RepeatForwardShipsOnlyTheManifest) {
  Relay relay(0, 64);
  const auto payload = pattern(300, 1);
  relay.forward(payload);
  const std::uint64_t again = relay.forward(payload);
  const std::uint64_t manifest_bytes =
      store::encode_manifest(store::build_manifest(payload, 64)).size();
  EXPECT_EQ(again, manifest_bytes);
  EXPECT_EQ(relay.stats().dedup_chunks_hit, (300 + 63) / 64);
  EXPECT_EQ(relay.stats().dedup_bytes_saved, 300u);
}

TEST(Relay, PartialOverlapChargesOnlyFreshChunks) {
  Relay relay(0, 64);
  // Two payloads sharing their first 128 bytes exactly (two full chunks).
  auto a = pattern(256, 1);
  auto b = a;
  for (std::size_t i = 128; i < b.size(); ++i) b[i] ^= 0xA5;
  relay.forward(a);
  const std::uint64_t sent_b = relay.forward(b);
  const std::uint64_t manifest_bytes =
      store::encode_manifest(store::build_manifest(b, 64)).size();
  EXPECT_EQ(sent_b, manifest_bytes + 128u);  // only the changed half ships
  EXPECT_EQ(relay.stats().dedup_chunks_hit, 2u);
}

TEST(Relay, DedupLedgersAreIndependentAcrossRelays) {
  RelayTier tier(2, 64);
  const auto payload = pattern(200, 3);
  const std::uint64_t first = tier.at(0).forward(payload);
  // Relay 1 has never pushed these chunks: it pays the full price again.
  EXPECT_EQ(tier.at(1).forward(payload), first);
  EXPECT_EQ(tier.stats().dedup_chunks_hit, 0u);
}

TEST(Relay, HoldDrainPreservesFifoOrder) {
  Relay relay(0, 64);
  relay.hold(11, pattern(100, 1));
  relay.hold(22, pattern(100, 2));
  relay.hold(33, pattern(100, 3));
  EXPECT_EQ(relay.queue_depth(), 3u);
  EXPECT_EQ(relay.stats().queue_depth_max, 3u);

  const std::vector<HeldRequest> held = relay.take_held();
  ASSERT_EQ(held.size(), 3u);
  EXPECT_EQ(held[0].token, 11u);
  EXPECT_EQ(held[1].token, 22u);
  EXPECT_EQ(held[2].token, 33u);
  EXPECT_EQ(relay.queue_depth(), 0u);
  EXPECT_EQ(relay.stats().held_requests, 3u);
  EXPECT_EQ(relay.stats().drained_requests, 3u);
  // Peak depth survives the drain.
  EXPECT_EQ(relay.stats().queue_depth_max, 3u);
}

TEST(Relay, TierRoutesByDeviceModulo) {
  RelayTier tier(3, 64);
  EXPECT_EQ(tier.route(0).id(), 0);
  EXPECT_EQ(tier.route(4).id(), 1);
  EXPECT_EQ(tier.route(5).id(), 2);
  EXPECT_EQ(tier.route(6).id(), 0);
  EXPECT_EQ(tier.size(), 3);
}

TEST(Relay, AggregateStatsSumAcrossTheTier) {
  RelayTier tier(2, 64);
  tier.at(0).forward(pattern(100, 1));
  tier.at(1).forward(pattern(100, 1));
  tier.at(1).hold(1, pattern(50, 2));
  const RelayStats s = tier.stats();
  EXPECT_EQ(s.forwarded_requests, 2u);
  EXPECT_EQ(s.ingress_bytes, 200u);
  EXPECT_EQ(s.held_requests, 1u);
  EXPECT_EQ(s.queue_depth_max, 1u);
}

TEST(Relay, InvalidConstructionThrows) {
  EXPECT_THROW(Relay(0, 0), std::invalid_argument);
  EXPECT_THROW(RelayTier(0, 64), std::invalid_argument);
}

}  // namespace
}  // namespace bees::relay
