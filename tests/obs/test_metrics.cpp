#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace bees::obs {
namespace {

/// Saves and restores the process-wide observability state so tests can
/// flip the switch and dirty the global registry freely.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
};

TEST_F(MetricsTest, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry reg;
  reg.add("a.count");
  reg.add("a.count", 2.0);
  reg.set("a.gauge", 7.0);
  reg.set("a.gauge", 3.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("a.count"), 3.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("a.gauge"), 3.0);
}

TEST_F(MetricsTest, HistogramBucketsCountSumMinMax) {
  MetricsRegistry reg;
  reg.declare_histogram("h", {1.0, 10.0, 100.0});
  reg.observe("h", 0.5);    // bucket 0 (<= 1)
  reg.observe("h", 10.0);   // bucket 1 (<= 10, inclusive upper bound)
  reg.observe("h", 99.0);   // bucket 2
  reg.observe("h", 1000.0); // overflow bucket
  const HistogramSnapshot h = reg.snapshot().histograms.at("h");
  ASSERT_EQ(h.bounds.size(), 3u);
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 1109.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1109.5 / 4.0);
}

TEST_F(MetricsTest, QuantileEdgeCases) {
  MetricsRegistry reg;
  reg.declare_histogram("h", {1.0, 10.0, 100.0});
  // Empty histogram: every quantile is 0 (there is nothing to estimate).
  const HistogramSnapshot empty = reg.snapshot().histograms.at("h");
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);

  // One sample: every quantile collapses to it — interpolation is clamped
  // to the observed [min, max] range, which is a single point.
  reg.observe("h", 7.5);
  const HistogramSnapshot one = reg.snapshot().histograms.at("h");
  EXPECT_DOUBLE_EQ(one.quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 7.5);

  // Many samples: q = 0 pins to the observed minimum, q = 1 to the
  // observed maximum, and out-of-range q clamps rather than extrapolating.
  reg.observe("h", 0.25);
  reg.observe("h", 42.0);
  reg.observe("h", 500.0);
  const HistogramSnapshot many = reg.snapshot().histograms.at("h");
  EXPECT_DOUBLE_EQ(many.quantile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(many.quantile(1.0), 500.0);
  EXPECT_DOUBLE_EQ(many.quantile(-3.0), many.quantile(0.0));
  EXPECT_DOUBLE_EQ(many.quantile(7.0), many.quantile(1.0));
  // Interior quantiles stay within the observed range and are monotone.
  double prev = many.quantile(0.0);
  for (const double q : {0.25, 0.5, 0.75, 0.95, 1.0}) {
    const double v = many.quantile(q);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, 500.0);
    prev = v;
  }
}

TEST_F(MetricsTest, UndeclaredHistogramGetsDefaultBounds) {
  MetricsRegistry reg;
  reg.observe("h.seconds", 0.5);
  const HistogramSnapshot h = reg.snapshot().histograms.at("h.seconds");
  EXPECT_EQ(h.bounds, MetricsRegistry::default_bounds());
  EXPECT_EQ(h.count, 1u);
}

TEST_F(MetricsTest, DeclareIsNoOpOnceSamplesExist) {
  MetricsRegistry reg;
  reg.declare_histogram("h", {1.0, 2.0});
  reg.observe("h", 1.5);
  reg.declare_histogram("h", {100.0});  // must not clobber the samples
  const HistogramSnapshot h = reg.snapshot().histograms.at("h");
  ASSERT_EQ(h.bounds.size(), 2u);
  EXPECT_EQ(h.count, 1u);
}

TEST_F(MetricsTest, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.add("c");
  reg.set("g", 1.0);
  reg.observe("h", 1.0);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(MetricsTest, WrappersAreInertWhileDisabled) {
  ASSERT_FALSE(enabled());
  count("gated.count");
  gauge("gated.gauge", 1.0);
  observe("gated.h", 1.0);
  const MetricsSnapshot off = MetricsRegistry::global().snapshot();
  EXPECT_TRUE(off.counters.empty());
  EXPECT_TRUE(off.gauges.empty());
  EXPECT_TRUE(off.histograms.empty());

  set_enabled(true);
  count("gated.count");
  gauge("gated.gauge", 1.0);
  observe("gated.h", 1.0);
  const MetricsSnapshot on = MetricsRegistry::global().snapshot();
  EXPECT_DOUBLE_EQ(on.counters.at("gated.count"), 1.0);
  EXPECT_DOUBLE_EQ(on.gauges.at("gated.gauge"), 1.0);
  EXPECT_EQ(on.histograms.at("gated.h").count, 1u);
}

// The registry's core determinism contract: concurrent recording from
// ThreadPool workers yields the same snapshot as any other scheduling,
// because counter deltas and histogram samples here are integral (exact in
// floating point, order-independent under addition).
TEST_F(MetricsTest, SnapshotIsDeterministicAcrossThreadPoolWorkers) {
  constexpr std::size_t kItems = 2000;
  MetricsSnapshot first;
  for (int round = 0; round < 3; ++round) {
    MetricsRegistry reg;
    util::ThreadPool pool(4);
    pool.parallel_for(kItems, [&](std::size_t i) {
      reg.add("work.items");
      reg.add("work.bytes", static_cast<double>(i % 97));
      reg.observe("work.size", static_cast<double>(i % 13));
    });
    const MetricsSnapshot snap = reg.snapshot();
    if (round == 0) {
      first = snap;
      EXPECT_DOUBLE_EQ(first.counters.at("work.items"),
                       static_cast<double>(kItems));
      continue;
    }
    EXPECT_EQ(snap.counters, first.counters);
    const HistogramSnapshot& h = snap.histograms.at("work.size");
    const HistogramSnapshot& f = first.histograms.at("work.size");
    EXPECT_EQ(h.counts, f.counts);
    EXPECT_EQ(h.count, f.count);
    EXPECT_DOUBLE_EQ(h.sum, f.sum);
    EXPECT_DOUBLE_EQ(h.min, f.min);
    EXPECT_DOUBLE_EQ(h.max, f.max);
  }
}

TEST_F(MetricsTest, ToJsonIsDeterministicAndSorted) {
  MetricsRegistry reg;
  reg.add("z.count", 2.0);
  reg.add("a.count", 1.0);
  reg.set("m.gauge", 4.5);
  reg.declare_histogram("h", {1.0});
  reg.observe("h", 0.5);
  const std::string json = reg.to_json();
  EXPECT_EQ(json, reg.to_json());  // stable across calls
  // Sorted: "a.count" precedes "z.count".
  EXPECT_LT(json.find("\"a.count\""), json.find("\"z.count\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"m.gauge\": 4.5"), std::string::npos);
  // The overflow bucket is emitted with an "inf" bound.
  EXPECT_NE(json.find("inf"), std::string::npos);
}

TEST_F(MetricsTest, QuantileInterpolatesWithinBuckets) {
  MetricsRegistry reg;
  reg.declare_histogram("h", {10.0, 20.0, 30.0});
  // 100 samples spread uniformly through (0, 30]: ranks map linearly.
  for (int i = 1; i <= 100; ++i) reg.observe("h", 0.3 * i);
  const HistogramSnapshot h = reg.snapshot().histograms.at("h");
  // Exact order statistics: p50 = 15, p90 = 27 (within a bucket-width
  // tolerance of the linear interpolation).
  EXPECT_NEAR(h.quantile(0.50), 15.0, 1.0);
  EXPECT_NEAR(h.quantile(0.90), 27.0, 1.0);
  // Extremes clamp to the observed range.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.max);
}

TEST_F(MetricsTest, QuantileDegenerateCases) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  MetricsRegistry reg;
  reg.declare_histogram("one", {1.0, 10.0});
  reg.observe("one", 3.5);
  const HistogramSnapshot one = reg.snapshot().histograms.at("one");
  // A single sample is every quantile.
  EXPECT_DOUBLE_EQ(one.quantile(0.01), 3.5);
  EXPECT_DOUBLE_EQ(one.quantile(0.50), 3.5);
  EXPECT_DOUBLE_EQ(one.quantile(0.99), 3.5);

  // Samples beyond every bound live in the overflow bucket, clamped to
  // the observed max rather than extrapolated to infinity.
  reg.declare_histogram("over", {1.0});
  reg.observe("over", 500.0);
  reg.observe("over", 900.0);
  const HistogramSnapshot over = reg.snapshot().histograms.at("over");
  EXPECT_GE(over.quantile(0.99), 500.0);
  EXPECT_LE(over.quantile(0.99), 900.0);
}

TEST_F(MetricsTest, LatencyBoundsAreFixedAndAscending) {
  const std::vector<double> bounds = MetricsRegistry::latency_bounds();
  ASSERT_EQ(bounds.size(), 41u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-4);
  EXPECT_DOUBLE_EQ(bounds.back(), 1e4);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  // Fixed: two calls agree exactly (exporters must bucket identically).
  EXPECT_EQ(bounds, MetricsRegistry::latency_bounds());
}

TEST_F(MetricsTest, ToJsonRoundTripsQuantileSummaries) {
  MetricsRegistry reg;
  reg.declare_histogram("lat", MetricsRegistry::latency_bounds());
  for (int i = 1; i <= 200; ++i) reg.observe("lat", 0.001 * i);
  const HistogramSnapshot h = reg.snapshot().histograms.at("lat");
  const std::string json = reg.to_json();

  // The export carries p50/p95/p99 and they round-trip: parsing the
  // number after each key recovers exactly the snapshot's estimate
  // (%.17g is lossless for doubles).
  const auto parse_after = [&](const std::string& key) {
    const std::size_t at = json.find(key);
    EXPECT_NE(at, std::string::npos) << key;
    return std::stod(json.substr(at + key.size()));
  };
  EXPECT_DOUBLE_EQ(parse_after("\"p50\": "), h.quantile(0.50));
  EXPECT_DOUBLE_EQ(parse_after("\"p95\": "), h.quantile(0.95));
  EXPECT_DOUBLE_EQ(parse_after("\"p99\": "), h.quantile(0.99));
  // Sanity: the estimates bracket the true order statistics reasonably.
  EXPECT_NEAR(h.quantile(0.50), 0.100, 0.03);
  EXPECT_NEAR(h.quantile(0.99), 0.198, 0.05);
}

}  // namespace
}  // namespace bees::obs
