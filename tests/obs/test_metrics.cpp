#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace bees::obs {
namespace {

/// Saves and restores the process-wide observability state so tests can
/// flip the switch and dirty the global registry freely.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
};

TEST_F(MetricsTest, CountersAccumulateAndGaugesOverwrite) {
  MetricsRegistry reg;
  reg.add("a.count");
  reg.add("a.count", 2.0);
  reg.set("a.gauge", 7.0);
  reg.set("a.gauge", 3.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.counters.at("a.count"), 3.0);
  EXPECT_DOUBLE_EQ(snap.gauges.at("a.gauge"), 3.0);
}

TEST_F(MetricsTest, HistogramBucketsCountSumMinMax) {
  MetricsRegistry reg;
  reg.declare_histogram("h", {1.0, 10.0, 100.0});
  reg.observe("h", 0.5);    // bucket 0 (<= 1)
  reg.observe("h", 10.0);   // bucket 1 (<= 10, inclusive upper bound)
  reg.observe("h", 99.0);   // bucket 2
  reg.observe("h", 1000.0); // overflow bucket
  const HistogramSnapshot h = reg.snapshot().histograms.at("h");
  ASSERT_EQ(h.bounds.size(), 3u);
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 1109.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1109.5 / 4.0);
}

TEST_F(MetricsTest, UndeclaredHistogramGetsDefaultBounds) {
  MetricsRegistry reg;
  reg.observe("h.seconds", 0.5);
  const HistogramSnapshot h = reg.snapshot().histograms.at("h.seconds");
  EXPECT_EQ(h.bounds, MetricsRegistry::default_bounds());
  EXPECT_EQ(h.count, 1u);
}

TEST_F(MetricsTest, DeclareIsNoOpOnceSamplesExist) {
  MetricsRegistry reg;
  reg.declare_histogram("h", {1.0, 2.0});
  reg.observe("h", 1.5);
  reg.declare_histogram("h", {100.0});  // must not clobber the samples
  const HistogramSnapshot h = reg.snapshot().histograms.at("h");
  ASSERT_EQ(h.bounds.size(), 2u);
  EXPECT_EQ(h.count, 1u);
}

TEST_F(MetricsTest, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.add("c");
  reg.set("g", 1.0);
  reg.observe("h", 1.0);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(MetricsTest, WrappersAreInertWhileDisabled) {
  ASSERT_FALSE(enabled());
  count("gated.count");
  gauge("gated.gauge", 1.0);
  observe("gated.h", 1.0);
  const MetricsSnapshot off = MetricsRegistry::global().snapshot();
  EXPECT_TRUE(off.counters.empty());
  EXPECT_TRUE(off.gauges.empty());
  EXPECT_TRUE(off.histograms.empty());

  set_enabled(true);
  count("gated.count");
  gauge("gated.gauge", 1.0);
  observe("gated.h", 1.0);
  const MetricsSnapshot on = MetricsRegistry::global().snapshot();
  EXPECT_DOUBLE_EQ(on.counters.at("gated.count"), 1.0);
  EXPECT_DOUBLE_EQ(on.gauges.at("gated.gauge"), 1.0);
  EXPECT_EQ(on.histograms.at("gated.h").count, 1u);
}

// The registry's core determinism contract: concurrent recording from
// ThreadPool workers yields the same snapshot as any other scheduling,
// because counter deltas and histogram samples here are integral (exact in
// floating point, order-independent under addition).
TEST_F(MetricsTest, SnapshotIsDeterministicAcrossThreadPoolWorkers) {
  constexpr std::size_t kItems = 2000;
  MetricsSnapshot first;
  for (int round = 0; round < 3; ++round) {
    MetricsRegistry reg;
    util::ThreadPool pool(4);
    pool.parallel_for(kItems, [&](std::size_t i) {
      reg.add("work.items");
      reg.add("work.bytes", static_cast<double>(i % 97));
      reg.observe("work.size", static_cast<double>(i % 13));
    });
    const MetricsSnapshot snap = reg.snapshot();
    if (round == 0) {
      first = snap;
      EXPECT_DOUBLE_EQ(first.counters.at("work.items"),
                       static_cast<double>(kItems));
      continue;
    }
    EXPECT_EQ(snap.counters, first.counters);
    const HistogramSnapshot& h = snap.histograms.at("work.size");
    const HistogramSnapshot& f = first.histograms.at("work.size");
    EXPECT_EQ(h.counts, f.counts);
    EXPECT_EQ(h.count, f.count);
    EXPECT_DOUBLE_EQ(h.sum, f.sum);
    EXPECT_DOUBLE_EQ(h.min, f.min);
    EXPECT_DOUBLE_EQ(h.max, f.max);
  }
}

TEST_F(MetricsTest, ToJsonIsDeterministicAndSorted) {
  MetricsRegistry reg;
  reg.add("z.count", 2.0);
  reg.add("a.count", 1.0);
  reg.set("m.gauge", 4.5);
  reg.declare_histogram("h", {1.0});
  reg.observe("h", 0.5);
  const std::string json = reg.to_json();
  EXPECT_EQ(json, reg.to_json());  // stable across calls
  // Sorted: "a.count" precedes "z.count".
  EXPECT_LT(json.find("\"a.count\""), json.find("\"z.count\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"m.gauge\": 4.5"), std::string::npos);
  // The overflow bucket is emitted with an "inf" bound.
  EXPECT_NE(json.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace bees::obs
