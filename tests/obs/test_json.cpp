// JSON emission helpers, including the locale-independence contract: every
// float in a report must use '.' as the decimal separator no matter what
// the process-global C locale says (a comma would silently corrupt every
// machine-read fleet report on a comma-decimal host).
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <charconv>
#include <clocale>
#include <cmath>
#include <string>
#include <vector>

namespace bees::obs {
namespace {

double parse_exact(const std::string& s) {
  // std::from_chars is locale-independent, so the check itself cannot be
  // fooled by the locale under test.
  double v = 0.0;
  const auto r = std::from_chars(s.data(), s.data() + s.size(), v);
  EXPECT_TRUE(r.ec == std::errc()) << s;
  EXPECT_EQ(r.ptr, s.data() + s.size()) << s;
  return v;
}

TEST(Json, NumbersRoundTripExactly) {
  for (const double v :
       {0.0, 0.5, -0.5, 1.0 / 3.0, 1e-300, -1e300, 0.1, 1234.5678,
        6.02214076e23, std::nextafter(1.0, 2.0)}) {
    const std::string s = json_number(v);
    EXPECT_EQ(parse_exact(s), v) << s;
  }
}

TEST(Json, StringsEscapeControlAndQuoteCharacters) {
  EXPECT_EQ(json_string("plain"), "\"plain\"");
  EXPECT_EQ(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_string("line\nbreak\t"), "\"line\\nbreak\\t\"");
  EXPECT_EQ(json_string(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Json, NumbersIgnoreCommaDecimalLocale) {
  // Find an installed comma-decimal locale; skip (not fail) on minimal
  // images that ship none — the C-locale assertions above still ran.
  const char* previous = std::setlocale(LC_ALL, nullptr);
  const std::string saved = previous ? previous : "C";
  const char* active = nullptr;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                           "fr_FR.utf8", "nl_NL.UTF-8", "de_DE", "fr_FR"}) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      active = name;
      break;
    }
  }
  if (active == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  // Confirm the locale actually uses a comma (otherwise the test proves
  // nothing), then check json_number is unaffected.
  char probe[32];
  std::snprintf(probe, sizeof(probe), "%.1f", 0.5);
  const bool comma_locale = std::string(probe).find(',') != std::string::npos;
  std::vector<std::string> emitted;
  for (const double v : {0.5, -1234.5678, 1e-7, 2.5e300}) {
    emitted.push_back(json_number(v));
  }
  std::setlocale(LC_ALL, saved.c_str());
  if (!comma_locale) {
    GTEST_SKIP() << active << " does not use a comma decimal separator";
  }
  EXPECT_EQ(parse_exact(emitted[0]), 0.5);
  EXPECT_EQ(parse_exact(emitted[1]), -1234.5678);
  EXPECT_EQ(parse_exact(emitted[2]), 1e-7);
  EXPECT_EQ(parse_exact(emitted[3]), 2.5e300);
  for (const std::string& s : emitted) {
    EXPECT_EQ(s.find(','), std::string::npos) << s;
  }
}

}  // namespace
}  // namespace bees::obs
