// Observability overhead contract: running a scheme with metrics and
// tracing DISABLED must produce the exact same BatchReport (bit for bit)
// as an ENABLED run — instrumentation may read the simulation but never
// perturb it.  The enabled run must in turn populate stage histograms,
// transport counters, and pipeline trace spans.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/bees.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bees::core {
namespace {

class ObsRegressionTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_obs(); }
  void TearDown() override { reset_obs(); }

  static void reset_obs() {
    obs::set_enabled(false);
    obs::MetricsRegistry::global().reset();
    obs::Tracer::global().clear();
  }

  /// Runs one BEES batch from identical fresh state.  A per-run store
  /// keeps cache warm-up effects symmetric between runs.
  static BatchReport run_bees(bool lossy) {
    const wl::Imageset set = wl::make_disaster_like(12, 3, 200, 150, 77);
    wl::ImageStore store;
    SchemeConfig cfg;
    cfg.image_byte_scale = 4.0;
    net::ChannelParams cp = net::ChannelParams::fixed(256000.0);
    if (lossy) cp.loss_probability = 0.3;
    net::Channel channel(cp);
    cloud::Server server;
    energy::Battery battery;
    BeesScheme scheme(store, cfg, true);
    return scheme.upload_batch(set.images, server, channel, battery);
  }
};

TEST_F(ObsRegressionTest, DisabledAndEnabledRunsProduceIdenticalReports) {
  for (const bool lossy : {false, true}) {
    obs::set_enabled(false);
    const BatchReport off = run_bees(lossy);

    obs::set_enabled(true);
    const BatchReport on = run_bees(lossy);
    obs::set_enabled(false);

    const std::vector<NamedValue> off_rows = off.named_values();
    const std::vector<NamedValue> on_rows = on.named_values();
    ASSERT_EQ(off_rows.size(), on_rows.size());
    for (std::size_t i = 0; i < off_rows.size(); ++i) {
      EXPECT_STREQ(off_rows[i].name, on_rows[i].name);
      // Exact equality, not a tolerance: instrumentation must not change
      // a single bit of the simulated accounting.
      EXPECT_EQ(off_rows[i].value, on_rows[i].value)
          << off_rows[i].name << " diverged (lossy=" << lossy << ")";
    }
  }
}

TEST_F(ObsRegressionTest, DisabledRunRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  run_bees(true);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_EQ(obs::Tracer::global().size(), 0u);
}

TEST_F(ObsRegressionTest, EnabledRunCoversEveryLayer) {
  obs::set_enabled(true);
  const BatchReport r = run_bees(true);
  obs::set_enabled(false);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();

  // Client pipeline stages land in per-stage histograms, one sample each.
  for (const char* stage : {"core.stage.afe.seconds", "core.stage.cbrd.seconds",
                            "core.stage.ibrd.seconds",
                            "core.stage.aiu.seconds"}) {
    ASSERT_TRUE(snap.histograms.count(stage)) << stage;
    EXPECT_EQ(snap.histograms.at(stage).count, 1u) << stage;
  }

  // Delivered payloads match the report's accounting exactly.
  EXPECT_EQ(snap.counters.at("core.tx.feature_bytes"), r.feature_bytes);
  EXPECT_EQ(snap.counters.at("core.tx.image_bytes"), r.image_bytes);

  // Transport counters: attempts = exchanges + retries, and the retry
  // counter mirrors the report (absent means zero).
  const double exchanges = snap.counters.at("net.transport.exchanges");
  const double attempts = snap.counters.at("net.transport.attempts");
  const double retries = snap.counters.count("net.transport.retries")
                             ? snap.counters.at("net.transport.retries")
                             : 0.0;
  EXPECT_GT(exchanges, 0.0);
  EXPECT_EQ(attempts, exchanges + retries);
  EXPECT_EQ(retries, static_cast<double>(r.retries));

  // Server side: every exchange was dispatched and timed.
  EXPECT_EQ(snap.counters.at("cloud.dispatch.requests"), exchanges);
  EXPECT_TRUE(snap.histograms.count("cloud.query.binary.seconds"));

  // The trace holds scheme-lane stage spans and transport-lane RPC spans.
  const std::vector<obs::TraceEvent> events = obs::Tracer::global().events();
  ASSERT_FALSE(events.empty());
  int scheme_spans = 0, transport_spans = 0, server_spans = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.lane == obs::kLaneScheme) ++scheme_spans;
    if (e.lane == obs::kLaneTransport) ++transport_spans;
    if (e.lane == obs::kLaneServer) ++server_spans;
  }
  EXPECT_EQ(scheme_spans, 4);  // afe, cbrd, ibrd, aiu
  EXPECT_EQ(transport_spans, static_cast<int>(attempts));
  EXPECT_EQ(server_spans, static_cast<int>(exchanges));

  // The whole registry exports as one valid deterministic JSON document.
  const std::string json = obs::MetricsRegistry::global().to_json();
  EXPECT_EQ(json, obs::MetricsRegistry::global().to_json());
  EXPECT_NE(json.find("net.transport.attempt.seconds"), std::string::npos);
}

TEST_F(ObsRegressionTest, ExportMetricsPrefixesEveryReportRow) {
  obs::set_enabled(true);
  const BatchReport r = run_bees(false);
  obs::MetricsRegistry::global().reset();  // keep only the export below
  r.export_metrics("sim.batch");
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const std::vector<NamedValue> rows = r.named_values();
  ASSERT_EQ(snap.counters.size(), rows.size());
  for (const NamedValue& row : rows) {
    const std::string name = std::string("sim.batch.") + row.name;
    ASSERT_TRUE(snap.counters.count(name)) << name;
    EXPECT_EQ(snap.counters.at(name), row.value) << name;
  }
}

TEST_F(ObsRegressionTest, ValueOfMatchesNamedValuesAndThrowsOnUnknown) {
  const BatchReport r = run_bees(false);
  for (const NamedValue& row : r.named_values()) {
    EXPECT_EQ(r.value_of(row.name), row.value) << row.name;
  }
  EXPECT_THROW(r.value_of("no_such_metric"), std::out_of_range);
}

TEST_F(ObsRegressionTest, MergeEqualsOperatorPlusEquals) {
  const BatchReport a = run_bees(false);
  const BatchReport b = run_bees(true);
  BatchReport via_merge = a;
  via_merge.merge(b);
  BatchReport via_plus = a;
  via_plus += b;
  const std::vector<NamedValue> m = via_merge.named_values();
  const std::vector<NamedValue> p = via_plus.named_values();
  ASSERT_EQ(m.size(), p.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m[i].value, p[i].value) << m[i].name;
  }
  EXPECT_EQ(via_merge.images_offered, a.images_offered + b.images_offered);
}

}  // namespace
}  // namespace bees::core
