#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace bees::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    Tracer::global().clear();
  }
  void TearDown() override {
    set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(TraceTest, RoundTripsThroughChromeJson) {
  Tracer tracer;
  // Dyadic timestamps survive the seconds <-> microseconds conversion
  // exactly, so equality below is exact.  Names exercise the escapes.
  const std::vector<TraceEvent> events = {
      {"afe", "scheme", 0.5, 0.25, kLaneScheme},
      {"rpc \"retry\"", "net", 1.5, 0.125, kLaneTransport},
      {"dispatch\\slash", "cloud", 2.0, 0.0625, kLaneServer},
  };
  for (const TraceEvent& e : events) tracer.add(e);
  ASSERT_EQ(tracer.size(), events.size());

  const std::string json = tracer.to_chrome_json();
  const std::vector<TraceEvent> parsed = parse_chrome_json(json);
  EXPECT_EQ(parsed, events);
}

TEST_F(TraceTest, EmptyTracerRoundTrips) {
  Tracer tracer;
  EXPECT_TRUE(parse_chrome_json(tracer.to_chrome_json()).empty());
}

TEST_F(TraceTest, ChromeJsonUsesMicrosecondsAndLanes) {
  Tracer tracer;
  tracer.add({"span", "cat", 1.5, 0.5, kLaneTransport});
  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // json_number emits the shortest round-trip literal (1.5 s -> 1.5e+06 us);
  // Chrome's trace viewer parses JSON numbers, so scientific notation is
  // fine — assert the parsed values rather than a fixed-notation spelling.
  const std::size_t ts_at = json.find("\"ts\": ");
  ASSERT_NE(ts_at, std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(json.substr(ts_at + 6)), 1500000.0);
  const std::size_t dur_at = json.find("\"dur\": ");
  ASSERT_NE(dur_at, std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(json.substr(dur_at + 7)), 500000.0);
  EXPECT_NE(json.find("\"tid\": 2"), std::string::npos);
}

TEST_F(TraceTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_chrome_json("not json"), std::runtime_error);
  EXPECT_THROW(parse_chrome_json("{\"traceEvents\": [{]}"),
               std::runtime_error);
  EXPECT_THROW(parse_chrome_json(""), std::runtime_error);
}

TEST_F(TraceTest, SpanEventIsGatedOnEnabled) {
  span_event("off", "cat", 0.0, 1.0, kLaneScheme);
  EXPECT_EQ(Tracer::global().size(), 0u);

  set_enabled(true);
  span_event("on", "cat", 0.0, 1.0, kLaneScheme);
  ASSERT_EQ(Tracer::global().size(), 1u);
  EXPECT_EQ(Tracer::global().events()[0].name, "on");
}

TEST_F(TraceTest, ScopedSpanRecordsClockDelta) {
  set_enabled(true);
  double now = 10.0;
  {
    ScopedSpan span("work", "test", [&now] { return now; }, kLaneScheme);
    now += 2.0;
  }
  const std::vector<TraceEvent> events = Tracer::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], (TraceEvent{"work", "test", 10.0, 2.0, kLaneScheme}));
}

TEST_F(TraceTest, DisabledScopedSpanNeverReadsTheClock) {
  int clock_calls = 0;
  {
    ScopedSpan span("off", "test",
                    [&clock_calls] {
                      ++clock_calls;
                      return 0.0;
                    },
                    kLaneScheme);
  }
  EXPECT_EQ(clock_calls, 0);
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST_F(TraceTest, ClearEmptiesTheTracer) {
  Tracer tracer;
  tracer.add({"a", "b", 0.0, 1.0, 1});
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.events().empty());
}

}  // namespace
}  // namespace bees::obs
