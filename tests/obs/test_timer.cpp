#include "obs/timer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "obs/metrics.hpp"

namespace bees::obs {
namespace {

class TimerTest : public ::testing::Test {
 protected:
  void SetUp() override { set_enabled(false); }
  void TearDown() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
};

TEST_F(TimerTest, ChargesElapsedTimeIntoNamedHistogram) {
  set_enabled(true);
  MetricsRegistry reg;
  double now = 100.0;
  {
    ScopedTimer timer("stage.seconds", [&now] { return now; }, reg);
    now += 2.5;
    EXPECT_DOUBLE_EQ(timer.elapsed_seconds(), 2.5);
    now += 1.5;
  }
  const HistogramSnapshot h = reg.snapshot().histograms.at("stage.seconds");
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum, 4.0);
}

TEST_F(TimerTest, AttributesEachTimerToItsOwnHistogram) {
  set_enabled(true);
  MetricsRegistry reg;
  double now = 0.0;
  auto clock = [&now] { return now; };
  {
    ScopedTimer outer("outer.seconds", clock, reg);
    now += 1.0;
    {
      ScopedTimer inner("inner.seconds", clock, reg);
      now += 5.0;
    }
    now += 1.0;
  }
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.histograms.at("inner.seconds").sum, 5.0);
  EXPECT_DOUBLE_EQ(snap.histograms.at("outer.seconds").sum, 7.0);
}

TEST_F(TimerTest, DisabledTimerNeverInvokesTheClock) {
  ASSERT_FALSE(enabled());
  MetricsRegistry reg;
  int clock_calls = 0;
  {
    ScopedTimer timer("t.seconds",
                      [&clock_calls] {
                        ++clock_calls;
                        return 0.0;
                      },
                      reg);
    EXPECT_DOUBLE_EQ(timer.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(clock_calls, 0);
  EXPECT_TRUE(reg.snapshot().histograms.empty());
}

TEST_F(TimerTest, EnabledStateIsLatchedAtConstruction) {
  // Disabling mid-flight must not strand a timer that already read its
  // clock: the ctor's decision holds for the whole scope.
  set_enabled(true);
  MetricsRegistry reg;
  double now = 0.0;
  {
    ScopedTimer timer("t.seconds", [&now] { return now; }, reg);
    now = 3.0;
    set_enabled(false);
  }
  EXPECT_EQ(reg.snapshot().histograms.at("t.seconds").count, 1u);
}

TEST_F(TimerTest, WallClockIsMonotonic) {
  const double a = wall_seconds();
  const double b = wall_seconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace bees::obs
