// Transport reliability-layer tests: retry/backoff bookkeeping over a lossy
// channel, with a plain echo handler standing in for the server.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bees::net {
namespace {

Transport::Handler echo(int* calls = nullptr) {
  return [calls](const std::vector<std::uint8_t>& request) {
    if (calls) ++*calls;
    return request;
  };
}

std::vector<std::uint8_t> some_request() { return {1, 2, 3, 4}; }

TEST(Transport, CleanChannelDeliversFirstTry) {
  Channel ch(ChannelParams::fixed(8000.0));  // 1000 bytes/s
  int calls = 0;
  Transport t(echo(&calls), ch);
  const ExchangeResult r = t.exchange(some_request(), 1000.0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(r.reply, some_request());
  EXPECT_NEAR(r.tx_seconds, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.wasted_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.backoff_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.retransmitted_bytes, 0.0);
}

TEST(Transport, WireBytesOverrideDrivesAirtime) {
  Channel ch(ChannelParams::fixed(8000.0));
  Transport t(echo(), ch);
  // The 4-byte request stands for a 4000-byte payload: 4 s of airtime.
  const ExchangeResult r = t.exchange(some_request(), 4000.0);
  EXPECT_NEAR(r.tx_seconds, 4.0, 1e-9);
  // Negative wire_bytes falls back to the encoded size.
  const ExchangeResult s = t.exchange(some_request());
  EXPECT_NEAR(s.tx_seconds, 4.0 / 1000.0, 1e-9);
}

TEST(Transport, RetriesUntilDeliveredOnLossyChannel) {
  ChannelParams p = ChannelParams::fixed(8000.0);
  p.loss_probability = 0.5;
  p.seed = 7;
  Channel ch(p);
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 64;  // enough that give-up is implausible
  Transport t(echo(&calls), ch, policy);
  int delivered = 0;
  int retried = 0;
  for (int i = 0; i < 50; ++i) {
    const ExchangeResult r = t.exchange(some_request(), 500.0);
    EXPECT_TRUE(r.ok);
    delivered += r.ok;
    if (r.retries > 0) {
      ++retried;
      EXPECT_GT(r.wasted_seconds, 0.0);
      EXPECT_GT(r.retransmitted_bytes, 0.0);
      EXPECT_GT(r.backoff_seconds, 0.0);
    }
  }
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(calls, 50);     // the handler never ran for a lost attempt
  EXPECT_GT(retried, 10);   // at 50% loss roughly half need a retry
}

TEST(Transport, GivesUpAfterRetryBudget) {
  ChannelParams p = ChannelParams::fixed(8000.0);
  p.loss_probability = 1.0;
  Channel ch(p);
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  Transport t(echo(&calls), ch, policy);
  const ExchangeResult r = t.exchange(some_request(), 1000.0);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_EQ(r.retries, 2);
  EXPECT_EQ(calls, 0);  // a lost message never reaches the server
  EXPECT_TRUE(r.reply.empty());
  EXPECT_NEAR(r.wasted_seconds, 3.0, 1e-9);
  EXPECT_NEAR(r.retransmitted_bytes, 3000.0, 1e-6);
}

TEST(Transport, BackoffIsExponentialAndCapped) {
  ChannelParams p = ChannelParams::fixed(8000.0);
  p.loss_probability = 1.0;
  Channel ch(p);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_base_s = 0.5;
  policy.backoff_max_s = 2.0;
  policy.jitter = 0.0;
  Transport t(echo(), ch, policy);
  const ExchangeResult r = t.exchange(some_request(), 1000.0);
  // Waits after attempts 1-4: 0.5, 1.0, 2.0 (capped), 2.0 (capped).
  EXPECT_NEAR(r.backoff_seconds, 5.5, 1e-9);
  // The channel clock carries airtime + backoff.
  EXPECT_NEAR(ch.now(), 5.0 * 1.0 + 5.5, 1e-9);
}

TEST(Transport, JitterStaysWithinBand) {
  ChannelParams p = ChannelParams::fixed(8000.0);
  p.loss_probability = 1.0;
  Channel ch(p);
  RetryPolicy policy;
  policy.max_attempts = 2;  // a single backoff wait per exchange
  policy.backoff_base_s = 1.0;
  policy.backoff_max_s = 1.0;
  policy.jitter = 0.25;
  Transport t(echo(), ch, policy);
  for (int i = 0; i < 100; ++i) {
    const ExchangeResult r = t.exchange(some_request(), 10.0);
    EXPECT_GE(r.backoff_seconds, 0.75);
    EXPECT_LE(r.backoff_seconds, 1.25);
  }
}

TEST(Transport, DeterministicPerSeeds) {
  ChannelParams p = ChannelParams::fixed(8000.0);
  p.loss_probability = 0.4;
  p.seed = 3;
  Channel ca(p), cb(p);
  Transport ta(echo(), ca), tb(echo(), cb);
  for (int i = 0; i < 100; ++i) {
    const ExchangeResult ra = ta.exchange(some_request(), 200.0);
    const ExchangeResult rb = tb.exchange(some_request(), 200.0);
    EXPECT_EQ(ra.attempts, rb.attempts);
    EXPECT_DOUBLE_EQ(ra.tx_seconds, rb.tx_seconds);
    EXPECT_DOUBLE_EQ(ra.wasted_seconds, rb.wasted_seconds);
    EXPECT_DOUBLE_EQ(ra.backoff_seconds, rb.backoff_seconds);
  }
  EXPECT_DOUBLE_EQ(ca.now(), cb.now());
}

TEST(Transport, TimeoutTriggersRetryOnStalledLink) {
  // An outage-pinned link times attempts out; once the link returns the
  // exchange succeeds.
  ChannelParams p = ChannelParams::fixed(8000.0);
  p.outage_probability = 1.0;
  p.outage_duration_s = 1.5;
  p.seed = 2;
  Channel ch(p);
  RetryPolicy policy;
  policy.timeout_s = 2.0;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  Transport t(echo(), ch, policy);
  const ExchangeResult r = t.exchange(some_request(), 500.0);
  // 500 bytes need 0.5 s of clear air; the first second is clear (the
  // first boundary is at t=1), so the first attempt already lands.
  EXPECT_TRUE(r.ok);

  // Park the clock inside a permanent outage train: every boundary redraws
  // a window, so attempts keep timing out until the budget runs dry.
  ch.advance(1.0);
  ASSERT_TRUE(ch.in_outage());
  const ExchangeResult stuck = t.exchange(some_request(), 5000.0);
  EXPECT_FALSE(stuck.ok);
  EXPECT_EQ(stuck.attempts, 4);
  EXPECT_GT(stuck.wasted_seconds, 0.0);
}

TEST(Transport, RejectsBadPolicy) {
  Channel ch(ChannelParams::fixed(8000.0));
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(Transport(echo(), ch, p), std::invalid_argument);
  p = {};
  p.timeout_s = 0.0;
  EXPECT_THROW(Transport(echo(), ch, p), std::invalid_argument);
  p = {};
  p.jitter = 2.0;
  EXPECT_THROW(Transport(echo(), ch, p), std::invalid_argument);
  p = {};
  p.backoff_base_s = -1.0;
  EXPECT_THROW(Transport(echo(), ch, p), std::invalid_argument);
  EXPECT_THROW(Transport(nullptr, ch, RetryPolicy{}), std::invalid_argument);
}

}  // namespace
}  // namespace bees::net
