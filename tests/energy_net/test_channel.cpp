#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bees::net {
namespace {

TEST(Channel, FixedRateTransferTimeIsExact) {
  Channel ch(ChannelParams::fixed(128000.0));
  // 16,000 bytes = 128,000 bits -> exactly 1 second.
  EXPECT_NEAR(ch.transfer(16000.0), 1.0, 1e-9);
  EXPECT_NEAR(ch.now(), 1.0, 1e-9);
}

TEST(Channel, ZeroBytesIsFree) {
  Channel ch(ChannelParams::fixed(128000.0));
  EXPECT_DOUBLE_EQ(ch.transfer(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ch.now(), 0.0);
}

TEST(Channel, TransfersAccumulateTime) {
  Channel ch(ChannelParams::fixed(256000.0));
  ch.transfer(32000.0);
  ch.transfer(32000.0);
  EXPECT_NEAR(ch.now(), 2.0, 1e-9);
}

TEST(Channel, AdvanceMovesClockWithoutTransfer) {
  Channel ch(ChannelParams::fixed(256000.0));
  ch.advance(5.5);
  EXPECT_DOUBLE_EQ(ch.now(), 5.5);
}

TEST(Channel, FluctuatingRateStaysInBounds) {
  ChannelParams p;  // 0..512 Kbps walk
  Channel ch(p);
  for (int i = 0; i < 2000; ++i) {
    ch.advance(1.0);
    EXPECT_GE(ch.current_bps(), p.min_bps);
    EXPECT_LE(ch.current_bps(), p.max_bps);
  }
}

TEST(Channel, FluctuatingRateActuallyMoves) {
  Channel ch{ChannelParams{}};
  const double start = ch.current_bps();
  bool moved = false;
  for (int i = 0; i < 50; ++i) {
    ch.advance(1.0);
    moved |= (ch.current_bps() != start);
  }
  EXPECT_TRUE(moved);
}

TEST(Channel, DeterministicPerSeed) {
  ChannelParams p;
  p.seed = 77;
  Channel a(p), b(p);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.transfer(10000.0), b.transfer(10000.0));
  }
}

TEST(Channel, DifferentSeedsDiverge) {
  ChannelParams pa, pb;
  pa.seed = 1;
  pb.seed = 2;
  Channel a(pa), b(pb);
  double da = 0, db = 0;
  for (int i = 0; i < 50; ++i) {
    da += a.transfer(50000.0);
    db += b.transfer(50000.0);
  }
  EXPECT_NE(da, db);
}

TEST(Channel, FluctuatingTransferTimeNearNominal) {
  // Long transfers over the 0-512 Kbps walk should average near the 256
  // Kbps midpoint: total time within a factor ~2 of nominal.
  ChannelParams p;
  p.seed = 5;
  Channel ch(p);
  const double bytes = 512.0 * 1024 * 10;  // ~160 s nominal at 256 Kbps
  const double nominal = bytes * 8 / 256000.0;
  const double actual = ch.transfer(bytes);
  EXPECT_GT(actual, nominal * 0.5);
  EXPECT_LT(actual, nominal * 2.5);
}

TEST(Channel, SurvivesZeroRateIntervals) {
  // min 0 means the walk can stall at 0 bps; transfers must still finish.
  ChannelParams p;
  p.min_bps = 0;
  p.max_bps = 64000;
  p.initial_bps = 0.0;  // start stalled
  p.step_bps = 32000;
  p.seed = 9;
  Channel ch(p);
  const double t = ch.transfer(8000.0);
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(std::isfinite(t));
}

TEST(Channel, RejectsBadParams) {
  ChannelParams p;
  p.min_bps = -1;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  p = {};
  p.min_bps = 100;
  p.max_bps = 50;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  p = {};
  p.update_interval_s = 0;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  p = {};
  p.max_bps = 0;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
}

TEST(Channel, FixedFactoryProducesConstantRate) {
  Channel ch(ChannelParams::fixed(512000.0));
  for (int i = 0; i < 20; ++i) {
    ch.advance(1.0);
    EXPECT_DOUBLE_EQ(ch.current_bps(), 512000.0);
  }
}

}  // namespace
}  // namespace bees::net
