#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace bees::net {
namespace {

TEST(Channel, FixedRateTransferTimeIsExact) {
  Channel ch(ChannelParams::fixed(128000.0));
  // 16,000 bytes = 128,000 bits -> exactly 1 second.
  EXPECT_NEAR(ch.transfer(16000.0), 1.0, 1e-9);
  EXPECT_NEAR(ch.now(), 1.0, 1e-9);
}

TEST(Channel, ZeroBytesIsFree) {
  Channel ch(ChannelParams::fixed(128000.0));
  EXPECT_DOUBLE_EQ(ch.transfer(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ch.now(), 0.0);
}

TEST(Channel, TransfersAccumulateTime) {
  Channel ch(ChannelParams::fixed(256000.0));
  ch.transfer(32000.0);
  ch.transfer(32000.0);
  EXPECT_NEAR(ch.now(), 2.0, 1e-9);
}

TEST(Channel, AdvanceMovesClockWithoutTransfer) {
  Channel ch(ChannelParams::fixed(256000.0));
  ch.advance(5.5);
  EXPECT_DOUBLE_EQ(ch.now(), 5.5);
}

TEST(Channel, FluctuatingRateStaysInBounds) {
  ChannelParams p;  // 0..512 Kbps walk
  Channel ch(p);
  for (int i = 0; i < 2000; ++i) {
    ch.advance(1.0);
    EXPECT_GE(ch.current_bps(), p.min_bps);
    EXPECT_LE(ch.current_bps(), p.max_bps);
  }
}

TEST(Channel, FluctuatingRateActuallyMoves) {
  Channel ch{ChannelParams{}};
  const double start = ch.current_bps();
  bool moved = false;
  for (int i = 0; i < 50; ++i) {
    ch.advance(1.0);
    moved |= (ch.current_bps() != start);
  }
  EXPECT_TRUE(moved);
}

TEST(Channel, DeterministicPerSeed) {
  ChannelParams p;
  p.seed = 77;
  Channel a(p), b(p);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.transfer(10000.0), b.transfer(10000.0));
  }
}

TEST(Channel, DifferentSeedsDiverge) {
  ChannelParams pa, pb;
  pa.seed = 1;
  pb.seed = 2;
  Channel a(pa), b(pb);
  double da = 0, db = 0;
  for (int i = 0; i < 50; ++i) {
    da += a.transfer(50000.0);
    db += b.transfer(50000.0);
  }
  EXPECT_NE(da, db);
}

TEST(Channel, FluctuatingTransferTimeNearNominal) {
  // Long transfers over the 0-512 Kbps walk should average near the 256
  // Kbps midpoint: total time within a factor ~2 of nominal.
  ChannelParams p;
  p.seed = 5;
  Channel ch(p);
  const double bytes = 512.0 * 1024 * 10;  // ~160 s nominal at 256 Kbps
  const double nominal = bytes * 8 / 256000.0;
  const double actual = ch.transfer(bytes);
  EXPECT_GT(actual, nominal * 0.5);
  EXPECT_LT(actual, nominal * 2.5);
}

TEST(Channel, SurvivesZeroRateIntervals) {
  // min 0 means the walk can stall at 0 bps; transfers must still finish.
  ChannelParams p;
  p.min_bps = 0;
  p.max_bps = 64000;
  p.initial_bps = 0.0;  // start stalled
  p.step_bps = 32000;
  p.seed = 9;
  Channel ch(p);
  const double t = ch.transfer(8000.0);
  EXPECT_GT(t, 0.0);
  EXPECT_TRUE(std::isfinite(t));
}

TEST(Channel, RejectsBadParams) {
  ChannelParams p;
  p.min_bps = -1;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  p = {};
  p.min_bps = 100;
  p.max_bps = 50;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  p = {};
  p.update_interval_s = 0;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  p = {};
  p.max_bps = 0;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
}

TEST(Channel, FixedFactoryProducesConstantRate) {
  Channel ch(ChannelParams::fixed(512000.0));
  for (int i = 0; i < 20; ++i) {
    ch.advance(1.0);
    EXPECT_DOUBLE_EQ(ch.current_bps(), 512000.0);
  }
}

// Regression: a constant 0 bps rate (step_bps == 0 with the initial rate
// clamped to 0) used to make transfer() spin forever waiting for a walk
// that could not move.  The constructor must reject the configuration.
TEST(Channel, ConstantZeroRateIsRejected) {
  EXPECT_THROW(Channel{ChannelParams::fixed(0.0)}, std::invalid_argument);
  // initial_bps below min_bps clamps to min_bps = 0 with a frozen walk:
  // the same dead channel through a different parameter route.
  ChannelParams p;
  p.min_bps = 0.0;
  p.max_bps = 64000.0;
  p.initial_bps = -5.0;
  p.step_bps = 0.0;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  // A walk that starts at 0 but can move is fine.
  p.step_bps = 16000.0;
  p.initial_bps = 0.0;
  EXPECT_NO_THROW(Channel{p});
}

TEST(Channel, RejectsBadLossAndOutageParams) {
  ChannelParams p;
  p.loss_probability = -0.1;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  p = {};
  p.loss_probability = 1.5;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  p = {};
  p.outage_probability = 2.0;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
  p = {};
  p.outage_probability = 0.1;
  p.outage_duration_s = 0.0;
  EXPECT_THROW(Channel{p}, std::invalid_argument);
}

TEST(Channel, LossNeverPerturbsAirtimeOrRateWalk) {
  // The loss draw rides a separate RNG stream: the same transfers take the
  // same airtime with loss on or off.
  ChannelParams clean;
  clean.seed = 11;
  ChannelParams lossy = clean;
  lossy.loss_probability = 0.5;
  Channel a(clean), b(lossy);
  for (int i = 0; i < 200; ++i) {
    const SendOutcome oa = a.send(5000.0);
    const SendOutcome ob = b.send(5000.0);
    EXPECT_DOUBLE_EQ(oa.seconds, ob.seconds);
    EXPECT_TRUE(oa.delivered);
    EXPECT_FALSE(oa.timed_out);
  }
  EXPECT_DOUBLE_EQ(a.now(), b.now());
  EXPECT_DOUBLE_EQ(a.current_bps(), b.current_bps());
}

TEST(Channel, LossRateMatchesProbability) {
  ChannelParams p = ChannelParams::fixed(256000.0);
  p.loss_probability = 0.3;
  p.seed = 21;
  Channel ch(p);
  int lost = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (!ch.send(100.0).delivered) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.3, 0.03);
}

TEST(Channel, LossIsDeterministicPerSeed) {
  ChannelParams p;
  p.loss_probability = 0.25;
  p.outage_probability = 0.05;
  p.seed = 33;
  Channel a(p), b(p);
  for (int i = 0; i < 300; ++i) {
    const SendOutcome oa = a.send(3000.0);
    const SendOutcome ob = b.send(3000.0);
    EXPECT_EQ(oa.delivered, ob.delivered);
    EXPECT_DOUBLE_EQ(oa.seconds, ob.seconds);
  }
}

TEST(Channel, SendTimesOutAndChargesPartialAirtime) {
  Channel ch(ChannelParams::fixed(8000.0));  // 1000 bytes/s
  // 5000 bytes need 5 s; a 2 s deadline must cut the attempt short.
  const SendOutcome out = ch.send(5000.0, 2.0);
  EXPECT_TRUE(out.timed_out);
  EXPECT_FALSE(out.delivered);
  EXPECT_NEAR(out.seconds, 2.0, 1e-9);
  EXPECT_NEAR(out.sent_bytes, 2000.0, 1e-6);
  EXPECT_NEAR(ch.now(), 2.0, 1e-9);
}

TEST(Channel, OutagePinsRateToZeroForItsWindow) {
  ChannelParams p = ChannelParams::fixed(8000.0);  // 1000 bytes/s
  p.outage_probability = 1.0;  // every boundary starts (or extends) a window
  p.outage_duration_s = 3.0;
  p.seed = 4;
  Channel ch(p);
  // The first second is pre-outage (boundaries start at t=1): 1000 bytes
  // flow, then the link goes dark.  With every boundary redrawing the
  // outage the message can only finish in the gap... which never comes, so
  // a timeout must fire.
  const SendOutcome out = ch.send(2000.0, 10.0);
  EXPECT_TRUE(out.timed_out);
  EXPECT_NEAR(out.sent_bytes, 1000.0, 1e-6);
  EXPECT_TRUE(ch.in_outage());
}

TEST(Channel, OutagesDelayButDontPreventCompletion) {
  ChannelParams p = ChannelParams::fixed(8000.0);  // 1000 bytes/s
  p.outage_probability = 0.3;
  p.outage_duration_s = 2.0;
  p.seed = 12;
  Channel with_outages(p);
  Channel without(ChannelParams::fixed(8000.0));
  const double t_with = with_outages.transfer(50000.0);
  const double t_without = without.transfer(50000.0);
  EXPECT_TRUE(std::isfinite(t_with));
  EXPECT_NEAR(t_without, 50.0, 1e-9);
  // ~15 boundaries in 50 s at p = 0.3 all but guarantee dark time.
  EXPECT_GT(t_with, t_without);
}

TEST(Channel, DisabledOutageDrawsNothing) {
  // outage_probability 0 must leave the rate walk identical to a channel
  // that never heard of outages (no stray RNG draws).
  ChannelParams p;
  p.seed = 91;
  ChannelParams q = p;
  q.outage_probability = 0.0;  // explicit but identical
  Channel a(p), b(q);
  for (int i = 0; i < 100; ++i) {
    a.advance(1.0);
    b.advance(1.0);
    EXPECT_DOUBLE_EQ(a.current_bps(), b.current_bps());
  }
  EXPECT_FALSE(a.in_outage());
}

}  // namespace
}  // namespace bees::net
