#include "energy/cost_model.hpp"

#include <gtest/gtest.h>

namespace bees::energy {
namespace {

TEST(CostModel, ComputeTimeAndEnergy) {
  CostModel m;
  m.cpu_ops_per_second = 1e6;
  m.cpu_power_w = 2.0;
  EXPECT_DOUBLE_EQ(m.compute_seconds(500000), 0.5);
  EXPECT_DOUBLE_EQ(m.compute_energy(500000), 1.0);
}

TEST(CostModel, AirtimeMatchesBitrate) {
  CostModel m;
  // 700 KB at 128 Kbps: 700*1024*8 / 128000 = 44.8 s — the paper's Fig. 11
  // Direct-Upload regime.
  EXPECT_NEAR(m.tx_seconds(700.0 * 1024, 128000.0), 44.8, 0.01);
}

TEST(CostModel, EnergySplitsByPower) {
  CostModel m;
  m.tx_power_w = 1.2;
  m.rx_power_w = 0.9;
  m.idle_power_w = 0.8;
  const double bytes = 1000.0, rate = 8000.0;  // 1 second of airtime
  EXPECT_DOUBLE_EQ(m.tx_energy(bytes, rate), 1.2);
  EXPECT_DOUBLE_EQ(m.rx_energy(bytes, rate), 0.9);
  EXPECT_DOUBLE_EQ(m.idle_energy(10.0), 8.0);
}

TEST(EnergyBreakdown, TotalsAndActiveTotals) {
  EnergyBreakdown e;
  e.extraction_j = 1;
  e.other_compute_j = 2;
  e.feature_tx_j = 3;
  e.image_tx_j = 4;
  e.rx_j = 5;
  e.idle_j = 6;
  EXPECT_DOUBLE_EQ(e.total(), 21.0);
  EXPECT_DOUBLE_EQ(e.active_total(), 15.0);
}

TEST(EnergyBreakdown, AccumulationAddsFieldwise) {
  EnergyBreakdown a, b;
  a.extraction_j = 1;
  a.image_tx_j = 2;
  b.extraction_j = 3;
  b.rx_j = 4;
  a += b;
  EXPECT_DOUBLE_EQ(a.extraction_j, 4.0);
  EXPECT_DOUBLE_EQ(a.image_tx_j, 2.0);
  EXPECT_DOUBLE_EQ(a.rx_j, 4.0);
}

}  // namespace
}  // namespace bees::energy
