#include "energy/battery.hpp"

#include <gtest/gtest.h>

namespace bees::energy {
namespace {

TEST(Battery, DefaultMatchesPaperDevice) {
  Battery b;
  // 3150 mAh * 3.8 V = 11.97 Wh = 43,092 J.
  EXPECT_NEAR(b.capacity_j(), 43092.0, 1.0);
  EXPECT_DOUBLE_EQ(b.fraction(), 1.0);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, DrainReducesRemaining) {
  Battery b(100.0);
  EXPECT_DOUBLE_EQ(b.drain(30.0), 30.0);
  EXPECT_DOUBLE_EQ(b.remaining_j(), 70.0);
  EXPECT_DOUBLE_EQ(b.fraction(), 0.7);
}

TEST(Battery, DrainSaturatesAtEmpty) {
  Battery b(50.0);
  EXPECT_DOUBLE_EQ(b.drain(80.0), 50.0);  // only what was left
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining_j(), 0.0);
  EXPECT_DOUBLE_EQ(b.drain(10.0), 0.0);
}

TEST(Battery, NegativeDrainIsIgnored) {
  Battery b(100.0);
  EXPECT_DOUBLE_EQ(b.drain(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(b.remaining_j(), 100.0);
}

TEST(Battery, RechargeRestoresFull) {
  Battery b(100.0);
  b.drain(100.0);
  EXPECT_TRUE(b.depleted());
  b.recharge_full();
  EXPECT_DOUBLE_EQ(b.fraction(), 1.0);
}

TEST(Battery, RejectsNonPositiveCapacity) {
  EXPECT_THROW(Battery(0.0), std::invalid_argument);
  EXPECT_THROW(Battery(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace bees::energy
