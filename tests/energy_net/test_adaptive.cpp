#include "energy/adaptive.hpp"

#include <gtest/gtest.h>

namespace bees::energy::adapt {
namespace {

TEST(Eac, MatchesPaperLaw) {
  // C = 0.4 - 0.4 * Ebat (paper §III-A).
  EXPECT_DOUBLE_EQ(eac_compression(1.0), 0.0);
  EXPECT_DOUBLE_EQ(eac_compression(0.5), 0.2);
  EXPECT_NEAR(eac_compression(0.05), 0.38, 1e-12);  // the paper's example
  EXPECT_DOUBLE_EQ(eac_compression(0.0), 0.4);
}

TEST(Eac, ClampsOutOfRangeBattery) {
  EXPECT_DOUBLE_EQ(eac_compression(1.5), 0.0);
  EXPECT_DOUBLE_EQ(eac_compression(-0.2), 0.4);
}

TEST(Edr, MatchesPaperLaw) {
  // T = 0.013 + 0.006 * Ebat (paper §III-B1).
  EXPECT_DOUBLE_EQ(edr_threshold(0.0), 0.013);
  EXPECT_DOUBLE_EQ(edr_threshold(1.0), 0.019);
  EXPECT_NEAR(edr_threshold(0.5), 0.016, 1e-12);
}

TEST(Edr, LowBatteryEliminatesMoreAggressively) {
  // A lower threshold marks more images redundant — "eliminate more images
  // by reducing T when the energy is insufficient."
  EXPECT_LT(edr_threshold(0.1), edr_threshold(0.9));
}

TEST(SsmmTw, ReusesEdrParameters) {
  for (const double e : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_DOUBLE_EQ(ssmm_tw(e), edr_threshold(e));
  }
}

TEST(Eau, MatchesPaperLaw) {
  // Cr = 0.8 - 0.8 * Ebat (paper §III-C).
  EXPECT_DOUBLE_EQ(eau_resolution(1.0), 0.0);
  EXPECT_NEAR(eau_resolution(0.05), 0.76, 1e-12);  // the paper's example
  EXPECT_DOUBLE_EQ(eau_resolution(0.0), 0.8);
}

TEST(QualityProportion, IsTheFixed085) {
  EXPECT_DOUBLE_EQ(kQualityProportion, 0.85);
}

TEST(Knobs, FromBatteryAppliesAllLaws) {
  const Knobs k = Knobs::from_battery(0.25);
  EXPECT_NEAR(k.bitmap_compression, 0.3, 1e-12);
  EXPECT_NEAR(k.redundancy_threshold, 0.0145, 1e-12);
  EXPECT_NEAR(k.ssmm_threshold, 0.0145, 1e-12);
  EXPECT_NEAR(k.resolution_compression, 0.6, 1e-12);
  EXPECT_DOUBLE_EQ(k.quality_proportion, 0.85);
}

TEST(Knobs, FullEnergyPinsBeesEaValues) {
  const Knobs k = Knobs::full_energy();
  EXPECT_DOUBLE_EQ(k.bitmap_compression, 0.0);
  EXPECT_DOUBLE_EQ(k.redundancy_threshold, 0.019);
  EXPECT_DOUBLE_EQ(k.resolution_compression, 0.0);
}

TEST(Knobs, MonotoneInBattery) {
  // Less battery -> more compression, lower threshold.
  double prev_c = -1, prev_cr = -1, prev_t = 1;
  for (double e = 1.0; e >= -0.001; e -= 0.1) {
    const Knobs k = Knobs::from_battery(e);
    EXPECT_GE(k.bitmap_compression, prev_c);
    EXPECT_GE(k.resolution_compression, prev_cr);
    EXPECT_LE(k.redundancy_threshold, prev_t);
    prev_c = k.bitmap_compression;
    prev_cr = k.resolution_compression;
    prev_t = k.redundancy_threshold;
  }
}

}  // namespace
}  // namespace bees::energy::adapt
