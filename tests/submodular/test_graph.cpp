#include "submodular/graph.hpp"

#include <gtest/gtest.h>

#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "util/rng.hpp"

namespace bees::sub {
namespace {

TEST(SimilarityGraph, SelfWeightIsOne) {
  SimilarityGraph g(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(g.weight(i, i), 1.0);
}

TEST(SimilarityGraph, SetWeightIsSymmetric) {
  SimilarityGraph g(3);
  g.set_weight(0, 2, 0.7);
  EXPECT_DOUBLE_EQ(g.weight(0, 2), 0.7);
  EXPECT_DOUBLE_EQ(g.weight(2, 0), 0.7);
}

TEST(SimilarityGraph, SelfWeightCannotBeOverwritten) {
  SimilarityGraph g(2);
  g.set_weight(1, 1, 0.0);
  EXPECT_DOUBLE_EQ(g.weight(1, 1), 1.0);
}

TEST(PartitionComponents, AllIsolatedAtHighThreshold) {
  SimilarityGraph g(5);
  g.set_weight(0, 1, 0.3);
  g.set_weight(2, 3, 0.2);
  const auto labels = partition_components(g, 0.9);
  EXPECT_EQ(component_count(labels), 5);
}

TEST(PartitionComponents, EdgesMergeComponents) {
  SimilarityGraph g(5);
  g.set_weight(0, 1, 0.3);
  g.set_weight(1, 2, 0.25);
  g.set_weight(3, 4, 0.5);
  const auto labels = partition_components(g, 0.2);
  EXPECT_EQ(component_count(labels), 2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(PartitionComponents, ThresholdIsInclusive) {
  SimilarityGraph g(2);
  g.set_weight(0, 1, 0.5);
  // Edges with weight >= tw survive: at exactly 0.5 the pair merges.
  EXPECT_EQ(component_count(partition_components(g, 0.5)), 1);
  EXPECT_EQ(component_count(partition_components(g, 0.500001)), 2);
}

TEST(PartitionComponents, MonotoneInThreshold) {
  // Raising tw can only split components, never merge them — the mechanism
  // that makes the SSMM budget grow with Tw (paper §III-B2).
  util::Rng rng(3);
  SimilarityGraph g(12);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = i + 1; j < 12; ++j) {
      if (rng.bernoulli(0.3)) g.set_weight(i, j, rng.next_double());
    }
  }
  int prev = 0;
  for (double tw = 0.0; tw <= 1.01; tw += 0.1) {
    const int count = component_count(partition_components(g, tw));
    EXPECT_GE(count, prev);
    prev = count;
  }
  EXPECT_EQ(prev, 12);
}

TEST(BuildSimilarityGraph, PairwiseJaccardWithGroundTruthGroups) {
  util::Rng rng(5);
  img::ViewPerturbation pert;
  std::vector<feat::BinaryFeatures> batch;
  // Two scenes, two views each: weights inside a scene must dominate
  // weights across scenes.
  for (const std::uint64_t seed : {501, 501, 502, 502}) {
    const img::SceneSpec spec{seed, 18, 4};
    batch.push_back(
        feat::extract_orb(img::render_view(spec, 200, 150, pert, rng)));
  }
  std::uint64_t ops = 0;
  const SimilarityGraph g = build_similarity_graph(batch, {}, &ops);
  EXPECT_GT(ops, 0u);
  EXPECT_GT(g.weight(0, 1), g.weight(0, 2));
  EXPECT_GT(g.weight(0, 1), g.weight(0, 3));
  EXPECT_GT(g.weight(2, 3), g.weight(1, 2));
}

TEST(BuildSimilarityGraph, EmptyBatch) {
  const SimilarityGraph g =
      build_similarity_graph(std::vector<feat::BinaryFeatures>{});
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(component_count(partition_components(g, 0.5)), 0);
}

TEST(BuildSimilarityGraph, PointerOverloadIsBitIdentical) {
  // The borrowing overload exists so BEES can run IBRD over CBRD survivors
  // without deep-copying descriptor vectors; its output must match the
  // owning overload bit for bit, ops count included.
  util::Rng rng(5);
  img::ViewPerturbation pert;
  std::vector<feat::BinaryFeatures> batch;
  for (const std::uint64_t seed : {601, 601, 602, 603}) {
    const img::SceneSpec spec{seed, 18, 4};
    batch.push_back(
        feat::extract_orb(img::render_view(spec, 200, 150, pert, rng)));
  }
  std::vector<const feat::BinaryFeatures*> refs;
  for (const auto& f : batch) refs.push_back(&f);

  std::uint64_t ops_owned = 0, ops_borrowed = 0;
  const SimilarityGraph a = build_similarity_graph(batch, {}, &ops_owned);
  const SimilarityGraph b = build_similarity_graph(refs, {}, &ops_borrowed);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(ops_owned, ops_borrowed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a.weight(i, j), b.weight(i, j)) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace bees::sub
