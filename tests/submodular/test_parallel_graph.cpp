#include <gtest/gtest.h>

#include "submodular/graph.hpp"
#include "submodular/ssmm.hpp"
#include "workload/image_store.hpp"

namespace bees::sub {
namespace {

TEST(ParallelGraph, IdenticalToSerial) {
  wl::ImageStore store;
  const wl::Imageset set = wl::make_disaster_like(14, 4, 200, 150, 131);
  std::vector<feat::BinaryFeatures> batch;
  for (const auto& spec : set.images) batch.push_back(store.orb(spec, 0.0));

  std::uint64_t serial_ops = 0, parallel_ops = 0;
  const SimilarityGraph serial =
      build_similarity_graph(batch, {}, &serial_ops);
  const SimilarityGraph parallel =
      build_similarity_graph_parallel(batch, {}, &parallel_ops, 3);

  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    for (std::size_t j = 0; j < serial.size(); ++j) {
      EXPECT_DOUBLE_EQ(parallel.weight(i, j), serial.weight(i, j));
    }
  }
  // The energy model must charge the same work regardless of threading.
  EXPECT_EQ(parallel_ops, serial_ops);
}

TEST(ParallelGraph, HandlesDegenerateSizes) {
  EXPECT_EQ(build_similarity_graph_parallel({}).size(), 0u);
  wl::ImageStore store;
  const wl::Imageset set = wl::make_disaster_like(1, 0, 160, 120, 133);
  std::vector<feat::BinaryFeatures> one{store.orb(set.images[0], 0.0)};
  const SimilarityGraph g = build_similarity_graph_parallel(one);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g.weight(0, 0), 1.0);
}

TEST(ParallelGraph, SsmmSelectionUnchanged) {
  wl::ImageStore store;
  const wl::Imageset set = wl::make_disaster_like(12, 5, 200, 150, 137);
  std::vector<feat::BinaryFeatures> batch;
  for (const auto& spec : set.images) batch.push_back(store.orb(spec, 0.0));
  const SsmmResult serial =
      select_unique_images(build_similarity_graph(batch), 0.019, {});
  const SsmmResult parallel =
      select_unique_images(build_similarity_graph_parallel(batch), 0.019, {});
  EXPECT_EQ(parallel.selected, serial.selected);
  EXPECT_EQ(parallel.budget, serial.budget);
}

}  // namespace
}  // namespace bees::sub
