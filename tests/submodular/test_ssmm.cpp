#include "submodular/ssmm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace bees::sub {
namespace {

SimilarityGraph random_graph(std::size_t n, double edge_prob,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  SimilarityGraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(edge_prob)) g.set_weight(i, j, rng.next_double());
    }
  }
  return g;
}

double eval(const SimilarityGraph& g, const std::vector<int>& comps,
            std::vector<std::size_t> s, const SsmmParams& p) {
  return objective_value(g, comps, s, p);
}

TEST(Coverage, EmptySummaryIsZero) {
  const SimilarityGraph g = random_graph(5, 0.5, 1);
  EXPECT_DOUBLE_EQ(coverage_value(g, {}), 0.0);
}

TEST(Coverage, FullSetCoversEverythingAtOne) {
  const SimilarityGraph g = random_graph(5, 0.5, 2);
  std::vector<std::size_t> all{0, 1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(coverage_value(g, all), 5.0);  // self-weight 1 each
}

TEST(Coverage, SingleElementCoversNeighborsByWeight) {
  SimilarityGraph g(3);
  g.set_weight(0, 1, 0.4);
  g.set_weight(0, 2, 0.1);
  EXPECT_DOUBLE_EQ(coverage_value(g, {0}), 1.0 + 0.4 + 0.1);
}

TEST(Diversity, CountsIntersectedComponents) {
  const std::vector<int> comps{0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(diversity_value(comps, {}), 0.0);
  EXPECT_DOUBLE_EQ(diversity_value(comps, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(diversity_value(comps, {0, 2, 4}), 3.0);
}

TEST(Objective, IsWeightedSum) {
  const SimilarityGraph g = random_graph(4, 0.5, 3);
  const std::vector<int> comps{0, 0, 1, 1};
  SsmmParams p;
  p.lambda_coverage = 2.0;
  p.lambda_diversity = 3.0;
  const std::vector<std::size_t> s{0, 2};
  EXPECT_NEAR(objective_value(g, comps, s, p),
              2.0 * coverage_value(g, s) + 3.0 * diversity_value(comps, s),
              1e-12);
}

/// Property: F is monotone — adding an element never decreases it.
class SsmmRandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsmmRandomGraphs, ObjectiveIsMonotone) {
  const SimilarityGraph g = random_graph(10, 0.4, GetParam());
  const auto comps = partition_components(g, 0.5);
  util::Rng rng(GetParam() + 1);
  SsmmParams p;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::size_t> s;
    for (std::size_t v = 0; v < 10; ++v) {
      if (rng.bernoulli(0.4)) s.push_back(v);
    }
    const double base = eval(g, comps, s, p);
    for (std::size_t v = 0; v < 10; ++v) {
      if (std::find(s.begin(), s.end(), v) != s.end()) continue;
      auto s2 = s;
      s2.push_back(v);
      EXPECT_GE(eval(g, comps, s2, p), base - 1e-12);
    }
  }
}

TEST_P(SsmmRandomGraphs, ObjectiveIsSubmodular) {
  // f(A + v) - f(A) >= f(B + v) - f(B) for A subset of B.
  const SimilarityGraph g = random_graph(9, 0.5, GetParam() * 7 + 1);
  const auto comps = partition_components(g, 0.4);
  util::Rng rng(GetParam() + 2);
  SsmmParams p;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::size_t> a, extra;
    for (std::size_t v = 0; v < 9; ++v) {
      if (rng.bernoulli(0.3)) {
        a.push_back(v);
      } else if (rng.bernoulli(0.4)) {
        extra.push_back(v);
      }
    }
    std::vector<std::size_t> b = a;
    b.insert(b.end(), extra.begin(), extra.end());
    for (std::size_t v = 0; v < 9; ++v) {
      if (std::find(b.begin(), b.end(), v) != b.end()) continue;
      auto av = a;
      av.push_back(v);
      auto bv = b;
      bv.push_back(v);
      const double gain_a = eval(g, comps, av, p) - eval(g, comps, a, p);
      const double gain_b = eval(g, comps, bv, p) - eval(g, comps, b, p);
      EXPECT_GE(gain_a, gain_b - 1e-12);
    }
  }
}

TEST_P(SsmmRandomGraphs, GreedyMeetsApproximationGuarantee) {
  // F(greedy) >= (1 - 1/e) F(OPT) on exhaustively solvable instances.
  const SimilarityGraph g = random_graph(11, 0.5, GetParam() * 13 + 5);
  const auto comps = partition_components(g, 0.3);
  SsmmParams p;
  for (const int budget : {1, 2, 4}) {
    const auto greedy = greedy_maximize(g, comps, budget, p);
    const auto opt = brute_force_maximize(g, comps, budget, p);
    const double f_greedy = eval(g, comps, greedy, p);
    const double f_opt = eval(g, comps, opt, p);
    EXPECT_GE(f_greedy, (1.0 - 1.0 / std::exp(1.0)) * f_opt - 1e-9)
        << "budget " << budget;
  }
}

TEST_P(SsmmRandomGraphs, LazyGreedyEqualsPlainGreedy) {
  const SimilarityGraph g = random_graph(14, 0.4, GetParam() * 17 + 3);
  const auto comps = partition_components(g, 0.4);
  SsmmParams lazy, plain;
  lazy.lazy = true;
  plain.lazy = false;
  for (const int budget : {1, 3, 6, 14}) {
    const auto a = greedy_maximize(g, comps, budget, lazy);
    const auto b = greedy_maximize(g, comps, budget, plain);
    // Tie-breaking may differ; the achieved objective must be identical.
    EXPECT_NEAR(eval(g, comps, a, lazy), eval(g, comps, b, plain), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsmmRandomGraphs,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Regression: lazy greedy used to tie-break equal gains by heap insertion
// order while plain greedy keeps the lowest index, so the two variants
// could return different (equally good) summaries.  On tie-heavy graphs —
// weights drawn from {0, 0.5} so many candidates share exact gains — the
// selections must now be identical element for element, order included.
TEST(Greedy, LazyMatchesPlainSelectionUnderTies) {
  SsmmParams lazy, plain;
  lazy.lazy = true;
  plain.lazy = false;
  for (const std::uint64_t seed : {1u, 5u, 9u, 23u}) {
    for (const std::size_t n : {6u, 10u, 14u}) {
      util::Rng rng(seed * 100 + n);
      SimilarityGraph g(n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          if (rng.bernoulli(0.5)) g.set_weight(i, j, 0.5);
        }
      }
      const auto comps = partition_components(g, 0.25);
      for (const int budget : {1, 3, static_cast<int>(n)}) {
        const auto a = greedy_maximize(g, comps, budget, lazy);
        const auto b = greedy_maximize(g, comps, budget, plain);
        EXPECT_EQ(a, b) << "seed " << seed << " n " << n << " budget "
                        << budget;
      }
    }
  }
}

TEST(Greedy, LazyMatchesPlainOnFullyTiedGraph) {
  // Every pair at the same weight: gains are maximally degenerate.
  for (const std::size_t n : {4u, 8u, 12u}) {
    SimilarityGraph g(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) g.set_weight(i, j, 0.3);
    }
    const auto comps = partition_components(g, 0.2);
    SsmmParams lazy, plain;
    lazy.lazy = true;
    plain.lazy = false;
    for (const int budget : {1, 2, static_cast<int>(n / 2)}) {
      EXPECT_EQ(greedy_maximize(g, comps, budget, lazy),
                greedy_maximize(g, comps, budget, plain))
          << "n " << n << " budget " << budget;
    }
  }
}

TEST(Greedy, RespectsBudget) {
  const SimilarityGraph g = random_graph(10, 0.6, 31);
  const auto comps = partition_components(g, 0.5);
  for (const int budget : {0, 1, 3, 10, 20}) {
    const auto s = greedy_maximize(g, comps, budget, {});
    EXPECT_LE(s.size(), static_cast<std::size_t>(std::max(budget, 0)));
    EXPECT_LE(s.size(), g.size());
  }
}

TEST(Greedy, SelectionHasNoDuplicates) {
  const SimilarityGraph g = random_graph(12, 0.5, 37);
  const auto comps = partition_components(g, 0.3);
  auto s = greedy_maximize(g, comps, 12, {});
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
}

TEST(BruteForce, RejectsLargeInstances) {
  const SimilarityGraph g = random_graph(21, 0.1, 41);
  EXPECT_THROW(brute_force_maximize(g, partition_components(g, 0.5), 3, {}),
               std::invalid_argument);
}

TEST(SelectUnique, BudgetEqualsComponentCount) {
  // 6 vertices in 3 clear clusters of 2.
  SimilarityGraph g(6);
  g.set_weight(0, 1, 0.8);
  g.set_weight(2, 3, 0.7);
  g.set_weight(4, 5, 0.9);
  const SsmmResult r = select_unique_images(g, 0.5, {});
  EXPECT_EQ(r.budget, 3);
  EXPECT_EQ(r.selected.size(), 3u);
  // The selection covers each cluster exactly once.
  std::vector<int> chosen_comp;
  for (const auto v : r.selected) chosen_comp.push_back(r.components[v]);
  std::sort(chosen_comp.begin(), chosen_comp.end());
  EXPECT_EQ(std::adjacent_find(chosen_comp.begin(), chosen_comp.end()),
            chosen_comp.end());
}

TEST(SelectUnique, AllDistinctImagesAreAllKept) {
  // No edge above threshold: every image is its own component and all are
  // retained — BEES must not drop unique content.
  SimilarityGraph g(5);
  g.set_weight(0, 1, 0.001);
  const SsmmResult r = select_unique_images(g, 0.013, {});
  EXPECT_EQ(r.budget, 5);
  EXPECT_EQ(r.selected.size(), 5u);
}

TEST(SelectUnique, HigherSimilarityLowersBudget) {
  // The SSMM design goal: "the higher the similarities among the images in
  // V are, the lower the budget b is."
  SimilarityGraph sparse(6), dense(6);
  dense.set_weight(0, 1, 0.5);
  dense.set_weight(1, 2, 0.5);
  dense.set_weight(3, 4, 0.5);
  const SsmmResult rs = select_unique_images(sparse, 0.013, {});
  const SsmmResult rd = select_unique_images(dense, 0.013, {});
  EXPECT_LT(rd.budget, rs.budget);
}

TEST(SelectUnique, ObjectiveMatchesReportedValue) {
  const SimilarityGraph g = random_graph(9, 0.5, 43);
  const SsmmResult r = select_unique_images(g, 0.4, {});
  EXPECT_NEAR(r.objective,
              objective_value(g, r.components, r.selected, {}), 1e-12);
}

}  // namespace
}  // namespace bees::sub
