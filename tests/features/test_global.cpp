#include "features/global.hpp"

#include <gtest/gtest.h>

#include "imaging/synth.hpp"
#include "imaging/transform.hpp"
#include "util/rng.hpp"

namespace bees::feat {
namespace {

TEST(ColorHistogram, IsNormalized) {
  const img::Image scene = img::render_scene(img::SceneSpec{7, 18, 4}, 96, 72);
  const ColorHistogram h = color_histogram(scene);
  double sum = 0;
  for (const float v : h.bins) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(ColorHistogram, UniformColorFillsOneBin) {
  img::Image im(16, 16, 3);
  for (auto& b : im.data()) b = 255;
  const ColorHistogram h = color_histogram(im);
  int nonzero = 0;
  for (const float v : h.bins) nonzero += v > 0 ? 1 : 0;
  EXPECT_EQ(nonzero, 1);
  EXPECT_NEAR(h.bins[ColorHistogram::kBins - 1], 1.0f, 1e-6f);
}

TEST(ColorHistogram, GrayImagesUseGrayDiagonal) {
  img::Image im(8, 8, 1);
  im.fill(0);
  const ColorHistogram h = color_histogram(im);
  EXPECT_NEAR(h.bins[0], 1.0f, 1e-6f);  // (0,0,0) cell
}

TEST(ColorHistogram, OpsCharged) {
  const img::Image scene = img::render_scene(img::SceneSpec{9, 18, 4}, 64, 48);
  std::uint64_t ops = 0;
  color_histogram(scene, &ops);
  EXPECT_EQ(ops, scene.pixel_count() * 4);
}

TEST(HistogramIntersection, IdenticalIsOne) {
  const img::Image scene = img::render_scene(img::SceneSpec{11, 18, 4}, 96, 72);
  const ColorHistogram h = color_histogram(scene);
  EXPECT_NEAR(histogram_intersection(h, h), 1.0, 1e-6);
}

TEST(HistogramIntersection, SymmetricAndBounded) {
  const ColorHistogram a =
      color_histogram(img::render_scene(img::SceneSpec{13, 18, 4}, 96, 72));
  const ColorHistogram b =
      color_histogram(img::render_scene(img::SceneSpec{17, 18, 4}, 96, 72));
  const double ab = histogram_intersection(a, b);
  EXPECT_DOUBLE_EQ(ab, histogram_intersection(b, a));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

TEST(HistogramIntersection, ViewsOfSameSceneBeatDifferentScenes) {
  util::Rng rng(3);
  const img::SceneSpec spec{19, 18, 4};
  const ColorHistogram view1 = color_histogram(
      img::render_view(spec, 96, 72, img::ViewPerturbation{}, rng));
  const ColorHistogram view2 = color_histogram(
      img::render_view(spec, 96, 72, img::ViewPerturbation{}, rng));
  const ColorHistogram other =
      color_histogram(img::render_scene(img::SceneSpec{23, 18, 4}, 96, 72));
  EXPECT_GT(histogram_intersection(view1, view2),
            histogram_intersection(view1, other));
}

TEST(HistogramChi2, ZeroForIdenticalPositiveOtherwise) {
  const ColorHistogram a =
      color_histogram(img::render_scene(img::SceneSpec{29, 18, 4}, 96, 72));
  const ColorHistogram b =
      color_histogram(img::render_scene(img::SceneSpec{31, 18, 4}, 96, 72));
  EXPECT_NEAR(histogram_chi2(a, a), 0.0, 1e-9);
  EXPECT_GT(histogram_chi2(a, b), 0.0);
  EXPECT_DOUBLE_EQ(histogram_chi2(a, b), histogram_chi2(b, a));
}

TEST(HistogramChi2, AgreesWithIntersectionOrdering) {
  util::Rng rng(5);
  const img::SceneSpec spec{37, 18, 4};
  const ColorHistogram base = color_histogram(
      img::render_view(spec, 96, 72, img::ViewPerturbation{}, rng));
  const ColorHistogram similar = color_histogram(
      img::render_view(spec, 96, 72, img::ViewPerturbation{}, rng));
  const ColorHistogram different =
      color_histogram(img::render_scene(img::SceneSpec{41, 18, 4}, 96, 72));
  // Similar pair: higher intersection and lower chi2.
  EXPECT_GT(histogram_intersection(base, similar),
            histogram_intersection(base, different));
  EXPECT_LT(histogram_chi2(base, similar), histogram_chi2(base, different));
}

TEST(ColorHistogram, EmptyImageIsAllZero) {
  const ColorHistogram h = color_histogram(img::Image{});
  for (const float v : h.bins) EXPECT_EQ(v, 0.0f);
}

}  // namespace
}  // namespace bees::feat
