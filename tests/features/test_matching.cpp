#include "features/matching.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace bees::feat {
namespace {

Descriptor256 random_descriptor(util::Rng& rng) {
  Descriptor256 d;
  for (auto& lane : d.bits) lane = rng.next_u64();
  return d;
}

Descriptor256 flip_bits(Descriptor256 d, int count, util::Rng& rng) {
  for (int i = 0; i < count; ++i) {
    const int bit = static_cast<int>(rng.index(256));
    d.bits[static_cast<std::size_t>(bit >> 6)] ^= std::uint64_t{1}
                                                  << (bit & 63);
  }
  return d;
}

TEST(Hamming, SelfDistanceZeroAndSymmetry) {
  util::Rng rng(1);
  const Descriptor256 a = random_descriptor(rng);
  const Descriptor256 b = random_descriptor(rng);
  EXPECT_EQ(hamming_distance(a, a), 0);
  EXPECT_EQ(hamming_distance(a, b), hamming_distance(b, a));
}

TEST(Hamming, CountsFlippedBits) {
  util::Rng rng(2);
  const Descriptor256 a = random_descriptor(rng);
  Descriptor256 b = a;
  b.bits[0] ^= 0b1011;  // 3 bits
  EXPECT_EQ(hamming_distance(a, b), 3);
}

TEST(Hamming, RandomPairsNear128) {
  util::Rng rng(3);
  double total = 0;
  for (int i = 0; i < 200; ++i) {
    total += hamming_distance(random_descriptor(rng), random_descriptor(rng));
  }
  EXPECT_NEAR(total / 200, 128.0, 8.0);
}

TEST(MatchBinary, FindsNearDuplicates) {
  util::Rng rng(5);
  std::vector<Descriptor256> a, b;
  for (int i = 0; i < 30; ++i) {
    const Descriptor256 d = random_descriptor(rng);
    a.push_back(d);
    b.push_back(flip_bits(d, 10, rng));  // well within max_distance 48
  }
  const auto matches = match_binary(a, b);
  EXPECT_GT(matches.size(), 25u);
  for (const auto& m : matches) {
    EXPECT_EQ(m.index_a, m.index_b);  // random descriptors are far apart
    EXPECT_LE(m.distance, 48);
  }
}

TEST(MatchBinary, RejectsDistantDescriptors) {
  util::Rng rng(7);
  std::vector<Descriptor256> a, b;
  for (int i = 0; i < 20; ++i) a.push_back(random_descriptor(rng));
  for (int i = 0; i < 20; ++i) b.push_back(random_descriptor(rng));
  EXPECT_TRUE(match_binary(a, b).empty());
}

TEST(MatchBinary, RatioTestRejectsAmbiguousMatch) {
  util::Rng rng(9);
  const Descriptor256 base = random_descriptor(rng);
  // Two candidates nearly equidistant from the query: ambiguous.
  std::vector<Descriptor256> a{flip_bits(base, 5, rng)};
  std::vector<Descriptor256> b{flip_bits(base, 6, rng),
                               flip_bits(base, 7, rng)};
  BinaryMatchParams strict;
  strict.ratio = 0.5;
  strict.cross_check = false;
  EXPECT_TRUE(match_binary(a, b, strict).empty());
  BinaryMatchParams lax;
  lax.ratio = 0.999;
  lax.cross_check = false;
  EXPECT_FALSE(match_binary(a, b, lax).empty());
}

TEST(MatchBinary, CrossCheckDropsOneSidedMatches) {
  util::Rng rng(11);
  const Descriptor256 base = random_descriptor(rng);
  // a0 and a1 both nearest to b0, but b0's mutual partner is only one of
  // them; the other must be dropped under cross-checking.
  std::vector<Descriptor256> a{flip_bits(base, 4, rng),
                               flip_bits(base, 20, rng)};
  std::vector<Descriptor256> b{base};
  BinaryMatchParams p;
  p.ratio = 1.0;  // disable ratio test (each side has one candidate anyway)
  const auto matches = match_binary(a, b, p);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].index_a, 0u);
}

TEST(MatchBinary, EmptyInputs) {
  util::Rng rng(13);
  std::vector<Descriptor256> some{random_descriptor(rng)};
  EXPECT_TRUE(match_binary({}, some).empty());
  EXPECT_TRUE(match_binary(some, {}).empty());
  EXPECT_TRUE(match_binary({}, {}).empty());
}

TEST(MatchBinary, OpsCounterCountsComparisons) {
  util::Rng rng(15);
  std::vector<Descriptor256> a, b;
  for (int i = 0; i < 10; ++i) a.push_back(random_descriptor(rng));
  for (int i = 0; i < 20; ++i) b.push_back(random_descriptor(rng));
  std::uint64_t ops = 0;
  BinaryMatchParams p;
  p.cross_check = false;
  match_binary(a, b, p, &ops);
  EXPECT_EQ(ops, 200u);
  ops = 0;
  p.cross_check = true;
  match_binary(a, b, p, &ops);
  EXPECT_EQ(ops, 400u);  // both directions
}

TEST(L2Sq, KnownValue) {
  const float x[3] = {1, 2, 3};
  const float y[3] = {4, 6, 3};
  EXPECT_DOUBLE_EQ(l2_sq(x, y, 3), 25.0);
}

FloatFeatures make_float_features(const std::vector<std::vector<float>>& rows) {
  FloatFeatures f;
  if (rows.empty()) return f;
  f.dim = static_cast<int>(rows[0].size());
  for (const auto& r : rows) {
    f.values.insert(f.values.end(), r.begin(), r.end());
    f.keypoints.emplace_back();
  }
  return f;
}

TEST(MatchFloat, FindsNearestWithinThreshold) {
  const FloatFeatures a = make_float_features({{0, 0}, {10, 10}});
  const FloatFeatures b = make_float_features({{0.1f, 0}, {10, 10.1f}});
  FloatMatchParams p;
  p.max_distance = 0.5;
  const auto matches = match_float(a, b, p);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].index_a, matches[0].index_b);
}

TEST(MatchFloat, ThresholdRejectsFarPoints) {
  const FloatFeatures a = make_float_features({{0, 0}});
  const FloatFeatures b = make_float_features({{5, 5}});
  FloatMatchParams p;
  p.max_distance = 1.0;
  EXPECT_TRUE(match_float(a, b, p).empty());
}

TEST(MatchFloat, DimensionMismatchYieldsNothing) {
  const FloatFeatures a = make_float_features({{0, 0}});
  const FloatFeatures b = make_float_features({{0, 0, 0}});
  EXPECT_TRUE(match_float(a, b).empty());
}

TEST(MatchFloat, RatioTestRejectsAmbiguity) {
  const FloatFeatures a = make_float_features({{0, 0}});
  const FloatFeatures b = make_float_features({{0.3f, 0}, {0, 0.31f}});
  FloatMatchParams strict;
  strict.max_distance = 1.0;
  strict.ratio = 0.8;
  strict.cross_check = false;
  EXPECT_TRUE(match_float(a, b, strict).empty());
}

}  // namespace
}  // namespace bees::feat
