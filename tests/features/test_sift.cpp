#include "features/sift.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "features/orb.hpp"
#include "features/similarity.hpp"
#include "imaging/synth.hpp"
#include "imaging/transform.hpp"

namespace bees::feat {
namespace {

img::Image test_scene(std::uint64_t seed = 71, int w = 240, int h = 180) {
  return img::render_scene(img::SceneSpec{seed, 18, 4}, w, h);
}

TEST(Sift, Produces128DFeatures) {
  const FloatFeatures f = extract_sift(test_scene());
  EXPECT_EQ(f.dim, 128);
  EXPECT_GT(f.size(), 10u);
  EXPECT_EQ(f.values.size(), f.size() * 128);
  EXPECT_EQ(f.keypoints.size(), f.size());
}

TEST(Sift, Deterministic) {
  const FloatFeatures a = extract_sift(test_scene());
  const FloatFeatures b = extract_sift(test_scene());
  EXPECT_EQ(a.values, b.values);
}

TEST(Sift, DescriptorsAreUnitNormalized) {
  const FloatFeatures f = extract_sift(test_scene());
  for (std::size_t i = 0; i < f.size(); ++i) {
    double norm = 0;
    for (int d = 0; d < 128; ++d) norm += f.row(i)[d] * f.row(i)[d];
    EXPECT_NEAR(std::sqrt(norm), 1.0, 0.05);
    for (int d = 0; d < 128; ++d) {
      // Gradient magnitudes, clamped at 0.2 before the final
      // renormalization (which can push sparse descriptors well above it,
      // but never past the unit norm).
      EXPECT_GE(f.row(i)[d], 0.0f);
      EXPECT_LE(f.row(i)[d], 1.0f);
    }
  }
}

TEST(Sift, FlatImageYieldsNothing) {
  img::Image flat(128, 128, 1);
  flat.fill(100);
  EXPECT_TRUE(extract_sift(flat).empty());
}

TEST(Sift, SimilarViewsMatchDissimilarDoNot) {
  const img::Image base = test_scene(73);
  const img::Affine rot = img::Affine::rotation_about(120, 90, 0.08, 1.02);
  const img::Image view = img::warp_affine(base, rot);
  const img::Image other = test_scene(79);
  const FloatFeatures fa = extract_sift(base);
  const FloatFeatures fb = extract_sift(view);
  const FloatFeatures fc = extract_sift(other);
  const double sim_pair = jaccard_similarity(fa, fb);
  const double sim_other = jaccard_similarity(fa, fc);
  EXPECT_GT(sim_pair, 0.05);
  EXPECT_LT(sim_other, sim_pair);
}

TEST(Sift, CostsFarMoreThanOrb) {
  // The paper (§III-D) picks ORB because it is orders of magnitude cheaper;
  // our from-scratch versions must reproduce that cost ordering strongly.
  const img::Image scene = test_scene(83, 320, 240);
  const FloatFeatures sift = extract_sift(scene);
  const BinaryFeatures orb = extract_orb(scene);
  EXPECT_GT(sift.stats.ops, orb.stats.ops * 10);
}

TEST(Sift, WireBytesAreFourPerComponent) {
  const FloatFeatures f = extract_sift(test_scene());
  EXPECT_EQ(f.wire_bytes(), f.values.size() * 4);
}

TEST(Sift, MaxFeaturesRespected) {
  SiftParams p;
  p.max_features = 25;
  const FloatFeatures f = extract_sift(test_scene(89, 320, 240), p);
  EXPECT_LE(f.size(), 25u);
}

class SiftOctaveSweep : public ::testing::TestWithParam<int> {};

TEST_P(SiftOctaveSweep, OctavesBoundKeypointLevels) {
  SiftParams p;
  p.octaves = GetParam();
  const FloatFeatures f = extract_sift(test_scene(97, 256, 192), p);
  for (const auto& kp : f.keypoints) {
    EXPECT_LT(kp.level, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Octaves, SiftOctaveSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace bees::feat
