#include "features/orb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "features/matching.hpp"
#include "features/similarity.hpp"
#include "imaging/synth.hpp"
#include "imaging/transform.hpp"

namespace bees::feat {
namespace {

img::Image test_scene(std::uint64_t seed = 91, int w = 240, int h = 180) {
  return img::render_scene(img::SceneSpec{seed, 18, 4}, w, h);
}

TEST(Orb, ExtractsKeypointsFromScene) {
  const BinaryFeatures f = extract_orb(test_scene());
  EXPECT_GT(f.size(), 20u);
  EXPECT_EQ(f.keypoints.size(), f.descriptors.size());
  EXPECT_EQ(f.stats.keypoint_count, f.size());
  EXPECT_GT(f.stats.ops, 0u);
}

TEST(Orb, Deterministic) {
  const BinaryFeatures a = extract_orb(test_scene());
  const BinaryFeatures b = extract_orb(test_scene());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.descriptors[i], b.descriptors[i]);
  }
}

TEST(Orb, KeypointsInFullResolutionFrame) {
  const img::Image scene = test_scene();
  const BinaryFeatures f = extract_orb(scene);
  for (const auto& kp : f.keypoints) {
    EXPECT_GE(kp.x, 0);
    EXPECT_GE(kp.y, 0);
    EXPECT_LT(kp.x, scene.width());
    EXPECT_LT(kp.y, scene.height());
  }
}

TEST(Orb, RespectsFeatureBudget) {
  OrbParams p;
  p.max_features = 50;
  const BinaryFeatures f = extract_orb(test_scene(91, 480, 360), p);
  EXPECT_LE(f.size(), 60u);  // small slack for per-level rounding
}

TEST(Orb, FlatImageYieldsNothing) {
  img::Image flat(128, 128, 1);
  flat.fill(77);
  EXPECT_TRUE(extract_orb(flat).empty());
}

TEST(Orb, WireBytesAre32PerDescriptor) {
  const BinaryFeatures f = extract_orb(test_scene());
  EXPECT_EQ(f.wire_bytes(), f.size() * 32);
}

TEST(Orb, MatchesRotatedView) {
  const img::Image scene = test_scene(17);
  const img::Affine rot = img::Affine::rotation_about(
      scene.width() / 2.0, scene.height() / 2.0, 0.12);
  const img::Image rotated = img::warp_affine(scene, rot);
  const BinaryFeatures fa = extract_orb(scene);
  const BinaryFeatures fb = extract_orb(rotated);
  const double sim = jaccard_similarity(fa, fb);
  EXPECT_GT(sim, 0.08);  // well above unrelated-scene similarity (~0.005)
}

TEST(Orb, MatchesScaledView) {
  const img::Image scene = test_scene(19);
  const img::Image smaller = img::bitmap_compress(scene, 0.25);
  const BinaryFeatures fa = extract_orb(scene);
  const BinaryFeatures fb = extract_orb(smaller);
  EXPECT_GT(jaccard_similarity(fa, fb), 0.05);
}

TEST(Orb, UnrelatedScenesScoreNearZero) {
  const BinaryFeatures fa = extract_orb(test_scene(23));
  const BinaryFeatures fb = extract_orb(test_scene(29));
  EXPECT_LT(jaccard_similarity(fa, fb), 0.05);
}

TEST(Orb, CompressionReducesWork) {
  const img::Image scene = test_scene(31, 320, 240);
  const BinaryFeatures full = extract_orb(scene);
  const BinaryFeatures small = extract_orb(img::bitmap_compress(scene, 0.5));
  EXPECT_LT(small.stats.ops, full.stats.ops);
}

TEST(Orb, DescriptorBitsAreBalanced) {
  // Degenerate descriptors (all zeros / all ones) would indicate a broken
  // BRIEF pattern; across keypoints the mean popcount should be near 128.
  const BinaryFeatures f = extract_orb(test_scene(37));
  ASSERT_FALSE(f.empty());
  double total = 0;
  for (const auto& d : f.descriptors) {
    total += hamming_distance(d, Descriptor256{});
  }
  const double mean = total / static_cast<double>(f.size());
  EXPECT_GT(mean, 70.0);
  EXPECT_LT(mean, 190.0);
}

TEST(IntensityCentroid, RotatesWithPatch) {
  // A patch with mass on the right has angle ~0; rotating the gradient by
  // 90 degrees moves the angle by ~pi/2.
  img::Image right(33, 33, 1);
  img::Image down(33, 33, 1);
  for (int y = 0; y < 33; ++y) {
    for (int x = 0; x < 33; ++x) {
      right.set(x, y, static_cast<std::uint8_t>(x * 7));
      down.set(x, y, static_cast<std::uint8_t>(y * 7));
    }
  }
  const float a_right = intensity_centroid_angle(right, 16, 16, 15);
  const float a_down = intensity_centroid_angle(down, 16, 16, 15);
  EXPECT_NEAR(a_right, 0.0f, 0.1f);
  EXPECT_NEAR(a_down, static_cast<float>(M_PI) / 2, 0.1f);
}

class OrbLevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(OrbLevelSweep, MoreLevelsNeverFewerScales) {
  OrbParams p;
  p.levels = GetParam();
  const BinaryFeatures f = extract_orb(test_scene(41, 320, 240), p);
  EXPECT_FALSE(f.empty());
  for (const auto& kp : f.keypoints) {
    EXPECT_LT(kp.level, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, OrbLevelSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace bees::feat
