#include "features/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "features/matching.hpp"
#include "features/sift.hpp"
#include "imaging/transform.hpp"
#include "imaging/synth.hpp"
#include "util/rng.hpp"

namespace bees::feat {
namespace {

/// Synthetic data concentrated in a known 2-D subspace of R^6 plus tiny
/// isotropic noise.
std::vector<float> low_rank_data(std::size_t n, util::Rng& rng) {
  std::vector<float> rows;
  rows.reserve(n * 6);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.normal(0.0, 5.0);
    const double b = rng.normal(0.0, 2.0);
    const double base[6] = {a, a, b, -b, a + b, 0.0};
    for (const double v : base) {
      rows.push_back(static_cast<float>(v + rng.normal(0.0, 0.01)));
    }
  }
  return rows;
}

TEST(Pca, RecoversLowRankSubspace) {
  util::Rng rng(3);
  const auto rows = low_rank_data(500, rng);
  const PcaModel model = PcaModel::fit(rows, 6, 2);
  EXPECT_EQ(model.input_dim(), 6);
  EXPECT_EQ(model.output_dim(), 2);
  // Two components capture nearly all variance of rank-2 data.
  EXPECT_GT(model.explained_variance(), 0.999);
}

TEST(Pca, ProjectionPreservesPairwiseStructure) {
  util::Rng rng(5);
  const auto rows = low_rank_data(300, rng);
  const PcaModel model = PcaModel::fit(rows, 6, 2);
  // Distances in the projected space approximate distances in the original
  // space for data that lives in the retained subspace.
  const float* x = rows.data();
  const float* y = rows.data() + 6 * 10;
  double orig = 0;
  for (int d = 0; d < 6; ++d) {
    orig += (x[d] - y[d]) * (x[d] - y[d]);
  }
  const auto px = model.project(x);
  const auto py = model.project(y);
  double proj = 0;
  for (int d = 0; d < 2; ++d) proj += (px[d] - py[d]) * (px[d] - py[d]);
  EXPECT_NEAR(std::sqrt(proj), std::sqrt(orig), 0.05 * std::sqrt(orig) + 0.1);
}

TEST(Pca, IdentityWhenKeepingAllComponents) {
  util::Rng rng(7);
  const auto rows = low_rank_data(200, rng);
  const PcaModel model = PcaModel::fit(rows, 6, 6);
  EXPECT_NEAR(model.explained_variance(), 1.0, 1e-9);
}

TEST(Pca, RejectsBadInput) {
  EXPECT_THROW(PcaModel::fit({}, 6, 2), std::invalid_argument);
  EXPECT_THROW(PcaModel::fit({1.0f, 2.0f, 3.0f}, 2, 1),
               std::invalid_argument);  // not a multiple of dim
  std::vector<float> ok(12, 1.0f);
  EXPECT_THROW(PcaModel::fit(ok, 6, 7), std::invalid_argument);
  EXPECT_THROW(PcaModel::fit(ok, 0, 0), std::invalid_argument);
}

TEST(Pca, ProjectFeaturesKeepsKeypointsAndAddsOps) {
  const img::Image scene = img::render_scene(img::SceneSpec{15, 18, 4}, 200, 150);
  const FloatFeatures sift = extract_sift(scene);
  ASSERT_GT(sift.size(), 0u);
  const PcaModel model = fit_pca_sift({sift}, 36);
  const FloatFeatures projected = model.project_features(sift);
  EXPECT_EQ(projected.dim, 36);
  EXPECT_EQ(projected.size(), sift.size());
  EXPECT_EQ(projected.keypoints.size(), sift.keypoints.size());
  EXPECT_GT(projected.stats.ops, sift.stats.ops);  // projection adds work
}

TEST(Pca, ProjectFeaturesRejectsDimensionMismatch) {
  util::Rng rng(11);
  const auto rows = low_rank_data(100, rng);
  const PcaModel model = PcaModel::fit(rows, 6, 2);
  FloatFeatures wrong;
  wrong.dim = 5;
  wrong.values.assign(10, 0.0f);
  EXPECT_THROW(model.project_features(wrong), std::invalid_argument);
}

TEST(PcaSift, CompressesBytesByFactor128Over36) {
  const img::Image scene = img::render_scene(img::SceneSpec{21, 18, 4}, 200, 150);
  const FloatFeatures sift = extract_sift(scene);
  ASSERT_GT(sift.size(), 0u);
  const PcaModel model = fit_pca_sift({sift});
  const FloatFeatures pca = model.project_features(sift);
  // Per-descriptor bytes: 36/128 of SIFT — the Table I "25%" mechanism
  // (the paper rounds 36/128 = 28% to a quarter).
  EXPECT_NEAR(static_cast<double>(pca.wire_bytes()) / sift.wire_bytes(),
              36.0 / 128.0, 1e-9);
}

TEST(PcaSift, SimilarViewsStillMatchAfterProjection) {
  const img::Image base = img::render_scene(img::SceneSpec{25, 18, 4}, 200, 150);
  const img::Affine rot = img::Affine::rotation_about(100, 75, 0.06);
  const img::Image view = img::warp_affine(base, rot);
  const FloatFeatures sa = extract_sift(base);
  const FloatFeatures sb = extract_sift(view);
  const PcaModel model = fit_pca_sift({sa, sb});
  const FloatFeatures pa = model.project_features(sa);
  const FloatFeatures pb = model.project_features(sb);
  FloatMatchParams mp;
  mp.max_distance = 0.5;  // projected space keeps distances but not norms
  const auto matches = match_float(pa, pb, mp);
  EXPECT_GT(matches.size(), 3u);
}

}  // namespace
}  // namespace bees::feat
