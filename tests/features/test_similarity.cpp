#include "features/similarity.hpp"

#include <gtest/gtest.h>

#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "util/rng.hpp"

namespace bees::feat {
namespace {

TEST(JaccardFromMatches, ClosedFormValues) {
  // |S1|=10, |S2|=10, 5 matches -> 5 / (10+10-5) = 1/3.
  EXPECT_DOUBLE_EQ(jaccard_from_matches(10, 10, 5), 5.0 / 15.0);
  // Perfect overlap.
  EXPECT_DOUBLE_EQ(jaccard_from_matches(8, 8, 8), 1.0);
  // No matches.
  EXPECT_DOUBLE_EQ(jaccard_from_matches(8, 12, 0), 0.0);
  // Empty sets.
  EXPECT_DOUBLE_EQ(jaccard_from_matches(0, 0, 0), 0.0);
}

TEST(JaccardFromMatches, ClampsImpossibleMatchCounts) {
  // A match count larger than the smaller set cannot push the score past 1.
  EXPECT_LE(jaccard_from_matches(5, 10, 9), 1.0);
}

TEST(Jaccard, SelfSimilarityIsOne) {
  const img::Image scene = img::render_scene(img::SceneSpec{61, 18, 4}, 200, 150);
  const BinaryFeatures f = extract_orb(scene);
  ASSERT_GT(f.size(), 10u);
  EXPECT_DOUBLE_EQ(jaccard_similarity(f, f), 1.0);
}

TEST(Jaccard, Symmetric) {
  const BinaryFeatures a =
      extract_orb(img::render_scene(img::SceneSpec{63, 18, 4}, 200, 150));
  const BinaryFeatures b =
      extract_orb(img::render_scene(img::SceneSpec{65, 18, 4}, 200, 150));
  EXPECT_DOUBLE_EQ(jaccard_similarity(a, b), jaccard_similarity(b, a));
}

TEST(Jaccard, InUnitInterval) {
  util::Rng rng(1);
  img::ViewPerturbation pert;
  const img::SceneSpec spec{67, 18, 4};
  const BinaryFeatures a =
      extract_orb(img::render_view(spec, 200, 150, pert, rng));
  const BinaryFeatures b =
      extract_orb(img::render_view(spec, 200, 150, pert, rng));
  const double s = jaccard_similarity(a, b);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

TEST(Jaccard, SimilarPairsBeatDissimilarPairs) {
  // The separation that makes the paper's thresholds (0.013-0.019)
  // meaningful.  Averaged over several scenes to be robust.
  util::Rng rng(2);
  img::ViewPerturbation pert;
  double sim_total = 0, dis_total = 0;
  constexpr int kScenes = 4;
  std::vector<BinaryFeatures> first, second;
  for (int s = 0; s < kScenes; ++s) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(100 + s), 18, 4};
    first.push_back(extract_orb(img::render_view(spec, 240, 180, pert, rng)));
    second.push_back(extract_orb(img::render_view(spec, 240, 180, pert, rng)));
  }
  int dis_count = 0;
  for (int i = 0; i < kScenes; ++i) {
    sim_total += jaccard_similarity(first[i], second[i]);
    for (int j = 0; j < kScenes; ++j) {
      if (i == j) continue;
      dis_total += jaccard_similarity(first[i], second[j]);
      ++dis_count;
    }
  }
  const double sim_mean = sim_total / kScenes;
  const double dis_mean = dis_total / dis_count;
  EXPECT_GT(sim_mean, 0.05);
  EXPECT_LT(dis_mean, 0.02);
  EXPECT_GT(sim_mean, dis_mean * 4);
}

TEST(Jaccard, EmptySetsScoreZero) {
  BinaryFeatures empty;
  const BinaryFeatures f =
      extract_orb(img::render_scene(img::SceneSpec{69, 18, 4}, 200, 150));
  EXPECT_DOUBLE_EQ(jaccard_similarity(empty, f), 0.0);
  EXPECT_DOUBLE_EQ(jaccard_similarity(empty, empty), 0.0);
}

TEST(Jaccard, OpsAccumulate) {
  const BinaryFeatures a =
      extract_orb(img::render_scene(img::SceneSpec{71, 18, 4}, 200, 150));
  std::uint64_t ops = 0;
  jaccard_similarity(a, a, {}, &ops);
  EXPECT_GT(ops, 0u);
}

}  // namespace
}  // namespace bees::feat
