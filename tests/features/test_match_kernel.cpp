// Property tests of the packed early-exit matching kernel against the
// naive reference matcher: identical match vectors, distances, and modeled
// `ops` over randomized descriptor sets, including the degenerate shapes
// (empty, singleton, duplicates) and both cross-check settings.  Also the
// ISA differential sweep (scalar / AVX2 / NEON must agree bit for bit,
// down to the lanes_{examined,pruned} counters), the 32-byte alignment
// contract of PackedDescriptors, and the batched entry points'
// equivalence with their serial counterparts.  Labeled `sanitize` and
// `tsan` so the sanitizer presets cover the kernel's buffer reuse and the
// dispatch atomics.
#include "features/match_kernel.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "features/simd.hpp"
#include "features/similarity.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace bees::feat {
namespace {

static_assert(detail::kLaneAlignment == 32,
              "packed descriptors promise one AVX2 vector of alignment");
static_assert(detail::kLaneBlock == 4,
              "one 256-bit descriptor is four 64-bit words");

Descriptor256 random_descriptor(util::Rng& rng) {
  Descriptor256 d;
  for (auto& lane : d.bits) lane = rng.next_u64();
  return d;
}

Descriptor256 flip_bits(Descriptor256 d, int count, util::Rng& rng) {
  for (int i = 0; i < count; ++i) {
    const int bit = static_cast<int>(rng.index(256));
    d.bits[static_cast<std::size_t>(bit >> 6)] ^= std::uint64_t{1}
                                                  << (bit & 63);
  }
  return d;
}

/// A descriptor set with correlated structure: fresh random descriptors,
/// near-duplicates of earlier members of `seeded_from` (so best/second
/// distances spread out and both gates and pruning trigger), and exact
/// duplicates (tie-break coverage).
std::vector<Descriptor256> random_set(std::size_t n, util::Rng& rng,
                                      const std::vector<Descriptor256>&
                                          seeded_from = {}) {
  std::vector<Descriptor256> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.3 && !seeded_from.empty()) {
      // Near-duplicate of a descriptor from the other set.
      const auto& base = seeded_from[rng.index(seeded_from.size())];
      out.push_back(flip_bits(base, static_cast<int>(rng.index(60)), rng));
    } else if (roll < 0.45 && !out.empty()) {
      // Exact duplicate within this set: exercises first-index ties.
      out.push_back(out[rng.index(out.size())]);
    } else if (roll < 0.6 && !out.empty()) {
      // Near-duplicate within this set: tightens second-best bounds.
      out.push_back(
          flip_bits(out[rng.index(out.size())],
                    static_cast<int>(rng.index(30)), rng));
    } else {
      out.push_back(random_descriptor(rng));
    }
  }
  return out;
}

void expect_identical(const std::vector<Descriptor256>& a,
                      const std::vector<Descriptor256>& b,
                      const BinaryMatchParams& params, MatchWorkspace& ws) {
  std::uint64_t naive_ops = 0;
  std::uint64_t kernel_ops = 0;
  const auto expected = match_binary_naive(a, b, params, &naive_ops);
  const auto actual = match_binary_kernel(a, b, params, &kernel_ops, ws);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t m = 0; m < expected.size(); ++m) {
    EXPECT_EQ(actual[m].index_a, expected[m].index_a);
    EXPECT_EQ(actual[m].index_b, expected[m].index_b);
    EXPECT_EQ(actual[m].distance, expected[m].distance);
  }
  EXPECT_EQ(kernel_ops, naive_ops);
  // The count-only path agrees too (it backs the workspace overload of
  // jaccard_similarity).
  std::uint64_t count_ops = 0;
  EXPECT_EQ(match_binary_count(a, b, params, &count_ops, ws),
            expected.size());
  EXPECT_EQ(count_ops, naive_ops);
}

TEST(MatchKernelProperty, MatchesNaiveOnRandomizedSets) {
  util::Rng rng(20250807);
  // One workspace reused across every shape below: catches stale-buffer
  // bugs when sizes shrink and grow between calls.
  MatchWorkspace ws;
  const std::size_t sizes[] = {0, 1, 2, 3, 7, 16, 33, 64};
  for (int round = 0; round < 4; ++round) {
    for (const std::size_t na : sizes) {
      for (const std::size_t nb : sizes) {
        const auto a = random_set(na, rng);
        const auto b = random_set(nb, rng, a);
        BinaryMatchParams params;
        params.cross_check = (round % 2 == 0);
        // Sweep the gates so both accept and reject paths run.
        params.max_distance = (round < 2) ? 48 : 256;
        params.ratio = (round < 2) ? 0.8 : 1.0;
        expect_identical(a, b, params, ws);
      }
    }
  }
}

TEST(MatchKernelProperty, MatchesNaiveOnDuplicateHeavySets) {
  util::Rng rng(77);
  MatchWorkspace ws;
  // All-identical descriptors: every distance ties at 0; the kernel must
  // reproduce the naive first-index winners exactly.
  const Descriptor256 base = random_descriptor(rng);
  std::vector<Descriptor256> dup_a(9, base);
  std::vector<Descriptor256> dup_b(5, base);
  for (const bool cross : {true, false}) {
    BinaryMatchParams params;
    params.cross_check = cross;
    params.ratio = 1.0;
    expect_identical(dup_a, dup_b, params, ws);
  }
}

TEST(MatchKernelProperty, WorkspaceJaccardMatchesPlainOverload) {
  util::Rng rng(99);
  MatchWorkspace ws;
  for (int trial = 0; trial < 8; ++trial) {
    BinaryFeatures a, b;
    a.descriptors = random_set(rng.index(40), rng);
    b.descriptors = random_set(rng.index(40), rng, a.descriptors);
    std::uint64_t ops_plain = 0;
    std::uint64_t ops_ws = 0;
    const double plain = jaccard_similarity(a, b, {}, &ops_plain);
    const double with_ws = jaccard_similarity(a, b, {}, &ops_ws, ws);
    EXPECT_DOUBLE_EQ(with_ws, plain);
    EXPECT_EQ(ops_ws, ops_plain);
  }
}

/// Restores probe-based dispatch even when a test body fails mid-sweep.
struct IsaGuard {
  ~IsaGuard() { clear_forced_simd_isa(); }
};

/// Full per-ISA observation of one kernel call: matches, ops, and the
/// modeled lane counters read back from the metrics registry.
struct IsaRun {
  std::vector<Match> matches;
  std::uint64_t ops = 0;
  double lanes_examined = 0.0;
  double lanes_pruned = 0.0;
};

IsaRun run_under_isa(SimdIsa isa, const std::vector<Descriptor256>& a,
                     const std::vector<Descriptor256>& b,
                     const BinaryMatchParams& params, MatchWorkspace& ws) {
  force_simd_isa(isa);
  IsaRun run;
  obs::MetricsRegistry::global().reset();
  obs::set_enabled(true);
  run.matches = match_binary_kernel(a, b, params, &run.ops, ws);
  obs::set_enabled(false);
  const auto snap = obs::MetricsRegistry::global().snapshot();
  obs::MetricsRegistry::global().reset();
  if (snap.counters.count("feat.match.lanes_examined")) {
    run.lanes_examined = snap.counters.at("feat.match.lanes_examined");
  }
  if (snap.counters.count("feat.match.lanes_pruned")) {
    run.lanes_pruned = snap.counters.at("feat.match.lanes_pruned");
  }
  return run;
}

TEST(MatchKernelSimd, EveryIsaAgreesWithScalarBitForBit) {
  IsaGuard guard;
  util::Rng rng(20250809);
  MatchWorkspace ws;
  // kScalar always runs the fused SWAR loop; forcing an ISA this build or
  // CPU lacks falls back to scalar, so the sweep is safe everywhere and
  // differential wherever a vector unit exists.
  const SimdIsa isas[] = {SimdIsa::kAvx2, SimdIsa::kNeon};
  const std::size_t sizes[] = {0, 1, 3, 17, 64, 131, 150};
  for (int round = 0; round < 3; ++round) {
    for (const std::size_t na : sizes) {
      for (const std::size_t nb : sizes) {
        const auto a = random_set(na, rng);
        const auto b = random_set(nb, rng, a);
        BinaryMatchParams params;
        params.cross_check = (round % 2 == 0);
        params.max_distance = (round == 0) ? 48 : 256;
        params.ratio = (round == 0) ? 0.8 : 1.0;
        const IsaRun scalar =
            run_under_isa(SimdIsa::kScalar, a, b, params, ws);
        for (const SimdIsa isa : isas) {
          const IsaRun vec = run_under_isa(isa, a, b, params, ws);
          ASSERT_EQ(vec.matches.size(), scalar.matches.size())
              << simd_isa_name(isa) << " na=" << na << " nb=" << nb;
          for (std::size_t m = 0; m < scalar.matches.size(); ++m) {
            EXPECT_EQ(vec.matches[m].index_a, scalar.matches[m].index_a);
            EXPECT_EQ(vec.matches[m].index_b, scalar.matches[m].index_b);
            EXPECT_EQ(vec.matches[m].distance, scalar.matches[m].distance);
          }
          EXPECT_EQ(vec.ops, scalar.ops);
          // The modeled pruning counters replay identically too: the
          // vector path buffers lane sums but charges the same lanes.
          EXPECT_EQ(vec.lanes_examined, scalar.lanes_examined)
              << simd_isa_name(isa) << " na=" << na << " nb=" << nb;
          EXPECT_EQ(vec.lanes_pruned, scalar.lanes_pruned)
              << simd_isa_name(isa) << " na=" << na << " nb=" << nb;
        }
      }
    }
  }
}

TEST(MatchKernelSimd, ForcingUnavailableIsaFallsBackToScalar) {
  IsaGuard guard;
#if !defined(BEES_HAVE_NEON)
  force_simd_isa(SimdIsa::kNeon);
  EXPECT_EQ(active_simd_isa(), SimdIsa::kScalar);
#endif
#if !defined(BEES_HAVE_AVX2)
  force_simd_isa(SimdIsa::kAvx2);
  EXPECT_EQ(active_simd_isa(), SimdIsa::kScalar);
#endif
  force_simd_isa(SimdIsa::kScalar);
  EXPECT_EQ(active_simd_isa(), SimdIsa::kScalar);
  clear_forced_simd_isa();
  EXPECT_EQ(active_simd_isa(), detected_simd_isa());
}

TEST(MatchKernelSimd, PackedDescriptorsHonorLaneAlignment) {
  util::Rng rng(55);
  PackedDescriptors packed;
  // Re-assign through growing and shrinking sizes: every (re)allocation
  // must keep both layouts on 32-byte boundaries.
  for (const std::size_t n : {5u, 150u, 3u, 64u}) {
    packed.assign(random_set(n, rng));
    ASSERT_EQ(packed.size(), n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(packed.words()) %
                  detail::kLaneAlignment,
              0u);
    for (std::size_t l = 0; l < detail::kLaneBlock; ++l) {
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(packed.lane(l)) %
                    detail::kLaneAlignment,
                0u)
          << "lane " << l << " n=" << n;
    }
    // The candidate-major copy is the natural Descriptor256 layout and the
    // lane-major copy its transpose; spot-check both against each other.
    for (std::size_t j = 0; j < n; j += (n / 7) + 1) {
      for (std::size_t l = 0; l < detail::kLaneBlock; ++l) {
        EXPECT_EQ(packed.words()[detail::kLaneBlock * j + l],
                  packed.lane(l)[j]);
      }
    }
  }
}

TEST(MatchKernelBatch, CountBatchMatchesSerialCalls) {
  util::Rng rng(606);
  MatchWorkspace ws;
  const auto b = random_set(40, rng);
  std::vector<std::vector<Descriptor256>> queries;
  for (const std::size_t n : {0u, 1u, 12u, 33u}) {
    queries.push_back(random_set(n, rng, b));
  }
  std::vector<const std::vector<Descriptor256>*> batch;
  for (const auto& q : queries) batch.push_back(&q);

  for (const bool cross : {true, false}) {
    BinaryMatchParams params;
    params.cross_check = cross;
    std::vector<std::size_t> counts(batch.size(), 0);
    std::vector<std::uint64_t> ops(batch.size(), 0);
    match_binary_count_batch(batch, b, params, counts.data(), ops.data(),
                             ws);
    for (std::size_t k = 0; k < batch.size(); ++k) {
      std::uint64_t serial_ops = 0;
      EXPECT_EQ(counts[k],
                match_binary_count(*batch[k], b, params, &serial_ops, ws));
      EXPECT_EQ(ops[k], serial_ops);
    }
  }
}

TEST(MatchKernelBatch, JaccardBatchMatchesSerialCalls) {
  util::Rng rng(707);
  MatchWorkspace ws;
  BinaryFeatures b;
  b.descriptors = random_set(30, rng);
  std::vector<BinaryFeatures> queries(4);
  for (std::size_t k = 0; k < queries.size(); ++k) {
    queries[k].descriptors = random_set(5 + 9 * k, rng, b.descriptors);
  }
  std::vector<const BinaryFeatures*> batch;
  for (const auto& q : queries) batch.push_back(&q);

  std::vector<double> sims(batch.size(), 0.0);
  std::vector<std::uint64_t> ops(batch.size(), 0);
  jaccard_similarity_batch(batch, b, {}, sims.data(), ops.data(), ws);
  for (std::size_t k = 0; k < batch.size(); ++k) {
    std::uint64_t serial_ops = 0;
    EXPECT_DOUBLE_EQ(sims[k],
                     jaccard_similarity(*batch[k], b, {}, &serial_ops, ws));
    EXPECT_EQ(ops[k], serial_ops);
  }
}

TEST(MatchKernelObs, LaneCountersChargeTheRegistry) {
  util::Rng rng(123);
  std::vector<Descriptor256> a = random_set(12, rng);
  std::vector<Descriptor256> b = random_set(18, rng, a);
  MatchWorkspace ws;

  obs::MetricsRegistry::global().reset();
  obs::set_enabled(true);
  match_binary_kernel(a, b, {/*cross_check defaults on*/}, nullptr, ws);
  obs::set_enabled(false);

  const auto snap = obs::MetricsRegistry::global().snapshot();
  obs::MetricsRegistry::global().reset();
  ASSERT_TRUE(snap.counters.count("feat.match.lanes_examined"));
  ASSERT_TRUE(snap.counters.count("feat.match.lanes_pruned"));
  const double examined = snap.counters.at("feat.match.lanes_examined");
  const double pruned = snap.counters.at("feat.match.lanes_pruned");
  // Every (a, b) pair is visited once in the single dual-direction pass;
  // each visit accounts for exactly 4 lanes, examined or pruned.
  EXPECT_EQ(examined + pruned, 4.0 * 12 * 18);
  EXPECT_GE(examined, 1.0 * 12 * 18);  // lane 0 is always examined
}

TEST(MatchKernelObs, DisabledObsLeavesRegistryUntouched) {
  util::Rng rng(124);
  std::vector<Descriptor256> a = random_set(6, rng);
  std::vector<Descriptor256> b = random_set(6, rng);
  MatchWorkspace ws;
  obs::MetricsRegistry::global().reset();
  match_binary_kernel(a, b, {}, nullptr, ws);
  const auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.count("feat.match.lanes_examined"), 0u);
  EXPECT_EQ(snap.counters.count("feat.match.lanes_pruned"), 0u);
}

}  // namespace
}  // namespace bees::feat
