#include "features/fast.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "imaging/synth.hpp"
#include "imaging/transform.hpp"

namespace bees::feat {
namespace {

/// A bright square on a dark background: four unambiguous corners.
img::Image square_image(int size = 64) {
  img::Image im(size, size, 1);
  im.fill(20);
  for (int y = 24; y < 40; ++y) {
    for (int x = 24; x < 40; ++x) im.set(x, y, 220);
  }
  return im;
}

TEST(Fast, FlatImageHasNoCorners) {
  img::Image im(64, 64, 1);
  im.fill(128);
  EXPECT_TRUE(detect_fast(im, FastParams{}).empty());
}

TEST(Fast, DetectsSquareCorners) {
  FastParams p;
  p.border = 4;
  const auto kps = detect_fast(square_image(), p);
  ASSERT_FALSE(kps.empty());
  // Each detected keypoint must be near one of the 4 square corners.
  const double corners[4][2] = {{24, 24}, {39, 24}, {24, 39}, {39, 39}};
  for (const auto& kp : kps) {
    double best = 1e9;
    for (const auto& c : corners) {
      const double d = std::hypot(kp.x - c[0], kp.y - c[1]);
      best = std::min(best, d);
    }
    EXPECT_LT(best, 4.0) << "stray corner at " << kp.x << "," << kp.y;
  }
}

TEST(Fast, StraightEdgeIsNotACorner) {
  // A half-plane: strong edge, no corner anywhere away from the border.
  img::Image im(64, 64, 1);
  for (int y = 0; y < 64; ++y) {
    for (int x = 32; x < 64; ++x) im.set(x, y, 255);
  }
  FastParams p;
  p.border = 8;
  EXPECT_TRUE(detect_fast(im, p).empty());
}

TEST(Fast, NonmaxSuppressionReducesDetections) {
  FastParams with, without;
  with.border = without.border = 4;
  without.nonmax_suppression = false;
  const auto a = detect_fast(square_image(), with);
  const auto b = detect_fast(square_image(), without);
  EXPECT_LE(a.size(), b.size());
  EXPECT_FALSE(b.empty());
}

TEST(Fast, RespectsBorder) {
  FastParams p;
  p.border = 20;
  const auto kps = detect_fast(square_image(), p);
  for (const auto& kp : kps) {
    EXPECT_GE(kp.x, 20);
    EXPECT_GE(kp.y, 20);
    EXPECT_LT(kp.x, 44);
    EXPECT_LT(kp.y, 44);
  }
}

TEST(Fast, HigherThresholdFindsFewer) {
  const img::Image scene =
      img::to_gray(img::render_scene(img::SceneSpec{7}, 128, 96));
  FastParams lo, hi;
  lo.border = hi.border = 4;
  lo.threshold = 10;
  hi.threshold = 40;
  EXPECT_GE(detect_fast(scene, lo).size(), detect_fast(scene, hi).size());
}

TEST(Fast, TinyImageIsHandled) {
  img::Image im(8, 8, 1);
  im.fill(0);
  EXPECT_TRUE(detect_fast(im, FastParams{}).empty());
}

TEST(Fast, OpsCounterAccumulates) {
  std::uint64_t ops = 0;
  FastParams p;
  p.border = 4;
  detect_fast(square_image(), p, &ops);
  EXPECT_GT(ops, 0u);
}

TEST(Harris, CornerBeatsEdgeAndFlat) {
  const img::Image im = square_image();
  const float corner = harris_response(im, 24, 24);
  const float edge = harris_response(im, 32, 24);  // mid-edge of square
  const float flat = harris_response(im, 8, 8);
  EXPECT_GT(corner, edge);
  EXPECT_GT(corner, flat);
  EXPECT_NEAR(flat, 0.0f, 1e-3f);
}

}  // namespace
}  // namespace bees::feat
