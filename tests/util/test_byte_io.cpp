#include "util/byte_io.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace bees::util {
namespace {

TEST(ByteIo, ScalarRoundTrip) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_f32(3.5f);
  w.put_f64(-2.25);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_f32(), 3.5f);
  EXPECT_EQ(r.get_f64(), -2.25);
  EXPECT_TRUE(r.done());
}

TEST(ByteIo, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x04030201);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  ByteWriter w;
  w.put_varint(GetParam());
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.get_varint(), GetParam());
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                      0xffffffffULL, 0xffffffffffffffffULL));

TEST(ByteIo, VarintIsCompactForSmallValues) {
  ByteWriter w;
  w.put_varint(100);
  EXPECT_EQ(w.size(), 1u);
  w.put_varint(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(ByteIo, StringRoundTrip) {
  ByteWriter w;
  w.put_string("");
  w.put_string("hello bees");
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "hello bees");
}

TEST(ByteIo, BytesRoundTrip) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  ByteWriter w;
  w.put_bytes(payload);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.get_bytes(5), payload);
}

TEST(ByteIo, TruncatedReadsThrow) {
  ByteWriter w;
  w.put_u16(7);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_THROW(r.get_u32(), DecodeError);
}

TEST(ByteIo, TruncatedVarintThrows) {
  // A continuation bit with no following byte.
  const std::vector<std::uint8_t> bad{0x80};
  ByteReader r(bad);
  EXPECT_THROW(r.get_varint(), DecodeError);
}

TEST(ByteIo, OverlongVarintThrows) {
  // 11 continuation bytes exceed the 64-bit range.
  const std::vector<std::uint8_t> bad(11, 0x80);
  ByteReader r(bad);
  EXPECT_THROW(r.get_varint(), DecodeError);
}

TEST(ByteIo, RandomizedMixedRoundTrip) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    ByteWriter w;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t v = rng.next_u64() >> (rng.index(64));
      values.push_back(v);
      w.put_varint(v);
    }
    const auto buf = w.take();
    ByteReader r(buf);
    for (const auto v : values) EXPECT_EQ(r.get_varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(ByteIo, RemainingTracksPosition) {
  ByteWriter w;
  w.put_u32(1);
  const auto buf = w.take();
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 4u);
  r.get_u16();
  EXPECT_EQ(r.remaining(), 2u);
}

}  // namespace
}  // namespace bees::util
