#include "util/compress.hpp"

#include "util/byte_io.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace bees::util {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(LzCompress, EmptyRoundTrip) {
  const std::vector<std::uint8_t> empty;
  EXPECT_EQ(lz_decompress(lz_compress(empty)), empty);
}

TEST(LzCompress, ShortLiteralRoundTrip) {
  const auto data = bytes_of("abc");
  EXPECT_EQ(lz_decompress(lz_compress(data)), data);
}

TEST(LzCompress, RepetitiveInputShrinksALot) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 500; ++i) {
    const auto chunk = bytes_of("the quick brown fox ");
    data.insert(data.end(), chunk.begin(), chunk.end());
  }
  const auto compressed = lz_compress(data);
  EXPECT_LT(compressed.size(), data.size() / 10);
  EXPECT_EQ(lz_decompress(compressed), data);
}

TEST(LzCompress, RunOfOneByteUsesOverlappingMatches) {
  const std::vector<std::uint8_t> data(10000, 0x42);
  const auto compressed = lz_compress(data);
  EXPECT_LT(compressed.size(), 100u);
  EXPECT_EQ(lz_decompress(compressed), data);
}

TEST(LzCompress, RandomBytesRoundTripWithBoundedExpansion) {
  Rng rng(3);
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto compressed = lz_compress(data);
  EXPECT_EQ(lz_decompress(compressed), data);
  // Incompressible input falls back to stored mode: input + header + mode.
  EXPECT_LE(compressed.size(), data.size() + 16);
}

class LzRandomizedRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LzRandomizedRoundTrip, MixedContentRoundTrips) {
  Rng rng(GetParam());
  // Mixed content: random runs, repeated motifs, random literals.
  std::vector<std::uint8_t> data;
  while (data.size() < 20000) {
    switch (rng.uniform_int(0, 2)) {
      case 0: {  // run
        const auto b = static_cast<std::uint8_t>(rng.next_u64());
        const auto len = static_cast<std::size_t>(rng.uniform_int(1, 300));
        data.insert(data.end(), len, b);
        break;
      }
      case 1: {  // motif repetition
        const auto start = data.empty() ? 0 : rng.index(data.size());
        const auto len = static_cast<std::size_t>(rng.uniform_int(4, 64));
        for (std::size_t i = 0; i < len && start + i < data.size(); ++i) {
          data.push_back(data[start + i]);
        }
        break;
      }
      default: {  // literals
        const auto len = static_cast<std::size_t>(rng.uniform_int(1, 64));
        for (std::size_t i = 0; i < len; ++i) {
          data.push_back(static_cast<std::uint8_t>(rng.next_u64()));
        }
        break;
      }
    }
  }
  EXPECT_EQ(lz_decompress(lz_compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzRandomizedRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(LzCompress, BadMagicThrows) {
  std::vector<std::uint8_t> junk(32, 0x00);
  EXPECT_THROW(lz_decompress(junk), DecodeError);
}

TEST(LzCompress, TruncatedPayloadThrows) {
  std::vector<std::uint8_t> data(2000, 0x11);
  for (std::size_t i = 0; i < data.size(); i += 3) data[i] = 0x22;
  auto compressed = lz_compress(data);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(lz_decompress(compressed), DecodeError);
}

TEST(LzCompress, FuzzedDecompressNeverCrashes) {
  // Malformed input must throw DecodeError (or decode by luck), never
  // crash or hang.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(static_cast<std::size_t>(
        rng.uniform_int(0, 200)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      const auto out = lz_decompress(junk);
      EXPECT_LT(out.size(), 1u << 28);  // sane size if it "succeeded"
    } catch (const DecodeError&) {
      // expected for most inputs
    }
  }
}

TEST(LzCompress, FuzzedMutationsOfValidStreams) {
  Rng rng(101);
  std::vector<std::uint8_t> data(1000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
  const auto valid = lz_compress(data);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = valid;
    mutated[rng.index(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.index(8));
    try {
      (void)lz_decompress(mutated);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();  // reaching here without crash/hang is the assertion
}

}  // namespace
}  // namespace bees::util
