#include "util/bitstream.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bees::util {
namespace {

TEST(BitStream, SingleBitsRoundTrip) {
  BitWriter w;
  const std::vector<bool> bits{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (const bool b : bits) w.put_bit(b);
  const auto buf = w.finish();
  BitReader r(buf);
  for (const bool b : bits) EXPECT_EQ(r.get_bit(), b);
}

TEST(BitStream, FixedWidthFieldsRoundTrip) {
  BitWriter w;
  w.put_bits(0x2b, 6);
  w.put_bits(0x12345, 20);
  const auto buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(r.get_bits(6), 0x2bu);
  EXPECT_EQ(r.get_bits(20), 0x12345u);
}

class ExpGolombRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExpGolombRoundTrip, Unsigned) {
  BitWriter w;
  w.put_ue(GetParam());
  const auto buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(r.get_ue(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, ExpGolombRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 7ULL, 8ULL,
                                           63ULL, 64ULL, 1000ULL, 65535ULL));

TEST(ExpGolomb, SignedRoundTrip) {
  BitWriter w;
  const std::vector<std::int64_t> values{0, 1, -1, 2, -2, 100, -100, 4095};
  for (const auto v : values) w.put_se(v);
  const auto buf = w.finish();
  BitReader r(buf);
  for (const auto v : values) EXPECT_EQ(r.get_se(), v);
}

TEST(ExpGolomb, SmallValuesAreShort) {
  BitWriter w;
  w.put_ue(0);
  EXPECT_EQ(w.bit_count(), 1u);  // "1"
  BitWriter w2;
  w2.put_ue(1);
  EXPECT_EQ(w2.bit_count(), 3u);  // "010"
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter w;
  w.put_bit(true);
  const auto buf = w.finish();
  BitReader r(buf);
  for (int i = 0; i < 8; ++i) r.get_bit();  // padding included
  EXPECT_THROW(r.get_bit(), DecodeError);
}


}  // namespace
}  // namespace bees::util
