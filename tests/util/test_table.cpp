#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bees::util {
namespace {

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.1234), "12.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, RowsArePaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0).size(), 3u);
  EXPECT_EQ(t.row(0)[1], "");
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Each printed line should have the same leading column width: "x" padded
  // to at least the width of "longer".
  const auto x_pos = out.find("\nx");
  ASSERT_NE(x_pos, std::string::npos);
  const auto line_end = out.find('\n', x_pos + 1);
  const std::string x_line = out.substr(x_pos + 1, line_end - x_pos - 1);
  EXPECT_GE(x_line.find('1'), std::string("longer").size());
}

TEST(Table, CsvEmitsCommaSeparated) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Figure 7: Energy overhead");
  EXPECT_NE(os.str().find("Figure 7"), std::string::npos);
}

}  // namespace
}  // namespace bees::util
