#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace bees::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 1.5);
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, EndpointsAndMedian) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(MeanOf, Basic) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Histogram, BinsAndCounts) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(i / 100.0);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bin_count(b), 10u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(9), 1.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, FractionAboveIsExact) {
  Histogram h(0.0, 1.0, 4);
  for (const double v : {0.1, 0.2, 0.3, 0.9}) h.add(v);
  EXPECT_DOUBLE_EQ(h.fraction_above(0.25), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_above(0.95), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_above(-1.0), 1.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(FitLine, ExactLine) {
  std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 * x - 2.0);
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineStillHighR2) {
  Rng rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i * 0.1);
    ys.push_back(2.0 * i * 0.1 + 1.0 + rng.normal(0.0, 0.05));
  }
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLine, RejectsDegenerateInput) {
  EXPECT_THROW(fit_line({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(FitLine, VerticalDataFallsBackToMean) {
  // All x equal: slope undefined; the fit degrades to the mean.
  const LinearFit fit = fit_line({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

}  // namespace
}  // namespace bees::util
