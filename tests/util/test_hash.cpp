// Golden-value locks for the persisted hash formats (util/hash.hpp).
// These outputs are embedded in segment files, WAL manifest frames, and
// wire manifests: if any expectation here ever needs editing, the change
// breaks every store on disk — add a new function and format version
// instead.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/hash.hpp"

namespace bees::util {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Crc32Golden, CheckValueAndKnownVectors) {
  // The CRC-32 check value: every implementation of the zlib/PNG variant
  // (reflected 0xEDB88320, init/xorout 0xFFFFFFFF) produces this.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(bytes_of("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(bytes_of("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Golden, SeedChainsAStream) {
  const auto whole = bytes_of("123456789");
  const auto head = bytes_of("12345");
  const auto tail = bytes_of("6789");
  EXPECT_EQ(crc32(tail, crc32(head)), crc32(whole));
}

TEST(ContentHash64Golden, FnvVectors) {
  // FNV-1a 64-bit reference vectors (offset basis 0xcbf29ce484222325,
  // prime 0x100000001b3).
  EXPECT_EQ(content_hash64(bytes_of("")), 0xcbf29ce484222325ull);
  EXPECT_EQ(content_hash64(bytes_of("")), kContentHashSeed);
  EXPECT_EQ(content_hash64(bytes_of("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(content_hash64(bytes_of("foobar")), 0x85944171f73967e8ull);
}

TEST(ContentHash64Golden, SeedChainsAStream) {
  const auto whole = bytes_of("foobar");
  const auto head = bytes_of("foo");
  const auto tail = bytes_of("bar");
  EXPECT_EQ(content_hash64(tail, content_hash64(head)), content_hash64(whole));
}

TEST(ContentHash64Golden, SensitiveToEveryByte) {
  std::vector<std::uint8_t> data(64, 0x5A);
  const std::uint64_t base = content_hash64(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(content_hash64(data), base) << "byte " << i;
    data[i] ^= 0x01;
  }
}

}  // namespace
}  // namespace bees::util
