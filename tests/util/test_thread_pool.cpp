#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace bees::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long> values(10000);
  pool.parallel_for(values.size(), [&](std::size_t i) {
    values[i] = static_cast<long>(i) * 2;
  });
  const long sum = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(sum, 9999L * 10000L);  // 2 * n(n-1)/2
}

TEST(ThreadPool, ParallelForGrainCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t grain : {0u, 1u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> hits(97);
    pool.parallel_for(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain=" << grain;
  }
}

TEST(ThreadPool, ParallelForTakesMutableCallableByReference) {
  // The templated overload must not copy the callable per chunk: a
  // mutable-state lambda observed through a reference still works because
  // chunks are disjoint (each index is touched exactly once).
  ThreadPool pool(1);  // single worker -> sequential chunks
  std::size_t calls = 0;
  auto fn = [&calls](std::size_t) { ++calls; };
  pool.parallel_for(25, fn);
  EXPECT_EQ(calls, 25u);
}

TEST(ThreadPool, ExceptionPropagatesFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool remains usable after a failure.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManySmallBatchesStress) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 50L * (63 * 64 / 2));
}

TEST(ThreadPool, DestructionWithPendingWorkCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace bees::util
