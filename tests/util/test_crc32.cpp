#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace bees::util {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, MatchesIeeeCheckValue) {
  // The standard CRC-32 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero) {
  EXPECT_EQ(crc32(std::vector<std::uint8_t>{}), 0u);
}

TEST(Crc32, SeedChainingMatchesOneShot) {
  const auto a = bytes_of("write-ahead ");
  const auto b = bytes_of("log record");
  auto joined = a;
  joined.insert(joined.end(), b.begin(), b.end());
  EXPECT_EQ(crc32(b, crc32(a)), crc32(joined));
}

TEST(Crc32, DetectsSingleBitFlip) {
  auto data = bytes_of("the payload under guard");
  const std::uint32_t clean = crc32(data);
  data[5] ^= 0x10;
  EXPECT_NE(crc32(data), clean);
}

TEST(Crc32, DetectsTruncation) {
  const auto data = bytes_of("truncated frames must not verify");
  const std::vector<std::uint8_t> prefix(data.begin(), data.end() - 1);
  EXPECT_NE(crc32(prefix), crc32(data));
}

}  // namespace
}  // namespace bees::util
