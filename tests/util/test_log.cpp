#include "util/log.hpp"

#include <gtest/gtest.h>

namespace bees::util {
namespace {

/// Captures stderr around a callback.
template <typename Fn>
std::string capture_stderr(Fn&& fn) {
  ::testing::internal::CaptureStderr();
  fn();
  return ::testing::internal::GetCapturedStderr();
}

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LogTest, EmitsAtOrAboveThreshold) {
  set_log_level(LogLevel::kInfo);
  const std::string out = capture_stderr([] {
    log_info() << "hello " << 42;
    log_error() << "boom";
  });
  EXPECT_NE(out.find("[INFO] hello 42"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] boom"), std::string::npos);
}

TEST_F(LogTest, SuppressesBelowThreshold) {
  set_log_level(LogLevel::kWarn);
  const std::string out = capture_stderr([] {
    log_debug() << "invisible";
    log_info() << "also invisible";
    log_warn() << "visible";
  });
  EXPECT_EQ(out.find("invisible"), std::string::npos);
  EXPECT_NE(out.find("[WARN] visible"), std::string::npos);
}

TEST_F(LogTest, DebugVisibleWhenEnabled) {
  set_log_level(LogLevel::kDebug);
  const std::string out =
      capture_stderr([] { log_debug() << "trace " << 1.5; });
  EXPECT_NE(out.find("[DEBUG] trace 1.5"), std::string::npos);
}

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace bees::util
