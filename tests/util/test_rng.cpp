#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace bees::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // A bad seed expansion would give an all-zero xoshiro state that emits
  // only zeros.
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) any_nonzero |= (r.next_u64() != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanNearCenter) {
  Rng r(11);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / kN, 15.0, 0.1);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(17);
  double sum = 0, sum_sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = r.normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(19);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng r(29);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, ParetoHasScaleAsMinimum) {
  Rng r(31);
  double min_v = 1e9;
  for (int i = 0; i < 10000; ++i) min_v = std::min(min_v, r.pareto(2.0, 1.5));
  EXPECT_GE(min_v, 2.0);
  EXPECT_LT(min_v, 2.1);  // the minimum should approach the scale
}

TEST(Rng, IndexWithinBounds) {
  Rng r(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(10), 10u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng r(43);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(Rng, ForkGivesIndependentStreams) {
  Rng parent(47);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Splitmix64, KnownGolden) {
  // Reference value from the splitmix64 reference implementation.
  std::uint64_t state = 0;
  const std::uint64_t v = splitmix64(state);
  EXPECT_EQ(state, 0x9e3779b97f4a7c15ULL);
  EXPECT_NE(v, 0u);
  // Deterministic: same input state gives same output.
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), v);
}

}  // namespace
}  // namespace bees::util
