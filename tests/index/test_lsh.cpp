#include "index/lsh.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace bees::idx {
namespace {

feat::Descriptor256 random_descriptor(util::Rng& rng) {
  feat::Descriptor256 d;
  for (auto& lane : d.bits) lane = rng.next_u64();
  return d;
}

feat::Descriptor256 flip_bits(feat::Descriptor256 d, int count,
                              util::Rng& rng) {
  for (int i = 0; i < count; ++i) {
    const int bit = static_cast<int>(rng.index(256));
    d.bits[static_cast<std::size_t>(bit >> 6)] ^= std::uint64_t{1}
                                                  << (bit & 63);
  }
  return d;
}

TEST(Lsh, RejectsBadParams) {
  LshParams p;
  p.tables = 0;
  EXPECT_THROW(DescriptorLsh{p}, std::invalid_argument);
  p = {};
  p.bits_per_key = 0;
  EXPECT_THROW(DescriptorLsh{p}, std::invalid_argument);
  p = {};
  p.bits_per_key = 33;
  EXPECT_THROW(DescriptorLsh{p}, std::invalid_argument);
}

TEST(Lsh, IdenticalDescriptorAlwaysCollides) {
  util::Rng rng(1);
  DescriptorLsh lsh;
  const feat::Descriptor256 d = random_descriptor(rng);
  lsh.insert(d, 7);
  std::unordered_map<std::uint32_t, std::uint32_t> votes;
  lsh.vote(d, votes);
  ASSERT_TRUE(votes.count(7));
  EXPECT_EQ(votes[7], static_cast<std::uint32_t>(lsh.tables()));
}

TEST(Lsh, NearDescriptorsOutvoteFarOnes) {
  util::Rng rng(2);
  DescriptorLsh lsh;
  const feat::Descriptor256 query = random_descriptor(rng);
  // Payload 1: 100 near descriptors; payload 2: 100 random ones.
  for (int i = 0; i < 100; ++i) {
    lsh.insert(flip_bits(query, 12, rng), 1);
    lsh.insert(random_descriptor(rng), 2);
  }
  std::unordered_map<std::uint32_t, std::uint32_t> votes;
  lsh.vote(query, votes);
  EXPECT_GT(votes[1], votes[2] * 3 + 3);
}

TEST(Lsh, DuplicateDescriptorsDoNotInflateVotes) {
  // Regression: an image storing the same descriptor k times used to get k
  // votes per table from one query descriptor, letting a low-texture image
  // with a few repeated patterns outrank a genuinely similar one.  A
  // (table, key) bucket now holds each payload once, so the vote count is
  // bounded by the table count regardless of multiplicity.
  util::Rng rng(7);
  DescriptorLsh lsh;
  const feat::Descriptor256 d = random_descriptor(rng);
  for (int i = 0; i < 10; ++i) lsh.insert(d, 3);
  std::unordered_map<std::uint32_t, std::uint32_t> votes;
  lsh.vote(d, votes);
  ASSERT_TRUE(votes.count(3));
  EXPECT_EQ(votes[3], static_cast<std::uint32_t>(lsh.tables()));
  // The duplicate suppression is per payload: a second image with the same
  // descriptor still collects its own full vote share.
  lsh.insert(d, 4);
  votes.clear();
  lsh.vote(d, votes);
  EXPECT_EQ(votes[3], static_cast<std::uint32_t>(lsh.tables()));
  EXPECT_EQ(votes[4], static_cast<std::uint32_t>(lsh.tables()));
  // descriptor_count still reports physical insertions (Table I space
  // accounting), not deduplicated bucket entries.
  EXPECT_EQ(lsh.descriptor_count(), 11u);
}

TEST(Lsh, VoteOnEmptyIndexIsEmpty) {
  util::Rng rng(3);
  DescriptorLsh lsh;
  std::unordered_map<std::uint32_t, std::uint32_t> votes;
  lsh.vote(random_descriptor(rng), votes);
  EXPECT_TRUE(votes.empty());
}

TEST(Lsh, DescriptorCountTracksInsertions) {
  util::Rng rng(4);
  DescriptorLsh lsh;
  EXPECT_EQ(lsh.descriptor_count(), 0u);
  for (int i = 0; i < 5; ++i) lsh.insert(random_descriptor(rng), 0);
  EXPECT_EQ(lsh.descriptor_count(), 5u);
}

TEST(Lsh, AnalyticCollisionProbability) {
  LshParams p;
  p.bits_per_key = 16;
  DescriptorLsh lsh(p);
  EXPECT_DOUBLE_EQ(lsh.table_collision_probability(0), 1.0);
  EXPECT_NEAR(lsh.table_collision_probability(16),
              std::pow(1.0 - 16.0 / 256.0, 16), 1e-12);
  EXPECT_LT(lsh.table_collision_probability(128),
            lsh.table_collision_probability(16));
}

TEST(Lsh, EmpiricalCollisionRateMatchesAnalytic) {
  // Monte-Carlo check of the (1 - d/256)^k law at distance 16.
  util::Rng rng(5);
  LshParams p;
  p.tables = 1;
  p.bits_per_key = 12;
  constexpr int kTrials = 3000;
  int collisions = 0;
  for (int t = 0; t < kTrials; ++t) {
    DescriptorLsh lsh(p);
    const feat::Descriptor256 d = random_descriptor(rng);
    lsh.insert(d, 1);
    std::unordered_map<std::uint32_t, std::uint32_t> votes;
    lsh.vote(flip_bits(d, 16, rng), votes);
    collisions += votes.count(1) ? 1 : 0;
  }
  const double expected = std::pow(1.0 - 16.0 / 256.0, 12);
  EXPECT_NEAR(static_cast<double>(collisions) / kTrials, expected, 0.04);
}

struct LshGridParam {
  int tables;
  int bits;
};

class LshGrid : public ::testing::TestWithParam<LshGridParam> {};

TEST_P(LshGrid, FindsTrueNeighborAcrossConfigurations) {
  util::Rng rng(6);
  LshParams p;
  p.tables = GetParam().tables;
  p.bits_per_key = GetParam().bits;
  DescriptorLsh lsh(p);
  const feat::Descriptor256 target = random_descriptor(rng);
  lsh.insert(target, 42);
  for (int i = 0; i < 50; ++i) lsh.insert(random_descriptor(rng), 99);
  std::unordered_map<std::uint32_t, std::uint32_t> votes;
  // Query with a mildly corrupted copy; more tables raise recall.
  lsh.vote(flip_bits(target, 8, rng), votes);
  if (GetParam().tables >= 6) {
    EXPECT_TRUE(votes.count(42));
  }
  // Distinct bit samples per table must be deterministic per seed: a second
  // identical index gives identical votes.
  DescriptorLsh lsh2(p);
  lsh2.insert(target, 42);
  for (int i = 0; i < 50; ++i) lsh2.insert(random_descriptor(rng), 99);
  std::unordered_map<std::uint32_t, std::uint32_t> votes2;
  lsh2.vote(target, votes2);
  EXPECT_EQ(votes2[42], static_cast<std::uint32_t>(GetParam().tables));
}

INSTANTIATE_TEST_SUITE_P(Grid, LshGrid,
                         ::testing::Values(LshGridParam{2, 8},
                                           LshGridParam{6, 12},
                                           LshGridParam{6, 16},
                                           LshGridParam{10, 16},
                                           LshGridParam{10, 24}));

}  // namespace
}  // namespace bees::idx
