#include "index/persistence.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "features/orb.hpp"
#include "features/sift.hpp"
#include "imaging/synth.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace bees::idx {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

FeatureIndex make_index(int images) {
  FeatureIndex index;
  util::Rng rng(11);
  img::ViewPerturbation pert;
  for (int i = 0; i < images; ++i) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(9900 + i), 18, 4};
    GeoTag geo{2.31 + 0.001 * i, 48.86, true};
    index.insert(feat::extract_orb(
                     img::render_view(spec, 200, 150, pert, rng)),
                 geo);
  }
  return index;
}

TEST(Persistence, RoundTripPreservesEverything) {
  const FeatureIndex original = make_index(4);
  const std::string path = temp_path("bees_index_snapshot.bin");
  save_index_snapshot(original, path);
  const FeatureIndex loaded = load_index_snapshot(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.image_count(), original.image_count());
  for (std::size_t i = 0; i < original.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    ASSERT_EQ(loaded.features_of(id).size(), original.features_of(id).size());
    for (std::size_t d = 0; d < original.features_of(id).size(); ++d) {
      EXPECT_EQ(loaded.features_of(id).descriptors[d],
                original.features_of(id).descriptors[d]);
    }
    EXPECT_EQ(loaded.geo_of(id), original.geo_of(id));
  }
}

TEST(Persistence, LoadedIndexAnswersQueriesIdentically) {
  const FeatureIndex original = make_index(5);
  const std::string path = temp_path("bees_index_snapshot2.bin");
  save_index_snapshot(original, path);
  const FeatureIndex loaded = load_index_snapshot(path);
  std::remove(path.c_str());

  // Query with fresh views of the indexed scenes.
  util::Rng rng(12);
  img::ViewPerturbation pert;
  for (int i = 0; i < 5; ++i) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(9900 + i), 18, 4};
    const auto query = feat::extract_orb(
        img::render_view(spec, 200, 150, pert, rng));
    const QueryResult a = original.query(query);
    const QueryResult b = loaded.query(query);
    EXPECT_EQ(a.best_id, b.best_id);
    EXPECT_NEAR(a.max_similarity, b.max_similarity, 1e-12);
  }
}

TEST(Persistence, EmptyIndexRoundTrips) {
  const FeatureIndex empty;
  const std::string path = temp_path("bees_index_empty.bin");
  save_index_snapshot(empty, path);
  const FeatureIndex loaded = load_index_snapshot(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.image_count(), 0u);
}

TEST(Persistence, LoadWithDifferentLshParamsStillWorks) {
  const FeatureIndex original = make_index(3);
  const std::string path = temp_path("bees_index_params.bin");
  save_index_snapshot(original, path);
  FeatureIndexParams params;
  params.lsh.tables = 10;
  params.lsh.bits_per_key = 12;
  const FeatureIndex loaded = load_index_snapshot(path, params);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.image_count(), 3u);
  // The derived LSH state was rebuilt under the new configuration; exact
  // queries must still find the right image.
  const QueryResult r = loaded.query_exact(original.features_of(0));
  EXPECT_EQ(r.best_id, 0u);
  EXPECT_DOUBLE_EQ(r.max_similarity, 1.0);
}

FloatFeatureIndex make_float_index(int images) {
  FloatFeatureIndex index;
  util::Rng rng(13);
  img::ViewPerturbation pert;
  for (int i = 0; i < images; ++i) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(7700 + i), 18, 4};
    GeoTag geo{11.57 + 0.001 * i, 48.14, true};
    index.insert(feat::extract_sift(
                     img::render_view(spec, 200, 150, pert, rng)),
                 geo);
  }
  return index;
}

TEST(Persistence, FloatRoundTripPreservesEverything) {
  const FloatFeatureIndex original = make_float_index(4);
  const std::string path = temp_path("bees_float_snapshot.bin");
  save_float_index_snapshot(original, path);
  const FloatFeatureIndex loaded = load_float_index_snapshot(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.image_count(), original.image_count());
  for (std::size_t i = 0; i < original.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    ASSERT_EQ(loaded.features_of(id).size(), original.features_of(id).size());
    ASSERT_EQ(loaded.features_of(id).dim, original.features_of(id).dim);
    EXPECT_EQ(loaded.features_of(id).values, original.features_of(id).values);
    EXPECT_EQ(loaded.geo_of(id), original.geo_of(id));
  }
}

TEST(Persistence, FloatLoadedIndexAnswersQueriesIdentically) {
  const FloatFeatureIndex original = make_float_index(5);
  const std::string path = temp_path("bees_float_snapshot2.bin");
  save_float_index_snapshot(original, path);
  const FloatFeatureIndex loaded = load_float_index_snapshot(path);
  std::remove(path.c_str());

  for (std::size_t i = 0; i < original.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    const QueryResult a = original.query(original.features_of(id));
    const QueryResult b = loaded.query(original.features_of(id));
    EXPECT_EQ(a.best_id, b.best_id);
    EXPECT_DOUBLE_EQ(a.max_similarity, b.max_similarity);
  }
}

TEST(Persistence, FloatEmptyIndexRoundTrips) {
  const FloatFeatureIndex empty;
  const std::string path = temp_path("bees_float_empty.bin");
  save_float_index_snapshot(empty, path);
  const FloatFeatureIndex loaded = load_float_index_snapshot(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.image_count(), 0u);
}

TEST(Persistence, MixedMagicIsRejected) {
  // A binary snapshot fed to the float loader (and vice versa) must fail
  // loudly on the magic, not misparse.
  const auto binary_bytes = encode_index_snapshot(make_index(2));
  EXPECT_THROW(decode_float_index_snapshot(binary_bytes), util::DecodeError);
  const auto float_bytes = encode_float_index_snapshot(make_float_index(2));
  EXPECT_THROW(decode_index_snapshot(float_bytes), util::DecodeError);
}

TEST(Persistence, MissingFileThrows) {
  EXPECT_THROW(load_index_snapshot("/nonexistent/snapshot.bin"),
               std::runtime_error);
}

TEST(Persistence, CorruptSnapshotThrows) {
  const std::string path = temp_path("bees_index_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a snapshot";
  }
  EXPECT_THROW(load_index_snapshot(path), util::DecodeError);
  std::remove(path.c_str());
}

TEST(Persistence, TruncatedSnapshotThrows) {
  const FeatureIndex original = make_index(3);
  const std::string path = temp_path("bees_index_trunc.bin");
  save_index_snapshot(original, path);
  // Truncate the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_index_snapshot(path), util::DecodeError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bees::idx
