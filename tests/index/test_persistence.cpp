#include "index/persistence.hpp"

#include <gtest/gtest.h>

#include "index/serialize.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "features/orb.hpp"
#include "features/sift.hpp"
#include "imaging/synth.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace bees::idx {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

FeatureIndex make_index(int images) {
  FeatureIndex index;
  util::Rng rng(11);
  img::ViewPerturbation pert;
  for (int i = 0; i < images; ++i) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(9900 + i), 18, 4};
    GeoTag geo{2.31 + 0.001 * i, 48.86, true};
    index.insert(feat::extract_orb(
                     img::render_view(spec, 200, 150, pert, rng)),
                 geo);
  }
  return index;
}

TEST(Persistence, RoundTripPreservesEverything) {
  const FeatureIndex original = make_index(4);
  const std::string path = temp_path("bees_index_snapshot.bin");
  save_index_snapshot(original, path);
  const FeatureIndex loaded = load_index_snapshot(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.image_count(), original.image_count());
  for (std::size_t i = 0; i < original.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    ASSERT_EQ(loaded.features_of(id).size(), original.features_of(id).size());
    for (std::size_t d = 0; d < original.features_of(id).size(); ++d) {
      EXPECT_EQ(loaded.features_of(id).descriptors[d],
                original.features_of(id).descriptors[d]);
    }
    EXPECT_EQ(loaded.geo_of(id), original.geo_of(id));
  }
}

TEST(Persistence, LoadedIndexAnswersQueriesIdentically) {
  const FeatureIndex original = make_index(5);
  const std::string path = temp_path("bees_index_snapshot2.bin");
  save_index_snapshot(original, path);
  const FeatureIndex loaded = load_index_snapshot(path);
  std::remove(path.c_str());

  // Query with fresh views of the indexed scenes.
  util::Rng rng(12);
  img::ViewPerturbation pert;
  for (int i = 0; i < 5; ++i) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(9900 + i), 18, 4};
    const auto query = feat::extract_orb(
        img::render_view(spec, 200, 150, pert, rng));
    const QueryResult a = original.query(query);
    const QueryResult b = loaded.query(query);
    EXPECT_EQ(a.best_id, b.best_id);
    EXPECT_NEAR(a.max_similarity, b.max_similarity, 1e-12);
  }
}

TEST(Persistence, EmptyIndexRoundTrips) {
  const FeatureIndex empty;
  const std::string path = temp_path("bees_index_empty.bin");
  save_index_snapshot(empty, path);
  const FeatureIndex loaded = load_index_snapshot(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.image_count(), 0u);
}

TEST(Persistence, LoadWithDifferentLshParamsStillWorks) {
  const FeatureIndex original = make_index(3);
  const std::string path = temp_path("bees_index_params.bin");
  save_index_snapshot(original, path);
  FeatureIndexParams params;
  params.lsh.tables = 10;
  params.lsh.bits_per_key = 12;
  const FeatureIndex loaded = load_index_snapshot(path, params);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.image_count(), 3u);
  // The derived LSH state was rebuilt under the new configuration; exact
  // queries must still find the right image.
  const QueryResult r = loaded.query_exact(original.features_of(0));
  EXPECT_EQ(r.best_id, 0u);
  EXPECT_DOUBLE_EQ(r.max_similarity, 1.0);
}

FloatFeatureIndex make_float_index(int images) {
  FloatFeatureIndex index;
  util::Rng rng(13);
  img::ViewPerturbation pert;
  for (int i = 0; i < images; ++i) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(7700 + i), 18, 4};
    GeoTag geo{11.57 + 0.001 * i, 48.14, true};
    index.insert(feat::extract_sift(
                     img::render_view(spec, 200, 150, pert, rng)),
                 geo);
  }
  return index;
}

TEST(Persistence, FloatRoundTripPreservesEverything) {
  const FloatFeatureIndex original = make_float_index(4);
  const std::string path = temp_path("bees_float_snapshot.bin");
  save_float_index_snapshot(original, path);
  const FloatFeatureIndex loaded = load_float_index_snapshot(path);
  std::remove(path.c_str());

  ASSERT_EQ(loaded.image_count(), original.image_count());
  for (std::size_t i = 0; i < original.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    ASSERT_EQ(loaded.features_of(id).size(), original.features_of(id).size());
    ASSERT_EQ(loaded.features_of(id).dim, original.features_of(id).dim);
    EXPECT_EQ(loaded.features_of(id).values, original.features_of(id).values);
    EXPECT_EQ(loaded.geo_of(id), original.geo_of(id));
  }
}

TEST(Persistence, FloatLoadedIndexAnswersQueriesIdentically) {
  const FloatFeatureIndex original = make_float_index(5);
  const std::string path = temp_path("bees_float_snapshot2.bin");
  save_float_index_snapshot(original, path);
  const FloatFeatureIndex loaded = load_float_index_snapshot(path);
  std::remove(path.c_str());

  for (std::size_t i = 0; i < original.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    const QueryResult a = original.query(original.features_of(id));
    const QueryResult b = loaded.query(original.features_of(id));
    EXPECT_EQ(a.best_id, b.best_id);
    EXPECT_DOUBLE_EQ(a.max_similarity, b.max_similarity);
  }
}

TEST(Persistence, FloatEmptyIndexRoundTrips) {
  const FloatFeatureIndex empty;
  const std::string path = temp_path("bees_float_empty.bin");
  save_float_index_snapshot(empty, path);
  const FloatFeatureIndex loaded = load_float_index_snapshot(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.image_count(), 0u);
}

FeatureIndexParams ann_params() {
  FeatureIndexParams params;
  params.ann.enabled = true;
  params.ann.vocabulary.branching = 4;
  params.ann.vocabulary.depth = 2;
  params.ann.vocabulary_sample = 256;
  return params;
}

FeatureIndex make_ann_index(int images) {
  FeatureIndex index(ann_params());
  util::Rng rng(11);
  img::ViewPerturbation pert;
  for (int i = 0; i < images; ++i) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(9900 + i), 18, 4};
    GeoTag geo{2.31 + 0.001 * i, 48.86, true};
    index.insert(feat::extract_orb(
                     img::render_view(spec, 200, 150, pert, rng)),
                 geo);
  }
  return index;
}

TEST(Persistence, AnnRowsRoundTripThroughV2Snapshot) {
  const FeatureIndex original = make_ann_index(4);
  const auto bytes = encode_index_snapshot(original);
  const FeatureIndex loaded = decode_index_snapshot(bytes, ann_params());
  ASSERT_EQ(loaded.image_count(), original.image_count());
  ASSERT_TRUE(loaded.ann_enabled());
  // The restored rows must be bit-identical to the originals (they were
  // installed from the snapshot, not recomputed — but either path must
  // produce the same rows, since rows are pure functions of the params).
  for (std::size_t i = 0; i < original.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    const auto a = original.ann_row_of(id);
    const auto b = loaded.ann_row_of(id);
    EXPECT_EQ(a.band_signatures, b.band_signatures);
    EXPECT_EQ(a.words, b.words);
  }
  // And re-encoding the loaded index reproduces the snapshot byte-for-byte.
  EXPECT_EQ(encode_index_snapshot(loaded), bytes);
}

TEST(Persistence, AnnSnapshotLoadsIntoAnnDisabledIndex) {
  // A v2 snapshot with rows must still load into a plain-LSH index: the
  // rows are parsed (to keep the stream in sync) and discarded.
  const FeatureIndex original = make_ann_index(3);
  const auto bytes = encode_index_snapshot(original);
  const FeatureIndex loaded = decode_index_snapshot(bytes);  // default params
  EXPECT_EQ(loaded.image_count(), 3u);
  EXPECT_FALSE(loaded.ann_enabled());
  const QueryResult r = loaded.query_exact(original.features_of(0));
  EXPECT_EQ(r.best_id, 0u);
}

TEST(Persistence, AnnSnapshotWithMismatchedParamsRecomputesRows) {
  // Reader trains a differently-shaped tree: the stored fingerprint
  // mismatches, rows are recomputed, and queries still work.
  const FeatureIndex original = make_ann_index(3);
  const auto bytes = encode_index_snapshot(original);
  FeatureIndexParams params = ann_params();
  params.ann.vocabulary.branching = 3;
  const FeatureIndex loaded = decode_index_snapshot(bytes, params);
  ASSERT_TRUE(loaded.ann_enabled());
  EXPECT_NE(loaded.ann_fingerprint(), original.ann_fingerprint());
  const QueryResult r = loaded.query(original.features_of(1));
  EXPECT_EQ(r.best_id, 1u);
}

TEST(Persistence, LegacyV1SnapshotStillLoads) {
  // Hand-build a version-1 snapshot (no ANN block) and check the v2 reader
  // accepts it — the backward-compatibility contract of the version bump.
  const FeatureIndex original = make_index(2);
  util::ByteWriter w;
  w.put_u32(0x53454542);  // "BEES"
  w.put_u32(1);           // legacy version
  w.put_varint(original.image_count());
  for (std::size_t i = 0; i < original.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    const auto features = serialize_binary(original.features_of(id));
    w.put_varint(features.size());
    w.put_bytes(features);
    const GeoTag& geo = original.geo_of(id);
    w.put_u8(geo.valid ? 1 : 0);
    w.put_f64(geo.lon);
    w.put_f64(geo.lat);
  }
  const FeatureIndex loaded = decode_index_snapshot(w.take(), ann_params());
  ASSERT_EQ(loaded.image_count(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto id = static_cast<ImageId>(i);
    EXPECT_EQ(loaded.features_of(id).descriptors,
              original.features_of(id).descriptors);
    EXPECT_EQ(loaded.geo_of(id), original.geo_of(id));
  }
  // ANN rows were rebuilt from the descriptors during the legacy load.
  EXPECT_TRUE(loaded.ann_enabled());
  const QueryResult r = loaded.query(original.features_of(0));
  EXPECT_EQ(r.best_id, 0u);
}

TEST(Persistence, HugeImageCountFailsCleanly) {
  // A corrupted count must raise DecodeError before any allocation sized
  // from it — not attempt a multi-terabyte reserve.
  util::ByteWriter w;
  w.put_u32(0x53454542);
  w.put_u32(2);
  w.put_u8(0);                        // no ANN block
  w.put_varint(0xffffffffffffull);    // absurd image count
  EXPECT_THROW(decode_index_snapshot(w.take()), util::DecodeError);

  util::ByteWriter fw;
  fw.put_u32(0x46454542);
  fw.put_u32(2);
  fw.put_varint(0xffffffffffffull);
  EXPECT_THROW(decode_float_index_snapshot(fw.take()), util::DecodeError);
}

TEST(Persistence, HugeFeatureLengthFailsCleanly) {
  // Per-entry feature length beyond the remaining buffer must also fail
  // before allocation.
  util::ByteWriter w;
  w.put_u32(0x53454542);
  w.put_u32(2);
  w.put_u8(0);
  w.put_varint(1);              // one image
  w.put_varint(0xffffffffull);  // feature blob "length"...
  for (int i = 0; i < 32; ++i) w.put_u8(0);  // ...but only 32 bytes follow
  EXPECT_THROW(decode_index_snapshot(w.take()), util::DecodeError);
}

TEST(Persistence, MixedMagicIsRejected) {
  // A binary snapshot fed to the float loader (and vice versa) must fail
  // loudly on the magic, not misparse.
  const auto binary_bytes = encode_index_snapshot(make_index(2));
  EXPECT_THROW(decode_float_index_snapshot(binary_bytes), util::DecodeError);
  const auto float_bytes = encode_float_index_snapshot(make_float_index(2));
  EXPECT_THROW(decode_index_snapshot(float_bytes), util::DecodeError);
}

TEST(Persistence, MissingFileThrows) {
  EXPECT_THROW(load_index_snapshot("/nonexistent/snapshot.bin"),
               std::runtime_error);
}

TEST(Persistence, CorruptSnapshotThrows) {
  const std::string path = temp_path("bees_index_corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a snapshot";
  }
  EXPECT_THROW(load_index_snapshot(path), util::DecodeError);
  std::remove(path.c_str());
}

TEST(Persistence, TruncatedSnapshotThrows) {
  const FeatureIndex original = make_index(3);
  const std::string path = temp_path("bees_index_trunc.bin");
  save_index_snapshot(original, path);
  // Truncate the file in half.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(load_index_snapshot(path), util::DecodeError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bees::idx
