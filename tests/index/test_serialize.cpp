#include "index/serialize.hpp"

#include <gtest/gtest.h>

#include "features/orb.hpp"
#include "features/sift.hpp"
#include "imaging/synth.hpp"
#include "util/byte_io.hpp"

namespace bees::idx {
namespace {

TEST(SerializeBinary, RoundTripPreservesDescriptors) {
  const feat::BinaryFeatures f = feat::extract_orb(
      img::render_scene(img::SceneSpec{5, 18, 4}, 200, 150));
  ASSERT_GT(f.size(), 0u);
  const auto bytes = serialize_binary(f);
  const feat::BinaryFeatures back = deserialize_binary(bytes);
  ASSERT_EQ(back.size(), f.size());
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_EQ(back.descriptors[i], f.descriptors[i]);
  }
}

TEST(SerializeBinary, WireSizeIsCountPlus32PerDescriptor) {
  const feat::BinaryFeatures f = feat::extract_orb(
      img::render_scene(img::SceneSpec{7, 18, 4}, 200, 150));
  const auto bytes = serialize_binary(f);
  // varint count (<= 2 bytes for a few hundred) + 32 bytes each.
  EXPECT_GE(bytes.size(), f.size() * 32 + 1);
  EXPECT_LE(bytes.size(), f.size() * 32 + 3);
}

TEST(SerializeBinary, EmptySetRoundTrips) {
  const feat::BinaryFeatures empty;
  const auto bytes = serialize_binary(empty);
  EXPECT_EQ(deserialize_binary(bytes).size(), 0u);
}

TEST(SerializeBinary, TruncatedInputThrows) {
  const feat::BinaryFeatures f = feat::extract_orb(
      img::render_scene(img::SceneSpec{9, 18, 4}, 200, 150));
  auto bytes = serialize_binary(f);
  bytes.resize(bytes.size() - 5);
  EXPECT_THROW(deserialize_binary(bytes), util::DecodeError);
}

TEST(SerializeBinary, HugeCountFailsBeforeAllocating) {
  // A corrupted descriptor count must raise DecodeError up front: every
  // descriptor takes 32 bytes, so a count beyond remaining/32 can never be
  // satisfied and reserving for it would be a multi-gigabyte allocation.
  util::ByteWriter w;
  w.put_varint(0x1fffffffffffull);
  w.put_u64(0);  // a little trailing data, far short of the claim
  EXPECT_THROW(deserialize_binary(w.take()), util::DecodeError);
}

TEST(SerializeFloat, RoundTripPreservesValues) {
  const feat::FloatFeatures f = feat::extract_sift(
      img::render_scene(img::SceneSpec{11, 18, 4}, 200, 150));
  ASSERT_GT(f.size(), 0u);
  const auto bytes = serialize_float(f);
  const feat::FloatFeatures back = deserialize_float(bytes);
  EXPECT_EQ(back.dim, f.dim);
  EXPECT_EQ(back.values, f.values);
}

TEST(SerializeFloat, EmptySetRoundTrips) {
  feat::FloatFeatures empty;
  empty.dim = 128;
  const auto bytes = serialize_float(empty);
  const feat::FloatFeatures back = deserialize_float(bytes);
  EXPECT_EQ(back.size(), 0u);
}

TEST(SerializeFloat, TruncatedInputThrows) {
  const feat::FloatFeatures f = feat::extract_sift(
      img::render_scene(img::SceneSpec{13, 18, 4}, 200, 150));
  auto bytes = serialize_float(f);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_float(bytes), util::DecodeError);
}

TEST(SerializeFloat, HugeCountOrDimensionFailsBeforeAllocating) {
  {
    util::ByteWriter w;
    w.put_varint(0x1fffffffffffull);  // absurd keypoint count
    w.put_varint(128);
    w.put_u64(0);
    EXPECT_THROW(deserialize_float(w.take()), util::DecodeError);
  }
  {
    util::ByteWriter w;
    w.put_varint(4);
    w.put_varint(0x7fffffffull);  // absurd dimension
    w.put_u64(0);
    EXPECT_THROW(deserialize_float(w.take()), util::DecodeError);
  }
  {
    util::ByteWriter w;
    w.put_varint(4);  // keypoints claimed but dim == 0
    w.put_varint(0);
    EXPECT_THROW(deserialize_float(w.take()), util::DecodeError);
  }
}

TEST(Serialize, BinaryIsFarSmallerThanFloat) {
  // The Table I mechanism at wire level: ORB descriptors are 32 B while
  // SIFT descriptors are 512 B.
  const img::Image scene = img::render_scene(img::SceneSpec{15, 18, 4}, 240, 180);
  const auto orb_bytes = serialize_binary(feat::extract_orb(scene)).size();
  const auto sift = feat::extract_sift(scene);
  const auto sift_bytes = serialize_float(sift).size();
  ASSERT_GT(sift.size(), 0u);
  // Compare per-descriptor cost to be robust to keypoint-count differences.
  const double orb_per =
      static_cast<double>(orb_bytes) /
      static_cast<double>(feat::extract_orb(scene).size());
  const double sift_per =
      static_cast<double>(sift_bytes) / static_cast<double>(sift.size());
  EXPECT_LT(orb_per * 8, sift_per);
}

}  // namespace
}  // namespace bees::idx
