#include "index/minhash.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "util/rng.hpp"

namespace bees::idx {
namespace {

feat::Descriptor256 random_descriptor(util::Rng& rng) {
  feat::Descriptor256 d;
  for (auto& lane : d.bits) lane = rng.next_u64();
  return d;
}

TEST(MinHash, RejectsBadParams) {
  MinHashParams p;
  p.hashes = 0;
  EXPECT_THROW(MinHasher{p}, std::invalid_argument);
  p = {};
  p.token_bits = 0;
  EXPECT_THROW(MinHasher{p}, std::invalid_argument);
  p = {};
  p.token_bits = 65;
  EXPECT_THROW(MinHasher{p}, std::invalid_argument);
}

TEST(MinHash, SketchHasRequestedSize) {
  MinHashParams p;
  p.hashes = 48;
  MinHasher hasher(p);
  util::Rng rng(1);
  std::vector<feat::Descriptor256> set;
  for (int i = 0; i < 20; ++i) set.push_back(random_descriptor(rng));
  const MinHashSketch s = hasher.sketch(set);
  EXPECT_EQ(s.minima.size(), 48u);
  EXPECT_EQ(s.wire_bytes(), 48u * 8);
}

TEST(MinHash, IdenticalSetsScoreOne) {
  MinHasher hasher;
  util::Rng rng(2);
  std::vector<feat::Descriptor256> set;
  for (int i = 0; i < 30; ++i) set.push_back(random_descriptor(rng));
  const MinHashSketch a = hasher.sketch(set);
  const MinHashSketch b = hasher.sketch(set);
  EXPECT_DOUBLE_EQ(hasher.estimate_similarity(a, b), 1.0);
}

TEST(MinHash, DisjointSetsScoreNearZero) {
  MinHasher hasher;
  util::Rng rng(3);
  std::vector<feat::Descriptor256> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(random_descriptor(rng));
    b.push_back(random_descriptor(rng));
  }
  EXPECT_LT(hasher.estimate_similarity(hasher.sketch(a), hasher.sketch(b)),
            0.1);
}

TEST(MinHash, EmptySketchScoresZero) {
  MinHasher hasher;
  util::Rng rng(4);
  std::vector<feat::Descriptor256> set{random_descriptor(rng)};
  const MinHashSketch empty = hasher.sketch({});
  const MinHashSketch full = hasher.sketch(set);
  EXPECT_DOUBLE_EQ(hasher.estimate_similarity(empty, full), 0.0);
  EXPECT_DOUBLE_EQ(hasher.estimate_similarity(empty, empty), 0.0);
}

TEST(MinHash, EstimateTracksExactTokenJaccard) {
  // Partial overlap: |A ∩ B| / |A ∪ B| known by construction, estimate
  // within a few standard errors with k = 256.
  MinHashParams p;
  p.hashes = 256;
  MinHasher hasher(p);
  util::Rng rng(5);
  std::vector<feat::Descriptor256> shared, only_a, only_b;
  for (int i = 0; i < 60; ++i) shared.push_back(random_descriptor(rng));
  for (int i = 0; i < 20; ++i) only_a.push_back(random_descriptor(rng));
  for (int i = 0; i < 20; ++i) only_b.push_back(random_descriptor(rng));
  std::vector<feat::Descriptor256> a = shared, b = shared;
  a.insert(a.end(), only_a.begin(), only_a.end());
  b.insert(b.end(), only_b.begin(), only_b.end());

  const double exact = hasher.exact_token_jaccard(a, b);
  EXPECT_NEAR(exact, 0.6, 0.02);  // 60 / 100 with random tokens
  const double estimate =
      hasher.estimate_similarity(hasher.sketch(a), hasher.sketch(b));
  const double stderr_bound = 3.0 * std::sqrt(0.6 * 0.4 / 256.0);
  EXPECT_NEAR(estimate, exact, stderr_bound);
}

class MinHashAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(MinHashAccuracy, ErrorShrinksWithSketchSize) {
  // Mean absolute estimation error over trials must be within the
  // theoretical O(1/sqrt(k)) budget.
  MinHashParams p;
  p.hashes = GetParam();
  MinHasher hasher(p);
  util::Rng rng(6);
  double total_error = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<feat::Descriptor256> shared, a, b;
    const int n_shared = static_cast<int>(rng.uniform_int(10, 60));
    for (int i = 0; i < n_shared; ++i) shared.push_back(random_descriptor(rng));
    a = shared;
    b = shared;
    for (int i = 0; i < 25; ++i) {
      a.push_back(random_descriptor(rng));
      b.push_back(random_descriptor(rng));
    }
    const double exact = hasher.exact_token_jaccard(a, b);
    const double est =
        hasher.estimate_similarity(hasher.sketch(a), hasher.sketch(b));
    total_error += std::abs(est - exact);
  }
  const double mean_error = total_error / kTrials;
  EXPECT_LT(mean_error, 2.0 / std::sqrt(static_cast<double>(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(SketchSizes, MinHashAccuracy,
                         ::testing::Values(32, 64, 128, 256));

TEST(MinHash, WorksOnRealOrbDescriptors) {
  // Two views of one scene share matching descriptors but not identical
  // ones; the coarse token quantization must still let them collide so the
  // sketch sees the overlap.
  util::Rng rng(7);
  const img::SceneSpec spec{55, 18, 4};
  const auto fa = feat::extract_orb(
      img::render_view(spec, 240, 180, img::ViewPerturbation{}, rng));
  const auto fb = feat::extract_orb(
      img::render_view(spec, 240, 180, img::ViewPerturbation{}, rng));
  const auto fo = feat::extract_orb(
      img::render_scene(img::SceneSpec{56, 18, 4}, 240, 180));
  MinHashParams p;
  p.hashes = 128;
  p.token_bits = 24;  // coarse: tolerate descriptor bit noise
  MinHasher hasher(p);
  const double sim_pair = hasher.estimate_similarity(
      hasher.sketch(fa.descriptors), hasher.sketch(fb.descriptors));
  const double sim_other = hasher.estimate_similarity(
      hasher.sketch(fa.descriptors), hasher.sketch(fo.descriptors));
  EXPECT_GT(sim_pair, sim_other);
}

TEST(MinHash, OpsCharged) {
  MinHasher hasher;
  util::Rng rng(8);
  std::vector<feat::Descriptor256> set;
  for (int i = 0; i < 10; ++i) set.push_back(random_descriptor(rng));
  std::uint64_t ops = 0;
  hasher.sketch(set, &ops);
  EXPECT_EQ(ops, 10u * static_cast<unsigned>(hasher.hashes()));
}

}  // namespace
}  // namespace bees::idx
