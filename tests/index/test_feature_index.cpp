#include "index/feature_index.hpp"

#include <gtest/gtest.h>

#include "features/orb.hpp"
#include "features/pca.hpp"
#include "features/sift.hpp"
#include "imaging/synth.hpp"
#include "util/rng.hpp"

namespace bees::idx {
namespace {

/// Builds (first view, second view) ORB feature pairs for n scenes.
struct ScenePairs {
  std::vector<feat::BinaryFeatures> stored;
  std::vector<feat::BinaryFeatures> queries;
};

ScenePairs make_pairs(int n, std::uint64_t seed) {
  ScenePairs out;
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  for (int s = 0; s < n; ++s) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(seed * 100 + s), 18,
                              4};
    out.stored.push_back(
        feat::extract_orb(img::render_view(spec, 240, 180, pert, rng)));
    out.queries.push_back(
        feat::extract_orb(img::render_view(spec, 240, 180, pert, rng)));
  }
  return out;
}

TEST(FeatureIndex, EmptyIndexReturnsNothing) {
  FeatureIndex index;
  const ScenePairs pairs = make_pairs(1, 1);
  const QueryResult r = index.query(pairs.queries[0]);
  EXPECT_TRUE(r.hits.empty());
  EXPECT_EQ(r.max_similarity, 0.0);
  EXPECT_EQ(r.best_id, kInvalidImageId);
}

TEST(FeatureIndex, EmptyQueryReturnsNothing) {
  FeatureIndex index;
  const ScenePairs pairs = make_pairs(1, 2);
  index.insert(pairs.stored[0]);
  EXPECT_TRUE(index.query(feat::BinaryFeatures{}).hits.empty());
}

TEST(FeatureIndex, FindsTheSimilarStoredImage) {
  FeatureIndex index;
  const ScenePairs pairs = make_pairs(5, 3);
  std::vector<ImageId> ids;
  for (const auto& f : pairs.stored) ids.push_back(index.insert(f));
  for (std::size_t s = 0; s < pairs.queries.size(); ++s) {
    const QueryResult r = index.query(pairs.queries[s]);
    EXPECT_EQ(r.best_id, ids[s]) << "query " << s;
    EXPECT_GT(r.max_similarity, 0.03);
  }
}

TEST(FeatureIndex, LshAgreesWithExactScan) {
  FeatureIndex index;
  const ScenePairs pairs = make_pairs(6, 4);
  for (const auto& f : pairs.stored) index.insert(f);
  for (const auto& q : pairs.queries) {
    const QueryResult fast = index.query(q);
    const QueryResult exact = index.query_exact(q);
    EXPECT_EQ(fast.best_id, exact.best_id);
    EXPECT_NEAR(fast.max_similarity, exact.max_similarity, 1e-12);
  }
}

TEST(FeatureIndex, ExactScanChecksEverything) {
  FeatureIndex index;
  const ScenePairs pairs = make_pairs(4, 5);
  for (const auto& f : pairs.stored) index.insert(f);
  const QueryResult exact = index.query_exact(pairs.queries[0]);
  EXPECT_EQ(exact.candidates_checked, 4u);
}

TEST(FeatureIndex, TopKBoundsHitCount) {
  FeatureIndex index;
  const ScenePairs pairs = make_pairs(8, 6);
  for (const auto& f : pairs.stored) index.insert(f);
  const QueryResult r = index.query(pairs.queries[0], 3);
  EXPECT_LE(r.hits.size(), 3u);
  // Hits are ranked most-similar first.
  for (std::size_t i = 1; i < r.hits.size(); ++i) {
    EXPECT_GE(r.hits[i - 1].similarity, r.hits[i].similarity);
  }
}

TEST(FeatureIndex, StoresGeoAndBytes) {
  FeatureIndex index;
  const ScenePairs pairs = make_pairs(1, 7);
  GeoTag geo{2.32, 48.86, true};
  const ImageId id = index.insert(pairs.stored[0], geo);
  EXPECT_EQ(index.geo_of(id), geo);
  EXPECT_EQ(index.image_count(), 1u);
  EXPECT_EQ(index.wire_bytes(), pairs.stored[0].wire_bytes());
  EXPECT_EQ(index.descriptor_count(), pairs.stored[0].size());
}

TEST(FeatureIndex, UnrelatedQueryScoresBelowPaperThreshold) {
  FeatureIndex index;
  const ScenePairs stored = make_pairs(4, 8);
  for (const auto& f : stored.stored) index.insert(f);
  const ScenePairs unrelated = make_pairs(1, 99);
  const QueryResult r = index.query(unrelated.queries[0]);
  // The EDR threshold band is 0.013..0.019; unrelated content must not
  // trip it systematically.
  EXPECT_LT(r.max_similarity, 0.05);
}

TEST(FloatFeatureIndex, FindsSimilarImage) {
  util::Rng rng(9);
  img::ViewPerturbation pert;
  std::vector<feat::FloatFeatures> stored, queries;
  for (int s = 0; s < 3; ++s) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(900 + s), 18, 4};
    stored.push_back(
        feat::extract_sift(img::render_view(spec, 200, 150, pert, rng)));
    queries.push_back(
        feat::extract_sift(img::render_view(spec, 200, 150, pert, rng)));
  }
  FloatFeatureIndex index;
  std::vector<ImageId> ids;
  for (const auto& f : stored) ids.push_back(index.insert(f));
  for (std::size_t s = 0; s < queries.size(); ++s) {
    const QueryResult r = index.query(queries[s]);
    EXPECT_EQ(r.best_id, ids[s]);
    EXPECT_GT(r.max_similarity, 0.02);
  }
  EXPECT_EQ(index.image_count(), 3u);
  EXPECT_GT(index.wire_bytes(), 0u);
}

TEST(FloatFeatureIndex, EmptyCases) {
  FloatFeatureIndex index;
  feat::FloatFeatures q;
  q.dim = 128;
  EXPECT_TRUE(index.query(q).hits.empty());
}

}  // namespace
}  // namespace bees::idx
