// The parallel candidate-rescore contract: FeatureIndex / FloatFeatureIndex
// queries return identical QueryResults (hits, ops, candidates_checked) for
// every rescore pool size, because the candidate partition is static and
// per-candidate slots are merged in candidate order.  Also covers the
// deterministic tie-break (equal similarities rank by ascending ImageId)
// and the rescore-stage timer metric.
#include <gtest/gtest.h>

#include "index/feature_index.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace bees::idx {
namespace {

feat::Descriptor256 random_descriptor(util::Rng& rng) {
  feat::Descriptor256 d;
  for (auto& lane : d.bits) lane = rng.next_u64();
  return d;
}

feat::Descriptor256 flip_bits(feat::Descriptor256 d, int count,
                              util::Rng& rng) {
  for (int i = 0; i < count; ++i) {
    const int bit = static_cast<int>(rng.index(256));
    d.bits[static_cast<std::size_t>(bit >> 6)] ^= std::uint64_t{1}
                                                  << (bit & 63);
  }
  return d;
}

/// A synthetic feature set of `n` descriptors: some perturbed copies of
/// `base` (similar images share matches), the rest random.
feat::BinaryFeatures features_near(const std::vector<feat::Descriptor256>&
                                       base,
                                   std::size_t n, int flips, util::Rng& rng) {
  feat::BinaryFeatures f;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < base.size()) {
      f.descriptors.push_back(flip_bits(base[i], flips, rng));
    } else {
      f.descriptors.push_back(random_descriptor(rng));
    }
    f.keypoints.emplace_back();
  }
  return f;
}

void expect_same_result(const QueryResult& a, const QueryResult& b) {
  ASSERT_EQ(a.hits.size(), b.hits.size());
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    EXPECT_EQ(a.hits[i].id, b.hits[i].id);
    EXPECT_DOUBLE_EQ(a.hits[i].similarity, b.hits[i].similarity);
  }
  EXPECT_DOUBLE_EQ(a.max_similarity, b.max_similarity);
  EXPECT_EQ(a.best_id, b.best_id);
  EXPECT_EQ(a.candidates_checked, b.candidates_checked);
  EXPECT_EQ(a.ops, b.ops);
}

TEST(ParallelRescore, BinaryQueryIdenticalAcrossThreadCounts) {
  util::Rng rng(2024);
  std::vector<feat::Descriptor256> base;
  for (int i = 0; i < 40; ++i) base.push_back(random_descriptor(rng));
  std::vector<feat::BinaryFeatures> stored;
  for (int i = 0; i < 24; ++i) {
    stored.push_back(features_near(base, 40, 8 + i, rng));
  }
  const feat::BinaryFeatures query = features_near(base, 40, 6, rng);

  std::vector<QueryResult> results;
  for (const int threads : {1, 2, 8}) {
    FeatureIndexParams params;
    params.rescore_threads = threads;
    params.max_candidates = 16;
    FeatureIndex index(params);
    for (const auto& f : stored) index.insert(f);
    results.push_back(index.query(query));
    // query_exact rescores every stored image: a wider partition.
    results.push_back(index.query_exact(query));
  }
  for (std::size_t i = 2; i < results.size(); i += 2) {
    expect_same_result(results[i], results[0]);
    expect_same_result(results[i + 1], results[1]);
  }
  EXPECT_FALSE(results[0].hits.empty());
  EXPECT_GT(results[0].ops, 0u);
}

TEST(ParallelRescore, FloatQueryIdenticalAcrossThreadCounts) {
  util::Rng rng(7);
  const int dim = 16;
  auto make_float = [&](double offset) {
    feat::FloatFeatures f;
    f.dim = dim;
    for (int k = 0; k < 30; ++k) {
      for (int d = 0; d < dim; ++d) {
        f.values.push_back(static_cast<float>(
            rng.uniform(0.0, 0.1) + (k % 5) * 0.2 + offset));
      }
      f.keypoints.emplace_back();
    }
    return f;
  };
  std::vector<feat::FloatFeatures> stored;
  for (int i = 0; i < 12; ++i) stored.push_back(make_float(i * 0.01));
  const feat::FloatFeatures query = make_float(0.005);

  std::vector<QueryResult> results;
  for (const int threads : {1, 2, 8}) {
    FloatFeatureIndex::Params params;
    params.rescore_threads = threads;
    FloatFeatureIndex index(params);
    for (const auto& f : stored) index.insert(f);
    results.push_back(index.query(query));
  }
  expect_same_result(results[1], results[0]);
  expect_same_result(results[2], results[0]);
  EXPECT_FALSE(results[0].hits.empty());
}

TEST(ParallelRescore, EqualSimilaritiesRankByAscendingId) {
  util::Rng rng(31);
  // Four identical stored images: every hit ties at the same similarity,
  // so the ranking must fall back to ascending ImageId.
  std::vector<feat::Descriptor256> base;
  for (int i = 0; i < 20; ++i) base.push_back(random_descriptor(rng));
  feat::BinaryFeatures same;
  same.descriptors = base;
  same.keypoints.resize(base.size());

  FeatureIndexParams params;
  params.rescore_threads = 1;
  FeatureIndex index(params);
  for (int i = 0; i < 4; ++i) index.insert(same);
  const QueryResult result = index.query_exact(same);
  ASSERT_EQ(result.hits.size(), 4u);
  for (std::size_t i = 0; i < result.hits.size(); ++i) {
    EXPECT_EQ(result.hits[i].id, static_cast<ImageId>(i));
    EXPECT_DOUBLE_EQ(result.hits[i].similarity, 1.0);
  }
  EXPECT_EQ(result.best_id, 0u);
}

TEST(ParallelRescore, RescoreBatchMatchesSerialRescore) {
  util::Rng rng(909);
  std::vector<feat::Descriptor256> base;
  for (int i = 0; i < 30; ++i) base.push_back(random_descriptor(rng));
  std::vector<feat::BinaryFeatures> stored;
  for (int i = 0; i < 20; ++i) {
    stored.push_back(features_near(base, 30, 6 + i, rng));
  }
  std::vector<feat::BinaryFeatures> queries;
  for (int q = 0; q < 5; ++q) {
    queries.push_back(features_near(base, 30, 4 + 3 * q, rng));
  }

  for (const int threads : {1, 4}) {
    FeatureIndexParams params;
    params.rescore_threads = threads;
    FeatureIndex index(params);
    for (const auto& f : stored) index.insert(f);

    // Overlapping candidate lists of different lengths (including one
    // empty), so the by-image grouping packs shared candidates once and
    // the per-query assembly still walks each query's own list.
    std::vector<const feat::BinaryFeatures*> query_ptrs;
    std::vector<std::vector<ImageId>> candidates;
    std::vector<int> top_k;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      query_ptrs.push_back(&queries[q]);
      std::vector<ImageId> list;
      for (std::size_t i = q; i < stored.size(); i += q + 1) {
        list.push_back(static_cast<ImageId>(i));
      }
      if (q == 3) list.clear();
      candidates.push_back(std::move(list));
      top_k.push_back(1 + static_cast<int>(q));
    }

    const std::vector<QueryResult> batched =
        index.rescore_batch(query_ptrs, candidates, top_k);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const QueryResult serial =
          index.rescore(queries[q], candidates[q], top_k[q]);
      expect_same_result(batched[q], serial);
    }
  }
}

TEST(ParallelRescore, RescoreTimerVisibleInMetrics) {
  util::Rng rng(64);
  feat::BinaryFeatures f;
  for (int i = 0; i < 10; ++i) {
    f.descriptors.push_back(random_descriptor(rng));
    f.keypoints.emplace_back();
  }
  FeatureIndex index;
  index.insert(f);

  obs::MetricsRegistry::global().reset();
  obs::set_enabled(true);
  index.query(f);
  obs::set_enabled(false);
  const auto snap = obs::MetricsRegistry::global().snapshot();
  obs::MetricsRegistry::global().reset();
  ASSERT_TRUE(snap.histograms.count("cloud.query.rescore.seconds"));
  EXPECT_GE(snap.histograms.at("cloud.query.rescore.seconds").count, 1u);
}

}  // namespace
}  // namespace bees::idx
