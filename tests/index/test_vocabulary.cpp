#include "index/vocabulary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "util/rng.hpp"

namespace bees::idx {
namespace {

feat::Descriptor256 random_descriptor(util::Rng& rng) {
  feat::Descriptor256 d;
  for (auto& lane : d.bits) lane = rng.next_u64();
  return d;
}

feat::Descriptor256 flip_bits(feat::Descriptor256 d, int count,
                              util::Rng& rng) {
  for (int i = 0; i < count; ++i) {
    const int bit = static_cast<int>(rng.index(256));
    d.bits[static_cast<std::size_t>(bit >> 6)] ^= std::uint64_t{1}
                                                  << (bit & 63);
  }
  return d;
}

std::vector<feat::Descriptor256> clustered_sample(int clusters, int per,
                                                  util::Rng& rng) {
  std::vector<feat::Descriptor256> out;
  for (int c = 0; c < clusters; ++c) {
    const feat::Descriptor256 center = random_descriptor(rng);
    for (int i = 0; i < per; ++i) out.push_back(flip_bits(center, 12, rng));
  }
  return out;
}

TEST(VocabularyTree, RejectsBadInput) {
  EXPECT_THROW(VocabularyTree::train({}, {}), std::invalid_argument);
  util::Rng rng(1);
  const auto sample = clustered_sample(2, 5, rng);
  VocabularyParams p;
  p.branching = 1;
  EXPECT_THROW(VocabularyTree::train(sample, p), std::invalid_argument);
  p = {};
  p.depth = 0;
  EXPECT_THROW(VocabularyTree::train(sample, p), std::invalid_argument);
}

TEST(VocabularyTree, LeafCountBounded) {
  util::Rng rng(2);
  const auto sample = clustered_sample(16, 20, rng);
  VocabularyParams p;
  p.branching = 4;
  p.depth = 2;
  const VocabularyTree tree = VocabularyTree::train(sample, p);
  EXPECT_GT(tree.leaf_count(), 1u);
  EXPECT_LE(tree.leaf_count(), 16u);  // at most branching^depth leaves
}

TEST(VocabularyTree, QuantizationIsDeterministic) {
  util::Rng rng(3);
  const auto sample = clustered_sample(8, 15, rng);
  const VocabularyTree tree = VocabularyTree::train(sample, {});
  for (int i = 0; i < 20; ++i) {
    const feat::Descriptor256 d = random_descriptor(rng);
    EXPECT_EQ(tree.quantize(d), tree.quantize(d));
  }
}

TEST(VocabularyTree, NearbyDescriptorsShareWords) {
  // Descriptors from one tight cluster should mostly land in one leaf;
  // random descriptors should spread over many leaves.
  util::Rng rng(4);
  const auto sample = clustered_sample(12, 30, rng);
  VocabularyParams p;
  p.branching = 6;
  p.depth = 2;
  const VocabularyTree tree = VocabularyTree::train(sample, p);

  const feat::Descriptor256 center = random_descriptor(rng);
  std::set<std::uint32_t> cluster_words, random_words;
  for (int i = 0; i < 30; ++i) {
    cluster_words.insert(tree.quantize(flip_bits(center, 6, rng)));
    random_words.insert(tree.quantize(random_descriptor(rng)));
  }
  EXPECT_LT(cluster_words.size(), random_words.size());
  EXPECT_LE(cluster_words.size(), 4u);
}

TEST(VocabularyIndex, FindsSimilarImages) {
  // Build on real ORB descriptors: index one view per scene, query the
  // second view; the right image must come back.
  util::Rng rng(5);
  img::ViewPerturbation pert;
  std::vector<feat::BinaryFeatures> stored, queries;
  std::vector<feat::Descriptor256> training;
  for (int s = 0; s < 5; ++s) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(7700 + s), 18, 4};
    stored.push_back(feat::extract_orb(
        img::render_view(spec, 240, 180, pert, rng)));
    queries.push_back(feat::extract_orb(
        img::render_view(spec, 240, 180, pert, rng)));
    training.insert(training.end(), stored.back().descriptors.begin(),
                    stored.back().descriptors.end());
  }
  VocabularyParams p;
  p.branching = 8;
  p.depth = 2;
  VocabularyIndex index(VocabularyTree::train(training, p));
  std::vector<ImageId> ids;
  for (const auto& f : stored) ids.push_back(index.insert(f));
  int correct = 0;
  for (std::size_t s = 0; s < queries.size(); ++s) {
    const QueryResult r = index.query(queries[s]);
    correct += (r.best_id == ids[s]) ? 1 : 0;
    EXPECT_GT(r.max_similarity, 0.0);
  }
  EXPECT_GE(correct, 4);  // allow one hard view to miss
}

TEST(VocabularyIndex, IdfOfUbiquitousWordIsZero) {
  // A word present in every stored image carries no discriminative signal:
  // idf = ln((N + 1) / (1 + df)) with df == N is exactly 0 — never
  // negative, which would turn sharing a common word into a penalty.
  util::Rng rng(8);
  const auto sample = clustered_sample(6, 12, rng);
  VocabularyIndex index(VocabularyTree::train(sample, {}));
  const feat::Descriptor256 shared = random_descriptor(rng);
  const std::uint32_t shared_word = index.tree().quantize(shared);
  for (int i = 0; i < 4; ++i) {
    feat::BinaryFeatures f;
    f.descriptors.push_back(shared);  // same word lands in every image
    f.descriptors.push_back(random_descriptor(rng));
    index.insert(f);
  }
  EXPECT_DOUBLE_EQ(index.idf(shared_word), 0.0);
  // A word no stored image contains (df = 0) is maximally informative:
  // idf = ln(N + 1), the largest value the formula can produce.
  const std::uint32_t absent_word = index.tree().leaf_count() + 1000;
  EXPECT_DOUBLE_EQ(index.idf(absent_word),
                   std::log(static_cast<double>(index.image_count() + 1)));
  EXPECT_GT(index.idf(absent_word), index.idf(shared_word));
}

TEST(VocabularyIndex, EmptyCases) {
  util::Rng rng(6);
  const auto sample = clustered_sample(4, 10, rng);
  VocabularyIndex index(VocabularyTree::train(sample, {}));
  feat::BinaryFeatures q;
  EXPECT_TRUE(index.query(q).hits.empty());
  q.descriptors.push_back(random_descriptor(rng));
  EXPECT_TRUE(index.query(q).hits.empty());  // nothing stored yet
  EXPECT_EQ(index.image_count(), 0u);
}

TEST(VocabularyIndex, TopKAndRankingContract) {
  util::Rng rng(7);
  img::ViewPerturbation pert;
  std::vector<feat::Descriptor256> training;
  std::vector<feat::BinaryFeatures> all;
  for (int s = 0; s < 8; ++s) {
    const img::SceneSpec spec{static_cast<std::uint64_t>(8800 + s), 18, 4};
    all.push_back(feat::extract_orb(
        img::render_view(spec, 200, 150, pert, rng)));
    training.insert(training.end(), all.back().descriptors.begin(),
                    all.back().descriptors.end());
  }
  VocabularyIndex index(VocabularyTree::train(training, {}));
  for (const auto& f : all) index.insert(f);
  const QueryResult r = index.query(all[0], 3);
  EXPECT_LE(r.hits.size(), 3u);
  for (std::size_t i = 1; i < r.hits.size(); ++i) {
    EXPECT_GE(r.hits[i - 1].similarity, r.hits[i].similarity);
  }
  // Self-query: the image itself is in the index with similarity 1.
  EXPECT_DOUBLE_EQ(r.max_similarity, 1.0);
}

}  // namespace
}  // namespace bees::idx
