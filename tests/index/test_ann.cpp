// The ANN candidate-pruning front end: budget sizing, row purity (the
// shard-invariance precondition), snapshot-row round trips, and agreement
// of the pruned query path with the exhaustive scan on matching views.
#include "index/ann.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "index/feature_index.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace bees::idx {
namespace {

feat::BinaryFeatures make_view(std::uint64_t scene, std::uint64_t salt) {
  util::Rng rng(scene * 1000 + salt);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{scene, 18, 4}, 200, 150, pert, rng));
}

AnnParams small_ann() {
  AnnParams ann;
  ann.enabled = true;
  ann.vocabulary.branching = 4;
  ann.vocabulary.depth = 2;
  ann.vocabulary_sample = 256;
  return ann;
}

TEST(AnnShortlistBudget, GrowsWithRecallTarget) {
  // floor / (1 - r): the default 0.95 target widens 16 to 320.
  EXPECT_EQ(ann_shortlist_budget(16, 0.95), 320u);
  EXPECT_EQ(ann_shortlist_budget(16, 0.0), 16u);
  EXPECT_EQ(ann_shortlist_budget(16, 0.5), 32u);
  // Targets are clamped at 0.995 so the budget cannot blow up unboundedly.
  EXPECT_EQ(ann_shortlist_budget(16, 1.0), ann_shortlist_budget(16, 0.995));
  EXPECT_EQ(ann_shortlist_budget(16, 0.995), 3200u);
  // Degenerate max_candidates still yields at least one candidate.
  EXPECT_EQ(ann_shortlist_budget(0, 0.0), 1u);
}

TEST(AnnShortlistBudget, CandidateBudgetDispatchesOnAnnFlag) {
  FeatureIndexParams params;
  EXPECT_EQ(candidate_budget(params, 0.95), 16u);  // exact path: top-k floor
  params.ann.enabled = true;
  EXPECT_EQ(candidate_budget(params, 0.95),
            ann_shortlist_budget(params.max_candidates, 0.95));
}

TEST(AnnFrontEnd, RowsArePureFunctionsOfParams) {
  // Two independently constructed front ends must assign identical rows:
  // the tree is trained from the seed, never from inserted data.  This is
  // the property that makes per-shard scores merge shard-invariantly.
  AnnFrontEnd a(small_ann());
  AnnFrontEnd b(small_ann());
  const auto features = make_view(7, 0);
  const AnnFrontEnd::Row ra = a.make_row(features.descriptors);
  const AnnFrontEnd::Row rb = b.make_row(features.descriptors);
  EXPECT_EQ(ra.band_signatures, rb.band_signatures);
  EXPECT_EQ(ra.words, rb.words);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  // Inserting unrelated images into `a` must not change what it computes
  // for the same query.
  a.insert(0, make_view(50, 0).descriptors);
  a.insert(1, make_view(51, 0).descriptors);
  const AnnFrontEnd::Row after = a.make_row(features.descriptors);
  EXPECT_EQ(after.band_signatures, ra.band_signatures);
  EXPECT_EQ(after.words, ra.words);
}

TEST(AnnFrontEnd, RowRoundTripsThroughRowOf) {
  AnnFrontEnd ann(small_ann());
  const auto f0 = make_view(3, 0);
  ann.insert(0, f0.descriptors);
  ann.insert(1, {});  // empty descriptor set
  const AnnFrontEnd::Row r0 = ann.row_of(0);
  EXPECT_EQ(r0.band_signatures, ann.make_row(f0.descriptors).band_signatures);
  EXPECT_EQ(r0.words, ann.make_row(f0.descriptors).words);
  // Empty images round-trip as the canonical empty row.
  const AnnFrontEnd::Row r1 = ann.row_of(1);
  EXPECT_TRUE(r1.band_signatures.empty());
  EXPECT_TRUE(r1.words.empty());

  // A restored front end built from exported rows scores like the original.
  AnnFrontEnd restored(small_ann());
  restored.insert_row(0, r0);
  restored.insert_row(1, r1);
  std::unordered_map<ImageId, std::uint32_t> live, reloaded;
  ann.collect(f0.descriptors, live);
  restored.collect(f0.descriptors, reloaded);
  EXPECT_EQ(live, reloaded);
  EXPECT_FALSE(live.empty());
}

TEST(AnnFrontEnd, InsertRowRejectsMalformedRows) {
  AnnFrontEnd ann(small_ann());
  AnnFrontEnd::Row bad_bands;
  bad_bands.band_signatures = {1, 2, 3};  // params say 8 bands
  EXPECT_THROW(ann.insert_row(0, bad_bands), util::DecodeError);
  AnnFrontEnd::Row bad_words;
  bad_words.words = {5, 2};  // not sorted
  EXPECT_THROW(ann.insert_row(0, bad_words), util::DecodeError);
  ann.insert(0, make_view(1, 0).descriptors);
  EXPECT_THROW(ann.insert(2, make_view(2, 0).descriptors),
               std::invalid_argument);  // out of order
}

TEST(AnnFrontEnd, CollectSurfacesTheMatchingScene) {
  AnnFrontEnd ann(small_ann());
  for (std::uint64_t s = 0; s < 8; ++s) {
    ann.insert(static_cast<ImageId>(s), make_view(20 + s, 0).descriptors);
  }
  // Querying with the stored view itself must score image 3 strictly
  // highest: every band collides (band_weight * bands) and every word is
  // shared.  (The front end only shortlists — rank-1 on *perturbed* views
  // is the rescore stage's job, covered by PrunedQueryAgreesWithExactScan.)
  std::unordered_map<ImageId, std::uint32_t> scores;
  ann.collect(make_view(23, 0).descriptors, scores);
  ASSERT_TRUE(scores.count(3));
  for (const auto& [id, score] : scores) {
    if (id != 3) EXPECT_LT(score, scores[3]) << "image " << id;
  }
  // A perturbed second view of the scene still reaches its image through
  // the inverted file: the shortlist contains it, which is all the recall
  // argument needs.
  std::unordered_map<ImageId, std::uint32_t> perturbed;
  ann.collect(make_view(23, 1).descriptors, perturbed);
  EXPECT_TRUE(perturbed.count(3));
}

TEST(FeatureIndexAnn, PrunedQueryAgreesWithExactScan) {
  FeatureIndexParams params;
  params.ann = small_ann();
  FeatureIndex index(params);
  std::vector<ImageId> ids;
  for (std::uint64_t s = 0; s < 10; ++s) {
    ids.push_back(index.insert(make_view(40 + s, 0)));
  }
  for (std::uint64_t s = 0; s < 10; ++s) {
    const auto q = make_view(40 + s, 1);
    const QueryResult pruned = index.query(q);
    const QueryResult exact = index.query_exact(q);
    EXPECT_EQ(pruned.best_id, exact.best_id) << "scene " << s;
    EXPECT_NEAR(pruned.max_similarity, exact.max_similarity, 1e-12);
    // The point of the front end: strictly fewer exact rescores.
    EXPECT_LE(pruned.candidates_checked, exact.candidates_checked);
  }
}

TEST(FeatureIndexAnn, RecallTargetSizesTheShortlist) {
  FeatureIndexParams params;
  params.ann = small_ann();
  params.max_candidates = 2;
  FeatureIndex index(params);
  for (std::uint64_t s = 0; s < 30; ++s) index.insert(make_view(60 + s, 0));
  const auto q = make_view(60, 1);
  QueryOptions low;
  low.recall_target = 0.0;
  QueryOptions high;
  high.recall_target = 0.9;
  const QueryResult narrow = index.query(q, low);
  const QueryResult wide = index.query(q, high);
  EXPECT_LE(narrow.candidates_checked, candidate_budget(params, 0.0));
  EXPECT_LE(wide.candidates_checked, candidate_budget(params, 0.9));
  EXPECT_LE(narrow.candidates_checked, wide.candidates_checked);
  EXPECT_EQ(index.candidates(q, 0.9).size(), wide.candidates_checked);
}

TEST(FeatureIndexAnn, WorksWithoutDescriptorLsh) {
  // The million-image configuration: descriptor LSH off, ANN only.
  FeatureIndexParams params;
  params.ann = small_ann();
  params.enable_descriptor_lsh = false;
  FeatureIndex index(params);
  std::vector<ImageId> ids;
  for (std::uint64_t s = 0; s < 6; ++s) {
    ids.push_back(index.insert(make_view(80 + s, 0)));
  }
  EXPECT_GT(index.descriptor_count(), 0u);  // counter survives LSH being off
  for (std::uint64_t s = 0; s < 6; ++s) {
    const QueryResult r = index.query(make_view(80 + s, 1));
    EXPECT_EQ(r.best_id, ids[s]) << "scene " << s;
  }
}

TEST(FeatureIndexAnn, ShardedScoresMergeToSingleIndexShortlist) {
  // Split the corpus across two indices (even/odd ids) and check that the
  // merged per-shard candidate lists reproduce the single-index shortlist
  // — the exact merge the serving cluster performs.
  FeatureIndexParams params;
  params.ann = small_ann();
  FeatureIndex whole(params), even(params), odd(params);
  std::vector<std::pair<int, ImageId>> owner;  // gid -> (shard, local)
  for (std::uint64_t s = 0; s < 12; ++s) {
    const auto f = make_view(100 + s, 0);
    whole.insert(f);
    if (s % 2 == 0) {
      owner.emplace_back(0, even.insert(f));
    } else {
      owner.emplace_back(1, odd.insert(f));
    }
  }
  const auto q = make_view(105, 1);
  const double recall = kDefaultRecallTarget;
  auto merged = even.candidates(q, recall);
  for (auto& [local, score] : merged) {
    local = static_cast<ImageId>(local * 2);  // shard-local -> global id
  }
  for (const auto& [local, score] : odd.candidates(q, recall)) {
    merged.emplace_back(static_cast<ImageId>(local * 2 + 1), score);
  }
  std::sort(merged.begin(), merged.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const std::size_t budget = candidate_budget(params, recall);
  if (merged.size() > budget) merged.resize(budget);
  EXPECT_EQ(merged, whole.candidates(q, recall));
}

}  // namespace
}  // namespace bees::idx
