#include "core/photonet.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/simulation.hpp"
#include "features/global.hpp"

namespace bees::core {
namespace {

class PhotoNetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_ = new wl::Imageset(wl::make_disaster_like(14, 3, 200, 150, 121));
    store_ = new wl::ImageStore();
  }
  static void TearDownTestSuite() {
    delete store_;
    delete set_;
    store_ = nullptr;
    set_ = nullptr;
  }

  SchemeConfig config() const {
    SchemeConfig cfg;
    cfg.image_byte_scale = 4.0;
    return cfg;
  }
  static net::Channel fixed_channel() {
    return net::Channel(net::ChannelParams::fixed(256000.0));
  }

  static wl::Imageset* set_;
  static wl::ImageStore* store_;
};

wl::Imageset* PhotoNetTest::set_ = nullptr;
wl::ImageStore* PhotoNetTest::store_ = nullptr;

TEST_F(PhotoNetTest, UploadsEverythingToEmptyServer) {
  PhotoNetScheme photonet(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const BatchReport r = photonet.upload_batch(set_->images, server, ch, bat);
  EXPECT_EQ(r.images_uploaded, 14);
  EXPECT_EQ(server.stats().images_stored, 14u);
  EXPECT_GT(r.feature_bytes, 0.0);
}

TEST_F(PhotoNetTest, DetectsRepeatUploadAsRedundant) {
  PhotoNetScheme photonet(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  photonet.upload_batch(set_->images, server, ch, bat);
  // The identical batch again: histograms match exactly, geo is absent so
  // the geo gate is skipped.
  const BatchReport r2 = photonet.upload_batch(set_->images, server, ch, bat);
  EXPECT_EQ(r2.images_uploaded, 0);
  EXPECT_EQ(r2.eliminated_cross_batch, 14);
}

TEST_F(PhotoNetTest, ExtractionIsOrdersCheaperThanMrc) {
  PhotoNetScheme photonet(*store_, config());
  MrcScheme mrc(*store_, config());
  auto extraction_energy = [&](UploadScheme& s) {
    cloud::Server server;
    net::Channel ch = fixed_channel();
    energy::Battery bat;
    return s.upload_batch(set_->images, server, ch, bat)
        .energy.extraction_j;
  };
  EXPECT_LT(extraction_energy(photonet) * 10, extraction_energy(mrc));
}

TEST_F(PhotoNetTest, FeaturePayloadIsTiny) {
  PhotoNetScheme photonet(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const BatchReport r = photonet.upload_batch(set_->images, server, ch, bat);
  // ~273 B per image versus kilobytes for descriptor sets.
  EXPECT_LT(r.feature_bytes / r.images_offered, 400.0);
}

TEST_F(PhotoNetTest, GeoGateBlocksFarMatches) {
  // Two identical-looking photos at distant locations are NOT redundant
  // under PhotoNet (different places need separate coverage).
  cloud::Server server;
  wl::ImageSpec near = set_->images[0];
  near.geo = {2.32, 48.86, true};
  const feat::ColorHistogram h =
      feat::color_histogram(store_->pixels(near));
  server.store_global(h, {1000.0, near.geo});
  EXPECT_GT(server.query_global(h, near.geo), kPhotoNetThreshold);
  const idx::GeoTag far{2.50, 48.86, true};
  EXPECT_DOUBLE_EQ(server.query_global(h, far), 0.0);
}

TEST_F(PhotoNetTest, AbortsOnDeadBattery) {
  PhotoNetScheme photonet(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat(0.01);
  const BatchReport r = photonet.upload_batch(set_->images, server, ch, bat);
  EXPECT_TRUE(r.aborted);
}

}  // namespace
}  // namespace bees::core
