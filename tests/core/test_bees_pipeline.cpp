// Stage-level tests of the BEES pipeline: the energy-aware knobs must flow
// through AFE / ARD / AIU exactly as the paper's §III laws dictate.
#include <gtest/gtest.h>

#include "core/bees.hpp"
#include "core/simulation.hpp"

namespace bees::core {
namespace {

class BeesPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_ = new wl::Imageset(wl::make_disaster_like(12, 3, 200, 150, 81));
    store_ = new wl::ImageStore();
  }
  static void TearDownTestSuite() {
    delete store_;
    delete set_;
    store_ = nullptr;
    set_ = nullptr;
  }

  SchemeConfig config() const {
    SchemeConfig cfg;
    cfg.image_byte_scale = 4.0;
    return cfg;
  }
  static net::Channel fixed_channel() {
    return net::Channel(net::ChannelParams::fixed(256000.0));
  }

  static wl::Imageset* set_;
  static wl::ImageStore* store_;
};

wl::Imageset* BeesPipelineTest::set_ = nullptr;
wl::ImageStore* BeesPipelineTest::store_ = nullptr;

TEST_F(BeesPipelineTest, FullBatteryUsesFullEnergyKnobs) {
  BeesScheme bees(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  bees.upload_batch(set_->images, server, ch, bat);
  const auto& knobs = bees.last_trace().knobs;
  EXPECT_NEAR(knobs.bitmap_compression, 0.0, 1e-9);
  EXPECT_NEAR(knobs.redundancy_threshold, 0.019, 1e-9);
  EXPECT_NEAR(knobs.resolution_compression, 0.0, 1e-9);
}

TEST_F(BeesPipelineTest, LowBatteryAppliesAdaptiveLaws) {
  BeesScheme bees(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  bat.drain(bat.capacity_j() * 0.9);  // Ebat = 10%
  bees.upload_batch(set_->images, server, ch, bat);
  const auto& knobs = bees.last_trace().knobs;
  EXPECT_NEAR(knobs.bitmap_compression, 0.4 - 0.4 * 0.1, 1e-6);
  EXPECT_NEAR(knobs.redundancy_threshold, 0.013 + 0.006 * 0.1, 1e-6);
  EXPECT_NEAR(knobs.resolution_compression, 0.8 - 0.8 * 0.1, 1e-6);
}

TEST_F(BeesPipelineTest, BeesEaIgnoresBatteryLevel) {
  BeesScheme bees_ea(*store_, config(), /*adaptive=*/false);
  EXPECT_EQ(bees_ea.name(), "BEES-EA");
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  bat.drain(bat.capacity_j() * 0.95);
  bees_ea.upload_batch(set_->images, server, ch, bat);
  const auto& knobs = bees_ea.last_trace().knobs;
  EXPECT_NEAR(knobs.bitmap_compression, 0.0, 1e-9);
  EXPECT_NEAR(knobs.resolution_compression, 0.0, 1e-9);
}

TEST_F(BeesPipelineTest, LowBatteryConsumesLessEnergyAndBytes) {
  // The whole point of EAAS: the same batch costs less at low charge.
  BeesScheme bees(*store_, config());
  auto run_at = [&](double ebat) {
    cloud::Server server;
    net::Channel ch = fixed_channel();
    energy::Battery bat;
    bat.drain(bat.capacity_j() * (1.0 - ebat));
    return bees.upload_batch(set_->images, server, ch, bat);
  };
  const BatchReport full = run_at(1.0);
  const BatchReport low = run_at(0.1);
  EXPECT_LT(low.energy.active_total(), full.energy.active_total());
  EXPECT_LT(low.image_bytes, full.image_bytes);
  EXPECT_LT(low.energy.extraction_j, full.energy.extraction_j);
}

TEST_F(BeesPipelineTest, TraceSelectionIsConsistent) {
  BeesScheme bees(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const BatchReport r = bees.upload_batch(set_->images, server, ch, bat);
  const BeesBatchTrace& trace = bees.last_trace();
  EXPECT_EQ(trace.selected.size(),
            static_cast<std::size_t>(r.images_uploaded));
  EXPECT_EQ(trace.cross_redundant.size(),
            static_cast<std::size_t>(r.eliminated_cross_batch));
  // Selected and cross-redundant sets are disjoint subsets of the batch.
  for (const auto i : trace.selected) {
    EXPECT_LT(i, set_->images.size());
    for (const auto j : trace.cross_redundant) EXPECT_NE(i, j);
  }
  // SSMM budget bounds the upload count.
  EXPECT_LE(r.images_uploaded, trace.ssmm_budget);
}

TEST_F(BeesPipelineTest, UploadedImagesEnterServerIndex) {
  BeesScheme bees(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const BatchReport r1 = bees.upload_batch(set_->images, server, ch, bat);
  EXPECT_GT(r1.images_uploaded, 0);
  // Re-uploading the identical batch: the images whose features the server
  // stored are certainly cross-batch redundant (similarity 1 with
  // themselves); the in-batch-eliminated ones may fall either to CBRD (via
  // their uploaded representative) or to IBRD again.  Nothing new should
  // reach the server.
  const BatchReport r2 = bees.upload_batch(set_->images, server, ch, bat);
  EXPECT_GE(r2.eliminated_cross_batch, r1.images_uploaded);
  EXPECT_LE(r2.images_uploaded, 2);
}

TEST_F(BeesPipelineTest, EmptyBatchIsNoOp) {
  BeesScheme bees(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const BatchReport r = bees.upload_batch({}, server, ch, bat);
  EXPECT_EQ(r.images_offered, 0);
  EXPECT_EQ(r.images_uploaded, 0);
  EXPECT_DOUBLE_EQ(bat.fraction(), 1.0);
}

TEST_F(BeesPipelineTest, FeatureBytesScaleWithCompression) {
  // AFE at low battery extracts from smaller bitmaps -> fewer keypoints ->
  // smaller feature payload.
  BeesScheme bees(*store_, config());
  auto feature_bytes_at = [&](double ebat) {
    cloud::Server server;
    net::Channel ch = fixed_channel();
    energy::Battery bat;
    bat.drain(bat.capacity_j() * (1.0 - ebat));
    return bees.upload_batch(set_->images, server, ch, bat).feature_bytes;
  };
  EXPECT_LE(feature_bytes_at(0.05), feature_bytes_at(1.0));
}

TEST_F(BeesPipelineTest, EnergyConservation) {
  // Battery drain must equal the itemized active energy (no idle inside a
  // batch).
  BeesScheme bees(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const BatchReport r = bees.upload_batch(set_->images, server, ch, bat);
  EXPECT_NEAR(bat.capacity_j() - bat.remaining_j(),
              r.energy.active_total(), 1e-6);
}

}  // namespace
}  // namespace bees::core
