// End-to-end fault-tolerance tests: schemes driven over lossy channels must
// finish batches via transport retries, charge every retransmitted byte to
// the energy/bandwidth accounting, stay deterministic under a fixed seed,
// and resume aborted batches without duplicating delivered work.
//
// This suite is also the sanitizer workload (label "sanitize"): it crosses
// every layer — codecs, features, SSMM, wire codec, dispatch, transport —
// so an asan/ubsan build of just this target sweeps the whole stack.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/bees.hpp"
#include "core/photonet.hpp"
#include "core/simulation.hpp"

namespace bees::core {
namespace {

class FaultToleranceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_ = new wl::Imageset(wl::make_disaster_like(12, 3, 200, 150, 67));
    store_ = new wl::ImageStore();
    pca_ = new feat::PcaModel(train_pca_model(*store_, *set_, 4));
  }
  static void TearDownTestSuite() {
    delete pca_;
    delete store_;
    delete set_;
    pca_ = nullptr;
    store_ = nullptr;
    set_ = nullptr;
  }

  SchemeConfig config() const {
    SchemeConfig cfg;
    cfg.image_byte_scale = 4.0;
    return cfg;
  }
  static net::Channel lossy_channel(double loss, std::uint64_t seed = 17) {
    net::ChannelParams p = net::ChannelParams::fixed(256000.0);
    p.loss_probability = loss;
    p.seed = seed;
    return net::Channel(p);
  }
  std::shared_ptr<const feat::PcaModel> pca() const {
    return {pca_, [](const feat::PcaModel*) {}};
  }

  static wl::Imageset* set_;
  static wl::ImageStore* store_;
  static feat::PcaModel* pca_;
};

wl::Imageset* FaultToleranceTest::set_ = nullptr;
wl::ImageStore* FaultToleranceTest::store_ = nullptr;
feat::PcaModel* FaultToleranceTest::pca_ = nullptr;

TEST_F(FaultToleranceTest, EverySchemeCompletesUnderTwentyPercentLoss) {
  DirectUploadScheme direct(*store_, config());
  SmartEyeScheme smarteye(*store_, config(), pca());
  MrcScheme mrc(*store_, config());
  PhotoNetScheme photonet(*store_, config());
  BeesScheme bees(*store_, config());
  UploadScheme* schemes[] = {&direct, &smarteye, &mrc, &photonet, &bees};
  int total_retries = 0;
  for (UploadScheme* s : schemes) {
    cloud::Server server;
    net::Channel ch = lossy_channel(0.2);
    energy::Battery bat;
    const BatchReport r = s->upload_batch(set_->images, server, ch, bat);
    EXPECT_FALSE(r.aborted) << s->name();
    EXPECT_EQ(r.gave_up, 0) << s->name();
    EXPECT_EQ(r.images_uploaded + r.eliminated_cross_batch +
                  r.eliminated_in_batch,
              12)
        << s->name();
    total_retries += r.retries;
  }
  // Dozens of exchanges at 20% loss: some retries are certain.
  EXPECT_GT(total_retries, 0);
}

TEST_F(FaultToleranceTest, LossDoesNotChangeWhatGetsUploaded) {
  // Retries make loss invisible to the redundancy decisions: a lossy run
  // uploads the same images and bytes as a clean one — only the retry
  // bookkeeping differs.
  auto run = [&](double loss) {
    BeesScheme bees(*store_, config());
    cloud::Server server;
    net::Channel ch = lossy_channel(loss, 29);
    energy::Battery bat;
    return bees.upload_batch(set_->images, server, ch, bat);
  };
  const BatchReport clean = run(0.0);
  const BatchReport lossy = run(0.25);
  EXPECT_FALSE(lossy.aborted);
  EXPECT_EQ(lossy.images_uploaded, clean.images_uploaded);
  EXPECT_EQ(lossy.eliminated_cross_batch, clean.eliminated_cross_batch);
  EXPECT_EQ(lossy.eliminated_in_batch, clean.eliminated_in_batch);
  EXPECT_DOUBLE_EQ(lossy.feature_bytes, clean.feature_bytes);
  EXPECT_DOUBLE_EQ(lossy.image_bytes, clean.image_bytes);
  EXPECT_GT(lossy.retries, 0);
  EXPECT_GT(lossy.retransmitted_bytes, 0.0);
  EXPECT_DOUBLE_EQ(clean.retransmitted_bytes, 0.0);
}

TEST_F(FaultToleranceTest, ZeroLossRunsHaveNoRetryArtifacts) {
  BeesScheme bees(*store_, config());
  cloud::Server server;
  net::Channel ch = lossy_channel(0.0);
  energy::Battery bat;
  const BatchReport r = bees.upload_batch(set_->images, server, ch, bat);
  EXPECT_EQ(r.retries, 0);
  EXPECT_EQ(r.gave_up, 0);
  EXPECT_DOUBLE_EQ(r.retransmitted_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.retransmit_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.backoff_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.energy.retransmit_tx_j, 0.0);
}

TEST_F(FaultToleranceTest, SameSeedLossyRunsAreIdentical) {
  auto run = [&] {
    BeesScheme bees(*store_, config());
    cloud::Server server;
    net::Channel ch = lossy_channel(0.3, 41);
    energy::Battery bat;
    return bees.upload_batch(set_->images, server, ch, bat);
  };
  const BatchReport a = run();
  const BatchReport b = run();
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.images_uploaded, b.images_uploaded);
  EXPECT_DOUBLE_EQ(a.retransmitted_bytes, b.retransmitted_bytes);
  EXPECT_DOUBLE_EQ(a.retransmit_seconds, b.retransmit_seconds);
  EXPECT_DOUBLE_EQ(a.backoff_seconds, b.backoff_seconds);
  EXPECT_DOUBLE_EQ(a.feature_tx_seconds, b.feature_tx_seconds);
  EXPECT_DOUBLE_EQ(a.image_tx_seconds, b.image_tx_seconds);
  EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
  EXPECT_DOUBLE_EQ(a.busy_seconds(), b.busy_seconds());
}

TEST_F(FaultToleranceTest, RetransmittedAirtimeIsChargedToEnergy) {
  DirectUploadScheme direct(*store_, config());
  cloud::Server server;
  net::Channel ch = lossy_channel(0.5, 13);
  energy::Battery bat;
  const BatchReport r = direct.upload_batch(set_->images, server, ch, bat);
  ASSERT_FALSE(r.aborted);
  ASSERT_GT(r.retries, 0);
  EXPECT_GT(r.retransmitted_bytes, 0.0);
  // Wasted airtime is its own energy bucket, burned at TX power, part of
  // the active total and drained from the battery.
  EXPECT_NEAR(r.energy.retransmit_tx_j, r.retransmit_seconds * 1.2, 1e-9);
  EXPECT_GT(r.energy.active_total(),
            r.energy.image_tx_j + r.energy.feature_tx_j);
  EXPECT_NEAR(bat.capacity_j() - bat.remaining_j(), r.energy.total(), 1e-6);
  // Delivered-byte accounting stays clean: the server saw exactly the
  // payload bytes, not the retransmissions.
  EXPECT_DOUBLE_EQ(server.stats().image_bytes_received, r.image_bytes);
}

TEST_F(FaultToleranceTest, BatteryDeathResumesWithoutDuplicateUploads) {
  BeesScheme bees(*store_, config());
  cloud::Server server;
  net::Channel ch = lossy_channel(0.1, 53);

  // Find a budget that dies mid-batch: 60% of a full run's draw.
  double full_cost;
  {
    BeesScheme probe(*store_, config());
    cloud::Server s2;
    net::Channel c2 = lossy_channel(0.1, 53);
    energy::Battery b2;
    full_cost = probe.upload_batch(set_->images, s2, c2, b2).energy.total();
  }
  energy::Battery small(full_cost * 0.6);
  const BatchReport first = bees.upload_batch(set_->images, server, ch, small);
  ASSERT_TRUE(first.aborted);
  EXPECT_TRUE(bees.resumable());
  EXPECT_EQ(first.images_offered, 12);
  const auto stored_after_abort = server.stats().images_stored;
  EXPECT_EQ(stored_after_abort, static_cast<std::size_t>(first.images_uploaded));

  // Recharge and call again with the same batch: the scheme must pick up
  // where it stopped, not restart.
  energy::Battery recharged;
  const BatchReport second =
      bees.upload_batch(set_->images, server, ch, recharged);
  EXPECT_FALSE(second.aborted);
  EXPECT_FALSE(bees.resumable());
  EXPECT_EQ(second.images_offered, 0);  // offered already counted once

  BatchReport total = first;
  total += second;
  EXPECT_EQ(total.images_offered, 12);
  EXPECT_EQ(total.images_uploaded + total.eliminated_cross_batch +
                total.eliminated_in_batch,
            12);
  // Every stored image was stored exactly once.
  EXPECT_EQ(server.stats().images_stored,
            static_cast<std::size_t>(total.images_uploaded));
}

TEST_F(FaultToleranceTest, RetryBudgetExhaustionAbortsAndResumes) {
  SchemeConfig cfg = config();
  cfg.retry.max_attempts = 2;
  DirectUploadScheme direct(*store_, cfg);
  cloud::Server server;

  net::Channel dead = lossy_channel(1.0);
  energy::Battery bat;
  const BatchReport first = direct.upload_batch(set_->images, server, dead,
                                                bat);
  EXPECT_TRUE(first.aborted);
  EXPECT_GT(first.gave_up, 0);
  EXPECT_EQ(first.images_uploaded, 0);
  EXPECT_EQ(server.stats().images_stored, 0u);
  EXPECT_GT(first.retransmitted_bytes, 0.0);

  // The link comes back: the same batch resumes and completes.
  net::Channel healthy = lossy_channel(0.0);
  const BatchReport second =
      direct.upload_batch(set_->images, server, healthy, bat);
  EXPECT_FALSE(second.aborted);
  EXPECT_EQ(second.images_offered, 0);
  EXPECT_EQ(second.images_uploaded, 12);
  EXPECT_EQ(server.stats().images_stored, 12u);
}

TEST_F(FaultToleranceTest, NewBatchAfterAbortDropsStaleProgress) {
  SchemeConfig cfg = config();
  cfg.retry.max_attempts = 2;
  DirectUploadScheme direct(*store_, cfg);
  cloud::Server server;
  net::Channel dead = lossy_channel(1.0);
  energy::Battery bat;
  const std::vector<wl::ImageSpec> half(set_->images.begin(),
                                        set_->images.begin() + 6);
  const BatchReport aborted = direct.upload_batch(half, server, dead, bat);
  ASSERT_TRUE(aborted.aborted);

  // A different batch arrives before the old one resumes: it must be
  // treated as fresh (offered counted, progress rebuilt).
  net::Channel healthy = lossy_channel(0.0);
  const BatchReport fresh =
      direct.upload_batch(set_->images, server, healthy, bat);
  EXPECT_FALSE(fresh.aborted);
  EXPECT_EQ(fresh.images_offered, 12);
  EXPECT_EQ(fresh.images_uploaded, 12);
}

TEST_F(FaultToleranceTest, SchemesSurviveOutagesWithTimeouts) {
  SchemeConfig cfg = config();
  cfg.retry.timeout_s = 30.0;
  BeesScheme bees(*store_, cfg);
  cloud::Server server;
  net::ChannelParams p = net::ChannelParams::fixed(256000.0);
  p.loss_probability = 0.1;
  p.outage_probability = 0.05;
  p.outage_duration_s = 4.0;
  p.seed = 99;
  net::Channel ch(p);
  energy::Battery bat;
  const BatchReport r = bees.upload_batch(set_->images, server, ch, bat);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.gave_up, 0);
  EXPECT_EQ(r.images_uploaded + r.eliminated_cross_batch +
                r.eliminated_in_batch,
            12);
}

}  // namespace
}  // namespace bees::core
