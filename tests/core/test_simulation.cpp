#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/bees.hpp"

namespace bees::core {
namespace {

class SimulationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // 6 groups of 8 geotagged images with location-level redundancy.
    set_ = new wl::Imageset(
        wl::make_paris_like(48, 10, wl::GeoBox{}, 160, 120, 91));
    store_ = new wl::ImageStore();
  }
  static void TearDownTestSuite() {
    delete store_;
    delete set_;
    store_ = nullptr;
    set_ = nullptr;
  }

  SchemeConfig config() const {
    SchemeConfig cfg;
    cfg.image_byte_scale = 8.0;
    return cfg;
  }

  static wl::Imageset* set_;
  static wl::ImageStore* store_;
};

wl::Imageset* SimulationTest::set_ = nullptr;
wl::ImageStore* SimulationTest::store_ = nullptr;

TEST_F(SimulationTest, SliceGroupsPartitionsTheSet) {
  const auto groups = slice_groups(*set_, 8);
  EXPECT_EQ(groups.size(), 6u);
  std::size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 48u);
  const auto ragged = slice_groups(*set_, 10);
  EXPECT_EQ(ragged.size(), 5u);
  EXPECT_EQ(ragged.back().size(), 8u);
  EXPECT_TRUE(slice_groups(*set_, 0).empty());
}

TEST_F(SimulationTest, LifetimeCurveIsMonotoneDecreasing) {
  DirectUploadScheme direct(*store_, config());
  cloud::Server server;
  net::Channel ch(net::ChannelParams::fixed(256000.0));
  energy::Battery bat(200.0);  // small battery so it dies within the run
  const LifetimeResult r = run_lifetime(direct, slice_groups(*set_, 8),
                                        60.0, server, ch, bat);
  ASSERT_GE(r.curve.size(), 2u);
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_LE(r.curve[i].battery_fraction, r.curve[i - 1].battery_fraction);
    EXPECT_GE(r.curve[i].hours, r.curve[i - 1].hours);
  }
  EXPECT_TRUE(r.battery_died);
  EXPECT_GT(r.lifetime_hours, 0.0);
}

TEST_F(SimulationTest, BeesOutlivesDirectUpload) {
  const auto groups = slice_groups(*set_, 8);
  auto lifetime_of = [&](UploadScheme& s) {
    cloud::Server server;
    net::Channel ch(net::ChannelParams::fixed(256000.0));
    energy::Battery bat(500.0);
    return run_lifetime(s, groups, 60.0, server, ch, bat);
  };
  DirectUploadScheme direct(*store_, config());
  BeesScheme bees(*store_, config());
  const LifetimeResult ld = lifetime_of(direct);
  const LifetimeResult lb = lifetime_of(bees);
  // Either BEES survives the whole run with charge left, or it lasted
  // strictly longer.
  if (lb.battery_died) {
    EXPECT_GT(lb.lifetime_hours, ld.lifetime_hours);
  } else {
    EXPECT_EQ(lb.groups_uploaded, static_cast<int>(groups.size()));
  }
  EXPECT_GE(lb.groups_uploaded, ld.groups_uploaded);
}

TEST_F(SimulationTest, IdleDrainAppliesPerInterval) {
  // With an empty workload nothing is uploaded, but each interval still
  // costs idle/screen energy... no groups means no intervals, so craft one
  // empty group.
  DirectUploadScheme direct(*store_, config());
  cloud::Server server;
  net::Channel ch(net::ChannelParams::fixed(256000.0));
  energy::Battery bat(1000.0);
  std::vector<std::vector<wl::ImageSpec>> groups{{}, {}};
  const LifetimeResult r = run_lifetime(direct, groups, 100.0, server, ch, bat);
  // Two intervals of 100 s at idle_power 0.8 W = 160 J.
  EXPECT_NEAR(bat.remaining_j(), 1000.0 - 160.0, 1e-6);
  EXPECT_EQ(r.groups_uploaded, 2);
  EXPECT_FALSE(r.battery_died);
}

TEST_F(SimulationTest, SeedRedundancyReturnsRequestedFraction) {
  cloud::Server server;
  const auto idx = seed_cross_batch_redundancy(set_->images, 0.25, *store_,
                                               server, nullptr, 3);
  EXPECT_EQ(idx.size(), 12u);
  EXPECT_EQ(server.binary_index().image_count(), 12u);
  // Indices are unique and in range.
  for (std::size_t i = 1; i < idx.size(); ++i) EXPECT_LT(idx[i - 1], idx[i]);
  EXPECT_LT(idx.back(), set_->images.size());
}

TEST_F(SimulationTest, SeedRedundancyZeroAndFull) {
  cloud::Server server;
  EXPECT_TRUE(seed_cross_batch_redundancy(set_->images, 0.0, *store_, server,
                                          nullptr, 3)
                  .empty());
  const auto all = seed_cross_batch_redundancy(set_->images, 1.0, *store_,
                                               server, nullptr, 3);
  EXPECT_EQ(all.size(), set_->images.size());
}

TEST_F(SimulationTest, CoverageRunsToCompletion) {
  cloud::Server server;
  BeesScheme bees(*store_, config());
  std::vector<CoveragePhone> phones;
  for (int p = 0; p < 2; ++p) {
    CoveragePhone phone;
    phone.scheme = &bees;
    phone.channel = net::Channel(net::ChannelParams::fixed(256000.0));
    phone.battery = energy::Battery(2000.0);
    phone.groups = slice_groups(*set_, 12);
    phones.push_back(std::move(phone));
  }
  const CoverageResult r = run_coverage(phones, 60.0, server);
  EXPECT_GT(r.images_received, 0u);
  EXPECT_GT(r.unique_locations, 0u);
  EXPECT_LE(r.unique_locations, 10u);  // at most the location count
  EXPECT_GT(r.hours_elapsed, 0.0);
}

TEST_F(SimulationTest, CoverageBeatsDirectOnUniqueLocations) {
  // The Fig. 12 story in miniature: under the same small battery, BEES
  // spends energy on *new* locations instead of duplicates.
  auto coverage_of = [&](UploadScheme& s) {
    cloud::Server server;
    std::vector<CoveragePhone> phones(1);
    phones[0].scheme = &s;
    phones[0].channel = net::Channel(net::ChannelParams::fixed(256000.0));
    phones[0].battery = energy::Battery(600.0);
    phones[0].groups = slice_groups(*set_, 8);
    return run_coverage(phones, 60.0, server);
  };
  DirectUploadScheme direct(*store_, config());
  BeesScheme bees(*store_, config());
  const CoverageResult cd = coverage_of(direct);
  const CoverageResult cb = coverage_of(bees);
  // At this tiny scale the effect is statistical; allow one location of
  // slack (the full-size comparison is bench/fig12_coverage).
  EXPECT_GE(cb.unique_locations + 1, cd.unique_locations);
}

}  // namespace
}  // namespace bees::core
