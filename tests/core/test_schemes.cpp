#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/bees.hpp"
#include "core/simulation.hpp"

namespace bees::core {
namespace {

/// Shared workload and store for the scheme integration tests: a 16-image
/// disaster-like batch with 4 in-batch similar images, at reduced size for
/// test speed.  Extraction results are cached across all tests in the
/// suite.
class SchemeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_ = new wl::Imageset(wl::make_disaster_like(16, 4, 200, 150, 61));
    store_ = new wl::ImageStore();
    pca_ = new feat::PcaModel(train_pca_model(*store_, *set_, 4));
  }
  static void TearDownTestSuite() {
    delete pca_;
    delete store_;
    delete set_;
    pca_ = nullptr;
    store_ = nullptr;
    set_ = nullptr;
  }

  SchemeConfig config() const {
    SchemeConfig cfg;
    cfg.image_byte_scale = 4.0;
    return cfg;
  }
  static net::Channel fixed_channel() {
    return net::Channel(net::ChannelParams::fixed(256000.0));
  }

  static wl::Imageset* set_;
  static wl::ImageStore* store_;
  static feat::PcaModel* pca_;
};

wl::Imageset* SchemeTest::set_ = nullptr;
wl::ImageStore* SchemeTest::store_ = nullptr;
feat::PcaModel* SchemeTest::pca_ = nullptr;

TEST_F(SchemeTest, DirectUploadsEverything) {
  DirectUploadScheme direct(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const BatchReport r = direct.upload_batch(set_->images, server, ch, bat);
  EXPECT_EQ(r.images_uploaded, 16);
  EXPECT_EQ(r.eliminated_cross_batch, 0);
  EXPECT_EQ(r.eliminated_in_batch, 0);
  EXPECT_DOUBLE_EQ(r.feature_bytes, 0.0);
  EXPECT_GT(r.image_bytes, 0.0);
  EXPECT_EQ(server.stats().images_stored, 16u);
  // Energy was drained from the battery, itemized as image TX only.
  EXPECT_NEAR(bat.capacity_j() - bat.remaining_j(), r.energy.total(), 1e-6);
  EXPECT_DOUBLE_EQ(r.energy.extraction_j, 0.0);
}

TEST_F(SchemeTest, MrcDetectsSeededCrossBatchRedundancy) {
  MrcScheme mrc(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const auto seeded = seed_cross_batch_redundancy(set_->images, 0.5, *store_,
                                                  server, nullptr, 71);
  const BatchReport r = mrc.upload_batch(set_->images, server, ch, bat);
  EXPECT_GE(r.eliminated_cross_batch, static_cast<int>(seeded.size()));
  EXPECT_EQ(r.eliminated_in_batch, 0);  // MRC cannot see in-batch redundancy
  EXPECT_GT(r.feature_bytes, 0.0);
  EXPECT_GT(r.rx_bytes, 0.0);  // thumbnail feedback
}

TEST_F(SchemeTest, SmartEyeDetectsSeededCrossBatchRedundancy) {
  SmartEyeScheme smarteye(*store_, config(),
                          std::shared_ptr<const feat::PcaModel>(
                              pca_, [](const feat::PcaModel*) {}));
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const auto seeded = seed_cross_batch_redundancy(set_->images, 0.25, *store_,
                                                  server, pca_, 73);
  const BatchReport r = smarteye.upload_batch(set_->images, server, ch, bat);
  EXPECT_GE(r.eliminated_cross_batch, static_cast<int>(seeded.size()) - 1);
  EXPECT_GT(r.energy.extraction_j, 0.0);
  EXPECT_EQ(r.rx_bytes, 0.0);  // no thumbnail feedback in SmartEye
}

TEST_F(SchemeTest, BeesEliminatesInBatchRedundancy) {
  BeesScheme bees(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const BatchReport r = bees.upload_batch(set_->images, server, ch, bat);
  // The workload has 4 in-batch similar images and nothing on the server.
  // A couple of extra merges are legitimate: the paper's own similarity
  // distribution has a false-positive tail at these thresholds (Fig. 4).
  EXPECT_EQ(r.eliminated_cross_batch, 0);
  EXPECT_GE(r.eliminated_in_batch, 3);
  EXPECT_LE(r.eliminated_in_batch, 9);
  EXPECT_EQ(r.images_uploaded + r.eliminated_in_batch, 16);
  EXPECT_GE(r.images_uploaded, 7);
}

TEST_F(SchemeTest, BeesUsesFarFewerBytesThanBaselines) {
  auto run = [&](UploadScheme& s) {
    cloud::Server server;
    net::Channel ch = fixed_channel();
    energy::Battery bat;
    const BatchReport r = s.upload_batch(set_->images, server, ch, bat);
    return r.image_bytes + r.feature_bytes + r.rx_bytes;
  };
  DirectUploadScheme direct(*store_, config());
  MrcScheme mrc(*store_, config());
  BeesScheme bees(*store_, config());
  const double direct_bytes = run(direct);
  const double mrc_bytes = run(mrc);
  const double bees_bytes = run(bees);
  // With no server-side redundancy, MRC pays the feature overhead on top
  // of everything Direct pays.
  EXPECT_GT(mrc_bytes, direct_bytes);
  // BEES compresses and drops in-batch similars: well under half.
  EXPECT_LT(bees_bytes, direct_bytes * 0.5);
}

TEST_F(SchemeTest, EnergyOrderingMatchesPaperAtZeroRedundancy) {
  // Paper §IV-B3: "in the worst case with no cross-batch redundancy, BEES
  // also obtains 67.6% energy saving while SmartEye and MRC consume more
  // energy than Direct Upload."
  auto active_energy = [&](UploadScheme& s) {
    cloud::Server server;
    net::Channel ch = fixed_channel();
    energy::Battery bat;
    return s.upload_batch(set_->images, server, ch, bat)
        .energy.active_total();
  };
  DirectUploadScheme direct(*store_, config());
  MrcScheme mrc(*store_, config());
  BeesScheme bees(*store_, config());
  const double e_direct = active_energy(direct);
  const double e_mrc = active_energy(mrc);
  const double e_bees = active_energy(bees);
  EXPECT_GT(e_mrc, e_direct);
  EXPECT_LT(e_bees, e_direct * 0.55);
}

TEST_F(SchemeTest, SchemesAbortWhenBatteryDies) {
  DirectUploadScheme direct(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat(1.0);  // one joule: dies mid-batch
  const BatchReport r = direct.upload_batch(set_->images, server, ch, bat);
  EXPECT_TRUE(r.aborted);
  EXPECT_LT(r.images_uploaded, 16);
  BeesScheme bees(*store_, config());
  energy::Battery bat2(0.0001);
  const BatchReport r2 = bees.upload_batch(set_->images, server, ch, bat2);
  EXPECT_TRUE(r2.aborted);
}

TEST_F(SchemeTest, MeanDelayIsBusyOverOffered) {
  DirectUploadScheme direct(*store_, config());
  cloud::Server server;
  net::Channel ch = fixed_channel();
  energy::Battery bat;
  const BatchReport r = direct.upload_batch(set_->images, server, ch, bat);
  EXPECT_NEAR(r.mean_delay_seconds(), r.busy_seconds() / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(BatchReport{}.mean_delay_seconds(), 0.0);
}

TEST_F(SchemeTest, ReportAccumulationIsFieldwise) {
  BatchReport a, b;
  a.images_uploaded = 2;
  a.image_bytes = 10;
  b.images_uploaded = 3;
  b.feature_bytes = 5;
  b.aborted = true;
  a += b;
  EXPECT_EQ(a.images_uploaded, 5);
  EXPECT_DOUBLE_EQ(a.image_bytes, 10.0);
  EXPECT_DOUBLE_EQ(a.feature_bytes, 5.0);
  EXPECT_TRUE(a.aborted);
}

}  // namespace
}  // namespace bees::core
