// Wire-accounting invariants: what the client reports sending must equal
// what the server reports receiving, for every scheme.  A mismatch would
// mean some figure double-counts or drops bytes.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "core/bees.hpp"
#include "core/photonet.hpp"
#include "core/simulation.hpp"

namespace bees::core {
namespace {

class AccountingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_ = new wl::Imageset(wl::make_disaster_like(12, 3, 200, 150, 151));
    store_ = new wl::ImageStore();
    pca_ = new feat::PcaModel(train_pca_model(*store_, *set_, 3));
  }
  static void TearDownTestSuite() {
    delete pca_;
    delete store_;
    delete set_;
    pca_ = nullptr;
    store_ = nullptr;
    set_ = nullptr;
  }

  void check(UploadScheme& scheme, bool with_redundancy) {
    cloud::Server server;
    if (with_redundancy) {
      seed_cross_batch_redundancy(set_->images, 0.25, *store_, server, pca_,
                                  153, scheme.config().image_byte_scale);
    }
    net::Channel ch(net::ChannelParams::fixed(256000.0));
    energy::Battery bat;
    const BatchReport r = scheme.upload_batch(set_->images, server, ch, bat);
    // Images: server received exactly what the client sent.
    EXPECT_NEAR(server.stats().image_bytes_received, r.image_bytes, 1e-6)
        << scheme.name();
    // Features: likewise (Direct sends none).
    EXPECT_NEAR(server.stats().feature_bytes_received, r.feature_bytes, 1e-6)
        << scheme.name();
    // Stored image count matches the uploads.
    EXPECT_EQ(server.stats().images_stored,
              static_cast<std::size_t>(r.images_uploaded))
        << scheme.name();
    // Conservation: every image is uploaded or eliminated, never both.
    EXPECT_EQ(r.images_uploaded + r.eliminated_cross_batch +
                  r.eliminated_in_batch,
              r.images_offered)
        << scheme.name();
  }

  SchemeConfig config() const {
    SchemeConfig cfg;
    cfg.image_byte_scale = 4.0;
    return cfg;
  }

  static wl::Imageset* set_;
  static wl::ImageStore* store_;
  static feat::PcaModel* pca_;
};

wl::Imageset* AccountingTest::set_ = nullptr;
wl::ImageStore* AccountingTest::store_ = nullptr;
feat::PcaModel* AccountingTest::pca_ = nullptr;

TEST_F(AccountingTest, DirectUpload) {
  DirectUploadScheme s(*store_, config());
  check(s, false);
  check(s, true);
}

TEST_F(AccountingTest, SmartEye) {
  SmartEyeScheme s(*store_, config(),
                   std::shared_ptr<const feat::PcaModel>(
                       pca_, [](const feat::PcaModel*) {}));
  check(s, false);
  check(s, true);
}

TEST_F(AccountingTest, Mrc) {
  MrcScheme s(*store_, config());
  check(s, false);
  check(s, true);
}

TEST_F(AccountingTest, PhotoNet) {
  PhotoNetScheme s(*store_, config());
  check(s, false);
  check(s, true);
}

TEST_F(AccountingTest, Bees) {
  BeesScheme s(*store_, config());
  check(s, false);
  check(s, true);
}

TEST_F(AccountingTest, BeesEa) {
  BeesScheme s(*store_, config(), /*adaptive=*/false);
  check(s, false);
  check(s, true);
}

}  // namespace
}  // namespace bees::core
