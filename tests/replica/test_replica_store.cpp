// Segment-store interactions of replication: ship frames pin their chunks
// independently of the primary's WAL pins, so aggressive checkpoint +
// compaction cycles on the primary must never reclaim a chunk a follower
// still needs mid-ship — and a failover after those cycles still promotes
// a byte-equivalent follower.  The concurrent case (queries racing a
// failover) is the ThreadSanitizer workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "index/serialize.hpp"
#include "net/protocol.hpp"
#include "replica/replication.hpp"
#include "serve/cluster.hpp"
#include "serve/shard.hpp"
#include "store/segment_store.hpp"
#include "util/rng.hpp"

namespace bees::replica {
namespace {

feat::BinaryFeatures make_binary(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

idx::GeoTag geo_of(int i) {
  return {2.29 + 0.01 * (i % 3), 48.85 + 0.002 * (i % 3), true};
}

serve::WalRecord binary_record(int i) {
  serve::WalRecord r;
  r.op = serve::WalOp::kStoreBinary;
  r.global_id = static_cast<std::uint32_t>(i);
  r.info = {700'000.0 + i, geo_of(i), 12'000.0 + i};
  r.payload =
      idx::serialize_binary(make_binary(50 + static_cast<std::uint64_t>(i)));
  return r;
}

class ReplicaStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bees_replica_store_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ReplicaStoreTest, ShipFramesSurviveCheckpointAndCompactionMidShip) {
  store::SegmentStoreOptions sopts;
  sopts.dir = dir_ + "/segstore";
  sopts.chunk_size = 512;          // every payload spans several chunks
  sopts.compact_dead_ratio = 0.0;  // rewrite any segment with dead bytes
  store::SegmentStore store(sopts);

  serve::ShardOptions shard_opts;
  shard_opts.dir = dir_ + "/shard";
  shard_opts.segment_store = &store;
  shard_opts.checkpoint_every = 1;  // checkpoint (and unpin WAL) every apply

  ReplicationOptions ropts;
  ropts.followers = 1;
  ropts.ship_queue_cap = 64;  // keep every frame queued until we drain
  ReplicationGroup group(0, shard_opts, ropts);

  // Each apply checkpoints the primary immediately, releasing its WAL pins
  // while the ship frame is still queued; compacting between applies tries
  // hard to reclaim those chunks.
  for (int i = 0; i < 8; ++i) {
    group.apply(binary_record(i));
    store.maybe_compact();
  }
  ASSERT_EQ(group.acked_seq(1), 0u) << "frames must still be queued";

  // The catch-up drain resolves every queued manifest through the store:
  // if a ship-frame chunk had been compacted away this throws.
  group.drain_all();
  EXPECT_EQ(group.acked_seq(1), 8u);
  EXPECT_EQ(group.instance(1).encode_snapshot(),
            group.active().encode_snapshot());
}

TEST_F(ReplicaStoreTest, StoreBackedFailoverMatchesInMemoryReference) {
  serve::ClusterOptions durable;
  durable.shards = 2;
  durable.data_dir = dir_;
  durable.segment_store.dir = dir_ + "/segstore";
  durable.segment_store.chunk_size = 1024;
  durable.segment_store.compact_dead_ratio = 0.0;
  durable.checkpoint_every = 2;
  durable.backend_factory = make_replicated_factory(1);
  serve::Cluster cluster(durable);

  serve::ClusterOptions plain;
  plain.shards = 2;
  serve::Cluster reference(plain);

  for (int i = 0; i < 10; ++i) {
    const cloud::StoreInfo info{700'000.0 + i, geo_of(i), 12'000.0 + i};
    const auto features = make_binary(50 + static_cast<std::uint64_t>(i));
    cluster.store_binary(features, info);
    reference.store_binary(features, info);
  }
  cluster.checkpoint();  // unpins superseded snapshots, compacts

  for (int s = 0; s < 2; ++s) ASSERT_TRUE(cluster.kill_primary(s));

  for (int i = 0; i < 10; ++i) {
    const auto request = net::encode_binary_query(
        make_binary(50 + static_cast<std::uint64_t>(i)), idx::kDefaultTopK,
        9'000.0);
    EXPECT_EQ(cluster.handle(request), reference.handle(request))
        << "probe " << i;
  }
}

TEST(ReplicaConcurrent, QueriesRaceFailoverSafely) {
  serve::ClusterOptions copts;
  copts.shards = 2;
  copts.threads = 2;
  copts.backend_factory = make_replicated_factory(2);
  serve::Cluster cluster(copts);
  for (int i = 0; i < 6; ++i) {
    cluster.store_binary(make_binary(50 + static_cast<std::uint64_t>(i)),
                         {700'000.0 + i, geo_of(i), 12'000.0 + i});
  }

  // Readers hammer the query plane (lock-free loads of the active index)
  // while the main thread mutates and fails shards over.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&cluster, t] {
      for (int i = 0; i < 40; ++i) {
        const auto request = net::encode_binary_query(
            make_binary(50 + static_cast<std::uint64_t>((t + i) % 6)),
            idx::kDefaultTopK, 9'000.0);
        const auto reply = cluster.handle(request);
        ASSERT_FALSE(reply.empty());
      }
    });
  }
  for (int i = 6; i < 18; ++i) {
    cluster.store_binary(make_binary(50 + static_cast<std::uint64_t>(i)),
                         {700'000.0 + i, geo_of(i), 12'000.0 + i});
    if (i % 5 == 0) cluster.kill_primary(i % 2);
  }
  for (auto& t : readers) t.join();
  EXPECT_GE(cluster.resilience().failovers, 1u);
}

}  // namespace
}  // namespace bees::replica
