// Replication contract: shipping reaches apply-parity on drain, failover
// promotes a byte-equivalent follower (replies keep matching a serial
// server that never saw a kill), redelivery and gaps are caught, and a
// durable group restarted after a failover recovers the promoted timeline
// and snapshot-installs the stale instance.
#include "replica/replication.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cloud/rpc.hpp"
#include "cloud/server.hpp"
#include "features/global.hpp"
#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "index/serialize.hpp"
#include "net/protocol.hpp"
#include "serve/cluster.hpp"
#include "serve/shard.hpp"
#include "serve/wal.hpp"
#include "util/rng.hpp"

namespace bees::replica {
namespace {

feat::BinaryFeatures make_binary(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

feat::ColorHistogram make_histogram(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::color_histogram(
      img::render_view(img::SceneSpec{seed, 18, 4}, 120, 90, pert, rng));
}

idx::GeoTag geo_of(int i) {
  return {2.29 + 0.01 * (i % 3), 48.85 + 0.002 * (i % 3), true};
}

serve::WalRecord binary_record(int i) {
  serve::WalRecord r;
  r.op = serve::WalOp::kStoreBinary;
  r.global_id = static_cast<std::uint32_t>(i);
  r.info = {700'000.0 + i, geo_of(i), 12'000.0 + i};
  r.payload = idx::serialize_binary(make_binary(50 + static_cast<std::uint64_t>(i)));
  return r;
}

class ReplicaDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("bees_replica_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST(Replication, DrainReachesApplyParity) {
  ReplicationOptions ropts;
  ropts.followers = 2;
  ReplicationGroup group(0, serve::ShardOptions{}, ropts);
  for (int i = 0; i < 5; ++i) group.apply(binary_record(i));
  ASSERT_EQ(group.active().last_applied_seq(), 5u);

  group.drain_all();
  EXPECT_EQ(group.acked_seq(1), 5u);
  EXPECT_EQ(group.acked_seq(2), 5u);
  const serve::BackendResilience r = group.resilience();
  EXPECT_EQ(r.ship_records, 10u);  // 5 records x 2 followers
  EXPECT_GT(r.ship_bytes, 0u);
  EXPECT_EQ(r.failovers, 0u);
  EXPECT_EQ(r.live_standbys, 2u);
}

TEST(Replication, QueueCapBoundsLagAndForcesDrain) {
  ReplicationOptions ropts;
  ropts.followers = 1;
  ropts.ship_queue_cap = 4;
  ReplicationGroup group(0, serve::ShardOptions{}, ropts);
  for (int i = 0; i < 10; ++i) group.apply(binary_record(i));
  // Queue drains whenever it reaches the cap: after 10 applies the
  // follower has acknowledged the two full windows, and peak lag is
  // exactly the cap.
  EXPECT_EQ(group.acked_seq(1), 8u);
  EXPECT_EQ(group.resilience().ship_lag_max, 4u);
  group.drain_all();
  EXPECT_EQ(group.acked_seq(1), 10u);
}

TEST(Replication, ApplyReplicatedRedeliveryAndGap) {
  serve::Shard follower(0, serve::ShardOptions{});
  serve::WalRecord r1 = binary_record(0);
  r1.seq = 1;
  EXPECT_NE(follower.apply_replicated(r1), idx::kInvalidImageId);
  EXPECT_EQ(follower.last_applied_seq(), 1u);

  // Redelivery below the applied sequence is an idempotent no-op.
  EXPECT_EQ(follower.apply_replicated(r1), idx::kInvalidImageId);
  EXPECT_EQ(follower.last_applied_seq(), 1u);

  // A gap means applying past a hole: refused loudly, not diverged.
  serve::WalRecord r3 = binary_record(2);
  r3.seq = 3;
  EXPECT_THROW(follower.apply_replicated(r3), std::logic_error);
  EXPECT_EQ(follower.last_applied_seq(), 1u);
}

TEST(Replication, KillRefusedWithoutStandby) {
  ReplicationOptions ropts;
  ropts.followers = 0;
  ReplicationGroup group(0, serve::ShardOptions{}, ropts);
  group.apply(binary_record(0));
  EXPECT_FALSE(group.kill_active());
  EXPECT_EQ(group.resilience().failovers, 0u);

  // A 1-follower group survives exactly one kill.
  ReplicationOptions one;
  one.followers = 1;
  ReplicationGroup pair(0, serve::ShardOptions{}, one);
  EXPECT_TRUE(pair.kill_active());
  EXPECT_FALSE(pair.kill_active());
  EXPECT_EQ(pair.resilience().failovers, 1u);
  EXPECT_EQ(pair.resilience().live_standbys, 0u);
}

TEST(Replication, UnreplicatedClusterRefusesKill) {
  serve::ClusterOptions copts;
  copts.shards = 2;
  serve::Cluster cluster(copts);
  EXPECT_FALSE(cluster.kill_primary(0));
  EXPECT_FALSE(cluster.kill_primary(-1));
  EXPECT_FALSE(cluster.kill_primary(99));
}

/// The mixed workload the failover equivalence tests drive (uploads and
/// queries of every message type), mirroring the cluster suite.
std::vector<std::vector<std::uint8_t>> workload_requests() {
  std::vector<std::vector<std::uint8_t>> requests;
  for (int i = 0; i < 8; ++i) {
    net::ImageUploadRequest up;
    up.features = make_binary(500 + static_cast<std::uint64_t>(i));
    up.image_bytes = 700'000.0 + 1'000.0 * i;
    up.geo = geo_of(i);
    up.thumbnail_bytes = 12'000.0 + 100.0 * i;
    requests.push_back(net::encode(up));

    net::BinaryQueryRequest q;
    q.features = make_binary(500 + static_cast<std::uint64_t>(i));
    q.feature_bytes = 9'000.0 + 10.0 * i;
    requests.push_back(net::encode(q));

    net::GlobalUploadRequest gup;
    gup.histogram = make_histogram(900 + static_cast<std::uint64_t>(i));
    gup.image_bytes = 710'000.0;
    gup.geo = geo_of(i);
    requests.push_back(net::encode(gup));

    net::GlobalQueryRequest gq;
    gq.histogram = make_histogram(900 + static_cast<std::uint64_t>(i));
    gq.geo = geo_of(i);
    gq.feature_bytes = 256.0;
    requests.push_back(net::encode(gq));
  }
  return requests;
}

/// (shards, kill after this many requests)
class FailoverEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FailoverEquivalence, RepliesMatchSerialAcrossKill) {
  const int shards = std::get<0>(GetParam());
  const int kill_at = std::get<1>(GetParam());

  cloud::Server server;
  serve::ClusterOptions copts;
  copts.shards = shards;
  copts.backend_factory = make_replicated_factory(2);
  serve::Cluster cluster(copts);

  const auto requests = workload_requests();
  int step = 0;
  for (const auto& request : requests) {
    if (step == kill_at) {
      for (int s = 0; s < shards; ++s) {
        ASSERT_TRUE(cluster.kill_primary(s)) << "shard " << s;
      }
    }
    const auto serial = cloud::dispatch(server, request);
    const auto replicated = cluster.handle(request);
    ASSERT_EQ(replicated, serial)
        << "shards=" << shards << " kill_at=" << kill_at << " step=" << step;
    ++step;
  }
  const serve::BackendResilience r = cluster.resilience();
  EXPECT_EQ(r.failovers, static_cast<std::uint64_t>(shards));
  EXPECT_EQ(r.live_standbys, static_cast<std::uint64_t>(shards));

  // A second kill (promoting the last standby) must preserve equivalence
  // too: rerun the query half of the workload against both sides.
  for (int s = 0; s < shards; ++s) ASSERT_TRUE(cluster.kill_primary(s));
  net::BinaryQueryRequest q;
  q.features = make_binary(503);
  q.feature_bytes = 9'000.0;
  EXPECT_EQ(cluster.handle(net::encode(q)),
            cloud::dispatch(server, net::encode(q)));
}

INSTANTIATE_TEST_SUITE_P(ShardsAndKillPoints, FailoverEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0, 7, 16, 31)));

TEST_F(ReplicaDirTest, RestartAfterFailoverRecoversPromotedTimeline) {
  serve::ShardOptions sopts;
  sopts.dir = dir_;
  ReplicationOptions ropts;
  ropts.followers = 1;

  {
    ReplicationGroup group(0, sopts, ropts);
    for (int i = 0; i < 4; ++i) group.apply(binary_record(i));
    ASSERT_TRUE(group.kill_active());
    EXPECT_EQ(group.active_index(), 1);
    // Mutations continue on the promoted primary; the dead instance's dir
    // goes stale at seq 4.
    for (int i = 4; i < 7; ++i) group.apply(binary_record(i));
    ASSERT_EQ(group.active().last_applied_seq(), 7u);
  }

  ReplicationGroup restarted(0, sopts, ropts);
  // The term file names the promoted instance; the stale dir was
  // snapshot-installed up to the promoted timeline.
  EXPECT_EQ(restarted.active_index(), 1);
  EXPECT_EQ(restarted.resilience().failovers, 1u);
  EXPECT_EQ(restarted.resilience().catch_ups, 1u);
  EXPECT_EQ(restarted.active().last_applied_seq(), 7u);
  EXPECT_EQ(restarted.acked_seq(0), 7u);

  // Failing back over to the reinstalled instance yields identical state.
  const std::vector<std::uint8_t> before =
      restarted.active().encode_snapshot();
  ASSERT_TRUE(restarted.kill_active());
  EXPECT_EQ(restarted.active_index(), 0);
  EXPECT_EQ(restarted.active().encode_snapshot(), before);
}

TEST_F(ReplicaDirTest, DurableClusterSurvivesKillAndRestart) {
  cloud::Server server;
  const auto requests = workload_requests();

  serve::ClusterOptions copts;
  copts.shards = 2;
  copts.data_dir = dir_;
  copts.backend_factory = make_replicated_factory(1);
  {
    serve::Cluster cluster(copts);
    int step = 0;
    for (const auto& request : requests) {
      if (step == static_cast<int>(requests.size()) / 2) {
        for (int s = 0; s < copts.shards; ++s) {
          ASSERT_TRUE(cluster.kill_primary(s));
        }
      }
      const auto serial = cloud::dispatch(server, request);
      ASSERT_EQ(cluster.handle(request), serial) << "step=" << step;
      ++step;
    }
    cluster.checkpoint();
  }

  // Restart: the promoted timelines recover, and replies keep matching the
  // serial server that saw everything exactly once.
  serve::Cluster restarted(copts);
  EXPECT_EQ(restarted.resilience().failovers, 2u);
  net::BinaryQueryRequest q;
  q.features = make_binary(505);
  q.feature_bytes = 9'000.0;
  EXPECT_EQ(restarted.handle(net::encode(q)),
            cloud::dispatch(server, net::encode(q)));
}

}  // namespace
}  // namespace bees::replica
