// Burst-shooting workload: the paper's motivating in-batch case.  Shots of
// one burst must be near-duplicates, and SSMM must collapse each burst to
// (about) one retained image.
#include <gtest/gtest.h>

#include "features/similarity.hpp"
#include "submodular/ssmm.hpp"
#include "workload/image_store.hpp"

namespace bees::wl {
namespace {

TEST(BurstLike, StructureMatchesRequest) {
  const Imageset set = make_burst_like(4, 5, 160, 120, 141);
  EXPECT_EQ(set.images.size(), 20u);
  ASSERT_EQ(set.groups.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(set.groups[b].size(), 5u);
    for (const auto i : set.groups[b]) {
      EXPECT_EQ(set.images[i].scene.seed,
                set.images[set.groups[b][0]].scene.seed);
    }
  }
}

TEST(BurstLike, ShotsWithinBurstAreNearDuplicates) {
  ImageStore store;
  const Imageset set = make_burst_like(2, 3, 240, 180, 143);
  const auto& a = store.orb(set.images[set.groups[0][0]], 0.0);
  const auto& b = store.orb(set.images[set.groups[0][1]], 0.0);
  const auto& other = store.orb(set.images[set.groups[1][0]], 0.0);
  const double within = feat::jaccard_similarity(a, b);
  const double across = feat::jaccard_similarity(a, other);
  EXPECT_GT(within, 0.3);  // burst shots exceed even the seeding bar
  EXPECT_LT(across, 0.05);
}

TEST(BurstLike, SsmmCollapsesEachBurstToOneImage) {
  ImageStore store;
  const Imageset set = make_burst_like(5, 4, 200, 150, 149);
  std::vector<feat::BinaryFeatures> batch;
  for (const auto& spec : set.images) batch.push_back(store.orb(spec, 0.0));
  const sub::SimilarityGraph graph = sub::build_similarity_graph(batch);
  const sub::SsmmResult r = sub::select_unique_images(graph, 0.019, {});
  // 5 bursts -> budget 5, one representative each (allow one merge/split).
  EXPECT_GE(r.budget, 4);
  EXPECT_LE(r.budget, 6);
  EXPECT_EQ(r.selected.size(), static_cast<std::size_t>(r.budget));
  // Every burst is represented in the selection.
  std::vector<bool> covered(5, false);
  for (const auto sel : r.selected) {
    covered[set.images[sel].group] = true;
  }
  int covered_count = 0;
  for (const bool c : covered) covered_count += c ? 1 : 0;
  EXPECT_GE(covered_count, 4);
}

}  // namespace
}  // namespace bees::wl
