#include "cloud/server.hpp"

#include <gtest/gtest.h>

#include "features/orb.hpp"
#include "features/pca.hpp"
#include "features/sift.hpp"
#include "imaging/synth.hpp"
#include "util/rng.hpp"

namespace bees::cloud {
namespace {

feat::BinaryFeatures orb_of(std::uint64_t seed) {
  return feat::extract_orb(
      img::render_scene(img::SceneSpec{seed, 18, 4}, 200, 150));
}

TEST(Server, StartsEmpty) {
  Server s;
  EXPECT_EQ(s.stats().images_stored, 0u);
  EXPECT_EQ(s.stats().unique_locations, 0u);
  EXPECT_EQ(s.stats().image_bytes_received, 0.0);
}

TEST(Server, StoreBinaryCountsBytesAndImages) {
  Server s;
  s.store_binary(orb_of(1), {1000.0});
  s.store_binary(orb_of(2), {2000.0});
  EXPECT_EQ(s.stats().images_stored, 2u);
  EXPECT_DOUBLE_EQ(s.stats().image_bytes_received, 3000.0);
}

TEST(Server, QueryFindsStoredSimilarImage) {
  Server s;
  util::Rng rng(3);
  const img::SceneSpec spec{33, 18, 4};
  img::ViewPerturbation pert;
  const auto stored =
      feat::extract_orb(img::render_view(spec, 200, 150, pert, rng));
  const auto query =
      feat::extract_orb(img::render_view(spec, 200, 150, pert, rng));
  s.store_binary(stored, {500.0});
  const idx::QueryResult r = s.query_binary(query, 123.0);
  EXPECT_GT(r.max_similarity, 0.02);
  EXPECT_EQ(s.stats().binary_queries, 1u);
  EXPECT_DOUBLE_EQ(s.stats().feature_bytes_received, 123.0);
}

TEST(Server, UniqueLocationsCountDistinctGeotags) {
  Server s;
  const idx::GeoTag a{2.32, 48.86, true};
  const idx::GeoTag a_same{2.32, 48.86, true};
  const idx::GeoTag b{2.33, 48.87, true};
  const idx::GeoTag none{};  // invalid
  s.store_plain({100.0, a});
  s.store_plain({100.0, a_same});
  s.store_plain({100.0, b});
  s.store_plain({100.0, none});
  EXPECT_EQ(s.stats().images_stored, 4u);
  EXPECT_EQ(s.stats().unique_locations, 2u);
}

TEST(Server, SeedingDoesNotCountAsReceived) {
  Server s;
  s.seed_binary(orb_of(4));
  EXPECT_EQ(s.stats().images_stored, 0u);
  EXPECT_EQ(s.binary_index().image_count(), 1u);
}

TEST(Server, FloatPathWorks) {
  Server s;
  util::Rng rng(5);
  const img::SceneSpec spec{44, 18, 4};
  img::ViewPerturbation pert;
  const auto sift_a =
      feat::extract_sift(img::render_view(spec, 200, 150, pert, rng));
  const auto sift_b =
      feat::extract_sift(img::render_view(spec, 200, 150, pert, rng));
  s.store_float(sift_a, {600.0});
  const idx::QueryResult r = s.query_float(sift_b, 50.0);
  EXPECT_GT(r.max_similarity, 0.01);
  EXPECT_EQ(s.stats().float_queries, 1u);
}

TEST(LocationKey, QuantizesNearbyPoints) {
  const idx::GeoTag a{2.320000, 48.860000, true};
  const idx::GeoTag nearby{2.3200000001, 48.8600000001, true};
  const idx::GeoTag far{2.321, 48.861, true};
  EXPECT_EQ(idx::location_key(a), idx::location_key(nearby));
  EXPECT_NE(idx::location_key(a), idx::location_key(far));
}

TEST(LocationKey, NegativeCoordinatesSupported) {
  const idx::GeoTag west{-73.98, 40.75, true};
  const idx::GeoTag east{73.98, 40.75, true};
  EXPECT_NE(idx::location_key(west), idx::location_key(east));
}

}  // namespace
}  // namespace bees::cloud
