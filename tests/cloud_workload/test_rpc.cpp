// Protocol + dispatcher tests: every simulated exchange must round-trip
// through the encoded wire format, and a server fed garbage must answer
// with an error instead of dying.
#include "cloud/rpc.hpp"

#include <gtest/gtest.h>

#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "net/protocol.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace bees::cloud {
namespace {

feat::BinaryFeatures features_of(std::uint64_t seed) {
  return feat::extract_orb(
      img::render_scene(img::SceneSpec{seed, 18, 4}, 200, 150));
}

TEST(Protocol, QueryRequestRoundTrips) {
  net::BinaryQueryRequest request;
  request.features = features_of(21);
  request.top_k = 7;
  const auto env = net::open_envelope(net::encode(request));
  EXPECT_EQ(env.type, net::MessageType::kBinaryQuery);
  const net::BinaryQueryRequest back = net::decode_binary_query(env.payload);
  EXPECT_EQ(back.top_k, 7);
  ASSERT_EQ(back.features.size(), request.features.size());
  for (std::size_t i = 0; i < back.features.size(); ++i) {
    EXPECT_EQ(back.features.descriptors[i], request.features.descriptors[i]);
  }
}

TEST(Protocol, QueryResponseRoundTrips) {
  net::QueryResponse reply;
  reply.max_similarity = 0.125;
  reply.best_id = 42;
  reply.thumbnail_bytes = 8192.0;
  const auto env = net::open_envelope(net::encode(reply));
  EXPECT_EQ(env.type, net::MessageType::kQueryResponse);
  const net::QueryResponse back = net::decode_query_response(env.payload);
  EXPECT_DOUBLE_EQ(back.max_similarity, 0.125);
  EXPECT_EQ(back.best_id, 42u);
  EXPECT_DOUBLE_EQ(back.thumbnail_bytes, 8192.0);
}

TEST(Protocol, ImageUploadRoundTrips) {
  net::ImageUploadRequest upload;
  upload.features = features_of(23);
  upload.image_bytes = 123456.0;
  upload.geo = {2.33, 48.86, true};
  upload.thumbnail_bytes = 9999.0;
  const auto env = net::open_envelope(net::encode(upload));
  EXPECT_EQ(env.type, net::MessageType::kImageUpload);
  const net::ImageUploadRequest back = net::decode_image_upload(env.payload);
  EXPECT_DOUBLE_EQ(back.image_bytes, 123456.0);
  EXPECT_EQ(back.geo, upload.geo);
  EXPECT_EQ(back.features.size(), upload.features.size());
}

TEST(Protocol, ChunkPlaneDecodersRejectTrailingBytes) {
  const std::vector<std::uint8_t> payload(100, 0x5A);
  const store::Manifest manifest = store::build_manifest(payload, 64);

  net::ChunkDataRequest data;
  data.key = manifest.chunks[0];
  data.data.assign(payload.begin(), payload.begin() + 64);
  net::ChunkCommitRequest commit;
  commit.manifest = manifest;
  commit.inner = {0x01, 0x02};

  // Every chunk-plane message must reject trailing garbage, like the
  // manifest codec does.
  const auto check = [](std::vector<std::uint8_t> encoded, auto decoder) {
    auto env = net::open_envelope(encoded);
    EXPECT_NO_THROW(decoder(env.payload));
    env.payload.push_back(0xFF);
    EXPECT_THROW(decoder(env.payload), util::DecodeError);
  };
  check(net::encode(net::ChunkManifestRequest{manifest}),
        net::decode_chunk_manifest);
  check(net::encode(net::ChunkManifestAck{{0, 1}}),
        net::decode_chunk_manifest_ack);
  check(net::encode(data), net::decode_chunk_data);
  check(net::encode(net::ChunkAck{data.key.hash}), net::decode_chunk_ack);
  check(net::encode(commit), net::decode_chunk_commit);
}

TEST(Protocol, MalformedEnvelopeThrows) {
  EXPECT_THROW(net::open_envelope({}), util::DecodeError);
  EXPECT_THROW(net::open_envelope({0x00, 0x01}), util::DecodeError);
  EXPECT_THROW(net::open_envelope({0x77, 0x01, 0x00}), util::DecodeError);
  // Trailing junk after a valid envelope is rejected.
  auto valid = net::encode(net::UploadAck{3});
  valid.push_back(0xff);
  EXPECT_THROW(net::open_envelope(valid), util::DecodeError);
}

TEST(Dispatch, FullUploadThenQueryExchange) {
  Server server;
  // Phone A uploads an image through the wire format.
  net::ImageUploadRequest upload;
  upload.features = features_of(31);
  upload.image_bytes = 700.0 * 1024;
  upload.geo = {2.32, 48.87, true};
  upload.thumbnail_bytes = 40.0 * 1024;
  const auto ack_bytes = dispatch(server, net::encode(upload));
  const auto ack_env = net::open_envelope(ack_bytes);
  ASSERT_EQ(ack_env.type, net::MessageType::kUploadAck);
  const net::UploadAck ack = net::decode_upload_ack(ack_env.payload);
  EXPECT_EQ(ack.id, 0u);
  EXPECT_EQ(server.stats().images_stored, 1u);

  // Phone B queries with a view of the same scene.
  util::Rng rng(5);
  net::BinaryQueryRequest query;
  query.features = feat::extract_orb(img::render_view(
      img::SceneSpec{31, 18, 4}, 200, 150, img::ViewPerturbation{}, rng));
  const auto reply_bytes = dispatch(server, net::encode(query));
  const auto reply_env = net::open_envelope(reply_bytes);
  ASSERT_EQ(reply_env.type, net::MessageType::kQueryResponse);
  const net::QueryResponse reply =
      net::decode_query_response(reply_env.payload);
  EXPECT_EQ(reply.best_id, 0u);
  EXPECT_GT(reply.max_similarity, 0.02);
  EXPECT_DOUBLE_EQ(reply.thumbnail_bytes, 40.0 * 1024);
}

TEST(Dispatch, GarbageGetsErrorReplyNotCrash) {
  Server server;
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto reply = dispatch(server, junk);
    const auto env = net::open_envelope(reply);
    // A garbage request can only yield an error (or, if it accidentally
    // parses, a legitimate reply type).
    EXPECT_TRUE(env.type == net::MessageType::kError ||
                env.type == net::MessageType::kQueryResponse ||
                env.type == net::MessageType::kUploadAck);
  }
  EXPECT_EQ(server.stats().images_stored, 0u);
}

TEST(Dispatch, UnexpectedMessageTypeIsAnError) {
  Server server;
  // A response-type message is not a valid request.
  const auto reply = dispatch(server, net::encode(net::QueryResponse{}));
  const auto env = net::open_envelope(reply);
  EXPECT_EQ(env.type, net::MessageType::kError);
  EXPECT_FALSE(net::decode_error(env.payload).empty());
}

TEST(Dispatch, TruncatedEnvelopeIsAnErrorReply) {
  Server server;
  auto request = net::encode(net::PlainUploadRequest{1000.0, {}});
  // Chop bytes off the tail: every truncation must yield an encoded error
  // reply, never a throw and never a stored image.
  for (std::size_t keep = 0; keep < request.size(); ++keep) {
    const std::vector<std::uint8_t> cut(request.begin(),
                                        request.begin() + keep);
    const auto reply = dispatch(server, cut);
    const auto env = net::open_envelope(reply);
    EXPECT_EQ(env.type, net::MessageType::kError) << "keep=" << keep;
  }
  EXPECT_EQ(server.stats().images_stored, 0u);
}

TEST(Dispatch, UnknownOpcodeIsAnErrorReply) {
  Server server;
  for (const std::uint8_t opcode : {0x00, 0x0d, 0x20, 0x7f, 0xff}) {
    // A syntactically well-formed envelope with an opcode the protocol
    // does not define.
    const std::vector<std::uint8_t> request = {opcode, 0x01, 0x42};
    const auto reply = dispatch(server, request);
    const auto env = net::open_envelope(reply);
    EXPECT_EQ(env.type, net::MessageType::kError)
        << "opcode=" << static_cast<int>(opcode);
    EXPECT_FALSE(net::decode_error(env.payload).empty());
  }
}

TEST(Dispatch, GarbagePayloadUnderValidOpcodeIsAnErrorReply) {
  Server server;
  util::Rng rng(19);
  const net::MessageType request_types[] = {
      net::MessageType::kBinaryQuery,  net::MessageType::kImageUpload,
      net::MessageType::kBatchQuery,   net::MessageType::kFloatQuery,
      net::MessageType::kFloatUpload,  net::MessageType::kGlobalQuery,
      net::MessageType::kGlobalUpload, net::MessageType::kPlainUpload};
  for (const auto type : request_types) {
    for (int trial = 0; trial < 20; ++trial) {
      // Valid envelope, garbage payload of a random small size.
      std::vector<std::uint8_t> payload(
          static_cast<std::size_t>(rng.uniform_int(0, 24)));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
      util::ByteWriter w;
      w.put_u8(static_cast<std::uint8_t>(type));
      w.put_varint(payload.size());
      w.put_bytes(payload);
      const auto reply = dispatch(server, w.take());
      const auto env = net::open_envelope(reply);
      // Garbage almost always fails decoding; the rare accidental parse
      // must still produce a legitimate reply type.
      EXPECT_TRUE(env.type == net::MessageType::kError ||
                  env.type == net::MessageType::kQueryResponse ||
                  env.type == net::MessageType::kBatchQueryResponse ||
                  env.type == net::MessageType::kUploadAck);
    }
  }
}

TEST(Protocol, BatchQueryRoundTrips) {
  net::BatchQueryRequest request;
  request.features.push_back(features_of(41));
  request.features.push_back(features_of(43));
  request.feature_bytes = {1200.0, 1500.0};
  request.top_k = 5;
  const auto env = net::open_envelope(net::encode(request));
  EXPECT_EQ(env.type, net::MessageType::kBatchQuery);
  const net::BatchQueryRequest back = net::decode_batch_query(env.payload);
  ASSERT_EQ(back.features.size(), 2u);
  EXPECT_EQ(back.features[1].size(), request.features[1].size());
  EXPECT_EQ(back.feature_bytes, request.feature_bytes);
  EXPECT_EQ(back.top_k, 5);

  net::BatchQueryResponse reply;
  reply.verdicts.push_back({0.5, 3, 100.0});
  reply.verdicts.push_back({0.0, idx::kInvalidImageId, 0.0});
  const auto renv = net::open_envelope(net::encode(reply));
  EXPECT_EQ(renv.type, net::MessageType::kBatchQueryResponse);
  const auto rback = net::decode_batch_query_response(renv.payload);
  ASSERT_EQ(rback.verdicts.size(), 2u);
  EXPECT_DOUBLE_EQ(rback.verdicts[0].max_similarity, 0.5);
  EXPECT_EQ(rback.verdicts[1].best_id, idx::kInvalidImageId);
}

TEST(Protocol, BatchQueryRejectsCountMismatch) {
  net::BatchQueryRequest request;
  request.features.push_back(features_of(41));
  request.feature_bytes = {100.0, 200.0};  // two sizes for one feature set
  const auto env = net::open_envelope(net::encode(request));
  EXPECT_THROW(net::decode_batch_query(env.payload), util::DecodeError);
}

TEST(Dispatch, BatchQueryAnswersPerImage) {
  Server server;
  // Store image 31; then batch-query a matching view plus an unrelated
  // scene, expecting one hit and one miss, in request order.
  net::ImageUploadRequest upload;
  upload.features = features_of(31);
  upload.image_bytes = 700.0 * 1024;
  upload.thumbnail_bytes = 40.0 * 1024;
  dispatch(server, net::encode(upload));

  util::Rng rng(5);
  net::BatchQueryRequest query;
  query.features.push_back(feat::extract_orb(img::render_view(
      img::SceneSpec{31, 18, 4}, 200, 150, img::ViewPerturbation{}, rng)));
  query.features.push_back(features_of(777));
  query.feature_bytes = {1000.0, 1000.0};
  const auto reply_env = net::open_envelope(dispatch(server,
                                                     net::encode(query)));
  ASSERT_EQ(reply_env.type, net::MessageType::kBatchQueryResponse);
  const auto reply = net::decode_batch_query_response(reply_env.payload);
  ASSERT_EQ(reply.verdicts.size(), 2u);
  EXPECT_GT(reply.verdicts[0].max_similarity, 0.02);
  EXPECT_EQ(reply.verdicts[0].best_id, 0u);
  EXPECT_DOUBLE_EQ(reply.verdicts[0].thumbnail_bytes, 40.0 * 1024);
  EXPECT_LT(reply.verdicts[1].max_similarity,
            reply.verdicts[0].max_similarity);
  // The server charges the carried per-image feature sizes.
  EXPECT_DOUBLE_EQ(server.stats().feature_bytes_received, 2000.0);
}

TEST(Dispatch, FloatAndGlobalAndPlainRequestsRoundTrip) {
  Server server;

  net::PlainUploadRequest plain;
  plain.image_bytes = 2048.0;
  auto env = net::open_envelope(dispatch(server, net::encode(plain)));
  EXPECT_EQ(env.type, net::MessageType::kUploadAck);
  EXPECT_EQ(server.stats().images_stored, 1u);

  net::GlobalUploadRequest gup;
  gup.histogram.bins[0] = 1.0f;
  gup.image_bytes = 4096.0;
  env = net::open_envelope(dispatch(server, net::encode(gup)));
  EXPECT_EQ(env.type, net::MessageType::kUploadAck);

  net::GlobalQueryRequest gq;
  gq.histogram.bins[0] = 1.0f;
  gq.feature_bytes = 273.0;
  env = net::open_envelope(dispatch(server, net::encode(gq)));
  ASSERT_EQ(env.type, net::MessageType::kQueryResponse);
  const auto verdict = net::decode_query_response(env.payload);
  EXPECT_GT(verdict.max_similarity, 0.9);  // identical histogram
  EXPECT_DOUBLE_EQ(server.stats().feature_bytes_received, 273.0);
}

}  // namespace
}  // namespace bees::cloud
