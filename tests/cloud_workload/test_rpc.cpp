// Protocol + dispatcher tests: every simulated exchange must round-trip
// through the encoded wire format, and a server fed garbage must answer
// with an error instead of dying.
#include "cloud/rpc.hpp"

#include <gtest/gtest.h>

#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "net/protocol.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace bees::cloud {
namespace {

feat::BinaryFeatures features_of(std::uint64_t seed) {
  return feat::extract_orb(
      img::render_scene(img::SceneSpec{seed, 18, 4}, 200, 150));
}

TEST(Protocol, QueryRequestRoundTrips) {
  net::BinaryQueryRequest request;
  request.features = features_of(21);
  request.top_k = 7;
  const auto env = net::open_envelope(net::encode(request));
  EXPECT_EQ(env.type, net::MessageType::kBinaryQuery);
  const net::BinaryQueryRequest back = net::decode_binary_query(env.payload);
  EXPECT_EQ(back.top_k, 7);
  ASSERT_EQ(back.features.size(), request.features.size());
  for (std::size_t i = 0; i < back.features.size(); ++i) {
    EXPECT_EQ(back.features.descriptors[i], request.features.descriptors[i]);
  }
}

TEST(Protocol, QueryResponseRoundTrips) {
  net::QueryResponse reply;
  reply.max_similarity = 0.125;
  reply.best_id = 42;
  reply.thumbnail_bytes = 8192.0;
  const auto env = net::open_envelope(net::encode(reply));
  EXPECT_EQ(env.type, net::MessageType::kQueryResponse);
  const net::QueryResponse back = net::decode_query_response(env.payload);
  EXPECT_DOUBLE_EQ(back.max_similarity, 0.125);
  EXPECT_EQ(back.best_id, 42u);
  EXPECT_DOUBLE_EQ(back.thumbnail_bytes, 8192.0);
}

TEST(Protocol, ImageUploadRoundTrips) {
  net::ImageUploadRequest upload;
  upload.features = features_of(23);
  upload.image_bytes = 123456.0;
  upload.geo = {2.33, 48.86, true};
  upload.thumbnail_bytes = 9999.0;
  const auto env = net::open_envelope(net::encode(upload));
  EXPECT_EQ(env.type, net::MessageType::kImageUpload);
  const net::ImageUploadRequest back = net::decode_image_upload(env.payload);
  EXPECT_DOUBLE_EQ(back.image_bytes, 123456.0);
  EXPECT_EQ(back.geo, upload.geo);
  EXPECT_EQ(back.features.size(), upload.features.size());
}

TEST(Protocol, MalformedEnvelopeThrows) {
  EXPECT_THROW(net::open_envelope({}), util::DecodeError);
  EXPECT_THROW(net::open_envelope({0x00, 0x01}), util::DecodeError);
  EXPECT_THROW(net::open_envelope({0x77, 0x01, 0x00}), util::DecodeError);
  // Trailing junk after a valid envelope is rejected.
  auto valid = net::encode(net::UploadAck{3});
  valid.push_back(0xff);
  EXPECT_THROW(net::open_envelope(valid), util::DecodeError);
}

TEST(Dispatch, FullUploadThenQueryExchange) {
  Server server;
  // Phone A uploads an image through the wire format.
  net::ImageUploadRequest upload;
  upload.features = features_of(31);
  upload.image_bytes = 700.0 * 1024;
  upload.geo = {2.32, 48.87, true};
  upload.thumbnail_bytes = 40.0 * 1024;
  const auto ack_bytes = dispatch(server, net::encode(upload));
  const auto ack_env = net::open_envelope(ack_bytes);
  ASSERT_EQ(ack_env.type, net::MessageType::kUploadAck);
  const net::UploadAck ack = net::decode_upload_ack(ack_env.payload);
  EXPECT_EQ(ack.id, 0u);
  EXPECT_EQ(server.stats().images_stored, 1u);

  // Phone B queries with a view of the same scene.
  util::Rng rng(5);
  net::BinaryQueryRequest query;
  query.features = feat::extract_orb(img::render_view(
      img::SceneSpec{31, 18, 4}, 200, 150, img::ViewPerturbation{}, rng));
  const auto reply_bytes = dispatch(server, net::encode(query));
  const auto reply_env = net::open_envelope(reply_bytes);
  ASSERT_EQ(reply_env.type, net::MessageType::kQueryResponse);
  const net::QueryResponse reply =
      net::decode_query_response(reply_env.payload);
  EXPECT_EQ(reply.best_id, 0u);
  EXPECT_GT(reply.max_similarity, 0.02);
  EXPECT_DOUBLE_EQ(reply.thumbnail_bytes, 40.0 * 1024);
}

TEST(Dispatch, GarbageGetsErrorReplyNotCrash) {
  Server server;
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto reply = dispatch(server, junk);
    const auto env = net::open_envelope(reply);
    // A garbage request can only yield an error (or, if it accidentally
    // parses, a legitimate reply type).
    EXPECT_TRUE(env.type == net::MessageType::kError ||
                env.type == net::MessageType::kQueryResponse ||
                env.type == net::MessageType::kUploadAck);
  }
  EXPECT_EQ(server.stats().images_stored, 0u);
}

TEST(Dispatch, UnexpectedMessageTypeIsAnError) {
  Server server;
  // A response-type message is not a valid request.
  const auto reply = dispatch(server, net::encode(net::QueryResponse{}));
  const auto env = net::open_envelope(reply);
  EXPECT_EQ(env.type, net::MessageType::kError);
  EXPECT_FALSE(net::decode_error(env.payload).empty());
}

}  // namespace
}  // namespace bees::cloud
