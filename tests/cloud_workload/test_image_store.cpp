#include "workload/image_store.hpp"

#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "imaging/codec.hpp"

namespace bees::wl {
namespace {

Imageset small_set() { return make_kentucky_like(3, 2, 160, 120, 51); }

TEST(ImageStore, PixelsAreCachedByIdentity) {
  ImageStore store;
  const Imageset set = small_set();
  const img::Image& a = store.pixels(set.images[0]);
  const img::Image& b = store.pixels(set.images[0]);
  EXPECT_EQ(&a, &b);  // same cached object
  EXPECT_EQ(store.pixel_cache_size(), 1u);
}

TEST(ImageStore, LruEvictsOldestPixels) {
  ImageStore::Params p;
  p.pixel_cache_capacity = 2;
  ImageStore store(p);
  const Imageset set = small_set();
  store.pixels(set.images[0]);
  store.pixels(set.images[1]);
  store.pixels(set.images[2]);  // evicts images[0]
  EXPECT_EQ(store.pixel_cache_size(), 2u);
  // Re-requesting the evicted image still works (recomputed).
  const img::Image& again = store.pixels(set.images[0]);
  EXPECT_EQ(again, set.images[0].render());
}

TEST(ImageStore, OrbCachedPerCompressionBucket) {
  ImageStore store;
  const Imageset set = small_set();
  const auto& full = store.orb(set.images[0], 0.0);
  const auto& full2 = store.orb(set.images[0], 0.0);
  EXPECT_EQ(&full, &full2);
  const auto& compressed = store.orb(set.images[0], 0.4);
  EXPECT_NE(&full, &compressed);
  EXPECT_LT(compressed.stats.ops, full.stats.ops);
}

TEST(ImageStore, CachedStatsStillChargeWork) {
  // The recorded ops of a cached extraction must be non-zero so energy is
  // charged on every logical use.
  ImageStore store;
  const Imageset set = small_set();
  store.orb(set.images[0], 0.2);
  EXPECT_GT(store.orb(set.images[0], 0.2).stats.ops, 0u);
}

TEST(ImageStore, SiftAndPcaSiftCached) {
  ImageStore store;
  const Imageset set = small_set();
  const auto& sift = store.sift(set.images[0]);
  EXPECT_EQ(&sift, &store.sift(set.images[0]));
  const feat::PcaModel model = core::train_pca_model(store, set, 2);
  const auto& pca = store.pca_sift(set.images[0], model);
  EXPECT_EQ(pca.dim, 36);
  EXPECT_EQ(&pca, &store.pca_sift(set.images[0], model));
  EXPECT_GT(pca.stats.ops, sift.stats.ops);
}

TEST(ImageStore, EncodedSizesShrinkWithCompression) {
  ImageStore store;
  const Imageset set = small_set();
  const EncodedImage original = store.encoded(set.images[0], 0.0, 0.0);
  const EncodedImage quality = store.encoded(set.images[0], 0.0, 0.85);
  const EncodedImage resolution = store.encoded(set.images[0], 0.5, 0.0);
  const EncodedImage both = store.encoded(set.images[0], 0.5, 0.85);
  EXPECT_LT(quality.bytes, original.bytes);
  EXPECT_LT(resolution.bytes, original.bytes);
  EXPECT_LT(both.bytes, quality.bytes);
  EXPECT_LT(both.bytes, resolution.bytes);
}

TEST(ImageStore, EncodedTracksResolution) {
  ImageStore store;
  const Imageset set = small_set();
  const EncodedImage full = store.encoded(set.images[0], 0.0, 0.5);
  EXPECT_EQ(full.width, 160);
  EXPECT_EQ(full.height, 120);
  const EncodedImage half = store.encoded(set.images[0], 0.5, 0.5);
  EXPECT_EQ(half.width, 80);
  EXPECT_EQ(half.height, 60);
  EXPECT_GT(half.ops, 0u);
}

TEST(ImageStore, OriginalUsesConfiguredQuality) {
  ImageStore::Params p;
  p.original_quality = 92;
  ImageStore store(p);
  const Imageset set = small_set();
  const EncodedImage original = store.original(set.images[0]);
  // Must equal encoding at proportion 1 - 0.92 = 0.08.
  const EncodedImage direct = store.encoded(set.images[0], 0.0, 0.08);
  EXPECT_EQ(original.bytes, direct.bytes);
}

TEST(ImageStore, DistinctImagesDistinctCaches) {
  ImageStore store;
  const Imageset set = small_set();
  const auto& f0 = store.orb(set.images[0], 0.0);
  const auto& f1 = store.orb(set.images[1], 0.0);
  EXPECT_NE(&f0, &f1);
}

}  // namespace
}  // namespace bees::wl
