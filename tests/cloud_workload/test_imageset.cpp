#include "workload/imageset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "features/orb.hpp"
#include "features/similarity.hpp"

namespace bees::wl {
namespace {

TEST(ImageSpec, RenderIsDeterministic) {
  Imageset set = make_kentucky_like(2, 2, 96, 72, 11);
  for (const auto& spec : set.images) {
    EXPECT_EQ(spec.render(), spec.render());
  }
}

TEST(ImageSpec, CacheKeysAreDistinct) {
  Imageset set = make_kentucky_like(10, 4, 96, 72, 13);
  std::set<std::uint64_t> keys;
  for (const auto& spec : set.images) keys.insert(spec.cache_key());
  EXPECT_EQ(keys.size(), set.images.size());
}

TEST(KentuckyLike, GroupStructure) {
  const Imageset set = make_kentucky_like(5, 4, 96, 72, 17);
  EXPECT_EQ(set.images.size(), 20u);
  ASSERT_EQ(set.groups.size(), 5u);
  for (std::size_t g = 0; g < 5; ++g) {
    EXPECT_EQ(set.groups[g].size(), 4u);
    for (const auto i : set.groups[g]) {
      EXPECT_EQ(set.images[i].group, g);
      // All views of a group share the scene seed.
      EXPECT_EQ(set.images[i].scene.seed,
                set.images[set.groups[g][0]].scene.seed);
    }
  }
}

TEST(KentuckyLike, GroupMembersAreSimilarImages) {
  const Imageset set = make_kentucky_like(2, 2, 240, 180, 19);
  const auto f0 = feat::extract_orb(set.images[set.groups[0][0]].render());
  const auto f1 = feat::extract_orb(set.images[set.groups[0][1]].render());
  const auto g0 = feat::extract_orb(set.images[set.groups[1][0]].render());
  const double within = feat::jaccard_similarity(f0, f1);
  const double across = feat::jaccard_similarity(f0, g0);
  EXPECT_GT(within, 0.04);
  EXPECT_GT(within, across * 2);
}

TEST(DisasterLike, HasRequestedSimilarCount) {
  const Imageset set = make_disaster_like(30, 6, 96, 72, 23);
  EXPECT_EQ(set.images.size(), 30u);
  // 24 unique scenes; 6 extra views spread over them.
  std::size_t multi = 0, singles = 0;
  for (const auto& g : set.groups) {
    if (g.size() > 1) multi += g.size() - 1;
    if (g.size() == 1) ++singles;
  }
  EXPECT_EQ(multi, 6u);
  EXPECT_EQ(set.groups.size(), 24u);
  EXPECT_GE(singles, 18u);
}

TEST(DisasterLike, GroupsIndexTheShuffledImages) {
  const Imageset set = make_disaster_like(20, 5, 96, 72, 29);
  for (std::size_t g = 0; g < set.groups.size(); ++g) {
    for (const auto i : set.groups[g]) {
      ASSERT_LT(i, set.images.size());
      EXPECT_EQ(set.images[i].group, g);
    }
  }
}

TEST(ParisLike, GeotagsInsideBoundingBox) {
  const GeoBox box{2.31, 2.34, 48.855, 48.872};
  const Imageset set = make_paris_like(200, 40, box, 96, 72, 31);
  EXPECT_EQ(set.images.size(), 200u);
  for (const auto& spec : set.images) {
    ASSERT_TRUE(spec.geo.valid);
    EXPECT_GE(spec.geo.lon, box.lon_min);
    EXPECT_LE(spec.geo.lon, box.lon_max);
    EXPECT_GE(spec.geo.lat, box.lat_min);
    EXPECT_LE(spec.geo.lat, box.lat_max);
  }
}

TEST(ParisLike, DensityIsHeavyTailed) {
  const Imageset set = make_paris_like(2000, 100, GeoBox{}, 96, 72, 37);
  std::vector<std::size_t> sizes;
  for (const auto& g : set.groups) sizes.push_back(g.size());
  std::sort(sizes.rbegin(), sizes.rend());
  // The densest location holds far more than the mean of 20 (the paper's
  // real distribution: densest has 5,399 of 165,539).
  EXPECT_GT(sizes.front(), 100u);
  // And a long tail of sparse locations exists.
  EXPECT_LT(sizes.back(), 10u);
}

TEST(ParisLike, SameLocationSharesGeoAndAFewScenes) {
  const Imageset set = make_paris_like(300, 30, GeoBox{}, 96, 72, 41);
  for (const auto& g : set.groups) {
    std::set<std::uint64_t> scenes;
    for (const auto i : g) {
      EXPECT_EQ(set.images[i].geo, set.images[g.front()].geo);
      scenes.insert(set.images[i].scene.seed);
    }
    // Each location hosts between 1 and 4 distinct subjects.
    if (!g.empty()) {
      EXPECT_GE(scenes.size(), 1u);
      EXPECT_LE(scenes.size(), 4u);
    }
  }
  // Dense locations host repeated shots of the same subject (the source of
  // the redundancy BEES eliminates).
  bool any_repeat = false;
  for (const auto& g : set.groups) {
    std::set<std::uint64_t> scenes;
    for (const auto i : g) scenes.insert(set.images[i].scene.seed);
    any_repeat |= (g.size() > scenes.size());
  }
  EXPECT_TRUE(any_repeat);
}

TEST(NearDuplicate, ScoresAbovePaperBar) {
  // Fig. 7 setup requires seeded redundant images with similarity > 0.3.
  const Imageset set = make_kentucky_like(2, 1, 320, 240, 43);
  const ImageSpec& base = set.images[0];
  const ImageSpec dup = make_near_duplicate(base, 7);
  EXPECT_NE(dup.view_seed, base.view_seed);
  const auto fb = feat::extract_orb(base.render());
  const auto fd = feat::extract_orb(dup.render());
  EXPECT_GT(feat::jaccard_similarity(fb, fd), 0.3);
}

TEST(NearDuplicate, DistinctSaltsDistinctDuplicates) {
  const Imageset set = make_kentucky_like(1, 1, 96, 72, 47);
  const ImageSpec d1 = make_near_duplicate(set.images[0], 1);
  const ImageSpec d2 = make_near_duplicate(set.images[0], 2);
  EXPECT_NE(d1.view_seed, d2.view_seed);
}

}  // namespace
}  // namespace bees::wl
