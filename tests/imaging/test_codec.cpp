#include "imaging/codec.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "imaging/quality.hpp"
#include "imaging/synth.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace bees::img {
namespace {

TEST(Dct, RoundTripIsNearExact) {
  util::Rng rng(5);
  float block[64], coeff[64], back[64];
  for (auto& v : block) {
    v = static_cast<float>(rng.uniform(-128.0, 127.0));
  }
  forward_dct_8x8(block, coeff);
  inverse_dct_8x8(coeff, back);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(back[i], block[i], 1e-3);
}

TEST(Dct, ConstantBlockHasOnlyDc) {
  float block[64], coeff[64];
  for (auto& v : block) v = 64.0f;
  forward_dct_8x8(block, coeff);
  EXPECT_NEAR(coeff[0], 64.0f * 8.0f, 1e-2);  // DC = 8 * value (orthonormal)
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(coeff[i], 0.0f, 1e-3);
}

TEST(Dct, ParsevalEnergyPreserved) {
  util::Rng rng(6);
  float block[64], coeff[64];
  for (auto& v : block) v = static_cast<float>(rng.uniform(-100.0, 100.0));
  forward_dct_8x8(block, coeff);
  double e_in = 0, e_out = 0;
  for (int i = 0; i < 64; ++i) {
    e_in += block[i] * block[i];
    e_out += coeff[i] * coeff[i];
  }
  EXPECT_NEAR(e_in, e_out, e_in * 1e-4);
}

class CodecQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(CodecQualitySweep, GrayRoundTripQualityScalesWithQ) {
  const Image src = value_noise(64, 48, 4, 21);
  const auto bytes = encode_jpeg_like(src, GetParam());
  const Image back = decode_jpeg_like(bytes);
  ASSERT_TRUE(back.same_shape(src));
  const double p = psnr(src, back);
  // Even at quality 10 the codec should beat 20 dB on smooth noise; at
  // high quality it should be much better.
  EXPECT_GT(p, GetParam() >= 80 ? 35.0 : 20.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodecQualitySweep,
                         ::testing::Values(10, 30, 50, 70, 90, 100));

TEST(Codec, SizeGrowsWithQuality) {
  const Image src = render_scene(SceneSpec{41}, 96, 96);
  std::size_t prev = 0;
  for (const int q : {5, 25, 50, 75, 95}) {
    const std::size_t size = encode_jpeg_like(src, q).size();
    EXPECT_GT(size, prev);
    prev = size;
  }
}

TEST(Codec, SsimImprovesWithQuality) {
  const Image src = render_scene(SceneSpec{43}, 96, 96);
  const Image low = decode_jpeg_like(encode_jpeg_like(src, 10));
  const Image high = decode_jpeg_like(encode_jpeg_like(src, 90));
  EXPECT_GT(ssim(src, high), ssim(src, low));
  EXPECT_GT(ssim(src, high), 0.9);
}

TEST(Codec, RgbRoundTripKeepsColor) {
  Image src(32, 32, 3);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      src.set(x, y, 200, 0);
      src.set(x, y, 40, 1);
      src.set(x, y, 60, 2);
    }
  }
  const Image back = decode_jpeg_like(encode_jpeg_like(src, 90));
  EXPECT_NEAR(back.at(16, 16, 0), 200, 12);
  EXPECT_NEAR(back.at(16, 16, 1), 40, 12);
  EXPECT_NEAR(back.at(16, 16, 2), 60, 12);
}

TEST(Codec, NonMultipleOfEightDimensions) {
  const Image src = value_noise(37, 23, 3, 55);
  const Image back = decode_jpeg_like(encode_jpeg_like(src, 80));
  EXPECT_EQ(back.width(), 37);
  EXPECT_EQ(back.height(), 23);
  EXPECT_GT(psnr(src, back), 25.0);
}

TEST(Codec, CompressesRealContent) {
  const Image src = render_scene(SceneSpec{47}, 128, 96);
  const auto bytes = encode_jpeg_like(src, 60);
  EXPECT_LT(bytes.size(), src.byte_size() / 3);  // real compression
}

TEST(Codec, BadMagicThrows) {
  std::vector<std::uint8_t> junk(64, 0x5a);
  EXPECT_THROW(decode_jpeg_like(junk), util::DecodeError);
}

TEST(Codec, TruncatedStreamThrows) {
  const Image src = value_noise(32, 32, 3, 61);
  auto bytes = encode_jpeg_like(src, 70);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_jpeg_like(bytes), util::DecodeError);
}

TEST(QualityFromProportion, MapsPaperKnob) {
  EXPECT_EQ(quality_from_proportion(0.0), 100);
  EXPECT_EQ(quality_from_proportion(0.85), 15);
  EXPECT_EQ(quality_from_proportion(0.99), 1);
  EXPECT_EQ(quality_from_proportion(-1.0), 100);  // clamped
}

TEST(CompressedSize, DecreasesWithProportion) {
  const Image src = render_scene(SceneSpec{53}, 96, 96);
  EXPECT_LT(compressed_size(src, 0.85), compressed_size(src, 0.3));
  EXPECT_LT(compressed_size(src, 0.3), compressed_size(src, 0.0));
}

}  // namespace
}  // namespace bees::img
