#include "imaging/quality.hpp"

#include <gtest/gtest.h>

#include "imaging/synth.hpp"
#include "imaging/transform.hpp"
#include "util/rng.hpp"

namespace bees::img {
namespace {

TEST(Mse, IdenticalImagesScoreZero) {
  const Image a = value_noise(32, 32, 3, 1);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Mse, KnownDifference) {
  Image a(2, 1, 1), b(2, 1, 1);
  a.set(0, 0, 10);
  b.set(0, 0, 14);  // diff 4 -> sq 16; other pixel identical
  EXPECT_DOUBLE_EQ(mse(a, b), 8.0);
}

TEST(Mse, ShapeMismatchThrows) {
  Image a(2, 2, 1), b(3, 2, 1);
  EXPECT_THROW(mse(a, b), std::invalid_argument);
}

TEST(Psnr, IdenticalIsCapped) {
  const Image a = value_noise(16, 16, 2, 3);
  EXPECT_DOUBLE_EQ(psnr(a, a), 99.0);
}

TEST(Psnr, DecreasesWithNoise) {
  util::Rng rng(7);
  const Image a = value_noise(64, 64, 3, 5);
  const Image mild = add_gaussian_noise(a, 2.0, rng);
  const Image heavy = add_gaussian_noise(a, 20.0, rng);
  EXPECT_GT(psnr(a, mild), psnr(a, heavy));
  EXPECT_GT(psnr(a, mild), 35.0);
}

TEST(Ssim, IdenticalIsOne) {
  const Image a = render_scene(SceneSpec{11}, 64, 64);
  EXPECT_NEAR(ssim(a, a), 1.0, 1e-9);
}

TEST(Ssim, DegradesMonotonicallyWithNoise) {
  util::Rng rng(9);
  const Image a = render_scene(SceneSpec{13}, 64, 64);
  double prev = 1.0;
  for (const double noise : {2.0, 8.0, 25.0, 60.0}) {
    util::Rng local(static_cast<std::uint64_t>(noise * 100));
    const double s = ssim(a, add_gaussian_noise(a, noise, local));
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(Ssim, InRangeForUnrelatedImages) {
  const Image a = render_scene(SceneSpec{17}, 64, 64);
  const Image b = render_scene(SceneSpec{18}, 64, 64);
  const double s = ssim(a, b);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
  EXPECT_LT(s, 0.6);  // unrelated scenes shouldn't look similar
}

TEST(Ssim, BrightnessShiftPenalizedLessThanStructureLoss) {
  const Image a = render_scene(SceneSpec{19}, 64, 64);
  const Image brighter = adjust_brightness_contrast(a, 1.0, 12.0);
  const Image blurred = gaussian_blur(a, 4.0);
  EXPECT_GT(ssim(a, brighter), ssim(a, blurred));
}

TEST(Ssim, ShapeMismatchThrows) {
  Image a(16, 16, 1), b(16, 8, 1);
  EXPECT_THROW(ssim(a, b), std::invalid_argument);
}

TEST(Ssim, TinyImagesFallBack) {
  Image a(4, 4, 1), b(4, 4, 1);
  a.fill(10);
  b.fill(10);
  EXPECT_DOUBLE_EQ(ssim(a, b), 1.0);
  b.fill(200);
  EXPECT_DOUBLE_EQ(ssim(a, b), 0.0);
}

}  // namespace
}  // namespace bees::img
