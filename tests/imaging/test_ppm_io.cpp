#include "imaging/ppm_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "imaging/synth.hpp"

namespace bees::img {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(PpmIo, RgbRoundTrip) {
  const Image src = render_scene(SceneSpec{3}, 32, 24);
  const std::string path = temp_path("bees_test_rgb.ppm");
  write_pnm(src, path);
  const Image back = read_pnm(path);
  EXPECT_EQ(back, src);
  std::remove(path.c_str());
}

TEST(PpmIo, GrayRoundTrip) {
  const Image src = value_noise(16, 16, 2, 5);
  const std::string path = temp_path("bees_test_gray.pgm");
  write_pnm(src, path);
  const Image back = read_pnm(path);
  EXPECT_EQ(back, src);
  std::remove(path.c_str());
}

TEST(PpmIo, MissingFileThrows) {
  EXPECT_THROW(read_pnm("/nonexistent/dir/file.ppm"), std::runtime_error);
}

TEST(PpmIo, UnwritablePathThrows) {
  const Image src = value_noise(8, 8, 2, 7);
  EXPECT_THROW(write_pnm(src, "/nonexistent/dir/file.ppm"),
               std::runtime_error);
}

TEST(PpmIo, BadMagicThrows) {
  const std::string path = temp_path("bees_test_bad.ppm");
  {
    std::ofstream out(path);
    out << "P3\n2 2\n255\n0 0 0 0 0 0 0 0 0 0 0 0\n";
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PpmIo, TruncatedPixelDataThrows) {
  const std::string path = temp_path("bees_test_trunc.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n4 4\n255\n";
    out.write("\x01\x02", 2);  // 2 of 16 bytes
  }
  EXPECT_THROW(read_pnm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PpmIo, HeaderCommentsAreSkipped) {
  const std::string path = temp_path("bees_test_comment.pgm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P5\n# a comment\n2 1\n# another\n255\n";
    out.write("\x0a\x0b", 2);
  }
  const Image im = read_pnm(path);
  EXPECT_EQ(im.width(), 2);
  EXPECT_EQ(im.height(), 1);
  EXPECT_EQ(im.at(0, 0), 0x0a);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bees::img
