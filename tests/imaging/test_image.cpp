#include "imaging/image.hpp"

#include <gtest/gtest.h>

namespace bees::img {
namespace {

TEST(Image, ConstructionAllocatesZeroed) {
  Image im(4, 3, 3);
  EXPECT_EQ(im.width(), 4);
  EXPECT_EQ(im.height(), 3);
  EXPECT_EQ(im.channels(), 3);
  EXPECT_EQ(im.byte_size(), 36u);
  EXPECT_EQ(im.pixel_count(), 12u);
  for (const auto v : im.data()) EXPECT_EQ(v, 0);
}

TEST(Image, RejectsBadShapes) {
  EXPECT_THROW(Image(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(Image(1, -1, 1), std::invalid_argument);
  EXPECT_THROW(Image(1, 1, 2), std::invalid_argument);
  EXPECT_THROW(Image(1, 1, 4), std::invalid_argument);
}

TEST(Image, SetAndGetPerChannel) {
  Image im(2, 2, 3);
  im.set(1, 0, 200, 2);
  EXPECT_EQ(im.at(1, 0, 2), 200);
  EXPECT_EQ(im.at(1, 0, 0), 0);
}

TEST(Image, ClampedAccessReplicatesBorder) {
  Image im(2, 2, 1);
  im.set(0, 0, 10);
  im.set(1, 1, 40);
  EXPECT_EQ(im.at_clamped(-5, -5), 10);
  EXPECT_EQ(im.at_clamped(7, 9), 40);
}

TEST(Image, FillSetsAllBytes) {
  Image im(3, 3, 1);
  im.fill(77);
  for (const auto v : im.data()) EXPECT_EQ(v, 77);
}

TEST(Image, SameShapeAndEquality) {
  Image a(2, 2, 1), b(2, 2, 1), c(2, 3, 1);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
  EXPECT_EQ(a, b);
  b.set(0, 0, 1);
  EXPECT_NE(a, b);
}

TEST(Image, DefaultIsEmpty) {
  Image im;
  EXPECT_TRUE(im.empty());
  EXPECT_EQ(im.pixel_count(), 0u);
}

TEST(IntegralImage, MatchesNaiveBoxSums) {
  Image im(8, 6, 1);
  int v = 0;
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 8; ++x) im.set(x, y, static_cast<std::uint8_t>(v++ % 251));
  }
  IntegralImage integral(im);
  auto naive = [&](int x0, int y0, int x1, int y1) {
    std::int64_t s = 0;
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) s += im.at(x, y);
    }
    return s;
  };
  EXPECT_EQ(integral.box_sum(0, 0, 7, 5), naive(0, 0, 7, 5));
  EXPECT_EQ(integral.box_sum(2, 1, 5, 4), naive(2, 1, 5, 4));
  EXPECT_EQ(integral.box_sum(3, 3, 3, 3), naive(3, 3, 3, 3));
}

TEST(IntegralImage, ClampsOutOfRangeRectangles) {
  Image im(4, 4, 1);
  im.fill(1);
  IntegralImage integral(im);
  EXPECT_EQ(integral.box_sum(-10, -10, 100, 100), 16);
}

TEST(IntegralImage, EmptyRectangleIsZero) {
  Image im(4, 4, 1);
  im.fill(1);
  IntegralImage integral(im);
  EXPECT_EQ(integral.box_sum(3, 3, 1, 1), 0);
}

}  // namespace
}  // namespace bees::img
