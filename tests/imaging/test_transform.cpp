#include "imaging/transform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "imaging/synth.hpp"

namespace bees::img {
namespace {

Image gradient_image(int w, int h) {
  Image im(w, h, 1);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      im.set(x, y, static_cast<std::uint8_t>((x * 255) / (w - 1)));
    }
  }
  return im;
}

TEST(ToGray, UsesBt601Weights) {
  Image rgb(1, 1, 3);
  rgb.set(0, 0, 255, 0);  // pure red
  EXPECT_NEAR(to_gray(rgb).at(0, 0), 76, 1);  // 0.299 * 255
  rgb.fill(0);
  rgb.set(0, 0, 255, 1);  // pure green
  EXPECT_NEAR(to_gray(rgb).at(0, 0), 150, 1);  // 0.587 * 255
}

TEST(ToGray, GrayPassThrough) {
  Image g(3, 3, 1);
  g.fill(42);
  EXPECT_EQ(to_gray(g), g);
}

TEST(Resize, IdentityPreservesPixels) {
  const Image src = value_noise(16, 12, 2, 77);
  const Image out = resize(src, 16, 12);
  // Identity resize through pixel-center mapping is exact.
  EXPECT_EQ(out, src);
}

TEST(Resize, HalvesDimensions) {
  const Image src = gradient_image(16, 16);
  const Image out = resize(src, 8, 8);
  EXPECT_EQ(out.width(), 8);
  EXPECT_EQ(out.height(), 8);
  // A horizontal gradient stays monotone after downscale.
  for (int x = 1; x < 8; ++x) EXPECT_GE(out.at(x, 4), out.at(x - 1, 4));
}

TEST(Resize, PreservesMeanApproximately) {
  const Image src = value_noise(64, 64, 3, 5);
  const Image out = resize(src, 32, 32);
  double mean_src = 0, mean_out = 0;
  for (const auto v : src.data()) mean_src += v;
  for (const auto v : out.data()) mean_out += v;
  mean_src /= static_cast<double>(src.data().size());
  mean_out /= static_cast<double>(out.data().size());
  EXPECT_NEAR(mean_src, mean_out, 3.0);
}

TEST(Resize, RejectsBadDimensions) {
  const Image src = gradient_image(4, 4);
  EXPECT_THROW(resize(src, 0, 4), std::invalid_argument);
  EXPECT_THROW(resize(src, 4, -1), std::invalid_argument);
}

class BitmapCompressProportions : public ::testing::TestWithParam<double> {};

TEST_P(BitmapCompressProportions, ShrinksByProportion) {
  const Image src = gradient_image(100, 80);
  const double p = GetParam();
  const Image out = bitmap_compress(src, p);
  EXPECT_NEAR(out.width(), std::max(8.0, 100.0 * (1 - p)), 1.0);
  EXPECT_NEAR(out.height(), std::max(8.0, 80.0 * (1 - p)), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitmapCompressProportions,
                         ::testing::Values(0.1, 0.2, 0.4, 0.6, 0.9));

TEST(BitmapCompress, ZeroIsCopy) {
  const Image src = gradient_image(10, 10);
  EXPECT_EQ(bitmap_compress(src, 0.0), src);
}

TEST(BitmapCompress, FlooredAtEightPixels) {
  const Image src = gradient_image(10, 10);
  const Image out = bitmap_compress(src, 0.99);
  EXPECT_GE(out.width(), 8);
  EXPECT_GE(out.height(), 8);
}

TEST(GaussianBlur, PreservesConstantImage) {
  Image im(16, 16, 1);
  im.fill(100);
  const Image out = gaussian_blur(im, 2.0);
  for (const auto v : out.data()) EXPECT_NEAR(v, 100, 1);
}

TEST(GaussianBlur, ReducesVariance) {
  const Image src = value_noise(32, 32, 4, 3);
  const Image out = gaussian_blur(src, 1.5);
  auto variance = [](const Image& im) {
    double mean = 0;
    for (const auto v : im.data()) mean += v;
    mean /= static_cast<double>(im.data().size());
    double var = 0;
    for (const auto v : im.data()) var += (v - mean) * (v - mean);
    return var / static_cast<double>(im.data().size());
  };
  EXPECT_LT(variance(out), variance(src));
}

TEST(GaussianBlur, RejectsNonPositiveSigma) {
  Image im(4, 4, 1);
  EXPECT_THROW(gaussian_blur(im, 0.0), std::invalid_argument);
  EXPECT_THROW(gaussian_blur(im, -1.0), std::invalid_argument);
}

TEST(WarpAffine, IdentityIsExact) {
  const Image src = value_noise(20, 20, 2, 9);
  const Affine identity;
  EXPECT_EQ(warp_affine(src, identity), src);
}

TEST(WarpAffine, RotationAboutCenterKeepsCenter) {
  Image src(21, 21, 1);
  src.set(10, 10, 255);
  const Affine rot = Affine::rotation_about(10, 10, M_PI / 4);
  const Image out = warp_affine(src, rot);
  EXPECT_GT(out.at(10, 10), 100);  // the center pixel stays bright
}

TEST(WarpAffine, TranslationMovesContent) {
  Image src(16, 16, 1);
  src.set(4, 4, 255);
  const Affine shift = Affine::rotation_about(8, 8, 0.0, 1.0, 3.0, 0.0);
  const Image out = warp_affine(src, shift);
  EXPECT_GT(out.at(7, 4), 200);  // moved right by ~3
}

TEST(AdjustBrightnessContrast, AppliesGainAndBias) {
  Image im(2, 1, 1);
  im.set(0, 0, 100);
  im.set(1, 0, 200);
  const Image out = adjust_brightness_contrast(im, 1.5, 10.0);
  EXPECT_EQ(out.at(0, 0), 160);
  EXPECT_EQ(out.at(1, 0), 255);  // clamped
}

TEST(AddGaussianNoise, ChangesPixelsWithBoundedDeviation) {
  util::Rng rng(31);
  Image im(32, 32, 1);
  im.fill(128);
  const Image out = add_gaussian_noise(im, 5.0, rng);
  double mean = 0;
  for (const auto v : out.data()) mean += v;
  mean /= static_cast<double>(out.data().size());
  EXPECT_NEAR(mean, 128.0, 1.5);
  EXPECT_NE(out, im);
}

TEST(Crop, ExtractsSubRectangle) {
  const Image src = gradient_image(10, 10);
  const Image out = crop(src, 2, 3, 4, 5);
  EXPECT_EQ(out.width(), 4);
  EXPECT_EQ(out.height(), 5);
  EXPECT_EQ(out.at(0, 0), src.at(2, 3));
  EXPECT_EQ(out.at(3, 4), src.at(5, 7));
}

TEST(Crop, RejectsOutOfBounds) {
  const Image src = gradient_image(10, 10);
  EXPECT_THROW(crop(src, 8, 8, 4, 4), std::invalid_argument);
  EXPECT_THROW(crop(src, -1, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(crop(src, 0, 0, 0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace bees::img
