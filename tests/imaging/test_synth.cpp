#include "imaging/synth.hpp"

#include <gtest/gtest.h>

#include "imaging/quality.hpp"
#include "imaging/transform.hpp"

namespace bees::img {
namespace {

TEST(ValueNoise, DeterministicInSeed) {
  EXPECT_EQ(value_noise(32, 24, 3, 7), value_noise(32, 24, 3, 7));
}

TEST(ValueNoise, DifferentSeedsDiffer) {
  EXPECT_NE(value_noise(32, 24, 3, 7), value_noise(32, 24, 3, 8));
}

TEST(ValueNoise, HasSpatialStructure) {
  // Neighbouring pixels should be correlated (it's low-frequency noise, not
  // white noise): the mean absolute neighbour difference stays small.
  const Image n = value_noise(64, 64, 3, 11);
  double diff = 0;
  int count = 0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 1; x < 64; ++x) {
      diff += std::abs(static_cast<int>(n.at(x, y)) - n.at(x - 1, y));
      ++count;
    }
  }
  EXPECT_LT(diff / count, 10.0);
}

TEST(RenderScene, DeterministicAndSeedSensitive) {
  SceneSpec a{123, 10, 3};
  SceneSpec b{124, 10, 3};
  EXPECT_EQ(render_scene(a, 64, 48), render_scene(a, 64, 48));
  EXPECT_NE(render_scene(a, 64, 48), render_scene(b, 64, 48));
}

TEST(RenderScene, ProducesRgbOfRequestedSize) {
  const Image im = render_scene(SceneSpec{5}, 80, 60);
  EXPECT_EQ(im.width(), 80);
  EXPECT_EQ(im.height(), 60);
  EXPECT_EQ(im.channels(), 3);
}

TEST(RenderScene, HasContrast) {
  const Image im = render_scene(SceneSpec{9, 16, 4}, 96, 96);
  const Image g = to_gray(im);
  std::uint8_t lo = 255, hi = 0;
  for (const auto v : g.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 60);  // shapes create real contrast for the detectors
}

TEST(RenderView, DiffersFromCanonicalButSimilar) {
  SceneSpec spec{31};
  const Image canonical = render_scene(spec, 96, 72);
  util::Rng rng(1);
  const Image view = render_view(spec, 96, 72, ViewPerturbation{}, rng);
  EXPECT_NE(view, canonical);
  // Still the same scene: SSIM well above what unrelated scenes score.
  EXPECT_GT(ssim(canonical, view), 0.35);
  const Image other = render_scene(SceneSpec{32}, 96, 72);
  EXPECT_LT(ssim(canonical, other), ssim(canonical, view));
}

TEST(RenderView, DistinctDrawsDistinctViews) {
  SceneSpec spec{33};
  util::Rng rng(2);
  const Image v1 = render_view(spec, 64, 48, ViewPerturbation{}, rng);
  const Image v2 = render_view(spec, 64, 48, ViewPerturbation{}, rng);
  EXPECT_NE(v1, v2);
}

TEST(RenderView, ZeroPerturbationStillAppliesNoiseOnly) {
  SceneSpec spec{35};
  ViewPerturbation none;
  none.max_rotation_rad = 0;
  none.max_scale_delta = 0;
  none.max_translate_frac = 0;
  none.max_gain_delta = 0;
  none.max_bias = 0;
  none.noise_stddev = 0;
  util::Rng rng(3);
  const Image v = render_view(spec, 64, 48, none, rng);
  EXPECT_EQ(v, render_scene(spec, 64, 48));
}

}  // namespace
}  // namespace bees::img
