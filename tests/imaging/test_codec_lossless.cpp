#include "imaging/codec_lossless.hpp"

#include <gtest/gtest.h>

#include "imaging/codec.hpp"
#include "imaging/synth.hpp"
#include "imaging/transform.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace bees::img {
namespace {

TEST(LosslessCodec, RgbRoundTripIsExact) {
  const Image src = render_scene(SceneSpec{61, 18, 4}, 96, 72);
  EXPECT_EQ(decode_lossless(encode_lossless(src)), src);
}

TEST(LosslessCodec, GrayRoundTripIsExact) {
  const Image src = value_noise(64, 48, 4, 63);
  EXPECT_EQ(decode_lossless(encode_lossless(src)), src);
}

TEST(LosslessCodec, NoisyImageRoundTripIsExact) {
  util::Rng rng(65);
  Image src(48, 48, 3);
  for (auto& b : src.data()) b = static_cast<std::uint8_t>(rng.next_u64());
  EXPECT_EQ(decode_lossless(encode_lossless(src)), src);
}

TEST(LosslessCodec, TinyImagesRoundTrip) {
  Image one(1, 1, 3);
  one.set(0, 0, 200, 1);
  EXPECT_EQ(decode_lossless(encode_lossless(one)), one);
  Image row(7, 1, 1);
  for (int x = 0; x < 7; ++x) row.set(x, 0, static_cast<std::uint8_t>(x * 30));
  EXPECT_EQ(decode_lossless(encode_lossless(row)), row);
}

TEST(LosslessCodec, CompressesSmoothContent) {
  // Smooth gradients predict perfectly under Sub/Up: large savings.
  Image smooth(128, 128, 1);
  for (int y = 0; y < 128; ++y) {
    for (int x = 0; x < 128; ++x) {
      smooth.set(x, y, static_cast<std::uint8_t>((x + y) / 2));
    }
  }
  const auto bytes = encode_lossless(smooth);
  EXPECT_LT(bytes.size(), smooth.byte_size() / 8);
}

TEST(LosslessCodec, SceneContentStillShrinks) {
  const Image src = render_scene(SceneSpec{67, 18, 4}, 128, 96);
  const auto bytes = encode_lossless(src);
  EXPECT_LT(bytes.size(), src.byte_size());
}

TEST(LosslessCodec, LossyIsMuchSmallerThanLossless) {
  // The paper's rationale for choosing JPEG over PNG for AIU.
  const Image src = render_scene(SceneSpec{69, 18, 4}, 128, 96);
  const auto lossless = encode_lossless(src);
  const auto lossy = encode_jpeg_like(src, 15);  // the 0.85 proportion
  EXPECT_LT(lossy.size() * 4, lossless.size());
}

TEST(LosslessCodec, BadMagicThrows) {
  std::vector<std::uint8_t> junk(64, 0x13);
  EXPECT_THROW(decode_lossless(junk), util::DecodeError);
}

TEST(LosslessCodec, TruncatedThrows) {
  const Image src = render_scene(SceneSpec{71, 18, 4}, 64, 48);
  auto bytes = encode_lossless(src);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_lossless(bytes), util::DecodeError);
}

TEST(LosslessCodec, CorruptFilterByteThrows) {
  // Corrupting the compressed stream either throws at LZ level or yields a
  // bad filter byte; both must surface as DecodeError (never UB).
  const Image src = value_noise(32, 32, 3, 73);
  const auto bytes = encode_lossless(src);
  util::Rng rng(75);
  int caught = 0, survived = 0;
  for (int trial = 0; trial < 60; ++trial) {
    auto mutated = bytes;
    mutated[13 + rng.index(mutated.size() - 13)] ^=
        static_cast<std::uint8_t>(1u << rng.index(8));
    try {
      (void)decode_lossless(mutated);
      ++survived;  // a mutation that still decodes to some image is fine
    } catch (const util::DecodeError&) {
      ++caught;
    }
  }
  EXPECT_EQ(caught + survived, 60);
}

class LosslessSizes : public ::testing::TestWithParam<int> {};

TEST_P(LosslessSizes, VariousDimensionsRoundTrip) {
  const int dim = GetParam();
  const Image src = value_noise(dim, dim * 2 / 3 + 1, 3, 77);
  EXPECT_EQ(decode_lossless(encode_lossless(src)), src);
}

INSTANTIATE_TEST_SUITE_P(Dims, LosslessSizes,
                         ::testing::Values(3, 8, 17, 33, 64));

}  // namespace
}  // namespace bees::img
