// bees_loadgen — fleet load generator: N simulated devices (each with its
// own battery, adaptive knobs, and lossy radio) drive a serve::Cluster
// and the run is summarized as a machine-readable SLO report.
//
// stdout carries exactly the JSON report, which is byte-identical for a
// fixed --seed across repeated runs and across any --workers count (the
// determinism contract of fleet::run_fleet).  Wall-clock measurements and
// a human summary go to stderr.
//
// Usage:
//   bees_loadgen [--seed S] [--devices N] [--duration S] [--epoch S]
//                [--closed-loop] [--rate HZ] [--think S]
//                [--spike-start S] [--spike-duration S] [--spike-mult X]
//                [--batch N] [--set-images N] [--set-locations N]
//                [--width W] [--height H] [--seed-fraction F]
//                [--shards N] [--server-threads N] [--queue-depth N]
//                [--batch-window N] [--service-base S] [--service-per-image S]
//                [--bitrate KBPS] [--loss P] [--retries N] [--backoff S]
//                [--battery PCT] [--no-adapt] [--workers N]
//                [--replicas N] [--relays N] [--relay-chunk BYTES]
//                [--partition B:E[:R]] [--relay-outage B:E[:R]]
//                [--kill-primary E:S]
//                [--slo-p99 S] [--slo-shed-rate F] [--report PATH] [--quiet]
//
//   --devices        fleet size                                (default 64)
//   --duration       offered-load window, virtual seconds      (default 120)
//   --epoch          simulation epoch length                   (default 1)
//   --closed-loop    think-time clients instead of open-loop Poisson
//   --rate           per-device capture rate, Hz (open loop)   (default 0.05)
//   --think          mean think time, s (closed loop)          (default 5)
//   --spike-start    disaster spike start, s; < 0 disables     (default -1)
//   --spike-duration spike length, s                           (default 30)
//   --spike-mult     rate multiplier during the spike          (default 10)
//   --batch          images per capture                        (default 4)
//   --seed-fraction  fraction of the imageset pre-seeded into
//                    the situation index                       (default 0.25)
//   --shards / --server-threads / --queue-depth   serving layer shape
//   --batch-window   max admitted queries coalesced per fan-out (default 1);
//                    requires --server-threads (the window coalesces the
//                    queue that pool serves); replies and every non-batching
//                    report field are byte-identical to batch-window 1
//   --service-base / --service-per-image          virtual service time model
//   --bitrate / --loss / --retries / --backoff    per-device radio
//   --battery        starting battery percentage 1..100        (default 100)
//   --no-adapt       pin EAC/EDR/EAU at full-energy values (BEES-EA)
//   --workers        phase-A worker threads; 0 = hardware      (default 1)
//   --replicas       standby followers per shard; killing a primary
//                    fails over to its most-caught-up follower  (default 0)
//   --relays         edge relays between devices and core; uploads
//                    dedup on content chunks (CARE)             (default 0)
//   --relay-chunk    CARE chunking interval, bytes; requires
//                    --relays                                   (default 4096)
//   --partition      backhaul partition over epochs [B, E), optionally
//                    only relay R; repeatable; requires --relays
//   --relay-outage   relay down over epochs [B, E), optionally only
//                    relay R; repeatable; requires --relays
//   --kill-primary   kill shard S's primary at epoch E; repeatable;
//                    requires --replicas
//   --slo-p99        p99 latency target, s; with a target set the exit
//                    code is 1 when the SLO verdict fails      (default off)
//   --slo-shed-rate  max tolerated shed fraction 0..1          (default off)
//   --report         also write the JSON report to PATH
//   --quiet          suppress the stderr summary
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "fleet/simulator.hpp"

using namespace bees;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--seed S] [--devices N] [--duration S] [--epoch S]\n"
         "       [--closed-loop] [--rate HZ] [--think S] [--spike-start S]\n"
         "       [--spike-duration S] [--spike-mult X] [--batch N]\n"
         "       [--set-images N] [--set-locations N] [--width W]\n"
         "       [--height H] [--seed-fraction F] [--shards N]\n"
         "       [--server-threads N] [--queue-depth N] [--batch-window N]\n"
         "       [--service-base S]\n"
         "       [--service-per-image S] [--bitrate KBPS] [--loss P]\n"
         "       [--retries N] [--backoff S] [--battery PCT] [--no-adapt]\n"
         "       [--workers N] [--replicas N] [--relays N]\n"
         "       [--relay-chunk BYTES] [--partition B:E[:R]]\n"
         "       [--relay-outage B:E[:R]] [--kill-primary E:S]\n"
         "       [--slo-p99 S] [--slo-shed-rate F]\n"
         "       [--report PATH] [--quiet]\n";
  return 2;
}

struct Options {
  fleet::FleetOptions fleet;
  double battery_pct = 100.0;
  std::string report_path;
  bool quiet = false;
  bool server_threads_set = false;
  bool batch_window_set = false;
  bool relay_chunk_set = false;
};

/// "B:E" or "B:E:R" -> an epoch window; returns false on malformed input.
bool parse_window(const std::string& s, fleet::EpochWindow& out) {
  try {
    std::size_t p1 = s.find(':');
    if (p1 == std::string::npos) return false;
    std::size_t p2 = s.find(':', p1 + 1);
    out.begin = std::stoull(s.substr(0, p1));
    out.end = std::stoull(s.substr(p1 + 1, p2 == std::string::npos
                                                ? std::string::npos
                                                : p2 - p1 - 1));
    out.target = p2 == std::string::npos ? -1 : std::stoi(s.substr(p2 + 1));
  } catch (const std::exception&) {
    return false;
  }
  return out.begin < out.end;
}

/// "E:S" -> a primary kill; returns false on malformed input.
bool parse_kill(const std::string& s, fleet::PrimaryKill& out) {
  try {
    const std::size_t p = s.find(':');
    if (p == std::string::npos) return false;
    out.epoch = std::stoull(s.substr(0, p));
    out.shard = std::stoi(s.substr(p + 1));
  } catch (const std::exception&) {
    return false;
  }
  return out.shard >= 0;
}

bool parse(int argc, char** argv, Options& opt) {
  fleet::FleetOptions& f = opt.fleet;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::stod(argv[++i]);
      return true;
    };
    double v = 0;
    if (arg == "--seed" && next(v)) {
      f.seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--devices" && next(v)) {
      f.devices = static_cast<int>(v);
    } else if (arg == "--duration" && next(v)) {
      f.duration_s = v;
    } else if (arg == "--epoch" && next(v)) {
      f.epoch_s = v;
    } else if (arg == "--closed-loop") {
      f.closed_loop = true;
    } else if (arg == "--rate" && next(v)) {
      f.rate_hz = v;
    } else if (arg == "--think" && next(v)) {
      f.think_s = v;
    } else if (arg == "--spike-start" && next(v)) {
      f.spike_start_s = v;
    } else if (arg == "--spike-duration" && next(v)) {
      f.spike_duration_s = v;
    } else if (arg == "--spike-mult" && next(v)) {
      f.spike_multiplier = v;
    } else if (arg == "--batch" && next(v)) {
      f.batch = static_cast<int>(v);
    } else if (arg == "--set-images" && next(v)) {
      f.set_images = static_cast<int>(v);
    } else if (arg == "--set-locations" && next(v)) {
      f.set_locations = static_cast<int>(v);
    } else if (arg == "--width" && next(v)) {
      f.width = static_cast<int>(v);
    } else if (arg == "--height" && next(v)) {
      f.height = static_cast<int>(v);
    } else if (arg == "--seed-fraction" && next(v)) {
      f.seed_fraction = v;
    } else if (arg == "--shards" && next(v)) {
      f.shards = static_cast<int>(v);
    } else if (arg == "--server-threads" && next(v)) {
      f.server_threads = static_cast<int>(v);
      opt.server_threads_set = true;
    } else if (arg == "--queue-depth" && next(v)) {
      f.queue_depth = static_cast<std::size_t>(v);
    } else if (arg == "--batch-window" && next(v)) {
      f.batch_window = static_cast<int>(v);
      opt.batch_window_set = true;
    } else if (arg == "--service-base" && next(v)) {
      f.service_base_s = v;
    } else if (arg == "--service-per-image" && next(v)) {
      f.service_per_image_s = v;
    } else if (arg == "--bitrate" && next(v)) {
      f.bitrate_kbps = v;
    } else if (arg == "--loss" && next(v)) {
      f.loss = v;
    } else if (arg == "--retries" && next(v)) {
      f.retry.max_attempts = static_cast<int>(v);
    } else if (arg == "--backoff" && next(v)) {
      f.retry.backoff_base_s = v;
    } else if (arg == "--battery" && next(v)) {
      opt.battery_pct = v;
    } else if (arg == "--no-adapt") {
      f.adaptive = false;
    } else if (arg == "--workers" && next(v)) {
      f.workers = static_cast<int>(v);
    } else if (arg == "--replicas" && next(v)) {
      f.replicas = static_cast<int>(v);
    } else if (arg == "--relays" && next(v)) {
      f.relays = static_cast<int>(v);
    } else if (arg == "--relay-chunk" && next(v)) {
      f.relay_chunk_size = static_cast<std::uint32_t>(v);
      opt.relay_chunk_set = true;
    } else if (arg == "--partition" && i + 1 < argc) {
      fleet::EpochWindow w;
      if (!parse_window(argv[++i], w)) return false;
      f.partitions.push_back(w);
    } else if (arg == "--relay-outage" && i + 1 < argc) {
      fleet::EpochWindow w;
      if (!parse_window(argv[++i], w)) return false;
      f.relay_outages.push_back(w);
    } else if (arg == "--kill-primary" && i + 1 < argc) {
      fleet::PrimaryKill k;
      if (!parse_kill(argv[++i], k)) return false;
      f.primary_kills.push_back(k);
    } else if (arg == "--slo-p99" && next(v)) {
      f.slo_p99_s = v;
    } else if (arg == "--slo-shed-rate" && next(v)) {
      f.slo_max_shed_rate = v;
    } else if (arg == "--report" && i + 1 < argc) {
      opt.report_path = argv[++i];
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      return false;
    }
  }
  f.battery_fraction = opt.battery_pct / 100.0;
  return f.devices >= 1 && f.duration_s > 0 && f.epoch_s > 0 &&
         f.rate_hz >= 0 && f.think_s >= 0 && f.batch >= 1 &&
         f.set_images >= 1 && f.set_locations >= 1 && f.width >= 32 &&
         f.height >= 32 && f.seed_fraction >= 0 && f.seed_fraction <= 1 &&
         f.shards >= 1 && f.server_threads >= 1 && f.queue_depth >= 1 &&
         f.batch_window >= 1 &&
         f.bitrate_kbps > 0 && f.loss >= 0 && f.loss <= 1 &&
         f.retry.max_attempts >= 1 && f.retry.backoff_base_s > 0 &&
         opt.battery_pct > 0 && opt.battery_pct <= 100 && f.workers >= 0 &&
         f.replicas >= 0 && f.relays >= 0 && f.relay_chunk_size >= 1 &&
         f.slo_max_shed_rate <= 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage(argv[0]);
  if (opt.batch_window_set && !opt.server_threads_set) {
    std::cerr << "bees_loadgen: --batch-window requires --server-threads "
                 "(the window coalesces the queue that pool serves)\n";
    return 2;
  }
  if (opt.fleet.relays < 1 &&
      (opt.relay_chunk_set || !opt.fleet.partitions.empty() ||
       !opt.fleet.relay_outages.empty())) {
    std::cerr << "bees_loadgen: --relay-chunk/--partition/--relay-outage "
                 "describe the relay tier; add --relays\n";
    return 2;
  }
  if (!opt.fleet.primary_kills.empty() && opt.fleet.replicas < 1) {
    std::cerr << "bees_loadgen: --kill-primary needs a standby to promote; "
                 "add --replicas\n";
    return 2;
  }
  for (const fleet::PrimaryKill& k : opt.fleet.primary_kills) {
    if (k.shard >= opt.fleet.shards) {
      std::cerr << "bees_loadgen: --kill-primary targets shard " << k.shard
                << " but the cluster has " << opt.fleet.shards << "\n";
      return 2;
    }
  }
  for (const fleet::EpochWindow& w : opt.fleet.partitions) {
    if (w.target >= opt.fleet.relays) {
      std::cerr << "bees_loadgen: --partition targets relay " << w.target
                << " but the tier has " << opt.fleet.relays << "\n";
      return 2;
    }
  }
  for (const fleet::EpochWindow& w : opt.fleet.relay_outages) {
    if (w.target >= opt.fleet.relays) {
      std::cerr << "bees_loadgen: --relay-outage targets relay " << w.target
                << " but the tier has " << opt.fleet.relays << "\n";
      return 2;
    }
  }

  const fleet::FleetResult result = fleet::run_fleet(opt.fleet);
  const std::string json = result.report.to_json();

  std::cout << json;
  if (!opt.report_path.empty()) {
    std::ofstream out(opt.report_path);
    if (!out) {
      std::cerr << "bees_loadgen: cannot write " << opt.report_path << "\n";
      return 2;
    }
    out << json;
  }

  if (!opt.quiet) {
    const fleet::FleetReport& r = result.report;
    std::fprintf(stderr,
                 "fleet: %d devices, %.0fs %s load: offered %llu, served "
                 "%llu, shed %llu (%.2f%%)\n",
                 r.config.devices, r.config.duration_s,
                 r.config.closed_loop ? "closed-loop" : "open-loop",
                 static_cast<unsigned long long>(r.totals.offered),
                 static_cast<unsigned long long>(r.totals.served),
                 static_cast<unsigned long long>(r.totals.shed),
                 100.0 * r.totals.shed_rate());
    std::fprintf(stderr,
                 "latency: p50 %.3fs  p90 %.3fs  p99 %.3fs  (%llu requests)\n",
                 r.latency_all.p50_s, r.latency_all.p90_s, r.latency_all.p99_s,
                 static_cast<unsigned long long>(r.latency_all.count));
    std::fprintf(stderr,
                 "real cluster: %zu handles in %.3fs wall (%.1f req/s); "
                 "run wall %.3fs\n",
                 result.real_handles, result.serve_wall_seconds,
                 result.serve_wall_seconds > 0
                     ? static_cast<double>(result.real_handles) /
                           result.serve_wall_seconds
                     : 0.0,
                 result.wall_seconds);
    if (opt.fleet.replicas > 0 || opt.fleet.relays > 0) {
      std::fprintf(stderr,
                   "resilience: %llu failovers (ship lag max %llu); relay "
                   "backhaul %llu B of %llu B ingress (saved %llu B), "
                   "held %llu, rejected %llu\n",
                   static_cast<unsigned long long>(r.resilience.failovers),
                   static_cast<unsigned long long>(r.resilience.ship_lag_max),
                   static_cast<unsigned long long>(
                       r.resilience.relay_backhaul_bytes),
                   static_cast<unsigned long long>(
                       r.resilience.relay_ingress_bytes),
                   static_cast<unsigned long long>(
                       r.resilience.relay_dedup_bytes_saved),
                   static_cast<unsigned long long>(r.resilience.relay_held),
                   static_cast<unsigned long long>(r.resilience.relay_rejects));
    }
    if (opt.fleet.slo_p99_s > 0 || opt.fleet.slo_max_shed_rate >= 0) {
      std::fprintf(stderr, "slo: %s\n", r.slo.ok() ? "OK" : "VIOLATED");
    }
  }

  const bool gated =
      opt.fleet.slo_p99_s > 0 || opt.fleet.slo_max_shed_rate >= 0;
  return gated && !result.report.slo.ok() ? 1 : 0;
}
