// bees_sim — command-line BEES simulator.  Runs any scheme over a
// configurable workload/channel/battery and prints the itemized report, so
// a downstream user can explore the design space without writing code.
//
// Usage:
//   bees_sim [--scheme NAME] [--images N] [--similar N] [--redundancy R]
//            [--bitrate KBPS] [--battery PCT] [--width W] [--height H]
//            [--seed S] [--loss P] [--outage P] [--outage-dur S]
//            [--retries N] [--timeout S] [--backoff S] [--csv]
//            [--metrics-json PATH] [--trace PATH]
//
//   --scheme      Direct | SmartEye | MRC | BEES | BEES-EA   (default BEES)
//   --images      batch size                                  (default 40)
//   --similar     in-batch similar images in the batch        (default 4)
//   --redundancy  cross-batch redundancy ratio 0..1 seeded on
//                 the server                                  (default 0.25)
//   --bitrate     fixed channel bitrate in Kbps; 0 = the
//                 fluctuating 0-512 Kbps disaster channel     (default 256)
//   --battery     starting battery percentage 1..100          (default 100)
//   --loss        per-message loss probability 0..1           (default 0)
//   --outage      outage probability per channel resample     (default 0)
//   --outage-dur  outage window length in seconds             (default 4)
//   --retries     send attempts per message (1 = no retry)    (default 8)
//   --timeout     per-attempt airtime deadline in seconds;
//                 0 = wait out any stall                      (default 0)
//   --backoff     base backoff before the first retry (s)     (default 0.5)
//   --csv         print one machine-readable CSV line instead of the table
//   --metrics-json  enable observability and write the metrics registry
//                   (counters / gauges / stage histograms) as JSON to PATH
//   --trace         enable observability and write a chrome://tracing
//                   event file of the run's pipeline spans to PATH
//
// Serving-layer options (any of them routes the run through a
// serve::Cluster instead of the in-process serial server; results are
// byte-identical for every shard/thread count):
//   --shards         cluster shard count                       (default 1)
//   --server-threads cluster worker threads                    (default 1)
//   --queue-depth    admission bound before requests are shed  (default 256)
//   --batch-window   max queued queries coalesced per fan-out  (default 1)
//   --data-dir       durability root: recover on start, write per-shard
//                    WALs during the run, checkpoint on exit
//   --save-index PATH  save the binary index as a snapshot on exit
//   --load-index PATH  pre-seed the binary index from a snapshot
//
// Chunk-store options (enable the content-addressed segment store and the
// chunk-manifest upload plane, for either server mode):
//   --store-dir PATH   segment-store directory; uploads become chunked
//                      (dedup + partial-resend), and with a cluster the
//                      shard WALs/snapshots route through the same store
//   --chunk-size B     chunk size in bytes                    (default 8192)
//
// Flag coherence: --load-index requires --data-dir (a warm start only
// makes sense against a durability root to recover into), --queue-depth
// requires --server-threads (the admission bound gates the cluster's
// worker pool), --batch-window requires --server-threads (coalescing
// happens behind the gate that pool serves), and --chunk-size requires
// --store-dir (a chunking interval
// without a chunk store has nothing to apply to); incoherent combinations
// are rejected with a one-line error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/bees.hpp"
#include "core/simulation.hpp"
#include "index/persistence.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/cluster.hpp"
#include "store/segment_store.hpp"
#include "util/table.hpp"

using namespace bees;

namespace {

struct Options {
  std::string scheme = "BEES";
  int images = 40;
  int similar = 4;
  double redundancy = 0.25;
  double bitrate_kbps = 256.0;
  double battery_pct = 100.0;
  int width = 320;
  int height = 240;
  std::uint64_t seed = 42;
  double loss = 0.0;
  double outage = 0.0;
  double outage_dur = 4.0;
  int retries = 8;
  double timeout_s = 0.0;
  double backoff_s = 0.5;
  bool csv = false;
  std::string metrics_json_path;
  std::string trace_path;
  // Serving layer: 0 / empty = legacy in-process serial server.
  int shards = 0;
  int server_threads = 0;
  int queue_depth = 0;
  int batch_window = 0;
  std::string data_dir;
  std::string save_index_path;
  std::string load_index_path;
  std::string store_dir;
  int chunk_size = 0;  // 0 = default (only valid with --store-dir)

  bool use_cluster() const {
    return shards > 0 || server_threads > 0 || queue_depth > 0 ||
           batch_window > 0 || !data_dir.empty();
  }
};

/// CSV columns: header label -> BatchReport named_values() row.
struct CsvColumn {
  const char* header;
  const char* value;
};

constexpr CsvColumn kCsvColumns[] = {
    {"images", "images_offered"},
    {"uploaded", "images_uploaded"},
    {"cross_elim", "eliminated_cross_batch"},
    {"inbatch_elim", "eliminated_in_batch"},
    {"image_bytes", "image_bytes"},
    {"feature_bytes", "feature_bytes"},
    {"rx_bytes", "rx_bytes"},
    {"energy_j", "energy_active_j"},
    {"busy_s", "busy_seconds"},
    {"mean_delay_s", "mean_delay_seconds"},
    {"aborted", "aborted"},
    {"retries", "retries"},
    {"retransmitted_bytes", "retransmitted_bytes"},
    {"gave_up", "gave_up"},
    // Chunk-upload plane counters (all 0 unless --store-dir); appended so
    // every pre-existing column keeps its position.
    {"chunks_sent", "chunks_sent"},
    {"chunks_deduped", "chunks_deduped"},
    {"chunks_resent", "chunks_resent"},
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scheme Direct|SmartEye|MRC|BEES|BEES-EA] [--images N]\n"
               "       [--similar N] [--redundancy R] [--bitrate KBPS]\n"
               "       [--battery PCT] [--width W] [--height H] [--seed S]\n"
               "       [--loss P] [--outage P] [--outage-dur S] [--retries N]\n"
               "       [--timeout S] [--backoff S] [--csv]\n"
               "       [--metrics-json PATH] [--trace PATH]\n"
               "       [--shards N] [--server-threads N] [--queue-depth N]\n"
               "       [--batch-window N] [--data-dir PATH] [--save-index PATH]\n"
               "       [--load-index PATH] [--store-dir PATH]\n"
               "       [--chunk-size BYTES]\n";
  return 2;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::stod(argv[++i]);
      return true;
    };
    double v = 0;
    if (arg == "--scheme" && i + 1 < argc) {
      opt.scheme = argv[++i];
    } else if (arg == "--images" && next(v)) {
      opt.images = static_cast<int>(v);
    } else if (arg == "--similar" && next(v)) {
      opt.similar = static_cast<int>(v);
    } else if (arg == "--redundancy" && next(v)) {
      opt.redundancy = v;
    } else if (arg == "--bitrate" && next(v)) {
      opt.bitrate_kbps = v;
    } else if (arg == "--battery" && next(v)) {
      opt.battery_pct = v;
    } else if (arg == "--width" && next(v)) {
      opt.width = static_cast<int>(v);
    } else if (arg == "--height" && next(v)) {
      opt.height = static_cast<int>(v);
    } else if (arg == "--seed" && next(v)) {
      opt.seed = static_cast<std::uint64_t>(v);
    } else if (arg == "--loss" && next(v)) {
      opt.loss = v;
    } else if (arg == "--outage" && next(v)) {
      opt.outage = v;
    } else if (arg == "--outage-dur" && next(v)) {
      opt.outage_dur = v;
    } else if (arg == "--retries" && next(v)) {
      opt.retries = static_cast<int>(v);
    } else if (arg == "--timeout" && next(v)) {
      opt.timeout_s = v;
    } else if (arg == "--backoff" && next(v)) {
      opt.backoff_s = v;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      opt.metrics_json_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      opt.trace_path = argv[++i];
    } else if (arg == "--shards" && next(v)) {
      opt.shards = static_cast<int>(v);
    } else if (arg == "--server-threads" && next(v)) {
      opt.server_threads = static_cast<int>(v);
    } else if (arg == "--queue-depth" && next(v)) {
      opt.queue_depth = static_cast<int>(v);
    } else if (arg == "--batch-window" && next(v)) {
      opt.batch_window = static_cast<int>(v);
    } else if (arg == "--data-dir" && i + 1 < argc) {
      opt.data_dir = argv[++i];
    } else if (arg == "--save-index" && i + 1 < argc) {
      opt.save_index_path = argv[++i];
    } else if (arg == "--load-index" && i + 1 < argc) {
      opt.load_index_path = argv[++i];
    } else if (arg == "--store-dir" && i + 1 < argc) {
      opt.store_dir = argv[++i];
    } else if (arg == "--chunk-size" && next(v)) {
      opt.chunk_size = static_cast<int>(v);
    } else {
      return false;
    }
  }
  return opt.images > 0 && opt.similar >= 0 && opt.similar <= opt.images &&
         opt.redundancy >= 0 && opt.redundancy <= 1 && opt.battery_pct > 0 &&
         opt.battery_pct <= 100 && opt.width >= 64 && opt.height >= 64 &&
         opt.loss >= 0 && opt.loss <= 1 && opt.outage >= 0 && opt.outage <= 1 &&
         opt.outage_dur > 0 && opt.retries >= 1 && opt.timeout_s >= 0 &&
         opt.backoff_s > 0 && opt.shards >= 0 && opt.server_threads >= 0 &&
         opt.queue_depth >= 0 && opt.batch_window >= 0 && opt.chunk_size >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) return usage(argv[0]);
  if (!opt.load_index_path.empty() && opt.data_dir.empty()) {
    std::cerr << "bees_sim: --load-index requires --data-dir (a snapshot "
                 "warm-starts the cluster's durability root)\n";
    return 2;
  }
  if (opt.queue_depth > 0 && opt.server_threads == 0) {
    std::cerr << "bees_sim: --queue-depth requires --server-threads (the "
                 "admission bound gates the cluster worker pool)\n";
    return 2;
  }
  if (opt.batch_window > 0 && opt.server_threads == 0) {
    std::cerr << "bees_sim: --batch-window requires --server-threads (query "
                 "coalescing happens behind the gate that pool serves)\n";
    return 2;
  }
  if (opt.chunk_size > 0 && opt.store_dir.empty()) {
    std::cerr << "bees_sim: --chunk-size requires --store-dir (a chunking "
                 "interval without a chunk store has nothing to apply to)\n";
    return 2;
  }

  // Observability is off (and free) unless an export was requested.
  const bool observe =
      !opt.metrics_json_path.empty() || !opt.trace_path.empty();
  if (observe) {
    obs::set_enabled(true);
    // Pre-declare the recovery/replication/relay counters at zero so a
    // metrics export always carries them — a clean run reports explicit
    // zeros rather than omitting the keys a dashboard selects on.
    for (const char* name :
         {"serve.wal.dropped_records", "serve.wal.dropped_bytes",
          "replica.ship.records", "replica.ship.bytes", "replica.failover",
          "replica.catch_up", "relay.forward.requests",
          "relay.forward.backhaul_bytes", "relay.dedup.chunks_hit",
          "relay.dedup.bytes_saved", "relay.hold.requests",
          "relay.drain.requests"}) {
      obs::count(name, 0.0);
    }
  }

  const wl::Imageset batch = wl::make_disaster_like(
      opt.images, opt.similar, opt.width, opt.height, opt.seed);
  wl::ImageStore store;

  // Calibrate payload bytes toward ~700 KB phone photos, as in the paper.
  double mean_original = 0;
  const std::size_t sample = std::min<std::size_t>(8, batch.images.size());
  for (std::size_t i = 0; i < sample; ++i) {
    mean_original += static_cast<double>(store.original(batch.images[i]).bytes);
  }
  mean_original /= static_cast<double>(sample);
  core::SchemeConfig config;
  config.image_byte_scale = 700.0 * 1024 / mean_original;
  config.retry.max_attempts = opt.retries;
  config.retry.backoff_base_s = opt.backoff_s;
  if (opt.timeout_s > 0) config.retry.timeout_s = opt.timeout_s;
  if (!opt.store_dir.empty()) {
    config.chunking.enabled = true;
    if (opt.chunk_size > 0) {
      config.chunking.chunk_size = static_cast<std::uint32_t>(opt.chunk_size);
    }
  }

  std::unique_ptr<core::UploadScheme> scheme;
  std::shared_ptr<feat::PcaModel> pca;
  if (opt.scheme == "Direct") {
    scheme = std::make_unique<core::DirectUploadScheme>(store, config);
  } else if (opt.scheme == "SmartEye") {
    pca = std::make_shared<feat::PcaModel>(
        core::train_pca_model(store, batch, 4));
    scheme = std::make_unique<core::SmartEyeScheme>(store, config, pca);
  } else if (opt.scheme == "MRC") {
    scheme = std::make_unique<core::MrcScheme>(store, config);
  } else if (opt.scheme == "BEES") {
    scheme = std::make_unique<core::BeesScheme>(store, config, true);
  } else if (opt.scheme == "BEES-EA") {
    scheme = std::make_unique<core::BeesScheme>(store, config, false);
  } else {
    return usage(argv[0]);
  }

  cloud::Server server;
  std::unique_ptr<store::SegmentStore> chunk_store;  // serial-server mode
  std::unique_ptr<serve::Cluster> cluster;
  if (opt.use_cluster()) {
    serve::ClusterOptions cluster_options;
    cluster_options.shards = std::max(1, opt.shards);
    cluster_options.threads = std::max(1, opt.server_threads);
    if (opt.queue_depth > 0) {
      cluster_options.queue_depth = static_cast<std::size_t>(opt.queue_depth);
    }
    if (opt.batch_window > 0) {
      cluster_options.batch_window = opt.batch_window;
    }
    cluster_options.data_dir = opt.data_dir;
    if (!opt.store_dir.empty()) {
      cluster_options.segment_store.dir = opt.store_dir;
      cluster_options.segment_store.chunk_size = config.chunking.chunk_size;
    }
    cluster = std::make_unique<serve::Cluster>(cluster_options);
    // Every exchange of the run now rides the cluster's admission gate and
    // worker pool instead of a direct cloud::dispatch bind.
    scheme->set_server_handler(cluster->handler());
  } else if (!opt.store_dir.empty()) {
    store::SegmentStoreOptions store_options;
    store_options.dir = opt.store_dir;
    store_options.chunk_size = config.chunking.chunk_size;
    chunk_store = std::make_unique<store::SegmentStore>(store_options);
    server.attach_chunk_store(chunk_store.get());
  }
  if (!opt.load_index_path.empty()) {
    const idx::FeatureIndex loaded =
        idx::load_index_snapshot(opt.load_index_path);
    if (cluster) {
      cluster->preload_binary(loaded);
    } else {
      for (std::size_t i = 0; i < loaded.image_count(); ++i) {
        const auto id = static_cast<idx::ImageId>(i);
        server.seed_binary(loaded.features_of(id), loaded.geo_of(id));
      }
    }
  }
  if (opt.redundancy > 0) {
    // SmartEye needs the float index seeded too.
    if (!pca && opt.scheme == "SmartEye") {
      pca = std::make_shared<feat::PcaModel>(
          core::train_pca_model(store, batch, 4));
    }
    if (cluster) {
      core::seed_cross_batch_redundancy(batch.images, opt.redundancy, store,
                                        *cluster, pca.get(), opt.seed ^ 0x5eed,
                                        config.image_byte_scale);
    } else {
      core::seed_cross_batch_redundancy(batch.images, opt.redundancy, store,
                                        server, pca.get(), opt.seed ^ 0x5eed,
                                        config.image_byte_scale);
    }
  }
  net::ChannelParams chan_params =
      opt.bitrate_kbps > 0 ? net::ChannelParams::fixed(opt.bitrate_kbps * 1000)
                           : net::ChannelParams{};
  chan_params.loss_probability = opt.loss;
  chan_params.outage_probability = opt.outage;
  chan_params.outage_duration_s = opt.outage_dur;
  net::Channel channel(chan_params);
  energy::Battery battery;
  battery.drain(battery.capacity_j() * (1.0 - opt.battery_pct / 100.0));

  const core::BatchReport r =
      scheme->upload_batch(batch.images, server, channel, battery);

  if (!opt.save_index_path.empty()) {
    idx::save_index_snapshot(
        cluster ? cluster->merged_binary_index() : server.binary_index(),
        opt.save_index_path);
  }
  // Leave durable state checkpointed so the next run recovers from
  // snapshots instead of replaying the whole WAL.
  if (cluster && !opt.data_dir.empty()) cluster->checkpoint();

  if (observe) {
    r.export_metrics("sim.batch");
    if (!opt.metrics_json_path.empty()) {
      std::ofstream out(opt.metrics_json_path);
      out << obs::MetricsRegistry::global().to_json() << '\n';
    }
    if (!opt.trace_path.empty()) {
      std::ofstream out(opt.trace_path);
      out << obs::Tracer::global().to_chrome_json() << '\n';
    }
  }

  if (opt.csv) {
    const std::vector<core::NamedValue> values = r.named_values();
    auto row_of = [&](const char* name) -> const core::NamedValue& {
      for (const core::NamedValue& v : values) {
        if (std::strcmp(v.name, name) == 0) return v;
      }
      throw std::out_of_range(std::string("no CSV source row: ") + name);
    };
    std::cout << "scheme";
    for (const CsvColumn& col : kCsvColumns) std::cout << ',' << col.header;
    std::cout << '\n' << scheme->name();
    for (const CsvColumn& col : kCsvColumns) {
      const core::NamedValue& v = row_of(col.value);
      std::cout << ',';
      if (v.integral) {
        std::cout << static_cast<long long>(v.value);
      } else {
        std::cout << v.value;
      }
    }
    std::cout << '\n';
    return 0;
  }

  util::Table table({"metric", "value"});
  table.add_row({"scheme", scheme->name()});
  table.add_row({"images offered", std::to_string(r.images_offered)});
  table.add_row({"images uploaded", std::to_string(r.images_uploaded)});
  table.add_row({"cross-batch eliminated",
                 std::to_string(r.eliminated_cross_batch)});
  table.add_row({"in-batch eliminated",
                 std::to_string(r.eliminated_in_batch)});
  table.add_row({"image payload", util::Table::num(r.image_bytes / 1024, 1) +
                                      " KB"});
  table.add_row({"feature payload",
                 util::Table::num(r.feature_bytes / 1024, 1) + " KB"});
  table.add_row({"feedback payload",
                 util::Table::num(r.rx_bytes / 1024, 1) + " KB"});
  table.add_row({"active energy",
                 util::Table::num(r.energy.active_total(), 1) + " J"});
  table.add_row({"  extraction",
                 util::Table::num(r.energy.extraction_j, 1) + " J"});
  table.add_row({"  image TX", util::Table::num(r.energy.image_tx_j, 1) + " J"});
  table.add_row({"busy time", util::Table::num(r.busy_seconds(), 1) + " s"});
  table.add_row({"mean delay / image",
                 util::Table::num(r.mean_delay_seconds(), 2) + " s"});
  table.add_row({"retries", std::to_string(r.retries)});
  table.add_row({"retransmitted payload",
                 util::Table::num(r.retransmitted_bytes / 1024, 1) + " KB"});
  table.add_row({"  retransmit airtime",
                 util::Table::num(r.retransmit_seconds, 1) + " s"});
  table.add_row({"  backoff time",
                 util::Table::num(r.backoff_seconds, 1) + " s"});
  table.add_row({"exchanges given up", std::to_string(r.gave_up)});
  table.add_row({"battery left", util::Table::pct(battery.fraction())});
  table.add_row({"aborted", r.aborted ? "yes" : "no"});
  table.print(std::cout);
  return 0;
}
