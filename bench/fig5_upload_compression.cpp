// Figure 5 — The influence of (a) quality compression and (b) resolution
// compression on upload bandwidth, plus the SSIM cost of quality
// compression.
//
// Protocol (paper §III-C): compress batches of images at a sweep of
// proportions with each method and measure the total upload payload.  The
// paper's takeaways to check: both knobs cut bandwidth steeply; SSIM stays
// acceptable up to quality proportion ~0.85 and degrades sharply past it —
// hence AIU's fixed 0.85 quality proportion — and EAU sweeps the
// resolution proportion over [0, 0.8].
#include <iostream>

#include "bench/common.hpp"
#include "imaging/codec.hpp"
#include "imaging/codec_lossless.hpp"
#include "imaging/quality.hpp"
#include "imaging/transform.hpp"
#include "util/stats.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int count = bench::sized(30, 100);
  const int width = 320, height = 240;
  const wl::Imageset set = wl::make_disaster_like(count, 0, width, height, 501);
  wl::ImageStore store;
  const double byte_scale = bench::calibrate_byte_scale(store, set);

  util::print_banner(std::cout,
                     "Figure 5(a): quality compression vs bandwidth and SSIM");
  std::cout << count << " images, payloads scaled to ~700 KB originals "
            << "(x" << util::Table::num(byte_scale, 1) << ")\n";

  util::Table qt({"quality_proportion", "total_payload", "vs_original",
                  "mean_SSIM"});
  double original_total = 0;
  for (const auto& spec : set.images) {
    original_total += static_cast<double>(store.original(spec).bytes) *
                      byte_scale;
  }
  // Sweep starts at the as-shot quality (the store's original encoding,
  // proportion 0.08 = quality 92) so "vs_original" is relative to what a
  // camera writes, as in the paper.
  for (const double p : {0.08, 0.3, 0.5, 0.7, 0.85, 0.92, 0.97}) {
    double total = 0;
    util::RunningStats ssim_stats;
    for (const auto& spec : set.images) {
      const wl::EncodedImage enc = store.encoded(spec, 0.0, p);
      total += static_cast<double>(enc.bytes) * byte_scale;
      // SSIM of the decoded upload against the as-shot image.
      const img::Image& original = store.pixels(spec);
      const img::Image decoded = img::decode_jpeg_like(
          img::encode_jpeg_like(original, img::quality_from_proportion(p)));
      ssim_stats.add(img::ssim(original, decoded));
    }
    qt.add_row({util::Table::num(p, 2), bench::mb(total),
                util::Table::pct(total / original_total),
                util::Table::num(ssim_stats.mean(), 3)});
  }
  qt.print(std::cout);
  std::cout << "AIU design point: fixed quality proportion 0.85 — the knee "
               "before SSIM collapses.\n";

  util::print_banner(std::cout,
                     "Figure 5(b): resolution compression vs bandwidth");
  util::Table rt({"resolution_proportion", "resolution", "total_payload",
                  "vs_original"});
  for (const double p : {0.0, 0.2, 0.4, 0.6, 0.76, 0.8}) {
    double total = 0;
    int w = 0, h = 0;
    for (const auto& spec : set.images) {
      const wl::EncodedImage enc = store.encoded(spec, p, 0.08);
      total += static_cast<double>(enc.bytes) * byte_scale;
      w = enc.width;
      h = enc.height;
    }
    rt.add_row({util::Table::num(p, 2),
                std::to_string(w) + "x" + std::to_string(h), bench::mb(total),
                util::Table::pct(total / original_total)});
  }
  rt.print(std::cout);
  std::cout << "EAU design point: Cr = 0.8 - 0.8*Ebat; at Ebat=5% the paper "
               "reports ~87% file-size reduction (proportion 0.76).\n";

  // The lossless alternative the paper's SIII-C mentions (PNG) and rejects
  // for AIU: exact pixels, but far larger payloads than any lossy point.
  double lossless_total = 0;
  for (const auto& spec : set.images) {
    lossless_total += static_cast<double>(
                          img::encode_lossless(store.pixels(spec)).size()) *
                      byte_scale;
  }
  std::cout << "\nLossless (PNG-style predictive) total: "
            << bench::mb(lossless_total) << " ("
            << util::Table::pct(lossless_total / original_total)
            << " of the as-shot JPEG payload) — why AIU uses lossy "
               "compression.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
