// Ablation — MinHash sketches as an even more approximate point on the
// paper's AIS spectrum: instead of uploading the full ORB descriptor set
// for CBRD, the phone uploads a fixed-size sketch and the server estimates
// Eq. 2 similarity from sketch agreement.  Reports, per sketch size, the
// wire bytes saved and the detection quality (TPR/FPR against ground-truth
// groups) relative to full descriptor matching.
#include <iostream>

#include "bench/common.hpp"
#include "features/similarity.hpp"
#include "index/minhash.hpp"
#include "util/stats.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int groups = bench::sized(60, 300);
  util::print_banner(std::cout, "Ablation: MinHash sketches for Eq. 2");
  std::cout << groups << " similar pairs + " << 3 * groups
            << " dissimilar pairs; detection thresholds calibrated per "
               "method at ~5% FPR\n";

  const wl::Imageset set = wl::make_kentucky_like(groups, 2, 320, 240, 1601);
  wl::ImageStore store;
  util::Rng rng(1602);

  // Ground-truth pairs.
  struct Pair {
    std::size_t a, b;
    bool similar;
  };
  std::vector<Pair> pairs;
  for (std::size_t g = 0; g < set.groups.size(); ++g) {
    pairs.push_back({set.groups[g][0], set.groups[g][1], true});
    for (int k = 0; k < 3; ++k) {
      std::size_t other = rng.index(set.groups.size());
      while (other == g) other = rng.index(set.groups.size());
      pairs.push_back({set.groups[g][0], set.groups[other][1], false});
    }
  }

  auto evaluate = [&](auto&& score_fn) {
    // Calibrate the threshold to ~5% FPR, then report TPR at it.
    std::vector<double> sim_scores, dis_scores;
    for (const Pair& p : pairs) {
      const double s = score_fn(p.a, p.b);
      (p.similar ? sim_scores : dis_scores).push_back(s);
    }
    const double threshold = util::percentile(dis_scores, 0.95);
    std::size_t tp = 0;
    for (const double s : sim_scores) tp += s > threshold ? 1 : 0;
    return std::pair<double, double>(
        static_cast<double>(tp) / static_cast<double>(sim_scores.size()),
        threshold);
  };

  util::Table table({"method", "wire_bytes/img", "TPR@5%FPR", "threshold"});

  // Baseline: full descriptors + exact matching.
  double mean_bytes = 0;
  for (const auto& spec : set.images) {
    mean_bytes += static_cast<double>(store.orb(spec, 0.0).wire_bytes());
  }
  mean_bytes /= static_cast<double>(set.images.size());
  const auto [full_tpr, full_thr] = evaluate([&](std::size_t a, std::size_t b) {
    return feat::jaccard_similarity(store.orb(set.images[a], 0.0),
                                    store.orb(set.images[b], 0.0));
  });
  table.add_row({"full ORB + matching", util::Table::num(mean_bytes, 0),
                 util::Table::pct(full_tpr), util::Table::num(full_thr, 4)});

  for (const int k : {32, 64, 128, 256}) {
    idx::MinHashParams params;
    params.hashes = k;
    params.token_bits = 24;
    const idx::MinHasher hasher(params);
    // Pre-sketch every image once.
    std::vector<idx::MinHashSketch> sketches;
    sketches.reserve(set.images.size());
    for (const auto& spec : set.images) {
      sketches.push_back(hasher.sketch(store.orb(spec, 0.0).descriptors));
    }
    const auto [tpr, thr] = evaluate([&](std::size_t a, std::size_t b) {
      return hasher.estimate_similarity(sketches[a], sketches[b]);
    });
    table.add_row({"MinHash k=" + std::to_string(k),
                   util::Table::num(static_cast<double>(k) * 8, 0),
                   util::Table::pct(tpr), util::Table::num(thr, 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: sketches cut the per-image feature payload by "
               "an order of magnitude; detection quality approaches full "
               "matching as k grows.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
