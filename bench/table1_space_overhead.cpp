// Table I — Space overheads of image features: SIFT vs PCA-SIFT vs BEES
// (ORB), on Kentucky-like and Paris-like samples.
//
// Paper reference rows:
//   Kentucky: images 6.67 GB; SIFT 3.40 GB (100%), PCA-SIFT 956 MB (25%),
//             BEES 155.6 MB (4.46%)
//   Paris:    images 361.5 GB; SIFT 424.3 GB (100%), PCA-SIFT 119.3 GB
//             (25%), BEES 7.47 GB (1.76%)
// The percentages are relative to SIFT; the BEES/ORB column must be about
// one order below PCA-SIFT and about two below SIFT.
#include <iostream>

#include "bench/common.hpp"
#include "index/serialize.hpp"

namespace {

using namespace bees;

struct Row {
  std::string name;
  double image_bytes = 0;
  double sift_bytes = 0;
  double pca_bytes = 0;
  double orb_bytes = 0;
};

Row measure(const std::string& name, const wl::Imageset& set,
            wl::ImageStore& store, const feat::PcaModel& pca,
            double byte_scale) {
  Row row;
  row.name = name;
  for (const auto& spec : set.images) {
    row.image_bytes +=
        static_cast<double>(store.original(spec).bytes) * byte_scale;
    row.sift_bytes +=
        static_cast<double>(idx::serialize_float(store.sift(spec)).size());
    row.pca_bytes += static_cast<double>(
        idx::serialize_float(store.pca_sift(spec, pca)).size());
    row.orb_bytes += static_cast<double>(
        idx::serialize_binary(store.orb(spec, 0.0)).size());
  }
  return row;
}

int main_impl() {
  const int kentucky_groups = bench::sized(12, 50);
  const int paris_images = bench::sized(48, 200);
  const int width = 256, height = 192;
  util::print_banner(std::cout, "Table I: space overheads of image features");

  wl::ImageStore store;
  const wl::Imageset kentucky =
      wl::make_kentucky_like(kentucky_groups, 4, width, height, 701);
  const wl::Imageset paris =
      wl::make_paris_like(paris_images, paris_images / 4, wl::GeoBox{}, width,
                          height, 702);
  const double byte_scale = bench::calibrate_byte_scale(store, kentucky);
  const feat::PcaModel pca = core::train_pca_model(store, kentucky, 6);

  util::Table table({"imageset", "image_size", "SIFT", "PCA-SIFT",
                     "BEES (ORB)"});
  for (const Row& row :
       {measure("Kentucky-like", kentucky, store, pca, byte_scale),
        measure("Paris-like", paris, store, pca, byte_scale)}) {
    table.add_row({row.name, bench::mb(row.image_bytes),
                   bench::mb(row.sift_bytes) + " (100%)",
                   bench::mb(row.pca_bytes) + " (" +
                       util::Table::pct(row.pca_bytes / row.sift_bytes) + ")",
                   bench::mb(row.orb_bytes) + " (" +
                       util::Table::pct(row.orb_bytes / row.sift_bytes) +
                       ")"});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: PCA-SIFT ~25% of SIFT; BEES/ORB ~4.46% "
               "(Kentucky) and ~1.76% (Paris) of SIFT — roughly one order "
               "below PCA-SIFT, two below SIFT.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
