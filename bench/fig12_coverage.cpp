// Figure 12 — Situation-awareness coverage: multiple phones with full
// batteries upload geotagged groups to one shared server until every
// battery dies; coverage is the number of unique locations among the
// images the server received.
//
// Protocol (paper §IV-B6): Paris-style geotagged imageset with a real-world
// heavy-tailed location density, split evenly across the phones; one group
// per phone per 20 minutes; the server indexes everything it receives, so
// later uploads are deduplicated against earlier phones' images.  Paper
// claims to check: BEES uploads more images (+18.8%) and covers far more
// unique locations (+97.1%) than Direct Upload before the batteries die.
#include <iostream>

#include "bench/common.hpp"

namespace {

using namespace bees;

core::CoverageResult run_with(core::UploadScheme& scheme,
                              const wl::Imageset& set, int phones,
                              int group_size, double battery_j) {
  cloud::Server server;
  std::vector<core::CoveragePhone> fleet;
  const std::size_t per_phone = set.images.size() / static_cast<std::size_t>(phones);
  for (int p = 0; p < phones; ++p) {
    core::CoveragePhone phone;
    phone.scheme = &scheme;
    net::ChannelParams chp;
    chp.seed = 1200 + static_cast<std::uint64_t>(p);
    phone.channel = net::Channel(chp);
    phone.battery = energy::Battery(battery_j);
    wl::Imageset slice;
    slice.images.assign(
        set.images.begin() + static_cast<std::ptrdiff_t>(p * per_phone),
        set.images.begin() + static_cast<std::ptrdiff_t>((p + 1) * per_phone));
    phone.groups = core::slice_groups(slice, static_cast<std::size_t>(group_size));
    fleet.push_back(std::move(phone));
  }
  return core::run_coverage(fleet, 1200.0, server);
}

int main_impl() {
  const int phones = bench::sized(6, 25);
  const int images = bench::sized(3000, 16000);
  const int locations = bench::sized(1400, 5500);
  const int group_size = bench::sized(10, 40);
  const double battery_j = bench::sized(4500, 43092);
  util::print_banner(std::cout, "Figure 12: situation-awareness coverage");
  std::cout << phones << " phones, " << images << " geotagged images over "
            << locations << " locations (heavy-tailed), groups of "
            << group_size << ", battery " << battery_j << " J\n";

  const wl::Imageset set =
      wl::make_paris_like(images, locations, wl::GeoBox{}, 240, 180, 1201);
  // Ground truth: how many unique locations the full set covers.
  std::size_t populated = 0;
  for (const auto& g : set.groups) populated += g.empty() ? 0 : 1;

  wl::ImageStore store;
  const double byte_scale = bench::calibrate_byte_scale(store, set);
  core::SchemeConfig cfg = bench::make_config(byte_scale);
  cfg.cost.idle_power_w = 0.1;

  core::DirectUploadScheme direct(store, cfg);
  core::BeesScheme bees(store, cfg, true);
  const core::CoverageResult rd =
      run_with(direct, set, phones, group_size, battery_j);
  const core::CoverageResult rb =
      run_with(bees, set, phones, group_size, battery_j);

  util::Table table({"scheme", "images_received", "unique_locations",
                     "of_populated"});
  table.add_row({"DirectUpload", std::to_string(rd.images_received),
                 std::to_string(rd.unique_locations),
                 util::Table::pct(static_cast<double>(rd.unique_locations) /
                                  static_cast<double>(populated))});
  table.add_row({"BEES", std::to_string(rb.images_received),
                 std::to_string(rb.unique_locations),
                 util::Table::pct(static_cast<double>(rb.unique_locations) /
                                  static_cast<double>(populated))});
  table.print(std::cout);

  std::cout << "\nBEES vs Direct: images "
            << (rb.images_received >= rd.images_received ? "+" : "")
            << util::Table::pct(
                   static_cast<double>(rb.images_received) /
                       static_cast<double>(rd.images_received) -
                   1.0)
            << ", unique locations +"
            << util::Table::pct(
                   static_cast<double>(rb.unique_locations) /
                       static_cast<double>(rd.unique_locations) -
                   1.0)
            << "\nPaper reference: BEES uploads +18.8% images with +97.1% "
               "larger coverage before the batteries die.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
