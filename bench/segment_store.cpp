// Segment-store bench: what the chunk-manifest upload plane saves on the
// wire, and what compaction holds on disk.
//
// Phase 1 — re-upload under loss.  A near-duplicate batch (a base set plus
// exact duplicates of half of it) is uploaded by Direct Upload twice per
// loss level: once over the legacy whole-image protocol, once over the
// chunk plane against a server-side segment store.  Runs that abort on an
// exhausted retry budget are resumed until the batch completes, so the
// resent-bytes column captures both duplicate content and abort/resume
// waste.  Bar: at loss 0.2 the chunk plane must cut resent bytes by at
// least 30%.
//
// Phase 2 — compaction under churn.  Rounds of payloads (half fresh, half
// repeated from the previous round) are ingested into a disk-backed store
// with a hard disk ceiling; each round pins its chunks, unpins the prior
// round's, and runs the compaction trigger.  Bar: after every round's
// compaction the segment files stay under the ceiling.
//
// When BEES_BENCH_JSON names a directory the rows are written to
// <dir>/BENCH_segstore.json.
//
// Usage: segment_store [--smoke]   (--smoke shrinks the batch and the
// churn phase so the perfsmoke ctest label runs the bench end-to-end; the
// bars are deterministic and enforced in both modes)
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "cloud/server.hpp"
#include "store/segment_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace bees;

struct SweepRow {
  double loss = 0.0;
  core::BatchReport legacy;
  core::BatchReport chunked;
  double legacy_resent = 0.0;
  double chunked_resent = 0.0;
  double reduction = 0.0;  // 1 - chunked/legacy
};

struct ChurnRow {
  int round = 0;
  std::uint64_t disk_after_compact = 0;
  std::uint64_t live_bytes = 0;
  std::uint64_t compactions = 0;
};

/// Image-plane bytes that crossed the wire, delivered or wasted.
double wire_bytes(const core::BatchReport& r) {
  return r.image_bytes + r.retransmitted_bytes;
}

/// Uploads the batch to completion, resuming after every abort.
core::BatchReport run_to_completion(core::UploadScheme& scheme,
                                    const std::vector<wl::ImageSpec>& batch,
                                    cloud::Server& server, net::Channel& ch,
                                    energy::Battery& bat) {
  core::BatchReport total = scheme.upload_batch(batch, server, ch, bat);
  for (int i = 0; total.aborted && i < 64; ++i) {
    core::BatchReport resumed = scheme.upload_batch(batch, server, ch, bat);
    total.aborted = false;
    total += resumed;
  }
  return total;
}

int main_impl(bool smoke) {
  util::print_banner(std::cout,
                     "Segment store: wire dedup and compaction ceiling");

  // ---- Phase 1: re-upload-under-loss sweep --------------------------------
  const int base_images = smoke ? 8 : bench::sized(16, 32);
  wl::Imageset set = wl::make_disaster_like(base_images, 4, 200, 150, 77);
  wl::ImageStore store;
  const double byte_scale = bench::calibrate_byte_scale(store, set);
  // Near-duplicate batch: every image once, the first half a second time.
  std::vector<wl::ImageSpec> batch = set.images;
  batch.insert(batch.end(), set.images.begin(),
               set.images.begin() + base_images / 2);

  std::vector<double> losses{0.0, 0.05, 0.1, 0.2};
  if (smoke) losses = {0.0, 0.2};

  auto run = [&](bool chunking, double loss, std::uint64_t seed) {
    core::SchemeConfig cfg = bench::make_config(byte_scale);
    cfg.retry.max_attempts = 3;
    cfg.chunking.enabled = chunking;
    core::DirectUploadScheme direct(store, cfg);
    cloud::Server server;
    store::SegmentStore chunk_store({});
    if (chunking) server.attach_chunk_store(&chunk_store);
    net::ChannelParams p = net::ChannelParams::fixed(256000.0);
    p.loss_probability = loss;
    p.seed = seed;
    net::Channel ch(p);
    energy::Battery bat;
    return run_to_completion(direct, batch, server, ch, bat);
  };

  // The deduplicated payload in modelled bytes: a clean chunked run ships
  // exactly the unique content, once.
  const double unique_modeled = run(true, 0.0, 901).image_bytes;

  std::vector<SweepRow> rows;
  for (std::size_t i = 0; i < losses.size(); ++i) {
    SweepRow row;
    row.loss = losses[i];
    row.legacy = run(false, row.loss, 910 + i);
    row.chunked = run(true, row.loss, 910 + i);
    row.legacy_resent = wire_bytes(row.legacy) - unique_modeled;
    row.chunked_resent = wire_bytes(row.chunked) - unique_modeled;
    if (row.legacy_resent > 0.0) {
      row.reduction = 1.0 - row.chunked_resent / row.legacy_resent;
    }
    rows.push_back(row);
  }

  std::cout << "batch: " << batch.size() << " images (" << base_images
            << " unique), unique payload " << bench::mb(unique_modeled)
            << " modelled\n\n";
  util::Table sweep({"loss", "legacy wire", "chunked wire", "legacy resent",
                     "chunked resent", "resent reduction"});
  for (const SweepRow& row : rows) {
    sweep.add_row({util::Table::num(row.loss, 2),
                   bench::mb(wire_bytes(row.legacy)),
                   bench::mb(wire_bytes(row.chunked)),
                   bench::mb(row.legacy_resent),
                   bench::mb(row.chunked_resent),
                   util::Table::num(100.0 * row.reduction, 1) + "%"});
  }
  sweep.print(std::cout);

  // ---- Phase 2: compaction keeps disk under the ceiling -------------------
  const int rounds = smoke ? 4 : 8;
  const int payloads_per_round = smoke ? 12 : 24;
  const std::size_t payload_bytes = 8 * 1024;
  // Tight enough that uncompacted churn (live + each round's dead bytes)
  // would blow through it: holding the bar requires compaction to fire.
  const std::uint64_t ceiling = smoke ? 192 * 1024 : 352 * 1024;

  const std::string churn_dir =
      (std::filesystem::temp_directory_path() / "bees_bench_segstore")
          .string();
  std::filesystem::remove_all(churn_dir);
  store::SegmentStoreOptions churn_options;
  churn_options.dir = churn_dir;
  churn_options.chunk_size = 4096;
  churn_options.segment_target_bytes = 32 * 1024;
  churn_options.disk_ceiling_bytes = ceiling;
  store::SegmentStore churn(churn_options);

  auto payload_of = [&](int round, int index) {
    // Half of each round's payloads repeat the previous round's: steady
    // churn with real dedup, like re-checkpointed snapshots.
    const int fresh = index < payloads_per_round / 2 ? round : round - 1;
    const int slot = index % (payloads_per_round / 2);
    util::Rng rng(5000 + 97 * static_cast<std::uint64_t>(std::max(0, fresh)) +
                  static_cast<std::uint64_t>(slot));
    std::vector<std::uint8_t> bytes(payload_bytes);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    return bytes;
  };

  std::vector<ChurnRow> churn_rows;
  std::uint64_t peak_disk = 0;
  std::vector<store::ChunkKey> previous_pins;
  for (int round = 0; round < rounds; ++round) {
    std::vector<store::ChunkKey> pins;
    for (int i = 0; i < payloads_per_round; ++i) {
      const store::Manifest m = churn.put_payload(payload_of(round, i));
      pins.insert(pins.end(), m.chunks.begin(), m.chunks.end());
    }
    churn.pin(pins);
    churn.unpin(previous_pins);
    previous_pins = std::move(pins);
    peak_disk = std::max(peak_disk, churn.disk_bytes());
    churn.maybe_compact();
    const store::SegmentStore::Stats stats = churn.stats();
    ChurnRow row;
    row.round = round;
    row.disk_after_compact = churn.disk_bytes();
    row.live_bytes = stats.live_bytes;
    row.compactions = stats.compactions;
    churn_rows.push_back(row);
  }
  const store::SegmentStore::Stats final_stats = churn.stats();
  std::filesystem::remove_all(churn_dir);

  std::cout << "\nchurn: " << rounds << " rounds x " << payloads_per_round
            << " payloads of " << payload_bytes / 1024 << " KB, ceiling "
            << bench::kb(static_cast<double>(ceiling)) << "\n\n";
  util::Table churn_table(
      {"round", "disk after compact", "live bytes", "compactions"});
  for (const ChurnRow& row : churn_rows) {
    churn_table.add_row(
        {std::to_string(row.round),
         bench::kb(static_cast<double>(row.disk_after_compact)),
         bench::kb(static_cast<double>(row.live_bytes)),
         std::to_string(row.compactions)});
  }
  churn_table.print(std::cout);
  std::cout << "peak disk before compaction: "
            << bench::kb(static_cast<double>(peak_disk))
            << ", cross-round dedup hits: " << final_stats.dedup_hits << "\n";

  // ---- JSON ---------------------------------------------------------------
  const char* json_dir = std::getenv("BEES_BENCH_JSON");
  if (json_dir != nullptr && *json_dir != '\0') {
    std::ofstream out(std::string(json_dir) + "/BENCH_segstore.json");
    out << "{\n  \"bench\": \"segstore\",\n  \"unique_modeled_bytes\": "
        << obs::json_number(unique_modeled) << ",\n  \"rows\": {";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& row = rows[i];
      out << (i == 0 ? "\n" : ",\n") << "    "
          << obs::json_string("loss" + util::Table::num(row.loss, 2)) << ": {"
          << "\"loss\": " << obs::json_number(row.loss)
          << ", \"legacy_wire_bytes\": "
          << obs::json_number(wire_bytes(row.legacy))
          << ", \"chunked_wire_bytes\": "
          << obs::json_number(wire_bytes(row.chunked))
          << ", \"legacy_resent_bytes\": "
          << obs::json_number(row.legacy_resent)
          << ", \"chunked_resent_bytes\": "
          << obs::json_number(row.chunked_resent)
          << ", \"resent_reduction\": " << obs::json_number(row.reduction)
          << ", \"chunks_sent\": " << row.chunked.chunks_sent
          << ", \"chunks_deduped\": " << row.chunked.chunks_deduped
          << ", \"chunks_resent\": " << row.chunked.chunks_resent << "}";
    }
    out << "\n  },\n  \"compaction\": {\"ceiling_bytes\": " << ceiling
        << ", \"peak_disk_bytes\": " << peak_disk
        << ", \"max_disk_after_compact_bytes\": ";
    std::uint64_t max_after = 0;
    for (const ChurnRow& row : churn_rows) {
      max_after = std::max(max_after, row.disk_after_compact);
    }
    out << max_after << ", \"rounds\": " << rounds
        << ", \"compactions\": " << final_stats.compactions
        << ", \"dedup_hits\": " << final_stats.dedup_hits << "}\n}\n";
  }

  // ---- Bars ---------------------------------------------------------------
  int failures = 0;
  const SweepRow& hardest = rows.back();  // loss 0.2 in both modes
  std::cout << "\nResent-bytes bar: at loss "
            << util::Table::num(hardest.loss, 2) << " the chunk plane cut "
            << util::Table::num(100.0 * hardest.reduction, 1)
            << "% (required >= 30%)\n";
  if (hardest.reduction < 0.30) {
    std::cerr << "FAIL: chunk plane saved less than 30% of resent bytes\n";
    ++failures;
  }
  bool under_ceiling = true;
  for (const ChurnRow& row : churn_rows) {
    if (row.disk_after_compact > ceiling) under_ceiling = false;
  }
  std::cout << "Ceiling bar: disk after every compaction "
            << (under_ceiling ? "stayed under " : "EXCEEDED ")
            << bench::kb(static_cast<double>(ceiling)) << "\n";
  if (!under_ceiling) {
    std::cerr << "FAIL: compaction did not hold the disk ceiling\n";
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return main_impl(smoke);
}
