// Shared experiment grid for the Fig. 7 / 8 / 10 / 11 protocol: one batch
// of N images containing in-batch similars, uploaded by each scheme
// against a server pre-seeded with a controlled cross-batch redundancy
// ratio (near-duplicates with similarity > 0.3, indexed under both feature
// types so every scheme can detect them — the paper's fairness setup).
#pragma once

#include <memory>
#include <string>

#include "bench/common.hpp"

namespace bees::bench {

struct GridSetup {
  wl::Imageset batch;
  std::shared_ptr<wl::ImageStore> store;
  std::shared_ptr<feat::PcaModel> pca;
  double byte_scale = 1.0;
};

inline GridSetup make_grid_setup(int batch_size, int in_batch_similar,
                                 int width, int height, std::uint64_t seed) {
  GridSetup setup;
  setup.batch =
      wl::make_disaster_like(batch_size, in_batch_similar, width, height, seed);
  setup.store = std::make_shared<wl::ImageStore>();
  setup.byte_scale = calibrate_byte_scale(*setup.store, setup.batch);
  setup.pca = std::make_shared<feat::PcaModel>(
      core::train_pca_model(*setup.store, setup.batch, 4));
  return setup;
}

/// Runs one grid cell: `scheme_name` in {Direct, SmartEye, MRC, BEES,
/// BEES-EA} over the batch, with `redundancy_ratio` of the batch seeded on
/// a fresh server, at a fixed `bitrate_bps`, starting from battery level
/// `ebat`.  The same seeding salt is used for every scheme at a given
/// ratio so all schemes face identical server contents.  `loss` injects a
/// per-message loss probability; at 0 the cell is the classic lossless
/// protocol, bit for bit.
inline core::BatchReport run_cell(GridSetup& setup,
                                  const std::string& scheme_name,
                                  double redundancy_ratio, double bitrate_bps,
                                  double ebat = 1.0, double loss = 0.0) {
  cloud::Server server;
  core::seed_cross_batch_redundancy(
      setup.batch.images, redundancy_ratio, *setup.store, server,
      setup.pca.get(),
      1000 + static_cast<std::uint64_t>(redundancy_ratio * 100),
      setup.byte_scale);
  net::ChannelParams cp = net::ChannelParams::fixed(bitrate_bps);
  cp.loss_probability = loss;
  net::Channel channel(cp);
  energy::Battery battery;
  battery.drain(battery.capacity_j() * (1.0 - ebat));

  const core::SchemeConfig cfg = make_config(setup.byte_scale);
  std::unique_ptr<core::UploadScheme> scheme;
  if (scheme_name == "Direct") {
    scheme = std::make_unique<core::DirectUploadScheme>(*setup.store, cfg);
  } else if (scheme_name == "SmartEye") {
    scheme = std::make_unique<core::SmartEyeScheme>(*setup.store, cfg,
                                                    setup.pca);
  } else if (scheme_name == "MRC") {
    scheme = std::make_unique<core::MrcScheme>(*setup.store, cfg);
  } else if (scheme_name == "BEES") {
    scheme = std::make_unique<core::BeesScheme>(*setup.store, cfg, true);
  } else if (scheme_name == "BEES-EA") {
    scheme = std::make_unique<core::BeesScheme>(*setup.store, cfg, false);
  } else {
    throw std::invalid_argument("unknown scheme: " + scheme_name);
  }
  core::BatchReport report =
      scheme->upload_batch(setup.batch.images, server, channel, battery);
  // No-op unless observability is enabled (e.g. a bench run under a
  // metrics harness): aggregates every cell into `bench.cell.*` counters.
  report.export_metrics("bench.cell");
  return report;
}

}  // namespace bees::bench
