// Figure 8 — Energy savings from energy-aware adaptation: BEES's energy
// breakdown (feature extraction / feature upload / image upload) when the
// phone starts the batch at 100% / 70% / 40% / 10% battery.
//
// Protocol (paper §IV-B3(2)): the same 100-image batch with 10 in-batch
// similars and 25% cross-batch redundancy.  Paper claims to check: the
// total and the extraction + image-upload components fall as Ebat falls
// (EAC shrinks the bitmaps, EAU shrinks the uploads); the feature-upload
// component is small throughout (lightweight ORB descriptors).
#include <iostream>

#include "bench/scheme_grid.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int batch = bench::sized(40, 100);
  const int similars = batch / 10;
  util::print_banner(std::cout, "Figure 8: energy-aware adaptation breakdown");
  std::cout << "Batch: " << batch << " images, 25% cross-batch redundancy, "
            << "256 Kbps\n";

  bench::GridSetup setup = bench::make_grid_setup(batch, similars, 320, 240, 801);

  util::Table table({"Ebat", "extract_features", "upload_features",
                     "upload_images", "total"});
  double prev_total = -1;
  bool monotone = true;
  for (const int ebat : {100, 70, 40, 10}) {
    const core::BatchReport r =
        bench::run_cell(setup, "BEES", 0.25, 256000.0, ebat / 100.0);
    const double total = r.energy.active_total();
    table.add_row({std::to_string(ebat) + "%",
                   util::Table::num(r.energy.extraction_j, 1) + " J",
                   util::Table::num(r.energy.feature_tx_j, 1) + " J",
                   util::Table::num(r.energy.image_tx_j +
                                        r.energy.other_compute_j,
                                    1) +
                       " J",
                   util::Table::num(total, 1) + " J"});
    if (prev_total >= 0 && total > prev_total) monotone = false;
    prev_total = total;
  }
  table.print(std::cout);
  std::cout << "\nTotal decreases with Ebat: " << (monotone ? "yes" : "NO")
            << " (paper: yes — EAC + EAU shed work as the battery drains; "
               "feature upload stays small).\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
