// Ablation — the SSMM design choices (beyond the paper's figures):
//   1. IBRD off            (cross-batch detection only, like SmartEye/MRC)
//   2. fixed budget b = 9  (the paper's Facebook-album example of existing
//                           summarization work with a user-chosen budget)
//   3. SSMM adaptive budget (the paper's design: b = #components under Tw)
//
// Run on batches with increasing in-batch redundancy.  The adaptive budget
// should track the true number of distinct scenes: uploading everything
// unique when redundancy is low (where b = 9 truncates real content) and
// collapsing duplicates when redundancy is high (where b = 9 still uploads
// near-duplicates and IBRD-off uploads everything).
#include <iostream>

#include "bench/common.hpp"
#include "submodular/graph.hpp"

namespace {

using namespace bees;

struct Outcome {
  int uploaded = 0;
  double coverage = 0.0;  // f_cov of the uploaded set over the batch graph
};

Outcome evaluate(const sub::SimilarityGraph& graph,
                 const std::vector<std::size_t>& selected) {
  Outcome o;
  o.uploaded = static_cast<int>(selected.size());
  o.coverage = sub::coverage_value(graph, selected) /
               static_cast<double>(graph.size());
  return o;
}

int main_impl() {
  const int batch = bench::sized(24, 60);
  util::print_banner(std::cout,
                     "Ablation: in-batch elimination strategies (SSMM)");
  std::cout << "Batch of " << batch
            << " images; sweep of in-batch redundant images; Tw = 0.019\n";

  wl::ImageStore store;
  util::Table table({"in_batch_similar", "distinct_scenes", "no_IBRD",
                     "fixed_b=9", "SSMM_b", "SSMM_uploads",
                     "SSMM_coverage"});
  for (const int similar : {0, batch / 4, batch / 2, 3 * batch / 4}) {
    const wl::Imageset set =
        wl::make_disaster_like(batch, similar, 320, 240, 1300 +
                                   static_cast<std::uint64_t>(similar));
    std::vector<feat::BinaryFeatures> features;
    for (const auto& spec : set.images) {
      features.push_back(store.orb(spec, 0.0));
    }
    const sub::SimilarityGraph graph = sub::build_similarity_graph(features);

    // Strategy 1: no in-batch elimination — upload all.
    std::vector<std::size_t> all(set.images.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    const Outcome none = evaluate(graph, all);

    // Strategy 2: fixed budget 9 over the same partition.
    const auto components = sub::partition_components(graph, 0.019);
    const auto fixed = sub::greedy_maximize(graph, components, 9, {});
    const Outcome fixed9 = evaluate(graph, fixed);

    // Strategy 3: SSMM (budget = component count).
    const sub::SsmmResult ssmm = sub::select_unique_images(graph, 0.019, {});
    const Outcome adaptive = evaluate(graph, ssmm.selected);

    std::size_t distinct = 0;
    for (const auto& g : set.groups) distinct += g.empty() ? 0 : 1;
    table.add_row({std::to_string(similar), std::to_string(distinct),
                   std::to_string(none.uploaded) + " up",
                   std::to_string(fixed9.uploaded) + " up (cov " +
                       util::Table::num(fixed9.coverage, 2) + ")",
                   std::to_string(ssmm.budget),
                   std::to_string(adaptive.uploaded),
                   util::Table::num(adaptive.coverage, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: SSMM budget tracks the number of distinct "
               "scenes; a fixed b=9 truncates unique content at low "
               "redundancy and keeps duplicates at high redundancy.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
