// Figure 11 — Mean per-image upload delay of the four schemes at network
// bitrates 128 / 256 / 512 Kbps.
//
// Protocol (paper §IV-B5): the 100-image batch with 10 in-batch similars
// and 50% cross-batch redundancy; delay = feature extraction + feature
// upload + image upload time over the batch, divided by the batch size
// (server query time excluded, as in the paper).  Paper claims to check:
// Direct is worst (~44 s/image at 128 Kbps for 700 KB images); SmartEye >
// MRC (slower extraction); BEES cuts 83.3-88.0% vs Direct and 70.4-77.8%
// vs MRC.
#include <iostream>

#include "bench/scheme_grid.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int batch = bench::sized(40, 100);
  const int similars = batch / 10;
  util::print_banner(std::cout, "Figure 11: mean upload delay per image");
  std::cout << "Batch: " << batch << " images, 50% cross-batch redundancy, "
            << "payloads scaled to ~700 KB\n";

  bench::GridSetup setup = bench::make_grid_setup(batch, similars, 320, 240, 1101);
  bench::BenchJson json("fig11");

  util::Table table({"bitrate", "Direct", "SmartEye", "MRC", "BEES",
                     "BEES_vs_Direct", "BEES_vs_MRC"});
  for (const double kbps : {128.0, 256.0, 512.0}) {
    double d[4];
    int i = 0;
    for (const std::string name : {"Direct", "SmartEye", "MRC", "BEES"}) {
      const core::BatchReport r =
          bench::run_cell(setup, name, 0.5, kbps * 1000.0);
      json.add(util::Table::num(kbps, 0) + "Kbps/" + name, r);
      d[i++] = r.mean_delay_seconds();
    }
    table.add_row({util::Table::num(kbps, 0) + " Kbps",
                   util::Table::num(d[0], 1) + " s",
                   util::Table::num(d[1], 1) + " s",
                   util::Table::num(d[2], 1) + " s",
                   util::Table::num(d[3], 1) + " s",
                   "-" + util::Table::pct(1.0 - d[3] / d[0]),
                   "-" + util::Table::pct(1.0 - d[3] / d[2])});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: BEES -83.3%..-88.0% vs Direct, "
               "-70.4%..-77.8% vs MRC; delays shrink with bitrate.\n";

  // Loss-rate sweep: the same protocol at 256 Kbps with per-message loss
  // injected.  Retries recover every batch (no aborts); the delay gap vs
  // the lossless run is pure retransmission + backoff cost, and BEES pays
  // it on far fewer, smaller messages than Direct.
  util::print_banner(std::cout, "Upload delay under per-message loss");
  std::cout << "Fixed 256 Kbps; expectation: all batches complete, delay "
               "grows with loss, BEES stays cheapest\n";
  util::Table loss_table({"loss", "Direct", "MRC", "BEES", "BEES_retries",
                          "BEES_retx_KB", "aborts"});
  for (const double loss : {0.0, 0.05, 0.10, 0.20}) {
    double d[3];
    int retries = 0, aborts = 0;
    double retx_bytes = 0;
    int i = 0;
    for (const std::string name : {"Direct", "MRC", "BEES"}) {
      const core::BatchReport r =
          bench::run_cell(setup, name, 0.5, 256.0 * 1000.0, 1.0, loss);
      json.add("loss" + util::Table::num(loss, 2) + "/" + name, r);
      d[i++] = r.mean_delay_seconds();
      aborts += r.aborted ? 1 : 0;
      if (name == "BEES") {
        retries = r.retries;
        retx_bytes = r.retransmitted_bytes;
      }
    }
    loss_table.add_row({util::Table::pct(loss),
                        util::Table::num(d[0], 1) + " s",
                        util::Table::num(d[1], 1) + " s",
                        util::Table::num(d[2], 1) + " s",
                        std::to_string(retries),
                        util::Table::num(retx_bytes / 1024, 1),
                        std::to_string(aborts)});
  }
  loss_table.print(std::cout);
  return 0;
}

}  // namespace

int main() { return main_impl(); }
