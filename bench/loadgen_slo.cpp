// Fleet SLO bench: the load generator drives the real serve::Cluster at
// (shards, server threads) = (1,1) and (4,4) under the same offered fleet
// load, and the *real* serving throughput (requests handled per wall
// second at the epoch barriers) is compared across the two shapes.  The
// deterministic virtual report supplies the SLO columns (p99 latency,
// shed rate) for each row.
//
// Each shape sets batch_window = threads, so the scaled run also
// exercises the coalesced (batched rescore) query plane; the virtual
// report columns are identical either way — only the real wall clock and
// the report's batching stats move.
//
// The scaling bar (4/4 must reach >= 3x the 1/1 real rate) is only
// *enforced* on machines with at least 4 hardware threads; on fewer cores
// the fan-out cannot physically scale and the ratio is informational.
// When BEES_BENCH_JSON names a directory the rows are written to
// <dir>/BENCH_loadgen.json alongside the core count that produced them.
//
// Usage: loadgen_slo [--smoke]   (--smoke shrinks the fleet and duration
// so the perfsmoke ctest label can verify the bench end-to-end quickly)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "fleet/simulator.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"

namespace {

using namespace bees;

struct Shape {
  int shards;
  int threads;
};

struct Row {
  Shape shape;
  fleet::FleetResult result;
  double real_qps = 0.0;
  double speedup = 1.0;
};

fleet::FleetOptions base_options(bool smoke) {
  fleet::FleetOptions o;
  o.seed = 2024;
  o.devices = smoke ? 8 : bench::sized(32, 128);
  o.duration_s = smoke ? 10.0 : bench::sized(40, 120);
  o.rate_hz = 0.2;
  o.batch = 3;
  o.set_images = smoke ? 12 : bench::sized(24, 64);
  o.set_locations = 6;
  o.width = 64;
  o.height = 48;
  o.queue_depth = 64;
  o.service_base_s = 0.05;
  o.service_per_image_s = 0.02;
  return o;
}

Row run_shape(const Shape& shape, const fleet::FleetOptions& base) {
  fleet::FleetOptions o = base;
  o.shards = shape.shards;
  o.server_threads = shape.threads;
  o.batch_window = shape.threads;
  // Barrier query fan-out matches the cluster's parallelism; phase-A
  // device work rides the same pool.  The report stays deterministic for
  // any worker count — only the wall clock moves.
  o.workers = shape.threads;
  Row row;
  row.shape = shape;
  row.result = fleet::run_fleet(o);
  row.real_qps = row.result.serve_wall_seconds > 0.0
                     ? static_cast<double>(row.result.real_handles) /
                           row.result.serve_wall_seconds
                     : 0.0;
  return row;
}

int main_impl(bool smoke) {
  const unsigned cores = std::thread::hardware_concurrency();
  util::print_banner(std::cout, "Fleet loadgen: cluster shape vs SLO");
  const fleet::FleetOptions base = base_options(smoke);
  std::cout << "hardware threads: " << cores << ", devices: " << base.devices
            << ", duration: " << base.duration_s << "s (virtual)\n\n";

  const std::vector<Shape> shapes{{1, 1}, {4, 4}};
  std::vector<Row> rows;
  for (const Shape& shape : shapes) {
    rows.push_back(run_shape(shape, base));
    if (rows.front().real_qps > 0.0) {
      rows.back().speedup = rows.back().real_qps / rows.front().real_qps;
    }
  }

  util::Table table({"shards", "threads", "served", "shed rate", "p99 (s)",
                     "real qps", "speedup vs 1/1"});
  for (const Row& row : rows) {
    const fleet::FleetReport& r = row.result.report;
    table.add_row({std::to_string(row.shape.shards),
                   std::to_string(row.shape.threads),
                   std::to_string(r.totals.served),
                   util::Table::num(r.totals.shed_rate(), 4),
                   util::Table::num(r.latency_all.p99_s, 3),
                   util::Table::num(row.real_qps, 1),
                   util::Table::num(row.speedup, 2) + "x"});
  }
  table.print(std::cout);

  const char* json_dir = std::getenv("BEES_BENCH_JSON");
  if (json_dir != nullptr && *json_dir != '\0') {
    std::ofstream out(std::string(json_dir) + "/BENCH_loadgen.json");
    out << "{\n  \"bench\": \"loadgen\",\n  \"hardware_threads\": "
        << obs::json_number(cores) << ",\n  \"rows\": {";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      const fleet::FleetReport& r = row.result.report;
      const std::string label = std::to_string(row.shape.shards) +
                                "shards/" + std::to_string(row.shape.threads) +
                                "threads";
      out << (i == 0 ? "\n" : ",\n") << "    " << obs::json_string(label)
          << ": {\"shards\": " << row.shape.shards
          << ", \"threads\": " << row.shape.threads
          << ", \"served\": " << r.totals.served
          << ", \"shed_rate\": " << obs::json_number(r.totals.shed_rate())
          << ", \"p99_s\": " << obs::json_number(r.latency_all.p99_s)
          << ", \"real_handles\": " << row.result.real_handles
          << ", \"serve_wall_seconds\": "
          << obs::json_number(row.result.serve_wall_seconds)
          << ", \"real_qps\": " << obs::json_number(row.real_qps)
          << ", \"speedup\": " << obs::json_number(row.speedup) << "}";
    }
    out << "\n  }\n}\n";
  }

  const double scaling = rows.back().speedup;
  if (cores >= 4) {
    std::cout << "\nScaling bar: 4 shards / 4 threads reached "
              << util::Table::num(scaling, 2) << "x (required >= 3x)\n";
    if (scaling < 3.0) {
      std::cerr << "FAIL: 4/4 fleet run did not reach 3x the 1/1 rate\n";
      return 1;
    }
  } else {
    std::cout << "\nScaling bar: informational only on " << cores
              << " hardware thread(s) — 4/4 reached "
              << util::Table::num(scaling, 2)
              << "x (>= 3x is required on machines with 4+ cores)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return main_impl(smoke);
}
