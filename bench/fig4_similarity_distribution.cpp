// Figure 4 — The similarity distribution of similar and dissimilar image
// pairs, and the true/false-positive rates it induces for a threshold T.
//
// Protocol (paper §III-B1): sample similar pairs (two views of one scene)
// and dissimilar pairs (views of different scenes) from a Kentucky-style
// set, compute Eq. 2 Jaccard similarity for each, and report, for a sweep
// of thresholds, the fraction of similar pairs above T (TPR) and of
// dissimilar pairs above T (FPR).  Paper reference points: at T = 0.01,
// TPR 95.4% / FPR 26.2%; at T = 0.013 roughly 90% / 10%; EDR therefore
// sweeps T over [0.013, 0.019].
#include <iostream>

#include "bench/common.hpp"
#include "features/similarity.hpp"
#include "util/stats.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int groups = bench::sized(120, 600);
  const int width = 320, height = 240;
  util::print_banner(std::cout,
                     "Figure 4: similarity distribution of image pairs");
  std::cout << "Pairs: " << groups << " similar + " << 4 * groups
            << " dissimilar (" << width << "x" << height << ")\n";

  const wl::Imageset set = wl::make_kentucky_like(groups, 2, width, height, 401, 6.0);
  wl::ImageStore store;
  util::Rng rng(402);

  // Similar pairs: the two views of each group.
  std::vector<double> similar, dissimilar;
  for (const auto& group : set.groups) {
    similar.push_back(feat::jaccard_similarity(
        store.orb(set.images[group[0]], 0.0),
        store.orb(set.images[group[1]], 0.0)));
  }
  // Dissimilar pairs: random cross-group samples (4 per group).
  for (std::size_t g = 0; g < set.groups.size(); ++g) {
    for (int k = 0; k < 4; ++k) {
      std::size_t other = rng.index(set.groups.size());
      while (other == g) other = rng.index(set.groups.size());
      dissimilar.push_back(feat::jaccard_similarity(
          store.orb(set.images[set.groups[g][0]], 0.0),
          store.orb(set.images[set.groups[other][1]], 0.0)));
    }
  }

  auto fraction_above = [](const std::vector<double>& v, double t) {
    std::size_t n = 0;
    for (const double x : v) {
      if (x > t) ++n;
    }
    return static_cast<double>(n) / static_cast<double>(v.size());
  };

  util::Table table({"threshold_T", "TPR (similar > T)", "FPR (dissimilar > T)"});
  for (const double t : {0.005, 0.008, 0.010, 0.013, 0.016, 0.019, 0.025,
                         0.035, 0.050, 0.100}) {
    table.add_row({util::Table::num(t, 3),
                   util::Table::pct(fraction_above(similar, t)),
                   util::Table::pct(fraction_above(dissimilar, t))});
  }
  table.print(std::cout);

  std::cout << "\nSimilar pairs:    median="
            << util::Table::num(util::percentile(similar, 0.5), 4)
            << "  p10=" << util::Table::num(util::percentile(similar, 0.1), 4)
            << "\nDissimilar pairs: median="
            << util::Table::num(util::percentile(dissimilar, 0.5), 4)
            << "  p90=" << util::Table::num(util::percentile(dissimilar, 0.9), 4)
            << "\nPaper reference: both rates fall as T grows; EDR operates "
               "on T = 0.013 + 0.006*Ebat.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
