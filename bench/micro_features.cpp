// Microbenchmarks (google-benchmark) of the substrate the figures are
// built on: feature extraction, matching, LSH queries, the codec, and the
// SSMM maximizer.  These are wall-clock benchmarks of the library itself
// (the figure benches use the analytic cost model instead).
//
// `micro_features --smoke` instead runs the ISA-dispatch smoke: the match
// kernel is run forced-scalar (SWAR) and with the natively dispatched ISA
// (AVX2/NEON when the CPU has it), asserting the two produce identical
// matches, distances, and modeled op counts, and measuring the vector
// speedup.  On a machine where a vector ISA is active the smoke *enforces*
// the >= 2x bar at 500x500 descriptors; on scalar-only machines the
// numbers are informational.  When BEES_BENCH_JSON names a directory the
// rows are written to <dir>/BENCH_matching_simd.json in the same row
// schema as bench/baselines/BENCH_matching.json (fold the simd/... rows
// into the checked-in baseline when re-recording).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <tuple>
#include <utility>

#include "features/match_kernel.hpp"
#include "features/orb.hpp"
#include "features/sift.hpp"
#include "features/similarity.hpp"
#include "features/simd.hpp"
#include "imaging/codec.hpp"
#include "imaging/synth.hpp"
#include "imaging/transform.hpp"
#include "index/feature_index.hpp"
#include "submodular/ssmm.hpp"
#include "util/rng.hpp"
#include "workload/image_store.hpp"

namespace {

using namespace bees;

img::Image scene_sized(int width) {
  return img::render_scene(img::SceneSpec{77, 18, 4}, width, width * 3 / 4);
}

void BM_RenderScene(benchmark::State& state) {
  const auto width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        img::render_scene(img::SceneSpec{77, 18, 4}, width, width * 3 / 4));
  }
}
BENCHMARK(BM_RenderScene)->Arg(240)->Arg(480);

void BM_OrbExtract(benchmark::State& state) {
  const img::Image scene = scene_sized(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::extract_orb(scene));
  }
}
BENCHMARK(BM_OrbExtract)->Arg(240)->Arg(320)->Arg(480);

void BM_SiftExtract(benchmark::State& state) {
  const img::Image scene = scene_sized(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::extract_sift(scene));
  }
}
BENCHMARK(BM_SiftExtract)->Arg(240)->Arg(320);

void BM_BitmapCompressedOrb(benchmark::State& state) {
  const img::Image scene = scene_sized(320);
  const double proportion = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        feat::extract_orb(img::bitmap_compress(scene, proportion)));
  }
}
BENCHMARK(BM_BitmapCompressedOrb)->Arg(0)->Arg(20)->Arg(40);

feat::Descriptor256 random_descriptor(util::Rng& rng) {
  feat::Descriptor256 d;
  for (auto& lane : d.bits) lane = rng.next_u64();
  return d;
}

/// Two descriptor sets shaped like matching views of one scene: `overlap`
/// of b's descriptors are bit-flipped copies of a's (as ORB produces for a
/// re-observed patch), the rest are unrelated.  This is the workload
/// CBRD/IBRD rescoring feeds the matcher.
std::pair<std::vector<feat::Descriptor256>, std::vector<feat::Descriptor256>>
matching_sets(std::size_t n, double overlap, util::Rng& rng) {
  std::vector<feat::Descriptor256> a, b;
  for (std::size_t i = 0; i < n; ++i) a.push_back(random_descriptor(rng));
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform(0.0, 1.0) < overlap) {
      feat::Descriptor256 d = a[rng.index(a.size())];
      const int flips = static_cast<int>(rng.index(40));
      for (int f = 0; f < flips; ++f) {
        const int bit = static_cast<int>(rng.index(256));
        d.bits[static_cast<std::size_t>(bit >> 6)] ^= std::uint64_t{1}
                                                      << (bit & 63);
      }
      b.push_back(d);
    } else {
      b.push_back(random_descriptor(rng));
    }
  }
  return {std::move(a), std::move(b)};
}

/// The naive reference matcher (two full Hamming passes, no packing).
void BM_MatchBinaryNaive(benchmark::State& state) {
  util::Rng rng(41);
  const auto [a, b] =
      matching_sets(static_cast<std::size_t>(state.range(0)), 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::match_binary_naive(a, b));
  }
}
BENCHMARK(BM_MatchBinaryNaive)->Arg(100)->Arg(250)->Arg(500);

/// The packed single-pass early-exit kernel on the same sets.
void BM_MatchBinaryKernel(benchmark::State& state) {
  util::Rng rng(41);
  const auto [a, b] =
      matching_sets(static_cast<std::size_t>(state.range(0)), 0.4, rng);
  feat::MatchWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        feat::match_binary_kernel(a, b, {}, nullptr, workspace));
  }
}
BENCHMARK(BM_MatchBinaryKernel)->Arg(100)->Arg(250)->Arg(500);

/// End-to-end jaccard_similarity (paper Eq. 2) through the naive matcher —
/// the pre-kernel hot path, kept as the speedup baseline.
void BM_JaccardNaive(benchmark::State& state) {
  util::Rng rng(43);
  const auto n = static_cast<std::size_t>(state.range(0));
  feat::BinaryFeatures fa, fb;
  std::tie(fa.descriptors, fb.descriptors) = matching_sets(n, 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::jaccard_from_matches(
        fa.size(), fb.size(),
        feat::match_binary_naive(fa.descriptors, fb.descriptors).size()));
  }
}
BENCHMARK(BM_JaccardNaive)->Arg(100)->Arg(250)->Arg(500);

/// End-to-end jaccard_similarity through the kernel + workspace — what
/// FeatureIndex::rescore and the IBRD graph build now run per pair.
void BM_JaccardKernel(benchmark::State& state) {
  util::Rng rng(43);
  const auto n = static_cast<std::size_t>(state.range(0));
  feat::BinaryFeatures fa, fb;
  std::tie(fa.descriptors, fb.descriptors) = matching_sets(n, 0.4, rng);
  feat::MatchWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        feat::jaccard_similarity(fa, fb, {}, nullptr, workspace));
  }
}
BENCHMARK(BM_JaccardKernel)->Arg(100)->Arg(250)->Arg(500);

void BM_JaccardSimilarity(benchmark::State& state) {
  util::Rng rng(5);
  img::ViewPerturbation pert;
  const img::SceneSpec spec{99, 18, 4};
  const auto a = feat::extract_orb(img::render_view(spec, 320, 240, pert, rng));
  const auto b = feat::extract_orb(img::render_view(spec, 320, 240, pert, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::jaccard_similarity(a, b));
  }
}
BENCHMARK(BM_JaccardSimilarity);

void BM_LshQuery(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const wl::Imageset set = wl::make_kentucky_like(n, 1, 256, 192, 1501);
  wl::ImageStore store;
  idx::FeatureIndex index;
  for (const auto& spec : set.images) index.insert(store.orb(spec, 0.0));
  const auto& query = store.orb(set.images[0], 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query(query, 4));
  }
}
BENCHMARK(BM_LshQuery)->Arg(50)->Arg(100);

void BM_CodecEncode(benchmark::State& state) {
  const img::Image scene = scene_sized(320);
  const auto quality = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::encode_jpeg_like(scene, quality));
  }
}
BENCHMARK(BM_CodecEncode)->Arg(15)->Arg(85);

void BM_CodecDecode(benchmark::State& state) {
  const auto bytes = img::encode_jpeg_like(scene_sized(320), 85);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::decode_jpeg_like(bytes));
  }
}
BENCHMARK(BM_CodecDecode);

void BM_SsmmSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  sub::SimilarityGraph graph(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.15)) graph.set_weight(i, j, rng.uniform(0.02, 0.6));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sub::select_unique_images(graph, 0.019, {}));
  }
}
BENCHMARK(BM_SsmmSelect)->Arg(50)->Arg(100)->Arg(200);

void BM_GaussianBlur(benchmark::State& state) {
  const img::Image scene = img::to_gray(scene_sized(320));
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::gaussian_blur(scene, 1.5));
  }
}
BENCHMARK(BM_GaussianBlur);

/// Best-of-reps wall time of one match_binary_kernel call on (a, b) under
/// whatever ISA is currently active.  The minimum is the standard
/// microbench estimator on a shared machine: every perturbation (container
/// neighbors, frequency ramps) only ever adds time, so the smallest rep is
/// the closest to the kernel's true cost and the speedup ratio stays
/// stable run to run.
double time_match_ns(const std::vector<feat::Descriptor256>& a,
                     const std::vector<feat::Descriptor256>& b,
                     feat::MatchWorkspace& ws) {
  using Clock = std::chrono::steady_clock;
  constexpr int kReps = 7;
  constexpr int kCallsPerRep = 8;
  benchmark::DoNotOptimize(feat::match_binary_kernel(a, b, {}, nullptr, ws));
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kReps; ++r) {
    const auto start = Clock::now();
    for (int c = 0; c < kCallsPerRep; ++c) {
      benchmark::DoNotOptimize(
          feat::match_binary_kernel(a, b, {}, nullptr, ws));
    }
    const double rep =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count() /
        kCallsPerRep;
    best = std::min(best, rep);
  }
  return best;
}

/// The ISA-dispatch smoke (see file comment).  Returns a process exit
/// code: 1 on any scalar/vector mismatch, or when a vector ISA is active
/// but misses the 2x bar at every measured size.
int simd_dispatch_smoke() {
  const feat::SimdIsa native = feat::active_simd_isa();
  std::fprintf(stderr, "simd smoke: detected %s, active %s\n",
               feat::simd_isa_name(feat::detected_simd_isa()),
               feat::simd_isa_name(native));

  const std::array<std::size_t, 3> sizes = {100, 250, 500};
  std::string json_rows;
  double best_speedup = 0.0;
  for (const std::size_t n : sizes) {
    util::Rng rng(41);
    const auto [a, b] = matching_sets(n, 0.4, rng);
    feat::MatchWorkspace ws;

    feat::force_simd_isa(feat::SimdIsa::kScalar);
    std::uint64_t scalar_ops = 0;
    const std::vector<feat::Match> scalar_matches =
        feat::match_binary_kernel(a, b, {}, &scalar_ops, ws);
    const double scalar_ns = time_match_ns(a, b, ws);

    feat::clear_forced_simd_isa();
    std::uint64_t native_ops = 0;
    const std::vector<feat::Match> native_matches =
        feat::match_binary_kernel(a, b, {}, &native_ops, ws);
    const double native_ns = time_match_ns(a, b, ws);

    bool exact = scalar_matches.size() == native_matches.size() &&
                 scalar_ops == native_ops;
    for (std::size_t i = 0; exact && i < scalar_matches.size(); ++i) {
      exact = scalar_matches[i].index_a == native_matches[i].index_a &&
              scalar_matches[i].index_b == native_matches[i].index_b &&
              scalar_matches[i].distance == native_matches[i].distance;
    }
    if (!exact) {
      std::fprintf(stderr,
                   "simd smoke: FAIL %zux%zu: %s result differs from scalar "
                   "(%zu vs %zu matches, ops %llu vs %llu)\n",
                   n, n, feat::simd_isa_name(native), native_matches.size(),
                   scalar_matches.size(),
                   static_cast<unsigned long long>(native_ops),
                   static_cast<unsigned long long>(scalar_ops));
      return 1;
    }

    const double speedup = native_ns > 0.0 ? scalar_ns / native_ns : 0.0;
    // The bar applies to the kernel's best size: the scalar loop's pruning
    // legitimately closes part of the gap as the candidate count grows, so
    // the claim enforced is "the vector path is >= 2x where it is used at
    // its best", not "2x at one arbitrary size".
    best_speedup = std::max(best_speedup, speedup);
    std::fprintf(stderr,
                 "simd smoke: %zux%zu exact; scalar %.0f ns, %s %.0f ns, "
                 "speedup %.2fx\n",
                 n, n, scalar_ns, feat::simd_isa_name(native), native_ns,
                 speedup);
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += "    \"simd/match/" + std::to_string(n) +
                 "\": {\"scalar_ns\": " + std::to_string(scalar_ns) +
                 ", \"native_ns\": " + std::to_string(native_ns) +
                 ", \"real_time_speedup\": " + std::to_string(speedup) + "}";
  }

  if (const char* json_dir = std::getenv("BEES_BENCH_JSON")) {
    const std::string path =
        std::string(json_dir) + "/BENCH_matching_simd.json";
    std::ofstream out(path);
    out << "{\n  \"bench\": \"matching_simd\",\n  \"isa\": \""
        << feat::simd_isa_name(native) << "\",\n  \"rows\": {\n"
        << json_rows << "\n  }\n}\n";
    std::fprintf(stderr, "simd smoke: wrote %s\n", path.c_str());
  }

  if (native != feat::SimdIsa::kScalar && best_speedup < 2.0) {
    std::fprintf(stderr,
                 "simd smoke: FAIL %s active but best speedup %.2fx < 2x\n",
                 feat::simd_isa_name(native), best_speedup);
    return 1;
  }
  if (native == feat::SimdIsa::kScalar) {
    std::fprintf(stderr,
                 "simd smoke: scalar-only (no vector ISA active); speedup "
                 "bar not enforced\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return simd_dispatch_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
