// Microbenchmarks (google-benchmark) of the substrate the figures are
// built on: feature extraction, matching, LSH queries, the codec, and the
// SSMM maximizer.  These are wall-clock benchmarks of the library itself
// (the figure benches use the analytic cost model instead).
#include <benchmark/benchmark.h>

#include <tuple>
#include <utility>

#include "features/match_kernel.hpp"
#include "features/orb.hpp"
#include "features/sift.hpp"
#include "features/similarity.hpp"
#include "imaging/codec.hpp"
#include "imaging/synth.hpp"
#include "imaging/transform.hpp"
#include "index/feature_index.hpp"
#include "submodular/ssmm.hpp"
#include "util/rng.hpp"
#include "workload/image_store.hpp"

namespace {

using namespace bees;

img::Image scene_sized(int width) {
  return img::render_scene(img::SceneSpec{77, 18, 4}, width, width * 3 / 4);
}

void BM_RenderScene(benchmark::State& state) {
  const auto width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        img::render_scene(img::SceneSpec{77, 18, 4}, width, width * 3 / 4));
  }
}
BENCHMARK(BM_RenderScene)->Arg(240)->Arg(480);

void BM_OrbExtract(benchmark::State& state) {
  const img::Image scene = scene_sized(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::extract_orb(scene));
  }
}
BENCHMARK(BM_OrbExtract)->Arg(240)->Arg(320)->Arg(480);

void BM_SiftExtract(benchmark::State& state) {
  const img::Image scene = scene_sized(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::extract_sift(scene));
  }
}
BENCHMARK(BM_SiftExtract)->Arg(240)->Arg(320);

void BM_BitmapCompressedOrb(benchmark::State& state) {
  const img::Image scene = scene_sized(320);
  const double proportion = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        feat::extract_orb(img::bitmap_compress(scene, proportion)));
  }
}
BENCHMARK(BM_BitmapCompressedOrb)->Arg(0)->Arg(20)->Arg(40);

feat::Descriptor256 random_descriptor(util::Rng& rng) {
  feat::Descriptor256 d;
  for (auto& lane : d.bits) lane = rng.next_u64();
  return d;
}

/// Two descriptor sets shaped like matching views of one scene: `overlap`
/// of b's descriptors are bit-flipped copies of a's (as ORB produces for a
/// re-observed patch), the rest are unrelated.  This is the workload
/// CBRD/IBRD rescoring feeds the matcher.
std::pair<std::vector<feat::Descriptor256>, std::vector<feat::Descriptor256>>
matching_sets(std::size_t n, double overlap, util::Rng& rng) {
  std::vector<feat::Descriptor256> a, b;
  for (std::size_t i = 0; i < n; ++i) a.push_back(random_descriptor(rng));
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform(0.0, 1.0) < overlap) {
      feat::Descriptor256 d = a[rng.index(a.size())];
      const int flips = static_cast<int>(rng.index(40));
      for (int f = 0; f < flips; ++f) {
        const int bit = static_cast<int>(rng.index(256));
        d.bits[static_cast<std::size_t>(bit >> 6)] ^= std::uint64_t{1}
                                                      << (bit & 63);
      }
      b.push_back(d);
    } else {
      b.push_back(random_descriptor(rng));
    }
  }
  return {std::move(a), std::move(b)};
}

/// The naive reference matcher (two full Hamming passes, no packing).
void BM_MatchBinaryNaive(benchmark::State& state) {
  util::Rng rng(41);
  const auto [a, b] =
      matching_sets(static_cast<std::size_t>(state.range(0)), 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::match_binary_naive(a, b));
  }
}
BENCHMARK(BM_MatchBinaryNaive)->Arg(100)->Arg(250)->Arg(500);

/// The packed single-pass early-exit kernel on the same sets.
void BM_MatchBinaryKernel(benchmark::State& state) {
  util::Rng rng(41);
  const auto [a, b] =
      matching_sets(static_cast<std::size_t>(state.range(0)), 0.4, rng);
  feat::MatchWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        feat::match_binary_kernel(a, b, {}, nullptr, workspace));
  }
}
BENCHMARK(BM_MatchBinaryKernel)->Arg(100)->Arg(250)->Arg(500);

/// End-to-end jaccard_similarity (paper Eq. 2) through the naive matcher —
/// the pre-kernel hot path, kept as the speedup baseline.
void BM_JaccardNaive(benchmark::State& state) {
  util::Rng rng(43);
  const auto n = static_cast<std::size_t>(state.range(0));
  feat::BinaryFeatures fa, fb;
  std::tie(fa.descriptors, fb.descriptors) = matching_sets(n, 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::jaccard_from_matches(
        fa.size(), fb.size(),
        feat::match_binary_naive(fa.descriptors, fb.descriptors).size()));
  }
}
BENCHMARK(BM_JaccardNaive)->Arg(100)->Arg(250)->Arg(500);

/// End-to-end jaccard_similarity through the kernel + workspace — what
/// FeatureIndex::rescore and the IBRD graph build now run per pair.
void BM_JaccardKernel(benchmark::State& state) {
  util::Rng rng(43);
  const auto n = static_cast<std::size_t>(state.range(0));
  feat::BinaryFeatures fa, fb;
  std::tie(fa.descriptors, fb.descriptors) = matching_sets(n, 0.4, rng);
  feat::MatchWorkspace workspace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        feat::jaccard_similarity(fa, fb, {}, nullptr, workspace));
  }
}
BENCHMARK(BM_JaccardKernel)->Arg(100)->Arg(250)->Arg(500);

void BM_JaccardSimilarity(benchmark::State& state) {
  util::Rng rng(5);
  img::ViewPerturbation pert;
  const img::SceneSpec spec{99, 18, 4};
  const auto a = feat::extract_orb(img::render_view(spec, 320, 240, pert, rng));
  const auto b = feat::extract_orb(img::render_view(spec, 320, 240, pert, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(feat::jaccard_similarity(a, b));
  }
}
BENCHMARK(BM_JaccardSimilarity);

void BM_LshQuery(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const wl::Imageset set = wl::make_kentucky_like(n, 1, 256, 192, 1501);
  wl::ImageStore store;
  idx::FeatureIndex index;
  for (const auto& spec : set.images) index.insert(store.orb(spec, 0.0));
  const auto& query = store.orb(set.images[0], 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.query(query, 4));
  }
}
BENCHMARK(BM_LshQuery)->Arg(50)->Arg(100);

void BM_CodecEncode(benchmark::State& state) {
  const img::Image scene = scene_sized(320);
  const auto quality = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::encode_jpeg_like(scene, quality));
  }
}
BENCHMARK(BM_CodecEncode)->Arg(15)->Arg(85);

void BM_CodecDecode(benchmark::State& state) {
  const auto bytes = img::encode_jpeg_like(scene_sized(320), 85);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::decode_jpeg_like(bytes));
  }
}
BENCHMARK(BM_CodecDecode);

void BM_SsmmSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  sub::SimilarityGraph graph(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.15)) graph.set_weight(i, j, rng.uniform(0.02, 0.6));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sub::select_unique_images(graph, 0.019, {}));
  }
}
BENCHMARK(BM_SsmmSelect)->Arg(50)->Arg(100)->Arg(200);

void BM_GaussianBlur(benchmark::State& state) {
  const img::Image scene = img::to_gray(scene_sized(320));
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::gaussian_blur(scene, 1.5));
  }
}
BENCHMARK(BM_GaussianBlur);

}  // namespace

BENCHMARK_MAIN();
