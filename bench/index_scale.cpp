// Million-image index scaling: ingest a large synthetic corpus into the
// ANN-pruned FeatureIndex (descriptor LSH off, MinHash banding + vocabulary
// routing on) and compare the pruned query path against the exhaustive
// scan on perturbed second views of stored images.
//
// Three bars are *enforced* (non-zero exit on violation):
//   - rank-1 recall of the pruned path vs query_exact must reach >= 0.95
//     at the default recall target;
//   - the pruned path must rescore >= 10x fewer candidates than the
//     exhaustive scan (the point of the front end);
//   - peak RSS (VmHWM) must stay under a per-image memory ceiling, so the
//     ANN structures cannot silently regress into an O(corpus) blowup.
//
// Corpus construction is deliberately synthetic-but-adversarial: every
// image carries a few "clutter" descriptors drawn from a small shared pool
// (loading the inverted file the way common visual words do) plus a
// majority of image-unique descriptors.  A query view keeps most of the
// unique descriptors, drops some, adds fresh ones, and redraws its clutter
// — so rank-1 requires the shortlist to surface the right image among ~1M
// near-uniform distractors.
//
// Usage: index_scale [--smoke]
//   --smoke       ~20k images (the perfsmoke ctest entry, a few seconds)
//   default       ~200k images
//   BEES_BENCH_SCALE=paper   1M images (the committed baseline;
//                            several minutes, dominated by the exact
//                            reference scans)
// When BEES_BENCH_JSON names a directory the measured row is written to
// <dir>/BENCH_index.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "features/keypoint.hpp"
#include "index/feature_index.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace bees;

// ---------------------------------------------------------------------------
// Synthetic corpus.

constexpr int kClutterPool = 4096;  ///< Shared "common word" descriptors.
constexpr int kClutterPerImage = 8;
constexpr int kUniquePerImage = 16;
constexpr int kUniqueKeptInQuery = 12;  ///< Query keeps 12/16, adds 4 fresh.

feat::Descriptor256 random_descriptor(util::Rng& rng) {
  feat::Descriptor256 d;
  for (std::uint64_t& w : d.bits) w = rng.next_u64();
  return d;
}

std::vector<feat::Descriptor256> make_clutter_pool() {
  util::Rng rng(0xc1a77e50ULL);
  std::vector<feat::Descriptor256> pool;
  pool.reserve(kClutterPool);
  for (int i = 0; i < kClutterPool; ++i) pool.push_back(random_descriptor(rng));
  return pool;
}

/// The stored view of image `id`: 8 pool draws + 16 unique descriptors.
feat::BinaryFeatures stored_view(const std::vector<feat::Descriptor256>& pool,
                                 std::uint64_t id) {
  feat::BinaryFeatures f;
  f.descriptors.reserve(kClutterPerImage + kUniquePerImage);
  util::Rng rng(0x57a9e000ULL + id);
  for (int i = 0; i < kClutterPerImage; ++i) {
    f.descriptors.push_back(pool[rng.next_u64() % pool.size()]);
  }
  for (int i = 0; i < kUniquePerImage; ++i) {
    f.descriptors.push_back(random_descriptor(rng));
  }
  return f;
}

/// A second view of image `id`: keeps 12 of the 16 unique descriptors,
/// substitutes 4 fresh ones, and redraws its clutter from the pool.
feat::BinaryFeatures query_view(const std::vector<feat::Descriptor256>& pool,
                                std::uint64_t id) {
  feat::BinaryFeatures f;
  f.descriptors.reserve(kClutterPerImage + kUniquePerImage);
  util::Rng stored_rng(0x57a9e000ULL + id);
  util::Rng fresh_rng(0x9e4b0000ULL + id);
  for (int i = 0; i < kClutterPerImage; ++i) {
    stored_rng.next_u64();  // skip the stored clutter choices
    f.descriptors.push_back(pool[fresh_rng.next_u64() % pool.size()]);
  }
  for (int i = 0; i < kUniquePerImage; ++i) {
    const feat::Descriptor256 d = random_descriptor(stored_rng);
    if (i < kUniqueKeptInQuery) {
      f.descriptors.push_back(d);
    } else {
      f.descriptors.push_back(random_descriptor(fresh_rng));
    }
  }
  return f;
}

// ---------------------------------------------------------------------------
// Peak RSS, from /proc/self/status (Linux).  Returns 0 when unavailable so
// the ceiling check degrades to informational on other platforms.
double vmhwm_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) * 1024.0;
    }
  }
  return 0.0;
}

struct Result {
  int images = 0;
  int queries = 0;
  double ingest_seconds = 0.0;
  double ann_query_us = 0.0;
  double exact_query_us = 0.0;
  double ann_candidates = 0.0;    ///< Mean rescored per pruned query.
  double exact_candidates = 0.0;  ///< Mean scanned per exact query.
  double prune_ratio = 0.0;
  double recall = 0.0;
  double vmhwm_bytes = 0.0;
  double ceiling_bytes = 0.0;
};

int main_impl(bool smoke) {
  // The million-image configuration: per-descriptor LSH tables are off
  // (their memory is O(descriptors x tables)); candidate generation is the
  // ANN front end alone, with a 16^3 = 4096-leaf vocabulary.
  idx::FeatureIndexParams params;
  params.enable_descriptor_lsh = false;
  params.ann.enabled = true;
  params.ann.vocabulary.branching = 16;
  params.ann.vocabulary.depth = 3;
  params.ann.vocabulary_sample = 16384;

  const int kImages = smoke ? 20'000 : bench::sized(200'000, 1'000'000);
  // The exact reference scans the whole corpus per query, so it dominates
  // the runtime; recall is a proportion, and ~100 queries bound its
  // standard error near 2%.
  const int kQueries = smoke ? 50 : 100;
  // Ceiling: a fixed process baseline plus a per-image budget covering the
  // stored descriptors (768 B), the ANN row (band signatures + words), and
  // container overheads.  Generous enough for allocator slack, tight
  // enough that an accidental per-descriptor table or row copy trips it.
  const double ceiling =
      256.0 * 1024 * 1024 + 2048.0 * static_cast<double>(kImages);

  util::print_banner(std::cout, "Index scale: ANN-pruned query vs exact scan");
  std::cout << "images: " << kImages << ", reference queries: " << kQueries
            << ", recall target: " << idx::kDefaultRecallTarget << "\n\n";

  const std::vector<feat::Descriptor256> pool = make_clutter_pool();
  idx::FeatureIndex index(params);

  Result res;
  res.images = kImages;
  res.queries = kQueries;
  res.ceiling_bytes = ceiling;

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kImages; ++i) {
    index.insert(stored_view(pool, static_cast<std::uint64_t>(i)));
  }
  res.ingest_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Queries cover the corpus at a fixed stride so the sample is spread
  // over the whole insertion order (not just the oldest images).
  const std::uint64_t stride =
      static_cast<std::uint64_t>(kImages / kQueries);
  int rank1_agree = 0;
  double ann_seconds = 0.0, exact_seconds = 0.0;
  std::size_t ann_checked = 0, exact_checked = 0;
  for (int q = 0; q < kQueries; ++q) {
    const std::uint64_t id = static_cast<std::uint64_t>(q) * stride;
    const feat::BinaryFeatures view = query_view(pool, id);

    const auto a0 = std::chrono::steady_clock::now();
    const idx::QueryResult pruned = index.query(view);
    ann_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - a0)
            .count();

    const auto e0 = std::chrono::steady_clock::now();
    const idx::QueryResult exact = index.query_exact(view);
    exact_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - e0)
            .count();

    ann_checked += pruned.candidates_checked;
    exact_checked += exact.candidates_checked;
    if (pruned.best_id == exact.best_id) ++rank1_agree;
  }

  const double n = static_cast<double>(kQueries);
  res.ann_query_us = ann_seconds / n * 1e6;
  res.exact_query_us = exact_seconds / n * 1e6;
  res.ann_candidates = static_cast<double>(ann_checked) / n;
  res.exact_candidates = static_cast<double>(exact_checked) / n;
  res.prune_ratio =
      res.ann_candidates > 0.0 ? res.exact_candidates / res.ann_candidates
                               : 0.0;
  res.recall = static_cast<double>(rank1_agree) / n;
  res.vmhwm_bytes = vmhwm_bytes();

  util::Table table({"images", "ingest s", "img/s", "ann query",
                     "exact query", "rescored", "scanned", "prune", "recall",
                     "peak RSS", "ceiling"});
  table.add_row({std::to_string(res.images),
                 util::Table::num(res.ingest_seconds, 2),
                 util::Table::num(static_cast<double>(res.images) /
                                      std::max(res.ingest_seconds, 1e-9),
                                  0),
                 util::Table::num(res.ann_query_us, 0) + " us",
                 util::Table::num(res.exact_query_us, 0) + " us",
                 util::Table::num(res.ann_candidates, 1),
                 util::Table::num(res.exact_candidates, 0),
                 util::Table::num(res.prune_ratio, 1) + "x",
                 util::Table::num(res.recall, 3),
                 bench::mb(res.vmhwm_bytes), bench::mb(res.ceiling_bytes)});
  table.print(std::cout);

  const char* json_dir = std::getenv("BEES_BENCH_JSON");
  if (json_dir != nullptr && *json_dir != '\0') {
    const std::string label = smoke ? "smoke"
                              : bench::paper_scale() ? "paper"
                                                     : "default";
    std::ofstream out(std::string(json_dir) + "/BENCH_index.json");
    out << "{\n  \"bench\": \"index\",\n  \"rows\": {\n    "
        << obs::json_string(label) << ": {\"images\": " << res.images
        << ", \"queries\": " << res.queries
        << ", \"ingest_seconds\": " << obs::json_number(res.ingest_seconds)
        << ", \"ann_query_us\": " << obs::json_number(res.ann_query_us)
        << ", \"exact_query_us\": " << obs::json_number(res.exact_query_us)
        << ", \"ann_candidates\": " << obs::json_number(res.ann_candidates)
        << ", \"exact_candidates\": "
        << obs::json_number(res.exact_candidates)
        << ", \"prune_ratio\": " << obs::json_number(res.prune_ratio)
        << ", \"recall\": " << obs::json_number(res.recall)
        << ", \"vmhwm_bytes\": " << obs::json_number(res.vmhwm_bytes)
        << ", \"ceiling_bytes\": " << obs::json_number(res.ceiling_bytes)
        << "}\n  }\n}\n";
  }

  int failures = 0;
  std::cout << "\nBars (enforced):\n";
  std::cout << "  rank-1 recall vs exact: " << util::Table::num(res.recall, 3)
            << " (required >= 0.95)\n";
  if (res.recall < 0.95) {
    std::cerr << "FAIL: pruned query recall below 0.95\n";
    ++failures;
  }
  std::cout << "  candidates pruned: " << util::Table::num(res.prune_ratio, 1)
            << "x fewer rescores (required >= 10x)\n";
  if (res.prune_ratio < 10.0) {
    std::cerr << "FAIL: pruned query did not cut rescores by 10x\n";
    ++failures;
  }
  if (res.vmhwm_bytes > 0.0) {
    std::cout << "  peak RSS: " << bench::mb(res.vmhwm_bytes)
              << " (ceiling " << bench::mb(res.ceiling_bytes) << ")\n";
    if (res.vmhwm_bytes > res.ceiling_bytes) {
      std::cerr << "FAIL: peak RSS exceeded the memory ceiling\n";
      ++failures;
    }
  } else {
    std::cout << "  peak RSS: unavailable on this platform (ceiling "
              << bench::mb(res.ceiling_bytes) << ", informational)\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return main_impl(smoke);
}
