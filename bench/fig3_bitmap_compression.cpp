// Figure 3 — The impact of bitmap compression proportion on (a) similarity
// detection precision and (b) feature-extraction energy overhead.
//
// Protocol (paper §III-A): Kentucky-style imageset in groups of 4 similar
// images; one image per group is queried against the index; precision is
// the fraction of same-group images in the top-4 results, normalized to
// the uncompressed run.  Energy is the ORB extraction cost of the
// compressed query bitmaps, normalized likewise.  The paper's claims to
// check: precision stays above ~0.9 up to proportion 0.4, and energy falls
// roughly linearly with the proportion.
#include <iostream>

#include "bench/common.hpp"
#include "index/feature_index.hpp"
#include "util/stats.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int groups = bench::sized(40, 200);
  const int width = 320, height = 240;
  util::print_banner(std::cout, "Figure 3: bitmap compression vs precision & energy");
  std::cout << "Kentucky-like imageset: " << groups << " groups x 4 views ("
            << width << "x" << height << ")\n";

  const wl::Imageset set = wl::make_kentucky_like(groups, 4, width, height, 301);
  wl::ImageStore store;

  // Build the server index from the full-resolution features of every
  // image (the paper's index holds original-quality features).
  idx::FeatureIndex index;
  std::vector<idx::ImageId> ids(set.images.size());
  for (std::size_t i = 0; i < set.images.size(); ++i) {
    ids[i] = index.insert(store.orb(set.images[i], 0.0));
  }

  // One query image per group (the first view).
  util::Table table({"proportion", "precision", "norm_precision",
                     "energy_J", "norm_energy"});
  double base_precision = 0.0, base_energy = 0.0;
  std::vector<double> proportions, norm_energies;
  energy::CostModel cost;

  for (int step = 0; step <= 18; ++step) {
    const double proportion = step * 0.05;
    double correct = 0.0;
    std::uint64_t total_ops = 0;
    for (std::size_t g = 0; g < set.groups.size(); ++g) {
      const std::size_t query_idx = set.groups[g].front();
      const feat::BinaryFeatures& qf =
          store.orb(set.images[query_idx], proportion);
      total_ops += qf.stats.ops;
      const idx::QueryResult r = index.query(qf, 4);
      for (const auto& hit : r.hits) {
        if (set.images[hit.id].group == g) correct += 1.0;
      }
    }
    const double precision =
        correct / (4.0 * static_cast<double>(set.groups.size()));
    const double energy = cost.compute_energy(total_ops);
    if (step == 0) {
      base_precision = precision;
      base_energy = energy;
    }
    const double np = base_precision > 0 ? precision / base_precision : 0;
    const double ne = base_energy > 0 ? energy / base_energy : 0;
    proportions.push_back(proportion);
    norm_energies.push_back(ne);
    table.add_row({util::Table::num(proportion, 2),
                   util::Table::num(precision, 3), util::Table::pct(np),
                   util::Table::num(energy, 2), util::Table::pct(ne)});
  }
  table.print(std::cout);

  // The paper's linearity observation, checked quantitatively.
  const util::LinearFit fit = util::fit_line(proportions, norm_energies);
  std::cout << "\nEnergy-vs-proportion linear fit: slope="
            << util::Table::num(fit.slope, 3)
            << " R^2=" << util::Table::num(fit.r_squared, 3)
            << " (paper: approximately linear)\n";
  std::cout << "EAC design point: C = 0.4 - 0.4*Ebat keeps the proportion in "
               "[0, 0.4], the region where precision stays high.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
