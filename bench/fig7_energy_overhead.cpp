// Figure 7 — Energy overhead of Direct Upload, SmartEye, MRC, and BEES at
// cross-batch redundancy ratios 0% / 25% / 50% / 75%.
//
// Protocol (paper §IV-B3(1)): a batch of 100 images containing 10 in-batch
// similars; the server is pre-seeded so the chosen fraction of the batch
// has high-similarity (> 0.3) matches.  Paper claims to check: energy
// falls with the redundancy ratio for the feature schemes; SmartEye > MRC
// (PCA-SIFT extraction is dearer than ORB); BEES cuts 67.3-70.8% vs MRC
// and 67.6-85.3% vs Direct; at 0% redundancy SmartEye and MRC cost MORE
// than Direct while BEES still saves ~67.6%.
#include <iostream>

#include "bench/scheme_grid.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int batch = bench::sized(40, 100);
  const int similars = batch / 10;
  util::print_banner(std::cout, "Figure 7: energy overhead vs redundancy ratio");
  std::cout << "Batch: " << batch << " images (" << similars
            << " in-batch similar), 256 Kbps, payloads scaled to ~700 KB\n";

  bench::GridSetup setup = bench::make_grid_setup(batch, similars, 320, 240, 701);
  bench::BenchJson json("fig7");

  util::Table table({"redundancy", "Direct", "SmartEye", "MRC", "BEES",
                     "BEES_vs_MRC", "BEES_vs_Direct"});
  for (const double ratio : {0.0, 0.25, 0.5, 0.75}) {
    double e[4];
    int i = 0;
    for (const std::string name : {"Direct", "SmartEye", "MRC", "BEES"}) {
      const core::BatchReport r = bench::run_cell(setup, name, ratio, 256000.0);
      json.add("r" + util::Table::num(ratio, 2) + "/" + name, r);
      e[i++] = r.energy.active_total();
    }
    table.add_row({util::Table::pct(ratio, 0), bench::kj(e[0]),
                   bench::kj(e[1]), bench::kj(e[2]), bench::kj(e[3]),
                   "-" + util::Table::pct(1.0 - e[3] / e[2]),
                   "-" + util::Table::pct(1.0 - e[3] / e[0])});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: BEES -67.3%..-70.8% vs MRC, "
               "-67.6%..-85.3% vs Direct; at 0% redundancy SmartEye and MRC "
               "exceed Direct while BEES still saves ~67.6%.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
