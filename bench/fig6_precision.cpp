// Figure 6 — Similarity-detection precision of SIFT, PCA-SIFT, and
// BEES(X) (ORB on bitmaps compressed by the EAC law at X% battery),
// normalized to SIFT.
//
// Protocol (paper §IV-B1): Kentucky-style groups; one query per group;
// precision = Eq. 3 over top-4 results.  Paper reference: BEES(100)
// > 90.3% of SIFT, BEES(10) > 84.9%; PCA-SIFT sits between SIFT and BEES.
#include <iostream>

#include "bench/common.hpp"
#include "energy/adaptive.hpp"
#include "index/feature_index.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int groups = bench::sized(40, 125);
  const int width = 256, height = 192;
  util::print_banner(std::cout, "Figure 6: precision normalized to SIFT");
  std::cout << "Kentucky-like imageset: " << groups << " groups x 4 views ("
            << width << "x" << height << "); queries = " << groups << "\n";

  const wl::Imageset set = wl::make_kentucky_like(groups, 4, width, height, 601);
  wl::ImageStore store;

  // PCA-SIFT projection trained on a disjoint training set, as in Ke &
  // Sukthankar.
  const wl::Imageset training =
      wl::make_kentucky_like(4, 2, width, height, 602);
  const feat::PcaModel pca = core::train_pca_model(store, training, 8);

  // --- SIFT and PCA-SIFT: float indexes over the whole set. ---
  idx::FloatFeatureIndex sift_index, pca_index;
  // --- ORB at several compression levels: binary index of full-res
  //     features, queried with EAC-compressed extractions. ---
  idx::FeatureIndex orb_index;
  for (const auto& spec : set.images) {
    sift_index.insert(store.sift(spec));
    pca_index.insert(store.pca_sift(spec, pca));
    orb_index.insert(store.orb(spec, 0.0));
  }

  auto precision_of = [&](auto&& query_fn) {
    double correct = 0;
    for (std::size_t g = 0; g < set.groups.size(); ++g) {
      const auto hits = query_fn(set.images[set.groups[g].front()]);
      for (const auto& hit : hits) {
        if (set.images[hit.id].group == g) correct += 1.0;
      }
    }
    return correct / (4.0 * static_cast<double>(set.groups.size()));
  };

  const double p_sift = precision_of([&](const wl::ImageSpec& q) {
    return sift_index.query(store.sift(q), 4).hits;
  });
  const double p_pca = precision_of([&](const wl::ImageSpec& q) {
    return pca_index.query(store.pca_sift(q, pca), 4).hits;
  });

  util::Table table({"scheme", "precision", "normalized_to_SIFT"});
  table.add_row({"SIFT", util::Table::num(p_sift, 3), "100.0%"});
  table.add_row({"PCA-SIFT", util::Table::num(p_pca, 3),
                 util::Table::pct(p_pca / p_sift)});
  for (const int ebat : {100, 70, 40, 10}) {
    const double c = energy::adapt::eac_compression(ebat / 100.0);
    const double p = precision_of([&](const wl::ImageSpec& q) {
      return orb_index.query(store.orb(q, c), 4).hits;
    });
    table.add_row({"BEES(" + std::to_string(ebat) + ")",
                   util::Table::num(p, 3), util::Table::pct(p / p_sift)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: BEES(100) > 90.3% of SIFT; BEES(10) > "
               "84.9%; precision decreases slightly as Ebat falls.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
