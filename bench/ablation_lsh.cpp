// Ablation — LSH candidate generation in the server index versus an exact
// full scan (beyond the paper's figures): agreement on the retrieved best
// match, exact-rescore work saved, and the scaling with index size.
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "index/feature_index.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int max_groups = bench::sized(120, 400);
  util::print_banner(std::cout, "Ablation: LSH index vs exact scan");
  std::cout << "Index sizes swept; 40 queries per size; agreement = same "
               "best match\n";

  const wl::Imageset set =
      wl::make_kentucky_like(max_groups, 2, 256, 192, 1401);
  wl::ImageStore store;

  util::Table table({"index_images", "top1_agreement", "avg_candidates",
                     "ops_lsh", "ops_exact", "work_saved", "lsh_us",
                     "exact_us"});
  for (const int groups : {max_groups / 4, max_groups / 2, max_groups}) {
    idx::FeatureIndex index;
    for (int g = 0; g < groups; ++g) {
      index.insert(store.orb(set.images[set.groups[static_cast<std::size_t>(
                                 g)][0]],
                             0.0));
    }
    int agree = 0;
    std::uint64_t ops_lsh = 0, ops_exact = 0;
    std::size_t candidates = 0;
    double us_lsh = 0, us_exact = 0;
    const int queries = 40;
    for (int q = 0; q < queries; ++q) {
      const auto& qf = store.orb(
          set.images[set.groups[static_cast<std::size_t>(q % groups)][1]],
          0.0);
      const auto t0 = std::chrono::steady_clock::now();
      const idx::QueryResult fast = index.query(qf, 1);
      const auto t1 = std::chrono::steady_clock::now();
      const idx::QueryResult exact = index.query_exact(qf, 1);
      const auto t2 = std::chrono::steady_clock::now();
      us_lsh += std::chrono::duration<double, std::micro>(t1 - t0).count();
      us_exact += std::chrono::duration<double, std::micro>(t2 - t1).count();
      agree += (fast.best_id == exact.best_id) ? 1 : 0;
      ops_lsh += fast.ops;
      ops_exact += exact.ops;
      candidates += fast.candidates_checked;
    }
    table.add_row(
        {std::to_string(groups),
         util::Table::pct(static_cast<double>(agree) / queries),
         util::Table::num(static_cast<double>(candidates) / queries, 1),
         std::to_string(ops_lsh / queries),
         std::to_string(ops_exact / queries),
         util::Table::pct(1.0 - static_cast<double>(ops_lsh) /
                                    static_cast<double>(ops_exact)),
         util::Table::num(us_lsh / queries, 0),
         util::Table::num(us_exact / queries, 0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: near-100% top-1 agreement while the rescoring "
               "work per query stays flat (bounded by max_candidates) "
               "instead of growing with the index.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
