// Figure 9 — Battery lifetime: upload one image group every 20 minutes
// until the battery dies, under Direct Upload, SmartEye, MRC, BEES-EA
// (adaptation off), and BEES.
//
// Protocol (paper §IV-B3(3)): Paris-style groups with ~50% cross-batch
// redundancy pre-seeded in the server index; screen always on.  Paper
// claims to check: Direct/SmartEye/MRC/BEES-EA drain near-linearly while
// BEES's curve flattens as Ebat falls (the adaptive schemes shed work);
// lifetime ordering Direct < SmartEye < MRC < BEES-EA < BEES, with BEES-EA
// and BEES far ahead (paper: +93.4% and +133.1% over Direct; BEES +19.8%
// over BEES-EA).
//
// Scale note: battery capacity is scaled down with the reduced workload so
// every scheme's death lands inside the run; the baseline (screen+idle)
// draw is set to 0.25 W so that, as in the paper's testbed, upload energy
// — not the idle floor — dominates the budget (see EXPERIMENTS.md).
#include <iostream>

#include "bench/common.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int n_groups = bench::sized(40, 150);
  const int group_size = bench::sized(10, 40);
  const double battery_j = bench::sized(9000, 43092);
  const double interval_s = 1200.0;  // 20 minutes, as in the paper
  util::print_banner(std::cout, "Figure 9: battery lifetime");
  std::cout << n_groups << " groups x " << group_size
            << " images, one group per 20 min, ~50% cross-batch redundancy, "
            << "battery " << battery_j << " J\n";

  const wl::Imageset set = wl::make_paris_like(
      n_groups * group_size, n_groups * group_size / 6, wl::GeoBox{}, 240,
      180, 901);
  wl::ImageStore store;
  const double byte_scale = bench::calibrate_byte_scale(store, set);
  core::SchemeConfig cfg = bench::make_config(byte_scale);
  cfg.cost.idle_power_w = 0.25;
  const auto pca = std::make_shared<feat::PcaModel>(
      core::train_pca_model(store, set, 4));
  const auto groups = core::slice_groups(set, group_size);

  core::DirectUploadScheme direct(store, cfg);
  core::SmartEyeScheme smarteye(store, cfg, pca);
  core::MrcScheme mrc(store, cfg);
  core::BeesScheme bees_ea(store, cfg, false);
  core::BeesScheme bees(store, cfg, true);
  core::UploadScheme* schemes[] = {&direct, &smarteye, &mrc, &bees_ea, &bees};

  std::vector<core::LifetimeResult> results;
  for (core::UploadScheme* scheme : schemes) {
    cloud::Server server;
    core::seed_cross_batch_redundancy(set.images, 0.5, store, server,
                                      pca.get(), 902);
    net::ChannelParams chp;  // fluctuating 0..512 Kbps, as in the testbed
    chp.seed = 903;
    net::Channel channel(chp);
    energy::Battery battery(battery_j);
    results.push_back(core::run_lifetime(*scheme, groups, interval_s, server,
                                         channel, battery));
  }

  // Battery curves (remaining % every 4 groups), Fig. 9's plot.
  util::Table curve({"hours", "Direct", "SmartEye", "MRC", "BEES-EA",
                     "BEES"});
  std::size_t longest = 0;
  for (const auto& r : results) longest = std::max(longest, r.curve.size());
  for (std::size_t i = 0; i < longest; i += 4) {
    std::vector<std::string> row;
    row.push_back(util::Table::num(
        static_cast<double>(i) * interval_s / 3600.0, 1));
    for (const auto& r : results) {
      row.push_back(i < r.curve.size()
                        ? util::Table::pct(r.curve[i].battery_fraction, 0)
                        : "dead");
    }
    curve.add_row(std::move(row));
  }
  curve.print(std::cout);

  util::Table summary({"scheme", "lifetime", "groups", "extension_vs_Direct"});
  const double direct_life = results[0].lifetime_hours;
  const char* names[] = {"Direct", "SmartEye", "MRC", "BEES-EA", "BEES"};
  for (std::size_t s = 0; s < 5; ++s) {
    const auto& r = results[s];
    std::string life = util::Table::num(r.lifetime_hours, 1) + " h" +
                       (r.battery_died ? "" : " (survived the whole run)");
    summary.add_row({names[s], life, std::to_string(r.groups_uploaded),
                     s == 0 ? "-"
                            : "+" + util::Table::pct(
                                        r.lifetime_hours / direct_life - 1.0)});
  }
  summary.print(std::cout);
  std::cout << "\nPaper reference: SmartEye +18.0%, MRC +25.7%, BEES-EA "
               "+93.4%, BEES +133.1% over Direct; BEES +19.8% over BEES-EA; "
               "BEES's curve flattens at low Ebat.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
