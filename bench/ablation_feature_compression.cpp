// Ablation — lossless compression of feature payloads before upload: how
// many wire bytes does LZ77 recover from each representation?  Binary ORB
// descriptors are near-entropy already; float SIFT/PCA-SIFT payloads carry
// structure (sign/exponent patterns) that compresses.  Extends the paper's
// Table I space-overhead comparison with the achievable compressed sizes.
#include <iostream>

#include "bench/common.hpp"
#include "index/serialize.hpp"
#include "util/compress.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int groups = bench::sized(10, 40);
  util::print_banner(std::cout,
                     "Ablation: lossless compression of feature payloads");
  const wl::Imageset set = wl::make_kentucky_like(groups, 4, 256, 192, 1701);
  wl::ImageStore store;
  const feat::PcaModel pca = core::train_pca_model(store, set, 6);

  double orb_raw = 0, orb_lz = 0;
  double sift_raw = 0, sift_lz = 0;
  double pca_raw = 0, pca_lz = 0;
  for (const auto& spec : set.images) {
    const auto orb_bytes = idx::serialize_binary(store.orb(spec, 0.0));
    const auto sift_bytes = idx::serialize_float(store.sift(spec));
    const auto pca_bytes = idx::serialize_float(store.pca_sift(spec, pca));
    orb_raw += static_cast<double>(orb_bytes.size());
    sift_raw += static_cast<double>(sift_bytes.size());
    pca_raw += static_cast<double>(pca_bytes.size());
    orb_lz += static_cast<double>(util::lz_compress(orb_bytes).size());
    sift_lz += static_cast<double>(util::lz_compress(sift_bytes).size());
    pca_lz += static_cast<double>(util::lz_compress(pca_bytes).size());

    // Round-trip integrity on the first image (cheap sanity check).
    if (&spec == &set.images.front()) {
      const auto back = util::lz_decompress(util::lz_compress(orb_bytes));
      if (back != orb_bytes) {
        std::cerr << "FATAL: LZ round-trip mismatch\n";
        return 1;
      }
    }
  }

  const auto n = static_cast<double>(set.images.size());
  util::Table table({"payload", "raw_bytes/img", "lz_bytes/img", "ratio"});
  table.add_row({"ORB (256-bit binary)", util::Table::num(orb_raw / n, 0),
                 util::Table::num(orb_lz / n, 0),
                 util::Table::pct(orb_lz / orb_raw)});
  table.add_row({"SIFT (128 x f32)", util::Table::num(sift_raw / n, 0),
                 util::Table::num(sift_lz / n, 0),
                 util::Table::pct(sift_lz / sift_raw)});
  table.add_row({"PCA-SIFT (36 x f32)", util::Table::num(pca_raw / n, 0),
                 util::Table::num(pca_lz / n, 0),
                 util::Table::pct(pca_lz / pca_raw)});
  table.print(std::cout);
  std::cout << "\nExpected: binary ORB descriptors and whitened PCA floats "
               "are near-incompressible (stored mode caps them at ~100%), "
               "while raw SIFT payloads — sparse, clamped histograms — "
               "recover roughly a third of their bytes.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
