// Serving-cluster throughput: encoded CBRD queries against serve::Cluster
// at (shards, server threads) = (1,1), (2,2), (4,4), driven by concurrent
// client threads.  Reports queries/second and the speedup over the 1/1
// serial configuration.  Each shape sets batch_window = threads, so the
// scaled configurations also exercise the gate's query coalescing (the
// batched rescore plane) exactly as a production deployment would.
//
// The scaling bar (4/4 must reach >= 3x the 1/1 rate) is only *enforced*
// on machines with at least 4 hardware threads — on fewer cores the fan-out
// cannot physically scale and the number is reported as informational.
// When BEES_BENCH_JSON names a directory the measured rows are written to
// <dir>/BENCH_serving.json alongside the core count that produced them.
//
// Usage: serving_throughput [--smoke]   (--smoke cuts the request count so
// the perfsmoke ctest label can verify the bench end-to-end in ~a second)
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "net/protocol.hpp"
#include "serve/cluster.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace bees;

feat::BinaryFeatures make_binary(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

struct Config {
  int shards;
  int threads;
};

struct Row {
  Config config;
  int requests = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double speedup = 1.0;
};

Row run_config(const Config& config,
               const std::vector<feat::BinaryFeatures>& seeds,
               const std::vector<std::vector<std::uint8_t>>& requests,
               int client_threads) {
  serve::ClusterOptions options;
  options.shards = config.shards;
  options.threads = config.threads;
  options.batch_window = config.threads;
  serve::Cluster cluster(options);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    cluster.seed_binary(seeds[i],
                        {2.29 + 0.01 * static_cast<double>(i % 3), 48.85,
                         true},
                        11'000.0);
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(client_threads));
  for (int c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      // Static interleave: client c serves requests c, c+T, c+2T, ...
      for (std::size_t i = static_cast<std::size_t>(c); i < requests.size();
           i += static_cast<std::size_t>(client_threads)) {
        cluster.handle(requests[i]);
      }
    });
  }
  for (auto& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Row row;
  row.config = config;
  row.requests = static_cast<int>(requests.size());
  row.seconds = seconds;
  row.qps = seconds > 0.0 ? static_cast<double>(requests.size()) / seconds
                          : 0.0;
  return row;
}

int main_impl(bool smoke) {
  const int kSeeds = bench::sized(16, 48);
  const int kRequests = smoke ? 32 : bench::sized(256, 1024);
  const unsigned cores = std::thread::hardware_concurrency();
  util::print_banner(std::cout, "Serving throughput: sharded cluster scaling");
  std::cout << "hardware threads: " << cores << ", requests per config: "
            << kRequests << "\n\n";

  std::vector<feat::BinaryFeatures> seeds;
  for (int i = 0; i < kSeeds; ++i) {
    seeds.push_back(make_binary(4'000 + static_cast<std::uint64_t>(i)));
  }
  std::vector<std::vector<std::uint8_t>> requests;
  for (int i = 0; i < kRequests; ++i) {
    requests.push_back(net::encode_binary_query(
        seeds[static_cast<std::size_t>(i % kSeeds)], idx::kDefaultTopK,
        9'000.0));
  }

  const std::vector<Config> configs{{1, 1}, {2, 2}, {4, 4}};
  std::vector<Row> rows;
  for (const Config& config : configs) {
    // Client-side concurrency matches the server's worker count (the 1/1
    // baseline is the serial reference: one client, one worker).
    rows.push_back(run_config(config, seeds, requests,
                              std::max(1, config.threads)));
    if (!rows.empty() && rows.front().qps > 0.0) {
      rows.back().speedup = rows.back().qps / rows.front().qps;
    }
  }

  util::Table table({"shards", "threads", "requests", "seconds", "qps",
                     "speedup vs 1/1"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.config.shards),
                   std::to_string(row.config.threads),
                   std::to_string(row.requests),
                   util::Table::num(row.seconds, 3),
                   util::Table::num(row.qps, 1),
                   util::Table::num(row.speedup, 2) + "x"});
  }
  table.print(std::cout);

  const char* json_dir = std::getenv("BEES_BENCH_JSON");
  if (json_dir != nullptr && *json_dir != '\0') {
    std::ofstream out(std::string(json_dir) + "/BENCH_serving.json");
    out << "{\n  \"bench\": \"serving\",\n  \"hardware_threads\": "
        << obs::json_number(cores) << ",\n  \"rows\": {";
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const Row& row = rows[r];
      const std::string label = std::to_string(row.config.shards) + "shards/" +
                                std::to_string(row.config.threads) +
                                "threads";
      out << (r == 0 ? "\n" : ",\n") << "    " << obs::json_string(label)
          << ": {\"shards\": " << row.config.shards
          << ", \"threads\": " << row.config.threads
          << ", \"requests\": " << row.requests
          << ", \"seconds\": " << obs::json_number(row.seconds)
          << ", \"qps\": " << obs::json_number(row.qps)
          << ", \"speedup\": " << obs::json_number(row.speedup) << "}";
    }
    out << "\n  }\n}\n";
  }

  const double scaling = rows.back().speedup;
  if (cores >= 4) {
    std::cout << "\nScaling bar: 4 shards / 4 threads reached "
              << util::Table::num(scaling, 2) << "x (required >= 3x)\n";
    if (scaling < 3.0) {
      std::cerr << "FAIL: 4/4 configuration did not reach 3x the 1/1 rate\n";
      return 1;
    }
  } else {
    std::cout << "\nScaling bar: informational only on " << cores
              << " hardware thread(s) — 4/4 reached "
              << util::Table::num(scaling, 2)
              << "x (>= 3x is required on machines with 4+ cores)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return main_impl(smoke);
}
