// Ablation — global color-histogram features versus local ORB features for
// redundancy detection, mirroring the paper's related-work claim that
// feature-based schemes (CARE, BEES) detect similarity more accurately
// than metadata/color-histogram schemes (PhotoNet):
//   - detection quality (TPR at a calibrated ~5% FPR) on ground-truth pairs,
//   - extraction cost (the energy-model op counts),
//   - wire bytes per image.
#include <iostream>

#include "bench/common.hpp"
#include "bench/scheme_grid.hpp"
#include "core/photonet.hpp"
#include "features/global.hpp"
#include "features/similarity.hpp"
#include "util/stats.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int groups = bench::sized(60, 300);
  util::print_banner(std::cout,
                     "Ablation: global (PhotoNet-style) vs local (ORB) "
                     "redundancy detection");
  const wl::Imageset set = wl::make_kentucky_like(groups, 2, 320, 240, 1801);
  wl::ImageStore store;
  util::Rng rng(1802);

  struct Pair {
    std::size_t a, b;
    bool similar;
  };
  std::vector<Pair> pairs;
  for (std::size_t g = 0; g < set.groups.size(); ++g) {
    pairs.push_back({set.groups[g][0], set.groups[g][1], true});
    for (int k = 0; k < 3; ++k) {
      std::size_t other = rng.index(set.groups.size());
      while (other == g) other = rng.index(set.groups.size());
      pairs.push_back({set.groups[g][0], set.groups[other][1], false});
    }
  }

  // Precompute both representations; track extraction cost.
  std::vector<feat::ColorHistogram> histograms(set.images.size());
  std::uint64_t global_ops = 0, local_ops = 0;
  for (std::size_t i = 0; i < set.images.size(); ++i) {
    histograms[i] = feat::color_histogram(store.pixels(set.images[i]),
                                          &global_ops);
    local_ops += store.orb(set.images[i], 0.0).stats.ops;
  }

  auto evaluate = [&](auto&& score_fn) {
    std::vector<double> sim_scores, dis_scores;
    for (const Pair& p : pairs) {
      (p.similar ? sim_scores : dis_scores).push_back(score_fn(p.a, p.b));
    }
    const double threshold = util::percentile(dis_scores, 0.95);
    std::size_t tp = 0;
    for (const double s : sim_scores) tp += s > threshold ? 1 : 0;
    return static_cast<double>(tp) / static_cast<double>(sim_scores.size());
  };

  const double tpr_global = evaluate([&](std::size_t a, std::size_t b) {
    return feat::histogram_intersection(histograms[a], histograms[b]);
  });
  const double tpr_local = evaluate([&](std::size_t a, std::size_t b) {
    return feat::jaccard_similarity(store.orb(set.images[a], 0.0),
                                    store.orb(set.images[b], 0.0));
  });

  const auto n = static_cast<double>(set.images.size());
  double orb_bytes = 0;
  for (const auto& spec : set.images) {
    orb_bytes += static_cast<double>(store.orb(spec, 0.0).wire_bytes());
  }

  util::Table table({"features", "TPR@5%FPR", "extract_ops/img",
                     "wire_bytes/img"});
  table.add_row({"color histogram (global)", util::Table::pct(tpr_global),
                 util::Table::num(static_cast<double>(global_ops) / n, 0),
                 util::Table::num(feat::ColorHistogram::kBins * 4, 0)});
  table.add_row({"ORB (local)", util::Table::pct(tpr_local),
                 util::Table::num(static_cast<double>(local_ops) / n, 0),
                 util::Table::num(orb_bytes / n, 0)});
  table.print(std::cout);
  std::cout << "\nExpected: global features are orders cheaper and smaller "
               "but markedly less accurate — the paper's rationale (via "
               "CARE vs PhotoNet) for using local features in BEES.\n";

  // Scheme-level comparison: PhotoNet as an extra baseline on the Fig. 7
  // protocol (50% seeded cross-batch redundancy).
  util::print_banner(std::cout,
                     "Scheme-level: PhotoNet vs MRC vs BEES at 50% redundancy");
  bench::GridSetup setup = bench::make_grid_setup(
      bench::sized(30, 80), bench::sized(3, 8), 320, 240, 1803);
  util::Table st({"scheme", "eliminated", "uploaded", "bytes", "energy"});
  auto run_scheme = [&](core::UploadScheme& scheme) {
    cloud::Server server;
    core::seed_cross_batch_redundancy(setup.batch.images, 0.5, *setup.store,
                                      server, setup.pca.get(), 1050,
                                      setup.byte_scale);
    net::Channel ch(net::ChannelParams::fixed(256000.0));
    energy::Battery bat;
    const core::BatchReport r =
        scheme.upload_batch(setup.batch.images, server, ch, bat);
    st.add_row({scheme.name(),
                std::to_string(r.eliminated_cross_batch +
                               r.eliminated_in_batch),
                std::to_string(r.images_uploaded),
                bench::mb(r.delivered_bytes()),
                bench::kj(r.energy.active_total())});
  };
  const core::SchemeConfig cfg = bench::make_config(setup.byte_scale);
  core::PhotoNetScheme photonet(*setup.store, cfg);
  core::MrcScheme mrc(*setup.store, cfg);
  core::BeesScheme bees(*setup.store, cfg);
  run_scheme(photonet);
  run_scheme(mrc);
  run_scheme(bees);
  st.print(std::cout);
  std::cout << "\nExpected: PhotoNet eliminates less of the seeded "
               "redundancy (global features miss view changes) despite its "
               "negligible feature cost; BEES remains cheapest overall.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
