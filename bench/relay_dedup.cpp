// Relay bench: what CARE dedup saves on the backhaul, and whether a
// promoted replica is indistinguishable from the primary it replaced.
//
// Phase 1 — co-located near-duplicate backhaul.  A cell of devices
// photographs the same set of scenes: every device uploads the shared
// captures (byte-identical feature payloads, offset only by each device's
// own geo header — a near-duplicate in chunk terms) plus a few captures
// only it saw.  All uploads cross one relay's backhaul.  Without CARE the
// backhaul carries every copy; with the chunk ledger the first copy ships
// in full and every repeat costs a manifest plus the handful of chunks the
// device's header perturbed.  Bar: the relay must cut backhaul bytes by at
// least 30% versus raw ingress.
//
// Phase 2 — recovered-replica equivalence.  A durable replicated cluster
// (1 follower per shard, chunked WAL shipping through a shared segment
// store) and a plain in-memory cluster ingest the same stores; every
// primary is then killed.  Bar: each promoted follower answers every probe
// query byte-identically to the never-damaged reference, and every kill
// promoted at full apply parity (zero ship lag left behind).
//
// When BEES_BENCH_JSON names a directory the rows are written to
// <dir>/BENCH_relay.json.
//
// Usage: relay_dedup [--smoke]   (--smoke shrinks the cell and the store
// count so the perfsmoke ctest label runs the bench end-to-end; both bars
// are deterministic and enforced in both modes)
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "features/orb.hpp"
#include "imaging/synth.hpp"
#include "index/serialize.hpp"
#include "net/protocol.hpp"
#include "relay/relay.hpp"
#include "replica/replication.hpp"
#include "serve/cluster.hpp"
#include "util/rng.hpp"

namespace {

using namespace bees;

feat::BinaryFeatures scene_features(std::uint64_t seed) {
  util::Rng rng(seed);
  img::ViewPerturbation pert;
  return feat::extract_orb(
      img::render_view(img::SceneSpec{seed, 18, 4}, 200, 150, pert, rng));
}

idx::GeoTag device_geo(int device) {
  return {2.29 + 0.005 * device, 48.85 + 0.003 * device, true};
}

int main_impl(bool smoke) {
  util::print_banner(std::cout,
                     "Relay tier: CARE backhaul dedup and failover parity");

  // ---- Phase 1: co-located near-duplicate backhaul ------------------------
  const int devices = smoke ? 3 : bench::sized(6, 10);
  const int shared_scenes = smoke ? 4 : bench::sized(8, 12);
  const int unique_scenes = 2;  // per device: captures nobody else saw
  const std::uint32_t chunk_size = 512;

  // The shared captures, rendered once: co-located devices photographing
  // the same scene extract the same features, so their upload payloads
  // differ only in the per-device geo header.
  std::vector<feat::BinaryFeatures> shared;
  shared.reserve(static_cast<std::size_t>(shared_scenes));
  for (int s = 0; s < shared_scenes; ++s) {
    shared.push_back(scene_features(400 + static_cast<std::uint64_t>(s)));
  }

  relay::Relay cell(0, chunk_size);
  std::uint64_t uploads = 0;
  for (int d = 0; d < devices; ++d) {
    for (int s = 0; s < shared_scenes; ++s) {
      cell.forward(net::encode_image_upload(
          shared[static_cast<std::size_t>(s)], 700'000.0 + s, device_geo(d),
          12'000.0));
      ++uploads;
    }
    for (int u = 0; u < unique_scenes; ++u) {
      const auto features = scene_features(
          900 + static_cast<std::uint64_t>(d * unique_scenes + u));
      cell.forward(net::encode_image_upload(features, 710'000.0 + u,
                                            device_geo(d), 12'000.0));
      ++uploads;
    }
  }

  const relay::RelayStats stats = cell.stats();
  const double reduction =
      stats.ingress_bytes == 0
          ? 0.0
          : 1.0 - static_cast<double>(stats.backhaul_bytes) /
                      static_cast<double>(stats.ingress_bytes);

  std::cout << "cell: " << devices << " devices x " << shared_scenes
            << " shared + " << unique_scenes << " unique captures, chunk "
            << chunk_size << " B\n\n";
  util::Table care({"uploads", "ingress", "backhaul", "saved", "chunks hit",
                    "backhaul reduction"});
  care.add_row({std::to_string(uploads),
                bench::kb(static_cast<double>(stats.ingress_bytes)),
                bench::kb(static_cast<double>(stats.backhaul_bytes)),
                bench::kb(static_cast<double>(stats.dedup_bytes_saved)),
                std::to_string(stats.dedup_chunks_hit),
                util::Table::num(100.0 * reduction, 1) + "%"});
  care.print(std::cout);

  // ---- Phase 2: recovered-replica equivalence -----------------------------
  const int stores = smoke ? 8 : bench::sized(20, 32);
  const int probes = stores;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bees_bench_relay").string();
  std::filesystem::remove_all(dir);

  serve::ClusterOptions durable;
  durable.shards = 2;
  durable.data_dir = dir;
  durable.segment_store.dir = dir + "/segstore";
  durable.segment_store.chunk_size = 1024;
  durable.segment_store.compact_dead_ratio = 0.0;
  durable.checkpoint_every = 4;
  durable.backend_factory = replica::make_replicated_factory(1);
  serve::Cluster replicated(durable);

  serve::ClusterOptions plain;
  plain.shards = 2;
  serve::Cluster reference(plain);

  for (int i = 0; i < stores; ++i) {
    const auto features =
        scene_features(1200 + static_cast<std::uint64_t>(i));
    const cloud::StoreInfo info{700'000.0 + i, device_geo(i % 5),
                                12'000.0 + i};
    replicated.store_binary(features, info);
    reference.store_binary(features, info);
  }
  replicated.checkpoint();

  int kills = 0;
  for (int s = 0; s < durable.shards; ++s) {
    if (replicated.kill_primary(s)) ++kills;
  }

  int mismatches = 0;
  for (int i = 0; i < probes; ++i) {
    const auto request = net::encode_binary_query(
        scene_features(1200 + static_cast<std::uint64_t>(i)),
        idx::kDefaultTopK, 9'000.0);
    if (replicated.handle(request) != reference.handle(request)) {
      ++mismatches;
    }
  }
  const serve::BackendResilience res = replicated.resilience();
  std::filesystem::remove_all(dir);

  std::cout << "\nfailover: " << stores << " stores, " << kills
            << " primaries killed, " << probes << " probe queries\n\n";
  util::Table parity({"ship records", "ship bytes", "ship lag max",
                      "failovers", "probe mismatches"});
  parity.add_row({std::to_string(res.ship_records),
                  bench::kb(static_cast<double>(res.ship_bytes)),
                  std::to_string(res.ship_lag_max),
                  std::to_string(res.failovers),
                  std::to_string(mismatches)});
  parity.print(std::cout);

  // ---- JSON ---------------------------------------------------------------
  const char* json_dir = std::getenv("BEES_BENCH_JSON");
  if (json_dir != nullptr && *json_dir != '\0') {
    std::ofstream out(std::string(json_dir) + "/BENCH_relay.json");
    out << "{\n  \"bench\": \"relay\",\n  \"rows\": {\n"
        << "    \"care_dedup\": {\"devices\": " << devices
        << ", \"shared_scenes\": " << shared_scenes
        << ", \"unique_scenes\": " << unique_scenes
        << ", \"uploads\": " << uploads
        << ", \"ingress_bytes\": " << stats.ingress_bytes
        << ", \"backhaul_bytes\": " << stats.backhaul_bytes
        << ", \"dedup_bytes_saved\": " << stats.dedup_bytes_saved
        << ", \"dedup_chunks_hit\": " << stats.dedup_chunks_hit
        << ", \"backhaul_reduction\": " << obs::json_number(reduction)
        << "},\n"
        << "    \"failover_parity\": {\"stores\": " << stores
        << ", \"kills\": " << kills << ", \"probes\": " << probes
        << ", \"mismatches\": " << mismatches
        << ", \"ship_records\": " << res.ship_records
        << ", \"ship_bytes\": " << res.ship_bytes
        << ", \"ship_lag_max\": " << res.ship_lag_max
        << ", \"failovers\": " << res.failovers << "}\n  }\n}\n";
  }

  // ---- Bars ---------------------------------------------------------------
  int failures = 0;
  std::cout << "\nBackhaul bar: CARE cut "
            << util::Table::num(100.0 * reduction, 1)
            << "% of backhaul bytes (required >= 30%)\n";
  if (reduction < 0.30) {
    std::cerr << "FAIL: relay dedup saved less than 30% of backhaul bytes\n";
    ++failures;
  }
  std::cout << "Parity bar: " << mismatches << " of " << probes
            << " probes diverged after failover (required 0)\n";
  if (mismatches != 0 || kills != durable.shards) {
    std::cerr << "FAIL: promoted replica does not match the reference\n";
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  return main_impl(smoke);
}
