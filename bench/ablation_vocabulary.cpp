// Ablation — vocabulary-tree index (Nistér & Stewénius, the Kentucky-
// benchmark paper) versus the LSH index as the server's CBRD candidate
// generator: retrieval accuracy (same best match as an exact scan),
// rescoring work, and query wall-clock across index sizes.
#include <chrono>
#include <iostream>

#include "bench/common.hpp"
#include "index/vocabulary.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int groups = bench::sized(120, 400);
  util::print_banner(std::cout, "Ablation: vocabulary tree vs LSH index");
  std::cout << groups << " scenes, one view indexed, second view queried\n";

  const wl::Imageset set = wl::make_kentucky_like(groups, 2, 256, 192, 1901);
  wl::ImageStore store;

  // Train the vocabulary on the descriptors of the indexed images.
  std::vector<feat::Descriptor256> training;
  for (int g = 0; g < groups; ++g) {
    const auto& f =
        store.orb(set.images[set.groups[static_cast<std::size_t>(g)][0]], 0.0);
    training.insert(training.end(), f.descriptors.begin(),
                    f.descriptors.end());
  }
  idx::VocabularyParams vp;
  vp.branching = 8;
  vp.depth = 3;
  const idx::VocabularyTree tree = idx::VocabularyTree::train(training, vp);
  std::cout << "Vocabulary: " << tree.leaf_count() << " visual words\n";

  util::Table table({"index_images", "method", "top1_vs_exact",
                     "avg_rescore_ops", "query_us"});
  for (const int size : {groups / 4, groups / 2, groups}) {
    idx::FeatureIndex lsh;
    idx::VocabularyIndex vocab(tree);
    for (int g = 0; g < size; ++g) {
      const auto& f = store.orb(
          set.images[set.groups[static_cast<std::size_t>(g)][0]], 0.0);
      lsh.insert(f);
      vocab.insert(f);
    }
    const int queries = std::min(size, 40);
    int lsh_agree = 0, vocab_agree = 0;
    std::uint64_t lsh_ops = 0, vocab_ops = 0;
    double lsh_us = 0, vocab_us = 0;
    for (int q = 0; q < queries; ++q) {
      const auto& qf = store.orb(
          set.images[set.groups[static_cast<std::size_t>(q)][1]], 0.0);
      const idx::QueryResult exact = lsh.query_exact(qf, 1);

      auto t0 = std::chrono::steady_clock::now();
      const idx::QueryResult rl = lsh.query(qf, 1);
      auto t1 = std::chrono::steady_clock::now();
      const idx::QueryResult rv = vocab.query(qf, 1);
      auto t2 = std::chrono::steady_clock::now();

      lsh_agree += (rl.best_id == exact.best_id) ? 1 : 0;
      vocab_agree += (rv.best_id == exact.best_id) ? 1 : 0;
      lsh_ops += rl.ops;
      vocab_ops += rv.ops;
      lsh_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
      vocab_us += std::chrono::duration<double, std::micro>(t2 - t1).count();
    }
    table.add_row({std::to_string(size), "LSH",
                   util::Table::pct(static_cast<double>(lsh_agree) / queries),
                   std::to_string(lsh_ops / queries),
                   util::Table::num(lsh_us / queries, 0)});
    table.add_row({std::to_string(size), "vocabulary",
                   util::Table::pct(static_cast<double>(vocab_agree) / queries),
                   std::to_string(vocab_ops / queries),
                   util::Table::num(vocab_us / queries, 0)});
  }
  table.print(std::cout);
  std::cout << "\nExpected: both candidate generators track the exact scan "
               "closely with bounded rescoring; the vocabulary's inverted "
               "file scales with matching postings rather than with table "
               "probes.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
