// Shared plumbing for the figure/table benches: workload scale selection,
// byte-scale calibration onto the paper's ~700 KB average image size, and
// uniform scheme construction.
//
// Every bench runs at a laptop-friendly reduced scale by default; set
// BEES_BENCH_SCALE=paper to run with workload sizes closer to the paper's
// (several-fold slower).
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/baselines.hpp"
#include "core/bees.hpp"
#include "core/simulation.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"

namespace bees::bench {

/// True when BEES_BENCH_SCALE=paper is set in the environment.
inline bool paper_scale() {
  const char* v = std::getenv("BEES_BENCH_SCALE");
  return v != nullptr && std::string(v) == "paper";
}

/// Picks a workload size: the reduced default or the near-paper value.
inline int sized(int small, int paper) { return paper_scale() ? paper : small; }

/// The paper's average image size: "all used images are resized to about
/// 700 KB" (§IV-A).
inline constexpr double kPaperImageBytes = 700.0 * 1024;

/// Byte-scale multiplier so the mean original (as-shot) payload of the
/// sampled images lands at ~700 KB, putting airtime/energy in the paper's
/// absolute regime while preserving every ratio.
inline double calibrate_byte_scale(wl::ImageStore& store,
                                   const wl::Imageset& set,
                                   std::size_t sample = 12) {
  double total = 0.0;
  const std::size_t n = std::min(sample, set.images.size());
  if (n == 0) return 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<double>(store.original(set.images[i]).bytes);
  }
  return kPaperImageBytes / (total / static_cast<double>(n));
}

inline core::SchemeConfig make_config(double byte_scale) {
  core::SchemeConfig cfg;
  cfg.image_byte_scale = byte_scale;
  return cfg;
}

/// Optional machine-readable bench output.  When the BEES_BENCH_JSON
/// environment variable names a directory, a BenchJson collects every
/// BatchReport row added to it and writes them as
/// `<dir>/BENCH_<name>.json` on destruction — one object per row keyed by
/// the cell label, with the report's stable named_values() as fields.
/// Without the variable it is inert and the bench's stdout stays
/// byte-identical.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    const char* dir = std::getenv("BEES_BENCH_JSON");
    if (dir != nullptr && *dir != '\0') dir_ = dir;
  }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() {
    if (active()) write();
  }

  bool active() const { return !dir_.empty(); }

  /// Records one cell's full report under the label `row`.
  void add(const std::string& row, const core::BatchReport& report) {
    if (!active()) return;
    rows_.emplace_back(row, report.named_values());
  }

  /// Writes the collected rows now (also done by the destructor).
  void write() const {
    if (!active()) return;
    std::ofstream out(dir_ + "/BENCH_" + name_ + ".json");
    out << "{\n  \"bench\": " << obs::json_string(name_)
        << ",\n  \"rows\": {";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << (r == 0 ? "\n" : ",\n")
          << "    " << obs::json_string(rows_[r].first) << ": {";
      const std::vector<core::NamedValue>& values = rows_[r].second;
      for (std::size_t i = 0; i < values.size(); ++i) {
        out << (i == 0 ? "" : ", ") << obs::json_string(values[i].name)
            << ": " << obs::json_number(values[i].value);
      }
      out << "}";
    }
    out << "\n  }\n}\n";
  }

 private:
  std::string name_;
  std::string dir_;
  std::vector<std::pair<std::string, std::vector<core::NamedValue>>> rows_;
};

/// Kilobyte / megabyte / kilojoule formatting helpers.
inline std::string kb(double bytes) {
  return util::Table::num(bytes / 1024.0, 1) + " KB";
}
inline std::string mb(double bytes) {
  return util::Table::num(bytes / (1024.0 * 1024.0), 2) + " MB";
}
inline std::string kj(double joules) {
  return util::Table::num(joules / 1000.0, 3) + " kJ";
}

}  // namespace bees::bench
