// Shared plumbing for the figure/table benches: workload scale selection,
// byte-scale calibration onto the paper's ~700 KB average image size, and
// uniform scheme construction.
//
// Every bench runs at a laptop-friendly reduced scale by default; set
// BEES_BENCH_SCALE=paper to run with workload sizes closer to the paper's
// (several-fold slower).
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/baselines.hpp"
#include "core/bees.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

namespace bees::bench {

/// True when BEES_BENCH_SCALE=paper is set in the environment.
inline bool paper_scale() {
  const char* v = std::getenv("BEES_BENCH_SCALE");
  return v != nullptr && std::string(v) == "paper";
}

/// Picks a workload size: the reduced default or the near-paper value.
inline int sized(int small, int paper) { return paper_scale() ? paper : small; }

/// The paper's average image size: "all used images are resized to about
/// 700 KB" (§IV-A).
inline constexpr double kPaperImageBytes = 700.0 * 1024;

/// Byte-scale multiplier so the mean original (as-shot) payload of the
/// sampled images lands at ~700 KB, putting airtime/energy in the paper's
/// absolute regime while preserving every ratio.
inline double calibrate_byte_scale(wl::ImageStore& store,
                                   const wl::Imageset& set,
                                   std::size_t sample = 12) {
  double total = 0.0;
  const std::size_t n = std::min(sample, set.images.size());
  if (n == 0) return 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<double>(store.original(set.images[i]).bytes);
  }
  return kPaperImageBytes / (total / static_cast<double>(n));
}

inline core::SchemeConfig make_config(double byte_scale) {
  core::SchemeConfig cfg;
  cfg.image_byte_scale = byte_scale;
  return cfg;
}

/// Kilobyte / megabyte / kilojoule formatting helpers.
inline std::string kb(double bytes) {
  return util::Table::num(bytes / 1024.0, 1) + " KB";
}
inline std::string mb(double bytes) {
  return util::Table::num(bytes / (1024.0 * 1024.0), 2) + " MB";
}
inline std::string kj(double joules) {
  return util::Table::num(joules / 1000.0, 3) + " kJ";
}

}  // namespace bees::bench
