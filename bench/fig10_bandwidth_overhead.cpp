// Figure 10 — Network bandwidth overhead of the four schemes at
// cross-batch redundancy ratios 0% / 25% / 50% / 75%.
//
// Protocol (paper §IV-B4): the Fig. 7 runs, reporting total wire bytes
// (features + images + feedback).  Paper claims to check: bandwidth falls
// with redundancy for the feature schemes; MRC slightly exceeds SmartEye
// (thumbnail feedback); BEES cuts 77.4-79.2% vs SmartEye.
#include <iostream>

#include "bench/scheme_grid.hpp"

namespace {

using namespace bees;

int main_impl() {
  const int batch = bench::sized(40, 100);
  const int similars = batch / 10;
  util::print_banner(std::cout,
                     "Figure 10: bandwidth overhead vs redundancy ratio");
  std::cout << "Batch: " << batch << " images (" << similars
            << " in-batch similar), payloads scaled to ~700 KB\n";

  bench::GridSetup setup = bench::make_grid_setup(batch, similars, 320, 240, 1001);
  bench::BenchJson json("fig10");

  util::Table table({"redundancy", "Direct", "SmartEye", "MRC", "BEES",
                     "BEES_vs_SmartEye"});
  for (const double ratio : {0.0, 0.25, 0.5, 0.75}) {
    double b[4];
    int i = 0;
    for (const std::string name : {"Direct", "SmartEye", "MRC", "BEES"}) {
      const core::BatchReport r = bench::run_cell(setup, name, ratio, 256000.0);
      json.add("r" + util::Table::num(ratio, 2) + "/" + name, r);
      b[i++] = r.delivered_bytes();
    }
    table.add_row({util::Table::pct(ratio, 0), bench::mb(b[0]),
                   bench::mb(b[1]), bench::mb(b[2]), bench::mb(b[3]),
                   "-" + util::Table::pct(1.0 - b[3] / b[1])});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: BEES -77.4%..-79.2% vs SmartEye; MRC "
               "slightly above SmartEye due to thumbnail feedback.\n";
  return 0;
}

}  // namespace

int main() { return main_impl(); }
