// Energy-aware adaptation in action: one phone uploads album after album
// while its battery drains.  Watch the three EAAS knobs move along the
// paper's laws (EAC: C = 0.4 - 0.4*Ebat, EDR: T = 0.013 + 0.006*Ebat,
// EAU: Cr = 0.8 - 0.8*Ebat) and the per-album cost fall with them — then
// compare against BEES-EA, which ignores the battery and pays full price
// to the end.
//
// Build & run:  ./build/examples/adaptive_battery
#include <iostream>

#include "core/bees.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

using namespace bees;

namespace {

int albums_survived(core::BeesScheme& scheme, const wl::Imageset& photos,
                    bool print_knobs) {
  cloud::Server server;
  net::Channel channel(net::ChannelParams::fixed(256'000.0));
  energy::Battery battery(1200.0);  // a phone at ~28% charge
  const auto albums = core::slice_groups(photos, 10);

  util::Table table({"album", "Ebat", "C(bitmap)", "T(redund)", "Cr(resol)",
                     "uploaded", "energy_J"});
  int survived = 0;
  for (std::size_t a = 0; a < albums.size(); ++a) {
    if (battery.depleted()) break;
    const double ebat = battery.fraction();
    const core::BatchReport r =
        scheme.upload_batch(albums[a], server, channel, battery);
    battery.drain(scheme.config().cost.idle_energy(600.0));  // 10 min idle
    if (r.aborted) break;
    ++survived;
    const auto& k = scheme.last_trace().knobs;
    table.add_row({std::to_string(a + 1), util::Table::pct(ebat, 0),
                   util::Table::num(k.bitmap_compression, 2),
                   util::Table::num(k.redundancy_threshold, 4),
                   util::Table::num(k.resolution_compression, 2),
                   std::to_string(r.images_uploaded),
                   util::Table::num(r.energy.active_total(), 1)});
  }
  if (print_knobs) table.print(std::cout);
  return survived;
}

}  // namespace

int main() {
  // 160 fresh photos: every album has new content, so the phone keeps
  // spending on uploads until it dies.
  const wl::Imageset photos = wl::make_disaster_like(160, 16, 320, 240, 77);
  wl::ImageStore store;
  core::SchemeConfig config;
  config.image_byte_scale = 20.0;
  config.cost.idle_power_w = 0.1;  // dimmed screen between albums

  std::cout << "BEES (energy-aware adaptation ON):\n";
  core::BeesScheme bees(store, config, /*adaptive=*/true);
  const int with_adaptation = albums_survived(bees, photos, true);

  core::BeesScheme bees_ea(store, config, /*adaptive=*/false);
  const int without_adaptation = albums_survived(bees_ea, photos, false);

  std::cout << "\nAlbums uploaded before the battery died:  BEES "
            << with_adaptation << "  vs  BEES-EA (no adaptation) "
            << without_adaptation << "\n"
            << "The knobs trade image fidelity for lifetime exactly when "
               "fidelity is the cheaper thing to give up.\n";
  return 0;
}
