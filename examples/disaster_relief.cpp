// Disaster-relief scenario: a fleet of phones crowdsources geotagged photos
// of an affected area to one relief server over damaged (0-512 Kbps,
// fluctuating) links, until their batteries die.  The situation-awareness
// value of the collected imagery is its location coverage (paper Fig. 12's
// metric) — BEES's dedup + compression buys the relief team a much larger
// covered area per joule.
//
// Build & run:  ./build/examples/disaster_relief
#include <iostream>

#include "core/baselines.hpp"
#include "core/bees.hpp"
#include "core/simulation.hpp"
#include "util/table.hpp"

using namespace bees;

namespace {

core::CoverageResult simulate(core::UploadScheme& scheme,
                              const wl::Imageset& area, int phones) {
  cloud::Server relief_server;
  std::vector<core::CoveragePhone> fleet;
  const std::size_t per_phone = area.images.size() / static_cast<std::size_t>(phones);
  for (int p = 0; p < phones; ++p) {
    core::CoveragePhone phone;
    phone.scheme = &scheme;
    net::ChannelParams link;  // fluctuating 0..512 Kbps
    link.seed = 7000 + static_cast<std::uint64_t>(p);
    phone.channel = net::Channel(link);
    phone.battery = energy::Battery(3000.0);  // partially charged phones
    wl::Imageset mine;
    mine.images.assign(
        area.images.begin() + static_cast<std::ptrdiff_t>(p * per_phone),
        area.images.begin() + static_cast<std::ptrdiff_t>((p + 1) * per_phone));
    phone.groups = core::slice_groups(mine, 8);  // an album every 20 min
    fleet.push_back(std::move(phone));
  }
  return core::run_coverage(fleet, 1200.0, relief_server);
}

}  // namespace

int main() {
  constexpr int kPhones = 4;
  std::cout << "Affected area: 800 geotagged photos over 300 sites, "
            << kPhones << " volunteer phones, 20-minute upload cadence\n\n";
  const wl::Imageset area =
      wl::make_paris_like(800, 300, wl::GeoBox{}, 240, 180, 7001);

  wl::ImageStore store;
  core::SchemeConfig config;
  config.image_byte_scale = 20.0;
  config.cost.idle_power_w = 0.1;  // screens dimmed to save power

  core::DirectUploadScheme direct(store, config);
  core::BeesScheme bees(store, config);

  util::Table table({"scheme", "photos_received", "sites_covered",
                     "hours_until_fleet_dead"});
  for (core::UploadScheme* scheme :
       {static_cast<core::UploadScheme*>(&direct),
        static_cast<core::UploadScheme*>(&bees)}) {
    const core::CoverageResult r = simulate(*scheme, area, kPhones);
    table.add_row({scheme->name(), std::to_string(r.images_received),
                   std::to_string(r.unique_locations),
                   util::Table::num(r.hours_elapsed, 1)});
  }
  table.print(std::cout);
  std::cout << "\nEvery duplicate photo Direct Upload ships is a site BEES "
               "could have covered instead.\n";
  return 0;
}
