// Quickstart: the whole BEES pipeline in ~40 lines of user code.
//
//   1. Make a batch of "smartphone photos" (synthetic disaster scenes,
//      including a few near-duplicate shots).
//   2. Stand up a cloud server, a bandwidth-limited channel, and a phone
//      battery.
//   3. Upload the batch with BEES and print what it cost — versus naively
//      uploading everything.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/baselines.hpp"
#include "core/bees.hpp"

using namespace bees;

namespace {

void print_report(const std::string& name, const core::BatchReport& r) {
  std::cout << name << ":\n"
            << "  uploaded " << r.images_uploaded << " of "
            << r.images_offered << " images ("
            << r.eliminated_cross_batch << " cross-batch redundant, "
            << r.eliminated_in_batch << " in-batch redundant)\n"
            << "  bytes on air: " << (r.image_bytes + r.feature_bytes) / 1024
            << " KB   energy: " << r.energy.active_total()
            << " J   busy: " << r.busy_seconds() << " s\n";
}

}  // namespace

int main() {
  // A batch of 20 photos, 5 of which are extra shots of the same subjects.
  const wl::Imageset batch = wl::make_disaster_like(20, 5, 320, 240, 42);
  wl::ImageStore store;  // renders, features, encodings — computed lazily

  core::SchemeConfig config;       // cost model + thresholds (paper defaults)
  config.image_byte_scale = 10.0;  // scale payloads toward phone-photo sizes

  // BEES versus Direct Upload, each against its own fresh server.
  core::BeesScheme bees(store, config);
  core::DirectUploadScheme direct(store, config);
  for (core::UploadScheme* scheme :
       {static_cast<core::UploadScheme*>(&bees),
        static_cast<core::UploadScheme*>(&direct)}) {
    cloud::Server server;
    net::Channel channel(net::ChannelParams::fixed(256'000.0));  // 256 Kbps
    energy::Battery battery;  // the paper's 3150 mAh @ 3.8 V phone
    const core::BatchReport report =
        scheme->upload_batch(batch.images, server, channel, battery);
    print_report(scheme->name(), report);
  }

  // The energy-aware knobs BEES would use at 10% battery:
  const auto knobs = energy::adapt::Knobs::from_battery(0.10);
  std::cout << "\nAt 10% battery BEES would compress bitmaps by "
            << knobs.bitmap_compression << ", use redundancy threshold "
            << knobs.redundancy_threshold << ", and shrink uploads by "
            << knobs.resolution_compression << " (paper EAC/EDR/EAU laws).\n";
  return 0;
}
