// Substrate tour: the imaging and vision layers under BEES, end to end,
// with viewable artifacts.  Renders a synthetic scene and a second "shot"
// of it, extracts ORB features from both, reports their Eq. 2 similarity,
// then runs the JPEG-style codec across qualities and writes everything as
// PPM files into ./pipeline_out/.
//
// Build & run:  ./build/examples/image_pipeline_demo
#include <filesystem>
#include <iostream>

#include "features/orb.hpp"
#include "features/similarity.hpp"
#include "imaging/codec.hpp"
#include "imaging/ppm_io.hpp"
#include "imaging/quality.hpp"
#include "imaging/synth.hpp"
#include "imaging/transform.hpp"
#include "util/table.hpp"

using namespace bees;

namespace {

/// Draws small crosses at keypoint locations so the artifact shows what
/// the detector keyed on.
img::Image annotate(const img::Image& image,
                    const std::vector<feat::Keypoint>& keypoints) {
  img::Image out = image;
  for (const auto& kp : keypoints) {
    const int x = static_cast<int>(kp.x);
    const int y = static_cast<int>(kp.y);
    for (int d = -3; d <= 3; ++d) {
      if (x + d >= 0 && x + d < out.width()) {
        out.set(x + d, y, 255, 0);
        out.set(x + d, y, 0, 1);
        out.set(x + d, y, 0, 2);
      }
      if (y + d >= 0 && y + d < out.height()) {
        out.set(x, y + d, 255, 0);
        out.set(x, y + d, 0, 1);
        out.set(x, y + d, 0, 2);
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  const std::filesystem::path out_dir = "pipeline_out";
  std::filesystem::create_directories(out_dir);

  // 1. A scene and a second shot of it (slightly different view + noise).
  img::SceneSpec scene{2024, 18, 4};
  const img::Image shot1 = img::render_scene(scene, 480, 360);
  util::Rng rng(7);
  const img::Image shot2 =
      img::render_view(scene, 480, 360, img::ViewPerturbation{}, rng);
  img::write_pnm(shot1, (out_dir / "shot1.ppm").string());
  img::write_pnm(shot2, (out_dir / "shot2.ppm").string());

  // 2. ORB features + Eq. 2 similarity.
  const feat::BinaryFeatures f1 = feat::extract_orb(shot1);
  const feat::BinaryFeatures f2 = feat::extract_orb(shot2);
  img::write_pnm(annotate(shot1, f1.keypoints),
                 (out_dir / "shot1_keypoints.ppm").string());
  std::cout << "ORB keypoints: " << f1.size() << " / " << f2.size()
            << "; Jaccard similarity of the two shots: "
            << feat::jaccard_similarity(f1, f2) << "\n";
  const img::Image other = img::render_scene(img::SceneSpec{2025, 18, 4},
                                             480, 360);
  std::cout << "Similarity against an unrelated scene:  "
            << feat::jaccard_similarity(f1, feat::extract_orb(other))
            << "  (the gap is what redundancy detection thresholds on)\n\n";

  // 3. Codec sweep: size and SSIM at several qualities.
  util::Table table({"quality", "bytes", "ratio", "SSIM", "PSNR_dB"});
  const double raw = static_cast<double>(shot1.byte_size());
  for (const int q : {95, 75, 50, 15, 5}) {
    const auto bytes = img::encode_jpeg_like(shot1, q);
    const img::Image decoded = img::decode_jpeg_like(bytes);
    img::write_pnm(decoded,
                   (out_dir / ("decoded_q" + std::to_string(q) + ".ppm"))
                       .string());
    table.add_row({std::to_string(q), std::to_string(bytes.size()),
                   util::Table::pct(static_cast<double>(bytes.size()) / raw),
                   util::Table::num(img::ssim(shot1, decoded), 3),
                   util::Table::num(img::psnr(shot1, decoded), 1)});
  }
  table.print(std::cout);
  std::cout << "\nArtifacts written to " << out_dir
            << "/ (PPM files; q15 is the paper's 0.85 quality proportion)\n";
  return 0;
}
