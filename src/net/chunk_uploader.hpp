// The one resumable-upload engine every scheme shares.  An image upload
// becomes: offer the payload's chunk manifest, receive the server's
// missing-chunk list, send only those chunks, then commit — the commit
// carries the legacy upload envelope and yields exactly the reply a
// whole-image upload would, so schemes are agnostic to the transfer plane.
//
// Why this beats whole-image resends: the transport's per-message loss is
// the same either way, but (a) an upload aborted mid-image (retry budget
// exhausted, channel outage) keeps its delivered chunks server-side, so the
// resumed attempt asks first and resends only what is missing, and (b)
// byte-identical chunks — the same image re-offered, duplicate content
// across devices — never ride the wire twice (the manifest ack marks them
// present).  net.upload.chunks_{sent,deduped,resent} count the wins.
//
// Fallback contract: a server without a chunk store answers every chunk
// -plane message with kChunkStoreDisabledMessage; the uploader remembers
// and reverts to whole-image commits (byte-identical to the pre-chunking
// protocol).  With chunking disabled the uploader *is* the legacy path:
// one exchange of the commit envelope, nothing added.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "net/protocol.hpp"
#include "store/chunk.hpp"

namespace bees::net {

struct ChunkingPolicy {
  bool enabled = false;
  /// Raw-byte chunking interval for uplink payloads.  Smaller chunks give
  /// finer resume granularity at more per-message overhead; 8 KiB of raw
  /// encoded image maps to ~the paper's modelled 100 KB steps.
  std::uint32_t chunk_size = 8 * 1024;
};

/// Per-upload outcome counters, accumulated by the caller into BatchReport.
struct ChunkUploadStats {
  std::uint64_t chunks_sent = 0;     ///< kChunkData messages delivered.
  std::uint64_t chunks_deduped = 0;  ///< Chunks the server already held.
  std::uint64_t chunks_resent = 0;   ///< Delivered again after an earlier
                                     ///< delivery (server lost them).
};

class ChunkUploader {
 public:
  /// One transport round-trip: request bytes, the modelled wire size to
  /// charge (negative = encoded size), and whether the bytes are image
  /// payload (TxKind::kImage accounting) or control/feature traffic.
  /// Returns the decoded reply envelope, or nullopt when the transport
  /// gave up (the caller aborts the batch and resumes later).
  using Exchange = std::function<std::optional<Envelope>(
      const std::vector<std::uint8_t>& request, double wire_bytes,
      bool image_payload)>;

  explicit ChunkUploader(const ChunkingPolicy& policy) : policy_(policy) {}

  const ChunkingPolicy& policy() const noexcept { return policy_; }

  /// Uploads one payload.  `payload` holds the real encoded bytes
  /// (empty + chunking disabled => pure legacy path), `modeled_bytes` their
  /// modelled wire size, `commit_request` the legacy upload envelope that
  /// finalizes the upload server-side.  Returns the commit reply, or
  /// nullopt when any leg of the transfer gave up; already-delivered
  /// chunks survive server-side, so the next attempt resends less.
  std::optional<Envelope> upload(std::span<const std::uint8_t> payload,
                                 double modeled_bytes,
                                 const std::vector<std::uint8_t>& commit_request,
                                 const Exchange& exchange,
                                 ChunkUploadStats* stats = nullptr);

 private:
  ChunkingPolicy policy_;
  /// Keys this uploader has delivered at least once; a later delivery of
  /// the same key is a resend.
  std::unordered_set<store::ChunkKey, store::ChunkKeyHasher> delivered_;
  /// Latched false after a kChunkStoreDisabledMessage reply.
  bool server_supports_chunks_ = true;
};

}  // namespace bees::net
