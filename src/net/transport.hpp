// Reliable request/reply framing over a lossy Channel: per-attempt timeout,
// bounded exponential backoff with jitter, and a retry budget.  The server
// side is an abstract handler turning request bytes into reply bytes (the
// core layer binds cloud::dispatch; net stays below cloud in the layering),
// so every client<->server exchange of the simulation rides the encoded
// wire format and survives message loss the way a real uploader would.
//
// Model notes:
//   - Loss applies to the uplink message before the handler runs, so a lost
//     upload is never stored server-side and a retry cannot duplicate state.
//   - Replies are modelled as reliably delivered (piggybacked-ACK
//     semantics); the caller charges any reply payload it models (e.g. MRC
//     thumbnails) as explicit downlink bytes.
//   - Failed attempts leave their airtime on the channel clock and are
//     reported as wasted seconds / retransmitted bytes so the energy and
//     bandwidth accounting can charge them.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/channel.hpp"

namespace bees::net {

/// Retry/backoff policy for reliable exchanges.
struct RetryPolicy {
  /// Total send attempts per message (first try + retries).
  int max_attempts = 8;
  /// Per-attempt airtime deadline; kNoTimeout waits out any stall (the
  /// default keeps loss-free runs identical to the unframed transfers).
  double timeout_s = Channel::kNoTimeout;
  /// Backoff before retry k is min(base * 2^(k-1), max), jittered.
  double backoff_base_s = 0.5;
  double backoff_max_s = 8.0;
  /// Uniform +/- fraction applied to each backoff wait.
  double jitter = 0.25;
  /// Seed of the jitter stream (independent of the channel's RNG).
  std::uint64_t seed = 0xb0ff5eedULL;

  /// The wait before retrying after failed attempt number `attempt`
  /// (1-based): min(base * 2^(attempt-1), max), jittered by +/- `jitter`
  /// drawn from `rng`.  The rng is consumed only when a positive jittered
  /// wait is possible, exactly matching Transport::exchange's draws — so
  /// external retry loops (fleet devices, shed-aware clients) that share a
  /// policy reproduce the transport's backoff schedule bit-for-bit.
  double backoff_before(int attempt, util::Rng& rng) const noexcept;
};

/// What one reliable exchange cost.
struct ExchangeResult {
  std::vector<std::uint8_t> reply;  ///< Raw reply bytes (empty on give-up).
  bool ok = false;                  ///< Delivered within the retry budget.
  int attempts = 0;                 ///< Sends performed.
  int retries = 0;                  ///< attempts - 1.
  double tx_seconds = 0.0;          ///< Airtime of the delivering attempt.
  double wasted_seconds = 0.0;      ///< Airtime of failed attempts.
  double backoff_seconds = 0.0;     ///< Idle waits between attempts.
  double retransmitted_bytes = 0.0; ///< Bytes radiated on failed attempts.
};

class Transport {
 public:
  using Handler =
      std::function<std::vector<std::uint8_t>(const std::vector<std::uint8_t>&)>;

  Transport(Handler handler, Channel& channel, RetryPolicy policy = {});

  /// One reliable exchange.  `wire_bytes` overrides the payload size
  /// charged to the channel (simulated payloads differ from the encoded
  /// envelope — image pixels are modelled, not carried); a negative value
  /// charges request.size().
  ExchangeResult exchange(const std::vector<std::uint8_t>& request,
                          double wire_bytes = -1.0);

  const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  Handler handler_;
  Channel* channel_;
  RetryPolicy policy_;
  util::Rng jitter_rng_;
};

}  // namespace bees::net
