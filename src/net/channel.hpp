// Simulated low-bandwidth wireless channel.  The paper's testbed throttles
// each phone's WiFi so the bitrate "fluctuates from 0 Kbps to 512 Kbps";
// we model that as a bounded random walk resampled once per second, and
// integrate transfer time across the fluctuation.  A fixed-rate mode
// reproduces the Fig. 11 delay sweep at 128 / 256 / 512 Kbps medians.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace bees::net {

struct ChannelParams {
  double min_bps = 0.0;
  double max_bps = 512.0 * 1000.0;
  /// Starting (and long-run median) bitrate; defaults to the band midpoint.
  double initial_bps = 256.0 * 1000.0;
  /// Random-walk step stddev per update (bps); 0 makes the rate constant.
  double step_bps = 48.0 * 1000.0;
  /// How often the bitrate is resampled (seconds).
  double update_interval_s = 1.0;
  std::uint64_t seed = 0xcafef00dULL;

  /// Convenience: a constant-rate channel.
  static ChannelParams fixed(double bps) {
    ChannelParams p;
    p.min_bps = p.max_bps = p.initial_bps = bps;
    p.step_bps = 0.0;
    return p;
  }
};

/// A channel with its own clock.  All transfers advance the clock by the
/// airtime they consume; idle time can be advanced explicitly by the
/// simulation driver.
class Channel {
 public:
  explicit Channel(const ChannelParams& params = {});

  /// Transfers `bytes` and returns the airtime consumed (seconds).  The
  /// random walk resamples the instantaneous bitrate every
  /// update_interval_s; intervals at 0 bps simply stall.
  double transfer(double bytes);

  /// Advances the clock without transferring (phone idle / computing).
  void advance(double seconds);

  double now() const noexcept { return now_s_; }
  double current_bps() const noexcept { return bps_; }

 private:
  void resample() noexcept;

  ChannelParams params_;
  util::Rng rng_;
  double bps_;
  double now_s_ = 0.0;
  double next_update_s_ = 0.0;
};

}  // namespace bees::net
