// Simulated low-bandwidth wireless channel.  The paper's testbed throttles
// each phone's WiFi so the bitrate "fluctuates from 0 Kbps to 512 Kbps";
// we model that as a bounded random walk resampled once per second, and
// integrate transfer time across the fluctuation.  A fixed-rate mode
// reproduces the Fig. 11 delay sweep at 128 / 256 / 512 Kbps medians.
//
// On top of the rate process the channel models damage: a per-message loss
// probability (the message burns its airtime but is never delivered) and
// seeded outage windows during which the effective rate is pinned to 0.
// Both processes draw from RNG streams independent of the rate walk, so a
// run with loss and outages disabled is bit-identical to a run of the plain
// fluctuating channel under the same seed.
#pragma once

#include <cstdint>
#include <limits>

#include "util/rng.hpp"

namespace bees::net {

struct ChannelParams {
  double min_bps = 0.0;
  double max_bps = 512.0 * 1000.0;
  /// Starting (and long-run median) bitrate; defaults to the band midpoint.
  double initial_bps = 256.0 * 1000.0;
  /// Random-walk step stddev per update (bps); 0 makes the rate constant.
  double step_bps = 48.0 * 1000.0;
  /// How often the bitrate is resampled (seconds).
  double update_interval_s = 1.0;
  std::uint64_t seed = 0xcafef00dULL;

  /// Probability that a framed message (Channel::send) is lost in flight:
  /// the sender spends the full airtime, the receiver sees nothing.
  double loss_probability = 0.0;
  /// Probability, checked at each resample boundary, that the link drops
  /// into a full outage (0 bps) lasting outage_duration_s.
  double outage_probability = 0.0;
  double outage_duration_s = 4.0;

  /// Convenience: a constant-rate channel.
  static ChannelParams fixed(double bps) {
    ChannelParams p;
    p.min_bps = p.max_bps = p.initial_bps = bps;
    p.step_bps = 0.0;
    return p;
  }
};

/// Outcome of one framed message send.
struct SendOutcome {
  double seconds = 0.0;     ///< Airtime consumed by this attempt.
  double sent_bytes = 0.0;  ///< Bytes that made it onto the air.
  bool delivered = false;   ///< Fully sent and survived the loss draw.
  bool timed_out = false;   ///< Deadline expired before all bytes were sent.
};

/// A channel with its own clock.  All transfers advance the clock by the
/// airtime they consume; idle time can be advanced explicitly by the
/// simulation driver.
class Channel {
 public:
  /// Sentinel deadline for send(): wait as long as the transfer takes.
  static constexpr double kNoTimeout =
      std::numeric_limits<double>::infinity();

  explicit Channel(const ChannelParams& params = {});

  /// Transfers `bytes` and returns the airtime consumed (seconds).  The
  /// random walk resamples the instantaneous bitrate every
  /// update_interval_s; intervals at 0 bps wait for the next resample.
  double transfer(double bytes);

  /// Sends one framed message of `bytes`, giving up after `timeout_s` of
  /// airtime.  A completed message is then subjected to the loss draw.
  /// Loss and timeout both leave the consumed airtime on the clock — the
  /// radio burned the energy either way.
  SendOutcome send(double bytes, double timeout_s = kNoTimeout);

  /// Advances the clock without transferring (phone idle / computing).
  void advance(double seconds);

  double now() const noexcept { return now_s_; }
  double current_bps() const noexcept { return bps_; }
  /// True while an outage window is pinning the effective rate to 0.
  bool in_outage() const noexcept { return now_s_ < outage_until_s_; }

 private:
  void resample() noexcept;
  /// Crosses the resample boundary at `boundary_s`: schedules the next one,
  /// draws the outage process, and resamples the rate walk.
  void on_boundary(double boundary_s) noexcept;
  /// Integrates `bytes` over the rate process until done or `deadline_s`.
  SendOutcome transmit(double bytes, double deadline_s);

  ChannelParams params_;
  util::Rng rng_;
  util::Rng loss_rng_;
  util::Rng outage_rng_;
  double bps_;
  double now_s_ = 0.0;
  double next_update_s_ = 0.0;
  double outage_until_s_ = 0.0;
};

}  // namespace bees::net
