#include "net/transport.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bees::net {

double RetryPolicy::backoff_before(int attempt, util::Rng& rng) const noexcept {
  double wait = std::min(backoff_base_s * std::ldexp(1.0, attempt - 1),
                         backoff_max_s);
  if (jitter > 0.0 && wait > 0.0) {
    wait *= 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
  }
  return wait;
}

Transport::Transport(Handler handler, Channel& channel, RetryPolicy policy)
    : handler_(std::move(handler)),
      channel_(&channel),
      policy_(policy),
      jitter_rng_(policy.seed) {
  if (!handler_) {
    throw std::invalid_argument("Transport: null handler");
  }
  if (policy_.max_attempts < 1) {
    throw std::invalid_argument("Transport: retry budget must be >= 1");
  }
  if (policy_.timeout_s <= 0.0) {
    throw std::invalid_argument("Transport: bad timeout");
  }
  if (policy_.backoff_base_s < 0.0 || policy_.backoff_max_s < 0.0 ||
      policy_.jitter < 0.0 || policy_.jitter > 1.0) {
    throw std::invalid_argument("Transport: bad backoff parameters");
  }
}

ExchangeResult Transport::exchange(const std::vector<std::uint8_t>& request,
                                   double wire_bytes) {
  ExchangeResult result;
  const double bytes =
      wire_bytes >= 0.0 ? wire_bytes : static_cast<double>(request.size());
  obs::count("net.transport.exchanges");
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    const double attempt_start_s = obs::enabled() ? channel_->now() : 0.0;
    const SendOutcome outcome = channel_->send(bytes, policy_.timeout_s);
    result.attempts = attempt;
    obs::count("net.transport.attempts");
    obs::observe("net.transport.attempt.seconds", outcome.seconds);
    obs::span_event(outcome.delivered ? "rpc" : "rpc.drop", "net",
                    attempt_start_s, outcome.seconds, obs::kLaneTransport);
    if (outcome.delivered) {
      result.tx_seconds += outcome.seconds;
      result.reply = handler_(request);
      result.ok = true;
      break;
    }
    obs::count(outcome.timed_out ? "net.transport.timeouts"
                                 : "net.transport.losses");
    obs::count("net.transport.retransmitted_bytes", outcome.sent_bytes);
    result.wasted_seconds += outcome.seconds;
    result.retransmitted_bytes += outcome.sent_bytes;
    if (attempt < policy_.max_attempts) {
      const double wait = policy_.backoff_before(attempt, jitter_rng_);
      if (wait > 0.0) {
        channel_->advance(wait);
        result.backoff_seconds += wait;
        obs::count("net.transport.backoff_seconds", wait);
      }
    }
  }
  result.retries = result.attempts - 1;
  if (result.retries > 0) obs::count("net.transport.retries", result.retries);
  if (!result.ok) obs::count("net.transport.gave_up");
  return result;
}

}  // namespace bees::net
