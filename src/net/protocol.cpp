#include "net/protocol.hpp"

#include "index/serialize.hpp"
#include "util/byte_io.hpp"

namespace bees::net {

namespace {

std::vector<std::uint8_t> seal(MessageType type,
                               std::vector<std::uint8_t> payload) {
  util::ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_varint(payload.size());
  w.put_bytes(payload);
  return w.take();
}

void put_geo(util::ByteWriter& w, const idx::GeoTag& geo) {
  w.put_u8(geo.valid ? 1 : 0);
  w.put_f64(geo.lon);
  w.put_f64(geo.lat);
}

idx::GeoTag get_geo(util::ByteReader& r) {
  idx::GeoTag geo;
  geo.valid = r.get_u8() != 0;
  geo.lon = r.get_f64();
  geo.lat = r.get_f64();
  return geo;
}

void put_binary_features(util::ByteWriter& w,
                         const feat::BinaryFeatures& features) {
  const auto bytes = idx::serialize_binary(features);
  w.put_varint(bytes.size());
  w.put_bytes(bytes);
}

feat::BinaryFeatures get_binary_features(util::ByteReader& r) {
  const auto len = static_cast<std::size_t>(r.get_varint());
  return idx::deserialize_binary(r.get_bytes(len));
}

void put_float_features(util::ByteWriter& w,
                        const feat::FloatFeatures& features) {
  const auto bytes = idx::serialize_float(features);
  w.put_varint(bytes.size());
  w.put_bytes(bytes);
}

feat::FloatFeatures get_float_features(util::ByteReader& r) {
  const auto len = static_cast<std::size_t>(r.get_varint());
  return idx::deserialize_float(r.get_bytes(len));
}

void put_histogram(util::ByteWriter& w, const feat::ColorHistogram& h) {
  for (const float v : h.bins) w.put_f32(v);
}

feat::ColorHistogram get_histogram(util::ByteReader& r) {
  feat::ColorHistogram h;
  for (float& v : h.bins) v = r.get_f32();
  return h;
}

}  // namespace

std::vector<std::uint8_t> encode_binary_query(
    const feat::BinaryFeatures& features, std::int32_t top_k,
    double feature_bytes) {
  util::ByteWriter w;
  put_binary_features(w, features);
  w.put_u32(static_cast<std::uint32_t>(top_k));
  w.put_f64(feature_bytes);
  return seal(MessageType::kBinaryQuery, w.take());
}

std::vector<std::uint8_t> encode(const BinaryQueryRequest& m) {
  return encode_binary_query(m.features, m.top_k, m.feature_bytes);
}

std::vector<std::uint8_t> encode(const QueryResponse& m) {
  util::ByteWriter w;
  w.put_f64(m.max_similarity);
  w.put_u32(m.best_id);
  w.put_f64(m.thumbnail_bytes);
  return seal(MessageType::kQueryResponse, w.take());
}

std::vector<std::uint8_t> encode_image_upload(
    const feat::BinaryFeatures& features, double image_bytes,
    const idx::GeoTag& geo, double thumbnail_bytes) {
  util::ByteWriter w;
  put_binary_features(w, features);
  w.put_f64(image_bytes);
  put_geo(w, geo);
  w.put_f64(thumbnail_bytes);
  return seal(MessageType::kImageUpload, w.take());
}

std::vector<std::uint8_t> encode(const ImageUploadRequest& m) {
  return encode_image_upload(m.features, m.image_bytes, m.geo,
                             m.thumbnail_bytes);
}

std::vector<std::uint8_t> encode(const UploadAck& m) {
  util::ByteWriter w;
  w.put_u32(m.id);
  return seal(MessageType::kUploadAck, w.take());
}

std::vector<std::uint8_t> encode_batch_query(
    const std::vector<const feat::BinaryFeatures*>& features,
    const std::vector<double>& feature_bytes, std::int32_t top_k) {
  util::ByteWriter w;
  w.put_varint(features.size());
  for (const feat::BinaryFeatures* f : features) {
    put_binary_features(w, *f);
  }
  w.put_varint(feature_bytes.size());
  for (const double b : feature_bytes) w.put_f64(b);
  w.put_u32(static_cast<std::uint32_t>(top_k));
  return seal(MessageType::kBatchQuery, w.take());
}

std::vector<std::uint8_t> encode(const BatchQueryRequest& m) {
  std::vector<const feat::BinaryFeatures*> refs;
  refs.reserve(m.features.size());
  for (const auto& f : m.features) refs.push_back(&f);
  return encode_batch_query(refs, m.feature_bytes, m.top_k);
}

std::vector<std::uint8_t> encode(const BatchQueryResponse& m) {
  util::ByteWriter w;
  w.put_varint(m.verdicts.size());
  for (const QueryResponse& v : m.verdicts) {
    w.put_f64(v.max_similarity);
    w.put_u32(v.best_id);
    w.put_f64(v.thumbnail_bytes);
  }
  return seal(MessageType::kBatchQueryResponse, w.take());
}

std::vector<std::uint8_t> encode_float_query(
    const feat::FloatFeatures& features, std::int32_t top_k,
    double feature_bytes) {
  util::ByteWriter w;
  put_float_features(w, features);
  w.put_u32(static_cast<std::uint32_t>(top_k));
  w.put_f64(feature_bytes);
  return seal(MessageType::kFloatQuery, w.take());
}

std::vector<std::uint8_t> encode(const FloatQueryRequest& m) {
  return encode_float_query(m.features, m.top_k, m.feature_bytes);
}

std::vector<std::uint8_t> encode_float_upload(
    const feat::FloatFeatures& features, double image_bytes,
    const idx::GeoTag& geo) {
  util::ByteWriter w;
  put_float_features(w, features);
  w.put_f64(image_bytes);
  put_geo(w, geo);
  return seal(MessageType::kFloatUpload, w.take());
}

std::vector<std::uint8_t> encode(const FloatUploadRequest& m) {
  return encode_float_upload(m.features, m.image_bytes, m.geo);
}

std::vector<std::uint8_t> encode(const GlobalQueryRequest& m) {
  util::ByteWriter w;
  put_histogram(w, m.histogram);
  put_geo(w, m.geo);
  w.put_f64(m.feature_bytes);
  w.put_f64(m.geo_radius_deg);
  return seal(MessageType::kGlobalQuery, w.take());
}

std::vector<std::uint8_t> encode(const GlobalUploadRequest& m) {
  util::ByteWriter w;
  put_histogram(w, m.histogram);
  w.put_f64(m.image_bytes);
  put_geo(w, m.geo);
  return seal(MessageType::kGlobalUpload, w.take());
}

std::vector<std::uint8_t> encode(const PlainUploadRequest& m) {
  util::ByteWriter w;
  w.put_f64(m.image_bytes);
  put_geo(w, m.geo);
  return seal(MessageType::kPlainUpload, w.take());
}

std::vector<std::uint8_t> encode(const ChunkManifestRequest& m) {
  util::ByteWriter w;
  store::put_manifest(w, m.manifest);
  return seal(MessageType::kChunkManifest, w.take());
}

std::vector<std::uint8_t> encode(const ChunkManifestAck& m) {
  util::ByteWriter w;
  w.put_varint(m.missing.size());
  for (const std::uint32_t index : m.missing) w.put_varint(index);
  return seal(MessageType::kChunkManifestAck, w.take());
}

std::vector<std::uint8_t> encode_chunk_data(
    const store::ChunkKey& key, std::span<const std::uint8_t> data) {
  util::ByteWriter w;
  w.put_u64(key.hash);
  w.put_u32(key.crc);
  w.put_varint(key.size);
  w.put_varint(data.size());
  w.put_bytes(data);
  return seal(MessageType::kChunkData, w.take());
}

std::vector<std::uint8_t> encode(const ChunkDataRequest& m) {
  return encode_chunk_data(m.key, m.data);
}

std::vector<std::uint8_t> encode(const ChunkAck& m) {
  util::ByteWriter w;
  w.put_u64(m.hash);
  return seal(MessageType::kChunkAck, w.take());
}

std::vector<std::uint8_t> encode(const ChunkCommitRequest& m) {
  util::ByteWriter w;
  store::put_manifest(w, m.manifest);
  w.put_varint(m.inner.size());
  w.put_bytes(m.inner);
  return seal(MessageType::kChunkCommit, w.take());
}

std::vector<std::uint8_t> encode_error(const std::string& what) {
  util::ByteWriter w;
  w.put_string(what);
  return seal(MessageType::kError, w.take());
}

Envelope open_envelope(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  Envelope env;
  const auto type = r.get_u8();
  if (type < static_cast<std::uint8_t>(MessageType::kBinaryQuery) ||
      type > static_cast<std::uint8_t>(MessageType::kChunkCommit)) {
    throw util::DecodeError("protocol: bad type");
  }
  env.type = static_cast<MessageType>(type);
  const auto len = static_cast<std::size_t>(r.get_varint());
  env.payload = r.get_bytes(len);
  if (!r.done()) throw util::DecodeError("protocol: trailing bytes");
  return env;
}

BinaryQueryRequest decode_binary_query(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  BinaryQueryRequest m;
  m.features = get_binary_features(r);
  m.top_k = static_cast<std::int32_t>(r.get_u32());
  m.feature_bytes = r.get_f64();
  return m;
}

QueryResponse decode_query_response(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  QueryResponse m;
  m.max_similarity = r.get_f64();
  m.best_id = r.get_u32();
  m.thumbnail_bytes = r.get_f64();
  return m;
}

ImageUploadRequest decode_image_upload(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  ImageUploadRequest m;
  m.features = get_binary_features(r);
  m.image_bytes = r.get_f64();
  m.geo = get_geo(r);
  m.thumbnail_bytes = r.get_f64();
  return m;
}

UploadAck decode_upload_ack(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  UploadAck m;
  m.id = r.get_u32();
  return m;
}

BatchQueryRequest decode_batch_query(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  BatchQueryRequest m;
  const auto n = static_cast<std::size_t>(r.get_varint());
  m.features.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.features.push_back(get_binary_features(r));
  }
  const auto nb = static_cast<std::size_t>(r.get_varint());
  if (nb != n) {
    throw util::DecodeError("batch query: feature_bytes count mismatch");
  }
  m.feature_bytes.reserve(nb);
  for (std::size_t i = 0; i < nb; ++i) m.feature_bytes.push_back(r.get_f64());
  m.top_k = static_cast<std::int32_t>(r.get_u32());
  return m;
}

BatchQueryResponse decode_batch_query_response(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  BatchQueryResponse m;
  const auto n = static_cast<std::size_t>(r.get_varint());
  m.verdicts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    QueryResponse v;
    v.max_similarity = r.get_f64();
    v.best_id = r.get_u32();
    v.thumbnail_bytes = r.get_f64();
    m.verdicts.push_back(v);
  }
  return m;
}

FloatQueryRequest decode_float_query(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  FloatQueryRequest m;
  m.features = get_float_features(r);
  m.top_k = static_cast<std::int32_t>(r.get_u32());
  m.feature_bytes = r.get_f64();
  return m;
}

FloatUploadRequest decode_float_upload(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  FloatUploadRequest m;
  m.features = get_float_features(r);
  m.image_bytes = r.get_f64();
  m.geo = get_geo(r);
  return m;
}

GlobalQueryRequest decode_global_query(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  GlobalQueryRequest m;
  m.histogram = get_histogram(r);
  m.geo = get_geo(r);
  m.feature_bytes = r.get_f64();
  m.geo_radius_deg = r.get_f64();
  return m;
}

GlobalUploadRequest decode_global_upload(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  GlobalUploadRequest m;
  m.histogram = get_histogram(r);
  m.image_bytes = r.get_f64();
  m.geo = get_geo(r);
  return m;
}

PlainUploadRequest decode_plain_upload(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  PlainUploadRequest m;
  m.image_bytes = r.get_f64();
  m.geo = get_geo(r);
  return m;
}

ChunkManifestRequest decode_chunk_manifest(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  ChunkManifestRequest m;
  m.manifest = store::get_manifest(r);
  if (!r.done()) throw util::DecodeError("chunk manifest: trailing bytes");
  return m;
}

ChunkManifestAck decode_chunk_manifest_ack(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  ChunkManifestAck m;
  const auto n = static_cast<std::size_t>(r.get_varint());
  if (n > store::kMaxManifestChunks) {
    throw util::DecodeError("chunk ack: missing count exceeds limit");
  }
  m.missing.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.missing.push_back(static_cast<std::uint32_t>(r.get_varint()));
  }
  if (!r.done()) throw util::DecodeError("chunk ack: trailing bytes");
  return m;
}

ChunkDataRequest decode_chunk_data(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  ChunkDataRequest m;
  m.key.hash = r.get_u64();
  m.key.crc = r.get_u32();
  m.key.size = static_cast<std::uint32_t>(r.get_varint());
  const auto len = static_cast<std::size_t>(r.get_varint());
  if (len != m.key.size) {
    throw util::DecodeError("chunk data: length disagrees with key");
  }
  m.data = r.get_bytes(len);
  if (!r.done()) throw util::DecodeError("chunk data: trailing bytes");
  return m;
}

ChunkAck decode_chunk_ack(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  ChunkAck m;
  m.hash = r.get_u64();
  if (!r.done()) throw util::DecodeError("chunk ack: trailing bytes");
  return m;
}

ChunkCommitRequest decode_chunk_commit(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  ChunkCommitRequest m;
  m.manifest = store::get_manifest(r);
  const auto len = static_cast<std::size_t>(r.get_varint());
  m.inner = r.get_bytes(len);
  if (!r.done()) throw util::DecodeError("chunk commit: trailing bytes");
  return m;
}

std::string decode_error(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  return r.get_string();
}

}  // namespace bees::net
