#include "net/protocol.hpp"

#include "index/serialize.hpp"
#include "util/byte_io.hpp"

namespace bees::net {

namespace {

std::vector<std::uint8_t> seal(MessageType type,
                               std::vector<std::uint8_t> payload) {
  util::ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_varint(payload.size());
  w.put_bytes(payload);
  return w.take();
}

void put_geo(util::ByteWriter& w, const idx::GeoTag& geo) {
  w.put_u8(geo.valid ? 1 : 0);
  w.put_f64(geo.lon);
  w.put_f64(geo.lat);
}

idx::GeoTag get_geo(util::ByteReader& r) {
  idx::GeoTag geo;
  geo.valid = r.get_u8() != 0;
  geo.lon = r.get_f64();
  geo.lat = r.get_f64();
  return geo;
}

}  // namespace

std::vector<std::uint8_t> encode(const BinaryQueryRequest& m) {
  util::ByteWriter w;
  const auto features = idx::serialize_binary(m.features);
  w.put_varint(features.size());
  w.put_bytes(features);
  w.put_u32(static_cast<std::uint32_t>(m.top_k));
  return seal(MessageType::kBinaryQuery, w.take());
}

std::vector<std::uint8_t> encode(const QueryResponse& m) {
  util::ByteWriter w;
  w.put_f64(m.max_similarity);
  w.put_u32(m.best_id);
  w.put_f64(m.thumbnail_bytes);
  return seal(MessageType::kQueryResponse, w.take());
}

std::vector<std::uint8_t> encode(const ImageUploadRequest& m) {
  util::ByteWriter w;
  const auto features = idx::serialize_binary(m.features);
  w.put_varint(features.size());
  w.put_bytes(features);
  w.put_f64(m.image_bytes);
  put_geo(w, m.geo);
  w.put_f64(m.thumbnail_bytes);
  return seal(MessageType::kImageUpload, w.take());
}

std::vector<std::uint8_t> encode(const UploadAck& m) {
  util::ByteWriter w;
  w.put_u32(m.id);
  return seal(MessageType::kUploadAck, w.take());
}

std::vector<std::uint8_t> encode_error(const std::string& what) {
  util::ByteWriter w;
  w.put_string(what);
  return seal(MessageType::kError, w.take());
}

Envelope open_envelope(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  Envelope env;
  const auto type = r.get_u8();
  if (type < 1 || type > 5) throw util::DecodeError("protocol: bad type");
  env.type = static_cast<MessageType>(type);
  const auto len = static_cast<std::size_t>(r.get_varint());
  env.payload = r.get_bytes(len);
  if (!r.done()) throw util::DecodeError("protocol: trailing bytes");
  return env;
}

BinaryQueryRequest decode_binary_query(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  BinaryQueryRequest m;
  const auto len = static_cast<std::size_t>(r.get_varint());
  m.features = idx::deserialize_binary(r.get_bytes(len));
  m.top_k = static_cast<std::int32_t>(r.get_u32());
  return m;
}

QueryResponse decode_query_response(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  QueryResponse m;
  m.max_similarity = r.get_f64();
  m.best_id = r.get_u32();
  m.thumbnail_bytes = r.get_f64();
  return m;
}

ImageUploadRequest decode_image_upload(
    const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  ImageUploadRequest m;
  const auto len = static_cast<std::size_t>(r.get_varint());
  m.features = idx::deserialize_binary(r.get_bytes(len));
  m.image_bytes = r.get_f64();
  m.geo = get_geo(r);
  m.thumbnail_bytes = r.get_f64();
  return m;
}

UploadAck decode_upload_ack(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  UploadAck m;
  m.id = r.get_u32();
  return m;
}

std::string decode_error(const std::vector<std::uint8_t>& payload) {
  util::ByteReader r(payload);
  return r.get_string();
}

}  // namespace bees::net
