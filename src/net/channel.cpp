#include "net/channel.hpp"

#include <algorithm>
#include <stdexcept>

namespace bees::net {

namespace {
// Salts deriving the loss/outage streams from the channel seed; kept apart
// from the rate walk so enabling either process never perturbs the walk.
constexpr std::uint64_t kLossSalt = 0x10551055dead1055ULL;
constexpr std::uint64_t kOutageSalt = 0x07a9e000007a9e00ULL;
}  // namespace

Channel::Channel(const ChannelParams& params)
    : params_(params),
      rng_(params.seed),
      loss_rng_(params.seed ^ kLossSalt),
      outage_rng_(params.seed ^ kOutageSalt),
      bps_(params.initial_bps) {
  if (params.max_bps <= 0.0 || params.min_bps < 0.0 ||
      params.min_bps > params.max_bps) {
    throw std::invalid_argument("Channel: bad bitrate bounds");
  }
  if (params.update_interval_s <= 0.0) {
    throw std::invalid_argument("Channel: bad update interval");
  }
  if (params.loss_probability < 0.0 || params.loss_probability > 1.0) {
    throw std::invalid_argument("Channel: bad loss probability");
  }
  if (params.outage_probability < 0.0 || params.outage_probability > 1.0) {
    throw std::invalid_argument("Channel: bad outage probability");
  }
  if (params.outage_probability > 0.0 && params.outage_duration_s <= 0.0) {
    throw std::invalid_argument("Channel: bad outage duration");
  }
  bps_ = std::clamp(bps_, params.min_bps, params.max_bps);
  if (params.step_bps <= 0.0 && bps_ <= 0.0) {
    // A constant rate of 0 bps can never complete a transfer; without this
    // guard Channel::transfer spins forever resampling a walk that cannot
    // move.
    throw std::invalid_argument(
        "Channel: rate is constant at 0 bps; transfers would never finish");
  }
  next_update_s_ = params.update_interval_s;
}

void Channel::resample() noexcept {
  if (params_.step_bps <= 0.0) return;
  // Reflecting bounded random walk keeps the long-run distribution roughly
  // uniform over [min, max] with median near the midpoint.
  double next = bps_ + rng_.normal(0.0, params_.step_bps);
  const double span = params_.max_bps - params_.min_bps;
  if (span <= 0.0) return;
  while (next < params_.min_bps || next > params_.max_bps) {
    if (next < params_.min_bps) next = 2 * params_.min_bps - next;
    if (next > params_.max_bps) next = 2 * params_.max_bps - next;
  }
  bps_ = next;
}

void Channel::on_boundary(double boundary_s) noexcept {
  next_update_s_ += params_.update_interval_s;
  if (params_.outage_probability > 0.0 && boundary_s >= outage_until_s_ &&
      outage_rng_.bernoulli(params_.outage_probability)) {
    outage_until_s_ = boundary_s + params_.outage_duration_s;
  }
  resample();
}

SendOutcome Channel::transmit(double bytes, double deadline_s) {
  SendOutcome out;
  if (bytes <= 0.0) return out;
  double bits = bytes * 8.0;
  const double total_bits = bits;
  const double start = now_s_;
  while (bits > 0.0) {
    if (now_s_ >= deadline_s) {
      out.timed_out = true;
      break;
    }
    double rate = bps_;
    double interval_end = std::min(next_update_s_, deadline_s);
    if (now_s_ < outage_until_s_) {
      rate = 0.0;
      interval_end = std::min(interval_end, outage_until_s_);
    }
    if (rate > 0.0) {
      const double can_send = rate * (interval_end - now_s_);
      if (can_send >= bits) {
        now_s_ += bits / rate;
        bits = 0.0;
        break;
      }
      bits -= can_send;
    }
    now_s_ = interval_end;
    if (now_s_ >= next_update_s_) on_boundary(now_s_);
  }
  out.seconds = now_s_ - start;
  out.sent_bytes = (total_bits - bits) / 8.0;
  return out;
}

double Channel::transfer(double bytes) {
  return transmit(bytes, kNoTimeout).seconds;
}

SendOutcome Channel::send(double bytes, double timeout_s) {
  const double deadline =
      timeout_s == kNoTimeout ? kNoTimeout : now_s_ + timeout_s;
  SendOutcome out = transmit(bytes, deadline);
  if (out.timed_out) return out;
  // Nothing radiated cannot be lost; otherwise the loss process decides.
  out.delivered = bytes <= 0.0 || params_.loss_probability <= 0.0 ||
                  !loss_rng_.bernoulli(params_.loss_probability);
  return out;
}

void Channel::advance(double seconds) {
  if (seconds <= 0.0) return;
  now_s_ += seconds;
  while (now_s_ >= next_update_s_) {
    on_boundary(next_update_s_);
  }
}

}  // namespace bees::net
