#include "net/channel.hpp"

#include <algorithm>
#include <stdexcept>

namespace bees::net {

Channel::Channel(const ChannelParams& params)
    : params_(params), rng_(params.seed), bps_(params.initial_bps) {
  if (params.max_bps <= 0.0 || params.min_bps < 0.0 ||
      params.min_bps > params.max_bps) {
    throw std::invalid_argument("Channel: bad bitrate bounds");
  }
  if (params.update_interval_s <= 0.0) {
    throw std::invalid_argument("Channel: bad update interval");
  }
  bps_ = std::clamp(bps_, params.min_bps, params.max_bps);
  next_update_s_ = params.update_interval_s;
}

void Channel::resample() noexcept {
  if (params_.step_bps <= 0.0) return;
  // Reflecting bounded random walk keeps the long-run distribution roughly
  // uniform over [min, max] with median near the midpoint.
  double next = bps_ + rng_.normal(0.0, params_.step_bps);
  const double span = params_.max_bps - params_.min_bps;
  if (span <= 0.0) return;
  while (next < params_.min_bps || next > params_.max_bps) {
    if (next < params_.min_bps) next = 2 * params_.min_bps - next;
    if (next > params_.max_bps) next = 2 * params_.max_bps - next;
  }
  bps_ = next;
}

double Channel::transfer(double bytes) {
  if (bytes <= 0.0) return 0.0;
  double bits = bytes * 8.0;
  const double start = now_s_;
  // Guard against a channel stuck at 0 bps forever (min == max == 0 is
  // rejected by the constructor, so the walk will eventually move).
  while (bits > 0.0) {
    const double until_update = next_update_s_ - now_s_;
    if (bps_ > 0.0) {
      const double can_send = bps_ * until_update;
      if (can_send >= bits) {
        now_s_ += bits / bps_;
        bits = 0.0;
        break;
      }
      bits -= can_send;
    }
    now_s_ = next_update_s_;
    next_update_s_ += params_.update_interval_s;
    resample();
  }
  return now_s_ - start;
}

void Channel::advance(double seconds) {
  if (seconds <= 0.0) return;
  now_s_ += seconds;
  while (now_s_ >= next_update_s_) {
    next_update_s_ += params_.update_interval_s;
    resample();
  }
}

}  // namespace bees::net
