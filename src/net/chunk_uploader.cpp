#include "net/chunk_uploader.hpp"

#include <string>

#include "obs/metrics.hpp"

namespace bees::net {

std::optional<Envelope> ChunkUploader::upload(
    std::span<const std::uint8_t> payload, double modeled_bytes,
    const std::vector<std::uint8_t>& commit_request, const Exchange& exchange,
    ChunkUploadStats* stats) {
  if (!policy_.enabled || payload.empty() || !server_supports_chunks_) {
    return exchange(commit_request, modeled_bytes, /*image_payload=*/true);
  }
  const store::Manifest manifest =
      store::build_manifest(payload, policy_.chunk_size);
  // Chunk bytes are charged in the same modelled domain as the whole image:
  // a chunk of raw size s stands for s * (modeled / raw_total) wire bytes.
  const double scale =
      modeled_bytes / static_cast<double>(manifest.total_bytes);

  // Two rounds: the second only runs if the commit reports chunks missing
  // (compaction reclaimed uncommitted chunks between our data and commit),
  // in which case a fresh manifest offer tells us what to resend.
  for (int round = 0; round < 2; ++round) {
    const auto fall_back = [&](const Envelope& error_reply)
        -> std::optional<std::optional<Envelope>> {
      if (decode_error(error_reply.payload) == kChunkStoreDisabledMessage) {
        server_supports_chunks_ = false;
        obs::count("net.upload.chunk_fallbacks");
        return exchange(commit_request, modeled_bytes, true);
      }
      return std::nullopt;  // not a fallback case
    };

    const auto offer = exchange(encode(ChunkManifestRequest{manifest}), -1.0,
                                /*image_payload=*/false);
    if (!offer) return std::nullopt;
    if (offer->type == MessageType::kError) {
      if (auto fb = fall_back(*offer)) return *fb;
      return offer;  // terminal server error
    }
    const ChunkManifestAck ack = decode_chunk_manifest_ack(offer->payload);
    obs::count("net.upload.manifests");

    std::unordered_set<store::ChunkKey, store::ChunkKeyHasher> sent_this_round;
    std::size_t missing_at = 0;
    for (std::size_t i = 0; i < manifest.chunks.size(); ++i) {
      const store::ChunkKey& key = manifest.chunks[i];
      const bool missing =
          missing_at < ack.missing.size() && ack.missing[missing_at] == i;
      if (missing) ++missing_at;
      if (!missing || sent_this_round.count(key)) {
        // The server holds it (or just received it earlier this round).
        if (!delivered_.count(key)) {
          if (stats) ++stats->chunks_deduped;
          obs::count("net.upload.chunks_deduped");
        }
        continue;
      }
      const auto data_reply =
          exchange(encode_chunk_data(key, chunk_bytes(payload, manifest, i)),
                   static_cast<double>(key.size) * scale,
                   /*image_payload=*/true);
      if (!data_reply) return std::nullopt;  // aborted; progress persists
      if (data_reply->type == MessageType::kError) {
        if (auto fb = fall_back(*data_reply)) return *fb;
        return data_reply;
      }
      sent_this_round.insert(key);
      if (stats) ++stats->chunks_sent;
      obs::count("net.upload.chunks_sent");
      if (delivered_.count(key)) {
        if (stats) ++stats->chunks_resent;
        obs::count("net.upload.chunks_resent");
      } else {
        delivered_.insert(key);
      }
    }

    const auto commit = exchange(encode(ChunkCommitRequest{
                                     manifest, commit_request}),
                                 -1.0, /*image_payload=*/false);
    if (!commit) return std::nullopt;
    if (commit->type == MessageType::kError) {
      if (auto fb = fall_back(*commit)) return *fb;
      if (round == 0 &&
          decode_error(commit->payload) == kChunkCommitMissingMessage) {
        obs::count("net.upload.commit_retries");
        continue;  // re-offer the manifest and fill the holes
      }
    }
    return commit;
  }
  return std::nullopt;  // unreachable: round 1 always returns
}

}  // namespace bees::net
