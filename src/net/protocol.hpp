// The client<->server wire protocol: typed messages in a self-describing
// envelope (type byte + varint length + payload).  Every exchange the
// simulation models is expressible — and tested — as encoded messages
// through cloud::dispatch, so the byte counts the energy/bandwidth model
// charges correspond to a real serializable protocol.  The schemes drive
// the server through these messages over net::Transport, which adds the
// retry/backoff reliability layer.
//
// Payload-size fields (feature_bytes / image_bytes / thumbnail_bytes) carry
// the *modelled* wire size of a payload: the simulator accounts bytes in
// the paper's ~700 KB-image domain without hauling pixels through the
// envelope, so messages state the size their payload stands for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "features/global.hpp"
#include "features/keypoint.hpp"
#include "index/feature_index.hpp"
#include "index/geo.hpp"
#include "store/chunk.hpp"

namespace bees::net {

enum class MessageType : std::uint8_t {
  kBinaryQuery = 1,    ///< CBRD query with ORB features.
  kImageUpload = 2,    ///< Unique-image upload (features + payload size).
  kQueryResponse = 3,  ///< Server's similarity verdict.
  kUploadAck = 4,      ///< Server's acknowledgement of a stored image.
  kError = 5,
  kBatchQuery = 6,     ///< Bulk CBRD: all batch feature sets in one message.
  kBatchQueryResponse = 7,  ///< Per-image verdicts for a kBatchQuery.
  kFloatQuery = 8,     ///< CBRD query with SIFT / PCA-SIFT features.
  kFloatUpload = 9,    ///< Upload indexed by float features (SmartEye).
  kGlobalQuery = 10,   ///< Color-histogram query (PhotoNet).
  kGlobalUpload = 11,  ///< Upload indexed by global features (PhotoNet).
  kPlainUpload = 12,   ///< Featureless upload (Direct Upload).
  // Chunk-manifest upload plane (see DESIGN §12): an image upload becomes
  // manifest -> (missing chunk data)* -> commit, so a retried upload
  // resends only the chunks the server lacks and byte-identical chunks
  // dedup on the wire.
  kChunkManifest = 13,     ///< Offer: payload manifest; ack lists missing.
  kChunkManifestAck = 14,  ///< Server's missing-chunk index list.
  kChunkData = 15,         ///< One raw chunk (key + bytes).
  kChunkAck = 16,          ///< Server stored the chunk (hash echoed).
  kChunkCommit = 17,       ///< Manifest + embedded legacy upload envelope.
};

struct BinaryQueryRequest {
  feat::BinaryFeatures features;
  std::int32_t top_k = idx::kDefaultTopK;
  /// Modelled wire size of the feature payload, for server-side bandwidth
  /// accounting; negative means "use the encoded message size".
  double feature_bytes = -1.0;
};

struct QueryResponse {
  double max_similarity = 0.0;
  idx::ImageId best_id = idx::kInvalidImageId;
  /// Size of the thumbnail feedback the server would attach (MRC path).
  double thumbnail_bytes = 0.0;
};

struct ImageUploadRequest {
  feat::BinaryFeatures features;
  double image_bytes = 0.0;  ///< Payload size (the pixels themselves are
                             ///< modelled, not carried, in the simulator).
  idx::GeoTag geo;
  double thumbnail_bytes = 0.0;
};

struct UploadAck {
  idx::ImageId id = idx::kInvalidImageId;
};

/// One bulk CBRD round: the whole batch's feature sets in a single message
/// (how BEES ships features: one upload serving every per-image query).
struct BatchQueryRequest {
  std::vector<feat::BinaryFeatures> features;
  /// Per-image modelled feature payload sizes (parallel to `features`).
  std::vector<double> feature_bytes;
  std::int32_t top_k = idx::kDefaultTopK;
};

struct BatchQueryResponse {
  std::vector<QueryResponse> verdicts;  ///< One per queried image, in order.
};

struct FloatQueryRequest {
  feat::FloatFeatures features;
  std::int32_t top_k = idx::kDefaultTopK;
  double feature_bytes = -1.0;  ///< As in BinaryQueryRequest.
};

struct FloatUploadRequest {
  feat::FloatFeatures features;
  double image_bytes = 0.0;
  idx::GeoTag geo;
};

struct GlobalQueryRequest {
  feat::ColorHistogram histogram;
  idx::GeoTag geo;
  double feature_bytes = 0.0;
  double geo_radius_deg = 0.005;
};

struct GlobalUploadRequest {
  feat::ColorHistogram histogram;
  double image_bytes = 0.0;
  idx::GeoTag geo;
};

struct PlainUploadRequest {
  double image_bytes = 0.0;
  idx::GeoTag geo;
};

/// Offers a payload by manifest; the server answers with a
/// ChunkManifestAck naming the chunks it does not hold yet.
struct ChunkManifestRequest {
  store::Manifest manifest;
};

struct ChunkManifestAck {
  /// Indices into the offered manifest's chunk list, ascending.
  std::vector<std::uint32_t> missing;
};

/// One raw chunk.  `data` is the actual chunk bytes (unlike image payloads,
/// chunk content is real — it is what the store hashes and persists); the
/// *modelled* uplink cost is charged by the caller via the transport, as
/// with every other message.
struct ChunkDataRequest {
  store::ChunkKey key;
  std::vector<std::uint8_t> data;
};

struct ChunkAck {
  std::uint64_t hash = 0;  ///< key.hash echoed back.
};

/// Finalizes a chunked upload: the server verifies it holds every chunk of
/// `manifest`, pins them live, then dispatches the embedded legacy upload
/// envelope (`inner`) and returns *its* reply — so a chunked upload yields
/// exactly the ack a whole-image upload would.
struct ChunkCommitRequest {
  store::Manifest manifest;
  std::vector<std::uint8_t> inner;
};

/// Error text a commit returns when the store is missing manifest chunks
/// (e.g. compaction dropped uncommitted chunks between data and commit).
/// Clients key on it to re-offer the manifest and resend; any other error
/// is terminal.
inline constexpr const char* kChunkCommitMissingMessage =
    "chunk commit: missing chunks";
/// Error text every chunk-plane request gets from a server without a chunk
/// store; clients key on it to fall back to whole-image uploads.
inline constexpr const char* kChunkStoreDisabledMessage =
    "chunk store: not enabled";

/// Envelope: returns type + payload bytes, or nullopt for malformed input.
struct Envelope {
  MessageType type;
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> encode(const BinaryQueryRequest& m);
std::vector<std::uint8_t> encode(const QueryResponse& m);
std::vector<std::uint8_t> encode(const ImageUploadRequest& m);
std::vector<std::uint8_t> encode(const UploadAck& m);
std::vector<std::uint8_t> encode(const BatchQueryRequest& m);
std::vector<std::uint8_t> encode(const BatchQueryResponse& m);
std::vector<std::uint8_t> encode(const FloatQueryRequest& m);
std::vector<std::uint8_t> encode(const FloatUploadRequest& m);
std::vector<std::uint8_t> encode(const GlobalQueryRequest& m);
std::vector<std::uint8_t> encode(const GlobalUploadRequest& m);
std::vector<std::uint8_t> encode(const PlainUploadRequest& m);
std::vector<std::uint8_t> encode(const ChunkManifestRequest& m);
std::vector<std::uint8_t> encode(const ChunkManifestAck& m);
std::vector<std::uint8_t> encode(const ChunkDataRequest& m);
std::vector<std::uint8_t> encode(const ChunkAck& m);
std::vector<std::uint8_t> encode(const ChunkCommitRequest& m);
/// An error report (message text carried for diagnostics).
std::vector<std::uint8_t> encode_error(const std::string& what);
/// Zero-copy chunk-data encoder (borrows the chunk bytes).
std::vector<std::uint8_t> encode_chunk_data(
    const store::ChunkKey& key, std::span<const std::uint8_t> data);

/// Zero-copy encoders for the hot client paths: identical bytes to the
/// struct overloads, but borrow the feature sets instead of copying whole
/// descriptor vectors into a request struct first.
std::vector<std::uint8_t> encode_binary_query(
    const feat::BinaryFeatures& features, std::int32_t top_k,
    double feature_bytes = -1.0);
std::vector<std::uint8_t> encode_image_upload(
    const feat::BinaryFeatures& features, double image_bytes,
    const idx::GeoTag& geo, double thumbnail_bytes);
std::vector<std::uint8_t> encode_batch_query(
    const std::vector<const feat::BinaryFeatures*>& features,
    const std::vector<double>& feature_bytes, std::int32_t top_k);
std::vector<std::uint8_t> encode_float_query(
    const feat::FloatFeatures& features, std::int32_t top_k,
    double feature_bytes = -1.0);
std::vector<std::uint8_t> encode_float_upload(
    const feat::FloatFeatures& features, double image_bytes,
    const idx::GeoTag& geo);

/// Splits an envelope; throws util::DecodeError on malformed input.
Envelope open_envelope(const std::vector<std::uint8_t>& bytes);

BinaryQueryRequest decode_binary_query(const std::vector<std::uint8_t>& payload);
QueryResponse decode_query_response(const std::vector<std::uint8_t>& payload);
ImageUploadRequest decode_image_upload(const std::vector<std::uint8_t>& payload);
UploadAck decode_upload_ack(const std::vector<std::uint8_t>& payload);
BatchQueryRequest decode_batch_query(const std::vector<std::uint8_t>& payload);
BatchQueryResponse decode_batch_query_response(
    const std::vector<std::uint8_t>& payload);
FloatQueryRequest decode_float_query(const std::vector<std::uint8_t>& payload);
FloatUploadRequest decode_float_upload(
    const std::vector<std::uint8_t>& payload);
GlobalQueryRequest decode_global_query(
    const std::vector<std::uint8_t>& payload);
GlobalUploadRequest decode_global_upload(
    const std::vector<std::uint8_t>& payload);
PlainUploadRequest decode_plain_upload(
    const std::vector<std::uint8_t>& payload);
ChunkManifestRequest decode_chunk_manifest(
    const std::vector<std::uint8_t>& payload);
ChunkManifestAck decode_chunk_manifest_ack(
    const std::vector<std::uint8_t>& payload);
ChunkDataRequest decode_chunk_data(const std::vector<std::uint8_t>& payload);
ChunkAck decode_chunk_ack(const std::vector<std::uint8_t>& payload);
ChunkCommitRequest decode_chunk_commit(
    const std::vector<std::uint8_t>& payload);
std::string decode_error(const std::vector<std::uint8_t>& payload);

}  // namespace bees::net
