// The client<->server wire protocol: typed messages in a self-describing
// envelope (type byte + varint length + payload).  Every exchange the
// simulation models is expressible — and tested — as encoded messages
// through cloud::dispatch, so the byte counts the energy/bandwidth model
// charges correspond to a real serializable protocol.  The schemes drive
// the server through these messages over net::Transport, which adds the
// retry/backoff reliability layer.
//
// Payload-size fields (feature_bytes / image_bytes / thumbnail_bytes) carry
// the *modelled* wire size of a payload: the simulator accounts bytes in
// the paper's ~700 KB-image domain without hauling pixels through the
// envelope, so messages state the size their payload stands for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "features/global.hpp"
#include "features/keypoint.hpp"
#include "index/feature_index.hpp"
#include "index/geo.hpp"

namespace bees::net {

enum class MessageType : std::uint8_t {
  kBinaryQuery = 1,    ///< CBRD query with ORB features.
  kImageUpload = 2,    ///< Unique-image upload (features + payload size).
  kQueryResponse = 3,  ///< Server's similarity verdict.
  kUploadAck = 4,      ///< Server's acknowledgement of a stored image.
  kError = 5,
  kBatchQuery = 6,     ///< Bulk CBRD: all batch feature sets in one message.
  kBatchQueryResponse = 7,  ///< Per-image verdicts for a kBatchQuery.
  kFloatQuery = 8,     ///< CBRD query with SIFT / PCA-SIFT features.
  kFloatUpload = 9,    ///< Upload indexed by float features (SmartEye).
  kGlobalQuery = 10,   ///< Color-histogram query (PhotoNet).
  kGlobalUpload = 11,  ///< Upload indexed by global features (PhotoNet).
  kPlainUpload = 12,   ///< Featureless upload (Direct Upload).
};

struct BinaryQueryRequest {
  feat::BinaryFeatures features;
  std::int32_t top_k = idx::kDefaultTopK;
  /// Modelled wire size of the feature payload, for server-side bandwidth
  /// accounting; negative means "use the encoded message size".
  double feature_bytes = -1.0;
};

struct QueryResponse {
  double max_similarity = 0.0;
  idx::ImageId best_id = idx::kInvalidImageId;
  /// Size of the thumbnail feedback the server would attach (MRC path).
  double thumbnail_bytes = 0.0;
};

struct ImageUploadRequest {
  feat::BinaryFeatures features;
  double image_bytes = 0.0;  ///< Payload size (the pixels themselves are
                             ///< modelled, not carried, in the simulator).
  idx::GeoTag geo;
  double thumbnail_bytes = 0.0;
};

struct UploadAck {
  idx::ImageId id = idx::kInvalidImageId;
};

/// One bulk CBRD round: the whole batch's feature sets in a single message
/// (how BEES ships features: one upload serving every per-image query).
struct BatchQueryRequest {
  std::vector<feat::BinaryFeatures> features;
  /// Per-image modelled feature payload sizes (parallel to `features`).
  std::vector<double> feature_bytes;
  std::int32_t top_k = idx::kDefaultTopK;
};

struct BatchQueryResponse {
  std::vector<QueryResponse> verdicts;  ///< One per queried image, in order.
};

struct FloatQueryRequest {
  feat::FloatFeatures features;
  std::int32_t top_k = idx::kDefaultTopK;
  double feature_bytes = -1.0;  ///< As in BinaryQueryRequest.
};

struct FloatUploadRequest {
  feat::FloatFeatures features;
  double image_bytes = 0.0;
  idx::GeoTag geo;
};

struct GlobalQueryRequest {
  feat::ColorHistogram histogram;
  idx::GeoTag geo;
  double feature_bytes = 0.0;
  double geo_radius_deg = 0.005;
};

struct GlobalUploadRequest {
  feat::ColorHistogram histogram;
  double image_bytes = 0.0;
  idx::GeoTag geo;
};

struct PlainUploadRequest {
  double image_bytes = 0.0;
  idx::GeoTag geo;
};

/// Envelope: returns type + payload bytes, or nullopt for malformed input.
struct Envelope {
  MessageType type;
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> encode(const BinaryQueryRequest& m);
std::vector<std::uint8_t> encode(const QueryResponse& m);
std::vector<std::uint8_t> encode(const ImageUploadRequest& m);
std::vector<std::uint8_t> encode(const UploadAck& m);
std::vector<std::uint8_t> encode(const BatchQueryRequest& m);
std::vector<std::uint8_t> encode(const BatchQueryResponse& m);
std::vector<std::uint8_t> encode(const FloatQueryRequest& m);
std::vector<std::uint8_t> encode(const FloatUploadRequest& m);
std::vector<std::uint8_t> encode(const GlobalQueryRequest& m);
std::vector<std::uint8_t> encode(const GlobalUploadRequest& m);
std::vector<std::uint8_t> encode(const PlainUploadRequest& m);
/// An error report (message text carried for diagnostics).
std::vector<std::uint8_t> encode_error(const std::string& what);

/// Zero-copy encoders for the hot client paths: identical bytes to the
/// struct overloads, but borrow the feature sets instead of copying whole
/// descriptor vectors into a request struct first.
std::vector<std::uint8_t> encode_binary_query(
    const feat::BinaryFeatures& features, std::int32_t top_k,
    double feature_bytes = -1.0);
std::vector<std::uint8_t> encode_image_upload(
    const feat::BinaryFeatures& features, double image_bytes,
    const idx::GeoTag& geo, double thumbnail_bytes);
std::vector<std::uint8_t> encode_batch_query(
    const std::vector<const feat::BinaryFeatures*>& features,
    const std::vector<double>& feature_bytes, std::int32_t top_k);
std::vector<std::uint8_t> encode_float_query(
    const feat::FloatFeatures& features, std::int32_t top_k,
    double feature_bytes = -1.0);
std::vector<std::uint8_t> encode_float_upload(
    const feat::FloatFeatures& features, double image_bytes,
    const idx::GeoTag& geo);

/// Splits an envelope; throws util::DecodeError on malformed input.
Envelope open_envelope(const std::vector<std::uint8_t>& bytes);

BinaryQueryRequest decode_binary_query(const std::vector<std::uint8_t>& payload);
QueryResponse decode_query_response(const std::vector<std::uint8_t>& payload);
ImageUploadRequest decode_image_upload(const std::vector<std::uint8_t>& payload);
UploadAck decode_upload_ack(const std::vector<std::uint8_t>& payload);
BatchQueryRequest decode_batch_query(const std::vector<std::uint8_t>& payload);
BatchQueryResponse decode_batch_query_response(
    const std::vector<std::uint8_t>& payload);
FloatQueryRequest decode_float_query(const std::vector<std::uint8_t>& payload);
FloatUploadRequest decode_float_upload(
    const std::vector<std::uint8_t>& payload);
GlobalQueryRequest decode_global_query(
    const std::vector<std::uint8_t>& payload);
GlobalUploadRequest decode_global_upload(
    const std::vector<std::uint8_t>& payload);
PlainUploadRequest decode_plain_upload(
    const std::vector<std::uint8_t>& payload);
std::string decode_error(const std::vector<std::uint8_t>& payload);

}  // namespace bees::net
