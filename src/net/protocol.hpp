// The client<->server wire protocol: typed messages in a self-describing
// envelope (type byte + varint length + payload).  The simulation drives
// Server through direct calls for speed, but every exchange it models is
// expressible — and tested — as encoded messages through cloud::dispatch,
// so the byte counts the energy/bandwidth model charges correspond to a
// real serializable protocol.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "features/keypoint.hpp"
#include "index/feature_index.hpp"
#include "index/geo.hpp"

namespace bees::net {

enum class MessageType : std::uint8_t {
  kBinaryQuery = 1,   ///< CBRD query with ORB features.
  kImageUpload = 2,   ///< Unique-image upload (features + payload size).
  kQueryResponse = 3, ///< Server's similarity verdict.
  kUploadAck = 4,     ///< Server's acknowledgement of a stored image.
  kError = 5,
};

struct BinaryQueryRequest {
  feat::BinaryFeatures features;
  std::int32_t top_k = 4;
};

struct QueryResponse {
  double max_similarity = 0.0;
  idx::ImageId best_id = idx::kInvalidImageId;
  /// Size of the thumbnail feedback the server would attach (MRC path).
  double thumbnail_bytes = 0.0;
};

struct ImageUploadRequest {
  feat::BinaryFeatures features;
  double image_bytes = 0.0;  ///< Payload size (the pixels themselves are
                             ///< modelled, not carried, in the simulator).
  idx::GeoTag geo;
  double thumbnail_bytes = 0.0;
};

struct UploadAck {
  idx::ImageId id = idx::kInvalidImageId;
};

/// Envelope: returns type + payload bytes, or nullopt for malformed input.
struct Envelope {
  MessageType type;
  std::vector<std::uint8_t> payload;
};

std::vector<std::uint8_t> encode(const BinaryQueryRequest& m);
std::vector<std::uint8_t> encode(const QueryResponse& m);
std::vector<std::uint8_t> encode(const ImageUploadRequest& m);
std::vector<std::uint8_t> encode(const UploadAck& m);
/// An error report (message text carried for diagnostics).
std::vector<std::uint8_t> encode_error(const std::string& what);

/// Splits an envelope; throws util::DecodeError on malformed input.
Envelope open_envelope(const std::vector<std::uint8_t>& bytes);

BinaryQueryRequest decode_binary_query(const std::vector<std::uint8_t>& payload);
QueryResponse decode_query_response(const std::vector<std::uint8_t>& payload);
ImageUploadRequest decode_image_upload(const std::vector<std::uint8_t>& payload);
UploadAck decode_upload_ack(const std::vector<std::uint8_t>& payload);
std::string decode_error(const std::vector<std::uint8_t>& payload);

}  // namespace bees::net
