#include "workload/image_store.hpp"

#include <cmath>

#include "imaging/codec.hpp"
#include "imaging/transform.hpp"

namespace bees::wl {

std::uint64_t ImageStore::variant_key(std::uint64_t base, std::uint32_t tag,
                                      double bucketed) noexcept {
  const auto bucket =
      static_cast<std::uint64_t>(std::llround(bucketed * 100.0));
  std::uint64_t h = base ^ (static_cast<std::uint64_t>(tag) << 48) ^
                    (bucket << 32);
  return util::splitmix64(h);
}

const img::Image& ImageStore::pixels(const ImageSpec& spec) {
  const std::uint64_t key = spec.cache_key();
  const auto it = pixel_map_.find(key);
  if (it != pixel_map_.end()) {
    // Refresh LRU position.
    pixel_lru_.splice(pixel_lru_.begin(), pixel_lru_, it->second);
    return it->second->second;
  }
  pixel_lru_.emplace_front(key, spec.render());
  pixel_map_[key] = pixel_lru_.begin();
  if (pixel_lru_.size() > params_.pixel_cache_capacity) {
    pixel_map_.erase(pixel_lru_.back().first);
    pixel_lru_.pop_back();
  }
  return pixel_lru_.front().second;
}

const feat::BinaryFeatures& ImageStore::orb(const ImageSpec& spec,
                                            double compression) {
  const std::uint64_t key = variant_key(spec.cache_key(), 1, compression);
  const auto it = orb_cache_.find(key);
  if (it != orb_cache_.end()) return it->second;
  const img::Image& full = pixels(spec);
  feat::BinaryFeatures features;
  if (compression > 0.0) {
    const img::Image small = img::bitmap_compress(full, compression);
    features = feat::extract_orb(small, params_.orb);
    // The client also pays for the downscale itself.
    features.stats.ops += small.pixel_count() * 4;
  } else {
    features = feat::extract_orb(full, params_.orb);
  }
  return orb_cache_.emplace(key, std::move(features)).first->second;
}

const feat::FloatFeatures& ImageStore::sift(const ImageSpec& spec) {
  const std::uint64_t key = variant_key(spec.cache_key(), 2, 0.0);
  const auto it = sift_cache_.find(key);
  if (it != sift_cache_.end()) return it->second;
  feat::FloatFeatures features = feat::extract_sift(pixels(spec), params_.sift);
  return sift_cache_.emplace(key, std::move(features)).first->second;
}

const feat::FloatFeatures& ImageStore::pca_sift(const ImageSpec& spec,
                                                const feat::PcaModel& model) {
  const std::uint64_t key = variant_key(spec.cache_key(), 3, 0.0);
  const auto it = pca_cache_.find(key);
  if (it != pca_cache_.end()) return it->second;
  feat::FloatFeatures projected = model.project_features(sift(spec));
  return pca_cache_.emplace(key, std::move(projected)).first->second;
}

EncodedImage ImageStore::encoded(const ImageSpec& spec, double resolution_prop,
                                 double quality_prop) {
  const std::uint64_t key = variant_key(
      variant_key(spec.cache_key(), 4, resolution_prop), 5, quality_prop);
  const auto it = encoded_cache_.find(key);
  if (it != encoded_cache_.end()) return it->second;

  const img::Image& full = pixels(spec);
  EncodedImage result;
  const img::Image* to_encode = &full;
  img::Image reduced;
  if (resolution_prop > 0.0) {
    reduced = img::bitmap_compress(full, resolution_prop);
    to_encode = &reduced;
    result.ops += reduced.pixel_count() * 4;  // bilinear resize
  }
  const int quality = img::quality_from_proportion(quality_prop);
  const auto bytes = img::encode_jpeg_like(*to_encode, quality);
  result.bytes = bytes.size();
  // DCT + quantization + entropy coding work, ~32 ops/pixel measured from
  // the codec's inner loops.
  result.ops += to_encode->pixel_count() * 32;
  result.width = to_encode->width();
  result.height = to_encode->height();
  encoded_cache_[key] = result;
  return result;
}

const std::vector<std::uint8_t>& ImageStore::encoded_payload(
    const ImageSpec& spec, double resolution_prop, double quality_prop) {
  const std::uint64_t key = variant_key(
      variant_key(spec.cache_key(), 4, resolution_prop), 5, quality_prop);
  const auto it = payload_cache_.find(key);
  if (it != payload_cache_.end()) return it->second;

  // Same pipeline as encoded() — the cached EncodedImage::bytes for this
  // variant always equals the payload's size().  CPU work is charged via
  // encoded(); this accessor only materializes the bytes.
  const img::Image& full = pixels(spec);
  const img::Image* to_encode = &full;
  img::Image reduced;
  if (resolution_prop > 0.0) {
    reduced = img::bitmap_compress(full, resolution_prop);
    to_encode = &reduced;
  }
  const int quality = img::quality_from_proportion(quality_prop);
  std::vector<std::uint8_t> bytes = img::encode_jpeg_like(*to_encode, quality);
  return payload_cache_.emplace(key, std::move(bytes)).first->second;
}

const std::vector<std::uint8_t>& ImageStore::original_payload(
    const ImageSpec& spec) {
  const double original_prop = 1.0 - params_.original_quality / 100.0;
  return encoded_payload(spec, 0.0, original_prop);
}

EncodedImage ImageStore::original(const ImageSpec& spec) {
  const double original_prop =
      1.0 - params_.original_quality / 100.0;  // inverse of the quality map
  return encoded(spec, 0.0, original_prop);
}

}  // namespace bees::wl
