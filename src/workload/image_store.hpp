// Caching layer between ImageSpec recipes and the expensive operations on
// them (rendering, feature extraction, encoding).  Schemes and benches run
// the same images through many configurations; the store computes each
// (image, variant) once and replays the result — including the recorded
// CPU work, so energy accounting charges every logical use even on a cache
// hit.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "features/orb.hpp"
#include "features/pca.hpp"
#include "features/sift.hpp"
#include "workload/imageset.hpp"

namespace bees::wl {

/// Result of encoding one image variant for upload.
struct EncodedImage {
  std::size_t bytes = 0;   ///< Compressed payload size.
  std::uint64_t ops = 0;   ///< CPU work of resize + codec (for the energy model).
  int width = 0;           ///< Resolution after resolution compression.
  int height = 0;
};

class ImageStore {
 public:
  struct Params {
    feat::OrbParams orb;
    feat::SiftParams sift;
    /// Rendered images kept in the LRU pixel cache.
    std::size_t pixel_cache_capacity = 48;
    /// Codec quality for "original" (as-shot) images.
    int original_quality = 92;
  };

  ImageStore() : ImageStore(Params{}) {}
  explicit ImageStore(const Params& params) : params_(params) {}

  /// Rendered pixels (LRU-cached).
  const img::Image& pixels(const ImageSpec& spec);

  /// ORB features extracted after bitmap compression by `compression`
  /// (paper AFE; 0 = full-size).  Proportions are bucketed to 0.01.
  const feat::BinaryFeatures& orb(const ImageSpec& spec,
                                  double compression = 0.0);

  /// SIFT-style features of the full-size image.
  const feat::FloatFeatures& sift(const ImageSpec& spec);

  /// PCA-SIFT features (SIFT projected through `model`).  The cache assumes
  /// a single PCA model per store instance.
  const feat::FloatFeatures& pca_sift(const ImageSpec& spec,
                                      const feat::PcaModel& model);

  /// Size and cost of the upload payload after resolution compression
  /// `resolution_prop` and quality compression `quality_prop` (paper AIU).
  EncodedImage encoded(const ImageSpec& spec, double resolution_prop,
                       double quality_prop);

  /// Size of the image as shot (no resolution compression, original
  /// quality) — what Direct Upload sends.
  EncodedImage original(const ImageSpec& spec);

  /// The actual codec output bytes behind encoded() — what the
  /// chunk-manifest upload plane hashes and ships.  Cached separately from
  /// the size/ops record so legacy (non-chunked) runs never hold payload
  /// bytes; only fetch this when chunking is enabled.  The reference stays
  /// valid for the store's lifetime (payloads are never evicted).
  const std::vector<std::uint8_t>& encoded_payload(const ImageSpec& spec,
                                                   double resolution_prop,
                                                   double quality_prop);
  /// Payload of original(): as-shot encoding (Direct Upload's bytes).
  const std::vector<std::uint8_t>& original_payload(const ImageSpec& spec);

  const Params& params() const noexcept { return params_; }

  /// Cache statistics for tests.
  std::size_t pixel_cache_size() const noexcept { return pixel_lru_.size(); }

 private:
  static std::uint64_t variant_key(std::uint64_t base, std::uint32_t tag,
                                   double bucketed) noexcept;

  Params params_;

  // LRU pixel cache.
  std::list<std::pair<std::uint64_t, img::Image>> pixel_lru_;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, img::Image>>::iterator>
      pixel_map_;

  std::unordered_map<std::uint64_t, feat::BinaryFeatures> orb_cache_;
  std::unordered_map<std::uint64_t, feat::FloatFeatures> sift_cache_;
  std::unordered_map<std::uint64_t, feat::FloatFeatures> pca_cache_;
  std::unordered_map<std::uint64_t, EncodedImage> encoded_cache_;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> payload_cache_;
};

}  // namespace bees::wl
