// Synthetic imageset generators standing in for the paper's three datasets
// (DESIGN.md §2):
//   - Kentucky-like: groups of `per_group` perturbed views of one scene
//     (the precision / similarity-distribution experiments),
//   - disaster-like: a mixed set with a controlled fraction of in-batch
//     similar images (the energy / bandwidth / delay experiments),
//   - Paris-like: geotagged images over a lon/lat bounding box with a
//     heavy-tailed location density (the lifetime / coverage experiments).
//
// Every image is an ImageSpec — a pure recipe (scene seed + view seed) —
// so sets of thousands of images cost nothing until rendered.
#pragma once

#include <cstdint>
#include <vector>

#include "imaging/image.hpp"
#include "imaging/synth.hpp"
#include "index/geo.hpp"

namespace bees::wl {

/// Recipe for one deterministic image.
struct ImageSpec {
  img::SceneSpec scene;
  std::uint64_t view_seed = 0;  ///< 0 renders the canonical (unperturbed) view.
  img::ViewPerturbation perturbation;
  int width = 480;
  int height = 360;
  idx::GeoTag geo;
  std::size_t group = 0;  ///< Ground-truth scene/group index within the set.

  /// Renders the image; identical calls produce identical pixels.
  img::Image render() const;

  /// Stable cache key: distinct specs get distinct keys with overwhelming
  /// probability (hash of scene seed, view seed, and dimensions).
  std::uint64_t cache_key() const noexcept;
};

struct Imageset {
  std::vector<ImageSpec> images;
  std::vector<std::vector<std::size_t>> groups;  ///< Image indices per group.
};

/// Kentucky-like: `n_groups` scenes, `per_group` similar views each.
/// `max_view_strength` scales the hardest view perturbation in the set
/// (1 = all mild near-duplicates; larger values mix in strong viewpoint
/// changes whose pair similarity approaches the dissimilar regime, like
/// the hardest shots of the real Kentucky benchmark).
Imageset make_kentucky_like(int n_groups, int per_group, int width, int height,
                            std::uint64_t seed,
                            double max_view_strength = 3.0);

/// Disaster-like: `n_images` total; `similar_count` of them are extra views
/// of earlier images in the set (the paper's "10 in-batch similar images in
/// the 100").  Perturbations are mild so those pairs score well above the
/// redundancy thresholds.
Imageset make_disaster_like(int n_images, int similar_count, int width,
                            int height, std::uint64_t seed);

/// Geographic bounding box (degrees).
struct GeoBox {
  double lon_min = 2.31;
  double lon_max = 2.34;
  double lat_min = 48.855;
  double lat_max = 48.872;
};

/// Paris-like: `n_images` distributed over `n_locations` spots whose
/// popularity is Pareto (heavy-tailed, like the paper's "densest location
/// has 5,399 images").  Images at the same location view the same scene.
Imageset make_paris_like(int n_images, int n_locations, const GeoBox& box,
                         int width, int height, std::uint64_t seed);

/// Burst-shooting workload: `n_bursts` subjects, `shots_per_burst` nearly
/// identical sequential shots of each — the paper's §I motivating case of
/// in-batch redundancy ("burst shooting and taking multiple pictures for
/// identical objects").  Shots within a burst differ only by sensor noise
/// and sub-pixel hand shake, so their pairwise similarity is very high.
Imageset make_burst_like(int n_bursts, int shots_per_burst, int width,
                         int height, std::uint64_t seed);

/// Derives a near-duplicate spec of `base` (very mild perturbation), used
/// to pre-seed servers with cross-batch redundant images whose similarity
/// with the upload exceeds the paper's 0.3 bar.
ImageSpec make_near_duplicate(const ImageSpec& base, std::uint64_t salt);

}  // namespace bees::wl
