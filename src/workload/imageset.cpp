#include "workload/imageset.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace bees::wl {

img::Image ImageSpec::render() const {
  if (view_seed == 0) return img::render_scene(scene, width, height);
  util::Rng rng(view_seed);
  return img::render_view(scene, width, height, perturbation, rng);
}

std::uint64_t ImageSpec::cache_key() const noexcept {
  std::uint64_t h = scene.seed;
  h = util::splitmix64(h) ^ view_seed;
  h = util::splitmix64(h) ^
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(width)) << 32 |
       static_cast<std::uint32_t>(height));
  return util::splitmix64(h);
}

Imageset make_kentucky_like(int n_groups, int per_group, int width, int height,
                            std::uint64_t seed, double max_view_strength) {
  util::Rng rng(seed);
  Imageset set;
  set.groups.resize(static_cast<std::size_t>(n_groups));
  for (int g = 0; g < n_groups; ++g) {
    img::SceneSpec scene;
    scene.seed = rng.next_u64() | 1;  // never 0
    scene.shape_count = static_cast<int>(rng.uniform_int(12, 26));
    for (int v = 0; v < per_group; ++v) {
      ImageSpec spec;
      spec.scene = scene;
      spec.view_seed = rng.next_u64() | 1;
      // Vary the shot difficulty: some views are near-duplicates, some are
      // strong viewpoint changes — like the real Kentucky set, where a few
      // views of each object are genuinely hard to match.
      const double strength = rng.uniform(0.5, max_view_strength);
      spec.perturbation.max_rotation_rad *= strength;
      spec.perturbation.max_scale_delta *= strength;
      spec.perturbation.max_translate_frac *= strength;
      spec.perturbation.max_gain_delta *= strength;
      spec.perturbation.max_bias *= strength;
      spec.perturbation.noise_stddev *= std::min(strength, 2.0);
      spec.width = width;
      spec.height = height;
      spec.group = static_cast<std::size_t>(g);
      set.groups[static_cast<std::size_t>(g)].push_back(set.images.size());
      set.images.push_back(spec);
    }
  }
  return set;
}

Imageset make_disaster_like(int n_images, int similar_count, int width,
                            int height, std::uint64_t seed) {
  util::Rng rng(seed);
  Imageset set;
  const int unique = n_images - similar_count;
  for (int i = 0; i < unique; ++i) {
    ImageSpec spec;
    spec.scene.seed = rng.next_u64() | 1;
    spec.scene.shape_count = static_cast<int>(rng.uniform_int(12, 26));
    spec.view_seed = rng.next_u64() | 1;
    spec.width = width;
    spec.height = height;
    spec.group = static_cast<std::size_t>(i);
    set.groups.push_back({set.images.size()});
    set.images.push_back(spec);
  }
  // Extra views of randomly chosen earlier images: the in-batch redundancy.
  // Mild perturbation keeps their pairwise similarity high.
  img::ViewPerturbation mild;
  mild.max_rotation_rad = 0.03;
  mild.max_scale_delta = 0.02;
  mild.max_translate_frac = 0.015;
  mild.max_gain_delta = 0.06;
  mild.max_bias = 5.0;
  mild.noise_stddev = 1.5;
  for (int i = 0; i < similar_count; ++i) {
    const std::size_t target = rng.index(static_cast<std::size_t>(unique));
    ImageSpec spec = set.images[set.groups[target].front()];
    spec.view_seed = rng.next_u64() | 1;
    spec.perturbation = mild;
    set.groups[target].push_back(set.images.size());
    set.images.push_back(spec);
  }
  // Shuffle so similar images are interleaved through the batch, then
  // rebuild the group index.
  rng.shuffle(set.images);
  set.groups.clear();
  std::vector<std::size_t> group_of;
  for (std::size_t i = 0; i < set.images.size(); ++i) {
    const std::size_t g = set.images[i].group;
    if (set.groups.size() <= g) set.groups.resize(g + 1);
    set.groups[g].push_back(i);
  }
  return set;
}

Imageset make_paris_like(int n_images, int n_locations, const GeoBox& box,
                         int width, int height, std::uint64_t seed) {
  util::Rng rng(seed);
  Imageset set;
  // Locations with Pareto popularity: a few hotspots hold most images.
  struct Location {
    idx::GeoTag geo;
    double weight;
    // A location hosts several distinct subjects (scenes): photos taken at
    // the same spot are not all of the same thing, so only a fraction of
    // same-location images are similar — as in the real Flickr data, where
    // deduplication removes part, not all, of a dense location's images.
    std::vector<img::SceneSpec> scenes;
  };
  std::vector<Location> locations;
  locations.reserve(static_cast<std::size_t>(n_locations));
  double total_weight = 0;
  for (int l = 0; l < n_locations; ++l) {
    Location loc;
    loc.geo.lon = rng.uniform(box.lon_min, box.lon_max);
    loc.geo.lat = rng.uniform(box.lat_min, box.lat_max);
    loc.geo.valid = true;
    loc.weight = rng.pareto(1.0, 1.1);  // heavy tail
    const int scene_count = static_cast<int>(rng.uniform_int(1, 4));
    for (int s = 0; s < scene_count; ++s) {
      img::SceneSpec scene;
      scene.seed = rng.next_u64() | 1;
      scene.shape_count = static_cast<int>(rng.uniform_int(12, 26));
      loc.scenes.push_back(scene);
    }
    total_weight += loc.weight;
    locations.push_back(loc);
  }
  // Cumulative weights for sampling.
  std::vector<double> cumulative;
  cumulative.reserve(locations.size());
  double acc = 0;
  for (const auto& loc : locations) {
    acc += loc.weight / total_weight;
    cumulative.push_back(acc);
  }
  set.groups.resize(locations.size());
  for (int i = 0; i < n_images; ++i) {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    const auto li = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumulative.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     locations.size() - 1)));
    ImageSpec spec;
    spec.scene = locations[li].scenes[rng.index(locations[li].scenes.size())];
    spec.view_seed = rng.next_u64() | 1;
    spec.width = width;
    spec.height = height;
    spec.geo = locations[li].geo;
    spec.group = li;
    set.groups[li].push_back(set.images.size());
    set.images.push_back(spec);
  }
  return set;
}

Imageset make_burst_like(int n_bursts, int shots_per_burst, int width,
                         int height, std::uint64_t seed) {
  util::Rng rng(seed);
  Imageset set;
  set.groups.resize(static_cast<std::size_t>(n_bursts));
  img::ViewPerturbation burst;  // hand shake + sensor noise only
  burst.max_rotation_rad = 0.008;
  burst.max_scale_delta = 0.004;
  burst.max_translate_frac = 0.004;
  burst.max_gain_delta = 0.02;
  burst.max_bias = 2.0;
  burst.noise_stddev = 2.0;
  for (int b = 0; b < n_bursts; ++b) {
    img::SceneSpec scene;
    scene.seed = rng.next_u64() | 1;
    scene.shape_count = static_cast<int>(rng.uniform_int(12, 26));
    for (int s = 0; s < shots_per_burst; ++s) {
      ImageSpec spec;
      spec.scene = scene;
      spec.view_seed = rng.next_u64() | 1;
      spec.perturbation = burst;
      spec.width = width;
      spec.height = height;
      spec.group = static_cast<std::size_t>(b);
      set.groups[static_cast<std::size_t>(b)].push_back(set.images.size());
      set.images.push_back(spec);
    }
  }
  return set;
}

ImageSpec make_near_duplicate(const ImageSpec& base, std::uint64_t salt) {
  ImageSpec dup = base;
  std::uint64_t h = base.view_seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  dup.view_seed = util::splitmix64(h) | 1;
  // Barely perturbed: similarity with `base` comfortably exceeds the
  // paper's 0.3 bar for seeded redundant images.
  dup.perturbation.max_rotation_rad = 0.015;
  dup.perturbation.max_scale_delta = 0.01;
  dup.perturbation.max_translate_frac = 0.008;
  dup.perturbation.max_gain_delta = 0.04;
  dup.perturbation.max_bias = 3.0;
  dup.perturbation.noise_stddev = 1.0;
  return dup;
}

}  // namespace bees::wl
