// The three Energy-Aware Adaptive Schemes (EAAS) of the paper, §III:
//   EAC (adaptive bitmap compression, AFE):  C  = 0.4 - 0.4 * Ebat
//   EDR (energy-defined redundancy, ARD):    T  = 0.013 + 0.006 * Ebat
//   SSMM edge threshold (ARD, in-batch):     Tw = 0.013 + 0.006 * Ebat
//   EAU (adaptive resolution upload, AIU):   Cr = 0.8 - 0.8 * Ebat
// plus the fixed quality-compression proportion of 0.85.
//
// Ebat is the remaining battery fraction in [0, 1].  When adaptation is
// disabled (the BEES-EA baseline), every knob is pinned at its full-energy
// value.
#pragma once

#include <algorithm>

namespace bees::energy::adapt {

/// EAC: bitmap compression proportion before feature extraction.
inline double eac_compression(double ebat) noexcept {
  ebat = std::clamp(ebat, 0.0, 1.0);
  return std::clamp(0.4 - 0.4 * ebat, 0.0, 0.4);
}

/// EDR: cross-batch redundancy similarity threshold T.
inline double edr_threshold(double ebat) noexcept {
  ebat = std::clamp(ebat, 0.0, 1.0);
  return 0.013 + 0.006 * ebat;
}

/// SSMM edge-cut threshold Tw (the paper reuses the EDR parameters).
inline double ssmm_tw(double ebat) noexcept { return edr_threshold(ebat); }

/// EAU: resolution compression proportion before upload.
inline double eau_resolution(double ebat) noexcept {
  ebat = std::clamp(ebat, 0.0, 1.0);
  return std::clamp(0.8 - 0.8 * ebat, 0.0, 0.8);
}

/// The paper's fixed quality-compression proportion (JPEG-style), chosen at
/// the knee of the SSIM curve (Fig. 5a).
inline constexpr double kQualityProportion = 0.85;

/// Knob values used by one upload round.  `from_battery` applies the
/// adaptive laws; `full_energy` pins the BEES-EA (adaptation-off) values.
struct Knobs {
  double bitmap_compression = 0.0;   ///< C  (AFE)
  double redundancy_threshold = 0.019;  ///< T  (CBRD)
  double ssmm_threshold = 0.019;        ///< Tw (IBRD)
  double resolution_compression = 0.0;  ///< Cr (AIU)
  double quality_proportion = kQualityProportion;

  static Knobs from_battery(double ebat) noexcept {
    Knobs k;
    k.bitmap_compression = eac_compression(ebat);
    k.redundancy_threshold = edr_threshold(ebat);
    k.ssmm_threshold = ssmm_tw(ebat);
    k.resolution_compression = eau_resolution(ebat);
    return k;
  }

  static Knobs full_energy() noexcept { return from_battery(1.0); }
};

}  // namespace bees::energy::adapt
