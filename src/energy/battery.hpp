// Smartphone battery model.  The paper's prototype phone carries a
// 3150 mAh / 3.8 V battery; its remaining fraction Ebat is the input to all
// three energy-aware adaptive schemes.
#pragma once

#include <stdexcept>

namespace bees::energy {

/// Joule-accounted battery.  Drains saturate at empty (a phone cannot
/// consume energy it does not have); the simulation driver checks
/// depleted() to stop a phone.
class Battery {
 public:
  /// The paper's device: 3150 mAh * 3.8 V * 3.6 = 43,092 J.
  static constexpr double kDefaultCapacityJ = 3150.0 * 3.8 * 3.6;

  explicit Battery(double capacity_j = kDefaultCapacityJ);

  /// Consumes `joules` (>= 0), clamping at empty.  Returns the energy
  /// actually drawn (less than requested only when the battery runs out).
  double drain(double joules);

  double capacity_j() const noexcept { return capacity_j_; }
  double remaining_j() const noexcept { return remaining_j_; }
  /// Remaining fraction Ebat in [0, 1] — the adaptive schemes' input.
  double fraction() const noexcept { return remaining_j_ / capacity_j_; }
  bool depleted() const noexcept { return remaining_j_ <= 0.0; }

  void recharge_full() noexcept { remaining_j_ = capacity_j_; }

 private:
  double capacity_j_;
  double remaining_j_;
};

}  // namespace bees::energy
