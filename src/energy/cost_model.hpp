// Analytic smartphone energy/time cost model (the substitution for the
// paper's on-device power measurements; see DESIGN.md §2).  Costs are
// first-order resource-proportional:
//   - CPU: joules and seconds proportional to the arithmetic work counted
//     by the extractors/matchers themselves,
//   - radio: TX/RX power times airtime at the channel's current bitrate,
//   - baseline: idle + screen power for elapsed wall-clock time (the
//     Fig. 9 protocol keeps the screen always bright).
//
// Byte quantities passed in are wire bytes; the core layer scales image
// payloads onto paper-sized images (~700 KB average originals) before
// calling in, so absolute airtime/energy land in the paper's regime while
// every ratio is preserved.
#pragma once

#include <cstdint>

namespace bees::energy {

struct CostModel {
  /// CPU throughput for the abstract op count (ops/second).  Calibrated so
  /// ORB extraction of one image costs a few hundred milliseconds, matching
  /// phone-class cores.
  double cpu_ops_per_second = 2.5e7;
  /// Active CPU power draw (W) while computing.
  double cpu_power_w = 2.5;
  /// WiFi transmit and receive power (W).
  double tx_power_w = 1.2;
  double rx_power_w = 0.9;
  /// Baseline draw with the screen on (W), per the Fig. 9 protocol.
  double idle_power_w = 0.8;

  double compute_seconds(std::uint64_t ops) const noexcept {
    return static_cast<double>(ops) / cpu_ops_per_second;
  }
  double compute_energy(std::uint64_t ops) const noexcept {
    return compute_seconds(ops) * cpu_power_w;
  }
  /// Airtime for `bytes` at `bitrate_bps` (> 0).
  double tx_seconds(double bytes, double bitrate_bps) const noexcept {
    return bytes * 8.0 / bitrate_bps;
  }
  double tx_energy(double bytes, double bitrate_bps) const noexcept {
    return tx_seconds(bytes, bitrate_bps) * tx_power_w;
  }
  double rx_energy(double bytes, double bitrate_bps) const noexcept {
    return tx_seconds(bytes, bitrate_bps) * rx_power_w;
  }
  double idle_energy(double seconds) const noexcept {
    return seconds * idle_power_w;
  }
};

/// Itemized energy spent by one client action or batch; the Fig. 8
/// breakdown reports these buckets.
struct EnergyBreakdown {
  double extraction_j = 0.0;      ///< Feature extraction CPU.
  double other_compute_j = 0.0;   ///< Compression, IBRD graph, codec CPU.
  double feature_tx_j = 0.0;      ///< Uploading feature sets.
  double image_tx_j = 0.0;        ///< Uploading image payloads.
  double retransmit_tx_j = 0.0;   ///< Airtime wasted on lost / timed-out
                                  ///< attempts (transport retries).
  double rx_j = 0.0;              ///< Query responses / thumbnail feedback.
  double idle_j = 0.0;            ///< Baseline over elapsed time.

  double total() const noexcept {
    return extraction_j + other_compute_j + feature_tx_j + image_tx_j +
           retransmit_tx_j + rx_j + idle_j;
  }
  /// Total excluding the baseline draw — the "scheme overhead" of Fig. 7.
  double active_total() const noexcept { return total() - idle_j; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other) noexcept {
    extraction_j += other.extraction_j;
    other_compute_j += other.other_compute_j;
    feature_tx_j += other.feature_tx_j;
    image_tx_j += other.image_tx_j;
    retransmit_tx_j += other.retransmit_tx_j;
    rx_j += other.rx_j;
    idle_j += other.idle_j;
    return *this;
  }
};

}  // namespace bees::energy
