#include "energy/battery.hpp"

#include <algorithm>

namespace bees::energy {

Battery::Battery(double capacity_j)
    : capacity_j_(capacity_j), remaining_j_(capacity_j) {
  if (capacity_j <= 0.0) {
    throw std::invalid_argument("Battery: capacity must be positive");
  }
}

double Battery::drain(double joules) {
  joules = std::max(joules, 0.0);
  const double drawn = std::min(joules, remaining_j_);
  remaining_j_ -= drawn;
  return drawn;
}

}  // namespace bees::energy
