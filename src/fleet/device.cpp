#include "fleet/device.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "fleet/client.hpp"
#include "index/serialize.hpp"
#include "net/protocol.hpp"
#include "util/byte_io.hpp"

namespace bees::fleet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Salt spacing for the per-device forked RNG streams.
constexpr std::uint64_t kSaltsPerDevice = 4;

std::uint64_t device_salt(int id, std::uint64_t which) noexcept {
  return 0x1000 + static_cast<std::uint64_t>(id) * kSaltsPerDevice + which;
}

}  // namespace

Device::Device(const Config& config, const wl::Imageset& set)
    : config_(config),
      set_(set),
      battery_(energy::Battery::kDefaultCapacityJ) {
  util::Rng root(config_.fleet_seed);
  rng_ = root.fork(device_salt(config_.id, 0));
  backoff_rng_ = root.fork(device_salt(config_.id, 1));
  net::ChannelParams params = config_.channel;
  params.seed = root.fork(device_salt(config_.id, 2)).next_u64();
  channel_ = net::Channel(params);
  const double fraction = std::clamp(config_.battery_fraction, 0.0, 1.0);
  battery_.drain(battery_.capacity_j() * (1.0 - fraction));
  if (config_.closed_loop) {
    schedule_next_capture(0.0);
  } else {
    next_capture_s_ = config_.arrivals.next_after(0.0, rng_);
  }
}

void Device::deliver(Reply reply, double reaction_s) {
  inbox_.emplace_back(std::move(reply), reaction_s);
}

void Device::advance(double t0, double t1, wl::ImageStore& store,
                     std::vector<ServerArrival>& out) {
  // Baseline draw covers the whole epoch regardless of activity (Fig. 9
  // keeps the screen always on).
  stats_.energy.idle_j += battery_.drain(config_.cost.idle_energy(t1 - t0));

  // React to barrier-delivered replies in deterministic (time, seq) order.
  std::sort(inbox_.begin(), inbox_.end(),
            [](const std::pair<Reply, double>& a,
               const std::pair<Reply, double>& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first.seq < b.first.seq;
            });
  std::vector<std::pair<Reply, double>> inbox;
  inbox.swap(inbox_);
  for (auto& [reply, reaction_s] : inbox) {
    process_reply(reply, reaction_s, store);
  }

  // Fire captures and transmissions in virtual-time order.  Every event
  // *initiated* before t1 runs now; its effects (airtime, arrivals) may
  // land beyond t1, which the later barriers absorb.
  while (true) {
    const double t_send =
        send_queue_.empty() ? kInf : send_queue_.begin()->first.first;
    const double t = std::min(next_capture_s_, t_send);
    if (t >= t1) break;
    if (next_capture_s_ <= t_send) {
      capture(next_capture_s_, store);
    } else {
      transmit(send_queue_.begin()->first, out);
    }
  }
}

void Device::process_reply(const Reply& reply, double reaction_s,
                           wl::ImageStore& store) {
  auto it = in_flight_.find(reply.seq);
  if (it == in_flight_.end()) return;  // defensive; barriers reply once
  Op op = std::move(it->second);
  in_flight_.erase(it);

  // Receive the reply payload over the radio from the reaction time on.
  if (channel_.now() < reaction_s) channel_.advance(reaction_s - channel_.now());
  const double bytes = static_cast<double>(reply.payload.size());
  const double rx_s = channel_.transfer(bytes);
  stats_.energy.rx_j += battery_.drain(config_.cost.rx_power_w * rx_s);
  stats_.rx_bytes += bytes;

  if (reply.shed) {
    if (op.attempts >= config_.retry.max_attempts) {
      drop_op(op);
      return;
    }
    const double wait =
        config_.retry.backoff_before(op.attempts, backoff_rng_);
    stats_.backoff_s += wait;
    ++stats_.shed_retries;
    op.request = reply.request;  // the barrier hands the envelope back
    enqueue(std::move(op), channel_.now() + wait);
    return;
  }

  if (classify_reply(reply.payload) == ReplyStatus::kError) {
    ++stats_.terminal_errors;
    chain_done();
    return;
  }
  if (op.kind == OpKind::kQuery) {
    on_query_reply(std::move(op), reply, store);
  } else {
    chain_done();
  }
}

void Device::on_query_reply(Op op, const Reply& reply,
                            wl::ImageStore& store) {
  net::BatchQueryResponse response;
  try {
    const net::Envelope env = net::open_envelope(reply.payload);
    response = net::decode_batch_query_response(env.payload);
  } catch (const util::DecodeError&) {
    ++stats_.terminal_errors;
    chain_done();
    return;
  }

  const double now = channel_.now();
  double compute_s = 0.0;
  std::size_t n_uploads = 0;
  const std::size_t n =
      std::min(response.verdicts.size(), op.image_ids.size());
  for (std::size_t i = 0; i < n; ++i) {
    // The server's CBRD verdict: anything scoring above the EDR threshold
    // already exists in the situation index and is not uploaded.
    if (response.verdicts[i].max_similarity > op.knobs.redundancy_threshold) {
      ++stats_.redundant_images;
      continue;
    }
    ++stats_.unique_images;
    const std::size_t image = op.image_ids[i];
    const wl::ImageSpec& spec = set_.images[image];
    const wl::EncodedImage enc = store.encoded(
        spec, op.knobs.resolution_compression, op.knobs.quality_proportion);
    compute_s += config_.cost.compute_seconds(enc.ops);
    stats_.energy.other_compute_j +=
        battery_.drain(config_.cost.compute_energy(enc.ops));
    const feat::BinaryFeatures& features =
        store.orb(spec, op.knobs.bitmap_compression);
    Op upload;
    upload.kind = OpKind::kUpload;
    upload.seq = next_seq_++;
    upload.enqueue_s = now;
    upload.wire_bytes =
        static_cast<double>(enc.bytes) * config_.image_byte_scale;
    upload.n_images = 1;
    upload.image_ids = {image};
    upload.knobs = op.knobs;
    upload.request = net::encode_image_upload(features, upload.wire_bytes,
                                              spec.geo, /*thumbnail_bytes=*/0.0);
    ++stats_.uploads;
    ++n_uploads;
    enqueue(std::move(upload), now + compute_s);
  }
  chain_open_ += n_uploads;
  chain_done();  // the query itself is resolved
}

void Device::stop_capturing() noexcept {
  capturing_ = false;
  next_capture_s_ = kInf;
}

void Device::capture(double t, wl::ImageStore& store) {
  if (!capturing_) {
    next_capture_s_ = kInf;
    return;
  }
  if (battery_.depleted()) {
    // A dead phone captures nothing more; in-flight work may still finish.
    stats_.depleted = true;
    next_capture_s_ = kInf;
    return;
  }
  const energy::adapt::Knobs knobs =
      config_.adaptive ? energy::adapt::Knobs::from_battery(battery_.fraction())
                       : energy::adapt::Knobs::full_energy();

  const int batch = std::max(1, config_.batch_size);
  std::vector<std::size_t> ids(static_cast<std::size_t>(batch));
  for (auto& id : ids) id = rng_.index(set_.images.size());

  std::vector<const feat::BinaryFeatures*> features(ids.size(), nullptr);
  std::vector<double> fbytes(ids.size(), 0.0);
  double wire = 0.0;
  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const feat::BinaryFeatures& f =
        store.orb(set_.images[ids[i]], knobs.bitmap_compression);
    features[i] = &f;
    ops += f.stats.ops;
    fbytes[i] = static_cast<double>(idx::serialize_binary(f).size());
    wire += fbytes[i];
  }
  stats_.energy.extraction_j += battery_.drain(config_.cost.compute_energy(ops));

  Op op;
  op.kind = OpKind::kQuery;
  op.seq = next_seq_++;
  op.enqueue_s = t;
  op.wire_bytes = wire;
  op.n_images = batch;
  op.image_ids = std::move(ids);
  op.knobs = knobs;
  op.request = net::encode_batch_query(features, fbytes, config_.top_k);
  ++stats_.captures;
  ++stats_.queries;
  enqueue(std::move(op), t + config_.cost.compute_seconds(ops));

  if (config_.closed_loop) {
    chain_open_ = 1;
    next_capture_s_ = kInf;
  } else {
    next_capture_s_ = config_.arrivals.next_after(t, rng_);
  }
}

void Device::transmit(std::pair<double, std::uint32_t> key,
                      std::vector<ServerArrival>& out) {
  auto node = send_queue_.extract(key);
  Op op = std::move(node.mapped());
  if (channel_.now() < key.first) channel_.advance(key.first - channel_.now());

  const net::SendOutcome outcome =
      channel_.send(op.wire_bytes, config_.retry.timeout_s);
  ++op.attempts;
  ++stats_.attempts;
  const double tx_j =
      battery_.drain(config_.cost.tx_power_w * outcome.seconds);

  if (outcome.delivered) {
    if (op.kind == OpKind::kQuery) {
      stats_.energy.feature_tx_j += tx_j;
    } else {
      stats_.energy.image_tx_j += tx_j;
    }
    ServerArrival arrival;
    arrival.arrival_s = channel_.now();
    arrival.device = config_.id;
    arrival.seq = op.seq;
    arrival.kind = op.kind;
    arrival.request = std::move(op.request);
    arrival.wire_bytes = op.wire_bytes;
    arrival.n_images = op.n_images;
    arrival.image_ids = op.image_ids;
    arrival.enqueue_s = op.enqueue_s;
    arrival.attempts = op.attempts;
    arrival.redundancy_threshold = op.knobs.redundancy_threshold;
    out.push_back(std::move(arrival));
    in_flight_.emplace(op.seq, std::move(op));
    return;
  }

  stats_.energy.retransmit_tx_j += tx_j;
  stats_.retransmitted_bytes += outcome.sent_bytes;
  if (op.attempts >= config_.retry.max_attempts) {
    drop_op(op);
    return;
  }
  ++stats_.loss_retries;
  const double wait = config_.retry.backoff_before(op.attempts, backoff_rng_);
  stats_.backoff_s += wait;
  enqueue(std::move(op), channel_.now() + wait);
}

void Device::enqueue(Op op, double ready_s) {
  send_queue_.emplace(std::make_pair(ready_s, op.seq), std::move(op));
}

void Device::drop_op(const Op& op) {
  (void)op;
  ++stats_.gave_up;
  chain_done();
}

void Device::chain_done() {
  if (!config_.closed_loop) return;
  if (chain_open_ > 0) --chain_open_;
  if (chain_open_ == 0) schedule_next_capture(channel_.now());
}

void Device::schedule_next_capture(double t) {
  if (!capturing_) {
    next_capture_s_ = kInf;
    return;
  }
  const double rate = 1.0 / std::max(config_.think_s, 1e-9);
  next_capture_s_ = t + rng_.exponential(rate);
}

}  // namespace bees::fleet
