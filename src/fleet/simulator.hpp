// The fleet simulator: N simulated phones driving the serving layer under
// a configurable load shape, producing a deterministic SLO report.
//
// Execution is an epoch-barrier parallel discrete-event simulation.
// Virtual time advances in fixed epochs of `epoch_s`:
//
//   Phase A (parallel): devices are partitioned into static contiguous
//   chunks (one per worker, each with a private wl::ImageStore) and each
//   device advances through the epoch independently — reacting to replies
//   delivered at the previous barrier, capturing batches, extracting
//   features under its battery-driven knobs, and transmitting over its
//   private lossy channel.  Devices share no mutable state in this phase,
//   so the outcome is a pure function of the inputs regardless of worker
//   count or scheduling.
//
//   Barrier (sequential): all attempts delivered during the epoch are
//   sorted by (arrival time, device, seq) and resolved in that order.
//   Admission and queueing happen in *virtual* time against the
//   QueueModel (mirroring serve::Cluster's gate: c = server_threads
//   servers, shed at queue_depth in flight) — the real cluster's gate is
//   disabled, because real thread scheduling would make shed decisions
//   nondeterministic.  Admitted requests then execute against the real
//   serve::Cluster for their replies: contiguous runs of (read-only)
//   queries run in parallel across the pool, uploads apply serially in
//   arrival order, so every query sees exactly the index state its
//   virtual-time position implies.  Latency (virtual completion − virtual
//   enqueue) is recorded here, sequentially, in sorted order.
//
// A device reacts to a reply at max(completion time, start of the epoch
// after the barrier that resolved it) — a conservative quantization of at
// most one epoch, applied identically for every worker count.
//
// The report (FleetResult::report) contains only virtual-time quantities
// and is byte-identical for a fixed seed across runs and worker counts;
// real wall-clock measurements sit beside it in FleetResult.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/report.hpp"
#include "net/transport.hpp"

namespace bees::fleet {

/// A half-open range of epochs [begin, end) during which something is
/// broken: a relay's backhaul partitioned, or a relay down entirely.
struct EpochWindow {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  int target = -1;  ///< Relay index; -1 = every relay.
};

/// Kill the primary of `shard` at the start of epoch `epoch` (failover to
/// its most-caught-up follower; requires replicas >= 1).
struct PrimaryKill {
  std::uint64_t epoch = 0;
  int shard = 0;
};

struct FleetOptions {
  std::uint64_t seed = 42;
  int devices = 64;
  /// Offered-load window (virtual seconds); in-flight work then drains.
  double duration_s = 120.0;
  double epoch_s = 1.0;

  // Load shape.
  bool closed_loop = false;   ///< Think-time clients vs. open-loop Poisson.
  double rate_hz = 0.05;      ///< Per-device capture rate (open loop).
  double think_s = 5.0;       ///< Mean think time between chains (closed).
  double spike_start_s = -1.0;  ///< Disaster spike start; < 0 disables.
  double spike_duration_s = 30.0;
  double spike_multiplier = 10.0;
  int batch = 4;  ///< Images per capture.
  int top_k = 4;

  // Shared imageset (paris-like: heavy-tailed location popularity).
  int set_images = 96;
  int set_locations = 12;
  int width = 96;
  int height = 72;
  /// Fraction of the imageset pre-seeded into the situation index.
  double seed_fraction = 0.25;

  // Serving layer.
  int shards = 1;
  int server_threads = 1;     ///< Virtual servers; real cluster threads.
  std::size_t queue_depth = 64;  ///< Admission bound (virtual gate).
  /// Coalescing window: admitted query runs are grouped into batches of at
  /// most this many requests *in virtual arrival order* and served through
  /// Cluster::handle_coalesced, so each batch shares one fan-out.  The
  /// grouping is deterministic (a pure function of the virtual timeline,
  /// never of worker scheduling) and replies are byte-identical to
  /// batch_window = 1, so only the report's `batching` stats and config
  /// echo differ.
  int batch_window = 1;
  /// Virtual service time: base + per_image * images covered.
  double service_base_s = 0.02;
  double service_per_image_s = 0.02;

  // Radio (per device; each device forks its own channel seed).
  double bitrate_kbps = 256.0;
  double loss = 0.0;
  net::RetryPolicy retry;

  // Device energy state.
  bool adaptive = true;
  double battery_fraction = 1.0;

  // Resilience scenario (DESIGN §14).  Kills fire at epoch starts and
  // relay traffic is accounted in virtual arrival order, so the report —
  // including its `resilience` section — stays byte-identical across
  // worker counts for a fixed seed and schedule.
  int replicas = 0;  ///< Standby followers per shard (0 = unreplicated).
  int relays = 0;    ///< Edge relays between devices and core (0 = direct).
  std::uint32_t relay_chunk_size = 4096;  ///< CARE chunking interval.
  /// Local-hop service time a relay adds when it answers for the core
  /// (ack of a held upload, relay-unavailable rejection).
  double relay_service_s = 0.005;
  std::vector<EpochWindow> partitions;     ///< Backhaul down; relays hold.
  std::vector<EpochWindow> relay_outages;  ///< Relay down; devices retry.
  std::vector<PrimaryKill> primary_kills;

  /// Phase-A worker threads (0 = hardware concurrency).  Never affects
  /// the report bytes.
  int workers = 1;

  // SLO targets for the report's verdict (see SloVerdict).
  double slo_p99_s = 0.0;
  double slo_max_shed_rate = -1.0;
};

struct FleetResult {
  FleetReport report;
  double wall_seconds = 0.0;        ///< Whole run, real time.
  double serve_wall_seconds = 0.0;  ///< Real cluster execution, real time.
  std::size_t real_handles = 0;     ///< Requests the real cluster served.
};

/// Runs the fleet simulation.  Throws std::invalid_argument on nonsense
/// options (devices < 1, duration <= 0, epoch <= 0, ...).
FleetResult run_fleet(const FleetOptions& options);

}  // namespace bees::fleet
