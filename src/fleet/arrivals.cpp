#include "fleet/arrivals.hpp"

#include <algorithm>
#include <limits>

namespace bees::fleet {

double ArrivalProcess::rate_at(double t) const noexcept {
  if (spike_start_s >= 0.0 && t >= spike_start_s &&
      t < spike_start_s + spike_duration_s) {
    return steady_rate_hz * spike_multiplier;
  }
  return steady_rate_hz;
}

double ArrivalProcess::peak_rate() const noexcept {
  const double spike =
      spike_start_s >= 0.0 && spike_duration_s > 0.0 ? spike_multiplier : 1.0;
  return steady_rate_hz * std::max(1.0, spike);
}

double ArrivalProcess::next_after(double t, util::Rng& rng) const noexcept {
  const double peak = peak_rate();
  if (peak <= 0.0) return std::numeric_limits<double>::infinity();
  // Lewis-Shedler thinning: candidate gaps at the envelope rate, each kept
  // with probability rate(t)/peak.  Bounded iterations as a safety net for
  // degenerate parameters (e.g. multiplier ~ 0 outside a spike that never
  // comes): the process then effectively stops.
  for (int draws = 0; draws < 100000; ++draws) {
    t += rng.exponential(peak);
    if (rng.next_double() * peak < rate_at(t)) return t;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace bees::fleet
