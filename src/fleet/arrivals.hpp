// Capture-arrival processes for simulated devices.  Open-loop devices
// photograph on a piecewise-constant-rate Poisson process: a steady-state
// rate plus an optional "disaster spike" window during which the rate is
// multiplied (the crowd-scale burst that crowds a damaged uplink —
// CARE / Choudhuri et al.'s regime).  Closed-loop devices instead wait a
// think time after each completed round; both draw exclusively from the
// caller's seeded Rng, so a device's whole schedule is a pure function of
// (seed, device id).
#pragma once

#include "util/rng.hpp"

namespace bees::fleet {

/// Piecewise-constant-rate Poisson arrivals (captures per second).
struct ArrivalProcess {
  double steady_rate_hz = 0.05;
  /// Spike window [spike_start_s, spike_start_s + spike_duration_s) during
  /// which the rate is steady_rate_hz * spike_multiplier.  A negative
  /// start disables the spike.
  double spike_start_s = -1.0;
  double spike_duration_s = 0.0;
  double spike_multiplier = 1.0;

  /// Instantaneous rate at time `t`.
  double rate_at(double t) const noexcept;
  /// The peak rate over all t (the thinning envelope).
  double peak_rate() const noexcept;
  /// Next arrival strictly after `t`, by thinning against peak_rate().
  /// Returns an arbitrarily large time if the rate is zero everywhere.
  double next_after(double t, util::Rng& rng) const noexcept;
};

}  // namespace bees::fleet
