#include "fleet/report.hpp"

#include "obs/json.hpp"

namespace bees::fleet {

using obs::json_number;

namespace {

std::string json_bool(bool b) { return b ? "true" : "false"; }

std::string json_u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

LatencySummary LatencySummary::from(const obs::HistogramSnapshot& h) {
  LatencySummary s;
  s.count = h.count;
  s.mean_s = h.mean();
  s.max_s = h.max;
  s.p50_s = h.quantile(0.50);
  s.p90_s = h.quantile(0.90);
  s.p99_s = h.quantile(0.99);
  return s;
}

std::string LatencySummary::to_json() const {
  return "{\"count\": " + json_u64(count) +
         ", \"mean_s\": " + json_number(mean_s) +
         ", \"max_s\": " + json_number(max_s) +
         ", \"p50_s\": " + json_number(p50_s) +
         ", \"p90_s\": " + json_number(p90_s) +
         ", \"p99_s\": " + json_number(p99_s) + "}";
}

std::string ConfigEcho::to_json() const {
  return "{\"seed\": " + json_u64(seed) +
         ", \"devices\": " + std::to_string(devices) +
         ", \"duration_s\": " + json_number(duration_s) +
         ", \"epoch_s\": " + json_number(epoch_s) +
         ", \"mode\": " +
         (closed_loop ? std::string("\"closed\"") : std::string("\"open\"")) +
         ", \"rate_hz\": " + json_number(rate_hz) +
         ", \"think_s\": " + json_number(think_s) +
         ", \"spike_start_s\": " + json_number(spike_start_s) +
         ", \"spike_duration_s\": " + json_number(spike_duration_s) +
         ", \"spike_multiplier\": " + json_number(spike_multiplier) +
         ", \"batch\": " + std::to_string(batch) +
         ", \"shards\": " + std::to_string(shards) +
         ", \"server_threads\": " + std::to_string(server_threads) +
         ", \"queue_depth\": " + json_u64(queue_depth) +
         ", \"batch_window\": " + std::to_string(batch_window) +
         ", \"bitrate_kbps\": " + json_number(bitrate_kbps) +
         ", \"loss\": " + json_number(loss) +
         ", \"adaptive\": " + json_bool(adaptive) +
         ", \"battery_fraction\": " + json_number(battery_fraction) +
         ", \"replicas\": " + std::to_string(replicas) +
         ", \"relays\": " + std::to_string(relays) + "}";
}

std::string ResilienceStats::to_json() const {
  return "{\"failovers\": " + json_u64(failovers) +
         ", \"catch_ups\": " + json_u64(catch_ups) +
         ", \"live_standbys\": " + json_u64(live_standbys) +
         ", \"ship_records\": " + json_u64(ship_records) +
         ", \"ship_bytes\": " + json_u64(ship_bytes) +
         ", \"ship_lag_max\": " + json_u64(ship_lag_max) +
         ", \"relay_requests\": " + json_u64(relay_requests) +
         ", \"relay_ingress_bytes\": " + json_u64(relay_ingress_bytes) +
         ", \"relay_backhaul_bytes\": " + json_u64(relay_backhaul_bytes) +
         ", \"relay_dedup_chunks_hit\": " + json_u64(relay_dedup_chunks_hit) +
         ", \"relay_dedup_bytes_saved\": " + json_u64(relay_dedup_bytes_saved) +
         ", \"relay_held\": " + json_u64(relay_held) +
         ", \"relay_drained\": " + json_u64(relay_drained) +
         ", \"relay_queue_depth_max\": " + json_u64(relay_queue_depth_max) +
         ", \"relay_rejects\": " + json_u64(relay_rejects) + "}";
}

std::string Totals::to_json(double duration_s) const {
  const double throughput =
      duration_s > 0.0 ? static_cast<double>(served) / duration_s : 0.0;
  return "{\"captures\": " + json_u64(captures) +
         ", \"queries\": " + json_u64(queries) +
         ", \"uploads\": " + json_u64(uploads) +
         ", \"offered\": " + json_u64(offered) +
         ", \"served\": " + json_u64(served) +
         ", \"shed\": " + json_u64(shed) +
         ", \"shed_rate\": " + json_number(shed_rate()) +
         ", \"throughput_rps\": " + json_number(throughput) +
         ", \"attempts\": " + json_u64(attempts) +
         ", \"loss_retries\": " + json_u64(loss_retries) +
         ", \"shed_retries\": " + json_u64(shed_retries) +
         ", \"gave_up\": " + json_u64(gave_up) +
         ", \"terminal_errors\": " + json_u64(terminal_errors) +
         ", \"depleted_devices\": " + json_u64(depleted_devices) +
         ", \"feature_bytes\": " + json_number(feature_bytes) +
         ", \"image_bytes\": " + json_number(image_bytes) +
         ", \"shed_bytes\": " + json_number(shed_bytes) +
         ", \"retransmitted_bytes\": " + json_number(retransmitted_bytes) +
         ", \"rx_bytes\": " + json_number(rx_bytes) +
         ", \"backoff_s\": " + json_number(backoff_s) + "}";
}

std::string PrecisionInputs::to_json() const {
  return "{\"unique_images\": " + json_u64(unique_images) +
         ", \"redundant_images\": " + json_u64(redundant_images) +
         ", \"redundant_correct\": " + json_u64(redundant_correct) +
         ", \"redundant_wrong\": " + json_u64(redundant_wrong) +
         ", \"redundancy_precision\": " + json_number(precision()) + "}";
}

std::string BatchStats::to_json() const {
  return "{\"batches\": " + json_u64(batches) +
         ", \"batch_size_p50\": " + json_number(batch_size_p50) +
         ", \"batch_size_p99\": " + json_number(batch_size_p99) +
         ", \"coalesced_rps\": " + json_number(coalesced_rps) + "}";
}

std::string SloVerdict::to_json() const {
  return "{\"p99_target_s\": " + json_number(p99_target_s) +
         ", \"p99_s\": " + json_number(p99_s) +
         ", \"p99_ok\": " + json_bool(p99_ok) +
         ", \"max_shed_rate\": " + json_number(max_shed_rate) +
         ", \"shed_rate\": " + json_number(shed_rate) +
         ", \"shed_ok\": " + json_bool(shed_ok) +
         ", \"ok\": " + json_bool(ok()) + "}";
}

std::string FleetReport::to_json() const {
  std::string out = "{\n";
  out += "  \"loadgen\": " + config.to_json() + ",\n";
  out += "  \"totals\": " + totals.to_json(config.duration_s) + ",\n";
  out += "  \"latency\": {\"all\": " + latency_all.to_json() +
         ", \"query\": " + latency_query.to_json() +
         ", \"upload\": " + latency_upload.to_json() + "},\n";
  out += "  \"energy\": {\"extraction_j\": " +
         json_number(energy.extraction_j) +
         ", \"other_compute_j\": " + json_number(energy.other_compute_j) +
         ", \"feature_tx_j\": " + json_number(energy.feature_tx_j) +
         ", \"image_tx_j\": " + json_number(energy.image_tx_j) +
         ", \"retransmit_tx_j\": " + json_number(energy.retransmit_tx_j) +
         ", \"rx_j\": " + json_number(energy.rx_j) +
         ", \"idle_j\": " + json_number(energy.idle_j) +
         ", \"total_j\": " + json_number(energy.total()) +
         ", \"mean_battery_fraction\": " +
         json_number(mean_battery_fraction) + "},\n";
  out += "  \"precision_inputs\": " + precision.to_json() + ",\n";
  out += "  \"batching\": " + batching.to_json() + ",\n";
  out += "  \"resilience\": " + resilience.to_json() + ",\n";
  out += "  \"slo\": " + slo.to_json() + "\n";
  out += "}\n";
  return out;
}

}  // namespace bees::fleet
