#include "fleet/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloud/server.hpp"
#include "fleet/device.hpp"
#include "fleet/queue_model.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "relay/relay.hpp"
#include "replica/replication.hpp"
#include "serve/cluster.hpp"
#include "util/byte_io.hpp"
#include "util/thread_pool.hpp"
#include "workload/image_store.hpp"
#include "workload/imageset.hpp"

namespace bees::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void validate(const FleetOptions& o) {
  if (o.devices < 1) throw std::invalid_argument("fleet: devices < 1");
  if (o.duration_s <= 0.0) throw std::invalid_argument("fleet: duration <= 0");
  if (o.epoch_s <= 0.0) throw std::invalid_argument("fleet: epoch <= 0");
  if (o.batch < 1) throw std::invalid_argument("fleet: batch < 1");
  if (o.set_images < 1) throw std::invalid_argument("fleet: set_images < 1");
  if (o.shards < 1) throw std::invalid_argument("fleet: shards < 1");
  if (o.server_threads < 1) {
    throw std::invalid_argument("fleet: server_threads < 1");
  }
  if (o.queue_depth < 1) throw std::invalid_argument("fleet: queue_depth < 1");
  if (o.batch_window < 1) {
    throw std::invalid_argument("fleet: batch_window < 1");
  }
  if (o.bitrate_kbps <= 0.0) {
    throw std::invalid_argument("fleet: bitrate <= 0");
  }
  if (o.replicas < 0) throw std::invalid_argument("fleet: replicas < 0");
  if (o.relays < 0) throw std::invalid_argument("fleet: relays < 0");
  if (o.relay_chunk_size == 0) {
    throw std::invalid_argument("fleet: relay_chunk_size == 0");
  }
  if (o.relay_service_s < 0.0) {
    throw std::invalid_argument("fleet: relay_service_s < 0");
  }
  const auto check_windows = [&](const std::vector<EpochWindow>& windows,
                                 const char* what) {
    if (!windows.empty() && o.relays < 1) {
      throw std::invalid_argument(std::string("fleet: ") + what +
                                  " without relays");
    }
    for (const EpochWindow& w : windows) {
      if (w.begin >= w.end) {
        throw std::invalid_argument(std::string("fleet: empty ") + what +
                                    " window");
      }
      if (w.target < -1 || w.target >= o.relays) {
        throw std::invalid_argument(std::string("fleet: ") + what +
                                    " targets a missing relay");
      }
    }
  };
  check_windows(o.partitions, "partition");
  check_windows(o.relay_outages, "relay outage");
  for (const PrimaryKill& k : o.primary_kills) {
    if (o.replicas < 1) {
      throw std::invalid_argument("fleet: primary kill without replicas");
    }
    if (k.shard < 0 || k.shard >= o.shards) {
      throw std::invalid_argument("fleet: primary kill targets a missing shard");
    }
  }
}

/// Does any window in `windows` cover (relay, epoch)?
bool window_hits(const std::vector<EpochWindow>& windows, int relay,
                 std::uint64_t epoch) {
  for (const EpochWindow& w : windows) {
    if (epoch < w.begin || epoch >= w.end) continue;
    if (w.target == -1 || w.target == relay) return true;
  }
  return false;
}

/// A barrier-resolved reply waiting for its delivery epoch.
struct FutureReply {
  int device = 0;
  Reply reply;
  double reaction_s = 0.0;
};

}  // namespace

FleetResult run_fleet(const FleetOptions& o) {
  validate(o);
  const auto wall_start = Clock::now();
  const double E = o.epoch_s;

  // --- Shared world: imageset, serving cluster, ground truth. ---
  const wl::Imageset set =
      wl::make_paris_like(o.set_images, std::max(1, o.set_locations),
                          wl::GeoBox{}, o.width, o.height, o.seed ^ 0x5e7f1ee7ULL);

  serve::ClusterOptions copts;
  copts.shards = o.shards;
  copts.threads = o.server_threads;
  // The real gate stays out of the way: admission is resolved in virtual
  // time by the QueueModel, so real scheduling never decides a shed.
  copts.queue_depth = std::size_t{1} << 20;
  if (o.replicas > 0) {
    copts.backend_factory = replica::make_replicated_factory(o.replicas);
  }
  serve::Cluster cluster(copts);

  // Edge-relay tier (optional).  Relays are driven entirely by the virtual
  // clock: outage/partition windows are epoch ranges, holds drain at epoch
  // starts, and backhaul accounting happens in virtual arrival order
  // during the sequential barrier — never in phase A.
  std::unique_ptr<relay::RelayTier> relay_tier;
  if (o.relays > 0) {
    relay_tier =
        std::make_unique<relay::RelayTier>(o.relays, o.relay_chunk_size);
  }
  std::uint64_t relay_rejects = 0;

  // Global id -> ground-truth scene group, for precision accounting.
  std::unordered_map<idx::ImageId, std::size_t> gid_group;
  {
    wl::ImageStore setup_store;
    const auto n_seed = static_cast<std::size_t>(std::llround(
        std::clamp(o.seed_fraction, 0.0, 1.0) *
        static_cast<double>(set.images.size())));
    for (std::size_t i = 0; i < n_seed; ++i) {
      const feat::BinaryFeatures& f = setup_store.orb(set.images[i], 0.0);
      cloud::StoreInfo info;
      info.geo = set.images[i].geo;
      const idx::ImageId gid = cluster.store_binary(f, info);
      gid_group.emplace(gid, set.images[i].group);
    }
  }

  // --- The fleet. ---
  std::vector<std::unique_ptr<Device>> devices;
  devices.reserve(static_cast<std::size_t>(o.devices));
  for (int id = 0; id < o.devices; ++id) {
    Device::Config dc;
    dc.id = id;
    dc.fleet_seed = o.seed;
    dc.channel = net::ChannelParams::fixed(o.bitrate_kbps * 1000.0);
    dc.channel.loss_probability = o.loss;
    dc.retry = o.retry;
    dc.battery_fraction = o.battery_fraction;
    dc.adaptive = o.adaptive;
    dc.closed_loop = o.closed_loop;
    dc.think_s = o.think_s;
    dc.arrivals.steady_rate_hz = o.rate_hz;
    dc.arrivals.spike_start_s = o.spike_start_s;
    dc.arrivals.spike_duration_s = o.spike_duration_s;
    dc.arrivals.spike_multiplier = o.spike_multiplier;
    dc.batch_size = o.batch;
    dc.top_k = o.top_k;
    devices.push_back(std::make_unique<Device>(dc, set));
  }

  // --- Execution state. ---
  util::ThreadPool pool(o.workers < 0 ? 1
                                      : static_cast<std::size_t>(o.workers));
  const std::size_t n = devices.size();
  const std::size_t chunks = std::min(n, pool.thread_count());
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  // One private store per chunk; chunk boundaries are fixed for the whole
  // run, so each device always hits the same caches.
  std::vector<wl::ImageStore> stores(chunks);
  std::vector<std::vector<ServerArrival>> outs(n);

  QueueModel gate(o.server_threads, o.queue_depth);
  obs::MetricsRegistry metrics;
  metrics.declare_histogram("latency_all", obs::MetricsRegistry::latency_bounds());
  metrics.declare_histogram("latency_query",
                            obs::MetricsRegistry::latency_bounds());
  metrics.declare_histogram("latency_upload",
                            obs::MetricsRegistry::latency_bounds());
  const std::vector<std::uint8_t> shed_payload =
      net::encode_error(serve::kShedErrorMessage);
  // Relay-side replies: a retryable rejection (relay down, or a query that
  // needs the partitioned backhaul) and the local ack a relay gives for an
  // upload it parks (the device's chain completes; the core sees the bytes
  // at heal time).
  const std::vector<std::uint8_t> relay_reject_payload =
      net::encode_error(relay::kRelayUnavailableMessage);
  const std::vector<std::uint8_t> relay_ack_payload =
      net::encode(net::UploadAck{});
  constexpr std::uint64_t kNoGroup = ~std::uint64_t{0};

  std::vector<ServerArrival> pending;
  std::map<std::uint64_t, std::vector<FutureReply>> future_replies;

  Totals totals;
  PrecisionInputs prec;
  double serve_wall = 0.0;
  std::size_t real_handles = 0;
  /// Query-batch sizes actually issued, in virtual arrival order — a pure
  /// function of the admitted timeline, so the batching stats are as
  /// deterministic as everything else in the report.
  std::vector<std::size_t> batch_sizes;

  const auto schedule_delivery = [&](int device, Reply reply,
                                     double completion_s, std::uint64_t j) {
    // A device may observe a reply no earlier than its completion and no
    // earlier than the epoch after the barrier that resolved it.
    std::uint64_t m = j + 1;
    if (completion_s >= static_cast<double>(j + 1) * E) {
      m = std::max<std::uint64_t>(
          m, static_cast<std::uint64_t>(std::floor(completion_s / E)));
    }
    FutureReply fr;
    fr.device = device;
    fr.reply = std::move(reply);
    fr.reaction_s = std::max(completion_s, static_cast<double>(m) * E);
    future_replies[m].push_back(std::move(fr));
  };

  // Pushes every upload a relay held through the backhaul: CARE-accounted,
  // then applied to the cluster directly, in hold (FIFO) order.  Held
  // uploads bypass the admission gate — the relay owns the backhaul and
  // trickles its queue as background traffic; the device was acked at hold
  // time, so only the index (and the dedup ledger) changes here.
  const auto drain_relay = [&](relay::Relay& rl) {
    for (relay::HeldRequest& h : rl.take_held()) {
      rl.forward(h.request);
      const std::vector<std::uint8_t> reply = cluster.handle(h.request);
      ++real_handles;
      try {
        const net::Envelope env = net::open_envelope(reply);
        if (env.type == net::MessageType::kUploadAck && h.token != kNoGroup) {
          const net::UploadAck ack = net::decode_upload_ack(env.payload);
          gid_group.emplace(ack.id, static_cast<std::size_t>(h.token));
        }
      } catch (const util::DecodeError&) {
      }
    }
  };

  const auto load_epochs =
      static_cast<std::uint64_t>(std::ceil(o.duration_s / E));
  const auto max_epochs =
      load_epochs +
      static_cast<std::uint64_t>(std::ceil((o.duration_s + 600.0) / E));
  bool stopped = false;

  for (std::uint64_t j = 0;; ++j) {
    const double t0 = static_cast<double>(j) * E;
    const double t1 = static_cast<double>(j + 1) * E;

    if (j >= load_epochs && !stopped) {
      for (auto& d : devices) d->stop_capturing();
      stopped = true;
    }
    if (stopped) {
      bool busy = !pending.empty() || !future_replies.empty();
      if (!busy) {
        for (const auto& d : devices) {
          if (d->open_ops() > 0) {
            busy = true;
            break;
          }
        }
      }
      if (!busy || j >= max_epochs) break;
    }

    // Scheduled disasters fire at the epoch boundary, in schedule order:
    // primaries die first (failover promotes a drained follower), then any
    // relay whose backhaul healed this epoch drains its held uploads into
    // the (possibly just-promoted) cluster.
    for (const PrimaryKill& k : o.primary_kills) {
      if (k.epoch == j) cluster.kill_primary(k.shard);
    }
    if (relay_tier) {
      for (int r = 0; r < relay_tier->size(); ++r) {
        if (relay_tier->at(r).queue_depth() == 0) continue;
        if (window_hits(o.relay_outages, r, j)) continue;
        if (window_hits(o.partitions, r, j)) continue;
        drain_relay(relay_tier->at(r));
      }
    }

    // Deliver replies scheduled for this epoch, in (device, seq) order.
    if (auto it = future_replies.find(j); it != future_replies.end()) {
      std::sort(it->second.begin(), it->second.end(),
                [](const FutureReply& a, const FutureReply& b) {
                  if (a.device != b.device) return a.device < b.device;
                  return a.reply.seq < b.reply.seq;
                });
      for (auto& fr : it->second) {
        devices[static_cast<std::size_t>(fr.device)]->deliver(
            std::move(fr.reply), fr.reaction_s);
      }
      future_replies.erase(it);
    }

    // Phase A: advance every device through [t0, t1) in parallel.  Static
    // chunks, private stores, per-device output buffers: no shared state.
    pool.parallel_for(chunks, [&](std::size_t c) {
      const std::size_t begin = c * per_chunk;
      const std::size_t end = std::min(begin + per_chunk, n);
      for (std::size_t i = begin; i < end; ++i) {
        devices[i]->advance(t0, t1, stores[c], outs[i]);
      }
    });

    // Barrier: merge this epoch's delivered attempts into the pending set
    // and resolve everything arriving before t1 in global time order.
    for (std::size_t i = 0; i < n; ++i) {
      for (auto& a : outs[i]) pending.push_back(std::move(a));
      outs[i].clear();
    }
    std::sort(pending.begin(), pending.end(),
              [](const ServerArrival& a, const ServerArrival& b) {
                if (a.arrival_s != b.arrival_s) return a.arrival_s < b.arrival_s;
                if (a.device != b.device) return a.device < b.device;
                return a.seq < b.seq;
              });
    std::size_t ready = 0;
    while (ready < pending.size() && pending[ready].arrival_s < t1) ++ready;

    // Virtual admission pass: every shed is decided here, in virtual time.
    std::vector<std::size_t> admitted;
    std::vector<double> completions;
    for (std::size_t k = 0; k < ready; ++k) {
      ServerArrival& a = pending[k];
      // Relay hop first: a down relay rejects retryably; a partitioned
      // backhaul parks uploads (local ack now, core at heal) and rejects
      // queries; a healthy relay charges the backhaul through CARE dedup
      // and passes the request on to the admission gate.  Every arrival
      // resolved at this barrier lies in [t0, t1), so epoch j is the
      // arrival's own epoch and the routing is worker-count-independent.
      if (relay_tier) {
        const int r = a.device % o.relays;
        const bool down = window_hits(o.relay_outages, r, j);
        const bool parted = !down && window_hits(o.partitions, r, j);
        if (down || (parted && a.kind == OpKind::kQuery)) {
          ++relay_rejects;
          Reply rr;
          rr.seq = a.seq;
          rr.shed = true;  // retryable, like a gate shed
          rr.completion_s = a.arrival_s + o.relay_service_s;
          rr.payload = relay_reject_payload;
          rr.request = std::move(a.request);
          schedule_delivery(a.device, std::move(rr), rr.completion_s, j);
          continue;
        }
        if (parted) {
          const std::uint64_t token =
              a.image_ids.empty()
                  ? kNoGroup
                  : static_cast<std::uint64_t>(
                        set.images[a.image_ids[0]].group);
          relay_tier->at(r).hold(token, std::move(a.request));
          Reply rr;
          rr.seq = a.seq;
          rr.shed = false;
          rr.completion_s = a.arrival_s + o.relay_service_s;
          rr.payload = relay_ack_payload;
          schedule_delivery(a.device, std::move(rr), rr.completion_s, j);
          continue;
        }
        relay_tier->at(r).forward(a.request);
      }
      const double service_s =
          o.service_base_s + o.service_per_image_s * a.n_images;
      const ServiceOutcome outcome = gate.offer(a.arrival_s, service_s);
      if (outcome.shed) {
        totals.shed_bytes += a.wire_bytes;
        Reply r;
        r.seq = a.seq;
        r.shed = true;
        r.completion_s = outcome.completion_s;
        r.payload = shed_payload;
        r.request = std::move(a.request);
        schedule_delivery(a.device, std::move(r), outcome.completion_s, j);
      } else {
        admitted.push_back(k);
        completions.push_back(outcome.completion_s);
      }
    }

    // Real execution of admitted requests, in virtual arrival order:
    // contiguous runs of read-only queries are grouped into coalesced
    // batches of at most batch_window and fan out across the pool (each
    // batch shares one query_binary_batch fan-out inside the cluster),
    // uploads apply serially, so index state evolves exactly as the
    // virtual timeline dictates.  Grouping is index arithmetic over the
    // admitted order — deterministic for every worker count — and
    // handle_coalesced replies are byte-identical to per-request handle().
    std::vector<std::vector<std::uint8_t>> replies(admitted.size());
    {
      const auto serve_start = Clock::now();
      const auto window = static_cast<std::size_t>(o.batch_window);
      std::size_t i = 0;
      while (i < admitted.size()) {
        if (pending[admitted[i]].kind == OpKind::kUpload) {
          replies[i] = cluster.handle(pending[admitted[i]].request);
          ++i;
          continue;
        }
        std::size_t run_end = i;
        while (run_end < admitted.size() &&
               pending[admitted[run_end]].kind == OpKind::kQuery) {
          ++run_end;
        }
        const std::size_t run_len = run_end - i;
        const std::size_t n_groups = (run_len + window - 1) / window;
        pool.parallel_for(n_groups, [&](std::size_t g) {
          const std::size_t gb = i + g * window;
          const std::size_t ge = std::min(gb + window, run_end);
          std::vector<std::vector<std::uint8_t>> group;
          group.reserve(ge - gb);
          for (std::size_t r = gb; r < ge; ++r) {
            group.push_back(pending[admitted[r]].request);
          }
          std::vector<std::vector<std::uint8_t>> group_replies =
              cluster.handle_coalesced(group);
          for (std::size_t r = gb; r < ge; ++r) {
            replies[r] = std::move(group_replies[r - gb]);
          }
        });
        for (std::size_t g = 0; g < n_groups; ++g) {
          const std::size_t gb = i + g * window;
          batch_sizes.push_back(std::min(gb + window, run_end) - gb);
        }
        i = run_end;
      }
      serve_wall += seconds_since(serve_start);
      real_handles += admitted.size();
    }

    for (std::size_t i = 0; i < admitted.size(); ++i) {
      ServerArrival& a = pending[admitted[i]];
      const double completion_s = completions[i];
      const double latency_s = completion_s - a.enqueue_s;
      metrics.observe("latency_all", latency_s);
      ++totals.served;
      if (a.kind == OpKind::kQuery) {
        metrics.observe("latency_query", latency_s);
        totals.feature_bytes += a.wire_bytes;
        // Replay the device's redundant/unique split against ground truth.
        try {
          const net::Envelope env = net::open_envelope(replies[i]);
          if (env.type == net::MessageType::kBatchQueryResponse) {
            const net::BatchQueryResponse response =
                net::decode_batch_query_response(env.payload);
            const std::size_t nv =
                std::min(response.verdicts.size(), a.image_ids.size());
            for (std::size_t v = 0; v < nv; ++v) {
              const net::QueryResponse& verdict = response.verdicts[v];
              if (verdict.max_similarity <= a.redundancy_threshold) continue;
              const auto git = gid_group.find(verdict.best_id);
              const std::size_t truth = set.images[a.image_ids[v]].group;
              if (git != gid_group.end() && git->second == truth) {
                ++prec.redundant_correct;
              } else {
                ++prec.redundant_wrong;
              }
            }
          }
        } catch (const util::DecodeError&) {
          // Counted as a terminal error by the device when it decodes.
        }
      } else {
        metrics.observe("latency_upload", latency_s);
        totals.image_bytes += a.wire_bytes;
        try {
          const net::Envelope env = net::open_envelope(replies[i]);
          if (env.type == net::MessageType::kUploadAck) {
            const net::UploadAck ack = net::decode_upload_ack(env.payload);
            gid_group.emplace(ack.id, set.images[a.image_ids[0]].group);
          }
        } catch (const util::DecodeError&) {
        }
      }
      Reply r;
      r.seq = a.seq;
      r.shed = false;
      r.completion_s = completion_s;
      r.payload = std::move(replies[i]);
      schedule_delivery(a.device, std::move(r), completion_s, j);
    }
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(ready));
  }

  // Implicit heal at run end: any upload still parked behind an unhealed
  // partition drains now, so the scenario's byte accounting is complete.
  if (relay_tier) {
    for (int r = 0; r < relay_tier->size(); ++r) {
      if (relay_tier->at(r).queue_depth() > 0) drain_relay(relay_tier->at(r));
    }
  }

  // --- Aggregate, in device-id order. ---
  FleetResult result;
  FleetReport& report = result.report;
  double battery_sum = 0.0;
  for (const auto& d : devices) {
    const DeviceStats& s = d->stats();
    report.energy += s.energy;
    totals.captures += s.captures;
    totals.queries += s.queries;
    totals.uploads += s.uploads;
    totals.attempts += s.attempts;
    totals.loss_retries += s.loss_retries;
    totals.shed_retries += s.shed_retries;
    totals.gave_up += s.gave_up;
    totals.terminal_errors += s.terminal_errors;
    totals.retransmitted_bytes += s.retransmitted_bytes;
    totals.rx_bytes += s.rx_bytes;
    totals.backoff_s += s.backoff_s;
    prec.unique_images += s.unique_images;
    prec.redundant_images += s.redundant_images;
    battery_sum += d->battery_fraction();
    if (s.depleted || d->battery_fraction() <= 0.0) {
      ++totals.depleted_devices;
    }
  }
  totals.offered = gate.offered();
  totals.shed = gate.shed();
  report.mean_battery_fraction =
      battery_sum / static_cast<double>(devices.size());

  const obs::MetricsSnapshot snap = metrics.snapshot();
  report.latency_all = LatencySummary::from(snap.histograms.at("latency_all"));
  report.latency_query =
      LatencySummary::from(snap.histograms.at("latency_query"));
  report.latency_upload =
      LatencySummary::from(snap.histograms.at("latency_upload"));
  report.totals = totals;
  report.precision = prec;

  BatchStats& batching = report.batching;
  batching.batches = batch_sizes.size();
  if (!batch_sizes.empty()) {
    std::vector<std::size_t> sorted = batch_sizes;
    std::sort(sorted.begin(), sorted.end());
    const auto nearest_rank = [&](double q) {
      std::size_t rank = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(sorted.size())));
      if (rank == 0) rank = 1;
      return static_cast<double>(sorted[rank - 1]);
    };
    batching.batch_size_p50 = nearest_rank(0.50);
    batching.batch_size_p99 = nearest_rank(0.99);
    batching.coalesced_rps =
        static_cast<double>(batching.batches) / o.duration_s;
  }

  ResilienceStats& res = report.resilience;
  {
    const serve::BackendResilience br = cluster.resilience();
    res.failovers = br.failovers;
    res.catch_ups = br.catch_ups;
    res.live_standbys = br.live_standbys;
    res.ship_records = br.ship_records;
    res.ship_bytes = br.ship_bytes;
    res.ship_lag_max = br.ship_lag_max;
  }
  if (relay_tier) {
    const relay::RelayStats rs = relay_tier->stats();
    res.relay_requests = rs.forwarded_requests;
    res.relay_ingress_bytes = rs.ingress_bytes;
    res.relay_backhaul_bytes = rs.backhaul_bytes;
    res.relay_dedup_chunks_hit = rs.dedup_chunks_hit;
    res.relay_dedup_bytes_saved = rs.dedup_bytes_saved;
    res.relay_held = rs.held_requests;
    res.relay_drained = rs.drained_requests;
    res.relay_queue_depth_max = rs.queue_depth_max;
  }
  res.relay_rejects = relay_rejects;

  ConfigEcho& echo = report.config;
  echo.seed = o.seed;
  echo.devices = o.devices;
  echo.duration_s = o.duration_s;
  echo.epoch_s = o.epoch_s;
  echo.closed_loop = o.closed_loop;
  echo.rate_hz = o.rate_hz;
  echo.think_s = o.think_s;
  echo.spike_start_s = o.spike_start_s;
  echo.spike_duration_s = o.spike_duration_s;
  echo.spike_multiplier = o.spike_multiplier;
  echo.batch = o.batch;
  echo.shards = o.shards;
  echo.server_threads = o.server_threads;
  echo.queue_depth = o.queue_depth;
  echo.batch_window = o.batch_window;
  echo.bitrate_kbps = o.bitrate_kbps;
  echo.loss = o.loss;
  echo.adaptive = o.adaptive;
  echo.battery_fraction = o.battery_fraction;
  echo.replicas = o.replicas;
  echo.relays = o.relays;

  SloVerdict& slo = report.slo;
  slo.p99_target_s = o.slo_p99_s;
  slo.max_shed_rate = o.slo_max_shed_rate;
  slo.p99_s = report.latency_all.p99_s;
  slo.shed_rate = totals.shed_rate();
  slo.p99_ok = o.slo_p99_s <= 0.0 || slo.p99_s <= o.slo_p99_s;
  slo.shed_ok = o.slo_max_shed_rate < 0.0 || slo.shed_rate <= o.slo_max_shed_rate;

  result.serve_wall_seconds = serve_wall;
  result.real_handles = real_handles;
  result.wall_seconds = seconds_since(wall_start);
  return result;
}

}  // namespace bees::fleet

