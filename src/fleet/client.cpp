#include "fleet/client.hpp"

#include "net/protocol.hpp"
#include "relay/relay.hpp"
#include "serve/cluster.hpp"
#include "util/byte_io.hpp"

namespace bees::fleet {

ReplyStatus classify_reply(const std::vector<std::uint8_t>& reply) {
  try {
    const net::Envelope env = net::open_envelope(reply);
    if (env.type != net::MessageType::kError) return ReplyStatus::kOk;
    // Overload sheds and relay outages are both transient: back off and
    // resend.  Anything else is terminal.
    const std::string message = net::decode_error(env.payload);
    return (message == serve::kShedErrorMessage ||
            message == relay::kRelayUnavailableMessage)
               ? ReplyStatus::kShed
               : ReplyStatus::kError;
  } catch (const util::DecodeError&) {
    return ReplyStatus::kError;
  }
}

bool is_shed_reply(const std::vector<std::uint8_t>& reply) {
  return classify_reply(reply) == ReplyStatus::kShed;
}

ShedRetryResult exchange_with_shed_retry(
    net::Transport& transport, net::Channel& channel,
    const std::vector<std::uint8_t>& request, util::Rng& backoff_rng,
    double wire_bytes) {
  const net::RetryPolicy& policy = transport.policy();
  ShedRetryResult result;
  for (int round = 1; round <= policy.max_attempts; ++round) {
    result.last = transport.exchange(request, wire_bytes);
    if (!result.last.ok) return result;  // loss budget exhausted: terminal
    if (!is_shed_reply(result.last.reply)) {
      result.ok = true;
      return result;
    }
    if (round < policy.max_attempts) {
      const double wait = policy.backoff_before(round, backoff_rng);
      if (wait > 0.0) {
        channel.advance(wait);
        result.shed_backoff_s += wait;
      }
      ++result.shed_retries;
    }
  }
  return result;  // every round shed: give up, result.ok stays false
}

}  // namespace bees::fleet
