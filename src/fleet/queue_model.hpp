// Deterministic virtual-time model of the serving cluster's admission gate
// and worker pool: `servers` parallel servers behind a bounded
// first-come-first-served queue.  The fleet simulator resolves shedding and
// queueing delay here, in simulated time, instead of observing the real
// cluster's gate — real thread scheduling would make shed decisions (and
// therefore the run report) nondeterministic.  The model mirrors
// serve::Cluster's semantics exactly: a request is shed iff the number of
// admitted-but-incomplete requests (queued + executing) has reached
// `depth` when it arrives, and a shed reply is immediate.
//
// Arrivals must be offered in non-decreasing time order; the simulator's
// epoch barriers guarantee that ordering globally across devices.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

namespace bees::fleet {

/// What the model decided for one offered request.
struct ServiceOutcome {
  bool shed = false;
  double start_s = 0.0;       ///< Service start (admitted requests only).
  double completion_s = 0.0;  ///< Reply time; == arrival time when shed.
};

class QueueModel {
 public:
  /// `servers` >= 1 parallel servers, admission bound `depth` >= 1.
  QueueModel(int servers, std::size_t depth);

  /// Offers one request arriving at `arrival_s` needing `service_s` of
  /// server time.  Arrivals must be non-decreasing across calls.
  ServiceOutcome offer(double arrival_s, double service_s);

  /// Admitted requests not yet complete at `now_s` (queued + executing).
  std::size_t in_system(double now_s);

  std::size_t offered() const noexcept { return offered_; }
  std::size_t shed() const noexcept { return shed_; }

 private:
  using MinHeap =
      std::priority_queue<double, std::vector<double>, std::greater<double>>;

  std::size_t depth_;
  /// Next-free time per server (min-heap): the earliest entry serves the
  /// next admitted request, which is exactly FCFS when arrivals are offered
  /// in time order.
  MinHeap free_;
  /// Completion times of admitted, possibly still outstanding requests.
  MinHeap outstanding_;
  std::size_t offered_ = 0;
  std::size_t shed_ = 0;
};

}  // namespace bees::fleet
