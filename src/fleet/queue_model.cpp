#include "fleet/queue_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace bees::fleet {

QueueModel::QueueModel(int servers, std::size_t depth) : depth_(depth) {
  if (servers < 1) throw std::invalid_argument("QueueModel: servers < 1");
  if (depth < 1) throw std::invalid_argument("QueueModel: depth < 1");
  for (int i = 0; i < servers; ++i) free_.push(0.0);
}

std::size_t QueueModel::in_system(double now_s) {
  while (!outstanding_.empty() && outstanding_.top() <= now_s) {
    outstanding_.pop();
  }
  return outstanding_.size();
}

ServiceOutcome QueueModel::offer(double arrival_s, double service_s) {
  ++offered_;
  ServiceOutcome out;
  if (in_system(arrival_s) >= depth_) {
    ++shed_;
    out.shed = true;
    out.completion_s = arrival_s;  // the gate answers without queueing
    return out;
  }
  const double server_free = free_.top();
  free_.pop();
  out.start_s = std::max(arrival_s, server_free);
  out.completion_s = out.start_s + service_s;
  free_.push(out.completion_s);
  outstanding_.push(out.completion_s);
  return out;
}

}  // namespace bees::fleet
