// The fleet run report: everything a load-generation run measured, plus a
// byte-deterministic JSON emitter.  The report deliberately contains only
// virtual-time quantities — wall-clock measurements (how fast the real
// cluster chewed through the arrivals) live beside the report in
// FleetResult, never inside it, so `bees_loadgen --seed S` emits identical
// bytes for any worker-thread count.
#pragma once

#include <cstdint>
#include <string>

#include "energy/cost_model.hpp"
#include "obs/metrics.hpp"

namespace bees::fleet {

/// Latency summary of one request class, derived from a fixed-bucket
/// log-scale obs::Histogram (MetricsRegistry::latency_bounds).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_s = 0.0;
  double max_s = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;

  static LatencySummary from(const obs::HistogramSnapshot& h);
  std::string to_json() const;
};

/// Configuration echo: the knobs that shaped the run, embedded in the
/// report so a result file is self-describing.
struct ConfigEcho {
  std::uint64_t seed = 0;
  int devices = 0;
  double duration_s = 0.0;
  double epoch_s = 0.0;
  bool closed_loop = false;
  double rate_hz = 0.0;
  double think_s = 0.0;
  double spike_start_s = -1.0;
  double spike_duration_s = 0.0;
  double spike_multiplier = 1.0;
  int batch = 0;
  int shards = 0;
  int server_threads = 0;
  std::size_t queue_depth = 0;
  int batch_window = 1;
  double bitrate_kbps = 0.0;
  double loss = 0.0;
  bool adaptive = true;
  double battery_fraction = 1.0;
  int replicas = 0;
  int relays = 0;

  std::string to_json() const;
};

/// Aggregate counters over the whole fleet (virtual time).
struct Totals {
  std::uint64_t captures = 0;
  std::uint64_t queries = 0;
  std::uint64_t uploads = 0;
  std::uint64_t offered = 0;   ///< Requests reaching the admission gate.
  std::uint64_t served = 0;    ///< Requests the cluster answered.
  std::uint64_t shed = 0;      ///< Requests the gate refused.
  std::uint64_t attempts = 0;  ///< Channel send attempts.
  std::uint64_t loss_retries = 0;
  std::uint64_t shed_retries = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t terminal_errors = 0;
  std::uint64_t depleted_devices = 0;
  double feature_bytes = 0.0;  ///< Served query payload bytes.
  double image_bytes = 0.0;    ///< Served upload payload bytes.
  double shed_bytes = 0.0;     ///< Delivered-then-shed payload bytes.
  double retransmitted_bytes = 0.0;
  double rx_bytes = 0.0;
  double backoff_s = 0.0;

  double shed_rate() const noexcept {
    return offered ? static_cast<double>(shed) / static_cast<double>(offered)
                   : 0.0;
  }
  std::string to_json(double duration_s) const;
};

/// Inputs to the paper's precision metric, from ground-truth groups: a
/// redundant verdict is correct iff the index image it matched shows the
/// same scene as the query.
struct PrecisionInputs {
  std::uint64_t unique_images = 0;
  std::uint64_t redundant_images = 0;
  std::uint64_t redundant_correct = 0;
  std::uint64_t redundant_wrong = 0;

  double precision() const noexcept {
    const std::uint64_t n = redundant_correct + redundant_wrong;
    return n ? static_cast<double>(redundant_correct) /
                   static_cast<double>(n)
             : 1.0;
  }
  std::string to_json() const;
};

/// Query-coalescing stats: admitted query runs grouped into batches of at
/// most `batch_window` requests in virtual arrival order — deterministic
/// for any worker count, like everything else in the report.
struct BatchStats {
  std::uint64_t batches = 0;      ///< Coalesced fan-outs issued.
  double batch_size_p50 = 0.0;    ///< Nearest-rank quantiles of batch size.
  double batch_size_p99 = 0.0;
  double coalesced_rps = 0.0;     ///< batches / duration_s.

  std::string to_json() const;
};

/// Damaged-network scenario outcomes: replication shipping and failover on
/// the serving side, store-and-forward and CARE dedup on the relay side.
/// Every field is a virtual-time quantity (kills fire at epoch starts,
/// relay traffic is accounted in virtual arrival order), so the section is
/// as worker-count-deterministic as the rest of the report; it is emitted
/// even when replication and relays are disabled (all zeros).
struct ResilienceStats {
  std::uint64_t failovers = 0;      ///< Primaries killed and replaced.
  std::uint64_t catch_ups = 0;      ///< Snapshot installs into stale instances.
  std::uint64_t live_standbys = 0;  ///< Surviving followers at run end.
  std::uint64_t ship_records = 0;   ///< WAL frames shipped to followers.
  std::uint64_t ship_bytes = 0;
  std::uint64_t ship_lag_max = 0;   ///< Peak follower ship-queue depth.
  std::uint64_t relay_requests = 0;       ///< Requests crossing the backhaul.
  std::uint64_t relay_ingress_bytes = 0;  ///< Raw bytes entering relays.
  std::uint64_t relay_backhaul_bytes = 0; ///< Bytes after CARE dedup.
  std::uint64_t relay_dedup_chunks_hit = 0;
  std::uint64_t relay_dedup_bytes_saved = 0;
  std::uint64_t relay_held = 0;     ///< Uploads parked during partitions.
  std::uint64_t relay_drained = 0;  ///< Parked uploads pushed at heal.
  std::uint64_t relay_queue_depth_max = 0;
  std::uint64_t relay_rejects = 0;  ///< Retryable relay-unavailable replies.

  std::string to_json() const;
};

/// SLO verdict: the run's p99 latency and shed rate against the targets.
struct SloVerdict {
  double p99_target_s = 0.0;     ///< <= 0 disables the latency check.
  double max_shed_rate = -1.0;   ///< < 0 disables the shed check.
  double p99_s = 0.0;
  double shed_rate = 0.0;
  bool p99_ok = true;
  bool shed_ok = true;

  bool ok() const noexcept { return p99_ok && shed_ok; }
  std::string to_json() const;
};

struct FleetReport {
  ConfigEcho config;
  Totals totals;
  LatencySummary latency_all;
  LatencySummary latency_query;
  LatencySummary latency_upload;
  energy::EnergyBreakdown energy;
  double mean_battery_fraction = 0.0;
  PrecisionInputs precision;
  BatchStats batching;
  ResilienceStats resilience;
  SloVerdict slo;

  /// The machine-readable run report.  Fixed key order, shortest
  /// round-trip (locale-independent) numbers:
  /// identical state serializes to identical bytes.
  std::string to_json() const;
};

}  // namespace bees::fleet
