// Client-side handling of serving-cluster replies: classification of the
// admission gate's shed error as *retryable* (unlike other encoded errors,
// which are terminal), and a synchronous exchange wrapper that closes the
// loop between PR 1's transport retries (message loss) and PR 4's
// admission shedding (server overload) — a shed reply is backed off and
// resent with the same RetryPolicy schedule the transport uses for lost
// messages.  Fleet devices implement the identical policy event-driven
// (they cannot block inside an exchange); this wrapper is the reference
// client for callers that can.
#pragma once

#include <cstdint>
#include <vector>

#include "net/transport.hpp"

namespace bees::fleet {

enum class ReplyStatus {
  kOk,     ///< A well-formed non-error reply.
  kShed,   ///< The admission gate's overload reply: back off and resend.
  kError,  ///< Any other encoded error (malformed request, ...): terminal.
};

/// Classifies a reply envelope.  Undecodable bytes classify as kError.
ReplyStatus classify_reply(const std::vector<std::uint8_t>& reply);

/// True iff `reply` is the cluster's admission-shed error.
bool is_shed_reply(const std::vector<std::uint8_t>& reply);

/// One exchange_with_shed_retry outcome: the transport result of the final
/// exchange plus the shed-retry accounting layered on top.
struct ShedRetryResult {
  net::ExchangeResult last;      ///< The delivering (or final) exchange.
  bool ok = false;               ///< Delivered a non-shed reply in budget.
  int shed_retries = 0;          ///< Resends caused by shed replies.
  double shed_backoff_s = 0.0;   ///< Idle waits between shed resends.
};

/// Runs `transport.exchange` until a non-shed reply arrives, the transport
/// gives up on loss, or the policy's attempt budget is spent on shed
/// resends.  Backoff between shed resends follows
/// `transport.policy().backoff_before` drawn from `backoff_rng` and is
/// waited out on `channel` (the same clock the transport charges), so a
/// client that is shed k times and then served accounts the same idle
/// airtime a lossy exchange with k lost attempts would.
ShedRetryResult exchange_with_shed_retry(
    net::Transport& transport, net::Channel& channel,
    const std::vector<std::uint8_t>& request, util::Rng& backoff_rng,
    double wire_bytes = -1.0);

}  // namespace bees::fleet
