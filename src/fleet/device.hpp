// One simulated BEES phone inside the fleet simulator: an event-driven
// client state machine advanced epoch by epoch in virtual time.
//
// Each device owns its battery, its lossy radio channel (with its own
// clock and RNG streams forked from the fleet seed), and a queue of
// in-flight client operations.  During an epoch's parallel phase the
// device (a) reacts to replies the previous barrier delivered — decoding
// batch-query verdicts into image uploads, backing off and resending shed
// requests, charging RX energy — and (b) generates new work: capture
// events draw a batch of images from the shared imageset, extract ORB
// features under the battery-driven EAC/EDR/EAU knobs, and enqueue a batch
// query; ready operations are transmitted over the channel, each delivered
// attempt emitting a ServerArrival record the barrier resolves against the
// virtual queue model and the real serving cluster.
//
// Determinism: a device touches no shared mutable state during the
// parallel phase (its ImageStore is per-worker, the imageset is read-only)
// and all of its randomness comes from streams forked from (fleet seed,
// device id), so its behaviour is a pure function of its inputs and the
// replies it was handed — independent of worker count and scheduling.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "energy/adaptive.hpp"
#include "energy/battery.hpp"
#include "energy/cost_model.hpp"
#include "fleet/arrivals.hpp"
#include "net/channel.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"
#include "workload/image_store.hpp"
#include "workload/imageset.hpp"

namespace bees::fleet {

enum class OpKind : std::uint8_t { kQuery = 0, kUpload = 1 };

/// One delivered request attempt entering the serving layer; produced by
/// Device::advance, resolved by the simulator's epoch barrier.
struct ServerArrival {
  double arrival_s = 0.0;  ///< Virtual time the last byte hit the server.
  int device = 0;
  std::uint32_t seq = 0;  ///< Device-local operation sequence number.
  OpKind kind = OpKind::kQuery;
  std::vector<std::uint8_t> request;  ///< Encoded request envelope.
  double wire_bytes = 0.0;            ///< Modelled payload size on the air.
  int n_images = 1;                   ///< Images covered (service-time model).
  std::vector<std::size_t> image_ids;  ///< Imageset indices, query order.
  double enqueue_s = 0.0;  ///< When the operation was first created.
  int attempts = 0;        ///< Send attempts so far, this one included.
  /// EDR threshold pinned at capture; the barrier replays the device's
  /// redundant/unique split against ground truth for precision accounting.
  double redundancy_threshold = 0.0;
};

/// One resolved request handed back to its device at a barrier.
struct Reply {
  std::uint32_t seq = 0;
  bool shed = false;
  double completion_s = 0.0;          ///< Virtual reply time.
  std::vector<std::uint8_t> payload;  ///< Encoded reply envelope.
  std::vector<std::uint8_t> request;  ///< Returned on shed for the resend.
};

/// Per-device counters aggregated (in device-id order) into the report.
struct DeviceStats {
  energy::EnergyBreakdown energy;
  std::size_t captures = 0;       ///< Capture events executed.
  std::size_t queries = 0;        ///< Batch-query operations created.
  std::size_t uploads = 0;        ///< Image-upload operations created.
  std::size_t unique_images = 0;  ///< Query verdicts below the threshold.
  std::size_t redundant_images = 0;  ///< Verdicts at/above the threshold.
  std::size_t attempts = 0;          ///< Channel send attempts.
  std::size_t loss_retries = 0;      ///< Resends after channel loss.
  std::size_t shed_retries = 0;      ///< Resends after admission shedding.
  std::size_t gave_up = 0;           ///< Operations dropped out of budget.
  std::size_t terminal_errors = 0;   ///< Non-shed error replies (dropped).
  double retransmitted_bytes = 0.0;  ///< Bytes burned by undelivered sends.
  double rx_bytes = 0.0;             ///< Reply bytes received.
  double backoff_s = 0.0;            ///< Idle time spent in backoff waits.
  bool depleted = false;             ///< Battery hit empty (stops capturing).
};

class Device {
 public:
  struct Config {
    int id = 0;
    std::uint64_t fleet_seed = 0;
    net::ChannelParams channel;  ///< seed field is overridden per device.
    net::RetryPolicy retry;
    double battery_fraction = 1.0;  ///< Initial charge in [0, 1].
    bool adaptive = true;           ///< Battery-driven knobs vs. full-energy.
    bool closed_loop = false;       ///< Think-time client vs. open loop.
    double think_s = 5.0;           ///< Mean think time (closed loop).
    ArrivalProcess arrivals;        ///< Capture process (open loop).
    int batch_size = 4;
    int top_k = 4;
    double image_byte_scale = 1.0;  ///< Synthetic -> paper-sized bytes.
    energy::CostModel cost;
  };

  Device(const Config& config, const wl::Imageset& set);

  /// Hands a barrier-resolved reply to the device; it reacts during the
  /// next advance() call.  `reaction_s` is the quantized earliest time the
  /// device may observe the reply (>= completion and >= its epoch start).
  void deliver(Reply reply, double reaction_s);

  /// Runs the device through virtual time [t0, t1): processes delivered
  /// replies, fires captures, transmits ready operations.  Delivered
  /// attempts are appended to `out`.  `store` must be private to the
  /// calling worker.
  void advance(double t0, double t1, wl::ImageStore& store,
               std::vector<ServerArrival>& out);

  /// Stops new captures (end of the offered-load window); in-flight
  /// operations still drain.  Idempotent.
  void stop_capturing() noexcept;

  const DeviceStats& stats() const noexcept { return stats_; }
  double battery_fraction() const noexcept { return battery_.fraction(); }
  int id() const noexcept { return config_.id; }
  /// Operations created but not yet resolved (in flight or queued).
  std::size_t open_ops() const noexcept {
    return in_flight_.size() + send_queue_.size();
  }

 private:
  /// A created-but-unresolved client operation.
  struct Op {
    OpKind kind = OpKind::kQuery;
    std::uint32_t seq = 0;
    double enqueue_s = 0.0;
    int attempts = 0;
    std::vector<std::uint8_t> request;
    double wire_bytes = 0.0;
    int n_images = 1;
    std::vector<std::size_t> image_ids;
    energy::adapt::Knobs knobs;  ///< Knobs pinned at capture time.
  };

  void process_reply(const Reply& reply, double reaction_s,
                     wl::ImageStore& store);
  void on_query_reply(Op op, const Reply& reply, wl::ImageStore& store);
  void capture(double t, wl::ImageStore& store);
  /// Sends the queued op keyed by `key`; appends to `out` on delivery.
  void transmit(std::pair<double, std::uint32_t> key,
                std::vector<ServerArrival>& out);
  void enqueue(Op op, double ready_s);
  void drop_op(const Op& op);
  /// Closed loop: one chain member resolved; schedules the next capture
  /// when the chain drains.
  void chain_done();
  void schedule_next_capture(double t);

  Config config_;
  const wl::Imageset& set_;
  util::Rng rng_;          ///< Captures: arrival draws, image picks, think.
  util::Rng backoff_rng_;  ///< Retry jitter (mirrors Transport's stream).
  energy::Battery battery_;
  net::Channel channel_;
  DeviceStats stats_;

  std::uint32_t next_seq_ = 0;
  bool capturing_ = true;
  double next_capture_s_ = 0.0;  ///< Infinity while a closed chain is open.
  std::size_t chain_open_ = 0;   ///< Unresolved ops of the current chain.
  /// Ready-to-send operations ordered by (ready time, seq).
  std::map<std::pair<double, std::uint32_t>, Op> send_queue_;
  /// Delivered operations awaiting a barrier reply, keyed by seq.
  std::map<std::uint32_t, Op> in_flight_;
  /// Replies delivered by the barrier, with their reaction times.
  std::vector<std::pair<Reply, double>> inbox_;
};

}  // namespace bees::fleet
