// The weighted similarity graph of an image batch: G = (V, E, w) with
// w(i, j) = Jaccard similarity of the images' feature sets (paper §III-B2).
// SSMM cuts edges below a threshold Tw and uses the resulting connected
// components both as the knapsack budget and as the diversity partition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "features/keypoint.hpp"
#include "features/matching.hpp"

namespace bees::sub {

/// Dense symmetric weight matrix over n batch images.  Self-weight is fixed
/// at 1 (an image fully covers itself in the coverage function).
class SimilarityGraph {
 public:
  explicit SimilarityGraph(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  double weight(std::size_t i, std::size_t j) const noexcept {
    return w_[i * n_ + j];
  }
  /// Sets the symmetric weight w(i, j) = w(j, i) = value (i != j).
  void set_weight(std::size_t i, std::size_t j, double value) noexcept;

 private:
  std::size_t n_;
  std::vector<double> w_;
};

/// Builds the batch graph by computing pairwise Jaccard similarity between
/// every pair of feature sets.  `ops` (if non-null) accumulates the
/// descriptor-matching work, which the energy model charges to IBRD.
SimilarityGraph build_similarity_graph(
    const std::vector<feat::BinaryFeatures>& batch,
    const feat::BinaryMatchParams& match = {},
    std::uint64_t* ops = nullptr);

/// Borrowing overload: identical graph (bit for bit) from pointers to
/// feature sets owned elsewhere, so callers selecting a subset of a batch
/// (BEES IBRD over CBRD survivors) need not deep-copy descriptor vectors.
SimilarityGraph build_similarity_graph(
    const std::vector<const feat::BinaryFeatures*>& batch,
    const feat::BinaryMatchParams& match = {},
    std::uint64_t* ops = nullptr);

/// Same result as build_similarity_graph, computed across `threads` worker
/// threads (0 = hardware concurrency).  The pairwise work partition is
/// static, so the graph is bit-identical to the serial one; `ops` reports
/// the same total work (energy accounting is about the computation done,
/// not the wall-clock it took).
SimilarityGraph build_similarity_graph_parallel(
    const std::vector<feat::BinaryFeatures>& batch,
    const feat::BinaryMatchParams& match = {}, std::uint64_t* ops = nullptr,
    std::size_t threads = 0);

/// Partitions the graph into connected components after cutting every edge
/// with weight < tw (the SSMM partition step).  Returns one component id
/// per vertex, ids in [0, component_count).
std::vector<int> partition_components(const SimilarityGraph& graph,
                                      double tw);

/// Number of distinct components in a partition labelling.
int component_count(const std::vector<int>& labels);

}  // namespace bees::sub
