// The Similarity-aware Submodular Maximization Model (SSMM), the paper's
// in-batch redundancy detector (§III-B2, Algorithm 1):
//
//   1. Tw = 0.013 + 0.006 * Ebat        (energy-adaptive edge threshold)
//   2. Cut edges with w < Tw; the number of connected components is the
//      knapsack budget b.
//   3. Greedily maximize F(S) = λ_cov f_cov(S) + λ_div f_div(S) subject to
//      |S| <= b, where
//        f_cov(S) = Σ_{i∈V} max_{j∈S} w(i, j)      (coverage)
//        f_div(S) = #components intersected by S   (diversity)
//
// Both component functions are monotone submodular, so the greedy solution
// carries the classic (1 - 1/e) approximation guarantee — a property the
// test suite checks against brute force on small instances.
#pragma once

#include <vector>

#include "submodular/graph.hpp"

namespace bees::sub {

struct SsmmParams {
  double lambda_coverage = 1.0;
  double lambda_diversity = 1.0;
  /// Use the lazy-greedy (accelerated) maximizer; the plain greedy is kept
  /// for differential testing.
  bool lazy = true;
};

/// The coverage component f_cov(S) for a candidate summary S.
double coverage_value(const SimilarityGraph& graph,
                      const std::vector<std::size_t>& selected);

/// The diversity component f_div(S): number of partition components that S
/// intersects.
double diversity_value(const std::vector<int>& components,
                       const std::vector<std::size_t>& selected);

/// Full objective F(S) under `params`.
double objective_value(const SimilarityGraph& graph,
                       const std::vector<int>& components,
                       const std::vector<std::size_t>& selected,
                       const SsmmParams& params);

/// Result of the SSMM selection for one batch.
struct SsmmResult {
  std::vector<std::size_t> selected;  ///< Indices of retained unique images.
  std::vector<int> components;        ///< Component id per batch image.
  int budget = 0;                     ///< b = number of components.
  double objective = 0.0;             ///< F(selected).
};

/// Runs the whole SSMM pipeline on a pre-built similarity graph with the
/// given edge threshold Tw (Algorithm 1 lines 1-10).
SsmmResult select_unique_images(const SimilarityGraph& graph, double tw,
                                const SsmmParams& params = {});

/// Greedy maximization of F subject to |S| <= budget over an explicit
/// partition (exposed separately for tests and the fixed-budget ablation).
std::vector<std::size_t> greedy_maximize(const SimilarityGraph& graph,
                                         const std::vector<int>& components,
                                         int budget, const SsmmParams& params);

/// Exhaustive maximizer for small instances (n <= ~20); used by property
/// tests to validate the (1 - 1/e) guarantee.  Throws std::invalid_argument
/// for graphs larger than 20 vertices.
std::vector<std::size_t> brute_force_maximize(
    const SimilarityGraph& graph, const std::vector<int>& components,
    int budget, const SsmmParams& params);

}  // namespace bees::sub
