#include "submodular/graph.hpp"

#include <algorithm>
#include <numeric>

#include "features/match_kernel.hpp"
#include "features/similarity.hpp"
#include "util/thread_pool.hpp"

namespace bees::sub {

SimilarityGraph::SimilarityGraph(std::size_t n) : n_(n), w_(n * n, 0.0) {
  for (std::size_t i = 0; i < n; ++i) w_[i * n + i] = 1.0;
}

void SimilarityGraph::set_weight(std::size_t i, std::size_t j,
                                 double value) noexcept {
  if (i == j) return;  // self-weight is pinned at 1
  w_[i * n_ + j] = value;
  w_[j * n_ + i] = value;
}

SimilarityGraph build_similarity_graph(
    const std::vector<feat::BinaryFeatures>& batch,
    const feat::BinaryMatchParams& match, std::uint64_t* ops) {
  SimilarityGraph g(batch.size());
  feat::MatchWorkspace workspace;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t j = i + 1; j < batch.size(); ++j) {
      g.set_weight(i, j, feat::jaccard_similarity(batch[i], batch[j], match,
                                                  ops, workspace));
    }
  }
  return g;
}

SimilarityGraph build_similarity_graph(
    const std::vector<const feat::BinaryFeatures*>& batch,
    const feat::BinaryMatchParams& match, std::uint64_t* ops) {
  SimilarityGraph g(batch.size());
  feat::MatchWorkspace workspace;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t j = i + 1; j < batch.size(); ++j) {
      g.set_weight(i, j, feat::jaccard_similarity(*batch[i], *batch[j], match,
                                                  ops, workspace));
    }
  }
  return g;
}

SimilarityGraph build_similarity_graph_parallel(
    const std::vector<feat::BinaryFeatures>& batch,
    const feat::BinaryMatchParams& match, std::uint64_t* ops,
    std::size_t threads) {
  SimilarityGraph g(batch.size());
  if (batch.size() < 2) return g;
  // One task per row chunk computes weights (i, j > i); rows write
  // disjoint cells, so no synchronization is needed on the graph itself.
  // grain=2 keeps tiny batches from fanning out one-row tasks whose
  // scheduling overhead rivals the matching work.
  std::vector<std::uint64_t> row_ops(batch.size(), 0);
  util::ThreadPool pool(threads);
  pool.parallel_for_chunks(
      batch.size(),
      [&](std::size_t begin, std::size_t end) {
        feat::MatchWorkspace workspace;
        for (std::size_t i = begin; i < end; ++i) {
          for (std::size_t j = i + 1; j < batch.size(); ++j) {
            g.set_weight(i, j,
                         feat::jaccard_similarity(batch[i], batch[j], match,
                                                  &row_ops[i], workspace));
          }
        }
      },
      /*grain=*/2);
  if (ops) {
    for (const auto r : row_ops) *ops += r;
  }
  return g;
}

namespace {
/// Union-find with path compression for the component partition.
struct DisjointSet {
  std::vector<int> parent;

  explicit DisjointSet(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(a)] = b;
  }
};
}  // namespace

std::vector<int> partition_components(const SimilarityGraph& graph,
                                      double tw) {
  DisjointSet ds(graph.size());
  for (std::size_t i = 0; i < graph.size(); ++i) {
    for (std::size_t j = i + 1; j < graph.size(); ++j) {
      // Edges with weight >= tw survive the cut and merge components.
      if (graph.weight(i, j) >= tw) {
        ds.unite(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  std::vector<int> labels(graph.size(), -1);
  int next = 0;
  std::vector<int> root_label(graph.size(), -1);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const int root = ds.find(static_cast<int>(i));
    if (root_label[static_cast<std::size_t>(root)] < 0) {
      root_label[static_cast<std::size_t>(root)] = next++;
    }
    labels[i] = root_label[static_cast<std::size_t>(root)];
  }
  return labels;
}

int component_count(const std::vector<int>& labels) {
  int max_label = -1;
  for (const int l : labels) max_label = std::max(max_label, l);
  return max_label + 1;
}

}  // namespace bees::sub
