#include "submodular/ssmm.hpp"

#include <algorithm>
#include <bit>
#include <queue>
#include <stdexcept>

namespace bees::sub {

double coverage_value(const SimilarityGraph& graph,
                      const std::vector<std::size_t>& selected) {
  if (selected.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    double best = 0.0;
    for (const std::size_t j : selected) {
      best = std::max(best, graph.weight(i, j));
    }
    total += best;
  }
  return total;
}

double diversity_value(const std::vector<int>& components,
                       const std::vector<std::size_t>& selected) {
  const int n_comp = component_count(components);
  std::vector<char> seen(static_cast<std::size_t>(std::max(n_comp, 1)), 0);
  double covered = 0.0;
  for (const std::size_t i : selected) {
    const int c = components[i];
    if (!seen[static_cast<std::size_t>(c)]) {
      seen[static_cast<std::size_t>(c)] = 1;
      covered += 1.0;
    }
  }
  return covered;
}

double objective_value(const SimilarityGraph& graph,
                       const std::vector<int>& components,
                       const std::vector<std::size_t>& selected,
                       const SsmmParams& params) {
  return params.lambda_coverage * coverage_value(graph, selected) +
         params.lambda_diversity * diversity_value(components, selected);
}

namespace {

/// Incremental objective state: tracks per-vertex best coverage weight and
/// per-component hit flags so marginal gains are O(n) instead of O(n |S|).
struct GreedyState {
  const SimilarityGraph& graph;
  const std::vector<int>& components;
  const SsmmParams& params;
  std::vector<double> best_cover;  // max_{j in S} w(i, j) per vertex i
  std::vector<char> comp_hit;
  double objective = 0.0;

  GreedyState(const SimilarityGraph& g, const std::vector<int>& comps,
              const SsmmParams& p)
      : graph(g),
        components(comps),
        params(p),
        best_cover(g.size(), 0.0),
        comp_hit(static_cast<std::size_t>(
                     std::max(component_count(comps), 1)),
                 0) {}

  double gain_of(std::size_t v) const {
    double g = 0.0;
    for (std::size_t i = 0; i < graph.size(); ++i) {
      const double w = graph.weight(i, v);
      if (w > best_cover[i]) g += params.lambda_coverage * (w - best_cover[i]);
    }
    if (!comp_hit[static_cast<std::size_t>(components[v])]) {
      g += params.lambda_diversity;
    }
    return g;
  }

  void add(std::size_t v) {
    objective += gain_of(v);
    for (std::size_t i = 0; i < graph.size(); ++i) {
      best_cover[i] = std::max(best_cover[i], graph.weight(i, v));
    }
    comp_hit[static_cast<std::size_t>(components[v])] = 1;
  }
};

std::vector<std::size_t> plain_greedy(const SimilarityGraph& graph,
                                      const std::vector<int>& components,
                                      int budget, const SsmmParams& params) {
  GreedyState state(graph, components, params);
  std::vector<char> in_s(graph.size(), 0);
  std::vector<std::size_t> selected;
  const auto b = static_cast<std::size_t>(std::max(budget, 0));
  while (selected.size() < std::min(b, graph.size())) {
    double best_gain = -1.0;
    std::size_t best_v = graph.size();
    for (std::size_t v = 0; v < graph.size(); ++v) {
      if (in_s[v]) continue;
      const double g = state.gain_of(v);
      if (g > best_gain) {
        best_gain = g;
        best_v = v;
      }
    }
    if (best_v == graph.size()) break;
    state.add(best_v);
    in_s[best_v] = 1;
    selected.push_back(best_v);
  }
  return selected;
}

/// Lazy greedy (Minoux acceleration): cached gains are upper bounds by
/// submodularity, so a candidate whose refreshed gain still tops the heap
/// is the exact argmax.
std::vector<std::size_t> lazy_greedy(const SimilarityGraph& graph,
                                     const std::vector<int>& components,
                                     int budget, const SsmmParams& params) {
  GreedyState state(graph, components, params);
  struct HeapItem {
    double gain;
    std::size_t v;
    std::size_t stamp;  // |S| at which gain was computed
    bool operator<(const HeapItem& other) const {
      // Tie-break on the lower vertex index (max-heap: "less" = higher
      // index) so equal-gain candidates pop in the same order plain_greedy
      // scans them; without this the two variants could pick different —
      // equally good — summaries on tie-heavy graphs.
      if (gain != other.gain) return gain < other.gain;
      return v > other.v;
    }
  };
  std::priority_queue<HeapItem> heap;
  for (std::size_t v = 0; v < graph.size(); ++v) {
    heap.push({state.gain_of(v), v, 0});
  }
  std::vector<std::size_t> selected;
  const auto b = static_cast<std::size_t>(std::max(budget, 0));
  while (selected.size() < std::min(b, graph.size()) && !heap.empty()) {
    HeapItem top = heap.top();
    heap.pop();
    if (top.stamp == selected.size()) {
      state.add(top.v);
      selected.push_back(top.v);
    } else {
      top.gain = state.gain_of(top.v);
      top.stamp = selected.size();
      heap.push(top);
    }
  }
  return selected;
}

}  // namespace

std::vector<std::size_t> greedy_maximize(const SimilarityGraph& graph,
                                         const std::vector<int>& components,
                                         int budget,
                                         const SsmmParams& params) {
  return params.lazy ? lazy_greedy(graph, components, budget, params)
                     : plain_greedy(graph, components, budget, params);
}

std::vector<std::size_t> brute_force_maximize(
    const SimilarityGraph& graph, const std::vector<int>& components,
    int budget, const SsmmParams& params) {
  if (graph.size() > 20) {
    throw std::invalid_argument("brute_force_maximize: instance too large");
  }
  const auto n = graph.size();
  double best_val = -1.0;
  std::uint32_t best_mask = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    if (std::popcount(mask) > budget) continue;
    std::vector<std::size_t> s;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) s.push_back(v);
    }
    const double val = objective_value(graph, components, s, params);
    if (val > best_val) {
      best_val = val;
      best_mask = mask;
    }
  }
  std::vector<std::size_t> s;
  for (std::size_t v = 0; v < n; ++v) {
    if (best_mask & (1u << v)) s.push_back(v);
  }
  return s;
}

SsmmResult select_unique_images(const SimilarityGraph& graph, double tw,
                                const SsmmParams& params) {
  SsmmResult result;
  result.components = partition_components(graph, tw);
  result.budget = component_count(result.components);
  result.selected =
      greedy_maximize(graph, result.components, result.budget, params);
  std::sort(result.selected.begin(), result.selected.end());
  result.objective =
      objective_value(graph, result.components, result.selected, params);
  return result;
}

}  // namespace bees::sub
