// Experiment drivers shared by the benches and integration tests: the
// battery-lifetime loop of Fig. 9 (upload one group per interval until the
// battery dies), the multi-phone coverage protocol of Fig. 12, and the
// cross-batch redundancy seeding used by Figs. 7, 10, and 11.
#pragma once

#include <algorithm>
#include <vector>

#include "core/scheme.hpp"
#include "features/global.hpp"
#include "features/pca.hpp"
#include "util/rng.hpp"
#include "workload/imageset.hpp"

namespace bees::core {

/// Pre-seeds `server` so that a `ratio` fraction of `batch` has a
/// near-duplicate (similarity > 0.3) already stored — the Fig. 7 setup of
/// "adding the redundant images into the servers".  Duplicates are indexed
/// under both feature types (when `pca` is provided) so every scheme can
/// detect them, as the paper's fairness note requires.  Returns the batch
/// indices that were made redundant.
/// `image_byte_scale` scales the recorded thumbnail payloads into the same
/// paper-byte domain as image uploads.
///
/// Templated over the server so the same seeding drives a single
/// cloud::Server or a serve::Cluster: `ServerLike` needs seed_binary /
/// seed_global / seed_float with cloud::Server's signatures.
template <typename ServerLike>
std::vector<std::size_t> seed_cross_batch_redundancy(
    const std::vector<wl::ImageSpec>& batch, double ratio,
    wl::ImageStore& store, ServerLike& server, const feat::PcaModel* pca,
    std::uint64_t seed, double image_byte_scale = 1.0) {
  util::Rng rng(seed);
  std::vector<std::size_t> indices(batch.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.shuffle(indices);
  const auto count = static_cast<std::size_t>(
      std::clamp(ratio, 0.0, 1.0) * static_cast<double>(batch.size()) + 0.5);
  indices.resize(std::min(count, batch.size()));

  for (const std::size_t i : indices) {
    const wl::ImageSpec dup = wl::make_near_duplicate(batch[i], seed ^ i);
    const double thumb =
        static_cast<double>(store.encoded(dup, 0.75, 0.5).bytes) *
        image_byte_scale;
    server.seed_binary(store.orb(dup, 0.0), dup.geo, thumb);
    server.seed_global(feat::color_histogram(store.pixels(dup)), dup.geo);
    if (pca != nullptr) {
      server.seed_float(store.pca_sift(dup, *pca), dup.geo);
    }
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

/// One sample of the Fig. 9 battery curve.
struct LifetimePoint {
  double hours = 0.0;
  double battery_fraction = 1.0;
};

struct LifetimeResult {
  std::vector<LifetimePoint> curve;  ///< One point per completed interval.
  double lifetime_hours = 0.0;       ///< Time at which the battery died (or
                                     ///< the run ended with charge left).
  int groups_uploaded = 0;
  bool battery_died = false;
  BatchReport totals;
};

/// Uploads one group every `interval_s` seconds until the battery dies or
/// the groups run out.  Idle/screen power drains for the full wall-clock
/// interval; active costs are charged inside the scheme.
LifetimeResult run_lifetime(UploadScheme& scheme,
                            const std::vector<std::vector<wl::ImageSpec>>& groups,
                            double interval_s, cloud::Server& server,
                            net::Channel& channel, energy::Battery& battery);

/// One phone of the Fig. 12 coverage experiment.
struct CoveragePhone {
  UploadScheme* scheme = nullptr;
  net::Channel channel;
  energy::Battery battery;
  std::vector<std::vector<wl::ImageSpec>> groups;
  std::size_t next_group = 0;
};

struct CoverageResult {
  std::size_t images_received = 0;
  std::size_t unique_locations = 0;
  double hours_elapsed = 0.0;
};

/// Runs all phones against one shared server, one group per phone per
/// interval, until every battery is dead or every group uploaded.
CoverageResult run_coverage(std::vector<CoveragePhone>& phones,
                            double interval_s, cloud::Server& server);

/// Splits an imageset into consecutive fixed-size upload groups (the last
/// partial group is kept).
std::vector<std::vector<wl::ImageSpec>> slice_groups(const wl::Imageset& set,
                                                     std::size_t group_size);

}  // namespace bees::core
