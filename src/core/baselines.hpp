// The paper's comparison schemes:
//   - DirectUpload: ship every image as shot, no feature work.
//   - SmartEye (Hua et al., INFOCOM 2015): PCA-SIFT features uploaded for
//     cross-batch redundancy detection; unique images uploaded as shot.
//   - MRC (Dao et al., CoNEXT 2014): ORB features uploaded for cross-batch
//     redundancy detection with thumbnail feedback from the server; unique
//     images uploaded as shot.
// Neither baseline performs in-batch elimination, approximate extraction,
// upload compression, or energy adaptation — those are BEES's additions.
#pragma once

#include "core/scheme.hpp"
#include "features/pca.hpp"
#include "index/serialize.hpp"
#include "workload/imageset.hpp"

namespace bees::core {

class DirectUploadScheme final : public UploadScheme {
 public:
  DirectUploadScheme(wl::ImageStore& store, SchemeConfig config)
      : UploadScheme("DirectUpload", store, std::move(config)) {}

  /// Resumes an aborted batch from the first not-yet-stored image when
  /// called again with the same batch (see BeesScheme::upload_batch).
  BatchReport upload_batch(const std::vector<wl::ImageSpec>& batch,
                           cloud::Server& server, net::Channel& channel,
                           energy::Battery& battery) override;

 private:
  struct Progress {
    bool active = false;
    std::uint64_t key = 0;
    std::size_t next = 0;  ///< First image not yet stored server-side.
  };
  Progress progress_;
};

class SmartEyeScheme final : public UploadScheme {
 public:
  /// `pca` is the offline-trained PCA-SIFT projection (see train_pca_model).
  SmartEyeScheme(wl::ImageStore& store, SchemeConfig config,
                 std::shared_ptr<const feat::PcaModel> pca)
      : UploadScheme("SmartEye", store, std::move(config)),
        pca_(std::move(pca)) {}

  /// Resumes an aborted batch mid-phase when called again with the same
  /// batch (see BeesScheme::upload_batch).
  BatchReport upload_batch(const std::vector<wl::ImageSpec>& batch,
                           cloud::Server& server, net::Channel& channel,
                           energy::Battery& battery) override;

 private:
  struct Progress {
    bool active = false;
    std::uint64_t key = 0;
    std::size_t extracted = 0;  ///< Images whose feature CPU was charged.
    std::size_t queried = 0;    ///< Images with a delivered query round.
    std::vector<std::size_t> unique;  ///< Verdict: upload in phase 2.
    std::size_t next_upload = 0;      ///< Index into `unique`.
  };

  std::shared_ptr<const feat::PcaModel> pca_;
  Progress progress_;
};

class MrcScheme final : public UploadScheme {
 public:
  MrcScheme(wl::ImageStore& store, SchemeConfig config)
      : UploadScheme("MRC", store, std::move(config)) {}

  /// Resumes an aborted batch mid-phase when called again with the same
  /// batch (see BeesScheme::upload_batch).
  BatchReport upload_batch(const std::vector<wl::ImageSpec>& batch,
                           cloud::Server& server, net::Channel& channel,
                           energy::Battery& battery) override;

 private:
  struct Progress {
    bool active = false;
    std::uint64_t key = 0;
    std::size_t extracted = 0;
    std::size_t queried = 0;
    std::vector<std::size_t> unique;
    std::size_t next_upload = 0;
  };
  Progress progress_;
};

/// Trains the PCA-SIFT projection on the SIFT descriptors of up to
/// `max_training_images` images from `training` (Ke & Sukthankar's offline
/// step, shared by SmartEye and the precision benches).
feat::PcaModel train_pca_model(wl::ImageStore& store,
                               const wl::Imageset& training,
                               std::size_t max_training_images = 24,
                               int output_dim = 36);

}  // namespace bees::core
