#include "core/simulation.hpp"

#include <algorithm>

#include "features/global.hpp"
#include "util/rng.hpp"

namespace bees::core {

std::vector<std::size_t> seed_cross_batch_redundancy(
    const std::vector<wl::ImageSpec>& batch, double ratio,
    wl::ImageStore& store, cloud::Server& server, const feat::PcaModel* pca,
    std::uint64_t seed, double image_byte_scale) {
  util::Rng rng(seed);
  std::vector<std::size_t> indices(batch.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.shuffle(indices);
  const auto count = static_cast<std::size_t>(
      std::clamp(ratio, 0.0, 1.0) * static_cast<double>(batch.size()) + 0.5);
  indices.resize(std::min(count, batch.size()));

  for (const std::size_t i : indices) {
    const wl::ImageSpec dup = wl::make_near_duplicate(batch[i], seed ^ i);
    const double thumb =
        static_cast<double>(store.encoded(dup, 0.75, 0.5).bytes) *
        image_byte_scale;
    server.seed_binary(store.orb(dup, 0.0), dup.geo, thumb);
    server.seed_global(feat::color_histogram(store.pixels(dup)), dup.geo);
    if (pca != nullptr) {
      server.seed_float(store.pca_sift(dup, *pca), dup.geo);
    }
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

LifetimeResult run_lifetime(
    UploadScheme& scheme, const std::vector<std::vector<wl::ImageSpec>>& groups,
    double interval_s, cloud::Server& server, net::Channel& channel,
    energy::Battery& battery) {
  LifetimeResult result;
  result.curve.push_back({0.0, battery.fraction()});
  double now_s = 0.0;
  for (const auto& group : groups) {
    if (battery.depleted()) break;
    const BatchReport report =
        scheme.upload_batch(group, server, channel, battery);
    result.totals += report;
    if (!report.aborted) ++result.groups_uploaded;

    // The group occupies at least one interval of wall-clock time; slower
    // uploads spill into the next interval (the phone keeps transmitting).
    const double wall = std::max(interval_s, report.busy_seconds());
    battery.drain(scheme.config().cost.idle_energy(wall));
    channel.advance(std::max(0.0, wall - report.busy_seconds()));
    now_s += wall;
    result.curve.push_back({now_s / 3600.0, battery.fraction()});
    if (report.aborted || battery.depleted()) {
      result.battery_died = true;
      break;
    }
  }
  result.lifetime_hours = now_s / 3600.0;
  result.battery_died = result.battery_died || battery.depleted();
  return result;
}

CoverageResult run_coverage(std::vector<CoveragePhone>& phones,
                            double interval_s, cloud::Server& server) {
  CoverageResult result;
  double now_s = 0.0;
  bool any_progress = true;
  while (any_progress) {
    any_progress = false;
    for (auto& phone : phones) {
      if (phone.battery.depleted() ||
          phone.next_group >= phone.groups.size()) {
        continue;
      }
      const BatchReport report = phone.scheme->upload_batch(
          phone.groups[phone.next_group], server, phone.channel,
          phone.battery);
      ++phone.next_group;
      const double wall = std::max(interval_s, report.busy_seconds());
      phone.battery.drain(
          phone.scheme->config().cost.idle_energy(wall));
      phone.channel.advance(std::max(0.0, wall - report.busy_seconds()));
      if (!report.aborted) any_progress = true;
    }
    now_s += interval_s;
  }
  result.images_received = server.stats().images_stored;
  result.unique_locations = server.stats().unique_locations;
  result.hours_elapsed = now_s / 3600.0;
  return result;
}

std::vector<std::vector<wl::ImageSpec>> slice_groups(const wl::Imageset& set,
                                                     std::size_t group_size) {
  std::vector<std::vector<wl::ImageSpec>> groups;
  if (group_size == 0) return groups;
  for (std::size_t start = 0; start < set.images.size();
       start += group_size) {
    const std::size_t end =
        std::min(start + group_size, set.images.size());
    groups.emplace_back(set.images.begin() + static_cast<std::ptrdiff_t>(start),
                        set.images.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return groups;
}

}  // namespace bees::core
