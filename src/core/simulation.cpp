#include "core/simulation.hpp"

#include <algorithm>

namespace bees::core {

LifetimeResult run_lifetime(
    UploadScheme& scheme, const std::vector<std::vector<wl::ImageSpec>>& groups,
    double interval_s, cloud::Server& server, net::Channel& channel,
    energy::Battery& battery) {
  LifetimeResult result;
  result.curve.push_back({0.0, battery.fraction()});
  double now_s = 0.0;
  for (const auto& group : groups) {
    if (battery.depleted()) break;
    const BatchReport report =
        scheme.upload_batch(group, server, channel, battery);
    result.totals += report;
    if (!report.aborted) ++result.groups_uploaded;

    // The group occupies at least one interval of wall-clock time; slower
    // uploads spill into the next interval (the phone keeps transmitting).
    const double wall = std::max(interval_s, report.busy_seconds());
    battery.drain(scheme.config().cost.idle_energy(wall));
    channel.advance(std::max(0.0, wall - report.busy_seconds()));
    now_s += wall;
    result.curve.push_back({now_s / 3600.0, battery.fraction()});
    if (report.aborted || battery.depleted()) {
      result.battery_died = true;
      break;
    }
  }
  result.lifetime_hours = now_s / 3600.0;
  result.battery_died = result.battery_died || battery.depleted();
  return result;
}

CoverageResult run_coverage(std::vector<CoveragePhone>& phones,
                            double interval_s, cloud::Server& server) {
  CoverageResult result;
  double now_s = 0.0;
  bool any_progress = true;
  while (any_progress) {
    any_progress = false;
    for (auto& phone : phones) {
      if (phone.battery.depleted() ||
          phone.next_group >= phone.groups.size()) {
        continue;
      }
      const BatchReport report = phone.scheme->upload_batch(
          phone.groups[phone.next_group], server, phone.channel,
          phone.battery);
      ++phone.next_group;
      const double wall = std::max(interval_s, report.busy_seconds());
      phone.battery.drain(
          phone.scheme->config().cost.idle_energy(wall));
      phone.channel.advance(std::max(0.0, wall - report.busy_seconds()));
      if (!report.aborted) any_progress = true;
    }
    now_s += interval_s;
  }
  result.images_received = server.stats().images_stored;
  result.unique_locations = server.stats().unique_locations;
  result.hours_elapsed = now_s / 3600.0;
  return result;
}

std::vector<std::vector<wl::ImageSpec>> slice_groups(const wl::Imageset& set,
                                                     std::size_t group_size) {
  std::vector<std::vector<wl::ImageSpec>> groups;
  if (group_size == 0) return groups;
  for (std::size_t start = 0; start < set.images.size();
       start += group_size) {
    const std::size_t end =
        std::min(start + group_size, set.images.size());
    groups.emplace_back(set.images.begin() + static_cast<std::ptrdiff_t>(start),
                        set.images.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return groups;
}

}  // namespace bees::core
