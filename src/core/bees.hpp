// The BEES client pipeline — the paper's primary contribution (§II-III):
//
//   AFE  Approximate Feature Extraction: ORB on a bitmap compressed by the
//        EAC proportion C(Ebat) = 0.4 - 0.4 Ebat.
//   ARD  Approximate Redundancy Detection:
//          CBRD — query the server index; redundant if max similarity
//                 exceeds the EDR threshold T(Ebat) = 0.013 + 0.006 Ebat,
//          IBRD — SSMM over the remaining batch images with edge threshold
//                 Tw(Ebat); only the selected summary survives.
//   AIU  Approximate Image Uploading: survivors are re-encoded with the
//        fixed 0.85 quality proportion and the EAU resolution proportion
//        Cr(Ebat) = 0.8 - 0.8 Ebat before transmission.
//
// With `adaptive` false the knobs are pinned at their full-energy values —
// that configuration is the paper's BEES-EA ablation.
#pragma once

#include "core/scheme.hpp"
#include "energy/adaptive.hpp"
#include "workload/imageset.hpp"

namespace bees::core {

/// Per-stage outcome of the last processed batch, exposed for tests and the
/// Fig. 8 energy-breakdown bench.
struct BeesBatchTrace {
  energy::adapt::Knobs knobs;          ///< Knob values used for the batch.
  std::vector<std::size_t> cross_redundant;  ///< Batch indices CBRD dropped.
  std::vector<std::size_t> selected;         ///< Batch indices AIU uploaded.
  int ssmm_budget = 0;
};

class BeesScheme final : public UploadScheme {
 public:
  /// `adaptive` selects BEES (true) or BEES-EA (false).
  BeesScheme(wl::ImageStore& store, SchemeConfig config, bool adaptive = true)
      : UploadScheme(adaptive ? "BEES" : "BEES-EA", store, std::move(config)),
        adaptive_(adaptive) {}

  /// Uploads one batch.  If the previous call on the same batch aborted
  /// (battery death or retry-budget exhaustion), this resumes from the last
  /// completed step instead of redoing delivered work: knob settings stay
  /// pinned, extracted features / delivered feature rounds / stored images
  /// are not repeated, and images_offered is counted only once.
  BatchReport upload_batch(const std::vector<wl::ImageSpec>& batch,
                           cloud::Server& server, net::Channel& channel,
                           energy::Battery& battery) override;

  bool adaptive() const noexcept { return adaptive_; }
  /// Stage-level details of the most recent upload_batch call.
  const BeesBatchTrace& last_trace() const noexcept { return trace_; }
  /// True while an aborted batch is waiting to be resumed.
  bool resumable() const noexcept { return progress_.active; }

 private:
  /// Resume bookkeeping for an in-flight (aborted) batch.
  struct Progress {
    bool active = false;
    std::uint64_t key = 0;               ///< batch_key of the batch.
    energy::adapt::Knobs knobs;          ///< Pinned at batch start.
    std::size_t features_extracted = 0;  ///< AFE work already charged.
    bool features_sent = false;          ///< Batch query round delivered.
    std::vector<net::QueryResponse> verdicts;  ///< Saved CBRD verdicts.
    bool ssmm_done = false;
    std::vector<std::size_t> selected;   ///< AIU plan (batch indices).
    std::size_t next_upload = 0;         ///< First not-yet-stored entry.
  };

  bool adaptive_;
  BeesBatchTrace trace_;
  Progress progress_;
};

}  // namespace bees::core
