// PhotoNet-style baseline (Uddin et al., RTSS 2011 — cited by the paper as
// the metadata/global-feature end of the design space): redundancy is
// detected with geotags and color histograms only.  Extraction is orders
// cheaper than any local-feature scheme and the query payload is a few
// hundred bytes, but detection is markedly less accurate (see
// bench/ablation_global_features) — the trade-off the paper invokes to
// justify local features in BEES.
//
// Not part of the paper's own comparison set; provided as an extension
// baseline.
#pragma once

#include "core/scheme.hpp"
#include "features/global.hpp"
#include "workload/imageset.hpp"

namespace bees::core {

/// Color-histogram intersection above which PhotoNet considers two photos
/// redundant.  Calibrated on the synthetic scenes so that near-duplicates
/// (intersection ~0.85+) trip it while most unrelated pairs (~0.4-0.7)
/// do not.
inline constexpr double kPhotoNetThreshold = 0.8;

class PhotoNetScheme final : public UploadScheme {
 public:
  PhotoNetScheme(wl::ImageStore& store, SchemeConfig config)
      : UploadScheme("PhotoNet", store, std::move(config)) {}

  /// Resumes an aborted batch mid-phase when called again with the same
  /// batch (see BeesScheme::upload_batch).
  BatchReport upload_batch(const std::vector<wl::ImageSpec>& batch,
                           cloud::Server& server, net::Channel& channel,
                           energy::Battery& battery) override;

 private:
  struct Progress {
    bool active = false;
    std::uint64_t key = 0;
    std::size_t queried = 0;
    std::vector<std::size_t> unique;
    std::size_t next_upload = 0;
    /// Histograms computed so far (phase 2 re-uses them for the store).
    std::vector<feat::ColorHistogram> histograms;
  };
  Progress progress_;
};

}  // namespace bees::core
