#include "core/baselines.hpp"

namespace bees::core {

BatchReport DirectUploadScheme::upload_batch(
    const std::vector<wl::ImageSpec>& batch, cloud::Server& server,
    net::Channel& channel, energy::Battery& battery) {
  BatchReport report;
  report.images_offered = static_cast<int>(batch.size());
  for (const auto& spec : batch) {
    if (battery.depleted()) {
      report.aborted = true;
      break;
    }
    // The photo already exists as a camera JPEG; no client CPU is charged.
    const wl::EncodedImage enc = store().original(spec);
    const double bytes = image_wire_bytes(enc.bytes);
    const double secs = transfer_up(bytes, channel, battery);
    report.image_tx_seconds += secs;
    report.image_bytes += bytes;
    report.energy.image_tx_j += secs * config().cost.tx_power_w;
    server.store_plain(bytes, spec.geo);
    ++report.images_uploaded;
  }
  return report;
}

BatchReport SmartEyeScheme::upload_batch(
    const std::vector<wl::ImageSpec>& batch, cloud::Server& server,
    net::Channel& channel, energy::Battery& battery) {
  BatchReport report;
  report.images_offered = static_cast<int>(batch.size());

  // Phase 1 — extract and upload the whole batch's features, query the
  // server index as of batch start.  Because nothing is inserted until
  // phase 2, in-batch similar images cannot match each other: exactly the
  // blind spot the paper ascribes to the existing schemes (§I challenge 1).
  std::vector<std::size_t> unique;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    // PCA-SIFT extraction (SIFT + projection; stats carry the total work).
    const feat::FloatFeatures& features = store().pca_sift(batch[i], *pca_);
    report.compute_seconds += charge_compute(features.stats.ops, battery);
    report.energy.extraction_j +=
        config().cost.compute_energy(features.stats.ops);

    const double fbytes =
        static_cast<double>(idx::serialize_float(features).size());
    const double fsecs = transfer_up(fbytes, channel, battery);
    report.feature_tx_seconds += fsecs;
    report.feature_bytes += fbytes;
    report.energy.feature_tx_j += fsecs * config().cost.tx_power_w;

    const idx::QueryResult result =
        server.query_float(features, fbytes, config().top_k);
    if (result.max_similarity > kSmartEyeSimilarityThreshold) {
      ++report.eliminated_cross_batch;
    } else {
      unique.push_back(i);
    }
  }

  // Phase 2 — upload the unique images as shot.
  for (const std::size_t i : unique) {
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const wl::EncodedImage enc = store().original(batch[i]);
    const double bytes = image_wire_bytes(enc.bytes);
    const double secs = transfer_up(bytes, channel, battery);
    report.image_tx_seconds += secs;
    report.image_bytes += bytes;
    report.energy.image_tx_j += secs * config().cost.tx_power_w;
    server.store_float(store().pca_sift(batch[i], *pca_), bytes,
                       batch[i].geo);
    ++report.images_uploaded;
  }
  return report;
}

BatchReport MrcScheme::upload_batch(const std::vector<wl::ImageSpec>& batch,
                                    cloud::Server& server,
                                    net::Channel& channel,
                                    energy::Battery& battery) {
  BatchReport report;
  report.images_offered = static_cast<int>(batch.size());

  // Phase 1 — features and queries against the index as of batch start
  // (cross-batch detection only; see the SmartEye comment).
  std::vector<std::size_t> unique;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    // Full-resolution ORB extraction (MRC does not compress bitmaps).
    const feat::BinaryFeatures& features = store().orb(batch[i], 0.0);
    report.compute_seconds += charge_compute(features.stats.ops, battery);
    report.energy.extraction_j +=
        config().cost.compute_energy(features.stats.ops);

    const double fbytes =
        static_cast<double>(idx::serialize_binary(features).size());
    const double fsecs = transfer_up(fbytes, channel, battery);
    report.feature_tx_seconds += fsecs;
    report.feature_bytes += fbytes;
    report.energy.feature_tx_j += fsecs * config().cost.tx_power_w;

    const idx::QueryResult result =
        server.query_binary(features, fbytes, config().top_k);
    // MRC's protocol returns a thumbnail of the candidate match for
    // client-side verification — the extra downlink the paper points to in
    // Fig. 10 ("MRC consumes a little more bandwidth ... due to requiring
    // thumbnail feedback").  The payload is the stored image's measured
    // thumbnail size (kThumbnailBytes when the server has no record).
    if (!result.hits.empty() && result.max_similarity > 0.0) {
      double thumb = server.thumbnail_bytes_of(result.best_id);
      if (thumb <= 0.0) thumb = kThumbnailBytes;
      const double rsecs = transfer_down(thumb, channel, battery);
      report.rx_seconds += rsecs;
      report.rx_bytes += thumb;
      report.energy.rx_j += rsecs * config().cost.rx_power_w;
    }
    if (result.max_similarity > kFixedSimilarityThreshold) {
      ++report.eliminated_cross_batch;
    } else {
      unique.push_back(i);
    }
  }

  // Phase 2 — upload the unique images as shot.
  for (const std::size_t i : unique) {
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const wl::EncodedImage enc = store().original(batch[i]);
    const double bytes = image_wire_bytes(enc.bytes);
    const double secs = transfer_up(bytes, channel, battery);
    report.image_tx_seconds += secs;
    report.image_bytes += bytes;
    report.energy.image_tx_j += secs * config().cost.tx_power_w;
    const wl::EncodedImage thumb = store().encoded(batch[i], 0.75, 0.5);
    server.store_binary(store().orb(batch[i], 0.0), bytes, batch[i].geo,
                        image_wire_bytes(thumb.bytes));
    ++report.images_uploaded;
  }
  return report;
}

feat::PcaModel train_pca_model(wl::ImageStore& store,
                               const wl::Imageset& training,
                               std::size_t max_training_images,
                               int output_dim) {
  std::vector<feat::FloatFeatures> sets;
  const std::size_t n = std::min(max_training_images, training.images.size());
  sets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sets.push_back(store.sift(training.images[i]));
  }
  return feat::fit_pca_sift(sets, output_dim);
}

}  // namespace bees::core
