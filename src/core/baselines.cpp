#include "core/baselines.hpp"

namespace bees::core {

BatchReport DirectUploadScheme::upload_batch(
    const std::vector<wl::ImageSpec>& batch, cloud::Server& server,
    net::Channel& channel, energy::Battery& battery) {
  BatchReport report;
  const std::uint64_t key = batch_key(batch);
  if (!progress_.active || progress_.key != key) {
    progress_ = {};
    progress_.active = true;
    progress_.key = key;
    report.images_offered = static_cast<int>(batch.size());
  }
  net::Transport transport = make_transport(server, channel);
  StageProbe stage("upload", report, channel.now());

  while (progress_.next < batch.size()) {
    const wl::ImageSpec& spec = batch[progress_.next];
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    // The photo already exists as a camera JPEG; no client CPU is charged.
    const wl::EncodedImage enc = store().original(spec);
    const double bytes = image_wire_bytes(enc.bytes);
    net::PlainUploadRequest upload;
    upload.image_bytes = bytes;
    upload.geo = spec.geo;
    std::span<const std::uint8_t> payload;
    if (config().chunking.enabled) payload = store().original_payload(spec);
    const auto env = upload_payload(transport, payload, bytes,
                                    net::encode(upload), battery, report);
    if (!env) {
      report.aborted = true;
      return report;
    }
    ++report.images_uploaded;
    progress_.next += 1;
  }
  progress_ = {};
  return report;
}

BatchReport SmartEyeScheme::upload_batch(
    const std::vector<wl::ImageSpec>& batch, cloud::Server& server,
    net::Channel& channel, energy::Battery& battery) {
  BatchReport report;
  const std::uint64_t key = batch_key(batch);
  if (!progress_.active || progress_.key != key) {
    progress_ = {};
    progress_.active = true;
    progress_.key = key;
    report.images_offered = static_cast<int>(batch.size());
  }
  net::Transport transport = make_transport(server, channel);
  const double anchor_s = channel.now();

  // Phase 1 — extract and upload the whole batch's features, query the
  // server index as of batch start.  Because nothing is inserted until
  // phase 2, in-batch similar images cannot match each other: exactly the
  // blind spot the paper ascribes to the existing schemes (§I challenge 1).
  StageProbe query_stage("query", report, anchor_s);
  while (progress_.queried < batch.size()) {
    const std::size_t i = progress_.queried;
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    // PCA-SIFT extraction (SIFT + projection; stats carry the total work).
    const feat::FloatFeatures& features = store().pca_sift(batch[i], *pca_);
    if (i >= progress_.extracted) {
      report.compute_seconds += charge_compute(features.stats.ops, battery);
      report.energy.extraction_j +=
          config().cost.compute_energy(features.stats.ops);
      progress_.extracted = i + 1;
    }

    const double fbytes =
        static_cast<double>(idx::serialize_float(features).size());
    const auto env =
        exchange(transport, net::encode_float_query(features, config().top_k,
                                                    fbytes),
                 fbytes, TxKind::kFeature, battery, report);
    if (!env) {
      report.aborted = true;
      return report;
    }
    const net::QueryResponse verdict = net::decode_query_response(env->payload);
    if (verdict.max_similarity > kSmartEyeSimilarityThreshold) {
      ++report.eliminated_cross_batch;
    } else {
      progress_.unique.push_back(i);
    }
    progress_.queried = i + 1;
  }
  query_stage.end();

  // Phase 2 — upload the unique images as shot.
  StageProbe upload_stage("upload", report, anchor_s);
  while (progress_.next_upload < progress_.unique.size()) {
    const std::size_t i = progress_.unique[progress_.next_upload];
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const wl::EncodedImage enc = store().original(batch[i]);
    const double bytes = image_wire_bytes(enc.bytes);
    const auto request = net::encode_float_upload(
        store().pca_sift(batch[i], *pca_), bytes, batch[i].geo);
    std::span<const std::uint8_t> payload;
    if (config().chunking.enabled) payload = store().original_payload(batch[i]);
    const auto env =
        upload_payload(transport, payload, bytes, request, battery, report);
    if (!env) {
      report.aborted = true;
      return report;
    }
    ++report.images_uploaded;
    progress_.next_upload += 1;
  }
  progress_ = {};
  return report;
}

BatchReport MrcScheme::upload_batch(const std::vector<wl::ImageSpec>& batch,
                                    cloud::Server& server,
                                    net::Channel& channel,
                                    energy::Battery& battery) {
  BatchReport report;
  const std::uint64_t key = batch_key(batch);
  if (!progress_.active || progress_.key != key) {
    progress_ = {};
    progress_.active = true;
    progress_.key = key;
    report.images_offered = static_cast<int>(batch.size());
  }
  net::Transport transport = make_transport(server, channel);
  const double anchor_s = channel.now();

  // Phase 1 — features and queries against the index as of batch start
  // (cross-batch detection only; see the SmartEye comment).
  StageProbe query_stage("query", report, anchor_s);
  while (progress_.queried < batch.size()) {
    const std::size_t i = progress_.queried;
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    // Full-resolution ORB extraction (MRC does not compress bitmaps).
    const feat::BinaryFeatures& features = store().orb(batch[i], 0.0);
    if (i >= progress_.extracted) {
      report.compute_seconds += charge_compute(features.stats.ops, battery);
      report.energy.extraction_j +=
          config().cost.compute_energy(features.stats.ops);
      progress_.extracted = i + 1;
    }

    const double fbytes =
        static_cast<double>(idx::serialize_binary(features).size());
    const auto env =
        exchange(transport, net::encode_binary_query(features, config().top_k,
                                                     fbytes),
                 fbytes, TxKind::kFeature, battery, report);
    if (!env) {
      report.aborted = true;
      return report;
    }
    const net::QueryResponse verdict = net::decode_query_response(env->payload);
    // MRC's protocol returns a thumbnail of the candidate match for
    // client-side verification — the extra downlink the paper points to in
    // Fig. 10 ("MRC consumes a little more bandwidth ... due to requiring
    // thumbnail feedback").  The payload is the stored image's measured
    // thumbnail size (kThumbnailBytes when the server has no record).
    if (verdict.best_id != idx::kInvalidImageId &&
        verdict.max_similarity > 0.0) {
      double thumb = verdict.thumbnail_bytes;
      if (thumb <= 0.0) thumb = kThumbnailBytes;
      const double rsecs = transfer_down(thumb, channel, battery);
      report.rx_seconds += rsecs;
      report.rx_bytes += thumb;
      report.energy.rx_j += rsecs * config().cost.rx_power_w;
    }
    if (verdict.max_similarity > kFixedSimilarityThreshold) {
      ++report.eliminated_cross_batch;
    } else {
      progress_.unique.push_back(i);
    }
    progress_.queried = i + 1;
  }
  query_stage.end();

  // Phase 2 — upload the unique images as shot.
  StageProbe upload_stage("upload", report, anchor_s);
  while (progress_.next_upload < progress_.unique.size()) {
    const std::size_t i = progress_.unique[progress_.next_upload];
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const wl::EncodedImage enc = store().original(batch[i]);
    const double bytes = image_wire_bytes(enc.bytes);
    const wl::EncodedImage thumb = store().encoded(batch[i], 0.75, 0.5);
    const auto request =
        net::encode_image_upload(store().orb(batch[i], 0.0), bytes,
                                 batch[i].geo, image_wire_bytes(thumb.bytes));
    std::span<const std::uint8_t> payload;
    if (config().chunking.enabled) payload = store().original_payload(batch[i]);
    const auto env =
        upload_payload(transport, payload, bytes, request, battery, report);
    if (!env) {
      report.aborted = true;
      return report;
    }
    ++report.images_uploaded;
    progress_.next_upload += 1;
  }
  progress_ = {};
  return report;
}

feat::PcaModel train_pca_model(wl::ImageStore& store,
                               const wl::Imageset& training,
                               std::size_t max_training_images,
                               int output_dim) {
  std::vector<feat::FloatFeatures> sets;
  const std::size_t n = std::min(max_training_images, training.images.size());
  sets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sets.push_back(store.sift(training.images[i]));
  }
  return feat::fit_pca_sift(sets, output_dim);
}

}  // namespace bees::core
