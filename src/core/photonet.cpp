#include "core/photonet.hpp"

namespace bees::core {

BatchReport PhotoNetScheme::upload_batch(
    const std::vector<wl::ImageSpec>& batch, cloud::Server& server,
    net::Channel& channel, energy::Battery& battery) {
  BatchReport report;
  const std::uint64_t key = batch_key(batch);
  if (!progress_.active || progress_.key != key) {
    progress_ = {};
    progress_.active = true;
    progress_.key = key;
    report.images_offered = static_cast<int>(batch.size());
  }
  net::Transport transport = make_transport(server, channel);
  const double anchor_s = channel.now();

  // Phase 1 — global features for the whole batch, queried against the
  // server state as of batch start (like the other baselines, PhotoNet
  // cannot see in-batch redundancy from the index alone).
  StageProbe query_stage("query", report, anchor_s);
  while (progress_.queried < batch.size()) {
    const std::size_t i = progress_.queried;
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    if (i >= progress_.histograms.size()) {
      std::uint64_t ops = 0;
      progress_.histograms.push_back(
          feat::color_histogram(store().pixels(batch[i]), &ops));
      report.compute_seconds += charge_compute(ops, battery);
      report.energy.extraction_j += config().cost.compute_energy(ops);
    }

    // The query payload: the histogram (kBins floats) + the geotag.
    const double fbytes = feat::ColorHistogram::kBins * 4.0 + 17.0;
    net::GlobalQueryRequest query;
    query.histogram = progress_.histograms[i];
    query.geo = batch[i].geo;
    query.feature_bytes = fbytes;
    const auto env = exchange(transport, net::encode(query), fbytes,
                              TxKind::kFeature, battery, report);
    if (!env) {
      report.aborted = true;
      return report;
    }
    const net::QueryResponse verdict = net::decode_query_response(env->payload);
    if (verdict.max_similarity > kPhotoNetThreshold) {
      ++report.eliminated_cross_batch;
    } else {
      progress_.unique.push_back(i);
    }
    progress_.queried = i + 1;
  }
  query_stage.end();

  // Phase 2 — upload the unique images as shot.
  StageProbe upload_stage("upload", report, anchor_s);
  while (progress_.next_upload < progress_.unique.size()) {
    const std::size_t i = progress_.unique[progress_.next_upload];
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const wl::EncodedImage enc = store().original(batch[i]);
    const double bytes = image_wire_bytes(enc.bytes);
    net::GlobalUploadRequest upload;
    upload.histogram = progress_.histograms[i];
    upload.image_bytes = bytes;
    upload.geo = batch[i].geo;
    std::span<const std::uint8_t> payload;
    if (config().chunking.enabled) payload = store().original_payload(batch[i]);
    const auto env = upload_payload(transport, payload, bytes,
                                    net::encode(upload), battery, report);
    if (!env) {
      report.aborted = true;
      return report;
    }
    ++report.images_uploaded;
    progress_.next_upload += 1;
  }
  progress_ = {};
  return report;
}

}  // namespace bees::core
