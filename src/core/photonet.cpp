#include "core/photonet.hpp"

#include "features/global.hpp"

namespace bees::core {

BatchReport PhotoNetScheme::upload_batch(
    const std::vector<wl::ImageSpec>& batch, cloud::Server& server,
    net::Channel& channel, energy::Battery& battery) {
  BatchReport report;
  report.images_offered = static_cast<int>(batch.size());

  // Phase 1 — global features for the whole batch, queried against the
  // server state as of batch start (like the other baselines, PhotoNet
  // cannot see in-batch redundancy from the index alone).
  std::vector<std::size_t> unique;
  std::vector<feat::ColorHistogram> histograms(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    std::uint64_t ops = 0;
    histograms[i] = feat::color_histogram(store().pixels(batch[i]), &ops);
    report.compute_seconds += charge_compute(ops, battery);
    report.energy.extraction_j += config().cost.compute_energy(ops);

    // The query payload: the histogram (kBins floats) + the geotag.
    const double fbytes = feat::ColorHistogram::kBins * 4.0 + 17.0;
    const double fsecs = transfer_up(fbytes, channel, battery);
    report.feature_tx_seconds += fsecs;
    report.feature_bytes += fbytes;
    report.energy.feature_tx_j += fsecs * config().cost.tx_power_w;

    if (server.query_global(histograms[i], batch[i].geo, fbytes) >
        kPhotoNetThreshold) {
      ++report.eliminated_cross_batch;
    } else {
      unique.push_back(i);
    }
  }

  // Phase 2 — upload the unique images as shot.
  for (const std::size_t i : unique) {
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const wl::EncodedImage enc = store().original(batch[i]);
    const double bytes = image_wire_bytes(enc.bytes);
    const double secs = transfer_up(bytes, channel, battery);
    report.image_tx_seconds += secs;
    report.image_bytes += bytes;
    report.energy.image_tx_j += secs * config().cost.tx_power_w;
    server.store_global(histograms[i], bytes, batch[i].geo);
    ++report.images_uploaded;
  }
  return report;
}

}  // namespace bees::core
