#include "core/bees.hpp"

#include <algorithm>

#include "index/serialize.hpp"
#include "submodular/graph.hpp"

namespace bees::core {

BatchReport BeesScheme::upload_batch(const std::vector<wl::ImageSpec>& batch,
                                     cloud::Server& server,
                                     net::Channel& channel,
                                     energy::Battery& battery) {
  BatchReport report;
  const std::uint64_t key = batch_key(batch);
  const bool resuming = progress_.active && progress_.key == key;
  if (!resuming) {
    // Fresh batch (or the caller moved on from an aborted one): knobs are
    // read once from the battery and pinned for the batch's whole lifetime,
    // resumptions included (the paper adapts per upload round).
    progress_ = {};
    progress_.active = true;
    progress_.key = key;
    progress_.knobs =
        adaptive_ ? energy::adapt::Knobs::from_battery(battery.fraction())
                  : energy::adapt::Knobs::full_energy();
    report.images_offered = static_cast<int>(batch.size());
    trace_ = {};
  }
  const energy::adapt::Knobs knobs = progress_.knobs;
  trace_.knobs = knobs;
  if (batch.empty()) {
    progress_ = {};
    return report;
  }

  net::Transport transport = make_transport(server, channel);
  const double anchor_s = channel.now();

  // --- AFE: approximate feature extraction on compressed bitmaps. ---
  std::vector<const feat::BinaryFeatures*> features(batch.size(), nullptr);
  {
    StageProbe stage("afe", report, anchor_s);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i < progress_.features_extracted) {
        features[i] = &store().orb(batch[i], knobs.bitmap_compression);
        continue;
      }
      if (battery.depleted()) {
        report.aborted = true;
        return report;
      }
      const feat::BinaryFeatures& f =
          store().orb(batch[i], knobs.bitmap_compression);
      features[i] = &f;
      report.compute_seconds += charge_compute(f.stats.ops, battery);
      report.energy.extraction_j += config().cost.compute_energy(f.stats.ops);
      progress_.features_extracted = i + 1;
    }
  }

  std::vector<double> per_image_fbytes(batch.size(), 0.0);
  double fbytes = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    per_image_fbytes[i] =
        static_cast<double>(idx::serialize_binary(*features[i]).size());
    fbytes += per_image_fbytes[i];
  }

  // --- ARD part 1: cross-batch redundancy detection.  The batch's feature
  // sets ship in one bulk query message; the server answers with one
  // verdict per image. ---
  if (!progress_.features_sent) {
    StageProbe stage("cbrd", report, anchor_s);
    const auto request =
        net::encode_batch_query(features, per_image_fbytes, config().top_k);
    const auto env = exchange(transport, request, fbytes, TxKind::kFeature,
                              battery, report);
    if (!env) {  // retry budget exhausted; the round re-runs on resume
      report.aborted = true;
      return report;
    }
    progress_.verdicts =
        net::decode_batch_query_response(env->payload).verdicts;
    progress_.features_sent = true;
  }

  // --- ARD part 2: in-batch redundancy detection (SSMM, client side). ---
  if (!progress_.ssmm_done) {
    StageProbe stage("ibrd", report, anchor_s);
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    std::vector<std::size_t> survivors;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (progress_.verdicts[i].max_similarity > knobs.redundancy_threshold) {
        ++report.eliminated_cross_batch;
        trace_.cross_redundant.push_back(i);
      } else {
        survivors.push_back(i);
      }
    }

    std::vector<std::size_t> selected;
    if (!survivors.empty()) {
      std::vector<const feat::BinaryFeatures*> survivor_features;
      survivor_features.reserve(survivors.size());
      for (const std::size_t i : survivors) {
        survivor_features.push_back(features[i]);
      }
      std::uint64_t graph_ops = 0;
      const sub::SimilarityGraph graph = sub::build_similarity_graph(
          survivor_features, config().match, &graph_ops);
      report.compute_seconds += charge_compute(graph_ops, battery);
      report.energy.other_compute_j += config().cost.compute_energy(graph_ops);

      const sub::SsmmResult ssmm = sub::select_unique_images(
          graph, knobs.ssmm_threshold, config().ssmm);
      trace_.ssmm_budget = ssmm.budget;
      report.eliminated_in_batch =
          static_cast<int>(survivors.size() - ssmm.selected.size());
      selected.reserve(ssmm.selected.size());
      for (const std::size_t s : ssmm.selected) {
        selected.push_back(survivors[s]);
      }
    }
    std::sort(selected.begin(), selected.end());
    trace_.selected = selected;
    progress_.selected = std::move(selected);
    progress_.ssmm_done = true;
  }

  // --- AIU: approximate image uploading of the selected summary. ---
  StageProbe stage("aiu", report, anchor_s);
  while (progress_.next_upload < progress_.selected.size()) {
    const std::size_t i = progress_.selected[progress_.next_upload];
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const wl::EncodedImage enc =
        store().encoded(batch[i], knobs.resolution_compression,
                        knobs.quality_proportion);
    report.compute_seconds += charge_compute(enc.ops, battery);
    report.energy.other_compute_j += config().cost.compute_energy(enc.ops);

    const double bytes = image_wire_bytes(enc.bytes);
    const wl::EncodedImage thumb = store().encoded(batch[i], 0.75, 0.5);
    const auto request = net::encode_image_upload(
        *features[i], bytes, batch[i].geo, image_wire_bytes(thumb.bytes));
    std::span<const std::uint8_t> payload;
    if (config().chunking.enabled) {
      payload = store().encoded_payload(batch[i], knobs.resolution_compression,
                                        knobs.quality_proportion);
    }
    const auto env =
        upload_payload(transport, payload, bytes, request, battery, report);
    if (!env) {  // give up on this round; the image stays pending
      report.aborted = true;
      return report;
    }
    ++report.images_uploaded;
    progress_.next_upload += 1;
  }

  progress_ = {};
  return report;
}

}  // namespace bees::core
