#include "core/bees.hpp"

#include <algorithm>

#include "index/serialize.hpp"
#include "submodular/graph.hpp"

namespace bees::core {

BatchReport BeesScheme::upload_batch(const std::vector<wl::ImageSpec>& batch,
                                     cloud::Server& server,
                                     net::Channel& channel,
                                     energy::Battery& battery) {
  BatchReport report;
  report.images_offered = static_cast<int>(batch.size());
  trace_ = {};
  if (batch.empty()) return report;

  // The batch runs under one knob setting, read once from the battery at
  // batch start (the paper adapts per upload round).
  const energy::adapt::Knobs knobs =
      adaptive_ ? energy::adapt::Knobs::from_battery(battery.fraction())
                : energy::adapt::Knobs::full_energy();
  trace_.knobs = knobs;

  // --- AFE: approximate feature extraction on compressed bitmaps. ---
  std::vector<const feat::BinaryFeatures*> features(batch.size(), nullptr);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const feat::BinaryFeatures& f =
        store().orb(batch[i], knobs.bitmap_compression);
    features[i] = &f;
    report.compute_seconds += charge_compute(f.stats.ops, battery);
    report.energy.extraction_j += config().cost.compute_energy(f.stats.ops);
  }

  // Upload the batch's features in one message.
  std::vector<double> per_image_fbytes(batch.size(), 0.0);
  double fbytes = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    per_image_fbytes[i] =
        static_cast<double>(idx::serialize_binary(*features[i]).size());
    fbytes += per_image_fbytes[i];
  }
  const double fsecs = transfer_up(fbytes, channel, battery);
  report.feature_tx_seconds += fsecs;
  report.feature_bytes += fbytes;
  report.energy.feature_tx_j += fsecs * config().cost.tx_power_w;

  // --- ARD part 1: cross-batch redundancy detection (server queries). ---
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const idx::QueryResult result =
        server.query_binary(*features[i], per_image_fbytes[i],
                            config().top_k);
    if (result.max_similarity > knobs.redundancy_threshold) {
      ++report.eliminated_cross_batch;
      trace_.cross_redundant.push_back(i);
    } else {
      survivors.push_back(i);
    }
  }

  // --- ARD part 2: in-batch redundancy detection (SSMM, client side). ---
  std::vector<std::size_t> selected;
  if (!survivors.empty()) {
    std::vector<feat::BinaryFeatures> survivor_features;
    survivor_features.reserve(survivors.size());
    for (const std::size_t i : survivors) {
      survivor_features.push_back(*features[i]);
    }
    std::uint64_t graph_ops = 0;
    const sub::SimilarityGraph graph = sub::build_similarity_graph(
        survivor_features, config().match, &graph_ops);
    report.compute_seconds += charge_compute(graph_ops, battery);
    report.energy.other_compute_j += config().cost.compute_energy(graph_ops);

    const sub::SsmmResult ssmm = sub::select_unique_images(
        graph, knobs.ssmm_threshold, config().ssmm);
    trace_.ssmm_budget = ssmm.budget;
    report.eliminated_in_batch =
        static_cast<int>(survivors.size() - ssmm.selected.size());
    selected.reserve(ssmm.selected.size());
    for (const std::size_t s : ssmm.selected) {
      selected.push_back(survivors[s]);
    }
  }
  std::sort(selected.begin(), selected.end());
  trace_.selected = selected;

  // --- AIU: approximate image uploading of the selected summary. ---
  for (const std::size_t i : selected) {
    if (battery.depleted()) {
      report.aborted = true;
      return report;
    }
    const wl::EncodedImage enc =
        store().encoded(batch[i], knobs.resolution_compression,
                        knobs.quality_proportion);
    report.compute_seconds += charge_compute(enc.ops, battery);
    report.energy.other_compute_j += config().cost.compute_energy(enc.ops);

    const double bytes = image_wire_bytes(enc.bytes);
    const double secs = transfer_up(bytes, channel, battery);
    report.image_tx_seconds += secs;
    report.image_bytes += bytes;
    report.energy.image_tx_j += secs * config().cost.tx_power_w;
    const wl::EncodedImage thumb = store().encoded(batch[i], 0.75, 0.5);
    server.store_binary(*features[i], bytes, batch[i].geo,
                        image_wire_bytes(thumb.bytes));
    ++report.images_uploaded;
  }
  return report;
}

}  // namespace bees::core
