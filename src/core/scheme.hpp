// The common interface every image-sharing scheme implements (BEES and the
// paper's comparison schemes).  A scheme processes one image batch end to
// end on the client: feature work, redundancy queries, payload uploads —
// charging every joule to the phone battery and every byte to the channel —
// and returns an itemized report that the benches aggregate into the
// paper's figures.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/server.hpp"
#include "energy/battery.hpp"
#include "energy/cost_model.hpp"
#include "features/matching.hpp"
#include "net/channel.hpp"
#include "net/chunk_uploader.hpp"
#include "net/protocol.hpp"
#include "net/transport.hpp"
#include "submodular/ssmm.hpp"
#include "workload/image_store.hpp"

namespace bees::core {

/// Similarity threshold used by the non-adaptive binary-feature schemes
/// (MRC, BEES-EA): the paper's EDR law evaluated at full energy,
/// T = 0.013 + 0.006 * 1.0.
inline constexpr double kFixedSimilarityThreshold = 0.019;

/// SmartEye's redundancy threshold, calibrated for the PCA-SIFT similarity
/// landscape (unrelated pairs score ~0.02-0.05 there versus ~0.004-0.01
/// under ORB, so the binary threshold cannot be reused).  The paper seeds
/// redundant images at similarity > 0.3 precisely so that every scheme's
/// own operating threshold detects them.
inline constexpr double kSmartEyeSimilarityThreshold = 0.1;

/// Thumbnail feedback payload of the MRC protocol, in wire bytes (already
/// in the paper-scale byte domain, like scaled image payloads).
inline constexpr double kThumbnailBytes = 40.0 * 1024;

struct SchemeConfig {
  energy::CostModel cost;
  /// Multiplier from our codec's output bytes to paper-sized image payloads
  /// (~700 KB average originals); applied to image payloads only.
  double image_byte_scale = 1.0;
  /// Ranked hits requested from the server per query.
  int top_k = idx::kDefaultTopK;
  /// Matching parameters for client-side in-batch similarity (BEES IBRD).
  feat::BinaryMatchParams match;
  sub::SsmmParams ssmm;
  /// Retry/backoff policy for every client<->server exchange.  The default
  /// (no per-attempt timeout) leaves loss-free runs identical to the
  /// pre-transport byte/energy accounting.
  net::RetryPolicy retry;
  /// Chunk-manifest upload plane (see net::ChunkUploader).  Disabled by
  /// default, which keeps every upload byte-identical to the legacy
  /// whole-image protocol.
  net::ChunkingPolicy chunking;
};

/// One named scalar of a BatchReport: the export row every consumer
/// (CSV, metrics registry, bench JSON) reads instead of hand-listing
/// fields.  `integral` marks counts that print without a decimal point.
struct NamedValue {
  const char* name;
  double value;
  bool integral;
};

/// Everything one batch cost, itemized.
struct BatchReport {
  energy::EnergyBreakdown energy;
  double compute_seconds = 0.0;
  double feature_tx_seconds = 0.0;
  double image_tx_seconds = 0.0;
  double rx_seconds = 0.0;
  double feature_bytes = 0.0;
  double image_bytes = 0.0;
  double rx_bytes = 0.0;
  /// Airtime burnt on lost / timed-out attempts (transport layer).
  double retransmit_seconds = 0.0;
  /// Idle waits between retry attempts (exponential backoff).
  double backoff_seconds = 0.0;
  /// Bytes radiated on failed attempts; NOT part of feature/image bytes,
  /// which count delivered payload only.
  double retransmitted_bytes = 0.0;
  int images_offered = 0;
  int images_uploaded = 0;
  int eliminated_cross_batch = 0;
  int eliminated_in_batch = 0;
  /// Transport retries performed across the batch's exchanges.
  int retries = 0;
  /// Exchanges abandoned after exhausting the retry budget.
  int gave_up = 0;
  /// Chunk-manifest plane counters (zero while chunking is disabled):
  /// chunk payloads delivered, skipped because the server already held
  /// them, and delivered again after an earlier delivery.
  int chunks_sent = 0;
  int chunks_deduped = 0;
  int chunks_resent = 0;
  /// True if the batch did not finish (battery death, or a query round
  /// abandoned after exhausting retries).  Aborted batches can be resumed
  /// by calling upload_batch again with the same batch.
  bool aborted = false;

  /// Total client busy time — the quantity behind the Fig. 11 delay.
  double busy_seconds() const noexcept {
    return compute_seconds + feature_tx_seconds + image_tx_seconds +
           rx_seconds + retransmit_seconds + backoff_seconds;
  }
  /// Mean per-image delay over the batch (paper Fig. 11 metric).
  double mean_delay_seconds() const noexcept {
    return images_offered > 0 ? busy_seconds() / images_offered : 0.0;
  }
  /// Payload bytes that actually arrived, uplink and downlink — the
  /// Fig. 10 bandwidth-overhead quantity (retransmitted bytes excluded).
  double delivered_bytes() const noexcept {
    return feature_bytes + image_bytes + rx_bytes;
  }

  BatchReport& operator+=(const BatchReport& other) noexcept;
  /// Merges another batch's accounting into this one (alias of +=, for
  /// call sites that read better as a statement).
  BatchReport& merge(const BatchReport& other) noexcept {
    return *this += other;
  }

  /// Every field plus the derived totals as stable (name, value) rows.
  /// The ordering is fixed and names are append-only: exports built on it
  /// (CSV columns, metric names, BENCH_*.json baselines) stay comparable
  /// across revisions.
  std::vector<NamedValue> named_values() const;
  /// Looks up one named value; throws std::out_of_range on unknown names.
  double value_of(const char* name) const;
  /// Adds every named value to the global metrics registry as counters
  /// named `<prefix>.<name>`.  No-op while observability is disabled.
  void export_metrics(const std::string& prefix) const;
};

/// RAII probe around one client pipeline stage (AFE / CBRD / IBRD / AIU,
/// or a baseline's query / upload phase).  On destruction it charges the
/// stage's busy-seconds delta into the `core.stage.<name>.seconds`
/// histogram and emits a trace span on the scheme lane, anchored at the
/// channel clock as of batch start so multi-batch timelines stay
/// monotonic.  Fully inert while observability is disabled.
class StageProbe {
 public:
  StageProbe(const char* name, const BatchReport& report, double anchor_s);
  ~StageProbe();

  StageProbe(const StageProbe&) = delete;
  StageProbe& operator=(const StageProbe&) = delete;

  /// Ends the stage now instead of at scope exit (idempotent); lets
  /// sequential phases of one function each record their own span.
  void end();

 private:
  const char* name_;
  const BatchReport* report_;
  double anchor_s_;
  double start_busy_s_;
  bool active_;
};

/// Abstract image-sharing scheme.
class UploadScheme {
 public:
  UploadScheme(std::string name, wl::ImageStore& store, SchemeConfig config)
      : name_(std::move(name)),
        store_(&store),
        config_(std::move(config)),
        chunk_uploader_(config_.chunking) {}
  virtual ~UploadScheme() = default;

  UploadScheme(const UploadScheme&) = delete;
  UploadScheme& operator=(const UploadScheme&) = delete;

  const std::string& name() const noexcept { return name_; }
  const SchemeConfig& config() const noexcept { return config_; }

  /// Redirects every exchange this scheme makes to `handler` instead of
  /// binding cloud::dispatch on the upload_batch server argument — how the
  /// sim points schemes at a serve::Cluster (or any other server stand-in)
  /// without changing the upload_batch signature.  Pass nullptr to restore
  /// the default.  The handler must satisfy dispatch's contract: encoded
  /// reply or encoded error, never a throw.
  void set_server_handler(net::Transport::Handler handler) {
    server_handler_ = std::move(handler);
  }

  /// Uploads one batch.  The scheme must stop early (report.aborted) once
  /// the battery is depleted.
  virtual BatchReport upload_batch(const std::vector<wl::ImageSpec>& batch,
                                   cloud::Server& server, net::Channel& channel,
                                   energy::Battery& battery) = 0;

 protected:
  /// Which accounting bucket a delivered uplink payload belongs to.
  enum class TxKind { kFeature, kImage };

  wl::ImageStore& store() noexcept { return *store_; }

  /// Scales a codec payload size to the paper-scale image byte domain.
  double image_wire_bytes(std::size_t encoded_bytes) const noexcept {
    return static_cast<double>(encoded_bytes) * config_.image_byte_scale;
  }

  /// Runs one reliable request/reply exchange against the server through
  /// cloud::dispatch over `transport`, charging all airtime to the battery:
  /// the delivering attempt lands in the `kind` bucket (seconds, bytes and
  /// joules), failed attempts land in the retransmit bucket, and backoff
  /// waits accrue as idle time (energy-free here; lifetime runs charge the
  /// baseline draw on wall-clock).  Returns the opened reply envelope, or
  /// nullopt if the retry budget was exhausted (report.gave_up++).
  std::optional<net::Envelope> exchange(
      net::Transport& transport, const std::vector<std::uint8_t>& request,
      double wire_bytes, TxKind kind, energy::Battery& battery,
      BatchReport& report) const;

  /// Builds the transport all of this scheme's exchanges ride: dispatches
  /// into `server` over `channel` with the configured retry policy.
  net::Transport make_transport(cloud::Server& server,
                                net::Channel& channel) const;

  /// Uploads one image payload through the shared net::ChunkUploader — the
  /// single resumable-upload path every scheme rides.  `payload` holds the
  /// real encoded bytes (pass empty when chunking is disabled; the call is
  /// then exactly one exchange of `commit_request`, byte-identical to the
  /// legacy protocol), `modeled_bytes` their paper-domain wire size, and
  /// `commit_request` the scheme's legacy upload envelope.  Chunk-plane
  /// control messages are charged as feature traffic at encoded size;
  /// chunk data is charged as image traffic in the modelled domain.
  /// Accumulates chunk counters into `report`; returns the upload ack (or
  /// nullopt when the transport gave up — abort and resume later).
  std::optional<net::Envelope> upload_payload(
      net::Transport& transport, std::span<const std::uint8_t> payload,
      double modeled_bytes, const std::vector<std::uint8_t>& commit_request,
      energy::Battery& battery, BatchReport& report);

  /// Transfers `bytes` uplink, charging TX energy for the actual airtime.
  /// Returns the airtime.
  double transfer_up(double bytes, net::Channel& channel,
                     energy::Battery& battery) const;
  /// Transfers `bytes` downlink (RX energy).
  double transfer_down(double bytes, net::Channel& channel,
                       energy::Battery& battery) const;
  /// Charges CPU work and returns the compute time.
  double charge_compute(std::uint64_t ops, energy::Battery& battery) const;

 private:
  std::string name_;
  wl::ImageStore* store_;
  SchemeConfig config_;
  net::Transport::Handler server_handler_;  // overrides dispatch when set
  net::ChunkUploader chunk_uploader_;
};

/// Stable identity of a batch's content (hash of every image's cache key),
/// used by the schemes' resume bookkeeping to tell "same batch again after
/// an abort" from "a new batch".
std::uint64_t batch_key(const std::vector<wl::ImageSpec>& batch);

}  // namespace bees::core
