#include "core/scheme.hpp"

#include <stdexcept>
#include <string>
#include <string_view>

#include "cloud/rpc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bees::core {

BatchReport& BatchReport::operator+=(const BatchReport& other) noexcept {
  energy += other.energy;
  compute_seconds += other.compute_seconds;
  feature_tx_seconds += other.feature_tx_seconds;
  image_tx_seconds += other.image_tx_seconds;
  rx_seconds += other.rx_seconds;
  feature_bytes += other.feature_bytes;
  image_bytes += other.image_bytes;
  rx_bytes += other.rx_bytes;
  retransmit_seconds += other.retransmit_seconds;
  backoff_seconds += other.backoff_seconds;
  retransmitted_bytes += other.retransmitted_bytes;
  images_offered += other.images_offered;
  images_uploaded += other.images_uploaded;
  eliminated_cross_batch += other.eliminated_cross_batch;
  eliminated_in_batch += other.eliminated_in_batch;
  retries += other.retries;
  gave_up += other.gave_up;
  chunks_sent += other.chunks_sent;
  chunks_deduped += other.chunks_deduped;
  chunks_resent += other.chunks_resent;
  aborted = aborted || other.aborted;
  return *this;
}

std::vector<NamedValue> BatchReport::named_values() const {
  const auto integral = [](const char* name, double v) {
    return NamedValue{name, v, true};
  };
  const auto real = [](const char* name, double v) {
    return NamedValue{name, v, false};
  };
  return {
      integral("images_offered", images_offered),
      integral("images_uploaded", images_uploaded),
      integral("eliminated_cross_batch", eliminated_cross_batch),
      integral("eliminated_in_batch", eliminated_in_batch),
      real("feature_bytes", feature_bytes),
      real("image_bytes", image_bytes),
      real("rx_bytes", rx_bytes),
      real("retransmitted_bytes", retransmitted_bytes),
      real("delivered_bytes", delivered_bytes()),
      real("compute_seconds", compute_seconds),
      real("feature_tx_seconds", feature_tx_seconds),
      real("image_tx_seconds", image_tx_seconds),
      real("rx_seconds", rx_seconds),
      real("retransmit_seconds", retransmit_seconds),
      real("backoff_seconds", backoff_seconds),
      real("busy_seconds", busy_seconds()),
      real("mean_delay_seconds", mean_delay_seconds()),
      integral("retries", retries),
      integral("gave_up", gave_up),
      integral("aborted", aborted ? 1.0 : 0.0),
      real("energy_extraction_j", energy.extraction_j),
      real("energy_other_compute_j", energy.other_compute_j),
      real("energy_feature_tx_j", energy.feature_tx_j),
      real("energy_image_tx_j", energy.image_tx_j),
      real("energy_retransmit_tx_j", energy.retransmit_tx_j),
      real("energy_rx_j", energy.rx_j),
      real("energy_idle_j", energy.idle_j),
      real("energy_active_j", energy.active_total()),
      real("energy_total_j", energy.total()),
      // Appended (names are append-only): chunk-manifest upload counters.
      integral("chunks_sent", chunks_sent),
      integral("chunks_deduped", chunks_deduped),
      integral("chunks_resent", chunks_resent),
  };
}

double BatchReport::value_of(const char* name) const {
  for (const NamedValue& v : named_values()) {
    if (std::string_view(v.name) == name) return v.value;
  }
  throw std::out_of_range(std::string("BatchReport: no value named ") + name);
}

void BatchReport::export_metrics(const std::string& prefix) const {
  if (!obs::enabled()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  for (const NamedValue& v : named_values()) {
    registry.add(prefix + "." + v.name, v.value);
  }
}

StageProbe::StageProbe(const char* name, const BatchReport& report,
                       double anchor_s)
    : name_(name),
      report_(&report),
      anchor_s_(anchor_s),
      start_busy_s_(0.0),
      active_(obs::enabled()) {
  if (active_) start_busy_s_ = report.busy_seconds();
}

StageProbe::~StageProbe() { end(); }

void StageProbe::end() {
  if (!active_) return;
  active_ = false;
  const double duration_s = report_->busy_seconds() - start_busy_s_;
  obs::MetricsRegistry::global().observe(
      std::string("core.stage.") + name_ + ".seconds", duration_s);
  obs::Tracer::global().add({name_, "scheme", anchor_s_ + start_busy_s_,
                             duration_s, obs::kLaneScheme});
}

double UploadScheme::transfer_up(double bytes, net::Channel& channel,
                                 energy::Battery& battery) const {
  const double seconds = channel.transfer(bytes);
  battery.drain(seconds * config_.cost.tx_power_w);
  return seconds;
}

double UploadScheme::transfer_down(double bytes, net::Channel& channel,
                                   energy::Battery& battery) const {
  const double seconds = channel.transfer(bytes);
  battery.drain(seconds * config_.cost.rx_power_w);
  return seconds;
}

double UploadScheme::charge_compute(std::uint64_t ops,
                                    energy::Battery& battery) const {
  const double seconds = config_.cost.compute_seconds(ops);
  battery.drain(config_.cost.compute_energy(ops));
  return seconds;
}

net::Transport UploadScheme::make_transport(cloud::Server& server,
                                            net::Channel& channel) const {
  if (server_handler_) {
    return net::Transport(server_handler_, channel, config_.retry);
  }
  return net::Transport(
      [&server](const std::vector<std::uint8_t>& request) {
        return cloud::dispatch(server, request);
      },
      channel, config_.retry);
}

std::optional<net::Envelope> UploadScheme::exchange(
    net::Transport& transport, const std::vector<std::uint8_t>& request,
    double wire_bytes, TxKind kind, energy::Battery& battery,
    BatchReport& report) const {
  const net::ExchangeResult res = transport.exchange(request, wire_bytes);
  if (wire_bytes < 0.0) wire_bytes = static_cast<double>(request.size());

  battery.drain((res.tx_seconds + res.wasted_seconds) * config_.cost.tx_power_w);
  report.retries += res.retries;
  report.retransmit_seconds += res.wasted_seconds;
  report.backoff_seconds += res.backoff_seconds;
  report.retransmitted_bytes += res.retransmitted_bytes;
  report.energy.retransmit_tx_j += res.wasted_seconds * config_.cost.tx_power_w;

  if (!res.ok) {
    report.gave_up += 1;
    return std::nullopt;
  }

  const double tx_j = res.tx_seconds * config_.cost.tx_power_w;
  if (kind == TxKind::kFeature) {
    report.feature_tx_seconds += res.tx_seconds;
    report.feature_bytes += wire_bytes;
    report.energy.feature_tx_j += tx_j;
    obs::count("core.tx.feature_bytes", wire_bytes);
    obs::count("core.tx.feature_j", tx_j);
  } else {
    report.image_tx_seconds += res.tx_seconds;
    report.image_bytes += wire_bytes;
    report.energy.image_tx_j += tx_j;
    obs::count("core.tx.image_bytes", wire_bytes);
    obs::count("core.tx.image_j", tx_j);
  }
  return net::open_envelope(res.reply);
}

std::optional<net::Envelope> UploadScheme::upload_payload(
    net::Transport& transport, std::span<const std::uint8_t> payload,
    double modeled_bytes, const std::vector<std::uint8_t>& commit_request,
    energy::Battery& battery, BatchReport& report) {
  net::ChunkUploadStats stats;
  const auto reply = chunk_uploader_.upload(
      payload, modeled_bytes, commit_request,
      [&](const std::vector<std::uint8_t>& request, double wire_bytes,
          bool image_payload) {
        return exchange(transport, request, wire_bytes,
                        image_payload ? TxKind::kImage : TxKind::kFeature,
                        battery, report);
      },
      &stats);
  report.chunks_sent += static_cast<int>(stats.chunks_sent);
  report.chunks_deduped += static_cast<int>(stats.chunks_deduped);
  report.chunks_resent += static_cast<int>(stats.chunks_resent);
  return reply;
}

std::uint64_t batch_key(const std::vector<wl::ImageSpec>& batch) {
  // FNV-1a over the per-image cache keys: stable across runs, and distinct
  // batches collide only with negligible probability.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const wl::ImageSpec& spec : batch) {
    std::uint64_t k = spec.cache_key();
    for (int i = 0; i < 8; ++i) {
      h ^= (k >> (i * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace bees::core
