#include "core/scheme.hpp"

namespace bees::core {

BatchReport& BatchReport::operator+=(const BatchReport& other) noexcept {
  energy += other.energy;
  compute_seconds += other.compute_seconds;
  feature_tx_seconds += other.feature_tx_seconds;
  image_tx_seconds += other.image_tx_seconds;
  rx_seconds += other.rx_seconds;
  feature_bytes += other.feature_bytes;
  image_bytes += other.image_bytes;
  rx_bytes += other.rx_bytes;
  images_offered += other.images_offered;
  images_uploaded += other.images_uploaded;
  eliminated_cross_batch += other.eliminated_cross_batch;
  eliminated_in_batch += other.eliminated_in_batch;
  aborted = aborted || other.aborted;
  return *this;
}

double UploadScheme::transfer_up(double bytes, net::Channel& channel,
                                 energy::Battery& battery) const {
  const double seconds = channel.transfer(bytes);
  battery.drain(seconds * config_.cost.tx_power_w);
  return seconds;
}

double UploadScheme::transfer_down(double bytes, net::Channel& channel,
                                   energy::Battery& battery) const {
  const double seconds = channel.transfer(bytes);
  battery.drain(seconds * config_.cost.rx_power_w);
  return seconds;
}

double UploadScheme::charge_compute(std::uint64_t ops,
                                    energy::Battery& battery) const {
  const double seconds = config_.cost.compute_seconds(ops);
  battery.drain(config_.cost.compute_energy(ops));
  return seconds;
}

}  // namespace bees::core
