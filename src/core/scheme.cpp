#include "core/scheme.hpp"

#include "cloud/rpc.hpp"

namespace bees::core {

BatchReport& BatchReport::operator+=(const BatchReport& other) noexcept {
  energy += other.energy;
  compute_seconds += other.compute_seconds;
  feature_tx_seconds += other.feature_tx_seconds;
  image_tx_seconds += other.image_tx_seconds;
  rx_seconds += other.rx_seconds;
  feature_bytes += other.feature_bytes;
  image_bytes += other.image_bytes;
  rx_bytes += other.rx_bytes;
  retransmit_seconds += other.retransmit_seconds;
  backoff_seconds += other.backoff_seconds;
  retransmitted_bytes += other.retransmitted_bytes;
  images_offered += other.images_offered;
  images_uploaded += other.images_uploaded;
  eliminated_cross_batch += other.eliminated_cross_batch;
  eliminated_in_batch += other.eliminated_in_batch;
  retries += other.retries;
  gave_up += other.gave_up;
  aborted = aborted || other.aborted;
  return *this;
}

double UploadScheme::transfer_up(double bytes, net::Channel& channel,
                                 energy::Battery& battery) const {
  const double seconds = channel.transfer(bytes);
  battery.drain(seconds * config_.cost.tx_power_w);
  return seconds;
}

double UploadScheme::transfer_down(double bytes, net::Channel& channel,
                                   energy::Battery& battery) const {
  const double seconds = channel.transfer(bytes);
  battery.drain(seconds * config_.cost.rx_power_w);
  return seconds;
}

double UploadScheme::charge_compute(std::uint64_t ops,
                                    energy::Battery& battery) const {
  const double seconds = config_.cost.compute_seconds(ops);
  battery.drain(config_.cost.compute_energy(ops));
  return seconds;
}

net::Transport UploadScheme::make_transport(cloud::Server& server,
                                            net::Channel& channel) const {
  return net::Transport(
      [&server](const std::vector<std::uint8_t>& request) {
        return cloud::dispatch(server, request);
      },
      channel, config_.retry);
}

std::optional<net::Envelope> UploadScheme::exchange(
    net::Transport& transport, const std::vector<std::uint8_t>& request,
    double wire_bytes, TxKind kind, energy::Battery& battery,
    BatchReport& report) const {
  const net::ExchangeResult res = transport.exchange(request, wire_bytes);
  if (wire_bytes < 0.0) wire_bytes = static_cast<double>(request.size());

  battery.drain((res.tx_seconds + res.wasted_seconds) * config_.cost.tx_power_w);
  report.retries += res.retries;
  report.retransmit_seconds += res.wasted_seconds;
  report.backoff_seconds += res.backoff_seconds;
  report.retransmitted_bytes += res.retransmitted_bytes;
  report.energy.retransmit_tx_j += res.wasted_seconds * config_.cost.tx_power_w;

  if (!res.ok) {
    report.gave_up += 1;
    return std::nullopt;
  }

  const double tx_j = res.tx_seconds * config_.cost.tx_power_w;
  if (kind == TxKind::kFeature) {
    report.feature_tx_seconds += res.tx_seconds;
    report.feature_bytes += wire_bytes;
    report.energy.feature_tx_j += tx_j;
  } else {
    report.image_tx_seconds += res.tx_seconds;
    report.image_bytes += wire_bytes;
    report.energy.image_tx_j += tx_j;
  }
  return net::open_envelope(res.reply);
}

std::uint64_t batch_key(const std::vector<wl::ImageSpec>& batch) {
  // FNV-1a over the per-image cache keys: stable across runs, and distinct
  // batches collide only with negligible probability.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const wl::ImageSpec& spec : batch) {
    std::uint64_t k = spec.cache_key();
    for (int i = 0; i < 8; ++i) {
      h ^= (k >> (i * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace bees::core
