// The cloud server: feature index + image store + query handling.  One
// Server instance backs each experiment; it answers CBRD similarity queries
// and records what it received (bytes, images, unique geotagged locations —
// the Fig. 12 coverage metric).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "features/global.hpp"
#include "index/feature_index.hpp"
#include "index/geo.hpp"
#include "store/segment_store.hpp"

namespace bees::cloud {

struct ServerStats {
  std::size_t images_stored = 0;
  double image_bytes_received = 0.0;
  double feature_bytes_received = 0.0;
  std::size_t binary_queries = 0;
  std::size_t float_queries = 0;
  std::size_t unique_locations = 0;
};

/// What an uploaded image carries besides its features: the modelled
/// payload size, the capture geotag, and (binary-indexed path) the size of
/// the thumbnail the server would send as MRC-style feedback when the
/// image is a query's best match.  Shared by every store_* entry point so
/// new attributes extend one struct instead of four signatures.
struct StoreInfo {
  double image_bytes = 0.0;
  idx::GeoTag geo;
  double thumbnail_bytes = 0.0;
};

class Server {
 public:
  explicit Server(const idx::FeatureIndexParams& binary_params = {},
                  const idx::FloatFeatureIndex::Params& float_params = {});

  /// CBRD query against the binary (ORB) index.  Counts the received
  /// feature payload of `feature_bytes` wire bytes.
  idx::QueryResult query_binary(const feat::BinaryFeatures& features,
                                double feature_bytes,
                                int top_k = idx::kDefaultTopK);

  /// CBRD query against the float (SIFT / PCA-SIFT) index.
  idx::QueryResult query_float(const feat::FloatFeatures& features,
                               double feature_bytes,
                               int top_k = idx::kDefaultTopK);

  /// Stores an uploaded image: its features join the binary index so later
  /// batches can detect cross-batch redundancy against it.
  idx::ImageId store_binary(feat::BinaryFeatures features,
                            const StoreInfo& info = {});

  /// Stores an uploaded image indexed by float features (SmartEye path).
  idx::ImageId store_float(feat::FloatFeatures features,
                           const StoreInfo& info = {});

  /// Stores an image that arrived without features (Direct Upload path).
  void store_plain(const StoreInfo& info = {});

  /// PhotoNet-style global query: the maximum color-histogram intersection
  /// against stored global entries whose geotag lies within `geo_radius_deg`
  /// of `geo` (geo gating is skipped when either side has no geotag).
  double query_global(const feat::ColorHistogram& histogram,
                      const idx::GeoTag& geo, double feature_bytes = 0.0,
                      double geo_radius_deg = 0.005);

  /// The pure similarity scan behind query_global: no stats, no metrics.
  /// A sharded frontend calls this per shard and maxes the results, then
  /// does its own (single) accounting — keeping the fan-out path's answer
  /// and bookkeeping identical to one serial server's.
  double peek_global(const feat::ColorHistogram& histogram,
                     const idx::GeoTag& geo,
                     double geo_radius_deg = 0.005) const;

  /// Stores an image deduplicated by global features (PhotoNet path).
  void store_global(const feat::ColorHistogram& histogram,
                    const StoreInfo& info = {});

  /// Pre-seeds the binary index with features of an image the server
  /// already holds (experiment setup: controlling cross-batch redundancy).
  void seed_binary(feat::BinaryFeatures features, const idx::GeoTag& geo = {},
                   double thumbnail_bytes = 0.0);
  void seed_float(feat::FloatFeatures features, const idx::GeoTag& geo = {});
  void seed_global(const feat::ColorHistogram& histogram,
                   const idx::GeoTag& geo = {});

  const ServerStats& stats() const noexcept { return stats_; }
  const idx::FeatureIndex& binary_index() const noexcept { return binary_; }

  /// Thumbnail payload for MRC-style feedback of a binary-indexed image;
  /// 0 when unknown.
  double thumbnail_bytes_of(idx::ImageId id) const;
  const idx::FloatFeatureIndex& float_index() const noexcept { return float_; }

  /// Snapshot/restore support for the serving layer's durable shards.
  /// Indexed features travel through the idx persistence codecs; these
  /// expose the remaining state a checkpoint must carry.
  const std::vector<std::pair<feat::ColorHistogram, idx::GeoTag>>&
  global_entries() const noexcept {
    return global_entries_;
  }
  /// Quantized location keys behind stats().unique_locations, in
  /// deterministic (sorted) order so snapshots are byte-stable.
  std::vector<std::uint64_t> location_keys() const;
  /// Reinstates byte/count accounting and the location set after the index
  /// contents have been rebuilt via seed_* (seeding records no stats).
  void restore_accounting(const ServerStats& stats,
                          const std::vector<std::uint64_t>& location_keys);

  /// Attaches the content-addressed chunk store serving the chunk-manifest
  /// upload plane (kChunkManifest/Data/Commit).  Borrowed, not owned; null
  /// (the default) makes dispatch answer every chunk message with
  /// net::kChunkStoreDisabledMessage so clients fall back to whole-image
  /// uploads.
  void attach_chunk_store(store::SegmentStore* chunk_store) noexcept {
    chunk_store_ = chunk_store;
  }
  store::SegmentStore* chunk_store() const noexcept { return chunk_store_; }

 private:
  void note_location(const idx::GeoTag& geo);
  /// Shared store_* bookkeeping: stats, coverage, store counters.
  void record_store(const StoreInfo& info);

  idx::FeatureIndex binary_;
  idx::FloatFeatureIndex float_;
  std::vector<double> binary_thumb_bytes_;  // parallel to binary_ ids
  std::vector<std::pair<feat::ColorHistogram, idx::GeoTag>> global_entries_;
  std::unordered_set<std::uint64_t> locations_;
  ServerStats stats_;
  store::SegmentStore* chunk_store_ = nullptr;
};

}  // namespace bees::cloud
