#include "cloud/server.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace bees::cloud {

Server::Server(const idx::FeatureIndexParams& binary_params,
               const idx::FloatFeatureIndex::Params& float_params)
    : binary_(binary_params), float_(float_params) {}

void Server::note_location(const idx::GeoTag& geo) {
  if (!geo.valid) return;
  locations_.insert(idx::location_key(geo));
  stats_.unique_locations = locations_.size();
}

idx::QueryResult Server::query_binary(const feat::BinaryFeatures& features,
                                      double feature_bytes, int top_k) {
  obs::ScopedTimer timer("cloud.query.binary.seconds");
  ++stats_.binary_queries;
  stats_.feature_bytes_received += feature_bytes;
  const idx::QueryResult result = binary_.query(features, top_k);
  obs::count("cloud.query.binary");
  obs::count("cloud.query.ops", static_cast<double>(result.ops));
  obs::observe("cloud.query.binary.candidates",
               static_cast<double>(result.candidates_checked));
  return result;
}

idx::QueryResult Server::query_float(const feat::FloatFeatures& features,
                                     double feature_bytes, int top_k) {
  obs::ScopedTimer timer("cloud.query.float.seconds");
  ++stats_.float_queries;
  stats_.feature_bytes_received += feature_bytes;
  const idx::QueryResult result = float_.query(features, top_k);
  obs::count("cloud.query.float");
  obs::count("cloud.query.ops", static_cast<double>(result.ops));
  obs::observe("cloud.query.float.candidates",
               static_cast<double>(result.candidates_checked));
  return result;
}

void Server::record_store(const StoreInfo& info) {
  ++stats_.images_stored;
  stats_.image_bytes_received += info.image_bytes;
  note_location(info.geo);
  obs::count("cloud.store.images");
  obs::count("cloud.store.image_bytes", info.image_bytes);
}

idx::ImageId Server::store_binary(feat::BinaryFeatures features,
                                  const StoreInfo& info) {
  record_store(info);
  const idx::ImageId id = binary_.insert(std::move(features), info.geo);
  binary_thumb_bytes_.resize(id + 1, 0.0);
  binary_thumb_bytes_[id] = info.thumbnail_bytes;
  return id;
}

double Server::thumbnail_bytes_of(idx::ImageId id) const {
  return id < binary_thumb_bytes_.size() ? binary_thumb_bytes_[id] : 0.0;
}

idx::ImageId Server::store_float(feat::FloatFeatures features,
                                 const StoreInfo& info) {
  record_store(info);
  return float_.insert(std::move(features), info.geo);
}

void Server::store_plain(const StoreInfo& info) { record_store(info); }

double Server::peek_global(const feat::ColorHistogram& histogram,
                           const idx::GeoTag& geo,
                           double geo_radius_deg) const {
  double best = 0.0;
  for (const auto& [stored, stored_geo] : global_entries_) {
    if (geo.valid && stored_geo.valid) {
      // Cheap box gate; PhotoNet treats far-apart photos as non-redundant
      // regardless of appearance.
      if (std::abs(stored_geo.lon - geo.lon) > geo_radius_deg ||
          std::abs(stored_geo.lat - geo.lat) > geo_radius_deg) {
        continue;
      }
    }
    best = std::max(best, feat::histogram_intersection(histogram, stored));
  }
  return best;
}

double Server::query_global(const feat::ColorHistogram& histogram,
                            const idx::GeoTag& geo, double feature_bytes,
                            double geo_radius_deg) {
  obs::ScopedTimer timer("cloud.query.global.seconds");
  obs::count("cloud.query.global");
  stats_.feature_bytes_received += feature_bytes;
  return peek_global(histogram, geo, geo_radius_deg);
}

void Server::store_global(const feat::ColorHistogram& histogram,
                          const StoreInfo& info) {
  record_store(info);
  global_entries_.emplace_back(histogram, info.geo);
}

void Server::seed_binary(feat::BinaryFeatures features, const idx::GeoTag& geo,
                         double thumbnail_bytes) {
  const idx::ImageId id = binary_.insert(std::move(features), geo);
  binary_thumb_bytes_.resize(id + 1, 0.0);
  binary_thumb_bytes_[id] = thumbnail_bytes;
}

void Server::seed_float(feat::FloatFeatures features, const idx::GeoTag& geo) {
  float_.insert(std::move(features), geo);
}

void Server::seed_global(const feat::ColorHistogram& histogram,
                         const idx::GeoTag& geo) {
  global_entries_.emplace_back(histogram, geo);
}

std::vector<std::uint64_t> Server::location_keys() const {
  std::vector<std::uint64_t> keys(locations_.begin(), locations_.end());
  std::sort(keys.begin(), keys.end());
  return keys;
}

void Server::restore_accounting(
    const ServerStats& stats, const std::vector<std::uint64_t>& location_keys) {
  stats_ = stats;
  locations_.clear();
  locations_.insert(location_keys.begin(), location_keys.end());
  stats_.unique_locations = locations_.size();
}

}  // namespace bees::cloud
