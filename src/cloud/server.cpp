#include "cloud/server.hpp"

#include <cmath>

namespace bees::cloud {

Server::Server(const idx::FeatureIndexParams& binary_params,
               const idx::FloatFeatureIndex::Params& float_params)
    : binary_(binary_params), float_(float_params) {}

void Server::note_location(const idx::GeoTag& geo) {
  if (!geo.valid) return;
  locations_.insert(idx::location_key(geo));
  stats_.unique_locations = locations_.size();
}

idx::QueryResult Server::query_binary(const feat::BinaryFeatures& features,
                                      double feature_bytes, int top_k) {
  ++stats_.binary_queries;
  stats_.feature_bytes_received += feature_bytes;
  return binary_.query(features, top_k);
}

idx::QueryResult Server::query_float(const feat::FloatFeatures& features,
                                     double feature_bytes, int top_k) {
  ++stats_.float_queries;
  stats_.feature_bytes_received += feature_bytes;
  return float_.query(features, top_k);
}

idx::ImageId Server::store_binary(feat::BinaryFeatures features,
                                  double image_bytes, const idx::GeoTag& geo,
                                  double thumbnail_bytes) {
  ++stats_.images_stored;
  stats_.image_bytes_received += image_bytes;
  note_location(geo);
  const idx::ImageId id = binary_.insert(std::move(features), geo);
  binary_thumb_bytes_.resize(id + 1, 0.0);
  binary_thumb_bytes_[id] = thumbnail_bytes;
  return id;
}

double Server::thumbnail_bytes_of(idx::ImageId id) const {
  return id < binary_thumb_bytes_.size() ? binary_thumb_bytes_[id] : 0.0;
}

idx::ImageId Server::store_float(feat::FloatFeatures features,
                                 double image_bytes, const idx::GeoTag& geo) {
  ++stats_.images_stored;
  stats_.image_bytes_received += image_bytes;
  note_location(geo);
  return float_.insert(std::move(features), geo);
}

void Server::store_plain(double image_bytes, const idx::GeoTag& geo) {
  ++stats_.images_stored;
  stats_.image_bytes_received += image_bytes;
  note_location(geo);
}

double Server::query_global(const feat::ColorHistogram& histogram,
                            const idx::GeoTag& geo, double feature_bytes,
                            double geo_radius_deg) {
  stats_.feature_bytes_received += feature_bytes;
  double best = 0.0;
  for (const auto& [stored, stored_geo] : global_entries_) {
    if (geo.valid && stored_geo.valid) {
      // Cheap box gate; PhotoNet treats far-apart photos as non-redundant
      // regardless of appearance.
      if (std::abs(stored_geo.lon - geo.lon) > geo_radius_deg ||
          std::abs(stored_geo.lat - geo.lat) > geo_radius_deg) {
        continue;
      }
    }
    best = std::max(best, feat::histogram_intersection(histogram, stored));
  }
  return best;
}

void Server::store_global(const feat::ColorHistogram& histogram,
                          double image_bytes, const idx::GeoTag& geo) {
  ++stats_.images_stored;
  stats_.image_bytes_received += image_bytes;
  note_location(geo);
  global_entries_.emplace_back(histogram, geo);
}

void Server::seed_binary(feat::BinaryFeatures features, const idx::GeoTag& geo,
                         double thumbnail_bytes) {
  const idx::ImageId id = binary_.insert(std::move(features), geo);
  binary_thumb_bytes_.resize(id + 1, 0.0);
  binary_thumb_bytes_[id] = thumbnail_bytes;
}

void Server::seed_float(feat::FloatFeatures features, const idx::GeoTag& geo) {
  float_.insert(std::move(features), geo);
}

void Server::seed_global(const feat::ColorHistogram& histogram,
                         const idx::GeoTag& geo) {
  global_entries_.emplace_back(histogram, geo);
}

}  // namespace bees::cloud
