#include "cloud/rpc.hpp"

#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/byte_io.hpp"

namespace bees::cloud {

namespace {

/// Metric-name suffix of a dispatched message type.
const char* type_name(net::MessageType type) {
  switch (type) {
    case net::MessageType::kBinaryQuery: return "binary_query";
    case net::MessageType::kBatchQuery: return "batch_query";
    case net::MessageType::kFloatQuery: return "float_query";
    case net::MessageType::kGlobalQuery: return "global_query";
    case net::MessageType::kImageUpload: return "image_upload";
    case net::MessageType::kFloatUpload: return "float_upload";
    case net::MessageType::kGlobalUpload: return "global_upload";
    case net::MessageType::kPlainUpload: return "plain_upload";
    default: return "other";
  }
}

net::QueryResponse verdict_of(Server& server, const idx::QueryResult& result) {
  net::QueryResponse reply;
  reply.max_similarity = result.max_similarity;
  reply.best_id = result.best_id;
  if (result.best_id != idx::kInvalidImageId) {
    reply.thumbnail_bytes = server.thumbnail_bytes_of(result.best_id);
  }
  return reply;
}

}  // namespace

std::vector<std::uint8_t> dispatch(Server& server,
                                   const std::vector<std::uint8_t>& request) {
  try {
    const net::Envelope env = net::open_envelope(request);
    obs::ScopedSpan span("dispatch", "cloud", obs::kLaneServer);
    if (obs::enabled()) {
      obs::count("cloud.dispatch.requests");
      obs::count("cloud.dispatch.request_bytes",
                 static_cast<double>(request.size()));
      obs::count((std::string("cloud.dispatch.") + type_name(env.type)).c_str());
    }
    switch (env.type) {
      case net::MessageType::kBinaryQuery: {
        const net::BinaryQueryRequest q =
            net::decode_binary_query(env.payload);
        const double accounted_bytes = q.feature_bytes >= 0.0
                                           ? q.feature_bytes
                                           : static_cast<double>(request.size());
        const idx::QueryResult result =
            server.query_binary(q.features, accounted_bytes, q.top_k);
        return net::encode(verdict_of(server, result));
      }
      case net::MessageType::kBatchQuery: {
        const net::BatchQueryRequest q = net::decode_batch_query(env.payload);
        net::BatchQueryResponse reply;
        reply.verdicts.reserve(q.features.size());
        for (std::size_t i = 0; i < q.features.size(); ++i) {
          const idx::QueryResult result =
              server.query_binary(q.features[i], q.feature_bytes[i], q.top_k);
          reply.verdicts.push_back(verdict_of(server, result));
        }
        return net::encode(reply);
      }
      case net::MessageType::kFloatQuery: {
        const net::FloatQueryRequest q = net::decode_float_query(env.payload);
        const double accounted_bytes = q.feature_bytes >= 0.0
                                           ? q.feature_bytes
                                           : static_cast<double>(request.size());
        const idx::QueryResult result =
            server.query_float(q.features, accounted_bytes, q.top_k);
        net::QueryResponse reply;
        reply.max_similarity = result.max_similarity;
        reply.best_id = result.best_id;
        return net::encode(reply);
      }
      case net::MessageType::kGlobalQuery: {
        const net::GlobalQueryRequest q = net::decode_global_query(env.payload);
        net::QueryResponse reply;
        reply.max_similarity = server.query_global(
            q.histogram, q.geo, q.feature_bytes, q.geo_radius_deg);
        return net::encode(reply);
      }
      case net::MessageType::kImageUpload: {
        const net::ImageUploadRequest u =
            net::decode_image_upload(env.payload);
        net::UploadAck ack;
        ack.id = server.store_binary(
            u.features, {u.image_bytes, u.geo, u.thumbnail_bytes});
        return net::encode(ack);
      }
      case net::MessageType::kFloatUpload: {
        const net::FloatUploadRequest u =
            net::decode_float_upload(env.payload);
        net::UploadAck ack;
        ack.id = server.store_float(u.features, {u.image_bytes, u.geo});
        return net::encode(ack);
      }
      case net::MessageType::kGlobalUpload: {
        const net::GlobalUploadRequest u =
            net::decode_global_upload(env.payload);
        server.store_global(u.histogram, {u.image_bytes, u.geo});
        return net::encode(net::UploadAck{});
      }
      case net::MessageType::kPlainUpload: {
        const net::PlainUploadRequest u =
            net::decode_plain_upload(env.payload);
        server.store_plain({u.image_bytes, u.geo});
        return net::encode(net::UploadAck{});
      }
      default:
        return net::encode_error("unexpected message type");
    }
  } catch (const util::DecodeError& e) {
    return net::encode_error(e.what());
  }
}

}  // namespace bees::cloud
