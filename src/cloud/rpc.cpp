#include "cloud/rpc.hpp"

#include "net/protocol.hpp"
#include "util/byte_io.hpp"

namespace bees::cloud {

std::vector<std::uint8_t> dispatch(Server& server,
                                   const std::vector<std::uint8_t>& request) {
  try {
    const net::Envelope env = net::open_envelope(request);
    switch (env.type) {
      case net::MessageType::kBinaryQuery: {
        const net::BinaryQueryRequest q =
            net::decode_binary_query(env.payload);
        const idx::QueryResult result = server.query_binary(
            q.features, static_cast<double>(request.size()), q.top_k);
        net::QueryResponse reply;
        reply.max_similarity = result.max_similarity;
        reply.best_id = result.best_id;
        if (result.best_id != idx::kInvalidImageId) {
          reply.thumbnail_bytes = server.thumbnail_bytes_of(result.best_id);
        }
        return net::encode(reply);
      }
      case net::MessageType::kImageUpload: {
        const net::ImageUploadRequest u =
            net::decode_image_upload(env.payload);
        net::UploadAck ack;
        ack.id = server.store_binary(u.features, u.image_bytes, u.geo,
                                     u.thumbnail_bytes);
        return net::encode(ack);
      }
      default:
        return net::encode_error("unexpected message type");
    }
  } catch (const util::DecodeError& e) {
    return net::encode_error(e.what());
  }
}

}  // namespace bees::cloud
