#include "cloud/rpc.hpp"

#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/byte_io.hpp"

namespace bees::cloud {

namespace {

/// Metric-name suffix of a dispatched message type.
const char* type_name(net::MessageType type) {
  switch (type) {
    case net::MessageType::kBinaryQuery: return "binary_query";
    case net::MessageType::kBatchQuery: return "batch_query";
    case net::MessageType::kFloatQuery: return "float_query";
    case net::MessageType::kGlobalQuery: return "global_query";
    case net::MessageType::kImageUpload: return "image_upload";
    case net::MessageType::kFloatUpload: return "float_upload";
    case net::MessageType::kGlobalUpload: return "global_upload";
    case net::MessageType::kPlainUpload: return "plain_upload";
    case net::MessageType::kChunkManifest: return "chunk_manifest";
    case net::MessageType::kChunkData: return "chunk_data";
    case net::MessageType::kChunkCommit: return "chunk_commit";
    default: return "other";
  }
}

net::QueryResponse verdict_of(Server& server, const idx::QueryResult& result) {
  net::QueryResponse reply;
  reply.max_similarity = result.max_similarity;
  reply.best_id = result.best_id;
  if (result.best_id != idx::kInvalidImageId) {
    reply.thumbnail_bytes = server.thumbnail_bytes_of(result.best_id);
  }
  return reply;
}

}  // namespace

std::vector<std::uint8_t> dispatch(Server& server,
                                   const std::vector<std::uint8_t>& request) {
  try {
    const net::Envelope env = net::open_envelope(request);
    obs::ScopedSpan span("dispatch", "cloud", obs::kLaneServer);
    if (obs::enabled()) {
      obs::count("cloud.dispatch.requests");
      obs::count("cloud.dispatch.request_bytes",
                 static_cast<double>(request.size()));
      obs::count((std::string("cloud.dispatch.") + type_name(env.type)).c_str());
    }
    switch (env.type) {
      case net::MessageType::kBinaryQuery: {
        const net::BinaryQueryRequest q =
            net::decode_binary_query(env.payload);
        const double accounted_bytes = q.feature_bytes >= 0.0
                                           ? q.feature_bytes
                                           : static_cast<double>(request.size());
        const idx::QueryResult result =
            server.query_binary(q.features, accounted_bytes, q.top_k);
        return net::encode(verdict_of(server, result));
      }
      case net::MessageType::kBatchQuery: {
        const net::BatchQueryRequest q = net::decode_batch_query(env.payload);
        net::BatchQueryResponse reply;
        reply.verdicts.reserve(q.features.size());
        for (std::size_t i = 0; i < q.features.size(); ++i) {
          const idx::QueryResult result =
              server.query_binary(q.features[i], q.feature_bytes[i], q.top_k);
          reply.verdicts.push_back(verdict_of(server, result));
        }
        return net::encode(reply);
      }
      case net::MessageType::kFloatQuery: {
        const net::FloatQueryRequest q = net::decode_float_query(env.payload);
        const double accounted_bytes = q.feature_bytes >= 0.0
                                           ? q.feature_bytes
                                           : static_cast<double>(request.size());
        const idx::QueryResult result =
            server.query_float(q.features, accounted_bytes, q.top_k);
        net::QueryResponse reply;
        reply.max_similarity = result.max_similarity;
        reply.best_id = result.best_id;
        return net::encode(reply);
      }
      case net::MessageType::kGlobalQuery: {
        const net::GlobalQueryRequest q = net::decode_global_query(env.payload);
        net::QueryResponse reply;
        reply.max_similarity = server.query_global(
            q.histogram, q.geo, q.feature_bytes, q.geo_radius_deg);
        return net::encode(reply);
      }
      case net::MessageType::kImageUpload: {
        const net::ImageUploadRequest u =
            net::decode_image_upload(env.payload);
        net::UploadAck ack;
        ack.id = server.store_binary(
            u.features, {u.image_bytes, u.geo, u.thumbnail_bytes});
        return net::encode(ack);
      }
      case net::MessageType::kFloatUpload: {
        const net::FloatUploadRequest u =
            net::decode_float_upload(env.payload);
        net::UploadAck ack;
        ack.id = server.store_float(u.features, {u.image_bytes, u.geo});
        return net::encode(ack);
      }
      case net::MessageType::kGlobalUpload: {
        const net::GlobalUploadRequest u =
            net::decode_global_upload(env.payload);
        server.store_global(u.histogram, {u.image_bytes, u.geo});
        return net::encode(net::UploadAck{});
      }
      case net::MessageType::kPlainUpload: {
        const net::PlainUploadRequest u =
            net::decode_plain_upload(env.payload);
        server.store_plain({u.image_bytes, u.geo});
        return net::encode(net::UploadAck{});
      }
      case net::MessageType::kChunkManifest:
      case net::MessageType::kChunkData:
      case net::MessageType::kChunkCommit:
        return handle_chunk_message(
            server.chunk_store(), env,
            [&server](const std::vector<std::uint8_t>& inner) {
              return dispatch(server, inner);
            });
      default:
        return net::encode_error("unexpected message type");
    }
  } catch (const util::DecodeError& e) {
    return net::encode_error(e.what());
  }
}

std::vector<std::uint8_t> handle_chunk_message(
    store::SegmentStore* chunk_store, const net::Envelope& env,
    const std::function<std::vector<std::uint8_t>(
        const std::vector<std::uint8_t>&)>& dispatch_inner) {
  try {
    if (chunk_store == nullptr) {
      return net::encode_error(net::kChunkStoreDisabledMessage);
    }
    switch (env.type) {
      case net::MessageType::kChunkManifest: {
        const net::ChunkManifestRequest offer =
            net::decode_chunk_manifest(env.payload);
        net::ChunkManifestAck ack;
        for (std::size_t i = 0; i < offer.manifest.chunks.size(); ++i) {
          if (!chunk_store->contains(offer.manifest.chunks[i])) {
            ack.missing.push_back(static_cast<std::uint32_t>(i));
          }
        }
        return net::encode(ack);
      }
      case net::MessageType::kChunkData: {
        const net::ChunkDataRequest data = net::decode_chunk_data(env.payload);
        // The store recomputes the key from the bytes; a mismatch means the
        // sender's key lied about its content.
        const store::ChunkKey stored = chunk_store->put(data.data);
        if (stored != data.key) {
          return net::encode_error("chunk data: key does not match content");
        }
        return net::encode(net::ChunkAck{stored.hash});
      }
      case net::MessageType::kChunkCommit: {
        const net::ChunkCommitRequest commit =
            net::decode_chunk_commit(env.payload);
        for (const store::ChunkKey& key : commit.manifest.chunks) {
          if (!chunk_store->contains(key)) {
            return net::encode_error(net::kChunkCommitMissingMessage);
          }
        }
        // Committed content is live: pin before dispatching so a compaction
        // between the ack and a later read cannot reclaim it.  A pin can
        // still lose a race against compaction; that too is "missing".
        try {
          chunk_store->pin(commit.manifest.chunks);
        } catch (const util::DecodeError&) {
          return net::encode_error(net::kChunkCommitMissingMessage);
        }
        return dispatch_inner(commit.inner);
      }
      default:
        return net::encode_error("unexpected chunk message type");
    }
  } catch (const util::DecodeError& e) {
    return net::encode_error(e.what());
  }
}

}  // namespace bees::cloud
