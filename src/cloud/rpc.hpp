// Message-level entry point to the server: decode a protocol envelope,
// perform the operation, encode the reply.  Makes the Server drivable from
// raw bytes — what a production deployment would put behind a socket — and
// lets tests prove every simulated exchange round-trips through the wire
// format.
#pragma once

#include <vector>

#include "cloud/server.hpp"

namespace bees::cloud {

/// Handles one request message; returns the encoded reply.  Malformed or
/// unexpected messages produce an encoded error reply (never a throw): a
/// server must not die because one phone sent garbage.
std::vector<std::uint8_t> dispatch(Server& server,
                                   const std::vector<std::uint8_t>& request);

}  // namespace bees::cloud
