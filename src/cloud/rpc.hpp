// Message-level entry point to the server: decode a protocol envelope,
// perform the operation, encode the reply.  Makes the Server drivable from
// raw bytes — what a production deployment would put behind a socket — and
// lets tests prove every simulated exchange round-trips through the wire
// format.
#pragma once

#include <functional>
#include <vector>

#include "cloud/server.hpp"
#include "net/protocol.hpp"

namespace bees::cloud {

/// Handles one request message; returns the encoded reply.  Malformed or
/// unexpected messages produce an encoded error reply (never a throw): a
/// server must not die because one phone sent garbage.
std::vector<std::uint8_t> dispatch(Server& server,
                                   const std::vector<std::uint8_t>& request);

/// Shared chunk-plane handler used by dispatch and the serving cluster's
/// frontend (so chunked replies stay byte-identical between them).
/// `env` must be a kChunkManifest / kChunkData / kChunkCommit envelope;
/// `dispatch_inner` executes the commit's embedded legacy upload envelope.
/// A null `chunk_store` answers with net::kChunkStoreDisabledMessage.
/// Never throws request errors: malformed input comes back encoded.
std::vector<std::uint8_t> handle_chunk_message(
    store::SegmentStore* chunk_store, const net::Envelope& env,
    const std::function<std::vector<std::uint8_t>(
        const std::vector<std::uint8_t>&)>& dispatch_inner);

}  // namespace bees::cloud
