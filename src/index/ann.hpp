// Approximate-nearest-neighbour candidate pruning for the server's feature
// index.  At millions of images the exact LSH vote scan is the query-cost
// wall: every stored descriptor colliding anywhere with the query is
// touched.  This front end shortlists candidates from two compact,
// image-level structures instead:
//
//   * MinHash banding — each image's descriptor-token set is sketched once
//     (bands x rows minima); a band's minima hash to one 64-bit signature,
//     and images sharing a band signature with the query are fetched from a
//     per-band table in O(1).  Collision probability per band is J^rows,
//     the classic banding curve, so near-duplicates surface reliably.
//   * Vocabulary routing — descriptors quantize to visual words in a tree
//     trained once from the seed (not from data), and an inverted file maps
//     word -> posting list.  Only images sharing a word are touched.
//
// Both signals are pure functions of the (query, image) pair — the tree and
// the hash salts derive from AnnParams alone, never from what else is
// stored.  That is the determinism argument: any sharding of the corpus
// computes identical per-image scores, so per-shard top-B lists merged with
// the (score desc, gid asc) tie-break reproduce the single-index shortlist
// exactly (DESIGN.md §11).  The exact packed-kernel rescore then runs on
// the shortlist only, making query cost sublinear in corpus size.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "features/keypoint.hpp"
#include "index/minhash.hpp"
#include "index/types.hpp"
#include "index/vocabulary.hpp"

namespace bees::idx {

struct AnnParams {
  /// Master switch; off keeps the exact LSH-vote candidate path.
  bool enabled = false;
  /// MinHash bands probed per query; each band holds `rows` sketch minima.
  int bands = 8;
  int rows = 4;
  /// Score weight of one band collision relative to one shared visual word
  /// (a band collision is far stronger evidence of high Jaccard).
  std::uint32_t band_weight = 8;
  /// Vocabulary-tree shape; the tree is trained on `vocabulary_sample`
  /// pseudo-random descriptors derived from `vocabulary.seed`, so it is a
  /// fixed data-independent quantizer (required for shard invariance).
  VocabularyParams vocabulary;
  int vocabulary_sample = 4096;
  /// Token quantization for the sketches (MinHashParams::hashes is derived
  /// as bands * rows and need not be set).
  MinHashParams minhash;
  /// When the index also maintains descriptor LSH tables, fold its
  /// (bucket-deduplicated) votes into the shortlist score.
  bool merge_lsh_votes = true;
};

/// Sizes the exact-rescore shortlist from the caller's recall target: the
/// budget grows as 1/(1 - recall_target) on top of the top-k candidate
/// floor.  Single source of truth for the index and the cluster merge —
/// both must truncate to the same budget for byte-identical replies.
std::size_t ann_shortlist_budget(int max_candidates, double recall_target);

/// The ANN structures of one index: band tables + inverted file, plus the
/// per-image rows (band signatures, sorted word ids) they are built from.
/// Rows are kept in flat CSR layout so snapshots can persist them and a
/// restore can skip the sketch/quantize work.
class AnnFrontEnd {
 public:
  explicit AnnFrontEnd(const AnnParams& params);

  /// Persistable per-image derived state.
  struct Row {
    std::vector<std::uint64_t> band_signatures;  ///< `bands` entries.
    std::vector<std::uint32_t> words;            ///< sorted, unique.
  };

  /// Sketches and quantizes one image's descriptors.  Images must be
  /// inserted in ascending id order starting at 0 (the index's insertion
  /// order), which keeps every posting list sorted by id for free.
  void insert(ImageId id, const std::vector<feat::Descriptor256>& descriptors);

  /// Restore path: installs a previously computed row (snapshot load).
  /// Throws util::DecodeError if the row's shape does not match `params`.
  void insert_row(ImageId id, Row row);

  /// Computes the row insert() would store, without storing it.
  Row make_row(const std::vector<feat::Descriptor256>& descriptors) const;

  /// Copies image `id`'s stored row back out (snapshot save).
  Row row_of(ImageId id) const;

  /// Adds band_weight * (band collisions) + (shared distinct words) into
  /// `scores` for every image sharing a band signature or a word with the
  /// query.  Touches only posting-list entries — never the whole corpus.
  void collect(const std::vector<feat::Descriptor256>& query,
               std::unordered_map<ImageId, std::uint32_t>& scores) const;

  std::size_t image_count() const noexcept {
    return word_offsets_.size() - 1;
  }

  /// Stable digest of every parameter that shapes rows (band/row counts,
  /// seeds, tree shape).  Snapshots store it; a restore with a different
  /// fingerprint recomputes rows instead of trusting stale ones.
  std::uint64_t fingerprint() const noexcept;

  const AnnParams& params() const noexcept { return params_; }

 private:
  std::vector<std::uint64_t> band_signatures_of(
      const MinHashSketch& sketch) const;
  void install_row(ImageId id, const Row& row);

  AnnParams params_;
  MinHasher hasher_;
  VocabularyTree tree_;

  /// Per-image rows, CSR: image i's signatures are
  /// signatures_[i*bands .. (i+1)*bands); its words are
  /// words_[word_offsets_[i] .. word_offsets_[i+1]).
  std::vector<std::uint64_t> signatures_;
  std::vector<std::uint32_t> word_offsets_{0};
  std::vector<std::uint32_t> words_;

  /// band -> signature -> images (ascending ids).
  std::vector<std::unordered_map<std::uint64_t, std::vector<ImageId>>>
      band_tables_;
  /// word -> images (ascending ids).
  std::unordered_map<std::uint32_t, std::vector<ImageId>> inverted_;
};

}  // namespace bees::idx
