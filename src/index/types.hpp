// Shared value types of the server-side indices: image ids, ranked query
// hits, and the deterministic top-k epilogue every similarity query funnels
// through.  Split out of feature_index.hpp so the candidate-generation
// layers (lsh, minhash, vocabulary, ann) can speak these types without
// pulling in the full index classes.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace bees::idx {

using ImageId = std::uint32_t;
inline constexpr ImageId kInvalidImageId =
    std::numeric_limits<ImageId>::max();

/// Ranked hits a similarity query returns by default.  Single source of
/// truth for every layer's default: index queries, the vocabulary index,
/// cloud::Server entry points, the wire protocol's query messages, and
/// core::SchemeConfig all route through this constant.
inline constexpr int kDefaultTopK = 4;

/// Default recall target of the ANN-pruned query path (QueryOptions);
/// sizes the exact-rescore shortlist via ann_shortlist_budget().
inline constexpr double kDefaultRecallTarget = 0.95;

/// One ranked hit of a similarity query.
struct QueryHit {
  ImageId id = kInvalidImageId;
  double similarity = 0.0;
};

/// Result of querying the index with one image's features.
struct QueryResult {
  /// Ranked hits, most similar first (up to the requested top-k).
  std::vector<QueryHit> hits;
  /// The paper's "maximum similarity": similarity to the most similar
  /// stored image, 0 if the index is empty.
  double max_similarity = 0.0;
  ImageId best_id = kInvalidImageId;
  /// Candidate images whose descriptors were exactly matched.
  std::size_t candidates_checked = 0;
  /// Descriptor-comparison work performed (for the server-cost ablation).
  std::uint64_t ops = 0;
};

/// Per-query knobs shared by the index and serving layers.
struct QueryOptions {
  int top_k = kDefaultTopK;
  /// ANN shortlist sizing: higher targets rescore more candidates (see
  /// ann_shortlist_budget).  Ignored by the exact LSH-vote path.
  double recall_target = kDefaultRecallTarget;
};

namespace detail {
/// Shared top-k epilogue of every similarity query: sorts hits by
/// similarity (descending), breaking ties by ascending ImageId so rankings
/// are stable across memory layouts and thread counts; truncates to
/// `top_k` and fills max_similarity / best_id from the leader.
void finalize_top_k(QueryResult& result, int top_k);
}  // namespace detail

}  // namespace bees::idx
