// Geotag metadata attached to uploaded images.  The Fig. 12 coverage
// experiment counts unique quantized locations among the images a server
// received.
#pragma once

#include <cmath>
#include <cstdint>

namespace bees::idx {

/// A longitude/latitude pair in degrees; `valid` is false for images with
/// no location (Kentucky-like sets).
struct GeoTag {
  double lon = 0.0;
  double lat = 0.0;
  bool valid = false;

  bool operator==(const GeoTag&) const noexcept = default;
};

/// Quantizes a geotag to a grid key for unique-location counting.  The
/// default cell of 1e-4 degrees (~11 m) matches the paper's notion of a
/// distinct longitude/latitude.
inline std::uint64_t location_key(const GeoTag& g,
                                  double cell_deg = 1e-4) noexcept {
  const auto qlon = static_cast<std::int64_t>(std::llround(g.lon / cell_deg));
  const auto qlat = static_cast<std::int64_t>(std::llround(g.lat / cell_deg));
  // Pack two 32-bit lattice coordinates into one key.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(qlon)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(qlat));
}

}  // namespace bees::idx
