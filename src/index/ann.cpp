#include "index/ann.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace bees::idx {

namespace {

/// Fixed pseudo-random training sample for the vocabulary tree.  Deriving
/// the sample from the seed (not from stored data) makes the quantizer a
/// pure function of AnnParams: every shard, and every index built from the
/// same params, assigns identical words.
std::vector<feat::Descriptor256> seed_sample(const VocabularyParams& params,
                                             int count) {
  util::Rng rng(params.seed ^ 0xa22a5eedULL);
  std::vector<feat::Descriptor256> sample(
      static_cast<std::size_t>(std::max(count, 2)));
  for (auto& d : sample) {
    for (auto& lane : d.bits) lane = rng.next_u64();
  }
  return sample;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t state = h ^ v;
  return util::splitmix64(state);
}

}  // namespace

std::size_t ann_shortlist_budget(int max_candidates, double recall_target) {
  const auto floor = static_cast<std::size_t>(std::max(1, max_candidates));
  const double clamped = std::clamp(recall_target, 0.0, 0.995);
  const double factor = 1.0 / (1.0 - clamped);
  return std::max(floor, static_cast<std::size_t>(std::ceil(
                             static_cast<double>(floor) * factor)));
}

AnnFrontEnd::AnnFrontEnd(const AnnParams& params)
    : params_(params),
      hasher_([&] {
        if (params.bands <= 0 || params.rows <= 0) {
          throw std::invalid_argument("AnnFrontEnd: bad band shape");
        }
        MinHashParams mh = params.minhash;
        mh.hashes = params.bands * params.rows;
        return MinHasher(mh);
      }()),
      tree_(VocabularyTree::train(
          seed_sample(params.vocabulary, params.vocabulary_sample),
          params.vocabulary)),
      band_tables_(static_cast<std::size_t>(params.bands)) {}

std::vector<std::uint64_t> AnnFrontEnd::band_signatures_of(
    const MinHashSketch& sketch) const {
  std::vector<std::uint64_t> sigs(static_cast<std::size_t>(params_.bands));
  for (int b = 0; b < params_.bands; ++b) {
    // Chain the band's minima through splitmix; salting with the band index
    // keeps equal-minima bands of different positions distinct.
    std::uint64_t h = 0x5ee1ba9dULL ^ static_cast<std::uint64_t>(b);
    for (int r = 0; r < params_.rows; ++r) {
      h = mix(h, sketch.minima[static_cast<std::size_t>(
                    b * params_.rows + r)]);
    }
    sigs[static_cast<std::size_t>(b)] = h;
  }
  return sigs;
}

AnnFrontEnd::Row AnnFrontEnd::make_row(
    const std::vector<feat::Descriptor256>& descriptors) const {
  Row row;
  if (descriptors.empty()) {
    // No descriptors -> no derived state; an empty row never matches.
    return row;
  }
  row.band_signatures = band_signatures_of(hasher_.sketch(descriptors));
  row.words.reserve(descriptors.size());
  for (const auto& d : descriptors) row.words.push_back(tree_.quantize(d));
  std::sort(row.words.begin(), row.words.end());
  row.words.erase(std::unique(row.words.begin(), row.words.end()),
                  row.words.end());
  return row;
}

void AnnFrontEnd::install_row(ImageId id, const Row& row) {
  if (static_cast<std::size_t>(id) != image_count()) {
    throw std::invalid_argument("AnnFrontEnd: out-of-order insert");
  }
  signatures_.insert(signatures_.end(), row.band_signatures.begin(),
                     row.band_signatures.end());
  // Rows of empty descriptor sets have no signatures; pad so the CSR slots
  // stay `bands` wide and never alias a real signature (id-salted).
  for (std::size_t b = row.band_signatures.size();
       b < static_cast<std::size_t>(params_.bands); ++b) {
    signatures_.push_back(mix(0xe0077e57ULL + b, id));
  }
  if (!row.band_signatures.empty()) {
    for (int b = 0; b < params_.bands; ++b) {
      band_tables_[static_cast<std::size_t>(b)]
                  [row.band_signatures[static_cast<std::size_t>(b)]]
                      .push_back(id);
    }
  }
  for (const std::uint32_t word : row.words) {
    inverted_[word].push_back(id);
  }
  words_.insert(words_.end(), row.words.begin(), row.words.end());
  word_offsets_.push_back(static_cast<std::uint32_t>(words_.size()));
}

void AnnFrontEnd::insert(ImageId id,
                         const std::vector<feat::Descriptor256>& descriptors) {
  install_row(id, make_row(descriptors));
}

void AnnFrontEnd::insert_row(ImageId id, Row row) {
  if (!row.band_signatures.empty() &&
      row.band_signatures.size() != static_cast<std::size_t>(params_.bands)) {
    throw util::DecodeError("AnnFrontEnd: row band count mismatch");
  }
  if (!std::is_sorted(row.words.begin(), row.words.end())) {
    throw util::DecodeError("AnnFrontEnd: row words not sorted");
  }
  install_row(id, row);
}

AnnFrontEnd::Row AnnFrontEnd::row_of(ImageId id) const {
  const auto i = static_cast<std::size_t>(id);
  Row row;
  const auto bands = static_cast<std::size_t>(params_.bands);
  row.band_signatures.assign(signatures_.begin() + i * bands,
                             signatures_.begin() + (i + 1) * bands);
  row.words.assign(words_.begin() + word_offsets_[i],
                   words_.begin() + word_offsets_[i + 1]);
  if (row.words.empty()) {
    // Empty-set images stored padded signatures; export the canonical
    // empty row so save/load round-trips bit-exactly.
    row.band_signatures.clear();
  }
  return row;
}

void AnnFrontEnd::collect(
    const std::vector<feat::Descriptor256>& query,
    std::unordered_map<ImageId, std::uint32_t>& scores) const {
  if (query.empty() || image_count() == 0) return;
  const Row q = make_row(query);
  for (int b = 0; b < params_.bands; ++b) {
    const auto& table = band_tables_[static_cast<std::size_t>(b)];
    const auto it =
        table.find(q.band_signatures[static_cast<std::size_t>(b)]);
    if (it == table.end()) continue;
    for (const ImageId id : it->second) scores[id] += params_.band_weight;
  }
  for (const std::uint32_t word : q.words) {
    const auto it = inverted_.find(word);
    if (it == inverted_.end()) continue;
    for (const ImageId id : it->second) scores[id] += 1;
  }
}

std::uint64_t AnnFrontEnd::fingerprint() const noexcept {
  std::uint64_t h = 0xbee5a22aULL;
  h = mix(h, static_cast<std::uint64_t>(params_.bands));
  h = mix(h, static_cast<std::uint64_t>(params_.rows));
  h = mix(h, params_.band_weight);
  h = mix(h, static_cast<std::uint64_t>(params_.vocabulary.branching));
  h = mix(h, static_cast<std::uint64_t>(params_.vocabulary.depth));
  h = mix(h, static_cast<std::uint64_t>(params_.vocabulary.kmeans_iterations));
  h = mix(h, params_.vocabulary.seed);
  h = mix(h, static_cast<std::uint64_t>(params_.vocabulary_sample));
  h = mix(h, static_cast<std::uint64_t>(params_.minhash.token_bits));
  h = mix(h, params_.minhash.seed);
  return h;
}

}  // namespace bees::idx
