// The server-side image feature index: the data structure the paper's CBRD
// stage queries ("if there exist similar images in the servers, the image
// does not need to be uploaded").  LSH narrows a query to a handful of
// candidate images; exact Jaccard similarity (Eq. 2) is then computed
// against each candidate's stored descriptor set.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "features/keypoint.hpp"
#include "features/matching.hpp"
#include "index/ann.hpp"
#include "index/geo.hpp"
#include "index/lsh.hpp"
#include "index/types.hpp"

namespace bees::util {
class ThreadPool;
}  // namespace bees::util

namespace bees::idx {

struct FeatureIndexParams {
  LshParams lsh;
  /// Descriptor-level LSH tables: the exact-vote candidate path and (when
  /// `ann.merge_lsh_votes`) a score refiner for the ANN shortlist.  Off
  /// saves the per-descriptor bucket storage at million-image scale; with
  /// it off, `ann.enabled` must be on for query() to see any candidates.
  bool enable_descriptor_lsh = true;
  /// ANN candidate-pruning front end (MinHash banding + vocabulary
  /// routing); see index/ann.hpp.
  AnnParams ann;
  /// Exact-rescore budget: the top candidates by LSH votes.  The ANN path
  /// widens it to ann_shortlist_budget(max_candidates, recall_target).
  int max_candidates = 16;
  feat::BinaryMatchParams match;
  /// Worker threads for the exact-rescore stage: 0 = hardware concurrency,
  /// 1 = serial (no pool).  Results are identical for every setting — the
  /// candidate partition is static and per-candidate results are merged in
  /// candidate order.
  int rescore_threads = 0;
};

/// Phase-2 rescore budget for one query: max_candidates on the exact
/// LSH-vote path, the recall-target-sized ANN shortlist otherwise.  The
/// cluster frontend truncates its merged candidate list with this same
/// function — the requirement for byte-identical sharded replies.
std::size_t candidate_budget(const FeatureIndexParams& params,
                             double recall_target);

/// Index over binary (ORB) feature sets.
class FeatureIndex {
 public:
  explicit FeatureIndex(const FeatureIndexParams& params = {});

  /// Stores an image's features (and optional geotag); returns its id.
  ImageId insert(feat::BinaryFeatures features, const GeoTag& geo = {});

  /// Queries with candidate generation + exact rescoring.  Candidates come
  /// from the ANN front end when `params.ann.enabled`, from descriptor-LSH
  /// votes otherwise.
  QueryResult query(const feat::BinaryFeatures& query_features,
                    int top_k = kDefaultTopK) const;
  QueryResult query(const feat::BinaryFeatures& query_features,
                    const QueryOptions& options) const;

  /// Exhaustive query over every stored image (no LSH); the accuracy
  /// reference for the LSH ablation bench.
  QueryResult query_exact(const feat::BinaryFeatures& query_features,
                          int top_k = kDefaultTopK) const;

  /// Phase 1 of a query: the top `max_candidates` stored images by LSH
  /// collision votes, ranked (votes desc, id asc).  The deterministic
  /// tie-break makes the candidate set independent of hash-map iteration
  /// order, which lets a sharded deployment reproduce the single-index
  /// candidate set exactly: the global top-N by (votes, id) is always
  /// contained in the union of each shard's local top-N.
  std::vector<std::pair<ImageId, std::uint32_t>> lsh_candidates(
      const feat::BinaryFeatures& query_features) const;

  /// Phase 1 with ANN dispatch: the rescore shortlist under
  /// candidate_budget(params, recall_target), ranked (score desc, id asc).
  /// With `params.ann.enabled` the score is band collisions * band_weight
  /// + shared words (+ deduplicated LSH votes when merging); otherwise
  /// this is exactly lsh_candidates().  Scores are pure per-(query, image)
  /// functions either way, so sharded deployments merge per-shard lists
  /// into the single-index shortlist (see index/ann.hpp).
  std::vector<std::pair<ImageId, std::uint32_t>> candidates(
      const feat::BinaryFeatures& query_features,
      double recall_target = kDefaultRecallTarget) const;

  /// Phase 2 of a query: exact Jaccard rescoring of an explicit candidate
  /// list (public so a cluster frontend can rescore a globally merged
  /// candidate set on the shard that owns the features).
  QueryResult rescore(const feat::BinaryFeatures& query_features,
                      const std::vector<ImageId>& candidates,
                      int top_k = kDefaultTopK) const;

  /// Batched phase 2 — the multi-query rescore plane.  Rescoring work is
  /// grouped by stored image, so each distinct candidate's descriptors are
  /// packed once and streamed against every query that shortlisted it
  /// (query-major blocking inside the match kernel).  results[q] is
  /// byte-identical to rescore(*queries[q], candidates[q], top_k[q]) for
  /// any rescore_threads setting: per-(query, slot) similarity and ops are
  /// pure pair functions written to disjoint slots, and per-query assembly
  /// walks candidate order exactly like the single-query path.  `queries`,
  /// `candidates`, and `top_k` must have equal sizes.
  std::vector<QueryResult> rescore_batch(
      const std::vector<const feat::BinaryFeatures*>& queries,
      const std::vector<std::vector<ImageId>>& candidates,
      const std::vector<int>& top_k) const;

  std::size_t image_count() const noexcept { return images_.size(); }
  std::size_t descriptor_count() const noexcept { return descriptor_count_; }
  /// Total serialized descriptor bytes stored (Table I space overhead).
  std::size_t wire_bytes() const noexcept { return wire_bytes_; }

  const feat::BinaryFeatures& features_of(ImageId id) const {
    return images_.at(id).features;
  }
  const GeoTag& geo_of(ImageId id) const { return images_.at(id).geo; }

  const FeatureIndexParams& params() const noexcept { return params_; }

  /// --- snapshot support (index/persistence.cpp) ---
  bool ann_enabled() const noexcept { return ann_.has_value(); }
  /// Fingerprint of the ANN row-shaping parameters; 0 when ANN is off.
  std::uint64_t ann_fingerprint() const noexcept {
    return ann_ ? ann_->fingerprint() : 0;
  }
  AnnFrontEnd::Row ann_row_of(ImageId id) const { return ann_->row_of(id); }
  /// Restore-path insert: installs a previously persisted ANN row instead
  /// of re-sketching/re-quantizing the descriptors.  Only valid when ANN is
  /// enabled and the snapshot fingerprint matched.
  ImageId insert_with_ann_row(feat::BinaryFeatures features, const GeoTag& geo,
                              AnnFrontEnd::Row row);

 private:
  struct Entry {
    feat::BinaryFeatures features;
    GeoTag geo;
  };

  ImageId insert_entry(feat::BinaryFeatures features, const GeoTag& geo,
                       const AnnFrontEnd::Row* row);
  util::ThreadPool* rescore_pool() const;

  FeatureIndexParams params_;
  DescriptorLsh lsh_;
  std::optional<AnnFrontEnd> ann_;
  std::size_t descriptor_count_ = 0;
  std::vector<Entry> images_;
  std::size_t wire_bytes_ = 0;
  /// Lazily-created rescore pool (shared_ptr keeps the index copyable;
  /// copies share the pool, which holds no query state).
  mutable std::shared_ptr<util::ThreadPool> pool_;
};

/// Index over float (SIFT / PCA-SIFT) feature sets, used by the SmartEye
/// baseline.  Candidates are pruned by centroid distance (no float LSH),
/// then exactly rescored.
class FloatFeatureIndex {
 public:
  struct Params {
    int max_candidates = 16;
    feat::FloatMatchParams match;
    /// Worker threads for the exact-rescore stage: 0 = hardware
    /// concurrency, 1 = serial.  Results are thread-count independent.
    int rescore_threads = 0;
  };

  FloatFeatureIndex() : FloatFeatureIndex(Params{}) {}
  explicit FloatFeatureIndex(const Params& params);

  ImageId insert(feat::FloatFeatures features, const GeoTag& geo = {});
  QueryResult query(const feat::FloatFeatures& query_features,
                    int top_k = kDefaultTopK) const;

  /// Phase 1 of a query: the `max_candidates` nearest stored images by
  /// centroid distance, ranked (distance asc, id asc).  Like
  /// FeatureIndex::lsh_candidates, the deterministic ranking lets a sharded
  /// deployment merge per-shard candidate lists into exactly the
  /// single-index candidate set.
  std::vector<std::pair<double, ImageId>> centroid_candidates(
      const feat::FloatFeatures& query_features) const;

  /// Phase 2: exact rescoring of an explicit candidate list.
  QueryResult rescore(const feat::FloatFeatures& query_features,
                      const std::vector<ImageId>& candidates,
                      int top_k = kDefaultTopK) const;

  std::size_t image_count() const noexcept { return images_.size(); }
  std::size_t wire_bytes() const noexcept { return wire_bytes_; }

  const feat::FloatFeatures& features_of(ImageId id) const {
    return images_.at(id).features;
  }
  const GeoTag& geo_of(ImageId id) const { return images_.at(id).geo; }

 private:
  struct Entry {
    feat::FloatFeatures features;
    std::vector<float> centroid;
    GeoTag geo;
  };

  static std::vector<float> centroid_of(const feat::FloatFeatures& f);
  util::ThreadPool* rescore_pool() const;

  Params params_;
  std::vector<Entry> images_;
  std::size_t wire_bytes_ = 0;
  mutable std::shared_ptr<util::ThreadPool> pool_;
};

}  // namespace bees::idx
