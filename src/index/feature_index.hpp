// The server-side image feature index: the data structure the paper's CBRD
// stage queries ("if there exist similar images in the servers, the image
// does not need to be uploaded").  LSH narrows a query to a handful of
// candidate images; exact Jaccard similarity (Eq. 2) is then computed
// against each candidate's stored descriptor set.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "features/keypoint.hpp"
#include "features/matching.hpp"
#include "index/geo.hpp"
#include "index/lsh.hpp"

namespace bees::util {
class ThreadPool;
}  // namespace bees::util

namespace bees::idx {

using ImageId = std::uint32_t;
inline constexpr ImageId kInvalidImageId =
    std::numeric_limits<ImageId>::max();

/// Ranked hits a similarity query returns by default.  Single source of
/// truth for every layer's default: index queries, the vocabulary index,
/// cloud::Server entry points, the wire protocol's query messages, and
/// core::SchemeConfig all route through this constant.
inline constexpr int kDefaultTopK = 4;

/// One ranked hit of a similarity query.
struct QueryHit {
  ImageId id = kInvalidImageId;
  double similarity = 0.0;
};

/// Result of querying the index with one image's features.
struct QueryResult {
  /// Ranked hits, most similar first (up to the requested top-k).
  std::vector<QueryHit> hits;
  /// The paper's "maximum similarity": similarity to the most similar
  /// stored image, 0 if the index is empty.
  double max_similarity = 0.0;
  ImageId best_id = kInvalidImageId;
  /// Candidate images whose descriptors were exactly matched.
  std::size_t candidates_checked = 0;
  /// Descriptor-comparison work performed (for the server-cost ablation).
  std::uint64_t ops = 0;
};

struct FeatureIndexParams {
  LshParams lsh;
  /// Exact-rescore budget: the top candidates by LSH votes.
  int max_candidates = 16;
  feat::BinaryMatchParams match;
  /// Worker threads for the exact-rescore stage: 0 = hardware concurrency,
  /// 1 = serial (no pool).  Results are identical for every setting — the
  /// candidate partition is static and per-candidate results are merged in
  /// candidate order.
  int rescore_threads = 0;
};

namespace detail {
/// Shared top-k epilogue of every similarity query: sorts hits by
/// similarity (descending), breaking ties by ascending ImageId so rankings
/// are stable across memory layouts and thread counts; truncates to
/// `top_k` and fills max_similarity / best_id from the leader.
void finalize_top_k(QueryResult& result, int top_k);
}  // namespace detail

/// Index over binary (ORB) feature sets.
class FeatureIndex {
 public:
  explicit FeatureIndex(const FeatureIndexParams& params = {});

  /// Stores an image's features (and optional geotag); returns its id.
  ImageId insert(feat::BinaryFeatures features, const GeoTag& geo = {});

  /// Queries with LSH candidate generation + exact rescoring.
  QueryResult query(const feat::BinaryFeatures& query_features,
                    int top_k = kDefaultTopK) const;

  /// Exhaustive query over every stored image (no LSH); the accuracy
  /// reference for the LSH ablation bench.
  QueryResult query_exact(const feat::BinaryFeatures& query_features,
                          int top_k = kDefaultTopK) const;

  /// Phase 1 of a query: the top `max_candidates` stored images by LSH
  /// collision votes, ranked (votes desc, id asc).  The deterministic
  /// tie-break makes the candidate set independent of hash-map iteration
  /// order, which lets a sharded deployment reproduce the single-index
  /// candidate set exactly: the global top-N by (votes, id) is always
  /// contained in the union of each shard's local top-N.
  std::vector<std::pair<ImageId, std::uint32_t>> lsh_candidates(
      const feat::BinaryFeatures& query_features) const;

  /// Phase 2 of a query: exact Jaccard rescoring of an explicit candidate
  /// list (public so a cluster frontend can rescore a globally merged
  /// candidate set on the shard that owns the features).
  QueryResult rescore(const feat::BinaryFeatures& query_features,
                      const std::vector<ImageId>& candidates,
                      int top_k = kDefaultTopK) const;

  std::size_t image_count() const noexcept { return images_.size(); }
  std::size_t descriptor_count() const noexcept { return lsh_.descriptor_count(); }
  /// Total serialized descriptor bytes stored (Table I space overhead).
  std::size_t wire_bytes() const noexcept { return wire_bytes_; }

  const feat::BinaryFeatures& features_of(ImageId id) const {
    return images_.at(id).features;
  }
  const GeoTag& geo_of(ImageId id) const { return images_.at(id).geo; }

 private:
  struct Entry {
    feat::BinaryFeatures features;
    GeoTag geo;
  };

  util::ThreadPool* rescore_pool() const;

  FeatureIndexParams params_;
  DescriptorLsh lsh_;
  std::vector<Entry> images_;
  std::size_t wire_bytes_ = 0;
  /// Lazily-created rescore pool (shared_ptr keeps the index copyable;
  /// copies share the pool, which holds no query state).
  mutable std::shared_ptr<util::ThreadPool> pool_;
};

/// Index over float (SIFT / PCA-SIFT) feature sets, used by the SmartEye
/// baseline.  Candidates are pruned by centroid distance (no float LSH),
/// then exactly rescored.
class FloatFeatureIndex {
 public:
  struct Params {
    int max_candidates = 16;
    feat::FloatMatchParams match;
    /// Worker threads for the exact-rescore stage: 0 = hardware
    /// concurrency, 1 = serial.  Results are thread-count independent.
    int rescore_threads = 0;
  };

  FloatFeatureIndex() : FloatFeatureIndex(Params{}) {}
  explicit FloatFeatureIndex(const Params& params);

  ImageId insert(feat::FloatFeatures features, const GeoTag& geo = {});
  QueryResult query(const feat::FloatFeatures& query_features,
                    int top_k = kDefaultTopK) const;

  /// Phase 1 of a query: the `max_candidates` nearest stored images by
  /// centroid distance, ranked (distance asc, id asc).  Like
  /// FeatureIndex::lsh_candidates, the deterministic ranking lets a sharded
  /// deployment merge per-shard candidate lists into exactly the
  /// single-index candidate set.
  std::vector<std::pair<double, ImageId>> centroid_candidates(
      const feat::FloatFeatures& query_features) const;

  /// Phase 2: exact rescoring of an explicit candidate list.
  QueryResult rescore(const feat::FloatFeatures& query_features,
                      const std::vector<ImageId>& candidates,
                      int top_k = kDefaultTopK) const;

  std::size_t image_count() const noexcept { return images_.size(); }
  std::size_t wire_bytes() const noexcept { return wire_bytes_; }

  const feat::FloatFeatures& features_of(ImageId id) const {
    return images_.at(id).features;
  }
  const GeoTag& geo_of(ImageId id) const { return images_.at(id).geo; }

 private:
  struct Entry {
    feat::FloatFeatures features;
    std::vector<float> centroid;
    GeoTag geo;
  };

  static std::vector<float> centroid_of(const feat::FloatFeatures& f);
  util::ThreadPool* rescore_pool() const;

  Params params_;
  std::vector<Entry> images_;
  std::size_t wire_bytes_ = 0;
  mutable std::shared_ptr<util::ThreadPool> pool_;
};

}  // namespace bees::idx
