#include "index/persistence.hpp"

#include <fstream>

#include "index/serialize.hpp"
#include "util/byte_io.hpp"
#include "util/compress.hpp"

namespace bees::idx {

namespace {
constexpr std::uint32_t kSnapshotMagic = 0x53454542;  // "BEES"
constexpr std::uint32_t kSnapshotVersion = 1;
}  // namespace

void save_index_snapshot(const FeatureIndex& index, const std::string& path) {
  util::ByteWriter w;
  w.put_u32(kSnapshotMagic);
  w.put_u32(kSnapshotVersion);
  w.put_varint(index.image_count());
  for (std::size_t i = 0; i < index.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    const auto features = serialize_binary(index.features_of(id));
    w.put_varint(features.size());
    w.put_bytes(features);
    const GeoTag& geo = index.geo_of(id);
    w.put_u8(geo.valid ? 1 : 0);
    w.put_f64(geo.lon);
    w.put_f64(geo.lat);
  }
  const auto compressed = util::lz_compress(w.bytes());

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_index_snapshot: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(compressed.data()),
            static_cast<std::streamsize>(compressed.size()));
  if (!out) {
    throw std::runtime_error("save_index_snapshot: write failed for " + path);
  }
}

FeatureIndex load_index_snapshot(const std::string& path,
                                 const FeatureIndexParams& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_index_snapshot: cannot open " + path);
  }
  std::vector<std::uint8_t> compressed(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const auto bytes = util::lz_decompress(compressed);

  util::ByteReader r(bytes);
  if (r.get_u32() != kSnapshotMagic) {
    throw util::DecodeError("load_index_snapshot: bad magic");
  }
  if (r.get_u32() != kSnapshotVersion) {
    throw util::DecodeError("load_index_snapshot: unsupported version");
  }
  FeatureIndex index(params);
  const auto count = r.get_varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto feature_len = static_cast<std::size_t>(r.get_varint());
    const auto feature_bytes = r.get_bytes(feature_len);
    feat::BinaryFeatures features = deserialize_binary(feature_bytes);
    GeoTag geo;
    geo.valid = r.get_u8() != 0;
    geo.lon = r.get_f64();
    geo.lat = r.get_f64();
    index.insert(std::move(features), geo);
  }
  return index;
}

}  // namespace bees::idx
