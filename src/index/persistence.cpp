#include "index/persistence.hpp"

#include <fstream>

#include "index/serialize.hpp"
#include "util/byte_io.hpp"
#include "util/compress.hpp"

namespace bees::idx {

namespace {
constexpr std::uint32_t kSnapshotMagic = 0x53454542;       // "BEES"
constexpr std::uint32_t kFloatSnapshotMagic = 0x46454542;  // "BEEF"
constexpr std::uint32_t kSnapshotVersion = 1;

void put_geo(util::ByteWriter& w, const GeoTag& geo) {
  w.put_u8(geo.valid ? 1 : 0);
  w.put_f64(geo.lon);
  w.put_f64(geo.lat);
}

GeoTag get_geo(util::ByteReader& r) {
  GeoTag geo;
  geo.valid = r.get_u8() != 0;
  geo.lon = r.get_f64();
  geo.lat = r.get_f64();
  return geo;
}

void write_file(const std::vector<std::uint8_t>& bytes,
                const std::string& path, const char* who) {
  const auto compressed = util::lz_compress(bytes);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error(std::string(who) + ": cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(compressed.data()),
            static_cast<std::streamsize>(compressed.size()));
  if (!out) {
    throw std::runtime_error(std::string(who) + ": write failed for " + path);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path, const char* who) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(std::string(who) + ": cannot open " + path);
  }
  std::vector<std::uint8_t> compressed(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return util::lz_decompress(compressed);
}

}  // namespace

std::vector<std::uint8_t> encode_index_snapshot(const FeatureIndex& index) {
  util::ByteWriter w;
  w.put_u32(kSnapshotMagic);
  w.put_u32(kSnapshotVersion);
  w.put_varint(index.image_count());
  for (std::size_t i = 0; i < index.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    const auto features = serialize_binary(index.features_of(id));
    w.put_varint(features.size());
    w.put_bytes(features);
    put_geo(w, index.geo_of(id));
  }
  return w.take();
}

FeatureIndex decode_index_snapshot(const std::vector<std::uint8_t>& bytes,
                                   const FeatureIndexParams& params) {
  util::ByteReader r(bytes);
  if (r.get_u32() != kSnapshotMagic) {
    throw util::DecodeError("decode_index_snapshot: bad magic");
  }
  if (r.get_u32() != kSnapshotVersion) {
    throw util::DecodeError("decode_index_snapshot: unsupported version");
  }
  FeatureIndex index(params);
  const auto count = r.get_varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto feature_len = static_cast<std::size_t>(r.get_varint());
    const auto feature_bytes = r.get_bytes(feature_len);
    feat::BinaryFeatures features = deserialize_binary(feature_bytes);
    const GeoTag geo = get_geo(r);
    index.insert(std::move(features), geo);
  }
  return index;
}

std::vector<std::uint8_t> encode_float_index_snapshot(
    const FloatFeatureIndex& index) {
  util::ByteWriter w;
  w.put_u32(kFloatSnapshotMagic);
  w.put_u32(kSnapshotVersion);
  w.put_varint(index.image_count());
  for (std::size_t i = 0; i < index.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    const auto features = serialize_float(index.features_of(id));
    w.put_varint(features.size());
    w.put_bytes(features);
    put_geo(w, index.geo_of(id));
  }
  return w.take();
}

FloatFeatureIndex decode_float_index_snapshot(
    const std::vector<std::uint8_t>& bytes,
    const FloatFeatureIndex::Params& params) {
  util::ByteReader r(bytes);
  if (r.get_u32() != kFloatSnapshotMagic) {
    throw util::DecodeError("decode_float_index_snapshot: bad magic");
  }
  if (r.get_u32() != kSnapshotVersion) {
    throw util::DecodeError("decode_float_index_snapshot: unsupported version");
  }
  FloatFeatureIndex index(params);
  const auto count = r.get_varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto feature_len = static_cast<std::size_t>(r.get_varint());
    const auto feature_bytes = r.get_bytes(feature_len);
    feat::FloatFeatures features = deserialize_float(feature_bytes);
    const GeoTag geo = get_geo(r);
    index.insert(std::move(features), geo);
  }
  return index;
}

void save_index_snapshot(const FeatureIndex& index, const std::string& path) {
  write_file(encode_index_snapshot(index), path, "save_index_snapshot");
}

FeatureIndex load_index_snapshot(const std::string& path,
                                 const FeatureIndexParams& params) {
  return decode_index_snapshot(read_file(path, "load_index_snapshot"), params);
}

void save_float_index_snapshot(const FloatFeatureIndex& index,
                               const std::string& path) {
  write_file(encode_float_index_snapshot(index), path,
             "save_float_index_snapshot");
}

FloatFeatureIndex load_float_index_snapshot(
    const std::string& path, const FloatFeatureIndex::Params& params) {
  return decode_float_index_snapshot(
      read_file(path, "load_float_index_snapshot"), params);
}

}  // namespace bees::idx
