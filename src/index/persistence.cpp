#include "index/persistence.hpp"

#include <fstream>
#include <limits>

#include "index/serialize.hpp"
#include "util/byte_io.hpp"
#include "util/compress.hpp"

namespace bees::idx {

namespace {
constexpr std::uint32_t kSnapshotMagic = 0x53454542;       // "BEES"
constexpr std::uint32_t kFloatSnapshotMagic = 0x46454542;  // "BEEF"
/// v1: magic, version, count, entries (feature bytes + geo).
/// v2: adds an ANN block — a presence flag (+ fingerprint and band count)
/// after the version, and a persisted AnnFrontEnd::Row after each entry's
/// geotag, so a restore skips the sketch/quantize work when the reader's
/// ANN parameters match the writer's.  Readers accept both versions.
constexpr std::uint32_t kSnapshotVersionLegacy = 1;
constexpr std::uint32_t kSnapshotVersion = 2;
/// Tightest possible snapshot entry: 1-byte feature length varint, a
/// 1-byte empty descriptor set, and the 17-byte geotag.  Image counts
/// beyond remaining/this are unsatisfiable and must fail before any
/// allocation sized from them.
constexpr std::size_t kMinEntryBytes = 19;

void put_geo(util::ByteWriter& w, const GeoTag& geo) {
  w.put_u8(geo.valid ? 1 : 0);
  w.put_f64(geo.lon);
  w.put_f64(geo.lat);
}

GeoTag get_geo(util::ByteReader& r) {
  GeoTag geo;
  geo.valid = r.get_u8() != 0;
  geo.lon = r.get_f64();
  geo.lat = r.get_f64();
  return geo;
}

void write_file(const std::vector<std::uint8_t>& bytes,
                const std::string& path, const char* who) {
  const auto compressed = util::lz_compress(bytes);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error(std::string(who) + ": cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(compressed.data()),
            static_cast<std::streamsize>(compressed.size()));
  if (!out) {
    throw std::runtime_error(std::string(who) + ": write failed for " + path);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path, const char* who) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(std::string(who) + ": cannot open " + path);
  }
  std::vector<std::uint8_t> compressed(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return util::lz_decompress(compressed);
}

void put_ann_row(util::ByteWriter& w, const AnnFrontEnd::Row& row) {
  w.put_u8(row.band_signatures.empty() ? 0 : 1);
  for (const auto sig : row.band_signatures) w.put_u64(sig);
  w.put_varint(row.words.size());
  // Words are sorted and unique, so deltas are small — varints stay short.
  std::uint32_t prev = 0;
  for (const auto word : row.words) {
    w.put_varint(word - prev);
    prev = word;
  }
}

AnnFrontEnd::Row get_ann_row(util::ByteReader& r, std::uint32_t bands) {
  AnnFrontEnd::Row row;
  if (r.get_u8() != 0) {
    row.band_signatures.reserve(bands);
    for (std::uint32_t b = 0; b < bands; ++b) {
      row.band_signatures.push_back(r.get_u64());
    }
  }
  const auto word_count = r.get_varint();
  if (word_count > r.remaining()) {  // every word delta is >= 1 byte
    throw util::DecodeError("decode_index_snapshot: word count exceeds buffer");
  }
  row.words.reserve(word_count);
  std::uint32_t prev = 0;
  for (std::uint64_t i = 0; i < word_count; ++i) {
    const auto delta = r.get_varint();
    const std::uint64_t word = static_cast<std::uint64_t>(prev) + delta;
    if (word > std::numeric_limits<std::uint32_t>::max()) {
      throw util::DecodeError("decode_index_snapshot: word id overflow");
    }
    row.words.push_back(static_cast<std::uint32_t>(word));
    prev = static_cast<std::uint32_t>(word);
  }
  return row;
}

}  // namespace

std::vector<std::uint8_t> encode_index_snapshot(const FeatureIndex& index) {
  util::ByteWriter w;
  w.put_u32(kSnapshotMagic);
  w.put_u32(kSnapshotVersion);
  const bool ann = index.ann_enabled();
  w.put_u8(ann ? 1 : 0);
  if (ann) {
    w.put_u64(index.ann_fingerprint());
    w.put_u32(static_cast<std::uint32_t>(index.params().ann.bands));
  }
  w.put_varint(index.image_count());
  for (std::size_t i = 0; i < index.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    const auto features = serialize_binary(index.features_of(id));
    w.put_varint(features.size());
    w.put_bytes(features);
    put_geo(w, index.geo_of(id));
    if (ann) put_ann_row(w, index.ann_row_of(id));
  }
  return w.take();
}

FeatureIndex decode_index_snapshot(const std::vector<std::uint8_t>& bytes,
                                   const FeatureIndexParams& params) {
  util::ByteReader r(bytes);
  if (r.get_u32() != kSnapshotMagic) {
    throw util::DecodeError("decode_index_snapshot: bad magic");
  }
  const auto version = r.get_u32();
  if (version != kSnapshotVersionLegacy && version != kSnapshotVersion) {
    throw util::DecodeError("decode_index_snapshot: unsupported version");
  }
  bool stored_rows = false;
  std::uint64_t fingerprint = 0;
  std::uint32_t bands = 0;
  if (version >= kSnapshotVersion) {
    stored_rows = r.get_u8() != 0;
    if (stored_rows) {
      fingerprint = r.get_u64();
      bands = r.get_u32();
      if (bands == 0 || bands > 1024) {
        throw util::DecodeError("decode_index_snapshot: bad band count");
      }
    }
  }
  FeatureIndex index(params);
  // Stored rows are only trusted when the reader's ANN parameters shape
  // rows identically to the writer's; otherwise they are parsed (to keep
  // the stream in sync) and recomputed by the plain insert path.
  const bool use_rows = stored_rows && index.ann_enabled() &&
                        fingerprint == index.ann_fingerprint() &&
                        bands == static_cast<std::uint32_t>(params.ann.bands);
  const auto count = r.get_varint();
  if (count > r.remaining() / kMinEntryBytes) {
    throw util::DecodeError("decode_index_snapshot: image count exceeds buffer");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto feature_len = static_cast<std::size_t>(r.get_varint());
    const auto feature_bytes = r.get_bytes(feature_len);
    feat::BinaryFeatures features = deserialize_binary(feature_bytes);
    const GeoTag geo = get_geo(r);
    if (stored_rows) {
      AnnFrontEnd::Row row = get_ann_row(r, bands);
      if (use_rows) {
        index.insert_with_ann_row(std::move(features), geo, std::move(row));
        continue;
      }
    }
    index.insert(std::move(features), geo);
  }
  return index;
}

std::vector<std::uint8_t> encode_float_index_snapshot(
    const FloatFeatureIndex& index) {
  util::ByteWriter w;
  w.put_u32(kFloatSnapshotMagic);
  w.put_u32(kSnapshotVersion);
  w.put_varint(index.image_count());
  for (std::size_t i = 0; i < index.image_count(); ++i) {
    const auto id = static_cast<ImageId>(i);
    const auto features = serialize_float(index.features_of(id));
    w.put_varint(features.size());
    w.put_bytes(features);
    put_geo(w, index.geo_of(id));
  }
  return w.take();
}

FloatFeatureIndex decode_float_index_snapshot(
    const std::vector<std::uint8_t>& bytes,
    const FloatFeatureIndex::Params& params) {
  util::ByteReader r(bytes);
  if (r.get_u32() != kFloatSnapshotMagic) {
    throw util::DecodeError("decode_float_index_snapshot: bad magic");
  }
  const auto version = r.get_u32();
  if (version != kSnapshotVersionLegacy && version != kSnapshotVersion) {
    throw util::DecodeError("decode_float_index_snapshot: unsupported version");
  }
  FloatFeatureIndex index(params);
  const auto count = r.get_varint();
  if (count > r.remaining() / kMinEntryBytes) {
    throw util::DecodeError(
        "decode_float_index_snapshot: image count exceeds buffer");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto feature_len = static_cast<std::size_t>(r.get_varint());
    const auto feature_bytes = r.get_bytes(feature_len);
    feat::FloatFeatures features = deserialize_float(feature_bytes);
    const GeoTag geo = get_geo(r);
    index.insert(std::move(features), geo);
  }
  return index;
}

void save_index_snapshot(const FeatureIndex& index, const std::string& path) {
  write_file(encode_index_snapshot(index), path, "save_index_snapshot");
}

FeatureIndex load_index_snapshot(const std::string& path,
                                 const FeatureIndexParams& params) {
  return decode_index_snapshot(read_file(path, "load_index_snapshot"), params);
}

void save_float_index_snapshot(const FloatFeatureIndex& index,
                               const std::string& path) {
  write_file(encode_float_index_snapshot(index), path,
             "save_float_index_snapshot");
}

FloatFeatureIndex load_float_index_snapshot(
    const std::string& path, const FloatFeatureIndex::Params& params) {
  return decode_float_index_snapshot(
      read_file(path, "load_float_index_snapshot"), params);
}

}  // namespace bees::idx
