// Wire format for feature sets.  These byte counts are what the simulated
// channel actually carries when a client uploads features for redundancy
// detection, and what Table I measures as feature space overhead.
#pragma once

#include <cstdint>
#include <vector>

#include "features/keypoint.hpp"

namespace bees::idx {

/// Encodes a binary (ORB) feature set: varint count + 32 bytes/descriptor.
std::vector<std::uint8_t> serialize_binary(const feat::BinaryFeatures& f);
/// Inverse of serialize_binary (keypoint geometry is not carried — the
/// server only needs descriptors).  Throws util::DecodeError on bad input.
feat::BinaryFeatures deserialize_binary(
    const std::vector<std::uint8_t>& bytes);

/// Encodes a float (SIFT / PCA-SIFT) feature set: varint count + varint dim
/// + 4 bytes per component.
std::vector<std::uint8_t> serialize_float(const feat::FloatFeatures& f);
feat::FloatFeatures deserialize_float(const std::vector<std::uint8_t>& bytes);

}  // namespace bees::idx
