// Durable storage for the server's feature index: the cloud side of BEES
// must survive restarts without re-receiving every image, so the index's
// entries (descriptor sets + geotags) serialize to a single LZ-compressed
// snapshot file.  LSH tables are derived state and are rebuilt on load.
#pragma once

#include <string>

#include "index/feature_index.hpp"

namespace bees::idx {

/// Writes a snapshot of every indexed image to `path`.
/// Throws std::runtime_error on I/O failure.
void save_index_snapshot(const FeatureIndex& index, const std::string& path);

/// Rebuilds an index from a snapshot, inserting every image into a fresh
/// index constructed with `params` (the LSH configuration can differ from
/// the one that wrote the snapshot).  Throws std::runtime_error on I/O
/// failure and util::DecodeError on a corrupt snapshot.
FeatureIndex load_index_snapshot(const std::string& path,
                                 const FeatureIndexParams& params = {});

}  // namespace bees::idx
