// Durable storage for the server's feature indices: the cloud side of BEES
// must survive restarts without re-receiving every image, so an index's
// entries (descriptor sets + geotags) serialize to an LZ-compressed
// snapshot.  LSH tables and centroids are derived state and are rebuilt on
// load.  Both the binary (ORB) index and the float (SIFT / PCA-SIFT) index
// used by the SmartEye path snapshot the same way.
//
// Two layers: encode_*/decode_* produce the uncompressed snapshot bytes
// (embedded by the serving layer's per-shard checkpoints), while
// save_*/load_* add LZ compression and file I/O for standalone snapshot
// files (bees_sim --save-index / --load-index).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "index/feature_index.hpp"

namespace bees::idx {

/// Snapshot of every indexed image as raw bytes (magic + version + entries).
std::vector<std::uint8_t> encode_index_snapshot(const FeatureIndex& index);

/// Rebuilds an index from encode_index_snapshot bytes, inserting every
/// image into a fresh index constructed with `params` (the LSH
/// configuration can differ from the one that wrote the snapshot).  Throws
/// util::DecodeError on corrupt bytes.
FeatureIndex decode_index_snapshot(const std::vector<std::uint8_t>& bytes,
                                   const FeatureIndexParams& params = {});

/// Float-index counterparts (the SmartEye path's index).
std::vector<std::uint8_t> encode_float_index_snapshot(
    const FloatFeatureIndex& index);
FloatFeatureIndex decode_float_index_snapshot(
    const std::vector<std::uint8_t>& bytes,
    const FloatFeatureIndex::Params& params = {});

/// Writes an LZ-compressed snapshot of every indexed image to `path`.
/// Throws std::runtime_error on I/O failure.
void save_index_snapshot(const FeatureIndex& index, const std::string& path);

/// Inverse of save_index_snapshot.  Throws std::runtime_error on I/O
/// failure and util::DecodeError on a corrupt snapshot.
FeatureIndex load_index_snapshot(const std::string& path,
                                 const FeatureIndexParams& params = {});

/// Float-index file snapshot counterparts.
void save_float_index_snapshot(const FloatFeatureIndex& index,
                               const std::string& path);
FloatFeatureIndex load_float_index_snapshot(
    const std::string& path, const FloatFeatureIndex::Params& params = {});

}  // namespace bees::idx
