#include "index/lsh.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace bees::idx {

DescriptorLsh::DescriptorLsh(const LshParams& params)
    : bits_per_key_(params.bits_per_key) {
  if (params.tables <= 0 || params.bits_per_key <= 0 ||
      params.bits_per_key > 32) {
    throw std::invalid_argument("DescriptorLsh: bad parameters");
  }
  util::Rng rng(params.seed);
  positions_.resize(static_cast<std::size_t>(params.tables));
  buckets_.resize(static_cast<std::size_t>(params.tables));
  for (auto& pos : positions_) {
    // Sample k distinct bit positions per table.
    std::vector<int> all(256);
    std::iota(all.begin(), all.end(), 0);
    rng.shuffle(all);
    pos.assign(all.begin(), all.begin() + params.bits_per_key);
  }
}

std::uint32_t DescriptorLsh::key_for(const feat::Descriptor256& d,
                                     std::size_t table) const noexcept {
  std::uint32_t key = 0;
  for (const int bit : positions_[table]) {
    key = (key << 1) | (d.get_bit(bit) ? 1u : 0u);
  }
  return key;
}

void DescriptorLsh::insert(const feat::Descriptor256& d,
                           std::uint32_t payload) {
  for (std::size_t t = 0; t < positions_.size(); ++t) {
    auto& bucket = buckets_[t][key_for(d, t)];
    // Per-bucket payload dedup.  One image's descriptors are inserted
    // back-to-back, so a repeat collision of the same image in this bucket
    // is always at the tail; skipping it keeps vote() from inflating
    // descriptor-dense images and shrinks bucket storage.
    if (!bucket.empty() && bucket.back() == payload) continue;
    bucket.push_back(payload);
  }
  ++inserted_;
}

void DescriptorLsh::vote(
    const feat::Descriptor256& d,
    std::unordered_map<std::uint32_t, std::uint32_t>& votes) const {
  for (std::size_t t = 0; t < positions_.size(); ++t) {
    const auto it = buckets_[t].find(key_for(d, t));
    if (it == buckets_[t].end()) continue;
    for (const std::uint32_t payload : it->second) ++votes[payload];
  }
}

double DescriptorLsh::table_collision_probability(int hamming) const noexcept {
  const double p = 1.0 - static_cast<double>(hamming) / 256.0;
  return std::pow(p, bits_per_key_);
}

}  // namespace bees::idx
