#include "index/minhash.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace bees::idx {

MinHasher::MinHasher(const MinHashParams& params) : params_(params) {
  if (params.hashes <= 0 || params.token_bits <= 0 ||
      params.token_bits > 64) {
    throw std::invalid_argument("MinHasher: bad parameters");
  }
  util::Rng rng(params.seed);
  std::vector<int> all(256);
  std::iota(all.begin(), all.end(), 0);
  rng.shuffle(all);
  token_positions_.assign(all.begin(), all.begin() + params.token_bits);
  salts_.reserve(static_cast<std::size_t>(params.hashes));
  for (int h = 0; h < params.hashes; ++h) {
    salts_.push_back(rng.next_u64() | 1);
  }
}

std::uint64_t MinHasher::token_of(const feat::Descriptor256& d) const
    noexcept {
  std::uint64_t token = 0;
  for (const int bit : token_positions_) {
    token = (token << 1) | (d.get_bit(bit) ? 1u : 0u);
  }
  return token;
}

MinHashSketch MinHasher::sketch(
    const std::vector<feat::Descriptor256>& descriptors,
    std::uint64_t* ops) const {
  MinHashSketch s;
  s.minima.assign(salts_.size(), std::numeric_limits<std::uint64_t>::max());
  for (const auto& d : descriptors) {
    const std::uint64_t token = token_of(d);
    for (std::size_t h = 0; h < salts_.size(); ++h) {
      // Hash the token under salt h (splitmix of token xor salt).
      std::uint64_t state = token ^ salts_[h];
      const std::uint64_t value = util::splitmix64(state);
      s.minima[h] = std::min(s.minima[h], value);
    }
  }
  if (ops) *ops += descriptors.size() * salts_.size();
  return s;
}

double MinHasher::estimate_similarity(const MinHashSketch& a,
                                      const MinHashSketch& b) const noexcept {
  if (a.minima.size() != b.minima.size() || a.minima.empty()) return 0.0;
  // Empty-set sketches (all sentinel) have no defined similarity.
  const auto sentinel = std::numeric_limits<std::uint64_t>::max();
  if (a.minima[0] == sentinel || b.minima[0] == sentinel) return 0.0;
  std::size_t agree = 0;
  for (std::size_t h = 0; h < a.minima.size(); ++h) {
    if (a.minima[h] == b.minima[h]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.minima.size());
}

double MinHasher::exact_token_jaccard(
    const std::vector<feat::Descriptor256>& a,
    const std::vector<feat::Descriptor256>& b) const {
  std::unordered_set<std::uint64_t> sa, sb;
  for (const auto& d : a) sa.insert(token_of(d));
  for (const auto& d : b) sb.insert(token_of(d));
  if (sa.empty() && sb.empty()) return 0.0;
  std::size_t inter = 0;
  for (const auto t : sa) inter += sb.count(t);
  const std::size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0
                  : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace bees::idx
