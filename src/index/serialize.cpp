#include "index/serialize.hpp"

#include "util/byte_io.hpp"

namespace bees::idx {

std::vector<std::uint8_t> serialize_binary(const feat::BinaryFeatures& f) {
  util::ByteWriter w;
  w.put_varint(f.descriptors.size());
  for (const auto& d : f.descriptors) {
    for (const auto lane : d.bits) w.put_u64(lane);
  }
  return w.take();
}

feat::BinaryFeatures deserialize_binary(
    const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  feat::BinaryFeatures f;
  const auto n = r.get_varint();
  // A corrupt count must fail cleanly before the reserve: every descriptor
  // occupies 32 bytes, so any count beyond remaining/32 is unsatisfiable.
  if (n > r.remaining() / sizeof(feat::Descriptor256::bits)) {
    throw util::DecodeError("deserialize_binary: descriptor count exceeds buffer");
  }
  f.descriptors.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    feat::Descriptor256 d;
    for (auto& lane : d.bits) lane = r.get_u64();
    f.descriptors.push_back(d);
  }
  f.stats.keypoint_count = f.descriptors.size();
  return f;
}

std::vector<std::uint8_t> serialize_float(const feat::FloatFeatures& f) {
  util::ByteWriter w;
  w.put_varint(f.size());
  w.put_varint(static_cast<std::uint64_t>(f.dim));
  for (const float v : f.values) w.put_f32(v);
  return w.take();
}

feat::FloatFeatures deserialize_float(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  feat::FloatFeatures f;
  const auto n = r.get_varint();
  const auto dim = r.get_varint();
  // Validate both varints against the buffer before sizing anything: each
  // value is a 4-byte f32, so n * dim beyond remaining/4 is unsatisfiable,
  // and an absurd dim must not drive the multiplication into overflow.
  if (dim > (1u << 16) || (n > 0 && dim == 0)) {
    throw util::DecodeError("deserialize_float: bad descriptor dimension");
  }
  if (dim > 0 && n > r.remaining() / 4 / dim) {
    throw util::DecodeError("deserialize_float: value count exceeds buffer");
  }
  f.dim = static_cast<int>(dim);
  f.values.reserve(n * dim);
  for (std::uint64_t i = 0; i < n * dim; ++i) {
    f.values.push_back(r.get_f32());
  }
  f.stats.keypoint_count = f.size();
  return f;
}

}  // namespace bees::idx
