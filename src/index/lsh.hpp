// Bit-sampling locality-sensitive hashing for 256-bit ORB descriptors.
// For Hamming space, sampling k random bit positions is the classic LSH
// family: descriptors within distance d collide in one table with
// probability (1 - d/256)^k.  The server index uses several tables to turn
// a batch query into a small candidate set instead of a full scan.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "features/keypoint.hpp"

namespace bees::idx {

struct LshParams {
  int tables = 6;        ///< Independent hash tables (L).
  int bits_per_key = 16; ///< Sampled bit positions per table (k).
  std::uint64_t seed = 0xbee5bee5ULL;  ///< Determines sampled positions.
};

/// Multi-table bit-sampling LSH mapping descriptors to caller-supplied
/// 32-bit payloads (the owning image id).  Buckets hold payload lists;
/// queries return collision votes per payload.
class DescriptorLsh {
 public:
  explicit DescriptorLsh(const LshParams& params = {});

  /// Inserts one descriptor owned by `payload` into all tables.  A payload
  /// already present at the tail of a bucket is not appended again: all of
  /// one image's descriptors are inserted consecutively, so equal payloads
  /// land adjacently and the per-bucket payload list stays duplicate-free.
  void insert(const feat::Descriptor256& d, std::uint32_t payload);

  /// Accumulates, for each payload, in how many (table, bucket) cells the
  /// query descriptor collides with at least one of the payload's stored
  /// descriptors.  Payloads are deduplicated per bucket: an image whose
  /// descriptors collide k times in the same (table, key) bucket gets one
  /// vote from this query descriptor, not k — otherwise descriptor-dense
  /// images would outrank genuinely closer ones.
  void vote(const feat::Descriptor256& d,
            std::unordered_map<std::uint32_t, std::uint32_t>& votes) const;

  std::size_t descriptor_count() const noexcept { return inserted_; }
  int tables() const noexcept { return static_cast<int>(positions_.size()); }

  /// Collision probability of a single table for two descriptors at Hamming
  /// distance `d` — the analytic (1 - d/256)^k, used by tests.
  double table_collision_probability(int hamming) const noexcept;

 private:
  std::uint32_t key_for(const feat::Descriptor256& d, std::size_t table) const
      noexcept;

  std::vector<std::vector<int>> positions_;  // per table: sampled bit indices
  std::vector<std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>>
      buckets_;
  std::size_t inserted_ = 0;
  int bits_per_key_ = 16;
};

}  // namespace bees::idx
