#include "index/vocabulary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "features/match_kernel.hpp"
#include "features/similarity.hpp"
#include "index/feature_index.hpp"
#include "util/rng.hpp"

namespace bees::idx {

namespace {

/// Bitwise-majority center of a descriptor group (k-majority centroid).
feat::Descriptor256 majority_center(
    const std::vector<feat::Descriptor256>& members) {
  feat::Descriptor256 center;
  if (members.empty()) return center;
  for (int bit = 0; bit < 256; ++bit) {
    std::size_t ones = 0;
    for (const auto& m : members) ones += m.get_bit(bit) ? 1 : 0;
    if (ones * 2 >= members.size()) center.set_bit(bit);
  }
  return center;
}

/// One k-majority clustering of `points` into at most k groups.  Returns
/// the centers; `assignment[i]` gets the center index of points[i].
std::vector<feat::Descriptor256> k_majority(
    const std::vector<feat::Descriptor256>& points, int k, int iterations,
    util::Rng& rng, std::vector<int>& assignment) {
  const int clusters = std::min<int>(k, static_cast<int>(points.size()));
  std::vector<feat::Descriptor256> centers;
  // Initialize with distinct random points.
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) order[i] = i;
  rng.shuffle(order);
  for (int c = 0; c < clusters; ++c) {
    centers.push_back(points[order[static_cast<std::size_t>(c)]]);
  }

  assignment.assign(points.size(), 0);
  for (int iter = 0; iter < iterations; ++iter) {
    bool moved = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      int best_d = feat::hamming_distance(points[i], centers[0]);
      for (int c = 1; c < clusters; ++c) {
        const int d = feat::hamming_distance(
            points[i], centers[static_cast<std::size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        moved = true;
      }
    }
    if (!moved && iter > 0) break;
    // Recompute majority centers; empty clusters keep their old center.
    std::vector<std::vector<feat::Descriptor256>> groups(
        static_cast<std::size_t>(clusters));
    for (std::size_t i = 0; i < points.size(); ++i) {
      groups[static_cast<std::size_t>(assignment[i])].push_back(points[i]);
    }
    for (int c = 0; c < clusters; ++c) {
      if (!groups[static_cast<std::size_t>(c)].empty()) {
        centers[static_cast<std::size_t>(c)] =
            majority_center(groups[static_cast<std::size_t>(c)]);
      }
    }
  }
  return centers;
}

}  // namespace

VocabularyTree VocabularyTree::train(
    const std::vector<feat::Descriptor256>& sample,
    const VocabularyParams& params) {
  if (sample.empty()) {
    throw std::invalid_argument("VocabularyTree: empty training sample");
  }
  if (params.branching < 2 || params.depth < 1) {
    throw std::invalid_argument("VocabularyTree: bad parameters");
  }
  VocabularyTree tree;
  tree.params_ = params;
  util::Rng rng(params.seed);

  // Each work item expands one node; children are appended contiguously to
  // nodes_ so a (first_child, child_count) pair describes them.
  struct Work {
    std::size_t node;
    std::vector<feat::Descriptor256> members;
    int levels_left;
  };
  tree.nodes_.push_back({});  // root (its center is unused)
  std::vector<Work> queue;
  queue.push_back({0, sample, params.depth});

  while (!queue.empty()) {
    Work work = std::move(queue.back());
    queue.pop_back();
    if (work.levels_left == 0 || work.members.size() <= 1) {
      tree.nodes_[work.node].first_child = -1;
      tree.nodes_[work.node].child_count = 0;
      tree.nodes_[work.node].leaf_id = tree.leaf_count_++;
      continue;
    }
    std::vector<int> assignment;
    const auto centers = k_majority(work.members, params.branching,
                                    params.kmeans_iterations, rng,
                                    assignment);
    tree.nodes_[work.node].first_child =
        static_cast<std::int32_t>(tree.nodes_.size());
    tree.nodes_[work.node].child_count =
        static_cast<std::int32_t>(centers.size());
    std::vector<std::vector<feat::Descriptor256>> groups(centers.size());
    for (std::size_t i = 0; i < work.members.size(); ++i) {
      groups[static_cast<std::size_t>(assignment[i])].push_back(
          work.members[i]);
    }
    const std::size_t first = tree.nodes_.size();
    for (std::size_t c = 0; c < centers.size(); ++c) {
      Node child;
      child.center = centers[c];
      tree.nodes_.push_back(child);
    }
    for (std::size_t c = 0; c < centers.size(); ++c) {
      queue.push_back({first + c, std::move(groups[c]),
                       work.levels_left - 1});
    }
  }
  return tree;
}

std::uint32_t VocabularyTree::quantize(const feat::Descriptor256& d) const
    noexcept {
  std::size_t node = 0;
  while (nodes_[node].first_child >= 0) {
    const auto first = static_cast<std::size_t>(nodes_[node].first_child);
    const auto count = static_cast<std::size_t>(nodes_[node].child_count);
    std::size_t best = first;
    int best_d = feat::hamming_distance(d, nodes_[first].center);
    for (std::size_t c = first + 1; c < first + count; ++c) {
      const int dist = feat::hamming_distance(d, nodes_[c].center);
      if (dist < best_d) {
        best_d = dist;
        best = c;
      }
    }
    node = best;
  }
  return nodes_[node].leaf_id;
}

VocabularyIndex::VocabularyIndex(VocabularyTree tree, const Params& params)
    : tree_(std::move(tree)), params_(params) {}

double VocabularyIndex::idf(std::uint32_t word) const noexcept {
  const auto it = document_frequency_.find(word);
  const double df = it == document_frequency_.end() ? 0.0 : it->second;
  return std::log(static_cast<double>(images_.size() + 1) / (1.0 + df));
}

ImageId VocabularyIndex::insert(feat::BinaryFeatures features,
                                const GeoTag& geo) {
  const auto id = static_cast<ImageId>(images_.size());
  Entry entry;
  entry.geo = geo;
  // Term-frequency histogram over visual words, L1-normalized.
  for (const auto& d : features.descriptors) {
    entry.histogram[tree_.quantize(d)] += 1.0f;
  }
  if (!features.descriptors.empty()) {
    const auto norm = static_cast<float>(features.descriptors.size());
    for (auto& [word, tf] : entry.histogram) tf /= norm;
  }
  for (const auto& [word, tf] : entry.histogram) {
    inverted_[word].emplace_back(id, tf);
    ++document_frequency_[word];
  }
  entry.features = std::move(features);
  images_.push_back(std::move(entry));
  return id;
}

QueryResult VocabularyIndex::query(const feat::BinaryFeatures& query_features,
                                   int top_k) const {
  QueryResult result;
  if (images_.empty() || query_features.empty()) return result;

  // Query word histogram.
  std::unordered_map<std::uint32_t, float> qh;
  for (const auto& d : query_features.descriptors) {
    qh[tree_.quantize(d)] += 1.0f;
  }
  const auto qnorm = static_cast<float>(query_features.descriptors.size());
  for (auto& [word, tf] : qh) tf /= qnorm;

  // Accumulate IDF-weighted histogram-intersection scores via the
  // inverted file (only images sharing a word are touched).
  std::unordered_map<ImageId, double> scores;
  for (const auto& [word, qtf] : qh) {
    const auto it = inverted_.find(word);
    if (it == inverted_.end()) continue;
    const double w = idf(word);
    for (const auto& [image, tf] : it->second) {
      scores[image] += w * std::min(qtf, tf);
    }
  }

  std::vector<std::pair<double, ImageId>> ranked;
  ranked.reserve(scores.size());
  for (const auto& [image, score] : scores) ranked.emplace_back(score, image);
  std::sort(ranked.rbegin(), ranked.rend());
  const auto budget = std::min<std::size_t>(
      ranked.size(), static_cast<std::size_t>(params_.max_candidates));

  feat::MatchWorkspace workspace;
  for (std::size_t i = 0; i < budget; ++i) {
    const ImageId id = ranked[i].second;
    const double sim =
        feat::jaccard_similarity(query_features, images_[id].features,
                                 params_.match, &result.ops, workspace);
    result.hits.push_back({id, sim});
  }
  result.candidates_checked = budget;
  detail::finalize_top_k(result, top_k);
  return result;
}

}  // namespace bees::idx
