// Hierarchical vocabulary tree over binary descriptors (Nistér &
// Stewénius, CVPR 2006 — the paper behind the Kentucky benchmark BEES
// evaluates precision on), adapted to 256-bit ORB descriptors with
// k-majority clustering (cluster center = bitwise majority of members,
// the binary analogue of the k-means centroid).
//
// The tree quantizes each descriptor to a leaf "visual word"; images are
// TF-IDF-weighted word histograms in an inverted file, scored with the
// normalized-histogram intersection of the original paper; top candidates
// are exactly rescored like the LSH path.  This is the classic alternative
// to LSH for the server index — compared head-to-head in
// bench/ablation_vocabulary.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "features/keypoint.hpp"
#include "features/matching.hpp"
#include "index/geo.hpp"
#include "index/types.hpp"

namespace bees::idx {

struct VocabularyParams {
  int branching = 8;   ///< Children per node (k).
  int depth = 3;       ///< Levels below the root: k^depth leaves.
  int kmeans_iterations = 8;
  std::uint64_t seed = 0xb0cab1e5ULL;
};

/// The quantizer: a tree of binary cluster centers.
class VocabularyTree {
 public:
  /// Trains the tree on a descriptor sample (hierarchical k-majority).
  /// Throws std::invalid_argument on empty input or bad parameters.
  static VocabularyTree train(const std::vector<feat::Descriptor256>& sample,
                              const VocabularyParams& params);

  /// Quantizes a descriptor to its leaf word id in [0, leaf_count).
  std::uint32_t quantize(const feat::Descriptor256& d) const noexcept;

  std::uint32_t leaf_count() const noexcept { return leaf_count_; }
  int branching() const noexcept { return params_.branching; }
  int depth() const noexcept { return params_.depth; }

 private:
  struct Node {
    feat::Descriptor256 center;
    std::int32_t first_child = -1;  ///< Index of child 0; -1 for leaves.
    std::int32_t child_count = 0;   ///< Children are contiguous in nodes_.
    std::uint32_t leaf_id = 0;      ///< Valid for leaves.
  };

  VocabularyParams params_;
  std::vector<Node> nodes_;
  std::uint32_t leaf_count_ = 0;
};

/// Server index built on the vocabulary tree: inverted file + TF-IDF
/// scoring + exact rescoring of the top candidates.  API-compatible with
/// FeatureIndex so benches can swap them.
class VocabularyIndex {
 public:
  struct Params {
    int max_candidates = 16;
    feat::BinaryMatchParams match;
  };

  explicit VocabularyIndex(VocabularyTree tree)
      : VocabularyIndex(std::move(tree), Params{}) {}
  VocabularyIndex(VocabularyTree tree, const Params& params);

  ImageId insert(feat::BinaryFeatures features, const GeoTag& geo = {});
  QueryResult query(const feat::BinaryFeatures& query_features,
                    int top_k = kDefaultTopK) const;

  std::size_t image_count() const noexcept { return images_.size(); }
  const VocabularyTree& tree() const noexcept { return tree_; }

  /// idf(word) = ln((N + 1) / (1 + images containing word)).  Public for
  /// the scoring tests: a word present in every stored image carries zero
  /// discriminative weight (idf == 0), never a negative one.
  double idf(std::uint32_t word) const noexcept;

 private:
  struct Entry {
    feat::BinaryFeatures features;
    GeoTag geo;
    std::unordered_map<std::uint32_t, float> histogram;  // normalized TF
  };

  VocabularyTree tree_;
  Params params_;
  std::vector<Entry> images_;
  /// word -> postings of (image, normalized tf).
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<ImageId, float>>>
      inverted_;
  std::unordered_map<std::uint32_t, std::uint32_t> document_frequency_;
};

}  // namespace bees::idx
